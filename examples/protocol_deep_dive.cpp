/// Deep dive: everything the library knows about one configuration, from
/// the DRM internals (the paper's P_n matrix with its state names) through
/// absorption analysis, phase-type timing laws, the exact cost
/// distribution, down to a packet-level trace of one simulated run.

#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "core/distribution.hpp"
#include "core/drm.hpp"
#include "core/reliability.hpp"
#include "engine/campaign.hpp"
#include "markov/phase_type.hpp"
#include "sim/host.hpp"
#include "sim/zeroconf_host.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace zc;

  // A deliberately lossy deployment so every mechanism is visible.
  const core::ScenarioParams scenario(
      /*q=*/0.3, /*probe_cost=*/1.0, /*error_cost=*/100.0,
      prob::paper_reply_delay(/*loss=*/0.25, /*lambda=*/4.0, /*d=*/0.3));
  const core::ProtocolParams protocol{3, 0.8};

  std::cout << "1. The DRM of Sec. 4.1 (n = 3, r = 0.8)\n"
            << "---------------------------------------\n";
  const markov::Dtmc chain = core::build_chain(scenario, protocol);
  analysis::Table matrix({"from \\ to", "start", "1st", "2nd", "3rd",
                          "error", "ok"});
  for (std::size_t i = 0; i < chain.num_states(); ++i) {
    std::vector<std::string> row{chain.state_name(i)};
    for (std::size_t j = 0; j < chain.num_states(); ++j)
      row.push_back(zc::format_sig(chain.probability(i, j), 4));
    matrix.add_row(std::move(row));
  }
  matrix.print(std::cout);

  std::cout << "\n2. Absorption analysis (Sec. 5)\n"
            << "-------------------------------\n";
  const markov::AbsorbingAnalysis analysis(chain);
  const core::DrmLayout layout{protocol.n};
  std::cout << "  P(error) = "
            << zc::format_sig(analysis.absorption_probability(
                                  core::DrmLayout::start(), layout.error()),
                              5)
            << "  (Eq. 4: "
            << zc::format_sig(core::error_probability(scenario, protocol), 5)
            << ")\n"
            << "  expected DRM steps to absorption: "
            << zc::format_sig(analysis.expected_steps()[0], 5) << '\n';

  std::cout << "\n3. Timing law (phase-type, beyond the paper)\n"
            << "--------------------------------------------\n";
  const auto dph = markov::DiscretePhaseType::absorption_time(
      chain, core::DrmLayout::start());
  std::cout << "  steps: mean " << zc::format_sig(dph.mean(), 5)
            << ", std " << zc::format_sig(std::sqrt(dph.variance()), 5)
            << ", p99 " << dph.quantile(0.99) << '\n';

  std::cout << "\n4. Exact cost distribution (beyond the paper)\n"
            << "---------------------------------------------\n";
  const core::CostDistribution dist(scenario, protocol);
  analysis::Table quantiles({"p", "total cost", "probes"});
  for (const double p : {0.5, 0.9, 0.99, 0.999})
    quantiles.add_row({zc::format_sig(p, 4),
                       zc::format_sig(dist.quantile(p), 5),
                       std::to_string(dist.probes_quantile(p))});
  quantiles.print(std::cout);
  std::cout << "  P(collision) = "
            << zc::format_sig(dist.error_probability(), 5) << '\n';

  std::cout << "\n5. Closed forms vs the DRM, through the engine\n"
            << "----------------------------------------------\n";
  // The same configuration evaluated twice — once through Eq. (3)/(4)
  // and once by solving the reward model numerically — as a two-spec
  // campaign. The paper's claim is that they agree.
  engine::CampaignRunner runner;
  const engine::CampaignResult cross = runner.run(
      {engine::SpecBuilder("closed-form", scenario)
           .protocol(protocol)
           .estimator(engine::Estimator::analytic)
           .build(),
       engine::SpecBuilder("reward-model", scenario)
           .protocol(protocol)
           .estimator(engine::Estimator::drm)
           .build()});
  analysis::Table agreement({"estimator", "mean cost", "P(collision)"});
  for (const engine::ExperimentResult& experiment : cross.experiments) {
    const engine::CellResult& cell = experiment.cells[0];
    agreement.add_row({experiment.name, zc::format_sig(cell.mean_cost, 6),
                       zc::format_sig(cell.error_probability, 6)});
  }
  agreement.print(std::cout);

  std::cout << "\n6. Packet-level trace of one simulated run\n"
            << "------------------------------------------\n";
  sim::Simulator simulator;
  prob::Rng rng(7);
  sim::Medium medium(simulator, {}, rng);
  sim::TraceLog trace;
  trace.attach(medium);
  // Passive monitor port subscribed to every address, so the trace shows
  // each probe even when nobody needs to answer it.
  const sim::HostId monitor = medium.attach([](const sim::Packet&) {});
  for (sim::Address a = 1; a <= 6; ++a) medium.subscribe(monitor, a);
  // Two configured hosts on a 6-address segment; responder behaviour =
  // the scenario's F_X.
  const auto responder = std::shared_ptr<const prob::DelayDistribution>(
      scenario.reply_delay_ptr());
  sim::ConfiguredHost host_a(simulator, medium, 1, responder, rng);
  sim::ConfiguredHost host_b(simulator, medium, 2, responder, rng);
  sim::ZeroconfConfig config;
  config.schedule = core::ProbeSchedule::uniform(protocol.n, protocol.r);
  sim::ZeroconfHost joiner(simulator, medium, 6, config, rng);
  joiner.start();
  simulator.run();
  trace.print(std::cout, 20);
  std::cout << "joiner claimed address " << joiner.configured_address()
            << " after " << joiner.attempts() << " attempt(s), "
            << joiner.probes_sent() << " probes, "
            << zc::format_sig(joiner.finish_time(), 4) << " s\n";
  return 0;
}
