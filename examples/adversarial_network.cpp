/// Fault injection: run the protocol through adversarial network
/// conditions — bursty loss, link flaps, delay spikes, duplicated and
/// reordered packets, responder churn — and watch how the optimum picked
/// for a clean channel holds up. Shows the packet-level trace view of an
/// injected blackout and the runaway-run safeguards that keep even a
/// fully-occupied address space terminating.

#include <iostream>
#include <memory>
#include <vector>

#include "common/strings.hpp"
#include "engine/campaign.hpp"
#include "faults/injector.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/trace.hpp"

int main() {
  using namespace zc;

  std::cout << "Zeroconf under adversarial network conditions\n"
            << "---------------------------------------------\n\n";

  // 1. Trace view: a single probe exchange through a link flap. The
  //    blackout swallows everything sent during [0.5, 1.5) of every 4 s.
  std::cout << "1. packet trace with a link flap (blackout 0.5-1.5 s):\n";
  {
    sim::Simulator simulator;
    prob::Rng rng(2026);
    sim::Medium medium(simulator, sim::MediumConfig{}, rng);
    sim::TraceLog trace;
    trace.attach(medium);

    faults::FaultSchedule schedule;
    schedule.blackout.windows.start = 0.5;
    schedule.blackout.windows.duration = 1.0;
    schedule.blackout.windows.period = 4.0;
    faults::FaultInjector injector(schedule, /*seed=*/1);
    medium.set_fault_model(&injector);

    // Every address defended by a sluggish responder, so each probe draws
    // a reply and the retries spread across the blackout window.
    const auto response = std::shared_ptr<const prob::DelayDistribution>(
        prob::paper_reply_delay(0.1, 10.0, 0.2));
    std::vector<std::unique_ptr<sim::ConfiguredHost>> defenders;
    for (sim::Address a = 1; a <= 8; ++a)
      defenders.push_back(std::make_unique<sim::ConfiguredHost>(
          simulator, medium, a, response, rng));
    sim::ZeroconfConfig protocol;
    protocol.schedule = core::ProbeSchedule::uniform(3, 1.0);
    protocol.max_attempts = 4;
    sim::ZeroconfHost joiner(simulator, medium, /*address_space=*/8,
                             protocol, rng);
    joiner.start();
    simulator.run();
    trace.print(std::cout, 14);
    std::cout << "  (" << trace.count(faults::DeliveryCause::blackout)
              << " deliveries swallowed by the blackout)\n\n";
  }

  // 2. Monte-Carlo: the clean-channel optimum (n=4, r=2) re-measured
  //    under a bursty Gilbert-Elliott channel plus responder churn — a
  //    two-spec campaign differing only in the fault schedule.
  std::cout << "2. (n=4, r=2) on a clean vs adversarial channel:\n";
  const core::ScenarioParams scenario(
      /*q=*/0.3, /*probe_cost=*/2.0, /*error_cost=*/1000.0,
      prob::paper_reply_delay(0.4, 20.0, 0.1));

  faults::FaultSchedule adversarial;
  adversarial.gilbert_elliott.p_enter_burst = 0.05;
  adversarial.gilbert_elliott.p_exit_burst = 0.25;
  adversarial.gilbert_elliott.loss_bad = 0.9;
  adversarial.host_churn.deaf_fraction = 0.5;
  adversarial.host_churn.period = 4.0;
  adversarial.host_churn.deaf_duration = 2.0;

  const auto mc_spec = [&](const char* name,
                           const faults::FaultSchedule& schedule) {
    return engine::SpecBuilder(name, scenario)
        .protocol({4, 2.0})
        .estimator(engine::Estimator::monte_carlo)
        .network(/*address_space=*/100, /*hosts=*/30)
        .faults(schedule)
        .trials(4000)
        .seed(42)
        .build();
  };
  engine::CampaignRunner runner;
  const engine::CampaignResult channels = runner.run(
      {mc_spec("clean", faults::FaultSchedule{}),
       mc_spec("adversarial", adversarial)});
  for (const engine::ExperimentResult& experiment : channels.experiments) {
    const engine::CellResult& cell = experiment.cells[0];
    std::cout << "  " << experiment.name << ": collision rate "
              << zc::format_sig(cell.error_probability, 3) << ", mean cost "
              << zc::format_sig(cell.mean_cost, 4) << ", mean probes "
              << zc::format_sig(cell.mean_probes, 3) << "\n";
  }

  // 3. Safeguards: a fully-occupied space would loop forever; the attempt
  //    cap turns it into an explicit aborted outcome instead.
  std::cout << "\n3. runaway-run safeguard on a 100%-occupied space:\n";
  {
    sim::Simulator simulator;
    prob::Rng rng(7);
    sim::Medium medium(simulator, sim::MediumConfig{}, rng);
    std::vector<std::unique_ptr<sim::ConfiguredHost>> defenders;
    for (sim::Address a = 1; a <= 8; ++a)
      defenders.push_back(std::make_unique<sim::ConfiguredHost>(
          simulator, medium, a, nullptr, rng));
    sim::ZeroconfConfig protocol_capped;
    protocol_capped.schedule = core::ProbeSchedule::uniform(2, 0.5);
    protocol_capped.max_attempts = 25;
    sim::ZeroconfHost joiner(simulator, medium, /*address_space=*/8,
                             protocol_capped, rng);
    joiner.start();
    simulator.run();
    std::cout << "  outcome: "
              << (joiner.outcome() == sim::Outcome::aborted ? "aborted"
                                                            : "configured")
              << " after " << joiner.attempts() << " attempts, "
              << joiner.probes_sent() << " probes\n";
  }
  return 0;
}
