/// Ad-hoc wireless scenario: hand-held devices forming a lossy ad-hoc
/// network (the paper's other motivating deployment). Demonstrates
/// sensitivity analysis: how strongly do the mean cost and the collision
/// probability react to each network parameter, and how does the optimal
/// configuration move as the radio degrades?
///
/// The degradation sweep is a campaign of optimize specs, one per loss
/// scaling factor.

#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "core/scenarios.hpp"
#include "core/sensitivity.hpp"
#include "engine/campaign.hpp"

int main() {
  using namespace zc;

  std::cout << "Ad-hoc wireless: sensitivity of the zeroconf model\n"
            << "--------------------------------------------------\n\n";

  // Pessimistic wireless network (the paper's Sec. 4.5 r=2 setting).
  const core::ExponentialScenario wireless = core::scenarios::sec45_r2();
  const core::ProtocolParams draft = core::scenarios::draft_unreliable();

  // 1. Local elasticities at the draft operating point: % change of the
  //    output per % change of the parameter.
  std::cout << "elasticities at (n=4, r=2):\n";
  zc::analysis::Table elastic({"parameter", "d(cost)%/d(param)%",
                               "d(P(col))%/d(param)%"});
  for (const core::Elasticity& e : core::sensitivities(wireless, draft)) {
    elastic.add_row({e.parameter, zc::format_sig(e.cost_elasticity, 4),
                     zc::format_sig(e.error_elasticity, 4)});
  }
  elastic.print(std::cout);
  std::cout << "\n(q and E matter most for cost; loss, lambda, d and r "
               "drive reliability.\n The error probability is independent "
               "of the cost weights c and E.)\n\n";

  // 2. Optimum shift as the radio's loss rate degrades by factors of 10:
  //    one optimize spec per degraded scenario, run as a single campaign.
  std::cout << "optimal configuration vs radio quality (loss scaling):\n";
  const std::vector<double> factors{0.01, 0.1, 1.0, 10.0, 100.0};
  std::vector<engine::ExperimentSpec> specs;
  for (const double factor : factors) {
    core::ExponentialScenario degraded = wireless;
    degraded.loss = wireless.loss * factor;
    specs.push_back(
        engine::SpecBuilder("loss x" + zc::format_sig(factor, 3), degraded)
            .optimize()
            .build());
  }
  engine::CampaignRunner runner;
  const engine::CampaignResult campaign = runner.run(specs);

  zc::analysis::Table shifts_table(
      {"loss factor", "effective loss", "opt n", "opt r [s]", "opt cost"});
  for (std::size_t i = 0; i < factors.size(); ++i) {
    const core::JointOptimum& opt = *campaign.experiments[i].optimum;
    shifts_table.add_row({zc::format_sig(factors[i], 3),
                          zc::format_sig(wireless.loss * factors[i], 3),
                          std::to_string(opt.n), zc::format_sig(opt.r, 4),
                          zc::format_sig(opt.cost, 5)});
  }
  shifts_table.print(std::cout);

  std::cout << "\nA degrading radio first asks for longer listening, then "
               "for more probes -\nexactly the trade-off knob the paper "
               "hands the protocol designer.\n";
  return 0;
}
