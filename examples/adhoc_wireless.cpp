/// Ad-hoc wireless scenario: hand-held devices forming a lossy ad-hoc
/// network (the paper's other motivating deployment). Demonstrates
/// sensitivity analysis: how strongly do the mean cost and the collision
/// probability react to each network parameter, and how does the optimal
/// configuration move as the radio degrades?

#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "core/sensitivity.hpp"

int main() {
  using namespace zc::core;

  std::cout << "Ad-hoc wireless: sensitivity of the zeroconf model\n"
            << "--------------------------------------------------\n\n";

  // Pessimistic wireless network (the paper's Sec. 4.5 r=2 setting).
  const ExponentialScenario wireless = scenarios::sec45_r2();
  const ProtocolParams draft = scenarios::draft_unreliable();

  // 1. Local elasticities at the draft operating point: % change of the
  //    output per % change of the parameter.
  std::cout << "elasticities at (n=4, r=2):\n";
  zc::analysis::Table elastic({"parameter", "d(cost)%/d(param)%",
                               "d(P(col))%/d(param)%"});
  for (const Elasticity& e : sensitivities(wireless, draft)) {
    elastic.add_row({e.parameter, zc::format_sig(e.cost_elasticity, 4),
                     zc::format_sig(e.error_elasticity, 4)});
  }
  elastic.print(std::cout);
  std::cout << "\n(q and E matter most for cost; loss, lambda, d and r "
               "drive reliability.\n The error probability is independent "
               "of the cost weights c and E.)\n\n";

  // 2. Optimum shift as the radio's loss rate degrades by factors of 10.
  std::cout << "optimal configuration vs radio quality (loss scaling):\n";
  zc::analysis::Table shifts_table(
      {"loss factor", "effective loss", "opt n", "opt r [s]", "opt cost"});
  const auto shifts =
      optimum_shifts(wireless, "loss", {0.01, 0.1, 1.0, 10.0, 100.0});
  for (const OptimumShift& s : shifts) {
    shifts_table.add_row({zc::format_sig(s.factor, 3),
                          zc::format_sig(wireless.loss * s.factor, 3),
                          std::to_string(s.n), zc::format_sig(s.r, 4),
                          zc::format_sig(s.cost, 5)});
  }
  shifts_table.print(std::cout);

  std::cout << "\nA degrading radio first asks for longer listening, then "
               "for more probes -\nexactly the trade-off knob the paper "
               "hands the protocol designer.\n";
  return 0;
}
