/// Manufacturer calibration: the measure-then-model workflow the paper
/// recommends (Sec. 7). A manufacturer measures reply delays on a
/// reference network, fits an empirical F_X, derives the cost weights
/// that make a desired configuration optimal, and cross-checks the final
/// parameters against the analytic machinery.

#include <iostream>

#include "common/strings.hpp"
#include "engine/campaign.hpp"
#include "example_util.hpp"
#include "prob/empirical.hpp"
#include "prob/fit.hpp"
#include "prob/families.hpp"
#include "prob/reply_path.hpp"

int main() {
  using namespace zc;

  std::cout << "Manufacturer workflow: measure -> model -> calibrate\n"
            << "----------------------------------------------------\n\n";

  // 1. The (unknown to the manufacturer) physical network: a three-leg
  //    ARP reply path with per-leg losses and exponential transit times.
  prob::Leg probe{3e-3, std::make_unique<prob::Exponential>(50.0)};
  prob::Leg processing{2e-3, std::make_unique<prob::Exponential>(25.0)};
  prob::Leg reply{3e-3, std::make_unique<prob::Exponential>(80.0)};
  const prob::ReplyPath path(std::move(probe), std::move(processing),
                             std::move(reply), 0.02);
  std::cout << "ground truth: three-leg path, effective loss "
            << zc::format_sig(path.effective_loss(), 4) << '\n';

  // 2. Measurement campaign: 100k probes on the lab network.
  prob::Rng rng(20260706);
  const auto measured = std::make_shared<prob::EmpiricalDelay>(
      path.to_empirical(100000, rng));
  std::cout << "measured:     loss "
            << zc::format_sig(measured->loss_probability(), 4)
            << ", mean reply "
            << zc::format_sig(measured->mean_given_arrival(), 4)
            << " s over " << measured->arrived_count() << " replies\n";

  // 2b. Fit the paper's smooth F_X to the measurements: the optimizer and
  //     the calibration differentiate F_X in r, so the raw step-function
  //     ECDF must not be fed in directly.
  const prob::ExponentialFit fit =
      prob::fit_defective_exponential(*measured);
  std::cout << "fitted F_X:   loss " << zc::format_sig(fit.loss, 4)
            << ", lambda " << zc::format_sig(fit.lambda, 4) << ", d "
            << zc::format_sig(fit.shift, 4) << "\n\n";
  const std::shared_ptr<const prob::DelayDistribution> fitted =
      fit.to_distribution();

  // 3. Product requirement: configuration must finish within ~1 second
  //    at the default n = 4, i.e. target (n, r) = (4, 0.25). What do the
  //    cost weights have to be for that to be the rational choice on a
  //    500-host link?
  const core::ScenarioParams scenario(
      core::ScenarioParams::q_from_hosts(500), /*probe_cost=*/1.0,
      /*error_cost=*/1.0, fitted);
  const core::ProtocolParams target{4, 0.25};
  engine::CampaignRunner runner;
  const engine::ExperimentResult calibrated =
      runner.run_one(engine::SpecBuilder("requirement", scenario)
                         .calibrate(target)
                         .build());
  if (!calibrated.calibration.has_value()) {
    std::cout << "calibration found no (E, c) making the target optimal -\n"
                 "the requirement is inconsistent with the measured "
                 "network.\n";
    return 1;
  }
  const core::Calibration& calibration = *calibrated.calibration;
  std::cout << "calibrated weights making (n=4, r=0.25 s) optimal:\n";
  examples::print_calibration(std::cout, calibration);

  // 4. Ship-readiness report at the calibrated weights: evaluate the
  //    target under the calibrated scenario, detail measures on.
  const engine::ExperimentResult shipped = runner.run_one(
      engine::SpecBuilder("shipped",
                          scenario.with_error_cost(calibration.error_cost)
                              .with_probe_cost(calibration.probe_cost))
          .protocol(target)
          .detailed()
          .build());
  std::cout << "\nshipped ";
  examples::print_cell(std::cout, shipped.cells[0]);
  return 0;
}
