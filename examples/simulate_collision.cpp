/// Protocol simulation: watch the actual zeroconf initialization run on a
/// simulated link-local segment, including the multi-host contention case
/// the analytic model abstracts away (several devices powering on at
/// once after an outage).
///
/// Single runs and the simultaneous-join demo drive sim::Network
/// directly (they are about watching individual trajectories); the
/// Monte-Carlo aggregate goes through an engine spec.

#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "engine/campaign.hpp"
#include "example_util.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"

int main() {
  using namespace zc;

  std::cout << "Simulating zeroconf on a lossy link-local segment\n"
            << "-------------------------------------------------\n\n";

  // A stressed segment: 200 of 1000 addresses taken, 30% of replies
  // never arrive, replies take 50 ms + Exp(20 Hz).
  const auto reply_delay = std::shared_ptr<const prob::DelayDistribution>(
      prob::paper_reply_delay(0.3, 20.0, 0.05));
  sim::NetworkConfig segment;
  segment.address_space = 1000;
  segment.hosts = 200;
  segment.responder_delay = reply_delay;

  // 1. One device joining: a few single runs, then Monte-Carlo.
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(3, 0.2);
  std::cout << "single joining device, (n=3, r=0.2):\n";
  zc::analysis::Table runs({"run", "address", "attempts", "probes",
                            "conflicts", "elapsed [s]", "collision?"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Network net(segment, seed);
    const sim::RunResult result = net.run_join(protocol);
    runs.add_row({std::to_string(seed), std::to_string(result.address),
                  std::to_string(result.attempts),
                  std::to_string(result.probes_sent),
                  std::to_string(result.conflicts),
                  zc::format_sig(result.elapsed, 4),
                  result.collision ? "YES" : "no"});
  }
  runs.print(std::cout);

  // The aggregate view: the same segment as a declarative Monte-Carlo
  // spec (q = 200/1000 occupancy; c = 1, E = 1000 cost accounting).
  const core::ScenarioParams scenario(/*q=*/0.2, /*probe_cost=*/1.0,
                                      /*error_cost=*/1000.0, reply_delay);
  engine::CampaignRunner runner;
  const engine::ExperimentResult mc =
      runner.run_one(engine::SpecBuilder("stressed segment", scenario)
                         .protocol({protocol.schedule.n(),
                                    protocol.schedule.uniform_r()})
                         .estimator(engine::Estimator::monte_carlo)
                         .network(segment.address_space, segment.hosts)
                         .trials(20000)
                         .seed(42)
                         .build());
  std::cout << '\n';
  examples::print_simulation_cell(std::cout, mc.cells[0]);

  // 2. Power-outage recovery: 10 devices configure simultaneously; the
  //    draft's probe-conflict rule plus PROBE_WAIT keeps them apart.
  std::cout << "\npower-outage recovery: 10 devices join simultaneously\n";
  protocol.probe_wait_max = 1.0;  // draft PROBE_WAIT
  sim::Network net(segment, 4242);
  const auto group = net.run_simultaneous_join(protocol, 10);
  zc::analysis::Table gtable({"device", "address", "conflicts",
                              "elapsed [s]", "collision?"});
  unsigned collisions = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    gtable.add_row({std::to_string(i), std::to_string(group[i].address),
                    std::to_string(group[i].conflicts),
                    zc::format_sig(group[i].elapsed, 4),
                    group[i].collision ? "YES" : "no"});
    if (group[i].collision) ++collisions;
  }
  gtable.print(std::cout);
  std::cout << "\n" << collisions << " of " << group.size()
            << " devices collided (mutual claims and stale addresses "
               "both count).\n";
  return 0;
}
