/// Protocol simulation: watch the actual zeroconf initialization run on a
/// simulated link-local segment, including the multi-host contention case
/// the analytic model abstracts away (several devices powering on at
/// once after an outage).

#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"

int main() {
  using namespace zc;

  std::cout << "Simulating zeroconf on a lossy link-local segment\n"
            << "-------------------------------------------------\n\n";

  // A stressed segment: 200 of 1000 addresses taken, 30% of replies
  // never arrive, replies take 50 ms + Exp(20 Hz).
  sim::NetworkConfig segment;
  segment.address_space = 1000;
  segment.hosts = 200;
  segment.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.3, 20.0, 0.05));

  // 1. One device joining: a few single runs, then Monte-Carlo.
  sim::ZeroconfConfig protocol;
  protocol.n = 3;
  protocol.r = 0.2;
  std::cout << "single joining device, (n=3, r=0.2):\n";
  zc::analysis::Table runs({"run", "address", "attempts", "probes",
                            "conflicts", "elapsed [s]", "collision?"});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Network net(segment, seed);
    const sim::RunResult result = net.run_join(protocol);
    runs.add_row({std::to_string(seed), std::to_string(result.address),
                  std::to_string(result.attempts),
                  std::to_string(result.probes_sent),
                  std::to_string(result.conflicts),
                  zc::format_sig(result.elapsed, 4),
                  result.collision ? "YES" : "no"});
  }
  runs.print(std::cout);

  sim::MonteCarloOptions opts;
  opts.trials = 20000;
  opts.seed = 42;
  opts.probe_cost = 1.0;
  opts.error_cost = 1000.0;
  const auto mc = sim::monte_carlo(segment, protocol, opts);
  std::cout << "\nMonte-Carlo over " << mc.trials << " runs:\n"
            << "  mean cost        : " << zc::format_sig(mc.model_cost.mean)
            << " +/- " << zc::format_sig(mc.model_cost.ci95_halfwidth, 3)
            << '\n'
            << "  mean probes      : " << zc::format_sig(mc.probes.mean, 4)
            << '\n'
            << "  collision rate   : "
            << zc::format_sig(mc.collision_rate, 3) << "  (95% CI ["
            << zc::format_sig(mc.collision_ci95.lower, 3) << ", "
            << zc::format_sig(mc.collision_ci95.upper, 3) << "])\n";

  // 2. Power-outage recovery: 10 devices configure simultaneously; the
  //    draft's probe-conflict rule plus PROBE_WAIT keeps them apart.
  std::cout << "\npower-outage recovery: 10 devices join simultaneously\n";
  protocol.probe_wait_max = 1.0;  // draft PROBE_WAIT
  sim::Network net(segment, 4242);
  const auto group = net.run_simultaneous_join(protocol, 10);
  zc::analysis::Table gtable({"device", "address", "conflicts",
                              "elapsed [s]", "collision?"});
  unsigned collisions = 0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    gtable.add_row({std::to_string(i), std::to_string(group[i].address),
                    std::to_string(group[i].conflicts),
                    zc::format_sig(group[i].elapsed, 4),
                    group[i].collision ? "YES" : "no"});
    if (group[i].collision) ++collisions;
  }
  gtable.print(std::cout);
  std::cout << "\n" << collisions << " of " << group.size()
            << " devices collided (mutual claims and stale addresses "
               "both count).\n";
  return 0;
}
