/// Quickstart: evaluate the zeroconf cost model for one configuration.
///
/// Builds the paper's demonstration scenario (Sec. 4.3), asks three
/// questions about the draft's recommended configuration (n=4, r=2), and
/// finds the cost-optimal configuration.

#include <cmath>
#include <iostream>

#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

int main() {
  using namespace zc::core;

  // 1. Describe the deployment. ExponentialScenario carries the paper's
  //    knobs: address-occupancy probability q, probe postage c, collision
  //    cost E, and the reply-delay distribution (loss, rate, round-trip).
  ExponentialScenario deployment = scenarios::figure2();
  const ScenarioParams scenario = deployment.to_params();

  // 2. Evaluate the draft's recommended configuration.
  const ProtocolParams draft = scenarios::draft_unreliable();  // n=4, r=2
  std::cout << "draft configuration (n=4, r=2):\n"
            << "  mean total cost     : "
            << zc::format_sig(mean_cost(scenario, draft)) << '\n'
            << "  collision probability: "
            << zc::format_sig(error_probability(scenario, draft)) << '\n'
            << "  mean waiting time    : "
            << zc::format_sig(mean_waiting_time(scenario, draft)) << " s\n"
            << "  cost std deviation   : "
            << zc::format_sig(std::sqrt(cost_variance(scenario, draft)))
            << '\n';

  // 3. Optimize the designer-controlled parameters (n, r).
  const JointOptimum best = joint_optimum(scenario);
  std::cout << "\ncost-optimal configuration:\n"
            << "  n = " << best.n << ", r = " << zc::format_sig(best.r, 4)
            << " s\n"
            << "  mean total cost     : " << zc::format_sig(best.cost)
            << '\n'
            << "  collision probability: "
            << zc::format_sig(best.error_prob) << '\n';

  // 4. The paper's central trade-off in one line.
  std::cout << "\ntrade-off: optimizing cost changed the collision "
               "probability by a factor of "
            << zc::format_sig(best.error_prob /
                              error_probability(scenario, draft), 3)
            << " versus the draft.\n";
  return 0;
}
