/// Quickstart: evaluate the zeroconf cost model for one configuration.
///
/// Builds the paper's demonstration scenario (Sec. 4.3) and describes the
/// whole experiment declaratively: one spec evaluates the draft's
/// recommended configuration (n=4, r=2), a second finds the cost-optimal
/// configuration. The engine runs both and hands back the numbers.

#include <iostream>

#include "common/strings.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "example_util.hpp"

int main() {
  using namespace zc;

  // 1. Describe the deployment. ExponentialScenario carries the paper's
  //    knobs: address-occupancy probability q, probe postage c, collision
  //    cost E, and the reply-delay distribution (loss, rate, round-trip).
  const core::ExponentialScenario deployment = core::scenarios::figure2();
  const core::ProtocolParams draft =
      core::scenarios::draft_unreliable();  // n=4, r=2

  // 2. Declare the experiments: evaluate the draft's configuration with
  //    the detail measures, and find the joint (n, r) optimum.
  const std::vector<engine::ExperimentSpec> specs{
      engine::SpecBuilder("draft", deployment)
          .protocol(draft)
          .detailed()
          .build(),
      engine::SpecBuilder("optimal", deployment).optimize().build(),
  };

  // 3. Run the campaign.
  engine::CampaignRunner runner;
  const engine::CampaignResult campaign = runner.run(specs);
  const engine::CellResult& draft_cell = campaign.experiments[0].cells[0];
  const core::JointOptimum& best = *campaign.experiments[1].optimum;

  std::cout << "draft ";
  examples::print_cell(std::cout, draft_cell);
  std::cout << '\n';
  examples::print_optimum(std::cout, best);

  // 4. The paper's central trade-off in one line.
  std::cout << "\ntrade-off: optimizing cost changed the collision "
               "probability by a factor of "
            << zc::format_sig(best.error_prob / draft_cell.error_probability,
                              3)
            << " versus the draft.\n";
  return 0;
}
