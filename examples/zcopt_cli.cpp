/// zcopt — command-line front end to the full analysis stack.
///
///   zcopt_cli                                  # Fig. 2 scenario, optimize
///   zcopt_cli --hosts 100 --loss 1e-12 --d 1e-3 --n 4 --r 2
///   zcopt_cli --optimize --quantiles
///   zcopt_cli --calibrate --n 4 --r 2          # Sec. 4.5 inverse problem
///
/// Exposes the scenario knobs (q or hosts, c, E, loss, lambda, d) and
/// either evaluates a fixed configuration, optimizes (n, r), or solves
/// the inverse calibration problem.

#include <cmath>
#include <iostream>

#include "common/args.hpp"
#include "common/strings.hpp"
#include "core/calibrate.hpp"
#include "core/cost.hpp"
#include "core/distribution.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "obs/report.hpp"
#include "obs/timer.hpp"

namespace {

using namespace zc;

int fail(const std::string& message) {
  std::cerr << "zcopt: " << message << '\n';
  return 2;
}

/// The measures print_configuration shows, as a report data object.
obs::JsonValue configuration_json(const core::ScenarioParams& scenario,
                                  const core::ProtocolParams& protocol) {
  obs::JsonValue out = obs::JsonValue::object();
  out["n"] = protocol.n;
  out["r"] = protocol.r;
  out["mean_cost"] = core::mean_cost(scenario, protocol);
  out["cost_stddev"] = std::sqrt(core::cost_variance(scenario, protocol));
  out["collision_probability"] =
      core::error_probability(scenario, protocol);
  out["mean_waiting_time"] = core::mean_waiting_time(scenario, protocol);
  out["mean_attempts"] = core::mean_address_attempts(scenario, protocol);
  return out;
}

void print_configuration(const core::ScenarioParams& scenario,
                         const core::ProtocolParams& protocol,
                         bool quantiles) {
  std::cout << "configuration n = " << protocol.n << ", r = "
            << zc::format_sig(protocol.r, 5) << " s\n"
            << "  mean total cost      : "
            << zc::format_sig(core::mean_cost(scenario, protocol), 6) << '\n'
            << "  cost std deviation   : "
            << zc::format_sig(
                   std::sqrt(core::cost_variance(scenario, protocol)), 5)
            << '\n'
            << "  collision probability: "
            << zc::format_sig(core::error_probability(scenario, protocol), 4)
            << '\n'
            << "  mean waiting time    : "
            << zc::format_sig(core::mean_waiting_time(scenario, protocol), 5)
            << " s\n"
            << "  mean address attempts: "
            << zc::format_sig(
                   core::mean_address_attempts(scenario, protocol), 6)
            << '\n';
  if (quantiles) {
    const core::CostDistribution dist(scenario, protocol);
    std::cout << "  cost quantiles       : p50 = "
              << zc::format_sig(dist.quantile(0.5), 5) << ", p99 = "
              << zc::format_sig(dist.quantile(0.99), 5) << ", p99.9 = "
              << zc::format_sig(dist.quantile(0.999), 5) << '\n'
              << "  probe-count quantiles: p50 = "
              << dist.probes_quantile(0.5) << ", p99 = "
              << dist.probes_quantile(0.99) << ", p99.9 = "
              << dist.probes_quantile(0.999) << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("zcopt",
                   "zeroconf cost/reliability analysis (DSN'03 model)");
  parser.add_option("hosts", "hosts already on the link (sets q)", "1000");
  parser.add_option("q", "address-occupancy probability (overrides hosts)",
                    "");
  parser.add_option("c", "probe postage", "2");
  parser.add_option("E", "collision cost", "1e35");
  parser.add_option("loss", "P(reply never arrives) = 1-l", "1e-15");
  parser.add_option("lambda", "reply rate (mean reply = d + 1/lambda)",
                    "10");
  parser.add_option("d", "round-trip floor [s]", "1");
  parser.add_option("n", "probe count to evaluate", "4");
  parser.add_option("r", "listening period [s] to evaluate", "2");
  parser.add_flag("optimize", "find the cost-optimal (n, r)");
  parser.add_flag("calibrate",
                  "inverse problem: find (E, c) making (n, r) optimal");
  parser.add_flag("quantiles", "also print cost/probe-count quantiles");
  parser.add_option("report",
                    "write a zcopt-run-report JSON manifest to this path",
                    "");

  if (!parser.parse(argc, argv)) return fail(parser.error());
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }

  // Assemble the scenario. Every knob is parsed through the
  // range-checked hook: non-numbers, "inf"/"nan", and out-of-range
  // values all fail with the same actionable message.
  core::ExponentialScenario scenario;
  const auto need = [&](const char* name, double min, double max) {
    const auto v = parser.number(name, min, max);
    if (!v.has_value())
      throw std::runtime_error(
          std::string("option --") + name +
          " must be a finite number in [" + zc::format_sig(min, 4) + ", " +
          zc::format_sig(max, 4) + "], got '" + parser.text(name) + "'");
    return *v;
  };
  try {
    obs::ScopedTimer cli_timer("zcopt_cli");
    scenario.probe_cost = need("c", 0.0, 1e30);
    scenario.error_cost = need("E", 0.0, 1e300);
    scenario.loss = need("loss", 0.0, 1.0);
    scenario.lambda = need("lambda", 1e-9, 1e12);
    scenario.round_trip = need("d", 0.0, 1e9);
    if (parser.given("q")) {
      scenario.q = need("q", 0.0, 1.0);
    } else {
      scenario.q = core::ScenarioParams::q_from_hosts(
          static_cast<unsigned>(need("hosts", 1.0, 65023.0)));
    }

    const auto params = scenario.to_params();
    const core::ProtocolParams requested{
        static_cast<unsigned>(need("n", 1.0, 1000.0)),
        need("r", 1e-9, 1e9)};

    obs::RunReport report("zcopt_cli",
                          "zeroconf cost/reliability analysis (DSN'03 "
                          "model)");
    report.config()["q"] = scenario.q;
    report.config()["c"] = scenario.probe_cost;
    report.config()["E"] = scenario.error_cost;
    report.config()["loss"] = scenario.loss;
    report.config()["lambda"] = scenario.lambda;
    report.config()["d"] = scenario.round_trip;
    report.config()["n"] = requested.n;
    report.config()["r"] = requested.r;
    report.config()["mode"] = parser.flag("calibrate")  ? "calibrate"
                              : parser.flag("optimize") ? "optimize"
                                                        : "evaluate";
    const auto emit_report = [&]() -> int {
      if (!parser.given("report")) return 0;
      cli_timer.stop();  // close the outer span so it appears in the tree
      report.capture_registry();
      if (!report.write_file(parser.text("report")))
        return fail("could not write report to '" + parser.text("report") +
                    "'");
      std::cout << "[run report: " << parser.text("report") << "]\n";
      return 0;
    };

    std::cout << "scenario: q = " << zc::format_sig(scenario.q, 5)
              << ", c = " << zc::format_sig(scenario.probe_cost, 4)
              << ", E = " << zc::format_sig(scenario.error_cost, 4)
              << ", loss = " << zc::format_sig(scenario.loss, 4)
              << ", lambda = " << zc::format_sig(scenario.lambda, 4)
              << ", d = " << zc::format_sig(scenario.round_trip, 4)
              << "\n\n";

    if (parser.flag("calibrate")) {
      obs::ScopedTimer mode_timer("calibrate");
      const auto result = core::calibrate(params, requested);
      mode_timer.stop();
      if (!result.has_value())
        return fail("no (E, c) in the search box makes the target optimal");
      std::cout << "calibrated weights for (n = " << requested.n << ", r = "
                << zc::format_sig(requested.r, 4) << "):\n"
                << "  E = " << zc::format_sig(result->error_cost, 5) << '\n'
                << "  c = " << zc::format_sig(result->probe_cost, 5)
                << "  (window boundary; ties against n = "
                << result->competitor << ")\n"
                << "  verified joint-optimal: "
                << (result->target_is_optimal ? "yes" : "no") << '\n';
      obs::JsonValue calibrated = obs::JsonValue::object();
      calibrated["E"] = result->error_cost;
      calibrated["c"] = result->probe_cost;
      calibrated["competitor"] = result->competitor;
      calibrated["target_is_optimal"] = result->target_is_optimal;
      report.data()["calibrated"] = std::move(calibrated);
      return emit_report();
    }

    if (parser.flag("optimize")) {
      obs::ScopedTimer mode_timer("optimize");
      const core::JointOptimum opt = core::joint_optimum(params, 16);
      mode_timer.stop();
      std::cout << "cost-optimal ";
      print_configuration(params, {opt.n, opt.r}, parser.flag("quantiles"));
      report.data()["optimal"] = configuration_json(params, {opt.n, opt.r});
      if (parser.given("n") || parser.given("r")) {
        std::cout << "\nrequested ";
        print_configuration(params, requested, parser.flag("quantiles"));
        report.data()["requested"] = configuration_json(params, requested);
      }
      return emit_report();
    }

    obs::ScopedTimer mode_timer("evaluate");
    print_configuration(params, requested, parser.flag("quantiles"));
    report.data()["configuration"] = configuration_json(params, requested);
    mode_timer.stop();
    return emit_report();
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}
