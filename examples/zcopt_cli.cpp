/// zcopt — command-line front end to the full analysis stack.
///
///   zcopt_cli                                  # Fig. 2 scenario, evaluate
///   zcopt_cli --hosts 100 --loss 1e-12 --d 1e-3 --n 4 --r 2
///   zcopt_cli --optimize --quantiles
///   zcopt_cli --calibrate --n 4 --r 2          # Sec. 4.5 inverse problem
///   zcopt_cli campaign --n 1,2,4 --r 0.5,1,2   # grid through the engine
///   zcopt_cli campaign --estimator monte_carlo --space 1000 --trials 5000
///   zcopt_cli check --seed 1 --cases 500       # differential oracle
///
/// Exposes the scenario knobs (q or hosts, c, E, loss, lambda, d) and
/// either evaluates a fixed configuration, optimizes (n, r), solves the
/// inverse calibration problem, or — via the `campaign` subcommand —
/// evaluates a whole protocol grid with a chosen estimator. Every mode
/// constructs engine::ExperimentSpecs and executes them through
/// engine::CampaignRunner; this file only parses options and prints.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/table.hpp"
#include "check/runner.hpp"
#include "common/args.hpp"
#include "common/strings.hpp"
#include "core/distribution.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "example_util.hpp"
#include "exec/cancel.hpp"
#include "obs/report.hpp"
#include "obs/timer.hpp"

namespace {

using namespace zc;

int fail(const std::string& message) {
  std::cerr << "zcopt: " << message << '\n';
  return 2;
}

/// Cooperative-stop plumbing of the campaign subcommand: the first
/// Ctrl-C requests a graceful stop (in-flight specs finish, the journal
/// is already flushed per chunk, the partial report is marked
/// incomplete); the second exits immediately.
exec::CancelToken g_cancel;
std::atomic<int> g_sigint_count{0};

void handle_sigint(int) {
  const int count =
      g_sigint_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count > 1) std::_Exit(130);
  g_cancel.request_stop();  // async-signal-safe: one relaxed atomic store
  constexpr char kMessage[] =
      "\nzcopt: stop requested - finishing in-flight specs"
      " (Ctrl-C again to exit now)\n";
  // write(2) is the only async-signal-safe way to tell the user.
  [[maybe_unused]] const ssize_t n =
      ::write(2, kMessage, sizeof kMessage - 1);
}

/// Install the SIGINT handler for the duration of a campaign run.
class ScopedSigint {
 public:
  ScopedSigint() : previous_(std::signal(SIGINT, handle_sigint)) {}
  ~ScopedSigint() { std::signal(SIGINT, previous_); }
  ScopedSigint(const ScopedSigint&) = delete;
  ScopedSigint& operator=(const ScopedSigint&) = delete;

 private:
  void (*previous_)(int);
};

/// The scenario knobs both the classic modes and the campaign subcommand
/// accept.
void add_scenario_options(ArgParser& parser) {
  parser.add_option("hosts", "hosts already on the link (sets q)", "1000");
  parser.add_option("q", "address-occupancy probability (overrides hosts)",
                    "");
  parser.add_option("c", "probe postage", "2");
  parser.add_option("E", "collision cost", "1e35");
  parser.add_option("loss", "P(reply never arrives) = 1-l", "1e-15");
  parser.add_option("lambda", "reply rate (mean reply = d + 1/lambda)",
                    "10");
  parser.add_option("d", "round-trip floor [s]", "1");
}

/// Range-checked numeric option: non-numbers, "inf"/"nan", and
/// out-of-range values all fail with the same actionable message.
double need(const ArgParser& parser, const char* name, double min,
            double max) {
  const auto v = parser.number(name, min, max);
  if (!v.has_value())
    throw std::runtime_error(
        std::string("option --") + name + " must be a finite number in [" +
        zc::format_sig(min, 4) + ", " + zc::format_sig(max, 4) + "], got '" +
        parser.text(name) + "'");
  return *v;
}

core::ExponentialScenario scenario_from(const ArgParser& parser) {
  core::ExponentialScenario scenario;
  scenario.probe_cost = need(parser, "c", 0.0, 1e30);
  scenario.error_cost = need(parser, "E", 0.0, 1e300);
  scenario.loss = need(parser, "loss", 0.0, 1.0);
  scenario.lambda = need(parser, "lambda", 1e-9, 1e12);
  scenario.round_trip = need(parser, "d", 0.0, 1e9);
  if (parser.given("q")) {
    scenario.q = need(parser, "q", 0.0, 1.0);
  } else {
    scenario.q = core::ScenarioParams::q_from_hosts(
        static_cast<unsigned>(need(parser, "hosts", 1.0, 65023.0)));
  }
  return scenario;
}

void print_scenario(const core::ExponentialScenario& scenario) {
  std::cout << "scenario: q = " << zc::format_sig(scenario.q, 5)
            << ", c = " << zc::format_sig(scenario.probe_cost, 4)
            << ", E = " << zc::format_sig(scenario.error_cost, 4)
            << ", loss = " << zc::format_sig(scenario.loss, 4)
            << ", lambda = " << zc::format_sig(scenario.lambda, 4)
            << ", d = " << zc::format_sig(scenario.round_trip, 4)
            << "\n\n";
}

void set_scenario_config(obs::RunReport& report,
                         const core::ExponentialScenario& scenario) {
  report.config()["q"] = scenario.q;
  report.config()["c"] = scenario.probe_cost;
  report.config()["E"] = scenario.error_cost;
  report.config()["loss"] = scenario.loss;
  report.config()["lambda"] = scenario.lambda;
  report.config()["d"] = scenario.round_trip;
}

void print_quantiles(const core::ScenarioParams& scenario,
                     const core::ProtocolParams& protocol) {
  const core::CostDistribution dist(scenario, protocol);
  std::cout << "  cost quantiles       : p50 = "
            << zc::format_sig(dist.quantile(0.5), 5) << ", p99 = "
            << zc::format_sig(dist.quantile(0.99), 5) << ", p99.9 = "
            << zc::format_sig(dist.quantile(0.999), 5) << '\n'
            << "  probe-count quantiles: p50 = " << dist.probes_quantile(0.5)
            << ", p99 = " << dist.probes_quantile(0.99) << ", p99.9 = "
            << dist.probes_quantile(0.999) << '\n';
}

/// `zcopt_cli campaign ...` — one grid spec, one engine run, table/CSV/
/// report sinks.
int run_campaign(int argc, const char* const* argv) {
  ArgParser parser("zcopt campaign",
                   "evaluate a protocol grid through the experiment engine");
  add_scenario_options(parser);
  parser.add_option("n", "comma-separated probe counts", "1,2,4,8");
  parser.add_option("r", "comma-separated listening periods [s]",
                    "0.5,1,2,4");
  parser.add_option("estimator", "analytic | drm | monte_carlo", "analytic");
  parser.add_option("schedule",
                    "append a per-probe timeout schedule cell: uniform | "
                    "geometric | linear | explicit (empty = grid only; a "
                    "uniform schedule reproduces the equivalent grid point "
                    "byte-for-byte)",
                    "");
  parser.add_option("sched-n", "schedule probe count", "4");
  parser.add_option("r0", "schedule first-probe timeout [s]", "2");
  parser.add_option("factor", "geometric schedule ratio r_{i+1}/r_i", "0.5");
  parser.add_option("step", "linear schedule increment [s]", "0");
  parser.add_option("timeouts",
                    "explicit schedule: comma-separated timeouts r_1,..,r_n",
                    "");
  parser.add_option("name", "spec name used in report/CSV rows", "grid");
  parser.add_flag("detailed",
                  "also compute stddev/waiting/attempts per cell");
  parser.add_option("trials", "Monte-Carlo trials per cell", "10000");
  parser.add_option("seed", "Monte-Carlo base seed", "42");
  parser.add_option("target-rel-ci",
                    "adaptive precision: stop each cell once the relative "
                    "95% CI half-width of the cost mean and collision rate "
                    "falls below this (0 = fixed trials)",
                    "0");
  parser.add_option("min-trials",
                    "adaptive precision: first-round size / realized-count "
                    "floor (0 = default 512)",
                    "0");
  parser.add_option("max-trials",
                    "adaptive precision: hard trial-budget cap per cell "
                    "(0 = use --trials)",
                    "0");
  parser.add_option("space",
                    "simulated address-space size (monte_carlo estimator)",
                    "1000");
  parser.add_option("sim-hosts",
                    "hosts on the simulated segment (0 = derive from q)",
                    "0");
  parser.add_option("threads", "worker threads (0 = hardware)", "0");
  parser.add_option("report",
                    "write a zcopt-run-report JSON manifest to this path",
                    "");
  parser.add_option("csv", "write the campaign as CSV to this path", "");
  parser.add_option("journal",
                    "write-ahead campaign journal (JSONL), fsync'd per "
                    "completed spec",
                    "");
  parser.add_flag("resume",
                  "resume from --journal when it exists (digest-checked; "
                  "replays completed specs, runs only the missing ones)");
  parser.add_option("deadline",
                    "wall-clock budget in seconds; the campaign stops "
                    "gracefully at the deadline (0 = none)",
                    "0");

  if (!parser.parse(argc, argv)) return fail(parser.error());
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }

  try {
    obs::ScopedTimer cli_timer("zcopt_campaign");
    const core::ExponentialScenario scenario = scenario_from(parser);
    const auto ns = examples::parse_unsigned_list(parser.text("n"));
    if (!ns.has_value())
      return fail("option --n must be a comma-separated list of probe "
                  "counts, got '" + parser.text("n") + "'");
    const auto rs = examples::parse_double_list(parser.text("r"));
    if (!rs.has_value())
      return fail("option --r must be a comma-separated list of listening "
                  "periods, got '" + parser.text("r") + "'");

    engine::Estimator estimator = engine::Estimator::analytic;
    const std::string estimator_text = parser.text("estimator");
    if (estimator_text == "analytic") {
      estimator = engine::Estimator::analytic;
    } else if (estimator_text == "drm") {
      estimator = engine::Estimator::drm;
    } else if (estimator_text == "monte_carlo") {
      estimator = engine::Estimator::monte_carlo;
    } else {
      return fail("option --estimator must be analytic, drm or "
                  "monte_carlo, got '" + estimator_text + "'");
    }

    engine::SpecBuilder builder(parser.text("name"), scenario);
    builder.protocol_grid(*ns, *rs)
        .estimator(estimator)
        .detailed(parser.flag("detailed"));
    const std::string schedule_text = parser.text("schedule");
    if (!schedule_text.empty()) {
      core::ProbeSchedule sched;
      if (schedule_text == "explicit") {
        const auto timeouts =
            examples::parse_double_list(parser.text("timeouts"));
        if (!timeouts.has_value() || timeouts->empty())
          return fail("--schedule explicit requires --timeouts r_1,..,r_n, "
                      "got '" + parser.text("timeouts") + "'");
        sched = core::ProbeSchedule::from_timeouts(*timeouts);
      } else {
        const auto sched_n =
            static_cast<unsigned>(need(parser, "sched-n", 1.0, 1000.0));
        const double r0 = need(parser, "r0", 1e-9, 1e9);
        if (schedule_text == "uniform") {
          sched = core::ProbeSchedule::uniform(sched_n, r0);
        } else if (schedule_text == "geometric") {
          sched = core::ProbeSchedule::geometric(
              sched_n, r0, need(parser, "factor", 1e-9, 1e9));
        } else if (schedule_text == "linear") {
          sched = core::ProbeSchedule::linear(
              sched_n, r0, need(parser, "step", -1e9, 1e9));
        } else {
          return fail("option --schedule must be uniform, geometric, linear "
                      "or explicit, got '" + schedule_text + "'");
        }
      }
      builder.schedule(std::move(sched));
    }
    const auto trials =
        static_cast<std::size_t>(need(parser, "trials", 1.0, 1e9));
    const auto seed =
        static_cast<std::uint64_t>(need(parser, "seed", 0.0, 1e18));
    const double target_rel_ci = need(parser, "target-rel-ci", 0.0, 1.0);
    if (estimator == engine::Estimator::monte_carlo) {
      builder.trials(trials).seed(seed).network(
          static_cast<unsigned>(need(parser, "space", 2.0, 65024.0)),
          static_cast<unsigned>(need(parser, "sim-hosts", 0.0, 65023.0)));
      if (target_rel_ci > 0.0) {
        builder.target_rel_ci(target_rel_ci)
            .trial_budget(
                static_cast<std::size_t>(need(parser, "min-trials", 0.0, 1e9)),
                static_cast<std::size_t>(need(parser, "max-trials", 0.0, 1e9)));
      }
    }

    engine::CampaignOptions campaign_opts;
    campaign_opts.threads =
        static_cast<unsigned>(need(parser, "threads", 0.0, 1024.0));
    const std::string journal_path = parser.text("journal");
    campaign_opts.journal_path = journal_path;
    campaign_opts.cancel = &g_cancel;
    const double deadline = need(parser, "deadline", 0.0, 1e9);
    if (deadline > 0.0) {
      g_cancel.arm_deadline(
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline)));
    }
    if (parser.flag("resume") && journal_path.empty())
      return fail("--resume requires --journal");

    engine::CampaignRunner runner(campaign_opts);
    const std::vector<engine::ExperimentSpec> specs{builder.build()};
    engine::CampaignResult campaign;
    {
      const ScopedSigint sigint_guard;
      // --resume with no journal file yet is a fresh start, so the same
      // command line works for the first run and every retry after it.
      const bool journal_exists =
          !journal_path.empty() &&
          std::ifstream(journal_path, std::ios::binary).good();
      if (parser.flag("resume") && journal_exists) {
        campaign = runner.resume(specs, journal_path);
        std::cout << "[resumed campaign from journal: " << journal_path
                  << "]\n";
      } else {
        campaign = runner.run(specs);
      }
    }
    const engine::ExperimentResult& experiment = campaign.experiments[0];

    print_scenario(scenario);
    const bool simulated = estimator == engine::Estimator::monte_carlo;
    std::vector<std::string> header{"n", "r [s]", "mean cost",
                                    "P(collision)"};
    const bool adaptive = simulated && target_rel_ci > 0.0;
    if (simulated) {
      header.push_back("cost +/- (95%)");
      header.push_back("aborted");
    }
    if (adaptive) header.push_back("trials");
    analysis::Table table(header);
    for (const engine::CellResult& cell : experiment.cells) {
      std::vector<std::string> row{
          std::to_string(cell.protocol.n), zc::format_sig(cell.protocol.r, 4),
          zc::format_sig(cell.mean_cost, 6),
          zc::format_sig(cell.error_probability, 4)};
      if (simulated) {
        row.push_back(zc::format_sig(cell.cost_ci95, 3));
        row.push_back(std::to_string(cell.aborted));
      }
      if (adaptive) {
        // Realized ladder total; '*' marks a cell that ran to its budget
        // cap without meeting every CI target.
        row.push_back(std::to_string(cell.trials) +
                      (cell.precision_met ? "" : "*"));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << experiment.cells.size() << " cells, estimator "
              << engine::to_string(estimator) << "\n";
    for (const engine::CellResult& cell : experiment.cells)
      if (cell.has_schedule)
        std::cout << "schedule cell: " << cell.schedule.describe() << "\n";

    if (parser.given("csv")) {
      if (!engine::write_campaign_csv(campaign, parser.text("csv")))
        return fail("could not write CSV to '" + parser.text("csv") + "'");
      std::cout << "[campaign CSV: " << parser.text("csv") << "]\n";
    }
    if (parser.given("report")) {
      obs::RunReport report = campaign.report(
          "zcopt_cli", "protocol-grid campaign through the experiment "
                       "engine");
      set_scenario_config(report, scenario);
      report.config()["mode"] = "campaign";
      report.config()["estimator"] = estimator_text;
      if (!schedule_text.empty())
        report.config()["schedule"] = schedule_text;
      if (simulated) {
        report.config()["trials"] = static_cast<std::uint64_t>(trials);
        report.set_seed(seed);
        if (adaptive) report.config()["target_rel_ci"] = target_rel_ci;
      }
      cli_timer.stop();  // close the outer span so it appears in the tree
      report.set_timers(obs::Registry::global().timers_snapshot());
      if (!report.write_file(parser.text("report")))
        return fail("could not write report to '" + parser.text("report") +
                    "'");
      std::cout << "[run report: " << parser.text("report") << "]\n";
    }
    if (!journal_path.empty())
      std::cout << "[campaign journal: " << journal_path << "]\n";
    for (const engine::SpecFailure& failure : campaign.failures)
      std::cerr << "zcopt: spec '" << failure.spec_name
                << "' failed and was quarantined: " << failure.error << '\n';
    if (!campaign.complete) {
      std::cerr << "zcopt: campaign incomplete - "
                << campaign.cancelled.size()
                << " spec(s) not executed; re-run with --resume to finish\n";
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

/// The `check` subcommand: run the differential oracle over a
/// deterministic fuzz-case stream, shrink any failures, and exit
/// nonzero when an invariant is violated.
int run_check_cmd(int argc, const char* const* argv) {
  ArgParser parser("zcopt check",
                   "differential oracle & spec-fuzzing harness: cross-"
                   "validate the analytic, DRM, distribution, surface and "
                   "Monte-Carlo estimators on boundary-biased fuzz cases");
  parser.add_option("seed", "master seed of the fuzz-case stream", "1");
  parser.add_option("cases", "fuzz cases to evaluate", "200");
  parser.add_option("shrink",
                    "minimize failing cases to a replayable reproducer "
                    "(on|off)",
                    "on");
  parser.add_option("threads", "worker threads (0 = hardware)", "0");
  parser.add_option("report",
                    "write a zcopt-check-report JSON manifest to this path",
                    "");

  if (!parser.parse(argc, argv)) return fail(parser.error());
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }

  try {
    check::CheckOptions opts;
    opts.seed = static_cast<std::uint64_t>(need(parser, "seed", 0.0, 1e18));
    opts.cases =
        static_cast<std::uint64_t>(need(parser, "cases", 1.0, 1e9));
    const std::string shrink_text = parser.text("shrink");
    if (shrink_text == "on") {
      opts.shrink = true;
    } else if (shrink_text == "off") {
      opts.shrink = false;
    } else {
      return fail("option --shrink must be on or off, got '" + shrink_text +
                  "'");
    }
    opts.threads =
        static_cast<unsigned>(need(parser, "threads", 0.0, 1024.0));

    const check::CheckResult result = check::run_check(opts);
    std::cout << "check: " << result.cases << " case(s), seed "
              << result.seed << ": " << result.violations
              << " violation(s) in " << result.failures.size()
              << " case(s)\n";
    for (const check::CheckFailure& failure : result.failures) {
      std::cerr << "check: case " << failure.index
                << " FAILED: " << failure.recipe.describe() << '\n';
      for (const check::Violation& v : failure.violations)
        std::cerr << "  " << v.invariant << ": " << v.detail << '\n';
      if (opts.shrink) {
        std::cerr << "  minimal reproducer (" << failure.shrunk_invariant
                  << ", " << failure.shrink_steps << " shrink step(s)): ";
        failure.minimal.to_json().write_compact(std::cerr);
        std::cerr << '\n';
      }
    }
    if (parser.given("report")) {
      const obs::RunReport report = check::check_report(result, opts);
      if (!report.write_file(parser.text("report")))
        return fail("could not write report to '" + parser.text("report") +
                    "'");
      std::cout << "[check report: " << parser.text("report") << "]\n";
    }
    return result.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

/// The classic single-configuration modes: evaluate / optimize /
/// calibrate.
int run_modes(int argc, const char* const* argv) {
  ArgParser parser("zcopt",
                   "zeroconf cost/reliability analysis (DSN'03 model)");
  add_scenario_options(parser);
  parser.add_option("n", "probe count to evaluate", "4");
  parser.add_option("r", "listening period [s] to evaluate", "2");
  parser.add_flag("optimize", "find the cost-optimal (n, r)");
  parser.add_flag("calibrate",
                  "inverse problem: find (E, c) making (n, r) optimal");
  parser.add_flag("quantiles", "also print cost/probe-count quantiles");
  parser.add_option("report",
                    "write a zcopt-run-report JSON manifest to this path",
                    "");

  if (!parser.parse(argc, argv)) return fail(parser.error());
  if (parser.help_requested()) {
    std::cout << parser.help();
    return 0;
  }

  try {
    obs::ScopedTimer cli_timer("zcopt_cli");
    const core::ExponentialScenario scenario = scenario_from(parser);
    const auto params = scenario.to_params();
    const core::ProtocolParams requested{
        static_cast<unsigned>(need(parser, "n", 1.0, 1000.0)),
        need(parser, "r", 1e-9, 1e9)};

    obs::RunReport report("zcopt_cli",
                          "zeroconf cost/reliability analysis (DSN'03 "
                          "model)");
    set_scenario_config(report, scenario);
    report.config()["n"] = requested.n;
    report.config()["r"] = requested.r;
    report.config()["mode"] = parser.flag("calibrate")  ? "calibrate"
                              : parser.flag("optimize") ? "optimize"
                                                        : "evaluate";

    engine::CampaignRunner runner;
    obs::MetricSet engine_metrics;  // merged over every engine run below
    const auto emit_report = [&]() -> int {
      if (!parser.given("report")) return 0;
      cli_timer.stop();  // close the outer span so it appears in the tree
      report.set_metrics(engine_metrics);
      report.set_timers(obs::Registry::global().timers_snapshot());
      if (!report.write_file(parser.text("report")))
        return fail("could not write report to '" + parser.text("report") +
                    "'");
      std::cout << "[run report: " << parser.text("report") << "]\n";
      return 0;
    };
    const auto run_spec =
        [&](const engine::ExperimentSpec& spec) -> engine::ExperimentResult {
      engine::CampaignResult campaign = runner.run({spec});
      engine_metrics.merge(campaign.metrics);
      return std::move(campaign.experiments.front());
    };
    const auto evaluate_cell =
        [&](const std::string& name,
            const core::ProtocolParams& point) -> engine::CellResult {
      return run_spec(engine::SpecBuilder(name, params)
                          .protocol(point)
                          .detailed()
                          .build())
          .cells[0];
    };

    print_scenario(scenario);

    if (parser.flag("calibrate")) {
      obs::ScopedTimer mode_timer("calibrate");
      const engine::ExperimentResult result = run_spec(
          engine::SpecBuilder("calibrate", params)
              .calibrate(requested)
              .build());
      mode_timer.stop();
      if (!result.calibration.has_value())
        return fail("no (E, c) in the search box makes the target optimal");
      std::cout << "calibrated weights for (n = " << requested.n << ", r = "
                << zc::format_sig(requested.r, 4) << "):\n";
      examples::print_calibration(std::cout, *result.calibration);
      obs::JsonValue calibrated = obs::JsonValue::object();
      calibrated["E"] = result.calibration->error_cost;
      calibrated["c"] = result.calibration->probe_cost;
      calibrated["competitor"] = result.calibration->competitor;
      calibrated["target_is_optimal"] = result.calibration->target_is_optimal;
      report.data()["calibrated"] = std::move(calibrated);
      return emit_report();
    }

    if (parser.flag("optimize")) {
      obs::ScopedTimer mode_timer("optimize");
      const engine::ExperimentResult result = run_spec(
          engine::SpecBuilder("optimize", params).optimize(16).build());
      const core::JointOptimum& opt = *result.optimum;
      const engine::CellResult optimal_cell =
          evaluate_cell("optimal", {opt.n, opt.r});
      mode_timer.stop();
      std::cout << "cost-optimal ";
      examples::print_cell(std::cout, optimal_cell);
      if (parser.flag("quantiles")) print_quantiles(params, {opt.n, opt.r});
      report.data()["optimal"] = examples::cell_to_config_json(optimal_cell);
      if (parser.given("n") || parser.given("r")) {
        const engine::CellResult requested_cell =
            evaluate_cell("requested", requested);
        std::cout << "\nrequested ";
        examples::print_cell(std::cout, requested_cell);
        if (parser.flag("quantiles")) print_quantiles(params, requested);
        report.data()["requested"] =
            examples::cell_to_config_json(requested_cell);
      }
      return emit_report();
    }

    obs::ScopedTimer mode_timer("evaluate");
    const engine::CellResult cell = evaluate_cell("evaluate", requested);
    examples::print_cell(std::cout, cell);
    if (parser.flag("quantiles")) print_quantiles(params, requested);
    report.data()["configuration"] = examples::cell_to_config_json(cell);
    mode_timer.stop();
    return emit_report();
  } catch (const std::exception& e) {
    return fail(e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "campaign")
    return run_campaign(argc - 1, argv + 1);
  if (argc >= 2 && std::string(argv[1]) == "check")
    return run_check_cmd(argc - 1, argv + 1);
  return run_modes(argc, argv);
}
