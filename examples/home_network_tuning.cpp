/// Home-network tuning: the consumer-electronics manufacturer's workflow
/// from the paper's introduction. A DVD player joins a wired home network
/// (few hosts, very reliable link). How should the firmware set n and r,
/// and how does the answer move with the household's size?
///
/// The sweep is one declarative campaign: per household size, an optimize
/// spec plus a draft-evaluation spec. The scenarios differ only in q, so
/// the engine's survival-ladder cache shares the F_X ladder work across
/// the whole batch.

#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"

int main() {
  using namespace zc;

  std::cout << "Tuning zeroconf for a wired home network\n"
            << "----------------------------------------\n"
            << "Link: loss 1e-12, round-trip 1 ms, mean reply 101 ms.\n"
            << "Costs: the paper's calibrated E = 5e20, c = 3.5 "
               "(Sec. 4.5/6).\n\n";

  // Start from the Sec. 6 realistic scenario and sweep the household
  // size: a home rarely hosts 1000 appliances.
  const core::ScenarioParams base = core::scenarios::sec6().to_params();
  const core::ProtocolParams draft = core::scenarios::draft_unreliable();
  const std::vector<unsigned> households{5u, 20u, 100u, 500u, 1000u};

  std::vector<engine::ExperimentSpec> specs;
  for (const unsigned hosts : households) {
    const core::ScenarioParams scenario =
        base.with_q(core::ScenarioParams::q_from_hosts(hosts));
    const std::string suffix = "@" + std::to_string(hosts);
    specs.push_back(
        engine::SpecBuilder("opt" + suffix, scenario).optimize().build());
    specs.push_back(engine::SpecBuilder("draft" + suffix, scenario)
                        .protocol(draft)
                        .build());
  }

  engine::CampaignRunner runner;
  const engine::CampaignResult campaign = runner.run(specs);

  zc::analysis::Table table({"hosts on link", "opt n", "opt r [s]",
                             "config time [s]", "mean cost",
                             "P(collision)", "draft (4,2) cost"});
  for (std::size_t i = 0; i < households.size(); ++i) {
    const core::JointOptimum& opt = *campaign.experiments[2 * i].optimum;
    const engine::CellResult& draft_cell =
        campaign.experiments[2 * i + 1].cells[0];
    table.add_row(
        {std::to_string(households[i]), std::to_string(opt.n),
         zc::format_sig(opt.r, 4),
         zc::format_sig(static_cast<double>(opt.n) * opt.r, 4),
         zc::format_sig(opt.cost, 5), zc::format_sig(opt.error_prob, 3),
         zc::format_sig(draft_cell.mean_cost, 5)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table:\n"
               "  - a handful of appliances makes collisions so unlikely\n"
               "    that two probes with a short-ish listening period "
               "suffice;\n"
               "  - even at 1000 hosts the optimized firmware configures "
               "in\n"
               "    about 3.5 s versus the draft's 8 s, at lower total "
               "cost;\n"
               "  - the draft's (4, 2) is never cheaper on this reliable "
               "link.\n";
  return 0;
}
