/// Home-network tuning: the consumer-electronics manufacturer's workflow
/// from the paper's introduction. A DVD player joins a wired home network
/// (few hosts, very reliable link). How should the firmware set n and r,
/// and how does the answer move with the household's size?

#include <iostream>

#include "analysis/table.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

int main() {
  using namespace zc::core;

  std::cout << "Tuning zeroconf for a wired home network\n"
            << "----------------------------------------\n"
            << "Link: loss 1e-12, round-trip 1 ms, mean reply 101 ms.\n"
            << "Costs: the paper's calibrated E = 5e20, c = 3.5 "
               "(Sec. 4.5/6).\n\n";

  // Start from the Sec. 6 realistic scenario and sweep the household
  // size: a home rarely hosts 1000 appliances.
  const ExponentialScenario base = scenarios::sec6();

  zc::analysis::Table table({"hosts on link", "opt n", "opt r [s]",
                             "config time [s]", "mean cost",
                             "P(collision)", "draft (4,2) cost"});
  for (const unsigned hosts : {5u, 20u, 100u, 500u, 1000u}) {
    const ScenarioParams scenario =
        base.to_params().with_q(ScenarioParams::q_from_hosts(hosts));
    const JointOptimum opt = joint_optimum(scenario);
    table.add_row(
        {std::to_string(hosts), std::to_string(opt.n),
         zc::format_sig(opt.r, 4),
         zc::format_sig(static_cast<double>(opt.n) * opt.r, 4),
         zc::format_sig(opt.cost, 5), zc::format_sig(opt.error_prob, 3),
         zc::format_sig(
             mean_cost(scenario, scenarios::draft_unreliable()), 5)});
  }
  table.print(std::cout);

  std::cout << "\nReading the table:\n"
               "  - a handful of appliances makes collisions so unlikely\n"
               "    that two probes with a short-ish listening period "
               "suffice;\n"
               "  - even at 1000 hosts the optimized firmware configures "
               "in\n"
               "    about 3.5 s versus the draft's 8 s, at lower total "
               "cost;\n"
               "  - the draft's (4, 2) is never cheaper on this reliable "
               "link.\n";
  return 0;
}
