#include "example_util.hpp"

#include <cmath>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/strings.hpp"

namespace zc::examples {

void print_cell(std::ostream& os, const engine::CellResult& cell) {
  os << "configuration n = " << cell.protocol.n << ", r = "
     << zc::format_sig(cell.protocol.r, 5) << " s\n"
     << "  mean total cost      : " << zc::format_sig(cell.mean_cost, 6)
     << '\n';
  if (cell.has_detail) {
    os << "  cost std deviation   : " << zc::format_sig(cell.cost_stddev, 5)
       << '\n';
  }
  os << "  collision probability: "
     << zc::format_sig(cell.error_probability, 4) << '\n';
  if (cell.has_detail) {
    os << "  mean waiting time    : "
       << zc::format_sig(cell.mean_waiting_time, 5) << " s\n"
       << "  mean address attempts: " << zc::format_sig(cell.mean_attempts, 6)
       << '\n';
  }
}

void print_simulation_cell(std::ostream& os, const engine::CellResult& cell) {
  os << "Monte-Carlo over " << cell.trials << " runs (n = "
     << cell.protocol.n << ", r = " << zc::format_sig(cell.protocol.r, 4)
     << "):\n"
     << "  mean cost        : " << zc::format_sig(cell.mean_cost)
     << " +/- " << zc::format_sig(cell.cost_ci95, 3) << '\n'
     << "  mean probes      : " << zc::format_sig(cell.mean_probes, 4) << '\n'
     << "  collision rate   : " << zc::format_sig(cell.error_probability, 3)
     << "  (95% CI [" << zc::format_sig(cell.collision_ci_lower, 3) << ", "
     << zc::format_sig(cell.collision_ci_upper, 3) << "])\n";
  if (cell.aborted > 0) {
    os << "  aborted runs     : " << cell.aborted << " of " << cell.trials
       << " (" << zc::format_sig(cell.aborted_rate, 3) << ")\n";
  }
}

void print_optimum(std::ostream& os, const core::JointOptimum& optimum) {
  os << "cost-optimal configuration:\n"
     << "  n = " << optimum.n << ", r = " << zc::format_sig(optimum.r, 4)
     << " s\n"
     << "  mean total cost      : " << zc::format_sig(optimum.cost) << '\n'
     << "  collision probability: " << zc::format_sig(optimum.error_prob)
     << '\n';
}

void print_calibration(std::ostream& os,
                       const core::Calibration& calibration) {
  os << "  collision cost E : " << zc::format_sig(calibration.error_cost, 5)
     << '\n'
     << "  probe postage  c : " << zc::format_sig(calibration.probe_cost, 5)
     << '\n'
     << "  ties against n = " << calibration.competitor << '\n'
     << "  verified joint-optimal: "
     << (calibration.target_is_optimal ? "yes" : "no") << '\n';
}

obs::JsonValue cell_to_config_json(const engine::CellResult& cell) {
  obs::JsonValue out = obs::JsonValue::object();
  out["n"] = cell.protocol.n;
  out["r"] = cell.protocol.r;
  out["mean_cost"] = cell.mean_cost;
  out["cost_stddev"] = cell.cost_stddev;
  out["collision_probability"] = cell.error_probability;
  out["mean_waiting_time"] = cell.mean_waiting_time;
  out["mean_attempts"] = cell.mean_attempts;
  return out;
}

namespace {

std::vector<std::string> split_commas(const std::string& text) {
  std::vector<std::string> items;
  std::istringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) items.push_back(item);
  return items;
}

}  // namespace

std::optional<std::vector<unsigned>> parse_unsigned_list(
    const std::string& text) {
  std::vector<unsigned> out;
  for (const std::string& item : split_commas(text)) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(item.c_str(), &end, 10);
    if (item.empty() || end == nullptr || *end != '\0' || value == 0 ||
        value > 1000000UL)
      return std::nullopt;
    out.push_back(static_cast<unsigned>(value));
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<std::vector<double>> parse_double_list(const std::string& text) {
  std::vector<double> out;
  for (const std::string& item : split_commas(text)) {
    char* end = nullptr;
    const double value = std::strtod(item.c_str(), &end);
    if (item.empty() || end == nullptr || *end != '\0' ||
        !std::isfinite(value))
      return std::nullopt;
    out.push_back(value);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

}  // namespace zc::examples
