#pragma once

/// \file example_util.hpp
/// Printing and parsing helpers shared by the example binaries and the
/// zcopt CLI. Every example routes its runs through the experiment
/// engine (engine::ExperimentSpec / engine::CampaignRunner); these
/// helpers render the engine's results — evaluated cells, joint optima,
/// calibrations — in the examples' house style, and parse the
/// comma-separated grid lists the CLI's `campaign` subcommand accepts.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/calibrate.hpp"
#include "core/optimize.hpp"
#include "engine/campaign.hpp"
#include "obs/json.hpp"

namespace zc::examples {

/// The evaluate-mode measures block:
///
///   configuration n = 4, r = 2 s
///     mean total cost      : ...
///     ...
///
/// Detail lines (stddev, waiting time, attempts) appear when the cell
/// carries them (spec.detailed / Monte-Carlo estimator).
void print_cell(std::ostream& os, const engine::CellResult& cell);

/// The Monte-Carlo summary block: trials, mean cost with its CI, mean
/// probes, and collision rate with its 95% CI. Expects
/// `cell.from_simulation`.
void print_simulation_cell(std::ostream& os, const engine::CellResult& cell);

/// The optimize-mode block: "n = ..., r = ... s" plus cost and collision
/// probability.
void print_optimum(std::ostream& os, const core::JointOptimum& optimum);

/// The calibrate-mode block: calibrated (E, c), the tying competitor,
/// and the verification verdict.
void print_calibration(std::ostream& os, const core::Calibration& calibration);

/// A detailed cell as the zcopt run-report configuration object
/// (n, r, mean_cost, cost_stddev, collision_probability,
/// mean_waiting_time, mean_attempts).
[[nodiscard]] obs::JsonValue cell_to_config_json(
    const engine::CellResult& cell);

/// Parse "1,2,8" into {1, 2, 8}. Empty input, empty items, or
/// non-numeric items yield nullopt.
[[nodiscard]] std::optional<std::vector<unsigned>> parse_unsigned_list(
    const std::string& text);

/// Parse "0.5,2,10" into {0.5, 2.0, 10.0}; rejects non-finite items.
[[nodiscard]] std::optional<std::vector<double>> parse_double_list(
    const std::string& text);

}  // namespace zc::examples
