# Empty dependencies file for zc_linalg.
# This may be replaced when dependencies are built.
