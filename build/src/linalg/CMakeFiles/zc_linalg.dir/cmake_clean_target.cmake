file(REMOVE_RECURSE
  "libzc_linalg.a"
)
