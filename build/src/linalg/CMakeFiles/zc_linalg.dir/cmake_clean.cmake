file(REMOVE_RECURSE
  "CMakeFiles/zc_linalg.dir/lu.cpp.o"
  "CMakeFiles/zc_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/zc_linalg.dir/matrix.cpp.o"
  "CMakeFiles/zc_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/zc_linalg.dir/norms.cpp.o"
  "CMakeFiles/zc_linalg.dir/norms.cpp.o.d"
  "libzc_linalg.a"
  "libzc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
