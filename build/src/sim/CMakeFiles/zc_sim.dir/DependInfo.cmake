
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/host.cpp" "src/sim/CMakeFiles/zc_sim.dir/host.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/host.cpp.o.d"
  "/root/repo/src/sim/medium.cpp" "src/sim/CMakeFiles/zc_sim.dir/medium.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/medium.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/sim/CMakeFiles/zc_sim.dir/monte_carlo.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/zc_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/zc_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/zc_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/zeroconf_host.cpp" "src/sim/CMakeFiles/zc_sim.dir/zeroconf_host.cpp.o" "gcc" "src/sim/CMakeFiles/zc_sim.dir/zeroconf_host.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/zc_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/zc_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
