# Empty compiler generated dependencies file for zc_sim.
# This may be replaced when dependencies are built.
