file(REMOVE_RECURSE
  "CMakeFiles/zc_sim.dir/host.cpp.o"
  "CMakeFiles/zc_sim.dir/host.cpp.o.d"
  "CMakeFiles/zc_sim.dir/medium.cpp.o"
  "CMakeFiles/zc_sim.dir/medium.cpp.o.d"
  "CMakeFiles/zc_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/zc_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/zc_sim.dir/network.cpp.o"
  "CMakeFiles/zc_sim.dir/network.cpp.o.d"
  "CMakeFiles/zc_sim.dir/simulator.cpp.o"
  "CMakeFiles/zc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/zc_sim.dir/trace.cpp.o"
  "CMakeFiles/zc_sim.dir/trace.cpp.o.d"
  "CMakeFiles/zc_sim.dir/zeroconf_host.cpp.o"
  "CMakeFiles/zc_sim.dir/zeroconf_host.cpp.o.d"
  "libzc_sim.a"
  "libzc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
