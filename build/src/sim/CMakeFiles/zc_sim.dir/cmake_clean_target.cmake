file(REMOVE_RECURSE
  "libzc_sim.a"
)
