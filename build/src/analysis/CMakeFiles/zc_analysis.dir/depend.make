# Empty dependencies file for zc_analysis.
# This may be replaced when dependencies are built.
