file(REMOVE_RECURSE
  "CMakeFiles/zc_analysis.dir/ascii_plot.cpp.o"
  "CMakeFiles/zc_analysis.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/zc_analysis.dir/csv.cpp.o"
  "CMakeFiles/zc_analysis.dir/csv.cpp.o.d"
  "CMakeFiles/zc_analysis.dir/expectation.cpp.o"
  "CMakeFiles/zc_analysis.dir/expectation.cpp.o.d"
  "CMakeFiles/zc_analysis.dir/gnuplot.cpp.o"
  "CMakeFiles/zc_analysis.dir/gnuplot.cpp.o.d"
  "CMakeFiles/zc_analysis.dir/series.cpp.o"
  "CMakeFiles/zc_analysis.dir/series.cpp.o.d"
  "CMakeFiles/zc_analysis.dir/table.cpp.o"
  "CMakeFiles/zc_analysis.dir/table.cpp.o.d"
  "libzc_analysis.a"
  "libzc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
