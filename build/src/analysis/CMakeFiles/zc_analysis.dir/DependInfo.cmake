
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_plot.cpp" "src/analysis/CMakeFiles/zc_analysis.dir/ascii_plot.cpp.o" "gcc" "src/analysis/CMakeFiles/zc_analysis.dir/ascii_plot.cpp.o.d"
  "/root/repo/src/analysis/csv.cpp" "src/analysis/CMakeFiles/zc_analysis.dir/csv.cpp.o" "gcc" "src/analysis/CMakeFiles/zc_analysis.dir/csv.cpp.o.d"
  "/root/repo/src/analysis/expectation.cpp" "src/analysis/CMakeFiles/zc_analysis.dir/expectation.cpp.o" "gcc" "src/analysis/CMakeFiles/zc_analysis.dir/expectation.cpp.o.d"
  "/root/repo/src/analysis/gnuplot.cpp" "src/analysis/CMakeFiles/zc_analysis.dir/gnuplot.cpp.o" "gcc" "src/analysis/CMakeFiles/zc_analysis.dir/gnuplot.cpp.o.d"
  "/root/repo/src/analysis/series.cpp" "src/analysis/CMakeFiles/zc_analysis.dir/series.cpp.o" "gcc" "src/analysis/CMakeFiles/zc_analysis.dir/series.cpp.o.d"
  "/root/repo/src/analysis/table.cpp" "src/analysis/CMakeFiles/zc_analysis.dir/table.cpp.o" "gcc" "src/analysis/CMakeFiles/zc_analysis.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
