file(REMOVE_RECURSE
  "libzc_analysis.a"
)
