
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markov/absorbing.cpp" "src/markov/CMakeFiles/zc_markov.dir/absorbing.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/absorbing.cpp.o.d"
  "/root/repo/src/markov/classify.cpp" "src/markov/CMakeFiles/zc_markov.dir/classify.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/classify.cpp.o.d"
  "/root/repo/src/markov/dtmc.cpp" "src/markov/CMakeFiles/zc_markov.dir/dtmc.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/dtmc.cpp.o.d"
  "/root/repo/src/markov/phase_type.cpp" "src/markov/CMakeFiles/zc_markov.dir/phase_type.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/phase_type.cpp.o.d"
  "/root/repo/src/markov/reward.cpp" "src/markov/CMakeFiles/zc_markov.dir/reward.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/reward.cpp.o.d"
  "/root/repo/src/markov/stationary.cpp" "src/markov/CMakeFiles/zc_markov.dir/stationary.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/stationary.cpp.o.d"
  "/root/repo/src/markov/transient.cpp" "src/markov/CMakeFiles/zc_markov.dir/transient.cpp.o" "gcc" "src/markov/CMakeFiles/zc_markov.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/zc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/zc_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
