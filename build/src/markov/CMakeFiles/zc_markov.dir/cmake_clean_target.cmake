file(REMOVE_RECURSE
  "libzc_markov.a"
)
