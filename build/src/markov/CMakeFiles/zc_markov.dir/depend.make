# Empty dependencies file for zc_markov.
# This may be replaced when dependencies are built.
