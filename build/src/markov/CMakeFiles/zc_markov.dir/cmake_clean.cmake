file(REMOVE_RECURSE
  "CMakeFiles/zc_markov.dir/absorbing.cpp.o"
  "CMakeFiles/zc_markov.dir/absorbing.cpp.o.d"
  "CMakeFiles/zc_markov.dir/classify.cpp.o"
  "CMakeFiles/zc_markov.dir/classify.cpp.o.d"
  "CMakeFiles/zc_markov.dir/dtmc.cpp.o"
  "CMakeFiles/zc_markov.dir/dtmc.cpp.o.d"
  "CMakeFiles/zc_markov.dir/phase_type.cpp.o"
  "CMakeFiles/zc_markov.dir/phase_type.cpp.o.d"
  "CMakeFiles/zc_markov.dir/reward.cpp.o"
  "CMakeFiles/zc_markov.dir/reward.cpp.o.d"
  "CMakeFiles/zc_markov.dir/stationary.cpp.o"
  "CMakeFiles/zc_markov.dir/stationary.cpp.o.d"
  "CMakeFiles/zc_markov.dir/transient.cpp.o"
  "CMakeFiles/zc_markov.dir/transient.cpp.o.d"
  "libzc_markov.a"
  "libzc_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
