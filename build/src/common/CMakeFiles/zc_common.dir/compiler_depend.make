# Empty compiler generated dependencies file for zc_common.
# This may be replaced when dependencies are built.
