file(REMOVE_RECURSE
  "CMakeFiles/zc_common.dir/args.cpp.o"
  "CMakeFiles/zc_common.dir/args.cpp.o.d"
  "CMakeFiles/zc_common.dir/strings.cpp.o"
  "CMakeFiles/zc_common.dir/strings.cpp.o.d"
  "libzc_common.a"
  "libzc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
