file(REMOVE_RECURSE
  "libzc_common.a"
)
