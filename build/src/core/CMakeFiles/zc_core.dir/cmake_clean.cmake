file(REMOVE_RECURSE
  "CMakeFiles/zc_core.dir/calibrate.cpp.o"
  "CMakeFiles/zc_core.dir/calibrate.cpp.o.d"
  "CMakeFiles/zc_core.dir/cost.cpp.o"
  "CMakeFiles/zc_core.dir/cost.cpp.o.d"
  "CMakeFiles/zc_core.dir/distribution.cpp.o"
  "CMakeFiles/zc_core.dir/distribution.cpp.o.d"
  "CMakeFiles/zc_core.dir/drm.cpp.o"
  "CMakeFiles/zc_core.dir/drm.cpp.o.d"
  "CMakeFiles/zc_core.dir/heterogeneous.cpp.o"
  "CMakeFiles/zc_core.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/zc_core.dir/no_answer.cpp.o"
  "CMakeFiles/zc_core.dir/no_answer.cpp.o.d"
  "CMakeFiles/zc_core.dir/optimize.cpp.o"
  "CMakeFiles/zc_core.dir/optimize.cpp.o.d"
  "CMakeFiles/zc_core.dir/params.cpp.o"
  "CMakeFiles/zc_core.dir/params.cpp.o.d"
  "CMakeFiles/zc_core.dir/reliability.cpp.o"
  "CMakeFiles/zc_core.dir/reliability.cpp.o.d"
  "CMakeFiles/zc_core.dir/scenarios.cpp.o"
  "CMakeFiles/zc_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/zc_core.dir/sensitivity.cpp.o"
  "CMakeFiles/zc_core.dir/sensitivity.cpp.o.d"
  "libzc_core.a"
  "libzc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
