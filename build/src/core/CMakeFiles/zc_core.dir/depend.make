# Empty dependencies file for zc_core.
# This may be replaced when dependencies are built.
