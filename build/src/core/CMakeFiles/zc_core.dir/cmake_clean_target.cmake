file(REMOVE_RECURSE
  "libzc_core.a"
)
