
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibrate.cpp" "src/core/CMakeFiles/zc_core.dir/calibrate.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/calibrate.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/zc_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/distribution.cpp" "src/core/CMakeFiles/zc_core.dir/distribution.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/distribution.cpp.o.d"
  "/root/repo/src/core/drm.cpp" "src/core/CMakeFiles/zc_core.dir/drm.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/drm.cpp.o.d"
  "/root/repo/src/core/heterogeneous.cpp" "src/core/CMakeFiles/zc_core.dir/heterogeneous.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/core/no_answer.cpp" "src/core/CMakeFiles/zc_core.dir/no_answer.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/no_answer.cpp.o.d"
  "/root/repo/src/core/optimize.cpp" "src/core/CMakeFiles/zc_core.dir/optimize.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/optimize.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/zc_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/params.cpp.o.d"
  "/root/repo/src/core/reliability.cpp" "src/core/CMakeFiles/zc_core.dir/reliability.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/reliability.cpp.o.d"
  "/root/repo/src/core/scenarios.cpp" "src/core/CMakeFiles/zc_core.dir/scenarios.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/scenarios.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/zc_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/zc_core.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/zc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/zc_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/zc_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/zc_markov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
