
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prob/delay.cpp" "src/prob/CMakeFiles/zc_prob.dir/delay.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/delay.cpp.o.d"
  "/root/repo/src/prob/empirical.cpp" "src/prob/CMakeFiles/zc_prob.dir/empirical.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/empirical.cpp.o.d"
  "/root/repo/src/prob/families.cpp" "src/prob/CMakeFiles/zc_prob.dir/families.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/families.cpp.o.d"
  "/root/repo/src/prob/fit.cpp" "src/prob/CMakeFiles/zc_prob.dir/fit.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/fit.cpp.o.d"
  "/root/repo/src/prob/mixture.cpp" "src/prob/CMakeFiles/zc_prob.dir/mixture.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/mixture.cpp.o.d"
  "/root/repo/src/prob/reply_path.cpp" "src/prob/CMakeFiles/zc_prob.dir/reply_path.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/reply_path.cpp.o.d"
  "/root/repo/src/prob/rng.cpp" "src/prob/CMakeFiles/zc_prob.dir/rng.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/rng.cpp.o.d"
  "/root/repo/src/prob/smoothed.cpp" "src/prob/CMakeFiles/zc_prob.dir/smoothed.cpp.o" "gcc" "src/prob/CMakeFiles/zc_prob.dir/smoothed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/zc_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
