file(REMOVE_RECURSE
  "libzc_prob.a"
)
