file(REMOVE_RECURSE
  "CMakeFiles/zc_prob.dir/delay.cpp.o"
  "CMakeFiles/zc_prob.dir/delay.cpp.o.d"
  "CMakeFiles/zc_prob.dir/empirical.cpp.o"
  "CMakeFiles/zc_prob.dir/empirical.cpp.o.d"
  "CMakeFiles/zc_prob.dir/families.cpp.o"
  "CMakeFiles/zc_prob.dir/families.cpp.o.d"
  "CMakeFiles/zc_prob.dir/fit.cpp.o"
  "CMakeFiles/zc_prob.dir/fit.cpp.o.d"
  "CMakeFiles/zc_prob.dir/mixture.cpp.o"
  "CMakeFiles/zc_prob.dir/mixture.cpp.o.d"
  "CMakeFiles/zc_prob.dir/reply_path.cpp.o"
  "CMakeFiles/zc_prob.dir/reply_path.cpp.o.d"
  "CMakeFiles/zc_prob.dir/rng.cpp.o"
  "CMakeFiles/zc_prob.dir/rng.cpp.o.d"
  "CMakeFiles/zc_prob.dir/smoothed.cpp.o"
  "CMakeFiles/zc_prob.dir/smoothed.cpp.o.d"
  "libzc_prob.a"
  "libzc_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
