# Empty dependencies file for zc_prob.
# This may be replaced when dependencies are built.
