# Empty compiler generated dependencies file for zc_numerics.
# This may be replaced when dependencies are built.
