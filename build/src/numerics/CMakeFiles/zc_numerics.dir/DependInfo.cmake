
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/derivative.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/derivative.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/derivative.cpp.o.d"
  "/root/repo/src/numerics/grid.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/grid.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/grid.cpp.o.d"
  "/root/repo/src/numerics/logspace.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/logspace.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/logspace.cpp.o.d"
  "/root/repo/src/numerics/minimize.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/minimize.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/minimize.cpp.o.d"
  "/root/repo/src/numerics/pchip.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/pchip.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/pchip.cpp.o.d"
  "/root/repo/src/numerics/quadrature.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/quadrature.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/quadrature.cpp.o.d"
  "/root/repo/src/numerics/roots.cpp" "src/numerics/CMakeFiles/zc_numerics.dir/roots.cpp.o" "gcc" "src/numerics/CMakeFiles/zc_numerics.dir/roots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
