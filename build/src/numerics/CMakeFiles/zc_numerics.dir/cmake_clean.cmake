file(REMOVE_RECURSE
  "CMakeFiles/zc_numerics.dir/derivative.cpp.o"
  "CMakeFiles/zc_numerics.dir/derivative.cpp.o.d"
  "CMakeFiles/zc_numerics.dir/grid.cpp.o"
  "CMakeFiles/zc_numerics.dir/grid.cpp.o.d"
  "CMakeFiles/zc_numerics.dir/logspace.cpp.o"
  "CMakeFiles/zc_numerics.dir/logspace.cpp.o.d"
  "CMakeFiles/zc_numerics.dir/minimize.cpp.o"
  "CMakeFiles/zc_numerics.dir/minimize.cpp.o.d"
  "CMakeFiles/zc_numerics.dir/pchip.cpp.o"
  "CMakeFiles/zc_numerics.dir/pchip.cpp.o.d"
  "CMakeFiles/zc_numerics.dir/quadrature.cpp.o"
  "CMakeFiles/zc_numerics.dir/quadrature.cpp.o.d"
  "CMakeFiles/zc_numerics.dir/roots.cpp.o"
  "CMakeFiles/zc_numerics.dir/roots.cpp.o.d"
  "libzc_numerics.a"
  "libzc_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
