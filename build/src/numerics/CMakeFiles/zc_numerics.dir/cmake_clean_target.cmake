file(REMOVE_RECURSE
  "libzc_numerics.a"
)
