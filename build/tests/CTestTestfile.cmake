# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/zc_common_test[1]_include.cmake")
include("/root/repo/build/tests/zc_linalg_test[1]_include.cmake")
include("/root/repo/build/tests/zc_numerics_test[1]_include.cmake")
include("/root/repo/build/tests/zc_prob_test[1]_include.cmake")
include("/root/repo/build/tests/zc_markov_test[1]_include.cmake")
include("/root/repo/build/tests/zc_core_test[1]_include.cmake")
include("/root/repo/build/tests/zc_sim_test[1]_include.cmake")
include("/root/repo/build/tests/zc_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/zc_integration_test[1]_include.cmake")
