file(REMOVE_RECURSE
  "CMakeFiles/zc_integration_test.dir/integration/empirical_workflow_test.cpp.o"
  "CMakeFiles/zc_integration_test.dir/integration/empirical_workflow_test.cpp.o.d"
  "CMakeFiles/zc_integration_test.dir/integration/model_vs_sim_test.cpp.o"
  "CMakeFiles/zc_integration_test.dir/integration/model_vs_sim_test.cpp.o.d"
  "CMakeFiles/zc_integration_test.dir/integration/paper_numbers_test.cpp.o"
  "CMakeFiles/zc_integration_test.dir/integration/paper_numbers_test.cpp.o.d"
  "CMakeFiles/zc_integration_test.dir/integration/reply_path_model_test.cpp.o"
  "CMakeFiles/zc_integration_test.dir/integration/reply_path_model_test.cpp.o.d"
  "zc_integration_test"
  "zc_integration_test.pdb"
  "zc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
