# Empty compiler generated dependencies file for zc_integration_test.
# This may be replaced when dependencies are built.
