# Empty dependencies file for zc_sim_test.
# This may be replaced when dependencies are built.
