file(REMOVE_RECURSE
  "CMakeFiles/zc_sim_test.dir/sim/announce_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/announce_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/host_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/host_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/medium_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/medium_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/monte_carlo_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/monte_carlo_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/network_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/network_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/trace_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/trace_test.cpp.o.d"
  "CMakeFiles/zc_sim_test.dir/sim/zeroconf_host_test.cpp.o"
  "CMakeFiles/zc_sim_test.dir/sim/zeroconf_host_test.cpp.o.d"
  "zc_sim_test"
  "zc_sim_test.pdb"
  "zc_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
