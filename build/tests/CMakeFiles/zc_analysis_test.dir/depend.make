# Empty dependencies file for zc_analysis_test.
# This may be replaced when dependencies are built.
