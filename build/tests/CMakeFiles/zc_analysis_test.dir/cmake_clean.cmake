file(REMOVE_RECURSE
  "CMakeFiles/zc_analysis_test.dir/analysis/ascii_plot_test.cpp.o"
  "CMakeFiles/zc_analysis_test.dir/analysis/ascii_plot_test.cpp.o.d"
  "CMakeFiles/zc_analysis_test.dir/analysis/csv_test.cpp.o"
  "CMakeFiles/zc_analysis_test.dir/analysis/csv_test.cpp.o.d"
  "CMakeFiles/zc_analysis_test.dir/analysis/expectation_test.cpp.o"
  "CMakeFiles/zc_analysis_test.dir/analysis/expectation_test.cpp.o.d"
  "CMakeFiles/zc_analysis_test.dir/analysis/gnuplot_test.cpp.o"
  "CMakeFiles/zc_analysis_test.dir/analysis/gnuplot_test.cpp.o.d"
  "CMakeFiles/zc_analysis_test.dir/analysis/series_test.cpp.o"
  "CMakeFiles/zc_analysis_test.dir/analysis/series_test.cpp.o.d"
  "CMakeFiles/zc_analysis_test.dir/analysis/table_test.cpp.o"
  "CMakeFiles/zc_analysis_test.dir/analysis/table_test.cpp.o.d"
  "zc_analysis_test"
  "zc_analysis_test.pdb"
  "zc_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
