# Empty compiler generated dependencies file for zc_linalg_test.
# This may be replaced when dependencies are built.
