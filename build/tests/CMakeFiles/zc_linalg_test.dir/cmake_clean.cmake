file(REMOVE_RECURSE
  "CMakeFiles/zc_linalg_test.dir/linalg/lu_test.cpp.o"
  "CMakeFiles/zc_linalg_test.dir/linalg/lu_test.cpp.o.d"
  "CMakeFiles/zc_linalg_test.dir/linalg/matrix_test.cpp.o"
  "CMakeFiles/zc_linalg_test.dir/linalg/matrix_test.cpp.o.d"
  "CMakeFiles/zc_linalg_test.dir/linalg/norms_test.cpp.o"
  "CMakeFiles/zc_linalg_test.dir/linalg/norms_test.cpp.o.d"
  "zc_linalg_test"
  "zc_linalg_test.pdb"
  "zc_linalg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_linalg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
