# Empty dependencies file for zc_numerics_test.
# This may be replaced when dependencies are built.
