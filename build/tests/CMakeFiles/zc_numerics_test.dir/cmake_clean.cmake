file(REMOVE_RECURSE
  "CMakeFiles/zc_numerics_test.dir/numerics/derivative_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/derivative_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/grid_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/grid_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/kahan_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/kahan_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/logspace_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/logspace_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/minimize_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/minimize_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/pchip_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/pchip_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/quadrature_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/quadrature_test.cpp.o.d"
  "CMakeFiles/zc_numerics_test.dir/numerics/roots_test.cpp.o"
  "CMakeFiles/zc_numerics_test.dir/numerics/roots_test.cpp.o.d"
  "zc_numerics_test"
  "zc_numerics_test.pdb"
  "zc_numerics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_numerics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
