# Empty dependencies file for zc_core_test.
# This may be replaced when dependencies are built.
