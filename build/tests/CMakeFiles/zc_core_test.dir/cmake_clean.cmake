file(REMOVE_RECURSE
  "CMakeFiles/zc_core_test.dir/core/calibrate_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/calibrate_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/cost_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/cost_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/distribution_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/distribution_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/drm_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/drm_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/heterogeneous_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/heterogeneous_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/no_answer_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/no_answer_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/optimize_property_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/optimize_property_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/optimize_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/optimize_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/reliability_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/reliability_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/scenarios_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/scenarios_test.cpp.o.d"
  "CMakeFiles/zc_core_test.dir/core/sensitivity_test.cpp.o"
  "CMakeFiles/zc_core_test.dir/core/sensitivity_test.cpp.o.d"
  "zc_core_test"
  "zc_core_test.pdb"
  "zc_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
