# Empty compiler generated dependencies file for zc_markov_test.
# This may be replaced when dependencies are built.
