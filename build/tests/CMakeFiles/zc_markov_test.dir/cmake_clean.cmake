file(REMOVE_RECURSE
  "CMakeFiles/zc_markov_test.dir/markov/absorbing_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/absorbing_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/classify_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/classify_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/dtmc_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/dtmc_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/phase_type_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/phase_type_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/random_chain_property_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/random_chain_property_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/reward_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/reward_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/stationary_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/stationary_test.cpp.o.d"
  "CMakeFiles/zc_markov_test.dir/markov/transient_test.cpp.o"
  "CMakeFiles/zc_markov_test.dir/markov/transient_test.cpp.o.d"
  "zc_markov_test"
  "zc_markov_test.pdb"
  "zc_markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
