# Empty dependencies file for zc_prob_test.
# This may be replaced when dependencies are built.
