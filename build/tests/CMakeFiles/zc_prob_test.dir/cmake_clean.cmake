file(REMOVE_RECURSE
  "CMakeFiles/zc_prob_test.dir/prob/delay_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/delay_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/empirical_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/empirical_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/families_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/families_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/fit_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/fit_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/mixture_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/mixture_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/reply_path_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/reply_path_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/rng_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/rng_test.cpp.o.d"
  "CMakeFiles/zc_prob_test.dir/prob/smoothed_test.cpp.o"
  "CMakeFiles/zc_prob_test.dir/prob/smoothed_test.cpp.o.d"
  "zc_prob_test"
  "zc_prob_test.pdb"
  "zc_prob_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_prob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
