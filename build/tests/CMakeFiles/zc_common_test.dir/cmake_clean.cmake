file(REMOVE_RECURSE
  "CMakeFiles/zc_common_test.dir/common/args_test.cpp.o"
  "CMakeFiles/zc_common_test.dir/common/args_test.cpp.o.d"
  "CMakeFiles/zc_common_test.dir/common/contract_test.cpp.o"
  "CMakeFiles/zc_common_test.dir/common/contract_test.cpp.o.d"
  "CMakeFiles/zc_common_test.dir/common/strings_test.cpp.o"
  "CMakeFiles/zc_common_test.dir/common/strings_test.cpp.o.d"
  "zc_common_test"
  "zc_common_test.pdb"
  "zc_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zc_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
