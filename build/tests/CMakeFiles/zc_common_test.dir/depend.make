# Empty dependencies file for zc_common_test.
# This may be replaced when dependencies are built.
