# Empty dependencies file for zcopt_cli.
# This may be replaced when dependencies are built.
