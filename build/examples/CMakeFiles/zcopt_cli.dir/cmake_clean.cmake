file(REMOVE_RECURSE
  "CMakeFiles/zcopt_cli.dir/zcopt_cli.cpp.o"
  "CMakeFiles/zcopt_cli.dir/zcopt_cli.cpp.o.d"
  "zcopt_cli"
  "zcopt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zcopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
