# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for home_network_tuning.
