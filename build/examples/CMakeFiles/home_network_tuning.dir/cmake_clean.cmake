file(REMOVE_RECURSE
  "CMakeFiles/home_network_tuning.dir/home_network_tuning.cpp.o"
  "CMakeFiles/home_network_tuning.dir/home_network_tuning.cpp.o.d"
  "home_network_tuning"
  "home_network_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_network_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
