# Empty compiler generated dependencies file for home_network_tuning.
# This may be replaced when dependencies are built.
