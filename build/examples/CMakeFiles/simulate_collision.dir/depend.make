# Empty dependencies file for simulate_collision.
# This may be replaced when dependencies are built.
