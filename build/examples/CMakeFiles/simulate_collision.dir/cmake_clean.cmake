file(REMOVE_RECURSE
  "CMakeFiles/simulate_collision.dir/simulate_collision.cpp.o"
  "CMakeFiles/simulate_collision.dir/simulate_collision.cpp.o.d"
  "simulate_collision"
  "simulate_collision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_collision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
