# Empty dependencies file for calibrate_manufacturer.
# This may be replaced when dependencies are built.
