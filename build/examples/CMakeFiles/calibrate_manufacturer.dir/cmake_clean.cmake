file(REMOVE_RECURSE
  "CMakeFiles/calibrate_manufacturer.dir/calibrate_manufacturer.cpp.o"
  "CMakeFiles/calibrate_manufacturer.dir/calibrate_manufacturer.cpp.o.d"
  "calibrate_manufacturer"
  "calibrate_manufacturer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibrate_manufacturer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
