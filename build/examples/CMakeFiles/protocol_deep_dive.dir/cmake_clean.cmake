file(REMOVE_RECURSE
  "CMakeFiles/protocol_deep_dive.dir/protocol_deep_dive.cpp.o"
  "CMakeFiles/protocol_deep_dive.dir/protocol_deep_dive.cpp.o.d"
  "protocol_deep_dive"
  "protocol_deep_dive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_deep_dive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
