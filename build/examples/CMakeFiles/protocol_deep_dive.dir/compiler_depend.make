# Empty compiler generated dependencies file for protocol_deep_dive.
# This may be replaced when dependencies are built.
