# Empty compiler generated dependencies file for adhoc_wireless.
# This may be replaced when dependencies are built.
