file(REMOVE_RECURSE
  "CMakeFiles/adhoc_wireless.dir/adhoc_wireless.cpp.o"
  "CMakeFiles/adhoc_wireless.dir/adhoc_wireless.cpp.o.d"
  "adhoc_wireless"
  "adhoc_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
