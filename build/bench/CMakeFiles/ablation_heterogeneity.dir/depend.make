# Empty dependencies file for ablation_heterogeneity.
# This may be replaced when dependencies are built.
