file(REMOVE_RECURSE
  "CMakeFiles/ablation_heterogeneity.dir/ablation_heterogeneity.cpp.o"
  "CMakeFiles/ablation_heterogeneity.dir/ablation_heterogeneity.cpp.o.d"
  "ablation_heterogeneity"
  "ablation_heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
