# Empty dependencies file for fig5_error_probability.
# This may be replaced when dependencies are built.
