file(REMOVE_RECURSE
  "CMakeFiles/fig5_error_probability.dir/fig5_error_probability.cpp.o"
  "CMakeFiles/fig5_error_probability.dir/fig5_error_probability.cpp.o.d"
  "fig5_error_probability"
  "fig5_error_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_error_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
