# Empty dependencies file for tab_sec45_calibration.
# This may be replaced when dependencies are built.
