file(REMOVE_RECURSE
  "CMakeFiles/tab_sec45_calibration.dir/tab_sec45_calibration.cpp.o"
  "CMakeFiles/tab_sec45_calibration.dir/tab_sec45_calibration.cpp.o.d"
  "tab_sec45_calibration"
  "tab_sec45_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sec45_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
