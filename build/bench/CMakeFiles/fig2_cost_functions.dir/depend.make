# Empty dependencies file for fig2_cost_functions.
# This may be replaced when dependencies are built.
