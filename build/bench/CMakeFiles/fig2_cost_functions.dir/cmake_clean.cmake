file(REMOVE_RECURSE
  "CMakeFiles/fig2_cost_functions.dir/fig2_cost_functions.cpp.o"
  "CMakeFiles/fig2_cost_functions.dir/fig2_cost_functions.cpp.o.d"
  "fig2_cost_functions"
  "fig2_cost_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cost_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
