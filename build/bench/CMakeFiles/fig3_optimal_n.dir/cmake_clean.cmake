file(REMOVE_RECURSE
  "CMakeFiles/fig3_optimal_n.dir/fig3_optimal_n.cpp.o"
  "CMakeFiles/fig3_optimal_n.dir/fig3_optimal_n.cpp.o.d"
  "fig3_optimal_n"
  "fig3_optimal_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_optimal_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
