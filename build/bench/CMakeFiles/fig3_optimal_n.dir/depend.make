# Empty dependencies file for fig3_optimal_n.
# This may be replaced when dependencies are built.
