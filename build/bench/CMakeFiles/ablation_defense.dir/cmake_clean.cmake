file(REMOVE_RECURSE
  "CMakeFiles/ablation_defense.dir/ablation_defense.cpp.o"
  "CMakeFiles/ablation_defense.dir/ablation_defense.cpp.o.d"
  "ablation_defense"
  "ablation_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
