# Empty compiler generated dependencies file for ablation_defense.
# This may be replaced when dependencies are built.
