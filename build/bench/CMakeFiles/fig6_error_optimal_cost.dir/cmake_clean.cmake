file(REMOVE_RECURSE
  "CMakeFiles/fig6_error_optimal_cost.dir/fig6_error_optimal_cost.cpp.o"
  "CMakeFiles/fig6_error_optimal_cost.dir/fig6_error_optimal_cost.cpp.o.d"
  "fig6_error_optimal_cost"
  "fig6_error_optimal_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_error_optimal_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
