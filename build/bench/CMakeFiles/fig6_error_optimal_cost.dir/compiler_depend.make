# Empty compiler generated dependencies file for fig6_error_optimal_cost.
# This may be replaced when dependencies are built.
