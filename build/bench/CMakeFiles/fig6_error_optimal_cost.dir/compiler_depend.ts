# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig6_error_optimal_cost.
