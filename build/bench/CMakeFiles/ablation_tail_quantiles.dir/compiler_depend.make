# Empty compiler generated dependencies file for ablation_tail_quantiles.
# This may be replaced when dependencies are built.
