file(REMOVE_RECURSE
  "CMakeFiles/ablation_tail_quantiles.dir/ablation_tail_quantiles.cpp.o"
  "CMakeFiles/ablation_tail_quantiles.dir/ablation_tail_quantiles.cpp.o.d"
  "ablation_tail_quantiles"
  "ablation_tail_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tail_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
