# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ablation_sim_vs_model.
