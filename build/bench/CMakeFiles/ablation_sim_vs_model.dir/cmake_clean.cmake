file(REMOVE_RECURSE
  "CMakeFiles/ablation_sim_vs_model.dir/ablation_sim_vs_model.cpp.o"
  "CMakeFiles/ablation_sim_vs_model.dir/ablation_sim_vs_model.cpp.o.d"
  "ablation_sim_vs_model"
  "ablation_sim_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sim_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
