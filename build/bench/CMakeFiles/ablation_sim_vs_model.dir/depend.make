# Empty dependencies file for ablation_sim_vs_model.
# This may be replaced when dependencies are built.
