file(REMOVE_RECURSE
  "CMakeFiles/ablation_distributions.dir/ablation_distributions.cpp.o"
  "CMakeFiles/ablation_distributions.dir/ablation_distributions.cpp.o.d"
  "ablation_distributions"
  "ablation_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
