# Empty dependencies file for ablation_distributions.
# This may be replaced when dependencies are built.
