
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_microbench.cpp" "bench/CMakeFiles/perf_microbench.dir/perf_microbench.cpp.o" "gcc" "bench/CMakeFiles/perf_microbench.dir/perf_microbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/zc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/zc_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/prob/CMakeFiles/zc_prob.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/zc_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/zc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
