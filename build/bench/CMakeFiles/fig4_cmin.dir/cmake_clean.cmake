file(REMOVE_RECURSE
  "CMakeFiles/fig4_cmin.dir/fig4_cmin.cpp.o"
  "CMakeFiles/fig4_cmin.dir/fig4_cmin.cpp.o.d"
  "fig4_cmin"
  "fig4_cmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
