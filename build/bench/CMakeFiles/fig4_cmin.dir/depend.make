# Empty dependencies file for fig4_cmin.
# This may be replaced when dependencies are built.
