# Empty compiler generated dependencies file for tab_sec6_assessment.
# This may be replaced when dependencies are built.
