file(REMOVE_RECURSE
  "CMakeFiles/tab_sec6_assessment.dir/tab_sec6_assessment.cpp.o"
  "CMakeFiles/tab_sec6_assessment.dir/tab_sec6_assessment.cpp.o.d"
  "tab_sec6_assessment"
  "tab_sec6_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sec6_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
