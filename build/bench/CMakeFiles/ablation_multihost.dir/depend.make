# Empty dependencies file for ablation_multihost.
# This may be replaced when dependencies are built.
