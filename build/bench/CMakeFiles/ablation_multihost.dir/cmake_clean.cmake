file(REMOVE_RECURSE
  "CMakeFiles/ablation_multihost.dir/ablation_multihost.cpp.o"
  "CMakeFiles/ablation_multihost.dir/ablation_multihost.cpp.o.d"
  "ablation_multihost"
  "ablation_multihost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multihost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
