#include "exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "exec/seeding.hpp"
#include "exec/thread_pool.hpp"

namespace {

using namespace zc::exec;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&] { hits.fetch_add(1); });
  // Destructor drains the queue and joins.
  while (hits.load() < 50) std::this_thread::yield();
  EXPECT_EQ(hits.load(), 50);
}

TEST(ThreadPool, RunOneDrainsQueue) {
  ThreadPool pool(1);
  // Pin the single worker on a task that waits for a flag, then drain a
  // second task from the submitting thread itself.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> second_ran{false};
  pool.submit([&] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  pool.submit([&] { second_ran.store(true); });
  EXPECT_TRUE(pool.run_one());
  EXPECT_TRUE(second_ran.load());
  release.store(true);
}

TEST(ChunkLayout, CoversRangeExactly) {
  for (std::size_t n : {0ul, 1ul, 63ul, 64ul, 65ul, 1000ul}) {
    const std::size_t chunk = resolve_chunk_size(n, 0);
    const std::size_t chunks = chunk_count(n, chunk);
    if (n == 0) {
      EXPECT_EQ(chunks, 0u);
      continue;
    }
    EXPECT_GE(chunks * chunk, n);
    EXPECT_LT((chunks - 1) * chunk, n);
  }
}

TEST(ChunkLayout, IndependentOfThreadCount) {
  // The layout is a pure function of (n, chunk_size): nothing about the
  // thread count enters. Guard the default against regressions.
  EXPECT_EQ(resolve_chunk_size(6400, 0), 100u);
  EXPECT_EQ(resolve_chunk_size(10, 0), 1u);
  EXPECT_EQ(resolve_chunk_size(100, 7), 7u);
}

TEST(ParallelFor, EveryIndexExactlyOnceUnderOversubscription) {
  // 16 threads on (typically far fewer) cores, tiny chunks: maximal
  // scheduling churn. Each index must still be visited exactly once.
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  ExecOptions opts;
  opts.threads = 16;
  opts.chunk_size = 3;
  parallel_for(
      kN, [&](std::size_t i) { visits[i].fetch_add(1); }, opts);
  for (std::size_t i = 0; i < kN; ++i)
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialAndParallelVisitSameIndices) {
  constexpr std::size_t kN = 777;
  std::vector<int> serial(kN, 0), parallel(kN, 0);
  parallel_for(
      kN, [&](std::size_t i) { serial[i] = static_cast<int>(i) + 1; },
      {1, 0});
  parallel_for(
      kN, [&](std::size_t i) { parallel[i] = static_cast<int>(i) + 1; },
      {8, 0});
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, EmptyRangeIsANoop) {
  bool touched = false;
  parallel_for(0, [&](std::size_t) { touched = true; }, {8, 0});
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ExceptionsPropagateToCaller) {
  ExecOptions opts;
  opts.threads = 4;
  opts.chunk_size = 1;
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          opts),
      std::runtime_error);
}

TEST(ParallelFor, SuppressedExceptionsAreCounted) {
  // Only one exception can propagate per section; the rest must not
  // vanish silently. Serial execution makes the tally deterministic:
  // 5 throwing chunks -> 1 rethrown + 4 suppressed.
  const std::uint64_t before = suppressed_error_count();
  ExecOptions opts;
  opts.threads = 1;
  opts.chunk_size = 1;
  EXPECT_THROW(
      parallel_for(
          5, [&](std::size_t i) { throw std::runtime_error(std::to_string(i)); },
          opts),
      std::runtime_error);
  EXPECT_EQ(suppressed_error_count() - before, 4u);
}

TEST(ParallelFor, CleanSectionsLeaveTheSuppressedCountAlone) {
  const std::uint64_t before = suppressed_error_count();
  parallel_for(100, [](std::size_t) {}, {4, 1});
  EXPECT_EQ(suppressed_error_count(), before);
}

TEST(ParallelFor, PreStoppedTokenRunsNothing) {
  CancelToken token;
  token.request_stop();
  std::atomic<int> visits{0};
  ExecOptions opts;
  opts.threads = 8;
  opts.cancel = &token;
  parallel_for(1000, [&](std::size_t) { visits.fetch_add(1); }, opts);
  EXPECT_EQ(visits.load(), 0);
}

TEST(ParallelFor, CancellationSkipsRemainingChunks) {
  // Serial, one-element chunks: chunks run in ascending order and the
  // token is consulted before every claim, so a stop requested inside
  // chunk 2 leaves exactly indices {0, 1, 2} visited.
  CancelToken token;
  std::vector<int> visited(100, 0);
  ExecOptions opts;
  opts.threads = 1;
  opts.chunk_size = 1;
  opts.cancel = &token;
  parallel_for(
      100,
      [&](std::size_t i) {
        visited[i] = 1;
        if (i == 2) token.request_stop();
      },
      opts);
  EXPECT_EQ(std::accumulate(visited.begin(), visited.end(), 0), 3);
  EXPECT_EQ(visited[0], 1);
  EXPECT_EQ(visited[1], 1);
  EXPECT_EQ(visited[2], 1);
  EXPECT_EQ(visited[3], 0);
}

TEST(CancelTokenTest, DeadlineLatchesAndSticks) {
  CancelToken token;
  EXPECT_FALSE(token.stop_requested());
  // A non-positive budget expires immediately; once observed stopped the
  // token never reverts.
  token.arm_deadline(std::chrono::steady_clock::duration::zero());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.stop_requested());
}

TEST(ParallelReduce, CancelledReductionMergesOnlyExecutedChunks) {
  CancelToken token;
  token.request_stop();
  ExecOptions opts;
  opts.threads = 4;
  opts.cancel = &token;
  const auto body = [](long long& acc, std::size_t i) {
    acc += static_cast<long long>(i) + 1;
  };
  const auto merge = [](long long& into, const long long& from) {
    into += from;
  };
  EXPECT_EQ(parallel_reduce(1000, 0LL, body, merge, opts), 0LL);
}

TEST(ParallelFor, NestedSectionsComplete) {
  // A parallel body that itself opens a parallel section must not
  // deadlock, even oversubscribed (waiters help drain the pool queue).
  std::atomic<int> total{0};
  ExecOptions outer{8, 1};
  parallel_for(
      8,
      [&](std::size_t) {
        parallel_for(
            16, [&](std::size_t) { total.fetch_add(1); }, {4, 1});
      },
      outer);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelReduce, SumMatchesSerialAtAnyThreadCount) {
  constexpr std::size_t kN = 12345;
  const auto body = [](long long& acc, std::size_t i) {
    acc += static_cast<long long>(i);
  };
  const auto merge = [](long long& into, const long long& from) {
    into += from;
  };
  const long long expected =
      static_cast<long long>(kN) * static_cast<long long>(kN - 1) / 2;
  for (unsigned threads : {1u, 2u, 8u, 16u}) {
    ExecOptions opts;
    opts.threads = threads;
    EXPECT_EQ(parallel_reduce(kN, 0LL, body, merge, opts), expected)
        << threads << " threads";
  }
}

TEST(ParallelReduce, FloatingPointBitwiseIdenticalAcrossThreads) {
  // The double-precision result depends on chunk boundaries and merge
  // order — both fixed — so any thread count must agree *bitwise*.
  constexpr std::size_t kN = 9999;
  const auto body = [](double& acc, std::size_t i) {
    acc += 1.0 / (1.0 + static_cast<double>(i));
  };
  const auto merge = [](double& into, const double& from) { into += from; };
  const double serial = parallel_reduce(kN, 0.0, body, merge, {1, 0});
  for (unsigned threads : {2u, 5u, 16u}) {
    ExecOptions opts;
    opts.threads = threads;
    const double parallel = parallel_reduce(kN, 0.0, body, merge, opts);
    EXPECT_EQ(serial, parallel) << threads << " threads";
  }
}

TEST(Seeding, SplitSeedIsPureAndSpreads) {
  EXPECT_EQ(split_seed(42, 7), split_seed(42, 7));
  // Neighbouring indices and neighbouring seeds land far apart.
  EXPECT_NE(split_seed(42, 7), split_seed(42, 8));
  EXPECT_NE(split_seed(42, 7), split_seed(43, 7));
  // No shifted-stream aliasing between adjacent master seeds.
  EXPECT_NE(split_seed(42, 1), split_seed(43, 0));
}

TEST(Seeding, SplitMix64KnownVector) {
  // Reference values from the canonical splitmix64.c (Vigna), state 1234567.
  std::uint64_t state = 1234567;
  const std::uint64_t first = splitmix64(state);
  EXPECT_EQ(first, 6457827717110365317ULL);
}

}  // namespace
