#include "core/cost_surface.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "numerics/grid.hpp"

namespace {

using namespace zc::core;

const ScenarioParams& fig2() {
  static const ScenarioParams scenario = scenarios::figure2().to_params();
  return scenario;
}

TEST(CostSurface, CostColumnBitwiseEqualsPointwiseMeanCost) {
  const CostSurface surface(fig2(), 12);
  for (double r : {0.0, 0.05, 0.5, 1.7, 2.14, 4.0, 50.0}) {
    const auto column = surface.cost_column(r);
    ASSERT_EQ(column.size(), 12u);
    for (unsigned n = 1; n <= 12; ++n) {
      EXPECT_EQ(column[n - 1], mean_cost(fig2(), ProtocolParams{n, r}))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(CostSurface, ErrorColumnBitwiseEqualsPointwiseErrorProbability) {
  const CostSurface surface(fig2(), 10);
  for (double r : {0.0, 0.3, 1.7, 4.0}) {
    const auto column = surface.error_column(r);
    for (unsigned n = 1; n <= 10; ++n) {
      EXPECT_EQ(column[n - 1],
                error_probability(fig2(), ProtocolParams{n, r}))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(CostSurface, MinOverNMatchesOptimalN) {
  const CostSurface surface(fig2(), 64);
  for (double r = 0.4; r <= 4.0; r += 0.05) {
    const auto m = surface.min_over_n(r);
    EXPECT_EQ(m.n, optimal_n(fig2(), r)) << "r=" << r;
    EXPECT_EQ(m.cost, mean_cost(fig2(), ProtocolParams{m.n, r})) << "r=" << r;
  }
}

TEST(CostSurface, ParallelGridBitwiseEqualsSerialGrid) {
  const CostSurface surface(fig2(), 8);
  const auto r_grid = zc::numerics::linspace(0.05, 4.0, 97);
  const auto serial = surface.costs(r_grid, {1, 0});
  const auto parallel = surface.costs(r_grid, {8, 2});
  ASSERT_EQ(serial.values.size(), parallel.values.size());
  EXPECT_EQ(serial.values, parallel.values);
  const auto serial_err = surface.error_probabilities(r_grid, {1, 0});
  const auto parallel_err = surface.error_probabilities(r_grid, {8, 2});
  EXPECT_EQ(serial_err.values, parallel_err.values);
}

TEST(CostSurface, SurfaceRowsAndAtAgree) {
  const CostSurface surface(fig2(), 6);
  const auto r_grid = zc::numerics::linspace(0.5, 3.5, 31);
  const auto grid = surface.costs(r_grid);
  for (unsigned n = 1; n <= 6; ++n) {
    const auto row = grid.row(n);
    ASSERT_EQ(row.size(), r_grid.size());
    for (std::size_t j = 0; j < r_grid.size(); ++j) {
      EXPECT_EQ(row[j], grid.at(n, j));
      EXPECT_EQ(row[j], mean_cost(fig2(), ProtocolParams{n, r_grid[j]}));
    }
  }
}

TEST(CostSurface, ParallelOptimizersMatchSerialOnes) {
  // The r-scan of optimal_r and the n-sweep of joint_optimum go through
  // the exec layer; any thread count must reproduce the serial answer
  // exactly.
  ROptOptions serial;
  serial.exec.threads = 1;
  ROptOptions parallel;
  parallel.exec.threads = 8;
  const CostMinimum m_serial = optimal_r(fig2(), 4, serial);
  const CostMinimum m_parallel = optimal_r(fig2(), 4, parallel);
  EXPECT_EQ(m_serial.r, m_parallel.r);
  EXPECT_EQ(m_serial.cost, m_parallel.cost);

  const JointOptimum j_serial = joint_optimum(fig2(), 8, serial);
  const JointOptimum j_parallel = joint_optimum(fig2(), 8, parallel);
  EXPECT_EQ(j_serial.n, j_parallel.n);
  EXPECT_EQ(j_serial.r, j_parallel.r);
  EXPECT_EQ(j_serial.cost, j_parallel.cost);
  EXPECT_EQ(j_serial.error_prob, j_parallel.error_prob);
}

TEST(CostSurface, BreakpointsMatchAcrossThreadCounts) {
  const auto serial = n_breakpoints(fig2(), 0.5, 3.5, 64, 1e-6, 64, {1, 0});
  const auto parallel = n_breakpoints(fig2(), 0.5, 3.5, 64, 1e-6, 64, {8, 1});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].n, parallel[i].n);
    EXPECT_EQ(serial[i].r_from, parallel[i].r_from);
    EXPECT_EQ(serial[i].r_to, parallel[i].r_to);
  }
}

TEST(CostSurface, InvalidArgumentsRejected) {
  EXPECT_THROW(CostSurface(fig2(), 0), zc::ContractViolation);
  const CostSurface surface(fig2(), 4);
  EXPECT_THROW((void)surface.cost_column(-1.0), zc::ContractViolation);
}

}  // namespace
