/// Regression tests for the centralized ProtocolParams domain checks:
/// every rejection goes through ProtocolParams::validate, names the
/// offending field, and is enforced by the evaluators that consume the
/// parameters.

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/drm.hpp"
#include "core/params.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc;

core::ScenarioParams scenario() {
  return core::scenarios::figure2().to_params();
}

TEST(ParamsValidation, AcceptsTheDraftConfiguration) {
  const core::ProtocolParams draft{4, 2.0};
  EXPECT_NO_THROW(draft.validate());
  EXPECT_NO_THROW(draft.validate(/*allow_zero_r=*/true));
}

TEST(ParamsValidation, RejectsZeroProbeCount) {
  const core::ProtocolParams p{0, 2.0};
  EXPECT_THROW(p.validate(), zc::ContractViolation);
  try {
    p.validate();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ProtocolParams.n"),
              std::string::npos);
  }
}

TEST(ParamsValidation, RejectsNonPositiveRByDefault) {
  EXPECT_THROW((core::ProtocolParams{4, 0.0}.validate()),
               zc::ContractViolation);
  EXPECT_THROW((core::ProtocolParams{4, -1.0}.validate()),
               zc::ContractViolation);
  try {
    core::ProtocolParams{4, -1.0}.validate();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ProtocolParams.r"),
              std::string::npos);
  }
}

TEST(ParamsValidation, RejectsNonFiniteR) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((core::ProtocolParams{4, inf}.validate()),
               zc::ContractViolation);
  EXPECT_THROW((core::ProtocolParams{4, nan}.validate()),
               zc::ContractViolation);
  // Non-finite r is rejected even in the relaxed closed-form domain.
  EXPECT_THROW((core::ProtocolParams{4, inf}.validate(true)),
               zc::ContractViolation);
  EXPECT_THROW((core::ProtocolParams{4, nan}.validate(true)),
               zc::ContractViolation);
}

TEST(ParamsValidation, AllowZeroRAdmitsTheClosedFormLimit) {
  const core::ProtocolParams limit{4, 0.0};
  EXPECT_NO_THROW(limit.validate(/*allow_zero_r=*/true));
  EXPECT_THROW((core::ProtocolParams{4, -0.5}.validate(true)),
               zc::ContractViolation);
}

// The evaluators enforce the centralized checks.

TEST(ParamsValidation, MeanCostRejectsMalformedParams) {
  EXPECT_THROW((void)core::mean_cost(scenario(), {0, 2.0}),
               zc::ContractViolation);
  EXPECT_THROW((void)core::mean_cost(scenario(), {4, -1.0}),
               zc::ContractViolation);
  // r = 0 stays admissible: the closed-form limit C(n, 0) = qE.
  EXPECT_NO_THROW((void)core::mean_cost(scenario(), {4, 0.0}));
}

TEST(ParamsValidation, BuildChainRejectsMalformedParams) {
  EXPECT_THROW((void)core::build_chain(scenario(), {0, 1.0}),
               zc::ContractViolation);
  EXPECT_THROW(
      (void)core::build_chain(scenario(),
                              {3, std::numeric_limits<double>::infinity()}),
      zc::ContractViolation);
}

}  // namespace
