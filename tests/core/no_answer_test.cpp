#include "core/no_answer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "prob/families.hpp"

namespace {

using namespace zc::core;
using zc::prob::paper_reply_delay;

TEST(NoAnswer, PZeroIsOne) {
  const auto fx = paper_reply_delay(0.1, 10.0, 1.0);
  EXPECT_EQ(no_answer_probability(*fx, 0, 2.0), 1.0);
  EXPECT_EQ(no_answer_probability_product(*fx, 0, 2.0), 1.0);
}

TEST(NoAnswer, TelescopesToSurvival) {
  // The Eq. (1) product telescopes: p_i(r) = 1 - F_X(i r). This is the
  // derivation DESIGN.md records; both code paths must agree.
  const auto fx = paper_reply_delay(1e-3, 10.0, 1.0);
  for (unsigned i : {1u, 2u, 3u, 5u, 8u}) {
    for (double r : {0.3, 0.9, 1.1, 2.0, 3.7}) {
      EXPECT_NEAR(no_answer_probability_product(*fx, i, r),
                  no_answer_probability(*fx, i, r),
                  1e-12 * no_answer_probability(*fx, i, r) + 1e-300)
          << "i=" << i << " r=" << r;
    }
  }
}

TEST(NoAnswer, EqualsSurvivalAtIR) {
  const auto fx = paper_reply_delay(0.05, 4.0, 0.5);
  for (unsigned i : {1u, 3u, 6u})
    for (double r : {0.2, 1.0, 2.5})
      EXPECT_DOUBLE_EQ(no_answer_probability(*fx, i, r),
                       fx->survival(i * r));
}

TEST(NoAnswer, OneWhenListeningShorterThanRoundTrip) {
  // r < d and i*r < d: no reply can have arrived (p_i = 1).
  const auto fx = paper_reply_delay(0.0, 10.0, 1.0);
  EXPECT_EQ(no_answer_probability(*fx, 1, 0.5), 1.0);
  EXPECT_EQ(no_answer_probability_product(*fx, 1, 0.5), 1.0);
}

TEST(NoAnswer, DecreasesInRAndI) {
  const auto fx = paper_reply_delay(1e-6, 10.0, 1.0);
  EXPECT_GT(no_answer_probability(*fx, 1, 1.5),
            no_answer_probability(*fx, 1, 2.5));
  EXPECT_GT(no_answer_probability(*fx, 1, 1.5),
            no_answer_probability(*fx, 2, 1.5));
}

TEST(NoAnswer, FlooredByLossProbability) {
  const double loss = 1e-5;
  const auto fx = paper_reply_delay(loss, 10.0, 0.1);
  EXPECT_GE(no_answer_probability(*fx, 1, 100.0), loss);
  EXPECT_NEAR(no_answer_probability(*fx, 1, 100.0), loss, loss * 1e-9);
}

TEST(PiValues, StartsAtOneAndIsNonIncreasing) {
  const auto fx = paper_reply_delay(1e-4, 10.0, 1.0);
  const auto pi = pi_values(*fx, 8, 1.3);
  ASSERT_EQ(pi.size(), 9u);
  EXPECT_EQ(pi[0], 1.0);
  for (std::size_t i = 1; i < pi.size(); ++i) {
    EXPECT_LE(pi[i], pi[i - 1]);
    EXPECT_GT(pi[i], 0.0);
  }
}

TEST(PiValues, ProductOfSurvivals) {
  const auto fx = paper_reply_delay(1e-4, 10.0, 1.0);
  const double r = 1.7;
  const auto pi = pi_values(*fx, 5, r);
  double expected = 1.0;
  for (unsigned j = 1; j <= 5; ++j) {
    expected *= fx->survival(j * r);
    EXPECT_NEAR(pi[j], expected, 1e-15 + expected * 1e-12);
  }
}

TEST(PiValues, AtZeroRAllOne) {
  // pi_i(0) = 1 (Sec. 4.2).
  const auto fx = paper_reply_delay(1e-15, 10.0, 1.0);
  const auto pi = pi_values(*fx, 6, 0.0);
  for (double v : pi) EXPECT_EQ(v, 1.0);
}

TEST(PiValues, LargeRLimitIsLossPowerI) {
  // lim_{r->inf} pi_i(r) = (1-l)^i = loss^i (Sec. 4.2).
  const double loss = 1e-5;
  const auto fx = paper_reply_delay(loss, 10.0, 1.0);
  const auto pi = pi_values(*fx, 4, 1e4);
  for (unsigned i = 0; i <= 4; ++i)
    EXPECT_NEAR(pi[i] / std::pow(loss, i), 1.0, 1e-9) << "i=" << i;
}

TEST(PiValues, PaperScenarioDeepValuesRepresentable) {
  // Fig. 2 scenario: pi_8 at large r ~ (1e-15)^8 = 1e-120 — still a
  // normal double, and the direct product must not underflow to 0.
  const auto fx = paper_reply_delay(1e-15, 10.0, 1.0);
  const auto pi = pi_values(*fx, 8, 50.0);
  EXPECT_GT(pi[8], 0.0);
  EXPECT_NEAR(std::log10(pi[8]), -120.0, 0.1);
}

TEST(LogPi, MatchesDirectLogarithm) {
  const auto fx = paper_reply_delay(1e-6, 10.0, 1.0);
  for (unsigned n : {1u, 4u, 8u}) {
    for (double r : {0.5, 1.2, 2.8}) {
      const auto pi = pi_values(*fx, n, r);
      EXPECT_NEAR(log_pi(*fx, n, r), std::log(pi[n]),
                  1e-10 * std::fabs(std::log(pi[n])) + 1e-12)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(LogPi, ExactDeepInUnderflowTerritory) {
  // At extreme n*r the linear-domain pi underflows, but log_pi stays
  // finite and equals n * log(loss) in the limit.
  const double loss = 1e-15;
  const auto fx = paper_reply_delay(loss, 10.0, 1.0);
  const double lp = log_pi(*fx, 20, 1e3);
  EXPECT_NEAR(lp / (20.0 * std::log(loss)), 1.0, 1e-9);
}

/// Property sweep: telescoping across distributions, probes and r.
struct TelescopeCase {
  const char* label;
  double loss, lambda, d;
};

class TelescopeSweep : public ::testing::TestWithParam<TelescopeCase> {};

TEST_P(TelescopeSweep, ProductEqualsSurvivalForm) {
  const auto& param = GetParam();
  const auto fx = paper_reply_delay(param.loss, param.lambda, param.d);
  for (unsigned i = 1; i <= 10; ++i) {
    for (double r = 0.1; r <= 4.0; r += 0.37) {
      const double survival_form = no_answer_probability(*fx, i, r);
      const double product_form = no_answer_probability_product(*fx, i, r);
      if (survival_form >= 1e-6) {
        // Cancellation in the literal 1 - cdf quotients is negligible.
        EXPECT_NEAR(product_form / survival_form, 1.0, 1e-9)
            << param.label << " i=" << i << " r=" << r;
      } else {
        // Deep tail: the literal Eq. (1) evaluation loses precision to
        // 1 - cdf cancellation (the very reason the survival form
        // exists); only order-of-magnitude agreement is meaningful.
        EXPECT_GT(product_form, 0.3 * survival_form)
            << param.label << " i=" << i << " r=" << r;
        EXPECT_LT(product_form, 3.0 * survival_form)
            << param.label << " i=" << i << " r=" << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TelescopeSweep,
    ::testing::Values(TelescopeCase{"fig2", 1e-15, 10.0, 1.0},
                      TelescopeCase{"sec45_r2", 1e-5, 10.0, 1.0},
                      TelescopeCase{"sec45_r02", 1e-10, 100.0, 0.1},
                      TelescopeCase{"sec6", 1e-12, 10.0, 1e-3},
                      TelescopeCase{"lossy", 0.3, 2.0, 0.5}),
    [](const ::testing::TestParamInfo<TelescopeCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
