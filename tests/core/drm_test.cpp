#include "core/drm.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/no_answer.hpp"
#include "core/scenarios.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::core;

ScenarioParams test_scenario() {
  return ScenarioParams(0.25, 2.0, 100.0,
                        zc::prob::paper_reply_delay(0.1, 4.0, 0.5));
}

TEST(DrmLayout, IndicesFollowPaperTable) {
  // Paper Sec. 4.1 (1-based): start=1, 1st=2, ..., nth=n+1, error=n+2,
  // ok=n+3. Our 0-based layout shifts by one.
  const DrmLayout layout{4};
  EXPECT_EQ(DrmLayout::start(), 0u);
  EXPECT_EQ(layout.probe_state(1), 1u);
  EXPECT_EQ(layout.probe_state(4), 4u);
  EXPECT_EQ(layout.error(), 5u);
  EXPECT_EQ(layout.ok(), 6u);
  EXPECT_EQ(layout.num_states(), 7u);
}

TEST(DrmLayout, ProbeStateBoundsEnforced) {
  const DrmLayout layout{3};
  EXPECT_THROW((void)layout.probe_state(0), zc::ContractViolation);
  EXPECT_THROW((void)layout.probe_state(4), zc::ContractViolation);
}

TEST(DrmLayout, PaperStateNames) {
  const DrmLayout layout{5};
  const auto names = layout.state_names();
  EXPECT_EQ(names[0], "start");
  EXPECT_EQ(names[1], "1st");
  EXPECT_EQ(names[2], "2nd");
  EXPECT_EQ(names[3], "3rd");
  EXPECT_EQ(names[4], "4th");
  EXPECT_EQ(names[5], "5th");
  EXPECT_EQ(names[6], "error");
  EXPECT_EQ(names[7], "ok");
}

TEST(BuildChain, MatrixEntriesMatchPaperDefinition) {
  const auto scenario = test_scenario();
  const ProtocolParams protocol{3, 1.5};
  const auto chain = build_chain(scenario, protocol);
  const DrmLayout layout{3};
  const auto& fx = scenario.reply_delay();

  // p_{1,2} = q and p_{1,n+3} = 1-q.
  EXPECT_DOUBLE_EQ(chain.probability(DrmLayout::start(),
                                     layout.probe_state(1)),
                   scenario.q());
  EXPECT_DOUBLE_EQ(chain.probability(DrmLayout::start(), layout.ok()),
                   1.0 - scenario.q());

  // p_{i,i+1} = p_{i-1}(r), p_{i,1} = 1 - p_{i-1}(r).
  for (unsigned k = 1; k <= 3; ++k) {
    const double p_k = no_answer_probability(fx, k, protocol.r);
    const std::size_t next =
        k == 3 ? layout.error() : layout.probe_state(k + 1);
    EXPECT_NEAR(chain.probability(layout.probe_state(k), next), p_k, 1e-12);
    EXPECT_NEAR(chain.probability(layout.probe_state(k), DrmLayout::start()),
                1.0 - p_k, 1e-12);
  }

  // Absorbing error/ok.
  EXPECT_TRUE(chain.is_absorbing(layout.error()));
  EXPECT_TRUE(chain.is_absorbing(layout.ok()));
}

TEST(BuildChain, OnlyPaperTransitionsPresent) {
  const auto chain = build_chain(test_scenario(), ProtocolParams{4, 2.0});
  const DrmLayout layout{4};
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < chain.num_states(); ++i)
    for (std::size_t j = 0; j < chain.num_states(); ++j)
      if (chain.probability(i, j) > 0.0) ++nonzero;
  // start: 2; each of n probe states: 2; two absorbing self-loops.
  EXPECT_EQ(nonzero, 2u + 2u * 4u + 2u);
  EXPECT_EQ(chain.num_states(), layout.num_states());
}

TEST(BuildCostMatrix, EntriesMatchPaperDefinition) {
  const auto scenario = test_scenario();
  const ProtocolParams protocol{3, 1.5};
  const auto costs = build_cost_matrix(scenario, protocol);
  const DrmLayout layout{3};
  const double per_probe = protocol.r + scenario.probe_cost();

  // c_{1,n+3} = n (r+c).
  EXPECT_DOUBLE_EQ(costs(DrmLayout::start(), layout.ok()), 3.0 * per_probe);
  // c_{i,i+1} = r+c for i = 1..n (1-based).
  EXPECT_DOUBLE_EQ(costs(DrmLayout::start(), layout.probe_state(1)),
                   per_probe);
  EXPECT_DOUBLE_EQ(costs(layout.probe_state(1), layout.probe_state(2)),
                   per_probe);
  EXPECT_DOUBLE_EQ(costs(layout.probe_state(2), layout.probe_state(3)),
                   per_probe);
  // c_{n+1,n+2} = E.
  EXPECT_DOUBLE_EQ(costs(layout.probe_state(3), layout.error()),
                   scenario.error_cost());
  // Returns to start are free, and absorbing self-loops cost nothing.
  EXPECT_EQ(costs(layout.probe_state(2), DrmLayout::start()), 0.0);
  EXPECT_EQ(costs(layout.error(), layout.error()), 0.0);
  EXPECT_EQ(costs(layout.ok(), layout.ok()), 0.0);
}

TEST(BuildDrm, ConstructsValidRewardModel) {
  const auto drm = build_drm(test_scenario(), ProtocolParams{2, 1.0});
  EXPECT_EQ(drm.chain().num_states(), 5u);
  EXPECT_GT(drm.expected_total_reward(DrmLayout::start()), 0.0);
}

TEST(BuildDrm, SingleProbeChain) {
  // n = 1: start, 1st, error, ok.
  const auto drm = build_drm(test_scenario(), ProtocolParams{1, 1.0});
  EXPECT_EQ(drm.chain().num_states(), 4u);
  const DrmLayout layout{1};
  EXPECT_TRUE(drm.chain().is_absorbing(layout.error()));
}

TEST(BuildDrm, ZeroProbesRejected) {
  EXPECT_THROW((void)build_chain(test_scenario(), ProtocolParams{0, 1.0}),
               zc::ContractViolation);
}

TEST(BuildDrm, NegativeListeningPeriodRejected) {
  EXPECT_THROW((void)build_chain(test_scenario(), ProtocolParams{2, -0.5}),
               zc::ContractViolation);
}

TEST(BuildDrm, DegenerateDistributionZeroProbeTransitions) {
  // Zero loss + bounded support: beyond the support every probe is
  // answered, p_k = 0, and the paired costs must be dropped (p=0 => c=0).
  const ScenarioParams scenario(
      0.25, 2.0, 100.0,
      std::make_shared<zc::prob::DefectiveDelay>(
          std::make_unique<zc::prob::Uniform>(0.0, 0.5), 0.0, 0.0));
  EXPECT_NO_THROW((void)build_drm(scenario, ProtocolParams{3, 1.0}));
}

TEST(BuildDrm, PaperScenarioRowSumsValid) {
  // Construction validates stochasticity internally; exercise the actual
  // Fig. 2 scenario across the n family.
  const auto scenario = scenarios::figure2().to_params();
  for (unsigned n = 1; n <= 8; ++n)
    EXPECT_NO_THROW((void)build_chain(scenario, ProtocolParams{n, 2.0}));
}

}  // namespace
