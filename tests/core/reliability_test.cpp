#include "core/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/no_answer.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

ScenarioParams lossy_scenario() {
  return ScenarioParams(0.3, 1.0, 50.0,
                        zc::prob::paper_reply_delay(0.25, 2.0, 0.3));
}

TEST(Reliability, HandComputedEq4) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{2, 1.0};
  const auto pi = pi_values(scenario.reply_delay(), 2, 1.0);
  const double expected =
      scenario.q() * pi[2] / (1.0 - scenario.q() * (1.0 - pi[2]));
  EXPECT_NEAR(error_probability(scenario, protocol), expected, 1e-14);
}

TEST(Reliability, AnalyticMatchesAbsorbingChain) {
  // Eq. (4) vs s (I - P'_n)^{-1} e (Sec. 5).
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 2u, 4u, 7u}) {
    for (double r : {0.2, 0.8, 2.0}) {
      const ProtocolParams protocol{n, r};
      EXPECT_NEAR(error_probability_numeric(scenario, protocol) /
                      error_probability(scenario, protocol),
                  1.0, 1e-10)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(Reliability, ComplementOfErrorProbability) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{3, 0.9};
  EXPECT_DOUBLE_EQ(reliability(scenario, protocol),
                   1.0 - error_probability(scenario, protocol));
}

TEST(Reliability, ErrorDecreasesInN) {
  const auto scenario = lossy_scenario();
  double prev = 1.0;
  for (unsigned n = 1; n <= 8; ++n) {
    const double e = error_probability(scenario, ProtocolParams{n, 1.0});
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Reliability, ErrorDecreasesInR) {
  const auto scenario = lossy_scenario();
  double prev = 1.0;
  for (double r = 0.4; r <= 4.0; r += 0.4) {
    const double e = error_probability(scenario, ProtocolParams{3, r});
    EXPECT_LE(e, prev + 1e-15);
    prev = e;
  }
}

TEST(Reliability, AtZeroRListeningIsUseless) {
  // pi_n(0) = 1: the collision probability equals q (picking an occupied
  // address goes straight to error).
  const auto scenario = lossy_scenario();
  EXPECT_NEAR(error_probability(scenario, ProtocolParams{5, 0.0}),
              scenario.q(), 1e-14);
}

TEST(Reliability, LargeRFloorFromLoss) {
  // r -> inf: pi_n -> loss^n, error -> q loss^n / (1 - q(1-loss^n)).
  const double q = 0.2, loss = 1e-3;
  const ScenarioParams scenario(q, 1.0, 10.0,
                                zc::prob::paper_reply_delay(loss, 5.0, 0.1));
  const unsigned n = 3;
  const double pin = std::pow(loss, n);
  const double expected = q * pin / (1.0 - q * (1.0 - pin));
  EXPECT_NEAR(error_probability(scenario, ProtocolParams{n, 1e5}) /
                  expected,
              1.0, 1e-9);
}

TEST(Reliability, IndependentOfCosts) {
  // Eq. (4) involves neither c nor E.
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{3, 1.3};
  EXPECT_DOUBLE_EQ(
      error_probability(scenario.with_error_cost(1.0), protocol),
      error_probability(scenario.with_error_cost(1e30), protocol));
  EXPECT_DOUBLE_EQ(
      error_probability(scenario.with_probe_cost(0.0), protocol),
      error_probability(scenario.with_probe_cost(99.0), protocol));
}

TEST(Reliability, Log10MatchesDirectWhereRepresentable) {
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 3u, 5u}) {
    for (double r : {0.5, 1.5}) {
      const ProtocolParams protocol{n, r};
      EXPECT_NEAR(log10_error_probability(scenario, protocol),
                  std::log10(error_probability(scenario, protocol)), 1e-9);
    }
  }
}

TEST(Reliability, Log10WorksBeyondDoubleUnderflow) {
  // Fig. 5/6 regime pushed far: n * r huge => pi_n underflows in linear
  // domain but the log-domain path stays exact.
  const auto scenario = scenarios::figure2().to_params();
  const double lg =
      log10_error_probability(scenario, ProtocolParams{30, 50.0});
  // pi_30 ~ loss^30 = 1e-450; with q ~ 1.5e-2: expect ~ -451.8.
  EXPECT_NEAR(lg, -451.8, 0.5);
}

TEST(Reliability, Figure5OrderOfMagnitudes) {
  // Fig. 5 plots E(n, r) on a log scale roughly spanning 1e-60..1e-5 for
  // n = 1..8 over small r; spot-check the n = 4 curve's plateau at the
  // loss floor for large r.
  const auto scenario = scenarios::figure2().to_params();
  const double floor4 =
      error_probability(scenario, ProtocolParams{4, 100.0});
  // q * (1e-15)^4 / (...) ~ 1.5e-62.
  EXPECT_NEAR(std::log10(floor4), -61.8, 0.5);
}

TEST(Reliability, PaperSection6Value) {
  // Sec. 6: E(2, 1.75) ~ 4e-22 in the realistic scenario.
  const auto scenario = scenarios::sec6().to_params();
  const double e = error_probability(scenario, ProtocolParams{2, 1.75});
  EXPECT_NEAR(e / 4e-22, 1.0, 0.15);
}

}  // namespace
