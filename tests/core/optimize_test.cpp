#include "core/optimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

TEST(OptimalR, Figure2MinimaDecreaseInRAndOrderInCost) {
  // Fig. 2: r_opt decreases with n; C_3(r_opt3) < C_4(r_opt4) < ...
  const auto scenario = scenarios::figure2().to_params();
  double prev_r = 1e9;
  double prev_cost = 0.0;
  for (unsigned n = 3; n <= 8; ++n) {
    const CostMinimum m = optimal_r(scenario, n);
    EXPECT_LT(m.r, prev_r) << "n=" << n;
    if (n > 3) {
      EXPECT_GT(m.cost, prev_cost) << "n=" << n;
    }
    prev_r = m.r;
    prev_cost = m.cost;
  }
}

TEST(OptimalR, Figure2KnownValues) {
  const auto scenario = scenarios::figure2().to_params();
  const CostMinimum m3 = optimal_r(scenario, 3);
  EXPECT_NEAR(m3.r, 2.14, 0.03);
  EXPECT_NEAR(m3.cost, 12.60, 0.05);
  const CostMinimum m4 = optimal_r(scenario, 4);
  EXPECT_NEAR(m4.r, 1.24, 0.03);
  EXPECT_NEAR(m4.cost, 13.10, 0.05);
}

TEST(OptimalR, StationaryPointHasZeroSlope) {
  const auto scenario = scenarios::figure2().to_params();
  const CostMinimum m = optimal_r(scenario, 4);
  const double slope = cost_derivative_r(scenario, 4, m.r);
  // Slope scale near the minimum is O(n); demand near-vanishing.
  EXPECT_LT(std::fabs(slope), 1e-3);
}

TEST(OptimalR, MinimumBeatsNeighbors) {
  const auto scenario = scenarios::sec45_r2().to_params();
  const CostMinimum m = optimal_r(scenario, 4);
  EXPECT_LT(m.cost, mean_cost(scenario, ProtocolParams{4, m.r * 0.9}));
  EXPECT_LT(m.cost, mean_cost(scenario, ProtocolParams{4, m.r * 1.1}));
}

TEST(OptimalR, RespectsExplicitSearchRange) {
  const auto scenario = scenarios::figure2().to_params();
  ROptOptions opts;
  opts.r_min = 3.0;
  opts.r_max = 5.0;
  const CostMinimum m = optimal_r(scenario, 3, opts);
  EXPECT_GE(m.r, 3.0);
  EXPECT_LE(m.r, 5.0);
}

TEST(OptimalR, InvalidOptionsRejected) {
  const auto scenario = scenarios::figure2().to_params();
  ROptOptions opts;
  opts.r_min = 5.0;
  opts.r_max = 1.0;
  EXPECT_THROW((void)optimal_r(scenario, 3, opts), zc::ContractViolation);
  EXPECT_THROW((void)optimal_r(scenario, 0), zc::ContractViolation);
}

TEST(OptimalN, Figure2ValuesAcrossR) {
  const auto scenario = scenarios::figure2().to_params();
  // At r = 2 the error term still punishes n = 3 (q E pi_3(2) ~ 6.6), so
  // N(2) = 4; by r = 2.5 three probes suffice. The 4 -> 3 breakpoint of
  // Fig. 3 sits between.
  EXPECT_EQ(optimal_n(scenario, 2.0), 4u);
  EXPECT_EQ(optimal_n(scenario, 2.5), 3u);
  // Shorter listening periods demand more probes.
  EXPECT_GT(optimal_n(scenario, 0.5), 4u);
}

TEST(OptimalN, NonIncreasingInR) {
  const auto scenario = scenarios::figure2().to_params();
  unsigned prev = 1000;
  for (double r = 0.4; r <= 4.0; r += 0.1) {
    const unsigned n = optimal_n(scenario, r);
    EXPECT_LE(n, prev) << "N(r) must step down as r grows, r=" << r;
    prev = n;
  }
}

TEST(OptimalN, NeverBelowNuForReasonableR) {
  const auto scenario = scenarios::figure2().to_params();
  const unsigned nu = min_useful_n(scenario.error_cost(), 1e-15);
  for (double r : {0.5, 1.0, 2.0, 4.0})
    EXPECT_GE(optimal_n(scenario, r), nu);
}

TEST(MinUsefulN, PaperFormula) {
  // nu = ceil(-log E / log(1-l)); Sec. 4.4 computes nu = 3 for
  // E = 1e35, 1-l = 1e-15.
  EXPECT_EQ(min_useful_n(1e35, 1e-15), 3u);
  EXPECT_EQ(min_useful_n(1e30, 1e-15), 2u);
  EXPECT_EQ(min_useful_n(1e20, 1e-5), 4u);
  EXPECT_EQ(min_useful_n(1e35, 1e-10), 4u);  // sec45_r02: 35/10 -> 4
}

TEST(MinUsefulN, InvalidArgumentsRejected) {
  EXPECT_THROW((void)min_useful_n(0.5, 1e-5), zc::ContractViolation);
  EXPECT_THROW((void)min_useful_n(1e10, 0.0), zc::ContractViolation);
  EXPECT_THROW((void)min_useful_n(1e10, 1.0), zc::ContractViolation);
}

TEST(MinCost, IsLowerEnvelope) {
  const auto scenario = scenarios::figure2().to_params();
  for (double r : {0.8, 1.5, 2.2, 3.0}) {
    const double envelope = min_cost(scenario, r);
    for (unsigned n = 1; n <= 10; ++n)
      EXPECT_LE(envelope,
                mean_cost(scenario, ProtocolParams{n, r}) + 1e-9)
          << "r=" << r << " n=" << n;
  }
}

TEST(JointOptimum, Figure2LandsOnNEquals3) {
  const auto scenario = scenarios::figure2().to_params();
  const JointOptimum opt = joint_optimum(scenario, 10);
  EXPECT_EQ(opt.n, 3u);
  EXPECT_NEAR(opt.r, 2.14, 0.03);
  EXPECT_NEAR(opt.cost, 12.60, 0.05);
  EXPECT_GT(opt.error_prob, 0.0);
}

TEST(JointOptimum, Section6RealisticScenario) {
  // Sec. 6: optimum moves to n = 2, r ~ 1.75 with error ~ 4e-22.
  const auto scenario = scenarios::sec6().to_params();
  const JointOptimum opt = joint_optimum(scenario, 10);
  EXPECT_EQ(opt.n, 2u);
  EXPECT_NEAR(opt.r, 1.75, 0.05);
  EXPECT_NEAR(opt.error_prob / 4e-22, 1.0, 0.25);
}

TEST(JointOptimum, DraftParametersOptimalUnderCalibratedCosts) {
  // Sec. 4.5: with (E, c) = (5e20, 3.5) the draft's (4, 2) is optimal;
  // with (1e35, 0.5) the draft's (4, 0.2) is optimal.
  const JointOptimum unreliable =
      joint_optimum(scenarios::sec45_r2().to_params(), 10);
  EXPECT_EQ(unreliable.n, 4u);
  EXPECT_NEAR(unreliable.r, 2.0, 0.05);

  const JointOptimum reliable =
      joint_optimum(scenarios::sec45_r02().to_params(), 10);
  EXPECT_EQ(reliable.n, 4u);
  EXPECT_NEAR(reliable.r, 0.2, 0.02);
}

TEST(NBreakpoints, PartitionTheInterval) {
  const auto scenario = scenarios::figure2().to_params();
  const auto steps = n_breakpoints(scenario, 0.5, 4.0, 128);
  ASSERT_FALSE(steps.empty());
  EXPECT_DOUBLE_EQ(steps.front().r_from, 0.5);
  EXPECT_DOUBLE_EQ(steps.back().r_to, 4.0);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_DOUBLE_EQ(steps[i].r_from, steps[i - 1].r_to);
    EXPECT_LT(steps[i].n, steps[i - 1].n);  // strictly decreasing plateaus
  }
}

TEST(NBreakpoints, ValuesMatchOptimalNInsideEachPlateau) {
  const auto scenario = scenarios::figure2().to_params();
  const auto steps = n_breakpoints(scenario, 0.8, 3.5, 96);
  for (const auto& step : steps) {
    const double mid = 0.5 * (step.r_from + step.r_to);
    EXPECT_EQ(optimal_n(scenario, mid), step.n)
        << "plateau [" << step.r_from << ", " << step.r_to << ")";
  }
}

TEST(NBreakpoints, SinglePlateauWhenRangeIsNarrow) {
  const auto scenario = scenarios::figure2().to_params();
  // [3.0, 3.05] sits deep inside the N = 3 plateau (the 4 -> 3 step is
  // near r ~ 2.03 and the 3 -> 2 step far beyond 4).
  const auto steps = n_breakpoints(scenario, 3.0, 3.05, 16);
  EXPECT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps.front().n, optimal_n(scenario, 3.02));
}

TEST(NBreakpoints, InvalidRangeRejected) {
  const auto scenario = scenarios::figure2().to_params();
  EXPECT_THROW((void)n_breakpoints(scenario, 2.0, 1.0),
               zc::ContractViolation);
  EXPECT_THROW((void)n_breakpoints(scenario, 0.0, 1.0),
               zc::ContractViolation);
}

}  // namespace
