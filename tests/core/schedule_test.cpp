/// ProbeSchedule semantics and the uniform bit-compatibility contract:
/// a uniform schedule must reproduce the historical (n, r) arithmetic
/// exactly — analytic values, DRM matrices, distributions, and surface
/// columns — while the non-uniform families agree with the numeric DRM
/// cross-check and round-trip through their generator recipes.

#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/distribution.hpp"
#include "core/no_answer.hpp"
#include "core/optimize.hpp"
#include "core/params.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

ScenarioParams lossy_scenario() {
  // Exaggerated loss so collision probabilities are well away from the
  // underflow floor and differences between schedules are measurable.
  return {0.25, 1.0, 500.0, zc::prob::paper_reply_delay(0.4, 2.0, 0.1)};
}

TEST(ProbeSchedule, UniformFactoryAndAccessors) {
  const ProbeSchedule s = ProbeSchedule::uniform(4, 2.0);
  EXPECT_TRUE(s.is_uniform());
  EXPECT_EQ(s.family(), ScheduleFamily::uniform);
  EXPECT_EQ(s.n(), 4u);
  EXPECT_DOUBLE_EQ(s.uniform_r(), 2.0);
  for (unsigned i = 1; i <= 4; ++i) EXPECT_DOUBLE_EQ(s.timeout(i), 2.0);
  EXPECT_DOUBLE_EQ(s.total_listening(), 8.0);
  EXPECT_EQ(s.to_vector(), (std::vector<double>{2.0, 2.0, 2.0, 2.0}));
}

TEST(ProbeSchedule, DefaultMatchesProtocolParamsDefault) {
  const ProbeSchedule s;
  const ProtocolParams p;
  EXPECT_EQ(s.n(), p.n);
  EXPECT_DOUBLE_EQ(s.uniform_r(), p.r);
  EXPECT_EQ(s, p.schedule());
}

TEST(ProbeSchedule, UniformCumulativeUsesMultiplicationNotSummation) {
  // 0.1 is not exactly representable: i * 0.1 and 0.1 + ... + 0.1
  // disagree in the last bits for some i. The contract is i * r.
  const ProbeSchedule s = ProbeSchedule::uniform(10, 0.1);
  for (unsigned i = 1; i <= 10; ++i)
    EXPECT_EQ(s.cumulative(i), static_cast<double>(i) * 0.1) << i;
}

TEST(ProbeSchedule, GeometricMaterializesIteratively) {
  const ProbeSchedule s = ProbeSchedule::geometric(4, 1.0, 0.5);
  EXPECT_FALSE(s.is_uniform());
  EXPECT_DOUBLE_EQ(s.timeout(1), 1.0);
  EXPECT_DOUBLE_EQ(s.timeout(2), 0.5);
  EXPECT_DOUBLE_EQ(s.timeout(3), 0.25);
  EXPECT_DOUBLE_EQ(s.timeout(4), 0.125);
  EXPECT_DOUBLE_EQ(s.cumulative(4), 1.875);
  EXPECT_DOUBLE_EQ(s.cumulative(0), 0.0);
}

TEST(ProbeSchedule, LinearAndCustomFamilies) {
  const ProbeSchedule lin = ProbeSchedule::linear(3, 1.0, 0.5);
  EXPECT_EQ(lin.to_vector(), (std::vector<double>{1.0, 1.5, 2.0}));
  const ProbeSchedule custom =
      ProbeSchedule::from_timeouts({0.5, 2.0, 0.25});
  EXPECT_EQ(custom.family(), ScheduleFamily::custom);
  EXPECT_EQ(custom.n(), 3u);
  EXPECT_DOUBLE_EQ(custom.cumulative(3), 2.75);
}

TEST(ProbeSchedule, RestoreRoundTripsEveryFamily) {
  const ProbeSchedule originals[] = {
      ProbeSchedule::uniform(4, 2.0),
      ProbeSchedule::geometric(5, 0.7, 1.3),
      ProbeSchedule::linear(3, 0.2, 0.05),
      ProbeSchedule::from_timeouts({0.5, 2.0, 0.25}),
  };
  for (const ProbeSchedule& s : originals) {
    const ProbeSchedule restored = ProbeSchedule::restore(
        s.family(), s.n(), s.r0(), s.factor(), s.step(), s.to_vector());
    EXPECT_EQ(restored, s) << s.describe();
    // Bitwise: regenerated timeouts are the identical doubles.
    for (unsigned i = 1; i <= s.n(); ++i)
      EXPECT_EQ(restored.timeout(i), s.timeout(i));
  }
}

TEST(ProbeSchedule, FamilyNamesRoundTrip) {
  for (const ScheduleFamily family :
       {ScheduleFamily::uniform, ScheduleFamily::geometric,
        ScheduleFamily::linear, ScheduleFamily::custom}) {
    ScheduleFamily parsed{};
    ASSERT_TRUE(schedule_family_from_string(to_string(family), parsed));
    EXPECT_EQ(parsed, family);
  }
  ScheduleFamily parsed{};
  EXPECT_FALSE(schedule_family_from_string("fibonacci", parsed));
}

TEST(ProbeSchedule, ValidateRejectsBadSchedules) {
  EXPECT_THROW(ProbeSchedule::uniform(0, 2.0).validate(),
               zc::ContractViolation);
  EXPECT_THROW(ProbeSchedule::uniform(4, 0.0).validate(),
               zc::ContractViolation);
  EXPECT_NO_THROW(
      ProbeSchedule::uniform(4, 0.0).validate(/*allow_zero_r=*/true));
  EXPECT_THROW(ProbeSchedule::uniform(4, -1.0).validate(
                   /*allow_zero_r=*/true),
               zc::ContractViolation);
  EXPECT_THROW(ProbeSchedule::geometric(4, 1.0, 0.0).validate(),
               zc::ContractViolation);
  // Linear with a negative step overshooting zero: r_3 = -0.5.
  EXPECT_THROW(ProbeSchedule::linear(3, 1.0, -0.75).validate(),
               zc::ContractViolation);
  EXPECT_THROW(ProbeSchedule::from_timeouts({1.0, -0.5}).validate(),
               zc::ContractViolation);
  EXPECT_THROW(ProbeSchedule::from_timeouts({}).validate(),
               zc::ContractViolation);
  EXPECT_NO_THROW(ProbeSchedule::geometric(6, 0.5, 1.5).validate());
}

// ---------------------------------------------------------------------------
// Uniform bit-compatibility: every schedule overload must reproduce the
// historical (n, r) path exactly (EXPECT_EQ on doubles, not near).

TEST(ScheduleBitCompat, AnalyticEvaluatorsMatchUniformExactly) {
  const ScenarioParams scenario = lossy_scenario();
  for (const double r : {0.1, 0.5, 2.0}) {
    for (const unsigned n : {1u, 3u, 7u}) {
      const ProtocolParams params{n, r};
      const ProbeSchedule sched = ProbeSchedule::uniform(n, r);
      EXPECT_EQ(mean_cost(scenario, sched), mean_cost(scenario, params));
      EXPECT_EQ(error_probability(scenario, sched),
                error_probability(scenario, params));
      EXPECT_EQ(log10_error_probability(scenario, sched),
                log10_error_probability(scenario, params));
      EXPECT_EQ(mean_cost_numeric(scenario, sched),
                mean_cost_numeric(scenario, params));
      EXPECT_EQ(error_probability_numeric(scenario, sched),
                error_probability_numeric(scenario, params));
      EXPECT_EQ(cost_variance(scenario, sched),
                cost_variance(scenario, params));
      EXPECT_EQ(mean_waiting_time(scenario, sched),
                mean_waiting_time(scenario, params));
      EXPECT_EQ(mean_address_attempts(scenario, sched),
                mean_address_attempts(scenario, params));
    }
  }
}

TEST(ScheduleBitCompat, PiValuesMatchUniformExactly) {
  const auto fx = lossy_scenario().reply_delay_ptr();
  const ProbeSchedule sched = ProbeSchedule::uniform(5, 0.7);
  const std::vector<double> via_schedule = pi_values(*fx, sched);
  const std::vector<double> via_params = pi_values(*fx, 5, 0.7);
  ASSERT_EQ(via_schedule.size(), via_params.size());
  for (std::size_t i = 0; i < via_params.size(); ++i)
    EXPECT_EQ(via_schedule[i], via_params[i]) << i;
}

TEST(ScheduleBitCompat, SurfaceColumnsMatchUniformExactly) {
  const ScenarioParams scenario = lossy_scenario();
  const CostSurface surface(scenario, 6);
  const ProbeSchedule sched = ProbeSchedule::uniform(6, 0.8);
  const std::vector<double> cost_u = surface.cost_column(0.8);
  const std::vector<double> cost_s = surface.cost_column(sched);
  const std::vector<double> err_u = surface.error_column(0.8);
  const std::vector<double> err_s = surface.error_column(sched);
  ASSERT_EQ(cost_s.size(), cost_u.size());
  for (std::size_t i = 0; i < cost_u.size(); ++i) {
    EXPECT_EQ(cost_s[i], cost_u[i]) << i;
    EXPECT_EQ(err_s[i], err_u[i]) << i;
  }
  EXPECT_EQ(surface.cost_at(sched), cost_u.back());
  EXPECT_EQ(surface.error_at(sched), err_u.back());
}

TEST(ScheduleBitCompat, DistributionDelegatesForUniform) {
  const ScenarioParams scenario = lossy_scenario();
  const CostDistribution via_params(scenario, ProtocolParams{3, 0.5});
  const CostDistribution via_schedule(scenario,
                                      ProbeSchedule::uniform(3, 0.5));
  EXPECT_TRUE(via_schedule.has_cost_lattice());
  EXPECT_EQ(via_schedule.mean(), via_params.mean());
  EXPECT_EQ(via_schedule.variance(), via_params.variance());
  EXPECT_EQ(via_schedule.error_probability(), via_params.error_probability());
  EXPECT_EQ(via_schedule.quantile(0.99), via_params.quantile(0.99));
}

// ---------------------------------------------------------------------------
// Non-uniform correctness: closed forms vs the numeric DRM cross-check.

TEST(ScheduleEvaluators, NonUniformAnalyticAgreesWithDrm) {
  const ScenarioParams scenario = lossy_scenario();
  const ProbeSchedule schedules[] = {
      ProbeSchedule::geometric(4, 1.0, 0.5),
      ProbeSchedule::geometric(3, 0.25, 2.0),
      ProbeSchedule::linear(5, 0.2, 0.15),
      ProbeSchedule::from_timeouts({0.5, 2.0, 0.25}),
  };
  for (const ProbeSchedule& sched : schedules) {
    const double analytic = mean_cost(scenario, sched);
    const double numeric = mean_cost_numeric(scenario, sched);
    EXPECT_NEAR(analytic, numeric, 1e-9 * analytic) << sched.describe();
    const double err = error_probability(scenario, sched);
    const double err_numeric = error_probability_numeric(scenario, sched);
    EXPECT_NEAR(err, err_numeric, 1e-12 + 1e-9 * err) << sched.describe();
  }
}

TEST(ScheduleEvaluators, NonUniformDistributionMomentsMatchDrm) {
  const ScenarioParams scenario = lossy_scenario();
  const ProbeSchedule sched = ProbeSchedule::geometric(4, 1.0, 0.5);
  const CostDistribution dist(scenario, sched);
  EXPECT_FALSE(dist.has_cost_lattice());
  EXPECT_NEAR(dist.mean(), mean_cost(scenario, sched),
              1e-9 * dist.mean());
  EXPECT_NEAR(dist.variance(), cost_variance(scenario, sched),
              1e-6 * dist.variance());
  EXPECT_NEAR(dist.error_probability(), error_probability(scenario, sched),
              1e-12);
  EXPECT_NEAR(dist.mean_given_ok(), mean_cost_given_ok(scenario, sched),
              1e-9 * dist.mean_given_ok());
}

TEST(ScheduleEvaluators, NonUniformSurfaceColumnMatchesPrefixEvaluation) {
  const ScenarioParams scenario = lossy_scenario();
  const ProbeSchedule sched = ProbeSchedule::geometric(5, 1.0, 0.6);
  const CostSurface surface(scenario, 5);
  const std::vector<double> costs = surface.cost_column(sched);
  const std::vector<double> errors = surface.error_column(sched);
  ASSERT_EQ(costs.size(), 5u);
  std::vector<double> prefix;
  for (unsigned m = 1; m <= 5; ++m) {
    prefix.clear();
    for (unsigned i = 1; i <= m; ++i) prefix.push_back(sched.timeout(i));
    const ProbeSchedule p = ProbeSchedule::from_timeouts(prefix);
    EXPECT_EQ(costs[m - 1], mean_cost(scenario, p)) << m;
    EXPECT_EQ(errors[m - 1], error_probability(scenario, p)) << m;
  }
}

TEST(ScheduleOptimizer, NeutralShapeNeverLosesToUniformScan) {
  const ScenarioParams scenario = lossy_scenario();
  ScheduleOptOptions opts;
  opts.r0_points = 48;
  opts.shape_points = 9;
  const ScheduleOptimum uniform =
      optimal_schedule(scenario, ScheduleFamily::uniform, 4, opts);
  const ScheduleOptimum geometric =
      optimal_schedule(scenario, ScheduleFamily::geometric, 4, opts);
  ASSERT_TRUE(uniform.feasible);
  ASSERT_TRUE(geometric.feasible);
  // The neutral factor = 1 column is injected into the geometric scan,
  // so the family can never do worse than uniform on the same grid.
  EXPECT_LE(geometric.cost, uniform.cost);
}

TEST(ScheduleOptimizer, ErrorConstraintFavorsFrontLoadedSchedules) {
  const ScenarioParams scenario = lossy_scenario();
  ScheduleOptOptions opts;
  opts.r0_points = 64;
  opts.shape_points = 17;
  const ScheduleOptimum uniform =
      optimal_schedule(scenario, ScheduleFamily::uniform, 4, opts);
  ASSERT_TRUE(uniform.feasible);
  // Matched error probability: only schedules at least as reliable as
  // the uniform optimum compete.
  opts.max_error_probability = uniform.error_prob;
  const ScheduleOptimum geometric =
      optimal_schedule(scenario, ScheduleFamily::geometric, 4, opts);
  ASSERT_TRUE(geometric.feasible);
  EXPECT_LE(geometric.error_prob, uniform.error_prob);
  EXPECT_LE(geometric.cost, uniform.cost);
}

TEST(ScheduleOptimizer, DeterministicAcrossThreadCounts) {
  const ScenarioParams scenario = lossy_scenario();
  ScheduleOptOptions serial;
  serial.r0_points = 32;
  serial.shape_points = 9;
  serial.exec.threads = 1;
  ScheduleOptOptions parallel = serial;
  parallel.exec.threads = 8;
  const ScheduleOptimum a =
      optimal_schedule(scenario, ScheduleFamily::linear, 3, serial);
  const ScheduleOptimum b =
      optimal_schedule(scenario, ScheduleFamily::linear, 3, parallel);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.cost, b.cost);  // bitwise
  EXPECT_EQ(a.error_prob, b.error_prob);
}

}  // namespace
