#include "core/calibrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

TEST(Calibrate, StationaryErrorCostReproducesROpt) {
  // Given the paper's c = 3.5, condition (i) alone should return an E
  // that makes r = 2 stationary for n = 4 — near the paper's 5e20.
  const auto scenario = scenarios::sec45_r2().to_params();
  const auto e = error_cost_for_stationary_r(scenario, ProtocolParams{4, 2.0},
                                             3.5);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(std::log10(*e), std::log10(5e20), 0.3);

  // Verify: with that E, the per-n optimum for n = 4 sits at r ~ 2.
  const auto s = scenario.with_error_cost(*e).with_probe_cost(3.5);
  const CostMinimum m = optimal_r(s, 4);
  EXPECT_NEAR(m.r, 2.0, 0.02);
}

TEST(Calibrate, StationaryErrorCostMonotoneInTargetR) {
  // A later stationary point needs a larger collision cost.
  const auto scenario = scenarios::sec45_r2().to_params();
  const auto e_early =
      error_cost_for_stationary_r(scenario, ProtocolParams{4, 1.5}, 3.5);
  const auto e_late =
      error_cost_for_stationary_r(scenario, ProtocolParams{4, 2.5}, 3.5);
  ASSERT_TRUE(e_early.has_value());
  ASSERT_TRUE(e_late.has_value());
  EXPECT_LT(*e_early, *e_late);
}

TEST(Calibrate, NoSolutionOutsideSearchBox) {
  const auto scenario = scenarios::sec45_r2().to_params();
  CalibrateOptions opts;
  opts.log10_e_min = 1.0;
  opts.log10_e_max = 2.0;  // E <= 100: far too small to move r_opt to 2
  EXPECT_FALSE(error_cost_for_stationary_r(scenario, ProtocolParams{4, 2.0},
                                           3.5, opts)
                   .has_value());
}

TEST(Calibrate, Section45UnreliableSetting) {
  // The full inverse problem for the draft's (n=4, r=2) under the
  // pessimistic wireless scenario. Paper: E ~ 5e20, c ~ 3.5.
  const auto scenario = scenarios::sec45_r2().to_params();
  const auto result = calibrate(scenario, ProtocolParams{4, 2.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(std::log10(result->error_cost), std::log10(5e20), 0.35);
  EXPECT_NEAR(result->probe_cost, 3.5, 0.8);
  EXPECT_TRUE(result->target_is_optimal);
}

TEST(Calibrate, Section45ReliableSetting) {
  // Draft's (n=4, r=0.2) under the wired scenario. Paper: E ~ 1e35,
  // c ~ 0.5.
  const auto scenario = scenarios::sec45_r02().to_params();
  const auto result = calibrate(scenario, ProtocolParams{4, 0.2});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(std::log10(result->error_cost), 35.0, 0.7);
  EXPECT_NEAR(result->probe_cost, 0.5, 0.25);
  EXPECT_TRUE(result->target_is_optimal);
}

TEST(Calibrate, CalibratedScenarioMakesTargetJointOptimal) {
  const auto scenario = scenarios::sec45_r2().to_params();
  const auto result = calibrate(scenario, ProtocolParams{4, 2.0});
  ASSERT_TRUE(result.has_value());
  const auto calibrated = scenario.with_error_cost(result->error_cost)
                              .with_probe_cost(result->probe_cost);
  const JointOptimum opt = joint_optimum(calibrated, 10);
  EXPECT_EQ(opt.n, 4u);
  EXPECT_NEAR(opt.r, 2.0, 0.1);
}

TEST(Calibrate, CompetitorIsNeighboringProbeCount) {
  // At the boundary the tie is against n = 3 or n = 5, not a distant n.
  const auto scenario = scenarios::sec45_r2().to_params();
  const auto result = calibrate(scenario, ProtocolParams{4, 2.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->competitor == 3u || result->competitor == 5u)
      << "competitor " << result->competitor;
}

TEST(Calibrate, TargetCostMatchesDirectEvaluation) {
  const auto scenario = scenarios::sec45_r2().to_params();
  const auto result = calibrate(scenario, ProtocolParams{4, 2.0});
  ASSERT_TRUE(result.has_value());
  const auto calibrated = scenario.with_error_cost(result->error_cost)
                              .with_probe_cost(result->probe_cost);
  EXPECT_NEAR(result->target_cost,
              mean_cost(calibrated, ProtocolParams{4, 2.0}), 1e-9);
}

TEST(Calibrate, InvalidTargetRejected) {
  const auto scenario = scenarios::sec45_r2().to_params();
  EXPECT_THROW((void)calibrate(scenario, ProtocolParams{0, 2.0}),
               zc::ContractViolation);
  EXPECT_THROW((void)calibrate(scenario, ProtocolParams{4, 0.0}),
               zc::ContractViolation);
  CalibrateOptions opts;
  opts.n_max = 3;
  EXPECT_THROW((void)calibrate(scenario, ProtocolParams{4, 2.0}, opts),
               zc::ContractViolation);
}

}  // namespace
