/// Property suite for the optimization layer: randomly drawn scenarios,
/// validated against brute-force grid search. Parameterized over seeds.

#include <gtest/gtest.h>

#include <limits>

#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "prob/rng.hpp"

namespace {

using namespace zc::core;

/// Random but sane exponential scenario: moderate losses and costs so
/// optima are interior and well-conditioned.
ExponentialScenario random_scenario(zc::prob::Rng& rng) {
  ExponentialScenario s;
  s.q = rng.uniform(0.05, 0.6);
  s.probe_cost = rng.uniform(0.1, 4.0);
  s.error_cost = rng.uniform(50.0, 5e4);
  s.loss = rng.uniform(1e-4, 0.05);
  s.lambda = rng.uniform(2.0, 40.0);
  s.round_trip = rng.uniform(0.01, 0.5);
  return s;
}

class OptimizeProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeProperties, OptimalRBeatsDenseGrid) {
  zc::prob::Rng rng(GetParam());
  const auto scenario = random_scenario(rng).to_params();
  for (unsigned n : {1u, 2u, 4u}) {
    ROptOptions opts;
    opts.r_max = 10.0;
    const CostMinimum found = optimal_r(scenario, n, opts);
    // A dense independent grid must not find anything meaningfully
    // better.
    double best_grid = std::numeric_limits<double>::infinity();
    for (double r = 1e-3; r <= 10.0; r += 1e-3)
      best_grid = std::min(
          best_grid, mean_cost(scenario, ProtocolParams{n, r}));
    EXPECT_LE(found.cost, best_grid * (1.0 + 1e-6)) << "n=" << n;
  }
}

TEST_P(OptimizeProperties, JointOptimumBeatsBruteForce) {
  zc::prob::Rng rng(GetParam() + 50);
  const auto scenario = random_scenario(rng).to_params();
  ROptOptions opts;
  opts.r_max = 8.0;
  const JointOptimum opt = joint_optimum(scenario, 8, opts);
  for (unsigned n = 1; n <= 8; ++n)
    for (double r = 0.01; r <= 8.0; r += 0.01)
      EXPECT_LE(opt.cost,
                mean_cost(scenario, ProtocolParams{n, r}) * (1.0 + 1e-6))
          << "beaten at n=" << n << " r=" << r;
}

TEST_P(OptimizeProperties, OptimalNIsArgminOverProbeCounts) {
  zc::prob::Rng rng(GetParam() + 100);
  const auto scenario = random_scenario(rng).to_params();
  for (double r : {0.1, 0.5, 1.5}) {
    const unsigned best = optimal_n(scenario, r);
    const double best_cost =
        mean_cost(scenario, ProtocolParams{best, r});
    for (unsigned n = 1; n <= 40; ++n) {
      const double cost = mean_cost(scenario, ProtocolParams{n, r});
      EXPECT_LE(best_cost, cost * (1.0 + 1e-12))
          << "r=" << r << " beaten by n=" << n;
      // Ties resolve to the smallest n (the paper's N(r) definition).
      if (n < best) {
        EXPECT_GT(cost, best_cost) << "r=" << r;
      }
    }
  }
}

TEST_P(OptimizeProperties, MinCostIsEnvelopeEverywhere) {
  zc::prob::Rng rng(GetParam() + 150);
  const auto scenario = random_scenario(rng).to_params();
  for (double r : {0.2, 0.7, 2.0}) {
    const double envelope = min_cost(scenario, r);
    for (unsigned n = 1; n <= 12; ++n)
      EXPECT_LE(envelope,
                mean_cost(scenario, ProtocolParams{n, r}) + 1e-9);
  }
}

TEST_P(OptimizeProperties, BreakpointsConsistentWithOptimalN) {
  // n_breakpoints resolves plateaus at its scan-grid resolution; the
  // guarantee is that every *scan-grid point* lies in a plateau carrying
  // its own optimal_n value (sub-grid dips in pathological scenarios may
  // hide between points, so midpoints are not the right probe).
  zc::prob::Rng rng(GetParam() + 200);
  const auto scenario = random_scenario(rng).to_params();
  const double lo = 0.05, hi = 3.0;
  const std::size_t grid = 96;
  const auto steps = n_breakpoints(scenario, lo, hi, grid);
  ASSERT_FALSE(steps.empty());
  EXPECT_DOUBLE_EQ(steps.front().r_from, lo);
  EXPECT_DOUBLE_EQ(steps.back().r_to, hi);
  for (std::size_t i = 0; i < grid; ++i) {
    const double r =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(grid - 1);
    const NBreakpoint* containing = &steps.back();
    for (const auto& step : steps)
      if (step.r_from <= r && r < step.r_to) containing = &step;
    EXPECT_EQ(optimal_n(scenario, std::min(r, hi)), containing->n)
        << "grid point r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeProperties,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
