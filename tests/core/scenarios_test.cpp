#include "core/scenarios.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

using namespace zc::core;

TEST(Scenarios, Figure2MatchesPaperSection43) {
  const ExponentialScenario s = scenarios::figure2();
  EXPECT_DOUBLE_EQ(s.q, 1000.0 / 65024.0);
  EXPECT_DOUBLE_EQ(s.probe_cost, 2.0);
  EXPECT_DOUBLE_EQ(s.error_cost, 1e35);
  EXPECT_DOUBLE_EQ(s.loss, 1e-15);
  EXPECT_DOUBLE_EQ(s.lambda, 10.0);
  EXPECT_DOUBLE_EQ(s.round_trip, 1.0);
}

TEST(Scenarios, Sec45SettingsMatchPaper) {
  const ExponentialScenario r2 = scenarios::sec45_r2();
  EXPECT_DOUBLE_EQ(r2.loss, 1e-5);
  EXPECT_DOUBLE_EQ(r2.round_trip, 1.0);
  EXPECT_DOUBLE_EQ(r2.lambda, 10.0);
  EXPECT_DOUBLE_EQ(r2.error_cost, 5e20);
  EXPECT_DOUBLE_EQ(r2.probe_cost, 3.5);

  const ExponentialScenario r02 = scenarios::sec45_r02();
  EXPECT_DOUBLE_EQ(r02.loss, 1e-10);
  EXPECT_DOUBLE_EQ(r02.round_trip, 0.1);
  EXPECT_DOUBLE_EQ(r02.lambda, 100.0);
  EXPECT_DOUBLE_EQ(r02.error_cost, 1e35);
  EXPECT_DOUBLE_EQ(r02.probe_cost, 0.5);
}

TEST(Scenarios, Sec6KeepsCalibratedCosts) {
  const ExponentialScenario s6 = scenarios::sec6();
  const ExponentialScenario r2 = scenarios::sec45_r2();
  EXPECT_EQ(s6.error_cost, r2.error_cost);
  EXPECT_EQ(s6.probe_cost, r2.probe_cost);
  EXPECT_EQ(s6.q, r2.q);
  EXPECT_DOUBLE_EQ(s6.loss, 1e-12);
  EXPECT_DOUBLE_EQ(s6.round_trip, 1e-3);
}

TEST(Scenarios, DraftProtocolParams) {
  EXPECT_EQ(scenarios::draft_unreliable().n, 4u);
  EXPECT_DOUBLE_EQ(scenarios::draft_unreliable().r, 2.0);
  EXPECT_EQ(scenarios::draft_reliable().n, 4u);
  EXPECT_DOUBLE_EQ(scenarios::draft_reliable().r, 0.2);
}

TEST(Scenarios, ToParamsBuildsPaperDistribution) {
  const auto params = scenarios::figure2().to_params();
  const auto& fx = params.reply_delay();
  EXPECT_DOUBLE_EQ(fx.loss_probability(), 1e-15);
  EXPECT_DOUBLE_EQ(fx.mean_given_arrival(), 1.1);  // d + 1/lambda
  EXPECT_EQ(fx.cdf(0.5), 0.0);                     // before round-trip
}

TEST(ScenarioParams, QFromHosts) {
  EXPECT_DOUBLE_EQ(ScenarioParams::q_from_hosts(1000),
                   1000.0 / kAddressSpaceSize);
  EXPECT_DOUBLE_EQ(ScenarioParams::q_from_hosts(1),
                   1.0 / kAddressSpaceSize);
}

TEST(ScenarioParams, QFromHostsBoundsEnforced) {
  EXPECT_THROW((void)ScenarioParams::q_from_hosts(0),
               zc::ContractViolation);
  EXPECT_THROW((void)ScenarioParams::q_from_hosts(kAddressSpaceSize),
               zc::ContractViolation);
}

TEST(ScenarioParams, ValidationOfConstructorArguments) {
  const auto fx = zc::prob::paper_reply_delay(0.1, 1.0, 0.0);
  const std::shared_ptr<const zc::prob::DelayDistribution> shared =
      fx->clone();
  EXPECT_THROW(ScenarioParams(0.0, 1.0, 1.0, shared),
               zc::ContractViolation);
  EXPECT_THROW(ScenarioParams(1.0, 1.0, 1.0, shared),
               zc::ContractViolation);
  EXPECT_THROW(ScenarioParams(0.5, -1.0, 1.0, shared),
               zc::ContractViolation);
  EXPECT_THROW(ScenarioParams(0.5, 1.0, -1.0, shared),
               zc::ContractViolation);
  EXPECT_THROW(ScenarioParams(0.5, 1.0, 1.0, nullptr),
               zc::ContractViolation);
}

TEST(ScenarioParams, WithersPreserveOtherFields) {
  const auto base = scenarios::figure2().to_params();
  const auto changed = base.with_error_cost(7.0).with_probe_cost(0.25);
  EXPECT_DOUBLE_EQ(changed.error_cost(), 7.0);
  EXPECT_DOUBLE_EQ(changed.probe_cost(), 0.25);
  EXPECT_DOUBLE_EQ(changed.q(), base.q());
  EXPECT_EQ(&changed.reply_delay(), &base.reply_delay());  // shared
}

TEST(ScenarioParams, WithQReplacesOnlyQ) {
  const auto base = scenarios::figure2().to_params();
  const auto changed = base.with_q(0.5);
  EXPECT_DOUBLE_EQ(changed.q(), 0.5);
  EXPECT_DOUBLE_EQ(changed.error_cost(), base.error_cost());
}

}  // namespace
