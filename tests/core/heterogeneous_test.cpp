#include "core/heterogeneous.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/no_answer.hpp"
#include "core/reliability.hpp"
#include "prob/mixture.hpp"

namespace {

using namespace zc::core;

std::vector<HostClass> fast_slow() {
  return {{0.5, zc::prob::paper_reply_delay(0.02, 30.0, 0.05)},
          {0.5, zc::prob::paper_reply_delay(0.5, 2.0, 0.3)}};
}

TEST(Heterogeneous, SingleClassReducesToHomogeneous) {
  const auto fx = zc::prob::paper_reply_delay(0.1, 5.0, 0.2);
  const std::vector<HostClass> one{{1.0, fx->clone()}};
  const auto pi_het = pi_values_heterogeneous(one, 4, 0.6);
  const auto pi_hom = pi_values(*fx, 4, 0.6);
  ASSERT_EQ(pi_het.size(), pi_hom.size());
  for (std::size_t i = 0; i < pi_het.size(); ++i)
    EXPECT_NEAR(pi_het[i], pi_hom[i], 1e-14);
}

TEST(Heterogeneous, PiIsWeightedAverageOfClassPis) {
  const auto classes = fast_slow();
  const unsigned n = 3;
  const double r = 0.4;
  const auto pi = pi_values_heterogeneous(classes, n, r);
  for (unsigned i = 1; i <= n; ++i) {
    const auto pi_a = pi_values(*classes[0].reply_delay, i, r);
    const auto pi_b = pi_values(*classes[1].reply_delay, i, r);
    EXPECT_NEAR(pi[i], 0.5 * pi_a[i] + 0.5 * pi_b[i], 1e-14) << "i=" << i;
  }
}

TEST(Heterogeneous, TruePiDominatesNaiveMixture) {
  // Chebyshev's sum inequality: attempt-level conditioning makes the
  // within-attempt no-answer events positively correlated, so
  // pi_i^true >= prod_j S_mix(j r), strictly for i >= 2 when the classes
  // differ.
  const auto classes = fast_slow();
  std::vector<zc::prob::MixtureDelay::Component> parts;
  for (const auto& h : classes)
    parts.push_back({h.weight, h.reply_delay});
  const zc::prob::MixtureDelay naive(std::move(parts));

  for (double r : {0.2, 0.5, 1.0}) {
    const auto pi_true = pi_values_heterogeneous(classes, 4, r);
    const auto pi_naive = pi_values(naive, 4, r);
    EXPECT_NEAR(pi_true[1], pi_naive[1], 1e-14);  // i = 1: identical
    for (unsigned i = 2; i <= 4; ++i)
      EXPECT_GT(pi_true[i], pi_naive[i]) << "i=" << i << " r=" << r;
  }
}

TEST(Heterogeneous, NaiveModelUnderestimatesCollisionRisk) {
  const auto classes = fast_slow();
  std::vector<zc::prob::MixtureDelay::Component> parts;
  for (const auto& h : classes)
    parts.push_back({h.weight, h.reply_delay});
  const ScenarioParams naive_scenario(
      0.3, 1.0, 100.0,
      std::make_shared<zc::prob::MixtureDelay>(std::move(parts)));

  for (unsigned n : {2u, 3u, 4u}) {
    const ProtocolParams protocol{n, 0.3};
    EXPECT_GT(error_probability_heterogeneous(0.3, classes, protocol),
              error_probability(naive_scenario, protocol))
        << "n=" << n;
  }
}

TEST(Heterogeneous, CostFromPiMatchesMeanCostOnHomogeneousInput) {
  const auto scenario = ScenarioParams(
      0.25, 1.5, 200.0, zc::prob::paper_reply_delay(0.15, 4.0, 0.25));
  for (unsigned n : {1u, 3u}) {
    for (double r : {0.3, 0.9}) {
      const ProtocolParams protocol{n, r};
      const auto pi = pi_values(scenario.reply_delay(), n, r);
      EXPECT_NEAR(mean_cost_from_pi(0.25, 1.5, 200.0, protocol, pi),
                  mean_cost(scenario, protocol), 1e-12);
      EXPECT_NEAR(error_probability_from_pi(0.25, pi),
                  error_probability(scenario, protocol), 1e-14);
    }
  }
}

TEST(Heterogeneous, CostIsBetweenPureClassCosts) {
  // The heterogeneous cost lies between the two homogeneous extremes.
  const auto classes = fast_slow();
  const ProtocolParams protocol{3, 0.4};
  const double q = 0.3, c = 1.0, e = 100.0;
  const double het = mean_cost_heterogeneous(q, c, e, classes, protocol);
  const ScenarioParams all_fast(q, c, e, classes[0].reply_delay);
  const ScenarioParams all_slow(q, c, e, classes[1].reply_delay);
  const double lo = std::min(mean_cost(all_fast, protocol),
                             mean_cost(all_slow, protocol));
  const double hi = std::max(mean_cost(all_fast, protocol),
                             mean_cost(all_slow, protocol));
  EXPECT_GE(het, lo);
  EXPECT_LE(het, hi);
}

TEST(Heterogeneous, ValidationRejectsBadClasses) {
  const ProtocolParams protocol{2, 0.5};
  EXPECT_THROW((void)pi_values_heterogeneous({}, 2, 0.5),
               zc::ContractViolation);
  const std::vector<HostClass> bad_weights{
      {0.4, zc::prob::paper_reply_delay(0.1, 5.0, 0.2)},
      {0.4, zc::prob::paper_reply_delay(0.2, 5.0, 0.2)}};
  EXPECT_THROW((void)pi_values_heterogeneous(bad_weights, 2, 0.5),
               zc::ContractViolation);
  const std::vector<HostClass> null_dist{{1.0, nullptr}};
  EXPECT_THROW((void)pi_values_heterogeneous(null_dist, 2, 0.5),
               zc::ContractViolation);
  (void)protocol;
}

TEST(Heterogeneous, FromPiValidatesShape) {
  const ProtocolParams protocol{3, 0.5};
  const std::vector<double> wrong_size{1.0, 0.5};
  EXPECT_THROW(
      (void)mean_cost_from_pi(0.3, 1.0, 10.0, protocol, wrong_size),
      zc::ContractViolation);
}

}  // namespace
