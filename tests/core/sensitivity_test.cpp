#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

const Elasticity& find(const std::vector<Elasticity>& all,
                       const std::string& name) {
  for (const auto& e : all)
    if (e.parameter == name) return e;
  throw std::runtime_error("missing parameter " + name);
}

TEST(Sensitivity, ReportsAllParameters) {
  const auto all =
      sensitivities(scenarios::figure2(), ProtocolParams{4, 2.0});
  EXPECT_EQ(all.size(), 7u);
  for (const char* name : {"q", "c", "E", "loss", "lambda", "d", "r"})
    EXPECT_NO_THROW((void)find(all, name)) << name;
}

TEST(Sensitivity, ErrorProbabilityIndependentOfCosts) {
  // Eq. (4) has no c or E: their error elasticities vanish.
  const auto all =
      sensitivities(scenarios::figure2(), ProtocolParams{4, 2.0});
  EXPECT_NEAR(find(all, "c").error_elasticity, 0.0, 1e-10);
  EXPECT_NEAR(find(all, "E").error_elasticity, 0.0, 1e-10);
}

TEST(Sensitivity, CostIncreasesWithQAndC) {
  const auto all =
      sensitivities(scenarios::sec45_r2(), ProtocolParams{4, 2.0});
  EXPECT_GT(find(all, "q").cost_elasticity, 0.0);
  EXPECT_GT(find(all, "c").cost_elasticity, 0.0);
}

TEST(Sensitivity, ErrorIncreasesWithLossAndQ) {
  const auto all =
      sensitivities(scenarios::sec45_r2(), ProtocolParams{4, 2.0});
  EXPECT_GT(find(all, "loss").error_elasticity, 0.0);
  EXPECT_GT(find(all, "q").error_elasticity, 0.0);
}

TEST(Sensitivity, LongerRoundTripHurtsReliability) {
  // Larger d shifts reply arrival later: more unanswered probes.
  const auto all =
      sensitivities(scenarios::sec45_r2(), ProtocolParams{4, 2.0});
  EXPECT_GT(find(all, "d").error_elasticity, 0.0);
}

TEST(Sensitivity, FasterRepliesImproveReliability) {
  const auto all =
      sensitivities(scenarios::sec45_r2(), ProtocolParams{4, 2.0});
  EXPECT_LT(find(all, "lambda").error_elasticity, 0.0);
}

TEST(Sensitivity, LongerListeningImprovesReliability) {
  const auto all =
      sensitivities(scenarios::sec45_r2(), ProtocolParams{4, 2.0});
  EXPECT_LT(find(all, "r").error_elasticity, 0.0);
}

TEST(Sensitivity, CostSlopeSignMatchesSideOfMinimum) {
  // Left of r_opt the cost decreases in r; right of it, increases.
  const auto scenario = scenarios::figure2();
  const auto left = sensitivities(scenario, ProtocolParams{3, 1.8});
  const auto right = sensitivities(scenario, ProtocolParams{3, 2.6});
  EXPECT_LT(find(left, "r").cost_elasticity, 0.0);
  EXPECT_GT(find(right, "r").cost_elasticity, 0.0);
}

TEST(Sensitivity, ErrorElasticityOfQIsNearOne) {
  // E(n,r) ~ q pi_n for small q: elasticity w.r.t. q ~ 1.
  const auto all =
      sensitivities(scenarios::figure2(), ProtocolParams{4, 2.0});
  EXPECT_NEAR(find(all, "q").error_elasticity, 1.0, 0.05);
}

TEST(OptimumShifts, ReRunsJointOptimumPerFactor) {
  const auto shifts = optimum_shifts(scenarios::sec6(), "loss",
                                     {0.1, 1.0, 10.0}, 8);
  ASSERT_EQ(shifts.size(), 3u);
  for (const auto& s : shifts) {
    EXPECT_EQ(s.parameter, "loss");
    EXPECT_GE(s.n, 1u);
    EXPECT_GT(s.r, 0.0);
    EXPECT_GT(s.cost, 0.0);
  }
  // Identity factor reproduces the Sec. 6 optimum.
  EXPECT_EQ(shifts[1].n, 2u);
  EXPECT_NEAR(shifts[1].r, 1.75, 0.05);
}

TEST(OptimumShifts, HigherErrorCostBuysMoreProtection) {
  const auto shifts = optimum_shifts(scenarios::sec6(), "E",
                                     {1.0, 1e6}, 8);
  ASSERT_EQ(shifts.size(), 2u);
  // A much larger E makes the optimum more defensive (here: a third
  // probe) and necessarily more expensive. Note the total listening time
  // n*r may even shrink — extra probes substitute for longer waits.
  EXPECT_GT(shifts[1].cost, shifts[0].cost);
  EXPECT_TRUE(shifts[1].n > shifts[0].n || shifts[1].r > shifts[0].r);
  ExponentialScenario scaled = scenarios::sec6();
  scaled.error_cost *= 1e6;
  const double err0 = error_probability(
      scenarios::sec6().to_params(),
      ProtocolParams{shifts[0].n, shifts[0].r});
  const double err1 = error_probability(
      scaled.to_params(), ProtocolParams{shifts[1].n, shifts[1].r});
  EXPECT_LT(err1, err0);
}

TEST(OptimumShifts, UnknownParameterRejected) {
  EXPECT_THROW(
      (void)optimum_shifts(scenarios::sec6(), "bogus", {1.0}, 4),
      zc::ContractViolation);
}

}  // namespace
