#include "core/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/no_answer.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "numerics/kahan.hpp"

namespace {

using namespace zc::core;

ScenarioParams lossy_scenario() {
  return ScenarioParams(0.3, 1.0, 50.0,
                        zc::prob::paper_reply_delay(0.25, 3.0, 0.3));
}

TEST(CostDistribution, MassSumsToOneMinusTail) {
  const CostDistribution dist(lossy_scenario(), ProtocolParams{3, 0.8});
  zc::numerics::KahanSum total;
  for (const double p : dist.ok_pmf()) total.add(p);
  for (const double p : dist.error_pmf()) total.add(p);
  EXPECT_NEAR(total.value() + dist.truncated_tail(), 1.0, 1e-12);
  EXPECT_LT(dist.truncated_tail(), 1e-9);
}

TEST(CostDistribution, NoMassBelowNProbes) {
  const unsigned n = 4;
  const CostDistribution dist(lossy_scenario(), ProtocolParams{n, 0.5});
  for (std::size_t t = 0; t < n; ++t) {
    EXPECT_EQ(dist.ok_pmf()[t], 0.0);
    EXPECT_EQ(dist.error_pmf()[t], 0.0);
  }
  EXPECT_GT(dist.ok_pmf()[n], 0.0);
}

TEST(CostDistribution, SingleAttemptProbabilities) {
  // P(T = n, ok) = 1-q; P(T = n, error) = q pi_n.
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{2, 0.7};
  const CostDistribution dist(scenario, protocol);
  const auto pi = pi_values(scenario.reply_delay(), 2, 0.7);
  EXPECT_NEAR(dist.ok_pmf()[2], 1.0 - scenario.q(), 1e-14);
  EXPECT_NEAR(dist.error_pmf()[2], scenario.q() * pi[2], 1e-14);
}

TEST(CostDistribution, TwoAttemptLatticeValue) {
  // P(T = n + i, ok) = q (pi_{i-1} - pi_i) (1-q): one restart after i
  // probes, then a clean attempt.
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{3, 0.6};
  const CostDistribution dist(scenario, protocol);
  const auto pi = pi_values(scenario.reply_delay(), 3, 0.6);
  const double q = scenario.q();
  // T = n+1: the only path is one restart after a single probe.
  EXPECT_NEAR(dist.ok_pmf()[4], q * (pi[0] - pi[1]) * (1.0 - q), 1e-14);
  // T = n+2: one 2-probe restart OR two 1-probe restarts.
  const double one_probe = q * (pi[0] - pi[1]);
  const double two_probe = q * (pi[1] - pi[2]);
  EXPECT_NEAR(dist.ok_pmf()[5],
              (two_probe + one_probe * one_probe) * (1.0 - q), 1e-14);
}

TEST(CostDistribution, ErrorProbabilityMatchesEq4) {
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 3u, 5u}) {
    for (double r : {0.3, 1.0}) {
      const ProtocolParams protocol{n, r};
      const CostDistribution dist(scenario, protocol);
      EXPECT_NEAR(dist.error_probability(),
                  error_probability(scenario, protocol), 1e-10)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(CostDistribution, MeanMatchesEq3) {
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 2u, 4u}) {
    for (double r : {0.4, 1.2}) {
      const ProtocolParams protocol{n, r};
      const CostDistribution dist(scenario, protocol);
      EXPECT_NEAR(dist.mean() / mean_cost(scenario, protocol), 1.0, 1e-9)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(CostDistribution, VarianceMatchesDrmSecondMoment) {
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 3u}) {
    const ProtocolParams protocol{n, 0.8};
    const CostDistribution dist(scenario, protocol);
    EXPECT_NEAR(dist.variance() / cost_variance(scenario, protocol), 1.0,
                1e-8)
        << "n=" << n;
  }
}

TEST(CostDistribution, CdfIsMonotoneAndReachesOne) {
  const CostDistribution dist(lossy_scenario(), ProtocolParams{2, 0.5});
  double prev = -1.0;
  for (double x = 0.0; x < 200.0; x += 5.0) {
    const double c = dist.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(dist.cdf(1e9), 1.0, 1e-9);
}

TEST(CostDistribution, QuantileInvertsCdf) {
  const CostDistribution dist(lossy_scenario(), ProtocolParams{3, 0.7});
  for (double p : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const double x = dist.quantile(p);
    EXPECT_GE(dist.cdf(x), p);
    // Just below the quantile the cdf must be smaller.
    EXPECT_LT(dist.cdf(x - 1e-9), p + 1e-12);
  }
}

TEST(CostDistribution, MedianBelowMeanForRightSkewedCost) {
  // The error atom at +E makes the law right-skewed.
  const CostDistribution dist(lossy_scenario(), ProtocolParams{1, 0.4});
  EXPECT_LT(dist.quantile(0.5), dist.mean());
}

TEST(CostDistribution, ProbesQuantileMinimumIsN) {
  const CostDistribution dist(lossy_scenario(), ProtocolParams{4, 0.5});
  EXPECT_EQ(dist.probes_quantile(0.0), 4u);
  EXPECT_GE(dist.probes_quantile(0.999), 4u);
}

TEST(CostDistribution, DeepTailQuantileGrows) {
  const CostDistribution dist(lossy_scenario(), ProtocolParams{2, 0.5});
  EXPECT_LT(dist.quantile(0.5), dist.quantile(0.999));
  EXPECT_LE(dist.probes_quantile(0.9), dist.probes_quantile(0.9999));
}

TEST(CostDistribution, QuantileDomainEnforced) {
  const CostDistribution dist(lossy_scenario(), ProtocolParams{2, 0.5});
  EXPECT_THROW((void)dist.quantile(1.0), zc::ContractViolation);
  EXPECT_THROW((void)dist.quantile(-0.1), zc::ContractViolation);
}

TEST(CostDistribution, QuantileAtDomainBoundaryReturnsLastAtom) {
  // Regression: p within a few ulps of 1 - truncated_tail is legal, but
  // the accumulated PMF can fall short of p by rounding. The walk used to
  // run off the end of the support and abort; it must return the largest
  // atom instead.
  const auto scenario = lossy_scenario().with_q(0.9);
  const CostDistribution dist(scenario, ProtocolParams{2, 0.2}, 8);
  const double boundary =
      std::nextafter(1.0 - dist.truncated_tail(), 0.0);
  const double q = dist.quantile(boundary);
  EXPECT_TRUE(std::isfinite(q));
  EXPECT_GE(dist.cdf(q), boundary - 1e-9);
  EXPECT_GE(q, dist.quantile(0.5));

  const std::size_t probes = dist.probes_quantile(boundary);
  EXPECT_GE(probes, 2u);
  EXPECT_GE(probes, dist.probes_quantile(0.5));

  // The negligible-tail default horizon: the same boundary probe, with
  // 1 - tail within one ulp of 1.0.
  const CostDistribution deep(lossy_scenario(), ProtocolParams{3, 0.7});
  const double deep_boundary =
      std::nextafter(1.0 - deep.truncated_tail(), 0.0);
  EXPECT_TRUE(std::isfinite(deep.quantile(deep_boundary)));
  EXPECT_GE(deep.probes_quantile(deep_boundary), 3u);
}

TEST(CostDistribution, TruncationBoundRespected) {
  // A deliberately tiny horizon: the tail must be reported, not lost.
  const auto scenario = lossy_scenario().with_q(0.9);
  const CostDistribution dist(scenario, ProtocolParams{2, 0.2}, 8);
  EXPECT_GT(dist.truncated_tail(), 0.0);
  zc::numerics::KahanSum total;
  for (const double p : dist.ok_pmf()) total.add(p);
  for (const double p : dist.error_pmf()) total.add(p);
  EXPECT_NEAR(total.value(), 1.0 - dist.truncated_tail(), 1e-12);
}

TEST(CostDistribution, PaperScenarioConfigurationTimeQuantiles) {
  // In the Fig. 2 scenario almost every run is a single clean attempt:
  // the 99.9th percentile of probes equals n.
  const auto scenario = scenarios::figure2().to_params();
  const CostDistribution dist(scenario, ProtocolParams{4, 2.0});
  EXPECT_EQ(dist.probes_quantile(0.5), 4u);
  EXPECT_EQ(dist.probes_quantile(0.98), 4u);
  // But the 99.9th percentile needs a second attempt (q ~ 1.5%).
  EXPECT_GT(dist.probes_quantile(0.999), 4u);
}

TEST(CostDistribution, InvalidHorizonRejected) {
  EXPECT_THROW(
      CostDistribution(lossy_scenario(), ProtocolParams{4, 0.5}, 2),
      zc::ContractViolation);
}

}  // namespace
