#include "core/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/distribution.hpp"
#include "core/reliability.hpp"
#include "core/no_answer.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

ScenarioParams lossy_scenario() {
  return ScenarioParams(0.2, 1.0, 50.0,
                        zc::prob::paper_reply_delay(0.2, 3.0, 0.4));
}

TEST(Cost, HandComputedSingleProbeCase) {
  // n = 1: C = ((r+c)(1-q) + (r+c)q + qE p_1) / (1 - q(1-p_1))
  //          = ((r+c) + qE p_1) / (1 - q(1-p_1)).
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{1, 1.5};
  const double p1 = scenario.reply_delay().survival(1.5);
  const double expected = ((1.5 + 1.0) + 0.2 * 50.0 * p1) /
                          (1.0 - 0.2 * (1.0 - p1));
  EXPECT_NEAR(mean_cost(scenario, protocol), expected, 1e-12);
}

TEST(Cost, AnalyticMatchesLinearSystem) {
  // Eq. (3) closed form vs Eq. (2) LU solve of the DRM.
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 2u, 3u, 5u, 8u}) {
    for (double r : {0.1, 0.5, 1.0, 2.0, 4.0}) {
      const ProtocolParams protocol{n, r};
      const double analytic = mean_cost(scenario, protocol);
      const double numeric = mean_cost_numeric(scenario, protocol);
      EXPECT_NEAR(numeric / analytic, 1.0, 1e-11)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(Cost, ZeroRLimitIsQTimesE) {
  // C_n(0) = q E (Sec. 4.2).
  const auto scenario = scenarios::figure2().to_params();
  EXPECT_DOUBLE_EQ(cost_at_zero_r(scenario),
                   scenario.q() * scenario.error_cost());
  for (unsigned n : {1u, 4u, 8u}) {
    EXPECT_NEAR(mean_cost(scenario, ProtocolParams{n, 0.0}) /
                    cost_at_zero_r(scenario),
                1.0, 1e-9)
        << "n=" << n;
  }
}

TEST(Cost, LargeRLimitExactFormula) {
  // Substituting pi_i -> loss^i into Eq. (3) gives the exact large-r
  // behaviour
  //   C_n(r) -> ((r+c)(n(1-q) + q G) + q E loss^n) / (1 - q(1-loss^n)),
  // with G = (1-loss^n)/(1-loss). The paper's A_n(r) is this expression
  // with the error residual dropped and loss^n ~ 0 in the denominator.
  const auto scenario = lossy_scenario();
  const double q = scenario.q();
  const double c = scenario.probe_cost();
  const double loss = scenario.reply_delay().loss_probability();
  for (unsigned n : {1u, 2u, 4u}) {
    const double r = 1e4;
    const double pin = std::pow(loss, n);
    const double geom = (1.0 - pin) / (1.0 - loss);
    const double limit =
        ((r + c) * (n * (1.0 - q) + q * geom) +
         q * scenario.error_cost() * pin) /
        (1.0 - q * (1.0 - pin));
    EXPECT_NEAR(mean_cost(scenario, ProtocolParams{n, r}) / limit, 1.0,
                1e-9)
        << "n=" << n;
  }
}

TEST(Cost, ApproachesPaperAsymptoteWhenLossTiny) {
  // With negligible loss^n and E = 0 the paper's A_n(r) is exact in the
  // limit; check the ratio at a large r.
  const ScenarioParams scenario(
      0.2, 1.0, 0.0, zc::prob::paper_reply_delay(1e-9, 3.0, 0.4));
  for (unsigned n : {1u, 3u, 5u}) {
    const ProtocolParams protocol{n, 1e4};
    EXPECT_NEAR(mean_cost(scenario, protocol) /
                    cost_asymptote(scenario, protocol),
                1.0, 1e-6)
        << "n=" << n;
  }
}

TEST(Cost, AsymptoteLinearInR) {
  const auto scenario = lossy_scenario();
  const double a1 = cost_asymptote(scenario, ProtocolParams{3, 10.0});
  const double a2 = cost_asymptote(scenario, ProtocolParams{3, 20.0});
  const double a3 = cost_asymptote(scenario, ProtocolParams{3, 30.0});
  EXPECT_NEAR(a3 - a2, a2 - a1, 1e-9);
}

TEST(Cost, IncreasingInErrorCost) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{2, 1.0};
  EXPECT_LT(mean_cost(scenario.with_error_cost(10.0), protocol),
            mean_cost(scenario.with_error_cost(1000.0), protocol));
}

TEST(Cost, IncreasingInProbeCost) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{4, 1.0};
  EXPECT_LT(mean_cost(scenario.with_probe_cost(0.5), protocol),
            mean_cost(scenario.with_probe_cost(5.0), protocol));
}

TEST(Cost, MoreHostsOnLinkCostMore) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{3, 1.2};
  EXPECT_LT(mean_cost(scenario.with_q(0.01), protocol),
            mean_cost(scenario.with_q(0.5), protocol));
}

TEST(Cost, DerivativeZeroAtInteriorMinimum) {
  const auto scenario = scenarios::figure2().to_params();
  // Fig. 2: r_opt(3) ~ 2.14 (validated elsewhere); the derivative there
  // must vanish.
  const double slope_lo = cost_derivative_r(scenario, 3, 1.8);
  const double slope_hi = cost_derivative_r(scenario, 3, 2.5);
  EXPECT_LT(slope_lo, 0.0);
  EXPECT_GT(slope_hi, 0.0);
}

TEST(Cost, VarianceNonNegative) {
  const auto scenario = lossy_scenario();
  EXPECT_GE(cost_variance(scenario, ProtocolParams{3, 1.0}), 0.0);
}

TEST(Cost, VarianceGrowsWithErrorCost) {
  // A rare huge penalty dominates the variance.
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{2, 0.5};
  EXPECT_LT(cost_variance(scenario.with_error_cost(10.0), protocol),
            cost_variance(scenario.with_error_cost(1e4), protocol));
}

TEST(Cost, MeanAttemptsClosedForm) {
  // Expected visits to `start` = 1 / (1 - q(1 - pi_n)) (geometric
  // restarts with return probability q(1-pi_n)).
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 3u, 6u}) {
    for (double r : {0.5, 1.5}) {
      const auto pi = pi_values(scenario.reply_delay(), n, r);
      const double expected = 1.0 / (1.0 - scenario.q() * (1.0 - pi[n]));
      EXPECT_NEAR(mean_address_attempts(scenario, ProtocolParams{n, r}),
                  expected, 1e-10)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(Cost, WaitingTimeExcludesPostageAndError) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{4, 2.0};
  const double waiting = mean_waiting_time(scenario, protocol);
  // Waiting = r * (mean probes sent). Mean probes is recovered
  // independently from the cost with E = 0: cost = (r+c) * mean probes.
  const ScenarioParams probe_counter =
      scenario.with_probe_cost(1.0).with_error_cost(0.0);
  const double mean_probes =
      mean_cost(probe_counter, protocol) / (protocol.r + 1.0);
  EXPECT_NEAR(waiting, protocol.r * mean_probes, 1e-10);
}

TEST(Cost, Figure2MagnitudesForSmallN) {
  // n = 1, 2 are astronomically expensive (Fig. 2 cuts them off).
  const auto scenario = scenarios::figure2().to_params();
  EXPECT_GT(mean_cost(scenario, ProtocolParams{1, 8.0}), 1e17);
  EXPECT_GT(mean_cost(scenario, ProtocolParams{2, 5.0}), 1e3);
  EXPECT_LT(mean_cost(scenario, ProtocolParams{3, 2.14}), 13.0);
}

TEST(Cost, ConditionalMeansDecomposeTotalMean) {
  const auto scenario = lossy_scenario();
  for (unsigned n : {1u, 3u}) {
    const ProtocolParams protocol{n, 0.6};
    const double p_err = error_probability(scenario, protocol);
    const double reconstructed =
        (1.0 - p_err) * mean_cost_given_ok(scenario, protocol) +
        p_err * mean_cost_given_error(scenario, protocol);
    EXPECT_NEAR(reconstructed / mean_cost(scenario, protocol), 1.0, 1e-10)
        << "n=" << n;
  }
}

TEST(Cost, ConditionalMeansMatchLatticeDistribution) {
  const auto scenario = lossy_scenario();
  const ProtocolParams protocol{2, 0.5};
  const CostDistribution dist(scenario, protocol);
  EXPECT_NEAR(mean_cost_given_ok(scenario, protocol) /
                  dist.mean_given_ok(),
              1.0, 1e-9);
  EXPECT_NEAR(mean_cost_given_error(scenario, protocol) /
                  dist.mean_given_error(),
              1.0, 1e-9);
}

TEST(Cost, ErrorPathCostDominatedByE) {
  const auto scenario = lossy_scenario();  // E = 50
  const ProtocolParams protocol{3, 0.7};
  const double err_mean = mean_cost_given_error(scenario, protocol);
  EXPECT_GT(err_mean, scenario.error_cost());
  // Clean runs never pay E.
  EXPECT_LT(mean_cost_given_ok(scenario, protocol),
            scenario.error_cost());
}

/// Analytic vs numeric across a parameter grid (the central correctness
/// property of the reproduction).
struct AgreementCase {
  double q, c, e, loss, lambda, d;
};

class CostAgreementSweep : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(CostAgreementSweep, AnalyticEqualsNumeric) {
  const auto& p = GetParam();
  ExponentialScenario s;
  s.q = p.q;
  s.probe_cost = p.c;
  s.error_cost = p.e;
  s.loss = p.loss;
  s.lambda = p.lambda;
  s.round_trip = p.d;
  const auto scenario = s.to_params();
  for (unsigned n = 1; n <= 6; ++n) {
    for (double r : {0.2, 1.0, 3.0}) {
      const ProtocolParams protocol{n, r};
      EXPECT_NEAR(mean_cost_numeric(scenario, protocol) /
                      mean_cost(scenario, protocol),
                  1.0, 1e-10)
          << "n=" << n << " r=" << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostAgreementSweep,
    ::testing::Values(AgreementCase{0.015, 2.0, 1e35, 1e-15, 10.0, 1.0},
                      AgreementCase{0.015, 3.5, 5e20, 1e-5, 10.0, 1.0},
                      AgreementCase{0.015, 0.5, 1e35, 1e-10, 100.0, 0.1},
                      AgreementCase{0.5, 1.0, 100.0, 0.3, 2.0, 0.2},
                      AgreementCase{0.9, 0.1, 10.0, 0.5, 1.0, 0.0},
                      AgreementCase{0.001, 10.0, 1e6, 0.01, 50.0, 0.01}));

}  // namespace
