#include "analysis/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contract.hpp"

namespace {

using zc::analysis::Series;

TEST(Csv, SingleSeriesTwoColumns) {
  const Series s{"cost", {1.0, 2.0}, {10.0, 20.0}};
  std::ostringstream os;
  zc::analysis::write_csv(os, s, "r");
  EXPECT_EQ(os.str(), "r,cost\n1,10\n2,20\n");
}

TEST(Csv, MultipleSeriesShareXColumn) {
  const Series a{"a", {1.0, 2.0}, {1.0, 4.0}};
  const Series b{"b", {1.0, 2.0}, {1.0, 8.0}};
  std::ostringstream os;
  zc::analysis::write_csv(os, {a, b});
  EXPECT_EQ(os.str(), "x,a,b\n1,1,1\n2,4,8\n");
}

TEST(Csv, MismatchedXGridsRejected) {
  const Series a{"a", {1.0, 2.0}, {1.0, 4.0}};
  const Series b{"b", {1.0, 3.0}, {1.0, 8.0}};
  std::ostringstream os;
  EXPECT_THROW(zc::analysis::write_csv(os, {a, b}), zc::ContractViolation);
}

TEST(Csv, MismatchedYLengthRejected) {
  const Series bad{"a", {1.0, 2.0}, {1.0}};
  std::ostringstream os;
  EXPECT_THROW(zc::analysis::write_csv(os, bad), zc::ContractViolation);
}

TEST(Csv, EmptySeriesListRejected) {
  std::ostringstream os;
  EXPECT_THROW(zc::analysis::write_csv(os, std::vector<Series>{}),
               zc::ContractViolation);
}

TEST(Csv, ScientificValuesRoundTrip) {
  const Series s{"e", {1.0}, {4.03e-22}};
  std::ostringstream os;
  zc::analysis::write_csv(os, s);
  EXPECT_NE(os.str().find("e-22"), std::string::npos);
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "zc_csv_test.csv";
  const Series s{"y", {1.0, 2.0}, {3.0, 4.0}};
  ASSERT_TRUE(zc::analysis::write_csv_file(path, {s}));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, FileWriteFailureReported) {
  const Series s{"y", {1.0}, {2.0}};
  EXPECT_FALSE(zc::analysis::write_csv_file(
      "/nonexistent-dir-zc/cannot.csv", {s}));
}

}  // namespace
