#include "analysis/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contract.hpp"

namespace {

using zc::analysis::Series;

TEST(Csv, SingleSeriesTwoColumns) {
  const Series s{"cost", {1.0, 2.0}, {10.0, 20.0}};
  std::ostringstream os;
  ASSERT_TRUE(zc::analysis::write_csv(os, s, "r"));
  EXPECT_EQ(os.str(), "r,cost\n1,10\n2,20\n");
}

TEST(Csv, MultipleSeriesShareXColumn) {
  const Series a{"a", {1.0, 2.0}, {1.0, 4.0}};
  const Series b{"b", {1.0, 2.0}, {1.0, 8.0}};
  std::ostringstream os;
  ASSERT_TRUE(zc::analysis::write_csv(os, {a, b}));
  EXPECT_EQ(os.str(), "x,a,b\n1,1,1\n2,4,8\n");
}

// Regression: a genuinely different grid must be a recoverable error
// (false, nothing written) — not a ContractViolation abort that can kill
// a bench minutes into its compute.
TEST(Csv, MismatchedXGridsRejected) {
  const Series a{"a", {1.0, 2.0}, {1.0, 4.0}};
  const Series b{"b", {1.0, 3.0}, {1.0, 8.0}};
  std::ostringstream os;
  EXPECT_FALSE(zc::analysis::write_csv(os, {a, b}));
  EXPECT_TRUE(os.str().empty());
}

TEST(Csv, MismatchedYLengthRejected) {
  const Series bad{"a", {1.0, 2.0}, {1.0}};
  std::ostringstream os;
  EXPECT_FALSE(zc::analysis::write_csv(os, bad));
  EXPECT_TRUE(os.str().empty());
}

// Regression: grids that differ only in the last ULP (fresh logspace vs.
// a cached surface column) count as the same grid.
TEST(Csv, LastUlpGridDifferenceAccepted) {
  const double x1 = 0.1 * 3.0;  // 0.30000000000000004
  const Series a{"a", {x1, 2.0}, {1.0, 4.0}};
  const Series b{"b", {std::nextafter(x1, 0.0), 2.0}, {1.0, 8.0}};
  ASSERT_NE(a.x[0], b.x[0]);
  std::ostringstream os;
  EXPECT_TRUE(zc::analysis::write_csv(os, {a, b}));
  EXPECT_FALSE(os.str().empty());
}

TEST(Csv, GridsEquivalentSemantics) {
  using zc::analysis::grids_equivalent;
  EXPECT_TRUE(grids_equivalent({}, {}));
  EXPECT_TRUE(grids_equivalent({0.0, 1.0}, {-0.0, 1.0}));
  EXPECT_FALSE(grids_equivalent({1.0}, {1.0, 2.0}));
  EXPECT_FALSE(grids_equivalent({1.0}, {1.0 + 1e-9}));
  const double nan = std::nan("");
  EXPECT_FALSE(grids_equivalent({nan}, {nan}));  // NaN never matches
  EXPECT_TRUE(grids_equivalent({1e300}, {std::nextafter(1e300, 0.0)}));
}

TEST(Csv, EmptySeriesListRejected) {
  std::ostringstream os;
  EXPECT_THROW(static_cast<void>(
                   zc::analysis::write_csv(os, std::vector<Series>{})),
               zc::ContractViolation);
}

TEST(Csv, ScientificValuesRoundTrip) {
  const Series s{"e", {1.0}, {4.03e-22}};
  std::ostringstream os;
  ASSERT_TRUE(zc::analysis::write_csv(os, s));
  EXPECT_NE(os.str().find("e-22"), std::string::npos);
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "zc_csv_test.csv";
  const Series s{"y", {1.0, 2.0}, {3.0, 4.0}};
  ASSERT_TRUE(zc::analysis::write_csv_file(path, {s}));
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y");
  std::remove(path.c_str());
}

TEST(Csv, MismatchedBundleFileReturnsFalse) {
  const std::string path = ::testing::TempDir() + "zc_csv_bad_test.csv";
  const Series a{"a", {1.0, 2.0}, {1.0, 4.0}};
  const Series b{"b", {1.0, 3.0}, {1.0, 8.0}};
  EXPECT_FALSE(zc::analysis::write_csv_file(path, {a, b}));
  std::remove(path.c_str());
}

TEST(Csv, FileWriteFailureReported) {
  const Series s{"y", {1.0}, {2.0}};
  EXPECT_FALSE(zc::analysis::write_csv_file(
      "/nonexistent-dir-zc/cannot.csv", {s}));
}

}  // namespace
