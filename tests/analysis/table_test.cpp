#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/contract.hpp"

namespace {

using zc::analysis::Table;

TEST(Table, StoresCells) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.cell(0, 1), "2");
  EXPECT_EQ(t.cell(1, 0), "3");
}

TEST(Table, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), zc::ContractViolation);
}

TEST(Table, RowWidthMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), zc::ContractViolation);
}

TEST(Table, NumericRowFormatting) {
  Table t({"x", "y"});
  t.add_numeric_row(std::vector<double>{1.5, 4e-22}, 3);
  EXPECT_EQ(t.cell(0, 0), "1.5");
  EXPECT_NE(t.cell(0, 1).find('e'), std::string::npos);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"x", "10"});
  t.add_row({"longer", "7"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Each printed row ends with a newline.
  EXPECT_EQ(out.back(), '\n');
}

TEST(Table, CellIndexValidated) {
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_THROW((void)t.cell(1, 0), zc::ContractViolation);
  EXPECT_THROW((void)t.cell(0, 1), zc::ContractViolation);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

}  // namespace
