#include "analysis/series.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "numerics/grid.hpp"

namespace {

using zc::analysis::Series;

TEST(Series, SampleEvaluatesFunctionOnGrid) {
  const auto xs = zc::numerics::linspace(0.0, 2.0, 5);
  const Series s = zc::analysis::sample_series(
      "square", xs, [](double x) { return x * x; });
  EXPECT_EQ(s.name, "square");
  ASSERT_EQ(s.size(), 5u);
  EXPECT_DOUBLE_EQ(s.y[2], 1.0);
  EXPECT_DOUBLE_EQ(s.y[4], 4.0);
}

TEST(Series, ArgminArgmax) {
  const Series s{"t", {0, 1, 2, 3}, {5.0, 1.0, 8.0, 1.0}};
  EXPECT_EQ(s.argmin(), 1u);  // first of the ties
  EXPECT_EQ(s.argmax(), 2u);
  EXPECT_EQ(s.min_y(), 1.0);
  EXPECT_EQ(s.max_y(), 8.0);
}

TEST(Series, ArgminOnEmptyRejected) {
  const Series s;
  EXPECT_THROW((void)s.argmin(), zc::ContractViolation);
}

TEST(Series, LocalMaximaInterior) {
  const Series s{"t", {0, 1, 2, 3, 4}, {0.0, 2.0, 1.0, 3.0, 0.0}};
  EXPECT_EQ(zc::analysis::local_maxima(s),
            (std::vector<std::size_t>{1, 3}));
}

TEST(Series, LocalMinimaInterior) {
  const Series s{"t", {0, 1, 2, 3, 4}, {5.0, 2.0, 3.0, 1.0, 4.0}};
  EXPECT_EQ(zc::analysis::local_minima(s),
            (std::vector<std::size_t>{1, 3}));
}

TEST(Series, EndpointsAreNeverLocalExtrema) {
  const Series s{"t", {0, 1, 2}, {10.0, 5.0, 20.0}};
  EXPECT_TRUE(zc::analysis::local_maxima(s).empty());
  EXPECT_EQ(zc::analysis::local_minima(s),
            (std::vector<std::size_t>{1}));
}

TEST(Series, PlateausAreNotStrictExtrema) {
  const Series s{"t", {0, 1, 2, 3}, {1.0, 2.0, 2.0, 1.0}};
  EXPECT_TRUE(zc::analysis::local_maxima(s).empty());
}

TEST(Series, MonotoneSeriesHasNoInteriorExtrema) {
  const Series s{"t", {0, 1, 2, 3}, {1.0, 2.0, 3.0, 4.0}};
  EXPECT_TRUE(zc::analysis::local_maxima(s).empty());
  EXPECT_TRUE(zc::analysis::local_minima(s).empty());
}

}  // namespace
