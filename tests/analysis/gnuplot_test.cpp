#include "analysis/gnuplot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contract.hpp"

namespace {

using zc::analysis::GnuplotOptions;
using zc::analysis::Series;

TEST(Gnuplot, ScriptReferencesDataColumns) {
  const Series a{"c3", {1.0, 2.0}, {3.0, 4.0}};
  const Series b{"c4", {1.0, 2.0}, {5.0, 6.0}};
  std::ostringstream os;
  GnuplotOptions opts;
  opts.title = "Fig 2";
  zc::analysis::write_gnuplot_script(os, "fig2.csv", {a, b}, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("set title 'Fig 2'"), std::string::npos);
  EXPECT_NE(out.find("'fig2.csv' using 1:2"), std::string::npos);
  EXPECT_NE(out.find("'fig2.csv' using 1:3"), std::string::npos);
  EXPECT_NE(out.find("title 'c3'"), std::string::npos);
  EXPECT_NE(out.find("title 'c4'"), std::string::npos);
}

TEST(Gnuplot, LogScaleEmittedWhenRequested) {
  const Series s{"e", {1.0}, {1e-40}};
  std::ostringstream os;
  GnuplotOptions opts;
  opts.log_y = true;
  zc::analysis::write_gnuplot_script(os, "d.csv", {s}, opts);
  EXPECT_NE(os.str().find("set logscale y"), std::string::npos);
}

TEST(Gnuplot, OutputDirectiveOnlyWhenSet) {
  const Series s{"y", {1.0}, {2.0}};
  std::ostringstream with, without;
  GnuplotOptions opts;
  opts.output = "fig.png";
  zc::analysis::write_gnuplot_script(with, "d.csv", {s}, opts);
  zc::analysis::write_gnuplot_script(without, "d.csv", {s}, {});
  EXPECT_NE(with.str().find("set output 'fig.png'"), std::string::npos);
  EXPECT_EQ(without.str().find("set output"), std::string::npos);
}

TEST(Gnuplot, EmptySeriesRejected) {
  std::ostringstream os;
  EXPECT_THROW(
      zc::analysis::write_gnuplot_script(os, "d.csv", {}, {}),
      zc::ContractViolation);
}

TEST(Gnuplot, WriteFigureFilesCreatesCsvAndScript) {
  const std::string base = ::testing::TempDir() + "zc_gnuplot_test";
  const Series s{"y", {1.0, 2.0}, {3.0, 4.0}};
  ASSERT_TRUE(zc::analysis::write_figure_files(base, {s}, {}));
  std::ifstream csv(base + ".csv");
  EXPECT_TRUE(csv.good());
  std::ifstream gp(base + ".gp");
  EXPECT_TRUE(gp.good());
  std::string first_line;
  std::getline(gp, first_line);
  EXPECT_NE(first_line.find("zeroconf-opt"), std::string::npos);
  std::remove((base + ".csv").c_str());
  std::remove((base + ".gp").c_str());
}

TEST(Gnuplot, WriteFigureFilesFailureReported) {
  const Series s{"y", {1.0}, {2.0}};
  EXPECT_FALSE(zc::analysis::write_figure_files(
      "/nonexistent-dir-zc/base", {s}, {}));
}

}  // namespace
