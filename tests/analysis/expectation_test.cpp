#include "analysis/expectation.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using zc::analysis::PaperCheck;

TEST(PaperCheck, EmptyCheckSetPasses) {
  const PaperCheck check("EXP");
  EXPECT_TRUE(check.all_passed());
}

TEST(PaperCheck, ExplicitPassAndFail) {
  PaperCheck check("EXP");
  check.expect("ok", "x", "x", true);
  EXPECT_TRUE(check.all_passed());
  check.expect("bad", "x", "y", false);
  EXPECT_FALSE(check.all_passed());
}

TEST(PaperCheck, ExpectCloseWithinTolerance) {
  PaperCheck check("EXP");
  check.expect_close("near", 100.0, 104.0, 0.05);
  EXPECT_TRUE(check.all_passed());
  check.expect_close("far", 100.0, 120.0, 0.05);
  EXPECT_FALSE(check.all_passed());
}

TEST(PaperCheck, ExpectCloseHandlesTinyMagnitudes) {
  PaperCheck check("EXP");
  check.expect_close("tiny", 4e-22, 4.03e-22, 0.1);
  EXPECT_TRUE(check.all_passed());
}

TEST(PaperCheck, ExpectBetween) {
  PaperCheck check("EXP");
  check.expect_between("inside", 1.0, 2.0, 1.5);
  check.expect_between("edge", 1.0, 2.0, 2.0);
  EXPECT_TRUE(check.all_passed());
  check.expect_between("outside", 1.0, 2.0, 2.5);
  EXPECT_FALSE(check.all_passed());
}

TEST(PaperCheck, ExpectTrue) {
  PaperCheck check("EXP");
  check.expect_true("shape", "minima increase with n", true);
  EXPECT_TRUE(check.all_passed());
}

TEST(PaperCheck, ReportListsEveryCheck) {
  PaperCheck check("FIG2");
  check.expect("a", "1", "1", true);
  check.expect("b", "2", "3", false);
  std::ostringstream os;
  EXPECT_FALSE(check.report(os));
  const std::string out = os.str();
  EXPECT_NE(out.find("PAPER-CHECK [FIG2]"), std::string::npos);
  EXPECT_NE(out.find("[PASS] a"), std::string::npos);
  EXPECT_NE(out.find("[FAIL] b"), std::string::npos);
  EXPECT_NE(out.find("CHECK FAILURES"), std::string::npos);
}

TEST(PaperCheck, ReportSignalsAllPassed) {
  PaperCheck check("FIG4");
  check.expect("a", "1", "1", true);
  std::ostringstream os;
  EXPECT_TRUE(check.report(os));
  EXPECT_NE(os.str().find("ALL CHECKS PASSED"), std::string::npos);
}

TEST(PaperCheck, ChecksAccessor) {
  PaperCheck check("X");
  check.expect("a", "1", "1", true);
  ASSERT_EQ(check.checks().size(), 1u);
  EXPECT_EQ(check.checks()[0].name, "a");
}

}  // namespace
