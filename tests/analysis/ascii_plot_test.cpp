#include "analysis/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/contract.hpp"
#include "numerics/grid.hpp"

namespace {

using zc::analysis::PlotOptions;
using zc::analysis::Series;

Series line_series() {
  return zc::analysis::sample_series("line",
                                     zc::numerics::linspace(0.0, 10.0, 50),
                                     [](double x) { return x; });
}

TEST(AsciiPlot, ContainsTitleAndLegend) {
  std::ostringstream os;
  PlotOptions opts;
  opts.title = "My Plot";
  zc::analysis::ascii_plot(os, {line_series()}, opts);
  const std::string out = os.str();
  EXPECT_NE(out.find("My Plot"), std::string::npos);
  EXPECT_NE(out.find("1 = line"), std::string::npos);
}

TEST(AsciiPlot, MarksDataWithSeriesMarker) {
  std::ostringstream os;
  zc::analysis::ascii_plot(os, {line_series()});
  EXPECT_NE(os.str().find('1'), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesDistinctMarkers) {
  const auto xs = zc::numerics::linspace(0.0, 1.0, 20);
  const auto a = zc::analysis::sample_series(
      "low", xs, [](double) { return 0.0; });
  const auto b = zc::analysis::sample_series(
      "high", xs, [](double) { return 1.0; });
  std::ostringstream os;
  zc::analysis::ascii_plot(os, {a, b});
  const std::string out = os.str();
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

TEST(AsciiPlot, LogYAxisHandlesWideRanges) {
  const auto xs = zc::numerics::linspace(1.0, 8.0, 8);
  const auto s = zc::analysis::sample_series(
      "exp", xs, [](double x) { return std::pow(10.0, -5.0 * x); });
  std::ostringstream os;
  PlotOptions opts;
  opts.log_y = true;
  EXPECT_NO_THROW(zc::analysis::ascii_plot(os, {s}, opts));
  EXPECT_NE(os.str().find("[log-y]"), std::string::npos);
}

TEST(AsciiPlot, NonPositiveValuesSkippedOnLogAxis) {
  const Series s{"mixed", {1.0, 2.0, 3.0}, {-1.0, 0.0, 10.0}};
  std::ostringstream os;
  PlotOptions opts;
  opts.log_y = true;
  EXPECT_NO_THROW(zc::analysis::ascii_plot(os, {s}, opts));
}

TEST(AsciiPlot, NonFiniteValuesSkipped) {
  const Series s{"nan", {1.0, 2.0}, {std::nan(""), 3.0}};
  std::ostringstream os;
  EXPECT_NO_THROW(zc::analysis::ascii_plot(os, {s}));
}

TEST(AsciiPlot, ViewportClampsToYRange) {
  // The Fig. 2 use case: cut off astronomically large curves.
  const Series huge{"huge", {1.0, 2.0}, {1e18, 2e18}};
  const Series small{"small", {1.0, 2.0}, {10.0, 20.0}};
  std::ostringstream os;
  PlotOptions opts;
  opts.y_max = 100.0;
  zc::analysis::ascii_plot(os, {huge, small}, opts);
  // Scan only the bordered plot rows ("...|<grid>|"): the clipped series
  // must leave no marks, the small one must be drawn.
  std::istringstream lines(os.str());
  std::string line;
  int huge_marks = 0, small_marks = 0;
  while (std::getline(lines, line)) {
    if (line.size() < 2 || line.back() != '|') continue;
    const auto open = line.find('|');
    for (std::size_t i = open + 1; i + 1 < line.size(); ++i) {
      if (line[i] == '1') ++huge_marks;
      if (line[i] == '2') ++small_marks;
    }
  }
  EXPECT_EQ(huge_marks, 0);
  EXPECT_GT(small_marks, 0);
}

TEST(AsciiPlot, DegenerateSingleValueStillRenders) {
  const Series s{"flat", {1.0, 2.0}, {5.0, 5.0}};
  std::ostringstream os;
  EXPECT_NO_THROW(zc::analysis::ascii_plot(os, {s}));
}

TEST(AsciiPlot, TooSmallViewportRejected) {
  std::ostringstream os;
  PlotOptions opts;
  opts.width = 4;
  EXPECT_THROW(zc::analysis::ascii_plot(os, {line_series()}, opts),
               zc::ContractViolation);
}

}  // namespace
