#include "common/strings.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace {

TEST(FormatSig, PlainForModerateMagnitudes) {
  EXPECT_EQ(zc::format_sig(1.5), "1.5");
  EXPECT_EQ(zc::format_sig(123.456, 6), "123.456");
}

TEST(FormatSig, ScientificForLargeValues) {
  const std::string s = zc::format_sig(5e20, 3);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(FormatSig, ScientificForTinyValues) {
  const std::string s = zc::format_sig(4e-22, 3);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(FormatSig, ZeroStaysPlain) { EXPECT_EQ(zc::format_sig(0.0), "0"); }

// Regression: -0.0 used to render as "-0", which reads as a distinct
// value in tables and diffs.
TEST(FormatSig, NegativeZeroNormalized) {
  EXPECT_EQ(zc::format_sig(-0.0), "0");
  EXPECT_EQ(zc::format_sig(-0.0, 3), "0");
}

TEST(FormatSig, NegativeValues) {
  EXPECT_EQ(zc::format_sig(-2.25, 3), "-2.25");
}

// Regression: the plain/scientific choice follows the *rounded* value,
// so a value that rounds up across the 1e-4 cutoff formats exactly like
// the cutoff value itself instead of flipping notation.
TEST(FormatSig, CutoffConsistentUnderRounding) {
  EXPECT_EQ(zc::format_sig(1e-4, 3), "0.0001");
  EXPECT_EQ(zc::format_sig(9.9999e-5, 3), "0.0001");
  // Below the cutoff even after rounding: stays scientific.
  EXPECT_NE(zc::format_sig(9.4e-5, 3).find('e'), std::string::npos);
}

TEST(FormatSig, LargeCutoffConsistentUnderRounding) {
  // 999999.9 at 3 digits rounds to 1.00e6 — formats with the >= 1e6
  // values, not as a stray "1e+06" from the plain branch.
  EXPECT_EQ(zc::format_sig(999999.9, 3), zc::format_sig(1e6, 3));
}

TEST(FormatSig, NonFiniteRendered) {
  EXPECT_EQ(zc::format_sig(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(zc::format_sig(-std::numeric_limits<double>::infinity()),
            "-inf");
}

TEST(FormatFixed, RespectsDecimals) {
  EXPECT_EQ(zc::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(zc::format_fixed(2.0, 3), "2.000");
}

TEST(Join, EmptyVector) { EXPECT_EQ(zc::join({}, ","), ""); }

TEST(Join, SingleElement) { EXPECT_EQ(zc::join({"a"}, ","), "a"); }

TEST(Join, MultipleElements) {
  EXPECT_EQ(zc::join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Pad, LeftPadsShortStrings) {
  EXPECT_EQ(zc::pad_left("ab", 4), "  ab");
}

TEST(Pad, RightPadsShortStrings) {
  EXPECT_EQ(zc::pad_right("ab", 4), "ab  ");
}

TEST(Pad, LongStringsUntouched) {
  EXPECT_EQ(zc::pad_left("abcdef", 4), "abcdef");
  EXPECT_EQ(zc::pad_right("abcdef", 4), "abcdef");
}

}  // namespace
