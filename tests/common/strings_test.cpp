#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace {

TEST(FormatSig, PlainForModerateMagnitudes) {
  EXPECT_EQ(zc::format_sig(1.5), "1.5");
  EXPECT_EQ(zc::format_sig(123.456, 6), "123.456");
}

TEST(FormatSig, ScientificForLargeValues) {
  const std::string s = zc::format_sig(5e20, 3);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(FormatSig, ScientificForTinyValues) {
  const std::string s = zc::format_sig(4e-22, 3);
  EXPECT_NE(s.find('e'), std::string::npos);
}

TEST(FormatSig, ZeroStaysPlain) { EXPECT_EQ(zc::format_sig(0.0), "0"); }

TEST(FormatSig, NegativeValues) {
  EXPECT_EQ(zc::format_sig(-2.25, 3), "-2.25");
}

TEST(FormatFixed, RespectsDecimals) {
  EXPECT_EQ(zc::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(zc::format_fixed(2.0, 3), "2.000");
}

TEST(Join, EmptyVector) { EXPECT_EQ(zc::join({}, ","), ""); }

TEST(Join, SingleElement) { EXPECT_EQ(zc::join({"a"}, ","), "a"); }

TEST(Join, MultipleElements) {
  EXPECT_EQ(zc::join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Pad, LeftPadsShortStrings) {
  EXPECT_EQ(zc::pad_left("ab", 4), "  ab");
}

TEST(Pad, RightPadsShortStrings) {
  EXPECT_EQ(zc::pad_right("ab", 4), "ab  ");
}

TEST(Pad, LongStringsUntouched) {
  EXPECT_EQ(zc::pad_left("abcdef", 4), "abcdef");
  EXPECT_EQ(zc::pad_right("abcdef", 4), "abcdef");
}

}  // namespace
