#include "common/args.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

using zc::ArgParser;

ArgParser make_parser() {
  ArgParser parser("tool", "test parser");
  parser.add_option("q", "occupancy", "0.5");
  parser.add_option("label", "a name", "none");
  parser.add_flag("verbose", "chatty output");
  return parser;
}

TEST(Args, DefaultsWhenNothingGiven) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({}));
  EXPECT_EQ(parser.text("q"), "0.5");
  EXPECT_EQ(parser.text("label"), "none");
  EXPECT_FALSE(parser.flag("verbose"));
  EXPECT_FALSE(parser.given("q"));
}

TEST(Args, ParsesValuesAndFlags) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--q", "0.25", "--verbose", "--label", "x y"}));
  EXPECT_EQ(parser.text("q"), "0.25");
  EXPECT_TRUE(parser.flag("verbose"));
  EXPECT_EQ(parser.text("label"), "x y");
  EXPECT_TRUE(parser.given("q"));
  EXPECT_TRUE(parser.given("verbose"));
}

TEST(Args, NumberConversion) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--q", "1e-5"}));
  ASSERT_TRUE(parser.number("q").has_value());
  EXPECT_DOUBLE_EQ(*parser.number("q"), 1e-5);
}

TEST(Args, NumberConversionFailureIsNullopt) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--label", "abc"}));
  EXPECT_FALSE(parser.number("label").has_value());
}

TEST(Args, TrailingGarbageInNumberRejected) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--q", "0.5x"}));
  EXPECT_FALSE(parser.number("q").has_value());
}

// Regression: strtod accepts "inf"/"nan" (any case) and overflows to
// HUGE_VAL, all of which used to leak out of number() as valid values.
TEST(Args, NonFiniteNumbersRejected) {
  for (const char* bad : {"inf", "INF", "-inf", "infinity", "nan", "NaN",
                          "-nan", "1e999", "-1e999"}) {
    auto parser = make_parser();
    ASSERT_TRUE(parser.parse({"--q", bad}));
    EXPECT_FALSE(parser.number("q").has_value()) << bad;
  }
}

// Characterization: hex floats are valid strtod input and stay accepted
// (they are finite; rejecting them is not this guard's job).
TEST(Args, HexFloatsStillAccepted) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--q", "0x1p-2"}));
  ASSERT_TRUE(parser.number("q").has_value());
  EXPECT_DOUBLE_EQ(*parser.number("q"), 0.25);
}

TEST(Args, RangeCheckedNumber) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--q", "0.25"}));
  EXPECT_TRUE(parser.number("q", 0.0, 1.0).has_value());
  EXPECT_FALSE(parser.number("q", 0.5, 1.0).has_value());
  EXPECT_FALSE(parser.number("q", 0.0, 0.2).has_value());
  // Inclusive bounds.
  EXPECT_TRUE(parser.number("q", 0.25, 0.25).has_value());
  EXPECT_THROW((void)parser.number("q", 1.0, 0.0), zc::ContractViolation);
}

TEST(Args, RangeCheckedNumberRejectsUnparsable) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--label", "abc"}));
  EXPECT_FALSE(parser.number("label", 0.0, 1.0).has_value());
}

TEST(Args, UnknownOptionFails) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--bogus", "1"}));
  EXPECT_NE(parser.error().find("bogus"), std::string::npos);
}

TEST(Args, MissingValueFails) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--q"}));
  EXPECT_NE(parser.error().find("needs a value"), std::string::npos);
}

TEST(Args, PositionalArgumentsRejected) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"stray"}));
}

TEST(Args, HelpRequestDetected) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({"--help"}));
  EXPECT_TRUE(parser.help_requested());
  auto parser2 = make_parser();
  ASSERT_TRUE(parser2.parse({"-h"}));
  EXPECT_TRUE(parser2.help_requested());
}

TEST(Args, HelpTextListsOptionsAndDefaults) {
  const auto parser = make_parser();
  const std::string help = parser.help();
  EXPECT_NE(help.find("--q"), std::string::npos);
  EXPECT_NE(help.find("default: 0.5"), std::string::npos);
  EXPECT_NE(help.find("--verbose"), std::string::npos);
  EXPECT_NE(help.find("--help"), std::string::npos);
}

TEST(Args, ArgcArgvInterface) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--q", "2.0", "--verbose"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_DOUBLE_EQ(*parser.number("q"), 2.0);
  EXPECT_TRUE(parser.flag("verbose"));
}

TEST(Args, DuplicateDeclarationRejected) {
  ArgParser parser("tool", "dup");
  parser.add_option("x", "first", "1");
  EXPECT_THROW(parser.add_option("x", "again", "2"), zc::ContractViolation);
  EXPECT_THROW(parser.add_flag("x", "again"), zc::ContractViolation);
}

TEST(Args, AccessorContractOnWrongKind) {
  auto parser = make_parser();
  ASSERT_TRUE(parser.parse({}));
  EXPECT_THROW((void)parser.flag("q"), zc::ContractViolation);
  EXPECT_THROW((void)parser.text("verbose"), zc::ContractViolation);
  EXPECT_THROW((void)parser.flag("missing"), zc::ContractViolation);
}

// Repeats are rejected rather than last-wins: a duplicated flag in a long
// command line is nearly always a typo for a different option.
TEST(Args, DuplicateValueOptionRejected) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--q", "1", "--q", "2"}));
  EXPECT_NE(parser.error().find("duplicate option '--q'"), std::string::npos);
}

TEST(Args, DuplicateFlagRejected) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--verbose", "--verbose"}));
  EXPECT_NE(parser.error().find("duplicate option '--verbose'"),
            std::string::npos);
}

TEST(Args, UnknownOptionSuggestsNearestName) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--lable", "x"}));
  EXPECT_NE(parser.error().find("unknown option '--lable'"),
            std::string::npos);
  EXPECT_NE(parser.error().find("(did you mean '--label'?)"),
            std::string::npos);
}

TEST(Args, UnknownOptionSuggestsHelp) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--hepl"}));
  EXPECT_NE(parser.error().find("(did you mean '--help'?)"),
            std::string::npos);
}

TEST(Args, NoSuggestionBeyondEditDistanceTwo) {
  auto parser = make_parser();
  EXPECT_FALSE(parser.parse({"--completely-different", "1"}));
  EXPECT_EQ(parser.error().find("did you mean"), std::string::npos);
}

}  // namespace
