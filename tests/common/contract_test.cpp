#include "common/contract.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Contract, ExpectsPassesOnTrue) {
  EXPECT_NO_THROW(ZC_EXPECTS(1 + 1 == 2));
}

TEST(Contract, ExpectsThrowsOnFalse) {
  EXPECT_THROW(ZC_EXPECTS(1 + 1 == 3), zc::ContractViolation);
}

TEST(Contract, EnsuresThrowsOnFalse) {
  EXPECT_THROW(ZC_ENSURES(false), zc::ContractViolation);
}

TEST(Contract, AssertThrowsOnFalse) {
  EXPECT_THROW(ZC_ASSERT(false), zc::ContractViolation);
}

TEST(Contract, MessageNamesKindExpressionAndLocation) {
  try {
    ZC_EXPECTS(2 < 1);
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("precondition"), std::string::npos);
    EXPECT_NE(msg.find("2 < 1"), std::string::npos);
    EXPECT_NE(msg.find("contract_test.cpp"), std::string::npos);
  }
}

TEST(Contract, ViolationIsALogicError) {
  EXPECT_THROW(ZC_ASSERT(false), std::logic_error);
}

TEST(Contract, RequirePassesOnTrue) {
  EXPECT_NO_THROW(ZC_REQUIRE(true, "never shown"));
}

TEST(Contract, RequireMessageNamesFieldExpressionAndLocation) {
  const double loss = 1.5;
  try {
    ZC_REQUIRE(loss < 1.0, "MediumConfig.loss must be in [0, 1)");
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("MediumConfig.loss"), std::string::npos);
    EXPECT_NE(msg.find("loss < 1.0"), std::string::npos);
    EXPECT_NE(msg.find("contract_test.cpp"), std::string::npos);
  }
}

TEST(Contract, RequireAcceptsComposedStdStringMessages) {
  const std::string field = "DelaySpike.extra";
  EXPECT_THROW(ZC_REQUIRE(false, field + " must be finite"),
               zc::ContractViolation);
}

TEST(Contract, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  const auto count = [&] {
    ++calls;
    return true;
  };
  ZC_EXPECTS(count());
  EXPECT_EQ(calls, 1);
}

}  // namespace
