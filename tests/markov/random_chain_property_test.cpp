/// Property suite: randomly generated absorbing chains, validated three
/// ways against each other — closed-form analysis (fundamental matrix),
/// phase-type absorption-time laws, and direct Monte-Carlo simulation of
/// the chain. Parameterized over RNG seeds.

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "markov/absorbing.hpp"
#include "markov/phase_type.hpp"
#include "markov/reward.hpp"
#include "prob/rng.hpp"
#include "sim/stats.hpp"

namespace {

using zc::linalg::Matrix;
using zc::markov::Dtmc;
using zc::prob::Rng;

/// Random absorbing chain: `transients` transient states, 2 absorbing
/// ones; every transient row mixes random transitions with a guaranteed
/// positive absorption leak so the chain is absorbing by construction.
Dtmc random_absorbing_chain(std::size_t transients, Rng& rng) {
  const std::size_t n = transients + 2;
  Matrix p(n, n, 0.0);
  for (std::size_t i = 0; i < transients; ++i) {
    std::vector<double> weights(n);
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      weights[j] = rng.uniform(0.0, 1.0);
      total += weights[j];
    }
    // Ensure a real leak to the absorbers.
    weights[transients] += 0.2 * total;
    weights[transients + 1] += 0.1 * total;
    total *= 1.3;
    for (std::size_t j = 0; j < n; ++j) p(i, j) = weights[j] / total;
    // Normalize exactly.
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j) row += p(i, j);
    p(i, i) += 1.0 - row;
  }
  p(transients, transients) = 1.0;
  p(transients + 1, transients + 1) = 1.0;
  return Dtmc(std::move(p));
}

/// One simulated path: returns (absorbing state reached, steps taken,
/// reward accumulated under `rewards`).
struct PathResult {
  std::size_t absorbed_in = 0;
  std::size_t steps = 0;
  double reward = 0.0;
};

PathResult simulate_path(const Dtmc& chain, const Matrix& rewards,
                         std::size_t from, Rng& rng) {
  PathResult out;
  std::size_t state = from;
  while (!chain.is_absorbing(state)) {
    const double u = rng.uniform();
    double acc = 0.0;
    std::size_t next = chain.num_states() - 1;
    for (std::size_t j = 0; j < chain.num_states(); ++j) {
      acc += chain.probability(state, j);
      if (u < acc) {
        next = j;
        break;
      }
    }
    out.reward += rewards(state, next);
    ++out.steps;
    state = next;
  }
  out.absorbed_in = state;
  return out;
}

Matrix random_rewards(const Dtmc& chain, Rng& rng) {
  const std::size_t n = chain.num_states();
  Matrix rewards(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (chain.is_absorbing(i)) continue;
    for (std::size_t j = 0; j < n; ++j)
      if (chain.probability(i, j) > 0.0)
        rewards(i, j) = rng.uniform(0.0, 5.0);
  }
  return rewards;
}

class RandomChains : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr std::size_t kTransients = 5;
  static constexpr std::size_t kPaths = 60000;
};

TEST_P(RandomChains, AbsorptionProbabilitiesMatchSimulation) {
  Rng rng(GetParam());
  const Dtmc chain = random_absorbing_chain(kTransients, rng);
  const zc::markov::AbsorbingAnalysis analysis(chain);
  const Matrix zero(chain.num_states(), chain.num_states(), 0.0);

  std::size_t into_first = 0;
  for (std::size_t k = 0; k < kPaths; ++k)
    if (simulate_path(chain, zero, 0, rng).absorbed_in == kTransients)
      ++into_first;
  const auto ci = zc::sim::wilson_ci95(into_first, kPaths);
  const double exact = analysis.absorption_probability(0, kTransients);
  EXPECT_GE(exact, ci.lower * 0.98);
  EXPECT_LE(exact, ci.upper * 1.02);
}

TEST_P(RandomChains, ExpectedStepsMatchSimulation) {
  Rng rng(GetParam() + 1000);
  const Dtmc chain = random_absorbing_chain(kTransients, rng);
  const zc::markov::AbsorbingAnalysis analysis(chain);
  const Matrix zero(chain.num_states(), chain.num_states(), 0.0);

  zc::sim::RunningStats steps;
  for (std::size_t k = 0; k < kPaths; ++k)
    steps.add(static_cast<double>(simulate_path(chain, zero, 0, rng).steps));
  EXPECT_NEAR(analysis.expected_steps()[0], steps.mean(),
              5.0 * steps.ci95_halfwidth());
}

TEST_P(RandomChains, ExpectedRewardMatchesSimulation) {
  Rng rng(GetParam() + 2000);
  const Dtmc chain = random_absorbing_chain(kTransients, rng);
  const Matrix rewards = random_rewards(chain, rng);
  const zc::markov::MarkovRewardModel model(chain, rewards);

  zc::sim::RunningStats total;
  for (std::size_t k = 0; k < kPaths; ++k)
    total.add(simulate_path(chain, rewards, 0, rng).reward);
  EXPECT_NEAR(model.expected_total_reward(0), total.mean(),
              5.0 * total.ci95_halfwidth());
}

TEST_P(RandomChains, RewardVarianceMatchesSimulation) {
  Rng rng(GetParam() + 3000);
  const Dtmc chain = random_absorbing_chain(kTransients, rng);
  const Matrix rewards = random_rewards(chain, rng);
  const zc::markov::MarkovRewardModel model(chain, rewards);

  zc::sim::RunningStats total;
  for (std::size_t k = 0; k < kPaths; ++k)
    total.add(simulate_path(chain, rewards, 0, rng).reward);
  EXPECT_NEAR(model.variance_total_reward(0) / total.variance(), 1.0, 0.1);
}

TEST_P(RandomChains, PhaseTypeCdfMatchesSimulatedSteps) {
  Rng rng(GetParam() + 4000);
  const Dtmc chain = random_absorbing_chain(kTransients, rng);
  const auto dph =
      zc::markov::DiscretePhaseType::absorption_time(chain, 0);
  const Matrix zero(chain.num_states(), chain.num_states(), 0.0);

  std::vector<std::size_t> counts(32, 0);
  for (std::size_t k = 0; k < kPaths; ++k) {
    const std::size_t steps = simulate_path(chain, zero, 0, rng).steps;
    if (steps < counts.size()) ++counts[steps];
  }
  double cumulative = 0.0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    cumulative += static_cast<double>(counts[s]) / kPaths;
    EXPECT_NEAR(dph.cdf(s), cumulative, 0.01) << "steps<=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChains,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
