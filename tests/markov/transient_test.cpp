#include "markov/transient.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "markov/absorbing.hpp"
#include "numerics/kahan.hpp"

namespace {

using zc::linalg::Matrix;
using zc::linalg::Vector;
using zc::markov::Dtmc;

TEST(Transient, ZeroStepsIsInitialDistribution) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  const Vector init{1.0, 0.0};
  EXPECT_EQ(zc::markov::distribution_after(chain, init, 0), init);
}

TEST(Transient, OneStepMatchesRow) {
  const Dtmc chain(Matrix{{0.3, 0.7}, {0.0, 1.0}});
  const Vector dist =
      zc::markov::distribution_after(chain, {1.0, 0.0}, 1);
  EXPECT_NEAR(dist[0], 0.3, 1e-15);
  EXPECT_NEAR(dist[1], 0.7, 1e-15);
}

TEST(Transient, DistributionStaysNormalized) {
  const Dtmc chain(Matrix{{0.2, 0.5, 0.3},
                          {0.1, 0.6, 0.3},
                          {0.0, 0.0, 1.0}});
  Vector dist{0.5, 0.5, 0.0};
  for (std::size_t k = 1; k <= 20; ++k) {
    dist = zc::markov::distribution_after(chain, dist, 1);
    zc::numerics::KahanSum sum;
    for (double v : dist) sum.add(v);
    EXPECT_NEAR(sum.value(), 1.0, 1e-12) << "step " << k;
  }
}

TEST(Transient, KStepProbabilityGeometricLoop) {
  const double q = 0.4;
  const Dtmc chain(Matrix{{q, 1.0 - q}, {0.0, 1.0}});
  // Still in state 0 after k steps: q^k.
  for (std::size_t k : {1u, 2u, 5u, 10u})
    EXPECT_NEAR(zc::markov::k_step_probability(chain, 0, 0, k),
                std::pow(q, static_cast<double>(k)), 1e-12);
}

TEST(Transient, AbsorbedWithinIsMonotone) {
  const Dtmc chain(Matrix{{0.6, 0.4}, {0.0, 1.0}});
  double prev = 0.0;
  for (std::size_t h : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double p = zc::markov::absorbed_within(chain, 0, 1, h);
    EXPECT_GE(p, prev - 1e-15);
    prev = p;
  }
}

TEST(Transient, AbsorbedWithinConvergesToClosedForm) {
  const Dtmc chain(Matrix{{0.25, 0.35, 0.4},
                          {0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0}});
  const zc::markov::AbsorbingAnalysis exact(chain);
  const double limit = exact.absorption_probability(0, 1);
  EXPECT_NEAR(zc::markov::absorbed_within(chain, 0, 1, 100), limit, 1e-12);
}

TEST(Transient, AbsorbedWithinRequiresAbsorbingTarget) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  EXPECT_THROW((void)zc::markov::absorbed_within(chain, 0, 0, 5),
               zc::ContractViolation);
}

TEST(Transient, SeriesMatchesDirectCumulative) {
  // The paper's Sec. 5 series s (P')^{k-1} e must equal the cumulative
  // k-step absorption probability for every horizon.
  const Dtmc chain(Matrix{{0.3, 0.2, 0.1, 0.4},
                          {0.25, 0.25, 0.25, 0.25},
                          {0.0, 0.0, 1.0, 0.0},
                          {0.0, 0.0, 0.0, 1.0}});
  for (std::size_t h : {1u, 3u, 10u, 50u}) {
    EXPECT_NEAR(zc::markov::absorption_series(chain, 0, 2, h),
                zc::markov::absorbed_within(chain, 0, 2, h), 1e-12)
        << "horizon " << h;
  }
}

TEST(Transient, SeriesConvergesToFundamentalSolution) {
  const Dtmc chain(Matrix{{0.5, 0.3, 0.2}, {0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0}});
  const zc::markov::AbsorbingAnalysis exact(chain);
  EXPECT_NEAR(zc::markov::absorption_series(chain, 0, 1, 200),
              exact.absorption_probability(0, 1), 1e-12);
}

TEST(Transient, SeriesFromNonTransientStateRejected) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  EXPECT_THROW((void)zc::markov::absorption_series(chain, 1, 1, 5),
               zc::ContractViolation);
}

TEST(Transient, MismatchedInitialSizeRejected) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  EXPECT_THROW(
      (void)zc::markov::distribution_after(chain, Vector{1.0}, 1),
      zc::ContractViolation);
}

}  // namespace
