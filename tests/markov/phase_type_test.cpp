#include "markov/phase_type.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "markov/absorbing.hpp"
#include "markov/transient.hpp"
#include "numerics/kahan.hpp"

namespace {

using zc::linalg::Matrix;
using zc::linalg::Vector;
using zc::markov::DiscretePhaseType;
using zc::markov::Dtmc;

DiscretePhaseType geometric(double stay) {
  return DiscretePhaseType(Vector{1.0}, Matrix{{stay}});
}

TEST(PhaseType, GeometricPmf) {
  const double q = 0.3;
  const auto dph = geometric(q);
  for (std::size_t k = 1; k <= 6; ++k)
    EXPECT_NEAR(dph.pmf(k), std::pow(q, static_cast<double>(k - 1)) * (1 - q),
                1e-14)
        << "k=" << k;
  EXPECT_EQ(dph.pmf(0), 0.0);
}

TEST(PhaseType, GeometricMoments) {
  const double q = 0.65;
  const auto dph = geometric(q);
  EXPECT_NEAR(dph.mean(), 1.0 / (1.0 - q), 1e-12);
  EXPECT_NEAR(dph.variance(), q / ((1.0 - q) * (1.0 - q)), 1e-10);
}

TEST(PhaseType, DeficientAlphaGivesAtomAtZero) {
  const DiscretePhaseType dph(Vector{0.4}, Matrix{{0.5}});
  EXPECT_NEAR(dph.pmf(0), 0.6, 1e-14);
  EXPECT_NEAR(dph.cdf(0), 0.6, 1e-14);
}

TEST(PhaseType, PmfSumsToOne) {
  const DiscretePhaseType dph(Vector{0.5, 0.5},
                              Matrix{{0.2, 0.3}, {0.1, 0.6}});
  zc::numerics::KahanSum total;
  for (const double p : dph.pmf_prefix(400)) total.add(p);
  EXPECT_NEAR(total.value(), 1.0, 1e-12);
}

TEST(PhaseType, PmfPrefixMatchesPointwisePmf) {
  const DiscretePhaseType dph(Vector{0.7, 0.3},
                              Matrix{{0.4, 0.1}, {0.2, 0.5}});
  const auto prefix = dph.pmf_prefix(10);
  for (std::size_t k = 0; k <= 10; ++k)
    EXPECT_NEAR(prefix[k], dph.pmf(k), 1e-14) << "k=" << k;
}

TEST(PhaseType, CdfMatchesPartialSums) {
  const DiscretePhaseType dph(Vector{1.0, 0.0},
                              Matrix{{0.3, 0.2}, {0.0, 0.7}});
  zc::numerics::KahanSum acc;
  for (std::size_t k = 0; k <= 20; ++k) {
    acc.add(dph.pmf(k));
    EXPECT_NEAR(dph.cdf(k), acc.value(), 1e-13) << "k=" << k;
  }
}

TEST(PhaseType, AbsorptionTimeOfGamblersRuin) {
  // Fair gambler's ruin on {0..4}: duration from i has mean i (4 - i).
  Matrix m(5, 5, 0.0);
  m(0, 0) = 1.0;
  m(4, 4) = 1.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    m(i, i + 1) = 0.5;
    m(i, i - 1) = 0.5;
  }
  const Dtmc chain(std::move(m));
  for (std::size_t i = 1; i <= 3; ++i) {
    const auto dph = DiscretePhaseType::absorption_time(chain, i);
    const double di = static_cast<double>(i);
    EXPECT_NEAR(dph.mean(), di * (4.0 - di), 1e-10);
  }
}

TEST(PhaseType, AbsorptionTimeMeanMatchesFundamentalMatrix) {
  const Dtmc chain(Matrix{{0.3, 0.2, 0.1, 0.4},
                          {0.25, 0.25, 0.25, 0.25},
                          {0.0, 0.0, 1.0, 0.0},
                          {0.0, 0.0, 0.0, 1.0}});
  const zc::markov::AbsorbingAnalysis analysis(chain);
  const auto steps = analysis.expected_steps();
  for (std::size_t i = 0; i < 2; ++i) {
    const auto dph = DiscretePhaseType::absorption_time(chain, i);
    EXPECT_NEAR(dph.mean(), steps[i], 1e-12) << "from " << i;
  }
}

TEST(PhaseType, AbsorptionTimeCdfMatchesTransientAnalysis) {
  // P(K <= k) must equal the total absorbed mass within k steps.
  const Dtmc chain(Matrix{{0.5, 0.3, 0.2}, {0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0}});
  const auto dph = DiscretePhaseType::absorption_time(chain, 0);
  for (std::size_t k : {1u, 3u, 7u, 15u}) {
    const double absorbed =
        zc::markov::absorbed_within(chain, 0, 1, k) +
        zc::markov::absorbed_within(chain, 0, 2, k);
    EXPECT_NEAR(dph.cdf(k), absorbed, 1e-12) << "k=" << k;
  }
}

TEST(PhaseType, AbsorptionTimeFromAbsorbingStateIsZero) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  const auto dph = DiscretePhaseType::absorption_time(chain, 1);
  EXPECT_EQ(dph.pmf(0), 1.0);
  EXPECT_EQ(dph.quantile(0.99), 0u);
}

TEST(PhaseType, QuantileInvertsCdf) {
  const auto dph = geometric(0.8);
  for (const double p : {0.1, 0.5, 0.9, 0.999}) {
    const std::size_t k = dph.quantile(p);
    EXPECT_GE(dph.cdf(k), p);
    if (k > 0) {
      EXPECT_LT(dph.cdf(k - 1), p);
    }
  }
}

TEST(PhaseType, VarianceNonNegativeAcrossShapes) {
  const DiscretePhaseType a(Vector{1.0, 0.0},
                            Matrix{{0.0, 1.0}, {0.0, 0.0}});
  // Deterministic 2-step absorption: variance 0.
  EXPECT_NEAR(a.mean(), 2.0, 1e-12);
  EXPECT_NEAR(a.variance(), 0.0, 1e-10);
}

TEST(PhaseType, ValidationRejectsBadInputs) {
  EXPECT_THROW(DiscretePhaseType(Vector{1.0}, Matrix{{1.5}}),
               zc::ContractViolation);  // row sum > 1
  EXPECT_THROW(DiscretePhaseType(Vector{1.0, 0.0}, Matrix{{0.5}}),
               zc::ContractViolation);  // size mismatch
  EXPECT_THROW(DiscretePhaseType(Vector{1.0}, Matrix{{1.0}}),
               zc::ContractViolation);  // (I-Q) singular
  EXPECT_THROW(DiscretePhaseType(Vector{-0.2}, Matrix{{0.5}}),
               zc::ContractViolation);  // negative alpha
}

}  // namespace
