#include "markov/reward.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

using zc::linalg::Matrix;
using zc::markov::Dtmc;
using zc::markov::MarkovRewardModel;

/// One transient state that loops with probability q, paying `loop_cost`
/// per loop and `exit_cost` on absorption: a geometric total reward with
/// closed-form mean and variance.
MarkovRewardModel geometric_model(double q, double loop_cost,
                                  double exit_cost) {
  Dtmc chain(Matrix{{q, 1.0 - q}, {0.0, 1.0}});
  Matrix rewards(2, 2, 0.0);
  rewards(0, 0) = loop_cost;
  rewards(0, 1) = exit_cost;
  return MarkovRewardModel(std::move(chain), std::move(rewards));
}

TEST(Reward, GeometricMeanClosedForm) {
  // Loops L ~ Geometric(1-q) (count of self-loops): E[L] = q/(1-q).
  // Total = loop_cost * L + exit_cost.
  const double q = 0.3, loop = 2.0, exit = 5.0;
  const auto model = geometric_model(q, loop, exit);
  EXPECT_NEAR(model.expected_total_reward(0),
              loop * q / (1.0 - q) + exit, 1e-12);
}

TEST(Reward, GeometricVarianceClosedForm) {
  // Var[L] = q/(1-q)^2 for the number of self-loops.
  const double q = 0.3, loop = 2.0, exit = 5.0;
  const auto model = geometric_model(q, loop, exit);
  EXPECT_NEAR(model.variance_total_reward(0),
              loop * loop * q / ((1.0 - q) * (1.0 - q)), 1e-10);
}

TEST(Reward, ZeroRewardsGiveZeroTotal) {
  Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  MarkovRewardModel model(std::move(chain), Matrix(2, 2, 0.0));
  EXPECT_EQ(model.expected_total_reward(0), 0.0);
  EXPECT_EQ(model.variance_total_reward(0), 0.0);
}

TEST(Reward, DeterministicPathAccumulatesExactly) {
  // 0 ->(c=1) 1 ->(c=2) 2(absorbing): total reward 3, variance 0.
  Dtmc chain(Matrix{{0.0, 1.0, 0.0},
                    {0.0, 0.0, 1.0},
                    {0.0, 0.0, 1.0}});
  Matrix rewards(3, 3, 0.0);
  rewards(0, 1) = 1.0;
  rewards(1, 2) = 2.0;
  MarkovRewardModel model(std::move(chain), std::move(rewards));
  EXPECT_NEAR(model.expected_total_reward(0), 3.0, 1e-14);
  EXPECT_NEAR(model.expected_total_reward(1), 2.0, 1e-14);
  EXPECT_NEAR(model.variance_total_reward(0), 0.0, 1e-10);
}

TEST(Reward, BranchingMixtureMeanAndVariance) {
  // 0 -> A (p=0.5, cost 0) or B (p=0.5, cost 10): Bernoulli total.
  Dtmc chain(Matrix{{0.0, 0.5, 0.5},
                    {0.0, 1.0, 0.0},
                    {0.0, 0.0, 1.0}});
  Matrix rewards(3, 3, 0.0);
  rewards(0, 2) = 10.0;
  MarkovRewardModel model(std::move(chain), std::move(rewards));
  EXPECT_NEAR(model.expected_total_reward(0), 5.0, 1e-14);
  EXPECT_NEAR(model.variance_total_reward(0), 25.0, 1e-10);
}

TEST(Reward, AbsorbingStatesHaveZeroTotal) {
  const auto model = geometric_model(0.4, 1.0, 1.0);
  EXPECT_EQ(model.expected_total_reward(1), 0.0);
  EXPECT_EQ(model.variance_total_reward(1), 0.0);
}

TEST(Reward, RewardOnMissingTransitionRejected) {
  Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  Matrix rewards(2, 2, 0.0);
  rewards(1, 0) = 3.0;  // p(1,0) == 0
  EXPECT_THROW(MarkovRewardModel(std::move(chain), std::move(rewards)),
               zc::ContractViolation);
}

TEST(Reward, AbsorbingSelfLoopRewardRejected) {
  Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  Matrix rewards(2, 2, 0.0);
  rewards(1, 1) = 1.0;  // infinite accumulation
  EXPECT_THROW(MarkovRewardModel(std::move(chain), std::move(rewards)),
               zc::ContractViolation);
}

TEST(Reward, ShapeMismatchRejected) {
  Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  EXPECT_THROW(MarkovRewardModel(std::move(chain), Matrix(3, 3, 0.0)),
               zc::ContractViolation);
}

TEST(Reward, SecondMomentConsistentWithMeanAndVariance) {
  const auto model = geometric_model(0.6, 1.5, 0.5);
  const auto m1 = model.expected_total_reward();
  const auto m2 = model.second_moment_total_reward();
  const auto var = model.variance_total_reward();
  for (std::size_t i = 0; i < m1.size(); ++i)
    EXPECT_NEAR(var[i], m2[i] - m1[i] * m1[i], 1e-9);
}

TEST(Reward, ConditionalRewardOfBranchingMixture) {
  // 0 -> A (p=0.5, cost 0) or B (p=0.5, cost 10): conditioning separates
  // the two atoms exactly.
  Dtmc chain(Matrix{{0.0, 0.5, 0.5},
                    {0.0, 1.0, 0.0},
                    {0.0, 0.0, 1.0}});
  Matrix rewards(3, 3, 0.0);
  rewards(0, 2) = 10.0;
  MarkovRewardModel model(std::move(chain), std::move(rewards));
  EXPECT_NEAR(model.expected_total_reward_given_absorption(0, 1), 0.0,
              1e-12);
  EXPECT_NEAR(model.expected_total_reward_given_absorption(0, 2), 10.0,
              1e-12);
}

TEST(Reward, ConditionalRewardsSatisfyTotalExpectation) {
  // E[T] = sum_A P(A) E[T | A] over the absorbing states.
  Dtmc chain(Matrix{{0.2, 0.3, 0.2, 0.3},
                    {0.1, 0.1, 0.5, 0.3},
                    {0.0, 0.0, 1.0, 0.0},
                    {0.0, 0.0, 0.0, 1.0}});
  Matrix rewards(4, 4, 0.0);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      if (chain.probability(i, j) > 0.0)
        rewards(i, j) = static_cast<double>(i + j + 1);
  MarkovRewardModel model(chain, rewards);
  const double p2 = model.analysis().absorption_probability(0, 2);
  const double p3 = model.analysis().absorption_probability(0, 3);
  const double reconstructed =
      p2 * model.expected_total_reward_given_absorption(0, 2) +
      p3 * model.expected_total_reward_given_absorption(0, 3);
  EXPECT_NEAR(reconstructed, model.expected_total_reward(0), 1e-10);
}

TEST(Reward, ConditionalRewardFromAbsorbingState) {
  const auto model = geometric_model(0.5, 1.0, 2.0);
  EXPECT_EQ(model.expected_total_reward_given_absorption(1, 1), 0.0);
}

TEST(Reward, ConditionalRewardRequiresReachableTarget) {
  // Two absorbers, but state 0 can only reach absorber 1.
  Dtmc chain(Matrix{{0.5, 0.5, 0.0},
                    {0.0, 1.0, 0.0},
                    {0.0, 0.0, 1.0}});
  MarkovRewardModel model(std::move(chain), Matrix(3, 3, 0.0));
  EXPECT_THROW(
      (void)model.expected_total_reward_given_absorption(0, 2),
      zc::ContractViolation);
}

/// Sweep the loop probability: mean/variance closed forms must hold
/// across the whole range.
class GeometricSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeometricSweep, MeanMatchesClosedForm) {
  const double q = GetParam();
  const auto model = geometric_model(q, 1.0, 0.0);
  EXPECT_NEAR(model.expected_total_reward(0), q / (1.0 - q),
              1e-9 * (1.0 + q / (1.0 - q)));
}

TEST_P(GeometricSweep, VarianceMatchesClosedForm) {
  const double q = GetParam();
  const auto model = geometric_model(q, 1.0, 0.0);
  const double expected = q / ((1.0 - q) * (1.0 - q));
  EXPECT_NEAR(model.variance_total_reward(0) / (expected + 1e-300), 1.0,
              1e-7)
      << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(LoopProbabilities, GeometricSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99));

}  // namespace
