#include "markov/absorbing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "linalg/norms.hpp"

namespace {

using zc::linalg::Matrix;
using zc::markov::AbsorbingAnalysis;
using zc::markov::Dtmc;

/// Gambler's ruin on {0..4}: states 0 and 4 absorbing, p(win) = p.
Dtmc gamblers_ruin(double p) {
  Matrix m(5, 5, 0.0);
  m(0, 0) = 1.0;
  m(4, 4) = 1.0;
  for (std::size_t i = 1; i <= 3; ++i) {
    m(i, i + 1) = p;
    m(i, i - 1) = 1.0 - p;
  }
  return Dtmc(std::move(m));
}

TEST(Absorbing, FairGamblersRuinProbabilities) {
  // Fair game: ruin probability from state i is 1 - i/4.
  const AbsorbingAnalysis a(gamblers_ruin(0.5));
  for (std::size_t i = 1; i <= 3; ++i) {
    EXPECT_NEAR(a.absorption_probability(i, 0),
                1.0 - static_cast<double>(i) / 4.0, 1e-12);
    EXPECT_NEAR(a.absorption_probability(i, 4),
                static_cast<double>(i) / 4.0, 1e-12);
  }
}

TEST(Absorbing, BiasedGamblersRuinClosedForm) {
  // P(reach N before 0 | start i) = (1-(q/p)^i) / (1-(q/p)^N).
  const double p = 0.6, q = 0.4, ratio = q / p;
  const AbsorbingAnalysis a(gamblers_ruin(p));
  for (std::size_t i = 1; i <= 3; ++i) {
    const double expected =
        (1.0 - std::pow(ratio, static_cast<double>(i))) /
        (1.0 - std::pow(ratio, 4.0));
    EXPECT_NEAR(a.absorption_probability(i, 4), expected, 1e-12);
  }
}

TEST(Absorbing, RowsOfAbsorptionMatrixSumToOne) {
  const AbsorbingAnalysis a(gamblers_ruin(0.37));
  const auto& b = a.absorption_matrix();
  for (std::size_t i = 0; i < b.rows(); ++i) {
    double row = 0.0;
    for (std::size_t k = 0; k < b.cols(); ++k) row += b(i, k);
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
}

TEST(Absorbing, FairRuinExpectedSteps) {
  // Fair game: expected duration from i is i (N - i).
  const AbsorbingAnalysis a(gamblers_ruin(0.5));
  const auto steps = a.expected_steps();
  const auto& transient = a.transient_states();
  for (std::size_t idx = 0; idx < transient.size(); ++idx) {
    const auto i = static_cast<double>(transient[idx]);
    EXPECT_NEAR(steps[idx], i * (4.0 - i), 1e-10);
  }
}

TEST(Absorbing, FundamentalMatrixKnownExample) {
  // Kemeny-Snell style 1-transient-state chain: N = 1/(1-q).
  const Dtmc chain(Matrix{{0.25, 0.75}, {0.0, 1.0}});
  const AbsorbingAnalysis a(chain);
  EXPECT_NEAR(a.fundamental()(0, 0), 1.0 / 0.75, 1e-14);
  EXPECT_NEAR(a.expected_visits(0, 0), 1.0 / 0.75, 1e-14);
}

TEST(Absorbing, AbsorptionFromAbsorbingState) {
  const AbsorbingAnalysis a(gamblers_ruin(0.5));
  EXPECT_EQ(a.absorption_probability(0, 0), 1.0);
  EXPECT_EQ(a.absorption_probability(0, 4), 0.0);
}

TEST(Absorbing, PartitionIndicesSorted) {
  const AbsorbingAnalysis a(gamblers_ruin(0.5));
  EXPECT_EQ(a.transient_states(), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(a.absorbing_states(), (std::vector<std::size_t>{0, 4}));
}

TEST(Absorbing, QAndRSubmatricesExtracted) {
  const Dtmc chain(Matrix{{0.2, 0.3, 0.5}, {0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0}});
  const AbsorbingAnalysis a(chain);
  EXPECT_EQ(a.transient_matrix().rows(), 1u);
  EXPECT_EQ(a.transient_matrix()(0, 0), 0.2);
  EXPECT_EQ(a.absorbing_jump_matrix()(0, 0), 0.3);
  EXPECT_EQ(a.absorbing_jump_matrix()(0, 1), 0.5);
}

TEST(Absorbing, NonAbsorbingChainRejected) {
  // A closed 2-cycle means not every state reaches an absorber.
  const Dtmc chain(Matrix{{0.5, 0.25, 0.25, 0.0},
                          {0.0, 1.0, 0.0, 0.0},
                          {0.0, 0.0, 0.0, 1.0},
                          {0.0, 0.0, 1.0, 0.0}});
  EXPECT_THROW(AbsorbingAnalysis{chain}, zc::ContractViolation);
}

TEST(Absorbing, ChainWithoutAbsorbersRejected) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_THROW(AbsorbingAnalysis{chain}, zc::ContractViolation);
}

TEST(Absorbing, SolveTransientMatchesFundamentalTimesRhs) {
  const AbsorbingAnalysis a(gamblers_ruin(0.42));
  const zc::linalg::Vector rhs{1.0, 2.0, 3.0};
  const auto direct = a.solve_transient(rhs);
  const auto via_n = a.fundamental() * rhs;
  EXPECT_LT(zc::linalg::max_abs_diff(direct, via_n), 1e-12);
}

TEST(Absorbing, SolveTransientSizeMismatchRejected) {
  const AbsorbingAnalysis a(gamblers_ruin(0.5));
  EXPECT_THROW((void)a.solve_transient({1.0}), zc::ContractViolation);
}

TEST(Absorbing, ExpectedVisitsOfLinearChain) {
  // 0 -> 1 -> 2(absorbing), deterministic: each transient visited once.
  const Dtmc chain(Matrix{{0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0},
                          {0.0, 0.0, 1.0}});
  const AbsorbingAnalysis a(chain);
  EXPECT_NEAR(a.expected_visits(0, 0), 1.0, 1e-14);
  EXPECT_NEAR(a.expected_visits(0, 1), 1.0, 1e-14);
  EXPECT_NEAR(a.expected_visits(1, 0), 0.0, 1e-14);
}

}  // namespace
