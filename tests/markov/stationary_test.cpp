#include "markov/stationary.hpp"

#include <gtest/gtest.h>

#include "linalg/norms.hpp"

namespace {

using zc::linalg::Matrix;
using zc::linalg::Vector;
using zc::markov::Dtmc;

TEST(Stationary, TwoStateClosedForm) {
  // pi = (b/(a+b), a/(a+b)) for switch rates a, b.
  const double a = 0.3, b = 0.1;
  const Dtmc chain(Matrix{{1.0 - a, a}, {b, 1.0 - b}});
  const Vector pi = zc::markov::stationary_direct(chain);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
}

TEST(Stationary, PowerIterationAgreesWithDirect) {
  const Dtmc chain(Matrix{{0.5, 0.3, 0.2},
                          {0.2, 0.6, 0.2},
                          {0.1, 0.2, 0.7}});
  const auto power = zc::markov::stationary_power(chain);
  ASSERT_TRUE(power.has_value());
  const Vector direct = zc::markov::stationary_direct(chain);
  EXPECT_LT(zc::linalg::max_abs_diff(*power, direct), 1e-9);
}

TEST(Stationary, DistributionIsInvariant) {
  const Dtmc chain(Matrix{{0.9, 0.1, 0.0},
                          {0.05, 0.9, 0.05},
                          {0.0, 0.2, 0.8}});
  const Vector pi = zc::markov::stationary_direct(chain);
  const Vector next = zc::linalg::mul_left(pi, chain.transition_matrix());
  EXPECT_LT(zc::linalg::max_abs_diff(pi, next), 1e-12);
}

TEST(Stationary, SumsToOne) {
  const Dtmc chain(Matrix{{0.25, 0.75}, {0.5, 0.5}});
  const Vector pi = zc::markov::stationary_direct(chain);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(Stationary, UniformForDoublyStochastic) {
  const Dtmc chain(Matrix{{0.2, 0.3, 0.5},
                          {0.5, 0.2, 0.3},
                          {0.3, 0.5, 0.2}});
  const Vector pi = zc::markov::stationary_direct(chain);
  for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Stationary, DirectHandlesPeriodicChains) {
  // 2-cycle: power iteration from uniform works by symmetry, but the
  // direct solve must give pi = (1/2, 1/2) unconditionally.
  const Dtmc chain(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  const Vector pi = zc::markov::stationary_direct(chain);
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
}

TEST(Stationary, PowerIterationRespectsMaxIter) {
  const Dtmc chain(Matrix{{0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0},
                          {1.0, 0.0, 0.0}});
  // Periodic 3-cycle started from the uniform distribution is already
  // stationary; perturbation-free convergence in one step is fine. Use a
  // tight iteration budget to exercise the option plumbing.
  zc::markov::StationaryOptions opts;
  opts.max_iter = 1;
  const auto result = zc::markov::stationary_power(chain, opts);
  ASSERT_TRUE(result.has_value());
  for (double v : *result) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

TEST(Stationary, AbsorbingChainConcentratesOnAbsorber) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  const auto pi = zc::markov::stationary_power(chain);
  ASSERT_TRUE(pi.has_value());
  EXPECT_NEAR((*pi)[0], 0.0, 1e-9);
  EXPECT_NEAR((*pi)[1], 1.0, 1e-9);
}

}  // namespace
