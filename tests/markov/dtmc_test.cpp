#include "markov/dtmc.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

using zc::linalg::Matrix;
using zc::markov::Dtmc;

Matrix simple_absorbing() {
  // s0 -> s1 (0.5) | s0 (0.5); s1 absorbing.
  return Matrix{{0.5, 0.5}, {0.0, 1.0}};
}

TEST(Dtmc, AcceptsValidStochasticMatrix) {
  const Dtmc chain(simple_absorbing());
  EXPECT_EQ(chain.num_states(), 2u);
  EXPECT_EQ(chain.probability(0, 1), 0.5);
}

TEST(Dtmc, RejectsNonSquare) {
  EXPECT_THROW(Dtmc(Matrix(2, 3, 0.5)), zc::ContractViolation);
}

TEST(Dtmc, RejectsRowNotSummingToOne) {
  EXPECT_THROW(Dtmc(Matrix{{0.5, 0.4}, {0.0, 1.0}}), zc::ContractViolation);
}

TEST(Dtmc, RejectsNegativeEntries) {
  EXPECT_THROW(Dtmc(Matrix{{1.2, -0.2}, {0.0, 1.0}}),
               zc::ContractViolation);
}

TEST(Dtmc, RejectsEmptyMatrix) {
  EXPECT_THROW(Dtmc(Matrix{}), zc::ContractViolation);
}

TEST(Dtmc, ToleratesTinyRoundingInRowSums) {
  Matrix p{{0.5, 0.5}, {0.0, 1.0}};
  p(0, 0) = 0.5 + 1e-12;
  EXPECT_NO_THROW(Dtmc(std::move(p)));
}

TEST(Dtmc, AutoNamesStates) {
  const Dtmc chain(simple_absorbing());
  EXPECT_EQ(chain.state_name(0), "s0");
  EXPECT_EQ(chain.state_name(1), "s1");
}

TEST(Dtmc, CustomNames) {
  const Dtmc chain(simple_absorbing(), {"start", "done"});
  EXPECT_EQ(chain.state_name(0), "start");
  EXPECT_EQ(chain.state_name(1), "done");
}

TEST(Dtmc, NameCountMismatchRejected) {
  EXPECT_THROW(Dtmc(simple_absorbing(), {"only-one"}),
               zc::ContractViolation);
}

TEST(Dtmc, AbsorbingDetection) {
  const Dtmc chain(simple_absorbing());
  EXPECT_FALSE(chain.is_absorbing(0));
  EXPECT_TRUE(chain.is_absorbing(1));
  EXPECT_EQ(chain.absorbing_states(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(chain.non_absorbing_states(), (std::vector<std::size_t>{0}));
}

TEST(Dtmc, SelfLoopBelowOneIsNotAbsorbing) {
  const Dtmc chain(Matrix{{0.999, 0.001}, {0.0, 1.0}});
  EXPECT_FALSE(chain.is_absorbing(0));
}

TEST(Dtmc, ReachabilityFollowsPositiveEdges) {
  // 0 -> 1 -> 2(absorbing); 3 unreachable from 0.
  const Matrix p{{0.0, 1.0, 0.0, 0.0},
                 {0.0, 0.0, 1.0, 0.0},
                 {0.0, 0.0, 1.0, 0.0},
                 {0.0, 0.0, 0.0, 1.0}};
  const Dtmc chain(p);
  EXPECT_EQ(chain.reachable_from(0), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(chain.reachable_from(3), (std::vector<std::size_t>{3}));
}

TEST(Dtmc, ReachabilityIncludesSelf) {
  const Dtmc chain(simple_absorbing());
  const auto reach = chain.reachable_from(1);
  EXPECT_EQ(reach, (std::vector<std::size_t>{1}));
}

}  // namespace
