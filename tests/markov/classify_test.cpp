#include "markov/classify.hpp"

#include <gtest/gtest.h>

namespace {

using zc::linalg::Matrix;
using zc::markov::classify;
using zc::markov::Dtmc;
using zc::markov::is_absorbing_chain;

TEST(Classify, SingleAbsorbingState) {
  const Dtmc chain(Matrix{{1.0}});
  const auto cls = classify(chain);
  EXPECT_EQ(cls.num_components, 1u);
  EXPECT_TRUE(cls.recurrent[0]);
}

TEST(Classify, TransientFeedingAbsorbing) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.0, 1.0}});
  const auto cls = classify(chain);
  EXPECT_EQ(cls.num_components, 2u);
  EXPECT_FALSE(cls.recurrent[0]);
  EXPECT_TRUE(cls.recurrent[1]);
  EXPECT_TRUE(cls.is_transient(0));
}

TEST(Classify, IrreducibleChainIsOneRecurrentComponent) {
  const Dtmc chain(Matrix{{0.1, 0.9}, {0.6, 0.4}});
  const auto cls = classify(chain);
  EXPECT_EQ(cls.num_components, 1u);
  EXPECT_TRUE(cls.recurrent[0]);
  EXPECT_TRUE(cls.recurrent[1]);
}

TEST(Classify, TwoStateCycleIsRecurrent) {
  const Dtmc chain(Matrix{{0.0, 1.0}, {1.0, 0.0}});
  const auto cls = classify(chain);
  EXPECT_EQ(cls.num_components, 1u);
  EXPECT_TRUE(cls.recurrent[0]);
}

TEST(Classify, TransientCycleFeedingAbsorber) {
  // 0 <-> 1 with leak to 2 (absorbing): {0,1} is one transient SCC.
  const Dtmc chain(Matrix{{0.0, 0.9, 0.1},
                          {1.0, 0.0, 0.0},
                          {0.0, 0.0, 1.0}});
  const auto cls = classify(chain);
  EXPECT_EQ(cls.component[0], cls.component[1]);
  EXPECT_NE(cls.component[0], cls.component[2]);
  EXPECT_FALSE(cls.recurrent[0]);
  EXPECT_FALSE(cls.recurrent[1]);
  EXPECT_TRUE(cls.recurrent[2]);
}

TEST(Classify, MultipleAbsorbingStates) {
  const Dtmc chain(Matrix{{0.2, 0.4, 0.4},
                          {0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0}});
  const auto cls = classify(chain);
  EXPECT_EQ(cls.num_components, 3u);
  EXPECT_FALSE(cls.recurrent[0]);
  EXPECT_TRUE(cls.recurrent[1]);
  EXPECT_TRUE(cls.recurrent[2]);
}

TEST(Classify, ClosedNonAbsorbingClassDetected) {
  // States 1,2 cycle forever: recurrent but not absorbing.
  const Dtmc chain(Matrix{{0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0},
                          {0.0, 1.0, 0.0}});
  const auto cls = classify(chain);
  EXPECT_FALSE(cls.recurrent[0]);
  EXPECT_TRUE(cls.recurrent[1]);
  EXPECT_TRUE(cls.recurrent[2]);
}

TEST(Classify, ComponentIndicesAreReverseTopological) {
  // Edge 0 -> 1: component[0] must be higher than component[1].
  const Dtmc chain(Matrix{{0.0, 1.0}, {0.0, 1.0}});
  const auto cls = classify(chain);
  EXPECT_GT(cls.component[0], cls.component[1]);
}

TEST(IsAbsorbingChain, TrueForDrmShape) {
  const Dtmc chain(Matrix{{0.2, 0.4, 0.4},
                          {0.0, 1.0, 0.0},
                          {0.0, 0.0, 1.0}});
  EXPECT_TRUE(is_absorbing_chain(chain));
}

TEST(IsAbsorbingChain, FalseWithoutAbsorbingStates) {
  const Dtmc chain(Matrix{{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_FALSE(is_absorbing_chain(chain));
}

TEST(IsAbsorbingChain, FalseWithClosedRecurrentCycle) {
  const Dtmc chain(Matrix{{0.5, 0.25, 0.25, 0.0},
                          {0.0, 1.0, 0.0, 0.0},
                          {0.0, 0.0, 0.0, 1.0},
                          {0.0, 0.0, 1.0, 0.0}});
  EXPECT_FALSE(is_absorbing_chain(chain));
}

TEST(Classify, LargeChainIterativeDfsDoesNotOverflow) {
  // Long path 0 -> 1 -> ... -> n-1 (absorbing); recursion-free Tarjan
  // must handle thousands of states.
  const std::size_t n = 5000;
  Matrix p(n, n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) p(i, i + 1) = 1.0;
  p(n - 1, n - 1) = 1.0;
  const Dtmc chain(std::move(p));
  const auto cls = classify(chain);
  EXPECT_EQ(cls.num_components, n);
  EXPECT_TRUE(cls.recurrent[n - 1]);
  EXPECT_FALSE(cls.recurrent[0]);
}

}  // namespace
