#include "prob/empirical.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::prob;

TEST(Empirical, EcdfStepsAtSamples) {
  const Empirical e({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(e.cdf(0.5), 0.0);
  EXPECT_EQ(e.cdf(1.0), 0.25);
  EXPECT_EQ(e.cdf(2.5), 0.5);
  EXPECT_EQ(e.cdf(4.0), 1.0);
  EXPECT_EQ(e.cdf(100.0), 1.0);
}

TEST(Empirical, MeanOfSamples) {
  const Empirical e({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
}

TEST(Empirical, UnsortedInputHandled) {
  const Empirical e({3.0, 1.0, 2.0});
  EXPECT_EQ(e.cdf(1.5), 1.0 / 3.0);
}

TEST(Empirical, DuplicateValues) {
  const Empirical e({2.0, 2.0, 2.0, 5.0});
  EXPECT_EQ(e.cdf(2.0), 0.75);
  EXPECT_EQ(e.cdf(1.9), 0.0);
}

TEST(Empirical, EmptyRejected) {
  EXPECT_THROW(Empirical({}), zc::ContractViolation);
}

TEST(Empirical, NegativeSamplesRejected) {
  EXPECT_THROW(Empirical({1.0, -0.5}), zc::ContractViolation);
}

TEST(Empirical, QuantilesNearestRank) {
  const Empirical e({10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(e.quantile(0.0), 10.0);
  EXPECT_EQ(e.quantile(0.25), 10.0);
  EXPECT_EQ(e.quantile(0.5), 20.0);
  EXPECT_EQ(e.quantile(1.0), 40.0);
}

TEST(Empirical, BootstrapSamplesComeFromData) {
  const Empirical e({1.0, 2.0, 3.0});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double s = e.sample(rng);
    EXPECT_TRUE(s == 1.0 || s == 2.0 || s == 3.0);
  }
}

TEST(Empirical, RecoversGeneratingDistribution) {
  // ECDF of many exponential draws approximates the true CDF.
  const Exponential truth(3.0);
  Rng rng(6);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = truth.sample(rng);
  const Empirical e(std::move(samples));
  for (double t : {0.1, 0.3, 0.6, 1.0})
    EXPECT_NEAR(e.cdf(t), truth.cdf(t), 0.01);
  EXPECT_NEAR(e.mean(), truth.mean(), 0.01);
}

TEST(EmpiricalDelay, LossFractionRecorded) {
  const EmpiricalDelay d({1.0, 2.0, 3.0}, 1);
  EXPECT_DOUBLE_EQ(d.loss_probability(), 0.25);
  EXPECT_EQ(d.arrived_count(), 3u);
}

TEST(EmpiricalDelay, CdfScaledByArrivalMass) {
  const EmpiricalDelay d({1.0, 3.0}, 2);  // loss 0.5
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.25);     // 0.5 * 0.5
  EXPECT_DOUBLE_EQ(d.survival(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(10.0), 0.5);
}

TEST(EmpiricalDelay, NoLosses) {
  const EmpiricalDelay d({1.0, 2.0}, 0);
  EXPECT_EQ(d.loss_probability(), 0.0);
  EXPECT_EQ(d.cdf(5.0), 1.0);
}

TEST(EmpiricalDelay, AllLost) {
  const EmpiricalDelay d({}, 10);
  EXPECT_EQ(d.loss_probability(), 1.0);
  EXPECT_EQ(d.cdf(100.0), 0.0);
  EXPECT_EQ(d.survival(100.0), 1.0);
  EXPECT_EQ(d.arrived_count(), 0u);
  Rng rng(9);
  EXPECT_FALSE(d.sample(rng).has_value());
}

TEST(EmpiricalDelay, AllLostMeanRejected) {
  const EmpiricalDelay d({}, 3);
  EXPECT_THROW((void)d.mean_given_arrival(), zc::ContractViolation);
}

TEST(EmpiricalDelay, NoObservationsAtAllRejected) {
  EXPECT_THROW(EmpiricalDelay({}, 0), zc::ContractViolation);
}

TEST(EmpiricalDelay, SampleLossRateMatches) {
  const EmpiricalDelay d({1.0, 2.0, 3.0}, 3);  // loss 0.5
  Rng rng(10);
  int lost = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (!d.sample(rng).has_value()) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.5, 0.01);
}

TEST(Measure, RecoversTruthWithinTolerance) {
  const auto truth = paper_reply_delay(0.1, 5.0, 0.5);
  Rng rng(11);
  const EmpiricalDelay measured = measure(*truth, 100000, rng);
  EXPECT_NEAR(measured.loss_probability(), 0.1, 0.005);
  EXPECT_NEAR(measured.mean_given_arrival(), truth->mean_given_arrival(),
              0.01);
  for (double t : {0.6, 0.8, 1.5})
    EXPECT_NEAR(measured.cdf(t), truth->cdf(t), 0.01);
}

TEST(Measure, ZeroTrialsRejected) {
  const auto truth = paper_reply_delay(0.1, 5.0, 0.5);
  Rng rng(12);
  EXPECT_THROW((void)measure(*truth, 0, rng), zc::ContractViolation);
}

}  // namespace
