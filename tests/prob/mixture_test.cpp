#include "prob/mixture.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::prob;

MixtureDelay two_component() {
  std::vector<MixtureDelay::Component> parts;
  parts.push_back({0.3, paper_reply_delay(0.05, 20.0, 0.1)});
  parts.push_back({0.7, paper_reply_delay(0.4, 2.0, 0.5)});
  return MixtureDelay(std::move(parts));
}

TEST(Mixture, CdfIsConvexCombination) {
  const auto a = paper_reply_delay(0.05, 20.0, 0.1);
  const auto b = paper_reply_delay(0.4, 2.0, 0.5);
  const auto mix = two_component();
  for (double t : {0.2, 0.6, 1.0, 3.0}) {
    EXPECT_NEAR(mix.cdf(t), 0.3 * a->cdf(t) + 0.7 * b->cdf(t), 1e-14);
    EXPECT_NEAR(mix.survival(t),
                0.3 * a->survival(t) + 0.7 * b->survival(t), 1e-14);
  }
}

TEST(Mixture, LossIsWeightedAverage) {
  EXPECT_NEAR(two_component().loss_probability(),
              0.3 * 0.05 + 0.7 * 0.4, 1e-14);
}

TEST(Mixture, SurvivalPlusCdfIsOne) {
  const auto mix = two_component();
  for (double t : {0.0, 0.5, 2.0})
    EXPECT_NEAR(mix.cdf(t) + mix.survival(t), 1.0, 1e-12);
}

TEST(Mixture, MeanGivenArrivalWeightsByArrivalMass) {
  // E[X | arrival]: heavier weight on the component more likely to reply.
  const auto mix = two_component();
  const double expected =
      (0.3 * 0.95 * (0.1 + 1.0 / 20.0) + 0.7 * 0.6 * (0.5 + 1.0 / 2.0)) /
      (0.3 * 0.95 + 0.7 * 0.6);
  EXPECT_NEAR(mix.mean_given_arrival(), expected, 1e-12);
}

TEST(Mixture, SingleComponentIsTransparent) {
  std::vector<MixtureDelay::Component> parts;
  parts.push_back({1.0, paper_reply_delay(0.1, 5.0, 0.2)});
  const MixtureDelay mix(std::move(parts));
  const auto base = paper_reply_delay(0.1, 5.0, 0.2);
  for (double t : {0.1, 0.4, 1.0}) EXPECT_EQ(mix.cdf(t), base->cdf(t));
}

TEST(Mixture, SampleStatisticsMatch) {
  const auto mix = two_component();
  Rng rng(404);
  const int n = 200000;
  int lost = 0, below = 0;
  const double probe_t = 0.7;
  for (int i = 0; i < n; ++i) {
    const auto s = mix.sample(rng);
    if (!s.has_value()) {
      ++lost;
    } else if (*s <= probe_t) {
      ++below;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, mix.loss_probability(), 0.005);
  EXPECT_NEAR(static_cast<double>(below) / n, mix.cdf(probe_t), 0.005);
}

TEST(Mixture, CloneBehavesIdentically) {
  const auto mix = two_component();
  const auto copy = mix.clone();
  for (double t : {0.3, 0.9}) EXPECT_EQ(copy->cdf(t), mix.cdf(t));
  EXPECT_EQ(copy->loss_probability(), mix.loss_probability());
}

TEST(Mixture, ValidationRejectsBadInputs) {
  EXPECT_THROW(MixtureDelay({}), zc::ContractViolation);
  std::vector<MixtureDelay::Component> bad_weight;
  bad_weight.push_back({0.5, paper_reply_delay(0.1, 5.0, 0.2)});
  EXPECT_THROW(MixtureDelay(std::move(bad_weight)),
               zc::ContractViolation);  // weights must sum to 1
  std::vector<MixtureDelay::Component> null_dist;
  null_dist.push_back({1.0, nullptr});
  EXPECT_THROW(MixtureDelay(std::move(null_dist)), zc::ContractViolation);
  std::vector<MixtureDelay::Component> negative;
  negative.push_back({-0.5, paper_reply_delay(0.1, 5.0, 0.2)});
  negative.push_back({1.5, paper_reply_delay(0.1, 5.0, 0.2)});
  EXPECT_THROW(MixtureDelay(std::move(negative)), zc::ContractViolation);
}

}  // namespace
