#include "prob/delay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::prob;

TEST(DefectiveDelay, PaperFormulaForCdf) {
  // F_X(t) = l (1 - e^{-lambda (t-d)}) for t >= d (Sec. 4.3).
  const double loss = 1e-3, lambda = 10.0, d = 1.0;
  const auto fx = paper_reply_delay(loss, lambda, d);
  const double l = 1.0 - loss;
  for (double t : {1.0, 1.1, 1.5, 2.0, 5.0}) {
    const double expected = l * (1.0 - std::exp(-lambda * (t - d)));
    EXPECT_NEAR(fx->cdf(t), expected, 1e-12) << "t=" << t;
  }
}

TEST(DefectiveDelay, ZeroBeforeRoundTrip) {
  const auto fx = paper_reply_delay(0.01, 10.0, 1.0);
  EXPECT_EQ(fx->cdf(0.0), 0.0);
  EXPECT_EQ(fx->cdf(0.999), 0.0);
  EXPECT_EQ(fx->survival(0.5), 1.0);
}

TEST(DefectiveDelay, CdfSaturatesAtArrivalMass) {
  const double loss = 0.2;
  const auto fx = paper_reply_delay(loss, 10.0, 0.1);
  EXPECT_NEAR(fx->cdf(1e6), 1.0 - loss, 1e-12);
  EXPECT_NEAR(fx->survival(1e6), loss, 1e-12);
}

TEST(DefectiveDelay, SurvivalExactForTinyLoss) {
  // The paper's l = 1-1e-15: survival must resolve the 1e-15 floor.
  const double loss = 1e-15;
  const auto fx = paper_reply_delay(loss, 10.0, 1.0);
  // Far in the tail: survival == loss exactly, not 0 and not 1.1e-15.
  EXPECT_NEAR(fx->survival(1000.0) / loss, 1.0, 1e-9);
}

TEST(DefectiveDelay, SurvivalAvoidsCancellation) {
  const double loss = 1e-15;
  const auto fx = paper_reply_delay(loss, 10.0, 1.0);
  // At t = d + 10: proper survival e^{-100} ~ 3.7e-44 << loss.
  const double s = fx->survival(11.0);
  EXPECT_NEAR(s, loss + (1 - loss) * std::exp(-100.0), 1e-30);
  // 1 - cdf would return exactly 0 or a value with no correct digits;
  // survival keeps full relative precision.
  EXPECT_GT(s, 0.0);
}

TEST(DefectiveDelay, LossProbabilityAccessors) {
  const auto fx = paper_reply_delay(0.25, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(fx->loss_probability(), 0.25);
  EXPECT_DOUBLE_EQ(fx->arrival_mass(), 0.75);
}

TEST(DefectiveDelay, MeanGivenArrival) {
  // d + 1/lambda (Sec. 4.3: "the mean time a reply is received").
  const auto fx = paper_reply_delay(0.1, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(fx->mean_given_arrival(), 1.1);
}

TEST(DefectiveDelay, SampleLossFractionMatches) {
  const double loss = 0.3;
  const auto fx = paper_reply_delay(loss, 5.0, 0.2);
  Rng rng(77);
  int lost = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (!fx->sample(rng).has_value()) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, loss, 0.01);
}

TEST(DefectiveDelay, SamplesRespectShift) {
  const auto fx = paper_reply_delay(0.0, 10.0, 1.5);
  Rng rng(88);
  for (int i = 0; i < 1000; ++i) {
    const auto s = fx->sample(rng);
    ASSERT_TRUE(s.has_value());
    EXPECT_GE(*s, 1.5);
  }
}

TEST(DefectiveDelay, SampleMeanMatchesConditionalMean) {
  const auto fx = paper_reply_delay(0.2, 4.0, 0.5);
  Rng rng(99);
  double sum = 0.0;
  int arrived = 0;
  for (int i = 0; i < 200000; ++i) {
    if (const auto s = fx->sample(rng)) {
      sum += *s;
      ++arrived;
    }
  }
  EXPECT_NEAR(sum / arrived, fx->mean_given_arrival(),
              0.01 * fx->mean_given_arrival());
}

TEST(DefectiveDelay, LogSurvivalConsistent) {
  const auto fx = paper_reply_delay(1e-12, 10.0, 1.0);
  for (double t : {0.5, 1.0, 1.5, 3.0, 10.0}) {
    EXPECT_NEAR(fx->log_survival(t), std::log(fx->survival(t)), 1e-12);
  }
}

TEST(DefectiveDelay, ZeroLossIsProper) {
  const auto fx = paper_reply_delay(0.0, 2.0, 0.0);
  EXPECT_EQ(fx->loss_probability(), 0.0);
  EXPECT_NEAR(fx->cdf(100.0), 1.0, 1e-12);
}

TEST(DefectiveDelay, FullLossRejected) {
  EXPECT_THROW(
      DefectiveDelay(std::make_unique<Exponential>(1.0), 1.0, 0.0),
      zc::ContractViolation);
}

TEST(DefectiveDelay, NegativeShiftRejected) {
  EXPECT_THROW(
      DefectiveDelay(std::make_unique<Exponential>(1.0), 0.0, -1.0),
      zc::ContractViolation);
}

TEST(DefectiveDelay, CopySemantics) {
  const DefectiveDelay original(std::make_unique<Exponential>(3.0), 0.1, 0.5);
  const DefectiveDelay copy(original);
  EXPECT_EQ(copy.cdf(1.0), original.cdf(1.0));
  EXPECT_EQ(copy.loss_probability(), original.loss_probability());
  EXPECT_EQ(copy.shift(), original.shift());
}

TEST(DefectiveDelay, CloneIsDeepAndEquivalent) {
  const auto fx = paper_reply_delay(0.05, 2.0, 0.25);
  const auto copy = fx->clone();
  for (double t : {0.1, 0.3, 1.0, 4.0}) EXPECT_EQ(copy->cdf(t), fx->cdf(t));
  EXPECT_EQ(copy->name(), fx->name());
}

TEST(DefectiveDelay, WrapsNonExponentialBases) {
  const DefectiveDelay fx(std::make_unique<Uniform>(0.0, 1.0), 0.5, 1.0);
  EXPECT_NEAR(fx.cdf(1.5), 0.5 * 0.5, 1e-12);
  EXPECT_NEAR(fx.survival(2.0), 0.5, 1e-12);
}

}  // namespace
