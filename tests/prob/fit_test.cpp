#include "prob/fit.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

using namespace zc::prob;

EmpiricalDelay measure_paper_fx(double loss, double lambda, double d,
                                std::size_t trials, std::uint64_t seed) {
  const auto truth = paper_reply_delay(loss, lambda, d);
  Rng rng(seed);
  return measure(*truth, trials, rng);
}

TEST(Fit, RecoversGeneratingParameters) {
  const double loss = 0.05, lambda = 8.0, d = 0.5;
  const EmpiricalDelay data = measure_paper_fx(loss, lambda, d, 200000, 1);
  const ExponentialFit fit = fit_defective_exponential(data);
  EXPECT_NEAR(fit.loss, loss, 0.005);
  EXPECT_NEAR(fit.shift, d, 0.01);
  EXPECT_NEAR(fit.lambda / lambda, 1.0, 0.1);
}

TEST(Fit, FittedDistributionMatchesTruthCdf) {
  const double loss = 0.1, lambda = 20.0, d = 0.05;
  const EmpiricalDelay data = measure_paper_fx(loss, lambda, d, 200000, 2);
  const auto fitted = fit_defective_exponential(data).to_distribution();
  const auto truth = paper_reply_delay(loss, lambda, d);
  for (double t : {0.06, 0.1, 0.2, 0.5}) {
    EXPECT_NEAR(fitted->cdf(t), truth->cdf(t), 0.02) << "t=" << t;
  }
}

TEST(Fit, FittedDistributionIsSmoothInR) {
  // The whole point of fitting: unlike the ECDF, the fitted survival is
  // strictly decreasing beyond the shift (usable by derivative code).
  const EmpiricalDelay data = measure_paper_fx(0.02, 10.0, 0.1, 5000, 3);
  const auto fitted = fit_defective_exponential(data).to_distribution();
  double prev = fitted->survival(0.11);
  for (double t = 0.13; t < 1.0; t += 0.02) {
    const double s = fitted->survival(t);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(Fit, ZeroLossData) {
  const EmpiricalDelay data = measure_paper_fx(0.0, 5.0, 0.2, 50000, 4);
  const ExponentialFit fit = fit_defective_exponential(data);
  EXPECT_EQ(fit.loss, 0.0);
  EXPECT_NO_THROW((void)fit.to_distribution());
}

TEST(Fit, DegenerateSingleValueData) {
  // All arrivals at the same instant: lambda guards against division by
  // zero and stays positive.
  const EmpiricalDelay data({0.25, 0.25, 0.25}, 1);
  const ExponentialFit fit = fit_defective_exponential(data);
  EXPECT_GT(fit.lambda, 0.0);
  EXPECT_DOUBLE_EQ(fit.shift, 0.25);
}

TEST(Fit, AllLostDataRejected) {
  const EmpiricalDelay data({}, 10);
  EXPECT_THROW((void)fit_defective_exponential(data),
               zc::ContractViolation);
}

TEST(Fit, InvalidQuantileRejected) {
  const EmpiricalDelay data({0.1, 0.2}, 0);
  EXPECT_THROW((void)fit_defective_exponential(data, 1.0),
               zc::ContractViolation);
  EXPECT_THROW((void)fit_defective_exponential(data, -0.1),
               zc::ContractViolation);
}

TEST(Fit, ShiftQuantileControlsRobustness) {
  // A contaminated sample with one early outlier: a higher shift
  // quantile ignores it.
  std::vector<double> samples(1000, 0.0);
  Rng rng(5);
  const auto truth = paper_reply_delay(0.0, 10.0, 1.0);
  for (auto& s : samples) s = *truth->sample(rng);
  samples[0] = 0.001;  // bogus measurement far below the true floor
  const EmpiricalDelay data(std::move(samples), 0);
  const ExponentialFit strict = fit_defective_exponential(data, 0.0);
  const ExponentialFit robust = fit_defective_exponential(data, 0.01);
  EXPECT_LT(strict.shift, 0.01);
  EXPECT_GT(robust.shift, 0.9);
}

}  // namespace
