#include "prob/reply_path.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::prob;

Leg exp_leg(double loss, double rate) {
  return Leg{loss, std::make_unique<Exponential>(rate)};
}

TEST(ReplyPath, EffectiveLossComposesLegs) {
  const ReplyPath path(exp_leg(0.1, 1.0), exp_leg(0.2, 2.0),
                       exp_leg(0.3, 3.0), 0.0);
  EXPECT_NEAR(path.effective_loss(), 1.0 - 0.9 * 0.8 * 0.7, 1e-12);
}

TEST(ReplyPath, LosslessLegsGiveZeroLoss) {
  const ReplyPath path(exp_leg(0.0, 1.0), exp_leg(0.0, 2.0),
                       exp_leg(0.0, 3.0), 0.5);
  EXPECT_EQ(path.effective_loss(), 0.0);
}

TEST(ReplyPath, SampleIncludesFloor) {
  const ReplyPath path(exp_leg(0.0, 10.0), exp_leg(0.0, 20.0),
                       exp_leg(0.0, 30.0), 2.0);
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    const auto s = path.sample(rng);
    ASSERT_TRUE(s.has_value());
    EXPECT_GE(*s, 2.0);
  }
}

TEST(ReplyPath, SampleLossRateMatchesEffectiveLoss) {
  const ReplyPath path(exp_leg(0.1, 1.0), exp_leg(0.05, 2.0),
                       exp_leg(0.15, 3.0), 0.0);
  Rng rng(22);
  int lost = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (!path.sample(rng).has_value()) ++lost;
  EXPECT_NEAR(static_cast<double>(lost) / n, path.effective_loss(), 0.005);
}

TEST(ReplyPath, AnalyticAvailableForDistinctExponentialLegs) {
  const ReplyPath path(exp_leg(0.01, 5.0), exp_leg(0.02, 7.0),
                       exp_leg(0.03, 11.0), 0.1);
  const auto analytic = path.to_analytic();
  ASSERT_NE(analytic, nullptr);
  EXPECT_NEAR(analytic->loss_probability(), path.effective_loss(), 1e-12);
  EXPECT_NEAR(analytic->mean_given_arrival(),
              0.1 + 1.0 / 5.0 + 1.0 / 7.0 + 1.0 / 11.0, 1e-12);
}

TEST(ReplyPath, AnalyticUnavailableForEqualRates) {
  const ReplyPath path(exp_leg(0.0, 5.0), exp_leg(0.0, 5.0),
                       exp_leg(0.0, 11.0), 0.0);
  EXPECT_EQ(path.to_analytic(), nullptr);
}

TEST(ReplyPath, AnalyticUnavailableForNonExponentialLeg) {
  const ReplyPath path(
      Leg{0.0, std::make_unique<Uniform>(0.0, 1.0)}, exp_leg(0.0, 5.0),
      exp_leg(0.0, 11.0), 0.0);
  EXPECT_EQ(path.to_analytic(), nullptr);
}

TEST(ReplyPath, EmpiricalAgreesWithAnalytic) {
  const ReplyPath path(exp_leg(0.05, 4.0), exp_leg(0.05, 9.0),
                       exp_leg(0.05, 25.0), 0.2);
  const auto analytic = path.to_analytic();
  ASSERT_NE(analytic, nullptr);
  Rng rng(23);
  const EmpiricalDelay empirical = path.to_empirical(100000, rng);
  EXPECT_NEAR(empirical.loss_probability(), analytic->loss_probability(),
              0.005);
  for (double t : {0.3, 0.5, 0.8, 1.5})
    EXPECT_NEAR(empirical.cdf(t), analytic->cdf(t), 0.01) << "t=" << t;
}

TEST(ReplyPath, InvalidLegLossRejected) {
  EXPECT_THROW(ReplyPath(exp_leg(1.0, 1.0), exp_leg(0.0, 2.0),
                         exp_leg(0.0, 3.0), 0.0),
               zc::ContractViolation);
}

TEST(ReplyPath, MissingLegDelayRejected) {
  EXPECT_THROW(ReplyPath(Leg{0.0, nullptr}, exp_leg(0.0, 2.0),
                         exp_leg(0.0, 3.0), 0.0),
               zc::ContractViolation);
}

TEST(ReplyPath, NegativeFloorRejected) {
  EXPECT_THROW(ReplyPath(exp_leg(0.0, 1.0), exp_leg(0.0, 2.0),
                         exp_leg(0.0, 3.0), -0.1),
               zc::ContractViolation);
}

TEST(ReplyPath, ZeroTrialsEmpiricalRejected) {
  const ReplyPath path(exp_leg(0.0, 1.0), exp_leg(0.0, 2.0),
                       exp_leg(0.0, 3.0), 0.0);
  Rng rng(24);
  EXPECT_THROW((void)path.to_empirical(0, rng), zc::ContractViolation);
}

}  // namespace
