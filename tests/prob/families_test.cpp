#include "prob/families.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "common/contract.hpp"
#include "numerics/quadrature.hpp"
#include "prob/rng.hpp"

namespace {

using namespace zc::prob;

// ------------------------------------------------------------ family sweeps

using Factory = std::function<std::unique_ptr<ProperDistribution>()>;

struct FamilyCase {
  const char* label;
  Factory make;
  double horizon;  ///< integration horizon covering essentially all mass
};

class ProperFamilies : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(ProperFamilies, CdfIsMonotoneFromZero) {
  const auto dist = GetParam().make();
  EXPECT_EQ(dist->cdf(-1.0), 0.0);
  double prev = 0.0;
  for (double t = 0.0; t <= GetParam().horizon; t += GetParam().horizon / 64) {
    const double c = dist->cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    prev = c;
  }
}

TEST_P(ProperFamilies, SurvivalComplementsCdf) {
  const auto dist = GetParam().make();
  for (double t : {0.0, 0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(dist->cdf(t) + dist->survival(t), 1.0, 1e-9)
        << GetParam().label << " at t=" << t;
  }
}

TEST_P(ProperFamilies, CdfApproachesOneAtHorizon) {
  const auto dist = GetParam().make();
  EXPECT_GT(dist->cdf(GetParam().horizon), 0.999);
}

TEST_P(ProperFamilies, MeanMatchesSurvivalIntegral) {
  // E[X] = int_0^inf S(t) dt.
  const auto dist = GetParam().make();
  const auto integral = zc::numerics::integrate(
      [&](double t) { return dist->survival(t); }, 0.0, GetParam().horizon,
      1e-10);
  EXPECT_NEAR(integral.value, dist->mean(), 5e-3 * dist->mean() + 1e-9)
      << GetParam().label;
}

TEST_P(ProperFamilies, SampleMeanMatchesAnalyticMean) {
  const auto dist = GetParam().make();
  Rng rng(1234);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += dist->sample(rng);
  EXPECT_NEAR(sum / n, dist->mean(), 0.02 * dist->mean() + 1e-6)
      << GetParam().label;
}

TEST_P(ProperFamilies, SampleDistributionMatchesCdf) {
  // Coarse Kolmogorov-Smirnov-style check at fixed quantile probes.
  const auto dist = GetParam().make();
  Rng rng(4321);
  const int n = 50000;
  std::vector<double> samples(n);
  for (auto& s : samples) s = dist->sample(rng);
  for (double t : {0.25 * dist->mean(), dist->mean(), 2.0 * dist->mean()}) {
    const auto below = static_cast<double>(
        std::count_if(samples.begin(), samples.end(),
                      [t](double s) { return s <= t; }));
    EXPECT_NEAR(below / n, dist->cdf(t), 0.015)
        << GetParam().label << " at t=" << t;
  }
}

TEST_P(ProperFamilies, SamplesAreNonNegative) {
  const auto dist = GetParam().make();
  Rng rng(999);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(dist->sample(rng), 0.0);
}

TEST_P(ProperFamilies, CloneBehavesIdentically) {
  const auto dist = GetParam().make();
  const auto copy = dist->clone();
  for (double t : {0.1, 0.7, 1.5, 3.0}) {
    EXPECT_EQ(dist->cdf(t), copy->cdf(t));
    EXPECT_EQ(dist->survival(t), copy->survival(t));
  }
  EXPECT_EQ(dist->mean(), copy->mean());
  EXPECT_EQ(dist->name(), copy->name());
}

INSTANTIATE_TEST_SUITE_P(
    Families, ProperFamilies,
    ::testing::Values(
        FamilyCase{"exponential",
                   [] { return std::make_unique<Exponential>(2.0); }, 12.0},
        FamilyCase{"weibull_heavy",
                   [] { return std::make_unique<Weibull>(0.8, 1.0); }, 40.0},
        FamilyCase{"weibull_light",
                   [] { return std::make_unique<Weibull>(2.5, 0.5); }, 4.0},
        FamilyCase{"uniform",
                   [] { return std::make_unique<Uniform>(0.2, 1.2); }, 1.3},
        FamilyCase{"erlang2",
                   [] { return std::make_unique<Erlang>(2, 3.0); }, 10.0},
        FamilyCase{"erlang5",
                   [] { return std::make_unique<Erlang>(5, 10.0); }, 6.0},
        FamilyCase{"lognormal",
                   [] { return std::make_unique<LogNormal>(-1.0, 0.5); },
                   8.0},
        FamilyCase{"hypoexp",
                   [] {
                     return std::make_unique<Hypoexponential>(
                         std::vector<double>{1.0, 3.0, 10.0});
                   },
                   30.0}),
    [](const ::testing::TestParamInfo<FamilyCase>& param_info) {
      return param_info.param.label;
    });

// ------------------------------------------------------- family specifics

TEST(Exponential, KnownCdfValues) {
  const Exponential e(1.0);
  EXPECT_NEAR(e.cdf(1.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(e.survival(2.0), std::exp(-2.0), 1e-15);
}

TEST(Exponential, SurvivalAccurateInDeepTail) {
  const Exponential e(10.0);
  // survival(20) = e^{-200}: representable and exact; 1-cdf would be 0.
  EXPECT_NEAR(e.survival(20.0) / std::exp(-200.0), 1.0, 1e-12);
}

TEST(Exponential, InvalidRateRejected) {
  EXPECT_THROW(Exponential(0.0), zc::ContractViolation);
  EXPECT_THROW(Exponential(-1.0), zc::ContractViolation);
}

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w(1.0, 0.5);
  const Exponential e(2.0);
  for (double t : {0.1, 0.5, 1.0, 2.0})
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-12);
}

TEST(Weibull, MeanUsesGammaFunction) {
  const Weibull w(2.0, 1.0);
  EXPECT_NEAR(w.mean(), std::sqrt(3.141592653589793) / 2.0, 1e-12);
}

TEST(Uniform, LinearCdfBetweenBounds) {
  const Uniform u(1.0, 3.0);
  EXPECT_EQ(u.cdf(0.5), 0.0);
  EXPECT_NEAR(u.cdf(2.0), 0.5, 1e-15);
  EXPECT_EQ(u.cdf(4.0), 1.0);
}

TEST(Uniform, InvalidBoundsRejected) {
  EXPECT_THROW(Uniform(2.0, 2.0), zc::ContractViolation);
  EXPECT_THROW(Uniform(-1.0, 2.0), zc::ContractViolation);
}

TEST(Deterministic, StepCdf) {
  const Deterministic d(1.5);
  EXPECT_EQ(d.cdf(1.49), 0.0);
  EXPECT_EQ(d.cdf(1.5), 1.0);
  EXPECT_EQ(d.mean(), 1.5);
}

TEST(Deterministic, SampleIsConstant) {
  const Deterministic d(0.7);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 0.7);
}

TEST(Erlang, ShapeOneIsExponential) {
  const Erlang k1(1, 5.0);
  const Exponential e(5.0);
  for (double t : {0.05, 0.2, 1.0}) EXPECT_NEAR(k1.cdf(t), e.cdf(t), 1e-12);
}

TEST(Erlang, MeanIsShapeOverRate) {
  EXPECT_DOUBLE_EQ(Erlang(4, 2.0).mean(), 2.0);
}

TEST(LogNormal, KnownMedianAndMean) {
  const LogNormal ln(0.0, 1.0);
  EXPECT_NEAR(ln.cdf(1.0), 0.5, 1e-12);          // median = e^mu
  EXPECT_NEAR(ln.mean(), std::exp(0.5), 1e-12);  // e^{mu + sigma^2/2}
}

TEST(LogNormal, TailSurvivalAccurate) {
  const LogNormal ln(0.0, 1.0);
  // S(e^5) = Phi(-5) ~ 2.8665e-7: erfc keeps full precision.
  EXPECT_NEAR(ln.survival(std::exp(5.0)) / 2.8665157187919391e-7, 1.0,
              1e-9);
}

TEST(LogNormal, InvalidSigmaRejected) {
  EXPECT_THROW(LogNormal(0.0, 0.0), zc::ContractViolation);
  EXPECT_THROW(LogNormal(0.0, -1.0), zc::ContractViolation);
}

TEST(Hypoexponential, MatchesErlangLimitApproximately) {
  // Rates close together approximate an Erlang.
  const Hypoexponential h({10.0, 10.0001, 9.9999});
  const Erlang e(3, 10.0);
  for (double t : {0.1, 0.3, 0.6})
    EXPECT_NEAR(h.cdf(t), e.cdf(t), 1e-4);
}

TEST(Hypoexponential, SingleRateIsExponential) {
  const Hypoexponential h({4.0});
  const Exponential e(4.0);
  for (double t : {0.1, 0.5, 2.0}) EXPECT_NEAR(h.cdf(t), e.cdf(t), 1e-13);
}

TEST(Hypoexponential, DuplicateRatesRejected) {
  EXPECT_THROW(Hypoexponential({1.0, 1.0}), zc::ContractViolation);
}

TEST(Hypoexponential, MeanIsSumOfStageMeans) {
  const Hypoexponential h({1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(h.mean(), 1.0 + 0.5 + 0.25);
}

TEST(Hypoexponential, SurvivalClampedToUnitInterval) {
  const Hypoexponential h({1.0, 100.0});
  for (double t = 0.0; t < 50.0; t += 0.5) {
    const double s = h.survival(t);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

}  // namespace
