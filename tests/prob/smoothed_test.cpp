#include "prob/smoothed.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::prob;

EmpiricalDelay measure_truth(double loss, double lambda, double d,
                             std::size_t trials, std::uint64_t seed) {
  const auto truth = paper_reply_delay(loss, lambda, d);
  Rng rng(seed);
  return measure(*truth, trials, rng);
}

TEST(SmoothedEmpirical, CdfTracksTruth) {
  const double loss = 0.1, lambda = 8.0, d = 0.3;
  const auto data = measure_truth(loss, lambda, d, 100000, 1);
  const SmoothedEmpiricalDelay smooth(data);
  const auto truth = paper_reply_delay(loss, lambda, d);
  for (double t : {0.35, 0.5, 0.8, 1.2}) {
    EXPECT_NEAR(smooth.cdf(t), truth->cdf(t), 0.01) << "t=" << t;
  }
}

TEST(SmoothedEmpirical, PreservesLossAndMean) {
  const auto data = measure_truth(0.2, 5.0, 0.1, 50000, 2);
  const SmoothedEmpiricalDelay smooth(data);
  EXPECT_DOUBLE_EQ(smooth.loss_probability(), data.loss_probability());
  EXPECT_DOUBLE_EQ(smooth.mean_given_arrival(), data.mean_given_arrival());
}

TEST(SmoothedEmpirical, CdfIsSmoothlyIncreasingOnSupport) {
  const auto data = measure_truth(0.05, 10.0, 0.2, 20000, 3);
  const SmoothedEmpiricalDelay smooth(data);
  // Unlike the raw ECDF, consecutive evaluations differ gradually.
  double prev = smooth.cdf(0.21);
  double max_jump = 0.0;
  for (double t = 0.212; t < 0.8; t += 0.002) {
    const double c = smooth.cdf(t);
    EXPECT_GE(c, prev - 1e-12);
    max_jump = std::max(max_jump, c - prev);
    prev = c;
  }
  // 20k samples would give ECDF steps of 5e-5 but clustered; the smooth
  // version spreads increments: no step anywhere near a raw tie cluster.
  EXPECT_LT(max_jump, 0.05);
}

TEST(SmoothedEmpirical, SurvivalFloorsAtLoss) {
  const auto data = measure_truth(0.3, 10.0, 0.1, 20000, 4);
  const SmoothedEmpiricalDelay smooth(data);
  EXPECT_NEAR(smooth.survival(1e6), data.loss_probability(), 1e-12);
  EXPECT_EQ(smooth.cdf(0.0), 0.0);
  EXPECT_EQ(smooth.survival(0.0), 1.0);
}

TEST(SmoothedEmpirical, SampleMatchesCdf) {
  const auto data = measure_truth(0.15, 6.0, 0.2, 50000, 5);
  const SmoothedEmpiricalDelay smooth(data);
  Rng rng(6);
  const int n = 50000;
  int lost = 0, below = 0;
  const double probe_t = 0.45;
  for (int i = 0; i < n; ++i) {
    const auto s = smooth.sample(rng);
    if (!s.has_value()) {
      ++lost;
    } else if (*s <= probe_t) {
      ++below;
    }
  }
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.15, 0.01);
  EXPECT_NEAR(static_cast<double>(below) / n, smooth.cdf(probe_t), 0.01);
}

TEST(SmoothedEmpirical, KnotCapRespected) {
  const auto data = measure_truth(0.1, 5.0, 0.1, 50000, 7);
  const SmoothedEmpiricalDelay smooth(data, 32);
  EXPECT_LE(smooth.knots(), 32u);
  EXPECT_GE(smooth.knots(), 2u);
}

TEST(SmoothedEmpirical, CloneIsEquivalent) {
  const auto data = measure_truth(0.1, 5.0, 0.1, 5000, 8);
  const SmoothedEmpiricalDelay smooth(data);
  const auto copy = smooth.clone();
  for (double t : {0.2, 0.4, 1.0})
    EXPECT_EQ(copy->cdf(t), smooth.cdf(t));
  EXPECT_EQ(copy->loss_probability(), smooth.loss_probability());
}

TEST(SmoothedEmpirical, RequiresTwoDistinctArrivals) {
  EXPECT_THROW(SmoothedEmpiricalDelay(EmpiricalDelay({0.5, 0.5}, 1)),
               zc::ContractViolation);
  EXPECT_NO_THROW(SmoothedEmpiricalDelay(EmpiricalDelay({0.5, 0.6}, 1)));
}

TEST(SmoothedEmpirical, TinyKnotBudgetRejected) {
  const auto data = measure_truth(0.1, 5.0, 0.1, 1000, 9);
  EXPECT_THROW(SmoothedEmpiricalDelay(data, 1), zc::ContractViolation);
}

}  // namespace
