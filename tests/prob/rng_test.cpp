#include "prob/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace {

using zc::prob::Rng;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() != b.next_u64()) ++differing;
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 2.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(Rng, BernoulliRateMatchesP) {
  Rng rng(17);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(p)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01 / lambda);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(71);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, NormalQuantilesRoughlyGaussian) {
  Rng rng(73);
  int within_1sigma = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (std::fabs(rng.normal()) < 1.0) ++within_1sigma;
  EXPECT_NEAR(static_cast<double>(within_1sigma) / n, 0.6827, 0.01);
}

TEST(Rng, NormalScalingAppliesMeanAndStddev) {
  Rng rng(79);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, UniformBelowStaysBelowBound) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_below(17), 17u);
}

TEST(Rng, UniformBelowCoversAllResidues) {
  Rng rng(37);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowZeroBoundReturnsZero) {
  Rng rng(41);
  EXPECT_EQ(rng.uniform_below(0), 0u);
}

TEST(Rng, UniformBelowIsApproximatelyUnbiased) {
  Rng rng(43);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_below(bound)];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.split();
  // Child and parent should not emit identical sequences.
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(53), b(53);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, StandardLibraryInterop) {
  // Usable as a UniformRandomBitGenerator.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(59);
  const std::uint64_t v = rng();
  (void)v;
}

TEST(Rng, ChiSquareUniformityOfBytes) {
  // Coarse uniformity check on the top byte of the raw output.
  Rng rng(61);
  std::vector<int> counts(256, 0);
  const int n = 256000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_u64() >> 56];
  double chi2 = 0.0;
  const double expected = n / 256.0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, sd ~ 22.6. Accept within ~5 sigma.
  EXPECT_GT(chi2, 255.0 - 5 * 22.6);
  EXPECT_LT(chi2, 255.0 + 5 * 22.6);
}

}  // namespace
