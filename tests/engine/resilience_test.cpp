/// Campaign resilience: per-spec error containment (quarantine),
/// cooperative cancellation, resume-after-cancel, and the degraded-run
/// fields of the report schema.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "core/optimize.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/spec.hpp"
#include "exec/cancel.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "prob/delay.hpp"

#ifdef ZC_OBS_DISABLED
#define ZC_SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metric mutators compiled out (-DZC_OBS_METRICS=OFF)"
#else
#define ZC_SKIP_WITHOUT_METRICS() (void)0
#endif

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignResult;
using engine::CampaignRunner;
using engine::Estimator;
using engine::ExperimentSpec;
using engine::SpecBuilder;

core::ScenarioParams scenario() {
  return core::scenarios::figure2().to_params();
}

std::string campaign_bytes(const CampaignResult& campaign) {
  return campaign.to_json().dump() +
         obs::metrics_to_json(campaign.metrics).dump();
}

/// An optimize spec that passes validation but throws at execution time:
/// `core::optimal_r` rejects a non-positive r_min with a
/// ContractViolation, which is exactly the in-flight failure the
/// quarantine machinery exists for.
ExperimentSpec poisoned_spec(const core::ScenarioParams& s,
                             const std::string& name) {
  core::ROptOptions bad;
  bad.r_min = -1.0;
  return SpecBuilder(name, s).optimize(4).r_options(bad).build();
}

const obs::JsonValue& report_data(const obs::JsonValue& report) {
  const obs::JsonValue* data = report.find("data");
  EXPECT_NE(data, nullptr);
  return *data;
}

TEST(Containment, ThrowingSpecIsQuarantinedOthersComplete) {
  const core::ScenarioParams s = scenario();
  const std::vector<ExperimentSpec> specs{
      SpecBuilder("good-grid", s).protocol_grid({1, 2}, {0.5, 2.0}).build(),
      poisoned_spec(s, "poison"),
      SpecBuilder("good-opt", s).optimize(4).build(),
  };

  CampaignRunner runner;
  const CampaignResult campaign = runner.run(specs);

  // The failure is recorded with its facts...
  ASSERT_EQ(campaign.failures.size(), 1u);
  const engine::SpecFailure& failure = campaign.failures[0];
  EXPECT_EQ(failure.spec_index, 1u);
  EXPECT_EQ(failure.chunk, 1u);
  EXPECT_EQ(failure.spec_name, "poison");
  EXPECT_FALSE(failure.error.empty());
  EXPECT_EQ(failure.seed, 0u);  // not a monte_carlo spec

  // ...the failed slot is a stub that keeps the spec <-> slot mapping...
  ASSERT_EQ(campaign.experiments.size(), 3u);
  EXPECT_EQ(campaign.experiments[1].name, "poison");
  EXPECT_TRUE(campaign.experiments[1].cells.empty());
  EXPECT_FALSE(campaign.experiments[1].optimum.has_value());

  // ...a quarantined spec is an outcome, not missing work...
  EXPECT_TRUE(campaign.complete);
  EXPECT_TRUE(campaign.cancelled.empty());

  // ...and the healthy specs are bitwise what they would have been alone.
  CampaignRunner clean;
  EXPECT_EQ(campaign.experiments[0].to_json().dump(),
            clean.run_one(specs[0]).to_json().dump());
  EXPECT_EQ(campaign.experiments[2].to_json().dump(),
            clean.run_one(specs[2]).to_json().dump());
}

TEST(Containment, FailureMetricsAndReportFields) {
  ZC_SKIP_WITHOUT_METRICS();
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const CampaignResult campaign = runner.run({
      poisoned_spec(s, "poison-a"),
      SpecBuilder("healthy", s).protocol({2, 1.0}).build(),
      poisoned_spec(s, "poison-b"),
  });
  EXPECT_EQ(campaign.metrics.counter_value("engine.failures.total"),
            std::optional<std::uint64_t>(2));

  const auto report =
      obs::parse_json(campaign.report("test", "containment").to_json().dump());
  ASSERT_TRUE(report.has_value());
  const obs::JsonValue& data = report_data(*report);
  const obs::JsonValue* failures = data.find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_EQ(failures->size(), 2u);
  EXPECT_EQ(failures->element(0)->find("spec_name")->as_string(), "poison-a");
  EXPECT_EQ(failures->element(1)->find("spec_name")->as_string(), "poison-b");
  ASSERT_NE(data.find("complete"), nullptr);
  EXPECT_TRUE(data.find("complete")->as_bool());
  // No cancellation happened, so the cancelled list is absent entirely.
  EXPECT_EQ(data.find("cancelled"), nullptr);
}

TEST(Containment, FailuresAreDeterministicAcrossThreadCounts) {
  const core::ScenarioParams s = scenario();
  std::vector<ExperimentSpec> specs;
  for (unsigned i = 0; i < 12; ++i) {
    specs.push_back(i % 3 == 1
                        ? poisoned_spec(s, "poison-" + std::to_string(i))
                        : SpecBuilder("grid-" + std::to_string(i), s)
                              .protocol_grid({1, 2, 4}, {0.5, 1.0, 2.0})
                              .build());
  }
  const auto run_at = [&](unsigned threads) {
    CampaignRunner runner(CampaignOptions{threads});
    return campaign_bytes(runner.run(specs));
  };
  EXPECT_EQ(run_at(1), run_at(8));
}

TEST(Containment, CsvMarksFailedSpecsInPlace) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const CampaignResult campaign = runner.run({
      SpecBuilder("grid", s).protocol({2, 1.0}).build(),
      poisoned_spec(s, "poison"),
  });
  const std::string path = ::testing::TempDir() + "zc_resilience_csv.csv";
  ASSERT_TRUE(engine::write_campaign_csv(campaign, path));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::remove(path.c_str());

  // Header + the grid cell + the failure row, in spec order.
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].substr(0, 5), "grid,");
  EXPECT_EQ(lines[2].substr(0, 15), "poison,failed,a");
}

TEST(Cancellation, PreStoppedTokenCancelsEverySpec) {
  const core::ScenarioParams s = scenario();
  exec::CancelToken token;
  token.request_stop();
  CampaignOptions opts;
  opts.cancel = &token;
  CampaignRunner runner(opts);
  const CampaignResult campaign = runner.run({
      SpecBuilder("a", s).protocol({2, 1.0}).build(),
      SpecBuilder("b", s).optimize(4).build(),
  });

  EXPECT_FALSE(campaign.complete);
  ASSERT_EQ(campaign.cancelled.size(), 2u);
  EXPECT_EQ(campaign.cancelled[0], 0u);
  EXPECT_EQ(campaign.cancelled[1], 1u);
  EXPECT_TRUE(campaign.failures.empty());
  // Stubs keep names so a partial report still lines up with the specs.
  EXPECT_EQ(campaign.experiments[0].name, "a");
  EXPECT_TRUE(campaign.experiments[0].cells.empty());

  const auto report =
      obs::parse_json(campaign.report("test", "cancelled").to_json().dump());
  ASSERT_TRUE(report.has_value());
  const obs::JsonValue& data = report_data(*report);
  EXPECT_FALSE(data.find("complete")->as_bool());
  const obs::JsonValue* cancelled = data.find("cancelled");
  ASSERT_NE(cancelled, nullptr);
  EXPECT_EQ(cancelled->size(), 2u);
}

TEST(Cancellation, ExpiredDeadlineStopsTheCampaign) {
  const core::ScenarioParams s = scenario();
  exec::CancelToken token;
  token.arm_deadline(std::chrono::steady_clock::duration::zero());
  CampaignOptions opts;
  opts.cancel = &token;
  CampaignRunner runner(opts);
  const CampaignResult campaign =
      runner.run({SpecBuilder("a", s).protocol({2, 1.0}).build()});
  EXPECT_FALSE(campaign.complete);
  EXPECT_EQ(campaign.cancelled.size(), 1u);
}

TEST(Cancellation, CancelledMetricsCountTheSkippedSpecs) {
  ZC_SKIP_WITHOUT_METRICS();
  const core::ScenarioParams s = scenario();
  exec::CancelToken token;
  token.request_stop();
  CampaignOptions opts;
  opts.cancel = &token;
  CampaignRunner runner(opts);
  const CampaignResult campaign = runner.run({
      SpecBuilder("a", s).protocol({2, 1.0}).build(),
      SpecBuilder("b", s).protocol({4, 2.0}).build(),
      SpecBuilder("c", s).optimize(4).build(),
  });
  EXPECT_EQ(campaign.metrics.counter_value("engine.cancelled.total"),
            std::optional<std::uint64_t>(3));
}

TEST(Cancellation, CancelledJournaledCampaignResumesToCompletion) {
  // The full interrupt workflow: a journaled campaign is stopped before
  // any spec runs, then a fresh runner resumes it with no token and must
  // produce the exact bytes of an uninterrupted run.
  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  const auto make_specs = [&] {
    std::vector<ExperimentSpec> specs;
    for (unsigned i = 0; i < 4; ++i) {
      specs.push_back(SpecBuilder("mc-" + std::to_string(i), s)
                          .protocol({1 + i, 0.5})
                          .estimator(Estimator::monte_carlo)
                          .network(100, 30)
                          .trials(100)
                          .seed(100 + i)
                          .build());
    }
    return specs;
  };
  const std::vector<ExperimentSpec> specs = make_specs();
  const std::string path =
      ::testing::TempDir() + "zc_resilience_resume.jsonl";

  exec::CancelToken token;
  token.request_stop();
  CampaignOptions stopped;
  stopped.journal_path = path;
  stopped.cancel = &token;
  CampaignRunner interrupted(stopped);
  const CampaignResult partial = interrupted.run(specs);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.cancelled.size(), specs.size());

  CampaignRunner resumed;
  const CampaignResult finished = resumed.resume(specs, path);
  EXPECT_TRUE(finished.complete);
  EXPECT_TRUE(finished.cancelled.empty());

  CampaignRunner clean;
  EXPECT_EQ(campaign_bytes(finished), campaign_bytes(clean.run(specs)));
  std::remove(path.c_str());
}

TEST(ReportSchema, AbortedRateAggregatesSimulationCells) {
  // Near-full address space + a one-attempt safety cap: most trials hit
  // an occupied address, exhaust the cap, and abort — deterministically
  // for a fixed seed.
  const core::ScenarioParams s(0.95, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  CampaignRunner runner;
  const CampaignResult campaign =
      runner.run({SpecBuilder("capped", s)
                      .protocol({3, 2.0})
                      .estimator(Estimator::monte_carlo)
                      .network(100, 95)
                      .safety_caps(1)
                      .trials(200)
                      .seed(5)
                      .build()});
  ASSERT_EQ(campaign.experiments[0].cells.size(), 1u);
  const engine::CellResult& cell = campaign.experiments[0].cells[0];
  ASSERT_GT(cell.aborted, 0u);

  const auto report =
      obs::parse_json(campaign.report("test", "aborted").to_json().dump());
  ASSERT_TRUE(report.has_value());
  const obs::JsonValue& data = report_data(*report);
  EXPECT_EQ(data.find("simulated_trials")->as_number(), 200.0);
  EXPECT_EQ(data.find("aborted_trials")->as_number(),
            static_cast<double>(cell.aborted));
  EXPECT_EQ(data.find("aborted_rate")->as_number(),
            static_cast<double>(cell.aborted) / 200.0);
}

TEST(ReportSchema, AnalyticCampaignReportsZeroAbortedRate) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const CampaignResult campaign =
      runner.run({SpecBuilder("grid", s).protocol({2, 1.0}).build()});
  const auto report =
      obs::parse_json(campaign.report("test", "clean").to_json().dump());
  ASSERT_TRUE(report.has_value());
  const obs::JsonValue& data = report_data(*report);
  EXPECT_EQ(data.find("simulated_trials")->as_number(), 0.0);
  EXPECT_EQ(data.find("aborted_rate")->as_number(), 0.0);
  EXPECT_TRUE(data.find("complete")->as_bool());
  ASSERT_NE(data.find("failures"), nullptr);
  EXPECT_EQ(data.find("failures")->size(), 0u);
}

}  // namespace
