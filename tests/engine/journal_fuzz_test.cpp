/// Fuzz-corpus regression for the journal reader and the resume path:
/// garbage bytes, corrupt or duplicated records, and arbitrary
/// truncations must either be tolerated (a torn *final* line, the
/// expected crash aftermath) or rejected with zc::ContractViolation —
/// never a crash — and every tolerated prefix must resume to the
/// uninterrupted campaign's bytes.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "common/contract.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/spec.hpp"

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignResult;
using engine::CampaignRunner;
using engine::ExperimentSpec;
using engine::SpecBuilder;

std::vector<ExperimentSpec> small_specs() {
  const core::ScenarioParams s = core::scenarios::figure2().to_params();
  return {
      SpecBuilder("grid", s).protocol_grid({1, 2}, {0.5, 2.0}).build(),
      SpecBuilder("opt", s).optimize(3).build(),
      SpecBuilder("wide", s).protocol_grid({1, 2, 4}, {1.0}).build(),
  };
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One fully-journaled golden run; returns (journal bytes, report bytes).
struct Golden {
  std::string journal;
  std::string report;
};

Golden golden_run(const std::string& journal_path) {
  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = journal_path;
  CampaignRunner runner(opts);
  const CampaignResult campaign = runner.run(small_specs());
  Golden out;
  out.journal = slurp(journal_path);
  out.report =
      campaign.report("journal-fuzz", "golden").to_json().dump();
  return out;
}

TEST(JournalFuzz, BinaryGarbageIsRejectedNotCrashed) {
  const std::string path = temp_path("zc_journal_fuzz_garbage.jsonl");
  check::FuzzRng rng(2026, 0x4a46);
  for (int round = 0; round < 64; ++round) {
    std::string bytes(1 + rng.pick(512), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.next_u64() & 0xff);
    spit(path, bytes);
    EXPECT_THROW((void)engine::read_journal(path), ContractViolation)
        << "round " << round;
  }
  std::remove(path.c_str());
}

TEST(JournalFuzz, ForeignHeadersAreRejected) {
  const std::string path = temp_path("zc_journal_fuzz_header.jsonl");
  const char* headers[] = {
      "not json at all\n",
      "{}\n",
      "{\"schema\":\"something-else\",\"version\":1}\n",
      "{\"schema\":\"zcopt-campaign-journal\",\"version\":99,"
      "\"digest\":\"0123456789abcdef\",\"specs\":2}\n",
      "{\"schema\":\"zcopt-campaign-journal\",\"version\":1,"
      "\"digest\":\"tooshort\",\"specs\":2}\n",
      "",
  };
  for (const char* header : headers) {
    spit(path, header);
    EXPECT_THROW((void)engine::read_journal(path), ContractViolation)
        << "header: " << header;
  }
  std::remove(path.c_str());
}

TEST(JournalFuzz, CorruptMiddleLinesAndDuplicatesAreRejected) {
  const std::string path = temp_path("zc_journal_fuzz_corrupt.jsonl");
  const Golden golden = golden_run(path);
  const std::string& bytes = golden.journal;

  const std::size_t header_end = bytes.find('\n') + 1;
  const std::size_t first_record_end = bytes.find('\n', header_end) + 1;
  const std::string first_record =
      bytes.substr(header_end, first_record_end - header_end);

  // Garbage injected between newline-terminated records is corruption,
  // not a torn tail — must throw.
  spit(path, bytes.substr(0, header_end) + "garbage\n" +
                 bytes.substr(header_end));
  EXPECT_THROW((void)engine::read_journal(path), ContractViolation);

  // A record journaled twice is corruption (replaying it twice would
  // double-count a chunk).
  spit(path, bytes + first_record);
  EXPECT_THROW((void)engine::read_journal(path), ContractViolation);

  // A record whose chunk is out of the header's declared range.
  std::string renumbered = first_record;
  const std::size_t chunk_pos = renumbered.find("\"chunk\":");
  ASSERT_NE(chunk_pos, std::string::npos);
  renumbered.replace(chunk_pos, 9, "\"chunk\":9");
  spit(path, bytes + renumbered);
  EXPECT_THROW((void)engine::read_journal(path), ContractViolation);

  std::remove(path.c_str());
}

TEST(JournalFuzz, EveryTruncationIsToleratedOrRejectedCleanly) {
  const std::string path = temp_path("zc_journal_fuzz_trunc.jsonl");
  const Golden golden = golden_run(path);
  const std::string& bytes = golden.journal;
  const std::size_t header_end = bytes.find('\n') + 1;

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    spit(path, bytes.substr(0, cut));
    if (cut < header_end) {
      // The header itself is torn: nothing to salvage.
      EXPECT_THROW((void)engine::read_journal(path), ContractViolation)
          << "cut " << cut;
      continue;
    }
    // Past the header every truncation is a legal crash state: whole
    // records survive, the torn tail is dropped.
    const engine::JournalContents contents = engine::read_journal(path);
    EXPECT_EQ(contents.valid_bytes + contents.dropped_bytes, cut)
        << "cut " << cut;
  }
  std::remove(path.c_str());
}

TEST(JournalFuzz, ResumeFromTornJournalsReproducesTheGoldenBytes) {
  const std::string path = temp_path("zc_journal_fuzz_resume.jsonl");
  const Golden golden = golden_run(path);
  const std::string& bytes = golden.journal;
  const std::size_t header_end = bytes.find('\n') + 1;

  // A spread of torn states: header only, a whole record lost, and a
  // record torn mid-append.
  const std::size_t cuts[] = {header_end, bytes.find('\n', header_end) + 1,
                              header_end + (bytes.size() - header_end) / 2,
                              bytes.size() - 3};
  for (const std::size_t cut : cuts) {
    spit(path, bytes.substr(0, cut));
    CampaignOptions opts;
    opts.threads = 1;
    CampaignRunner runner(opts);
    const CampaignResult resumed = runner.resume(small_specs(), path);
    EXPECT_TRUE(resumed.complete) << "cut " << cut;
    EXPECT_EQ(resumed.report("journal-fuzz", "golden").to_json().dump(),
              golden.report)
        << "cut " << cut;
    // The journal healed: re-reading it finds every chunk, no torn tail.
    const engine::JournalContents healed = engine::read_journal(path);
    EXPECT_EQ(healed.completed.size(), small_specs().size()) << "cut " << cut;
    EXPECT_EQ(healed.dropped_bytes, 0u) << "cut " << cut;
  }
  std::remove(path.c_str());
}

}  // namespace
