/// Golden end-to-end test for `zcopt_cli --report`: spawn the real
/// binary, parse the emitted manifest back through obs::parse_json, and
/// check the schema plus run-to-run determinism of the deterministic
/// sections (config/data/metrics; timers measure the hardware and are
/// exempt).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/report.hpp"

#ifndef ZCOPT_CLI_PATH
#error "ZCOPT_CLI_PATH must point at the zcopt_cli binary"
#endif

namespace {

using zc::obs::JsonValue;

/// Run the CLI with `arguments`, returning the parsed report written to
/// a temp file, or nullopt (caller skips) when spawning is unavailable.
std::optional<JsonValue> run_cli(const std::string& arguments,
                                 const std::string& tag) {
  if (std::system(nullptr) == 0) return std::nullopt;  // no shell
  const std::string path =
      ::testing::TempDir() + "zc_cli_report_" + tag + ".json";
  const std::string command = std::string(ZCOPT_CLI_PATH) + " " + arguments +
                              " --report " + path + " > /dev/null 2>&1";
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    std::remove(path.c_str());
    return std::nullopt;
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  if (!in.good() && buffer.str().empty()) return std::nullopt;

  std::string error;
  auto parsed = zc::obs::parse_json(buffer.str(), &error);
  EXPECT_TRUE(parsed.has_value()) << "emitted report is not valid JSON: "
                                  << error;
  return parsed;
}

/// dump() of a required section, so sections compare byte-for-byte.
std::string section(const JsonValue& report, const char* key) {
  const JsonValue* value = report.find(key);
  EXPECT_NE(value, nullptr) << "report lacks required key '" << key << "'";
  return value ? value->dump() : std::string();
}

TEST(CliReport, EvaluateManifestMatchesTheSchema) {
  const auto report = run_cli("--hosts 1000 --n 4 --r 2", "evaluate");
  if (!report.has_value()) GTEST_SKIP() << "could not spawn zcopt_cli";

  EXPECT_EQ(report->find("schema")->as_string(),
            zc::obs::RunReport::kSchemaName);
  EXPECT_DOUBLE_EQ(report->find("schema_version")->as_number(),
                   zc::obs::RunReport::kSchemaVersion);
  EXPECT_EQ(report->find("program")->as_string(), "zcopt_cli");

  const JsonValue* config = report->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("mode")->as_string(), "evaluate");
  EXPECT_DOUBLE_EQ(config->find("n")->as_number(), 4.0);
  EXPECT_DOUBLE_EQ(config->find("r")->as_number(), 2.0);
  for (const char* knob : {"q", "c", "E", "loss", "lambda", "d"})
    EXPECT_NE(config->find(knob), nullptr) << "config lacks '" << knob << "'";

  const JsonValue* configuration =
      report->find("data") ? report->find("data")->find("configuration")
                           : nullptr;
  ASSERT_NE(configuration, nullptr);
  EXPECT_GT(configuration->find("mean_cost")->as_number(), 0.0);
  EXPECT_GE(configuration->find("collision_probability")->as_number(), 0.0);

  // The engine run behind the evaluation leaves its bookkeeping behind.
  const JsonValue* metrics = report->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("counters"), nullptr);
#ifndef ZC_OBS_DISABLED
  EXPECT_NE(metrics->find("counters")->find("engine.specs.total"), nullptr);
#endif
  EXPECT_NE(report->find("timers"), nullptr);
}

TEST(CliReport, EvaluateManifestIsDeterministicAcrossRuns) {
  const auto first = run_cli("--hosts 500 --n 3 --r 1.5", "det_a");
  const auto second = run_cli("--hosts 500 --n 3 --r 1.5", "det_b");
  if (!first.has_value() || !second.has_value())
    GTEST_SKIP() << "could not spawn zcopt_cli";
  EXPECT_EQ(section(*first, "config"), section(*second, "config"));
  EXPECT_EQ(section(*first, "data"), section(*second, "data"));
  EXPECT_EQ(section(*first, "metrics"), section(*second, "metrics"));
}

TEST(CliReport, CampaignManifestMatchesTheSchemaAndIsDeterministic) {
  const std::string arguments =
      "campaign --hosts 1000 --n 1,2,4 --r 0.5,2 --detailed";
  const auto first = run_cli(arguments, "campaign_a");
  const auto second = run_cli(arguments, "campaign_b");
  if (!first.has_value() || !second.has_value())
    GTEST_SKIP() << "could not spawn zcopt_cli";

  EXPECT_EQ(first->find("schema")->as_string(),
            zc::obs::RunReport::kSchemaName);
  const JsonValue* config = first->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("mode")->as_string(), "campaign");
  EXPECT_EQ(config->find("estimator")->as_string(), "analytic");
  EXPECT_DOUBLE_EQ(config->find("specs")->as_number(), 1.0);

  const JsonValue* experiments =
      first->find("data") ? first->find("data")->find("experiments") : nullptr;
  ASSERT_NE(experiments, nullptr);
  ASSERT_EQ(experiments->size(), 1u);
  const JsonValue* cells = experiments->element(0)->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 6u);  // 3 probe counts x 2 listening periods
  const JsonValue* cell = cells->element(0);
  EXPECT_DOUBLE_EQ(cell->find("n")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(cell->find("r")->as_number(), 0.5);
  EXPECT_NE(cell->find("mean_cost"), nullptr);
  EXPECT_NE(cell->find("cost_stddev"), nullptr);  // --detailed

  EXPECT_EQ(section(*first, "config"), section(*second, "config"));
  EXPECT_EQ(section(*first, "data"), section(*second, "data"));
  EXPECT_EQ(section(*first, "metrics"), section(*second, "metrics"));
}

}  // namespace
