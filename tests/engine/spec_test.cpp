/// ExperimentSpec / SpecBuilder: construction, grid semantics, and the
/// centralized rejection of malformed specs.

#include "engine/spec.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/contract.hpp"
#include "core/scenarios.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;
using engine::Estimator;
using engine::ExperimentSpec;
using engine::Mode;
using engine::SpecBuilder;

core::ScenarioParams scenario() {
  return core::scenarios::figure2().to_params();
}

TEST(SpecBuilder, DefaultsToAnalyticEvaluate) {
  const ExperimentSpec spec =
      SpecBuilder("one", scenario()).protocol({4, 2.0}).build();
  EXPECT_EQ(spec.name, "one");
  EXPECT_EQ(spec.mode, Mode::evaluate);
  EXPECT_EQ(spec.estimator, Estimator::analytic);
  ASSERT_EQ(spec.grid.size(), 1u);
  EXPECT_EQ(spec.grid[0].n, 4u);
  EXPECT_DOUBLE_EQ(spec.grid[0].r, 2.0);
  EXPECT_FALSE(spec.detailed);
}

TEST(SpecBuilder, GridCrossProductIsNOuterRowMajor) {
  const ExperimentSpec spec = SpecBuilder("grid", scenario())
                                  .protocol_grid({1, 3}, {0.5, 2.0, 4.0})
                                  .build();
  ASSERT_EQ(spec.grid.size(), 6u);
  EXPECT_EQ(spec.grid[0].n, 1u);
  EXPECT_DOUBLE_EQ(spec.grid[0].r, 0.5);
  EXPECT_DOUBLE_EQ(spec.grid[2].r, 4.0);
  EXPECT_EQ(spec.grid[3].n, 3u);
  EXPECT_DOUBLE_EQ(spec.grid[3].r, 0.5);
  EXPECT_EQ(spec.grid_n_max(), 3u);
}

TEST(SpecBuilder, OptimizeAndCalibrateSwitchModes) {
  const ExperimentSpec opt = SpecBuilder("opt", scenario()).optimize(8).build();
  EXPECT_EQ(opt.mode, Mode::optimize);
  EXPECT_EQ(opt.n_max, 8u);

  const ExperimentSpec cal =
      SpecBuilder("cal", scenario()).calibrate({4, 0.25}).build();
  EXPECT_EQ(cal.mode, Mode::calibrate);
  EXPECT_EQ(cal.calibrate_target.n, 4u);
}

TEST(SpecBuilder, SimulationKnobsLand) {
  const ExperimentSpec spec = SpecBuilder("mc", scenario())
                                  .protocol({4, 2.0})
                                  .estimator(Estimator::monte_carlo)
                                  .network(1000, 200)
                                  .trials(123)
                                  .seed(9)
                                  .chunk_size(16)
                                  .max_virtual_time(1e4)
                                  .safety_caps(64, 256)
                                  .probe_wait(1.0)
                                  .build();
  EXPECT_EQ(spec.sim.address_space, 1000u);
  EXPECT_EQ(spec.sim.hosts, 200u);
  EXPECT_EQ(spec.effective_hosts(), 200u);
  EXPECT_EQ(spec.sim.trials, 123u);
  EXPECT_EQ(spec.sim.seed, 9u);
  EXPECT_EQ(spec.sim.chunk_size, 16u);
  EXPECT_DOUBLE_EQ(spec.sim.max_virtual_time, 1e4);
  EXPECT_EQ(spec.sim.max_attempts, 64u);
  EXPECT_EQ(spec.sim.max_probes, 256u);
  EXPECT_DOUBLE_EQ(spec.sim.probe_wait_max, 1.0);
}

TEST(SpecBuilder, HostsDefaultToScenarioOccupancy) {
  // q = 0.2 on a 1000-address space -> 200 configured hosts.
  const core::ScenarioParams s(0.2, 1.0, 10.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  const ExperimentSpec spec = SpecBuilder("mc", s)
                                  .protocol({2, 1.0})
                                  .estimator(Estimator::monte_carlo)
                                  .network(1000, 0)
                                  .build();
  EXPECT_EQ(spec.effective_hosts(), 200u);
}

// ---- rejections --------------------------------------------------------

TEST(SpecValidate, RejectsEmptyName) {
  EXPECT_THROW(SpecBuilder("", scenario()).protocol({4, 2.0}).build(),
               zc::ContractViolation);
}

TEST(SpecValidate, RejectsEmptyEvaluateGrid) {
  EXPECT_THROW(SpecBuilder("empty", scenario()).build(),
               zc::ContractViolation);
}

TEST(SpecValidate, RejectsMalformedGridPoints) {
  EXPECT_THROW(SpecBuilder("n0", scenario()).protocol({0, 2.0}).build(),
               zc::ContractViolation);
  EXPECT_THROW(SpecBuilder("r0", scenario()).protocol({4, 0.0}).build(),
               zc::ContractViolation);
  EXPECT_THROW(
      SpecBuilder("rinf", scenario())
          .protocol({4, std::numeric_limits<double>::infinity()})
          .build(),
      zc::ContractViolation);
}

TEST(SpecValidate, RejectionNamesTheSpec) {
  try {
    (void)SpecBuilder("my-experiment", scenario()).build();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("ExperimentSpec 'my-experiment'"),
              std::string::npos);
  }
}

TEST(SpecValidate, RejectsMalformedSimulationKnobs) {
  const auto mc = [&] {
    return SpecBuilder("mc", scenario())
        .protocol({4, 2.0})
        .estimator(Estimator::monte_carlo);
  };
  EXPECT_THROW(mc().trials(0).build(), zc::ContractViolation);
  EXPECT_THROW(mc().network(1, 0).build(), zc::ContractViolation);
  // Hosts must leave at least one free address.
  EXPECT_THROW(mc().network(100, 100).build(), zc::ContractViolation);
  EXPECT_THROW(mc().max_virtual_time(-1.0).build(), zc::ContractViolation);
  EXPECT_THROW(
      mc().max_virtual_time(std::numeric_limits<double>::infinity()).build(),
      zc::ContractViolation);
  EXPECT_THROW(mc().probe_wait(-0.5).build(), zc::ContractViolation);
}

TEST(SpecValidate, RejectsMonteCarloForOptimizeAndCalibrate) {
  EXPECT_THROW(SpecBuilder("opt", scenario())
                   .optimize()
                   .estimator(Estimator::monte_carlo)
                   .build(),
               zc::ContractViolation);
  EXPECT_THROW(SpecBuilder("cal", scenario())
                   .calibrate({4, 2.0})
                   .estimator(Estimator::monte_carlo)
                   .build(),
               zc::ContractViolation);
}

TEST(SpecValidate, RejectsInvalidFaultSchedule) {
  faults::FaultSchedule bad;
  bad.gilbert_elliott.loss_bad = 1.5;  // probabilities live in [0, 1]
  EXPECT_THROW(SpecBuilder("faults", scenario())
                   .protocol({4, 2.0})
                   .estimator(Estimator::monte_carlo)
                   .network(100, 30)
                   .faults(bad)
                   .build(),
               zc::ContractViolation);
}

TEST(SpecValidate, OptimizeNeedsPositiveNMax) {
  EXPECT_THROW(SpecBuilder("opt", scenario()).optimize(0).build(),
               zc::ContractViolation);
}

}  // namespace
