/// Adaptive precision through the experiment engine: spec validation of
/// the precision targets, adaptive-cell serialization and journal
/// round-trips, spec-list-digest sensitivity to the new knobs, and the
/// acceptance invariant — a killed adaptive campaign resumes
/// byte-identically at any thread count.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "core/params.hpp"
#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/spec.hpp"
#include "faults/schedule.hpp"
#include "prob/delay.hpp"
#include "sim/precision.hpp"

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignResult;
using engine::CampaignRunner;
using engine::Estimator;
using engine::ExperimentSpec;
using engine::SpecBuilder;

core::ScenarioParams lossy_scenario() {
  return core::ScenarioParams(0.3, 2.0, 1000.0,
                              prob::paper_reply_delay(0.1, 10.0, 0.05));
}

/// One adaptive Monte-Carlo spec with a deliberately loose target so the
/// ladder stops after a few rounds even on a lossy network.
ExperimentSpec adaptive_spec(const std::string& name, std::uint64_t seed,
                             double rel_ci = 0.25) {
  return SpecBuilder(name, lossy_scenario())
      .protocol({3, 1.0})
      .estimator(Estimator::monte_carlo)
      .network(100, 30)
      .max_virtual_time(1e4)
      .safety_caps(64)
      .trials(20000)
      .seed(seed)
      .target_rel_ci(rel_ci)
      .trial_budget(64, 20000)
      .build();
}

/// The adaptive acceptance list: every fault class active, a mix of
/// adaptive and fixed specs (resume must replay both), built fresh per
/// call the way a resuming process would rebuild it.
std::vector<ExperimentSpec> adaptive_specs() {
  faults::FaultSchedule chaos;
  chaos.gilbert_elliott.p_enter_burst = 0.05;
  chaos.gilbert_elliott.p_exit_burst = 0.25;
  chaos.gilbert_elliott.loss_bad = 0.9;
  chaos.blackout.windows = {2.0, 0.5, 8.0};
  chaos.delay_spike.windows = {1.0, 1.0, 6.0};
  chaos.delay_spike.extra = 0.2;
  chaos.duplication.probability = 0.05;
  chaos.reordering.probability = 0.1;
  chaos.reordering.max_jitter = 0.05;
  chaos.host_churn.deaf_fraction = 0.3;
  chaos.host_churn.period = 4.0;
  chaos.host_churn.deaf_duration = 1.0;
  chaos.validate();

  std::vector<ExperimentSpec> specs;
  for (unsigned i = 0; i < 12; ++i) {
    SpecBuilder builder("adaptive-" + std::to_string(i), lossy_scenario());
    builder.protocol({1 + i % 4, 0.25 + 0.25 * (i % 3)})
        .estimator(Estimator::monte_carlo)
        .network(100, 30)
        .faults(chaos)
        .max_virtual_time(1e4)
        .safety_caps(64)
        .trials(4000)
        .seed(2000 + i);
    if (i % 3 != 2) {  // every third spec stays fixed-mode
      builder.target_rel_ci(0.3).trial_budget(50, 4000);
    }
    specs.push_back(builder.build());
  }
  return specs;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The journal's first `records` record lines (header always kept).
std::string journal_prefix(const std::string& bytes, std::size_t records) {
  std::size_t offset = bytes.find('\n') + 1;
  for (std::size_t i = 0; i < records; ++i)
    offset = bytes.find('\n', offset) + 1;
  return bytes.substr(0, offset);
}

// --- Spec validation -------------------------------------------------------

TEST(AdaptiveSpec, ValidationRejectsBadPrecisionTargets) {
  {
    ExperimentSpec spec = adaptive_spec("neg-rel", 1);
    spec.sim.precision.rel_ci_model_cost = -0.5;
    EXPECT_THROW(spec.validate(), zc::ContractViolation);
  }
  {
    ExperimentSpec spec = adaptive_spec("nan-floor", 1);
    spec.sim.precision.abs_ci_floor =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(spec.validate(), zc::ContractViolation);
  }
  {
    ExperimentSpec spec = adaptive_spec("inverted-budget", 1);
    spec.sim.precision.min_trials = 500;
    spec.sim.precision.max_trials = 100;
    EXPECT_THROW(spec.validate(), zc::ContractViolation);
  }
  // A well-formed adaptive spec passes.
  EXPECT_NO_THROW(adaptive_spec("ok", 1).validate());
}

TEST(AdaptiveSpec, BuilderTargetAppliesToBothMeasures) {
  const ExperimentSpec spec = adaptive_spec("both", 1, 0.2);
  EXPECT_DOUBLE_EQ(spec.sim.precision.rel_ci_model_cost, 0.2);
  EXPECT_DOUBLE_EQ(spec.sim.precision.rel_ci_collision, 0.2);
  EXPECT_EQ(spec.sim.precision.min_trials, 64u);
  EXPECT_EQ(spec.sim.precision.max_trials, 20000u);
  EXPECT_TRUE(spec.sim.precision.enabled());
}

// --- Cell serialization and journal round-trip -----------------------------

TEST(AdaptiveCampaign, AdaptiveCellsCarryLadderStateFixedCellsDoNot) {
  CampaignRunner runner(CampaignOptions{1});
  const engine::ExperimentResult adaptive =
      runner.run_one(adaptive_spec("adaptive", 7));
  ASSERT_EQ(adaptive.cells.size(), 1u);
  const engine::CellResult& cell = adaptive.cells[0];
  EXPECT_TRUE(cell.adaptive);
  EXPECT_EQ(cell.trials_requested, 20000u);
  EXPECT_GE(cell.rounds, 1u);
  EXPECT_LE(cell.trials, cell.trials_requested);
  const obs::JsonValue adaptive_json = cell.to_json();
  ASSERT_NE(adaptive_json.find("rounds"), nullptr);
  ASSERT_NE(adaptive_json.find("trials_requested"), nullptr);
  ASSERT_NE(adaptive_json.find("precision_met"), nullptr);

  // A fixed-mode cell serializes without the adaptive keys, so fixed
  // report bytes stay comparable with pre-adaptive recordings.
  ExperimentSpec fixed = adaptive_spec("fixed", 7);
  fixed.sim.precision = sim::PrecisionTargets{};
  fixed.sim.trials = 500;
  const engine::ExperimentResult fixed_result = runner.run_one(fixed);
  ASSERT_EQ(fixed_result.cells.size(), 1u);
  EXPECT_FALSE(fixed_result.cells[0].adaptive);
  const obs::JsonValue fixed_json = fixed_result.cells[0].to_json();
  EXPECT_EQ(fixed_json.find("rounds"), nullptr);
  EXPECT_EQ(fixed_json.find("trials_requested"), nullptr);
  EXPECT_EQ(fixed_json.find("precision_met"), nullptr);
}

TEST(AdaptiveCampaign, JournalRecordRoundTripsAdaptiveState) {
  CampaignRunner runner(CampaignOptions{1});
  const engine::ExperimentResult original =
      runner.run_one(adaptive_spec("round-trip", 11));
  const obs::JsonValue record = engine::journal_record(3, original);
  const engine::ExperimentResult restored =
      engine::result_from_journal(record);

  ASSERT_EQ(restored.cells.size(), original.cells.size());
  EXPECT_TRUE(restored.cells[0].adaptive);
  EXPECT_EQ(restored.cells[0].trials, original.cells[0].trials);
  EXPECT_EQ(restored.cells[0].trials_requested,
            original.cells[0].trials_requested);
  EXPECT_EQ(restored.cells[0].rounds, original.cells[0].rounds);
  EXPECT_EQ(restored.cells[0].precision_met,
            original.cells[0].precision_met);
  // The round-trip contract: re-serializing reproduces the bytes.
  EXPECT_EQ(engine::journal_record(3, restored).dump_compact(),
            record.dump_compact());
}

// --- Digest sensitivity ----------------------------------------------------

TEST(AdaptiveCampaign, SpecListDigestBindsPrecisionTargets) {
  const std::vector<ExperimentSpec> base = {adaptive_spec("digest", 5)};
  const std::string digest = engine::spec_list_digest(base);

  std::vector<ExperimentSpec> tweaked = {adaptive_spec("digest", 5)};
  EXPECT_EQ(engine::spec_list_digest(tweaked), digest)
      << "identical lists must agree";

  tweaked[0].sim.precision.rel_ci_model_cost = 0.26;
  EXPECT_NE(engine::spec_list_digest(tweaked), digest);
  tweaked = {adaptive_spec("digest", 5)};
  tweaked[0].sim.precision.rel_ci_collision = 0.0;
  EXPECT_NE(engine::spec_list_digest(tweaked), digest);
  tweaked = {adaptive_spec("digest", 5)};
  tweaked[0].sim.precision.abs_ci_floor = 1e-3;
  EXPECT_NE(engine::spec_list_digest(tweaked), digest);
  tweaked = {adaptive_spec("digest", 5)};
  tweaked[0].sim.precision.min_trials = 65;
  EXPECT_NE(engine::spec_list_digest(tweaked), digest);
  tweaked = {adaptive_spec("digest", 5)};
  tweaked[0].sim.precision.max_trials = 19999;
  EXPECT_NE(engine::spec_list_digest(tweaked), digest);
}

// --- Kill-and-resume acceptance --------------------------------------------

TEST(AdaptiveCampaign, KilledAdaptiveCampaignResumesByteIdentically) {
  const std::string journal = temp_path("zc_adaptive_resume.jsonl");

  // Uninterrupted journaled run: the golden bytes.
  CampaignOptions golden_opts;
  golden_opts.threads = 1;
  golden_opts.journal_path = journal;
  CampaignRunner golden_runner(golden_opts);
  const CampaignResult golden_campaign = golden_runner.run(adaptive_specs());
  const std::string golden_report =
      golden_campaign.report("adaptive", "resume acceptance")
          .to_json()
          .dump();
  const std::string full_journal = slurp(journal);

  // Crash after 5 whole records; resume serially and with 8 workers. The
  // journal bound the *realized* trial counts, so the replayed adaptive
  // cells must come back bit-for-bit without re-running their ladders.
  const unsigned thread_counts[] = {1, 8};
  for (const unsigned threads : thread_counts) {
    spit(journal, journal_prefix(full_journal, 5));
    CampaignOptions opts;
    opts.threads = threads;
    CampaignRunner runner(opts);
    const CampaignResult resumed = runner.resume(adaptive_specs(), journal);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(
        resumed.report("adaptive", "resume acceptance").to_json().dump(),
        golden_report)
        << "threads=" << threads;
  }

  std::remove(journal.c_str());
}

}  // namespace
