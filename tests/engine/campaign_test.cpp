/// CampaignRunner: estimator-vs-direct equivalence, survival-ladder
/// sharing, the batch determinism contract, and the CSV sink.

#include "engine/campaign.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/calibrate.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "faults/schedule.hpp"
#include "obs/metrics.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"

#ifdef ZC_OBS_DISABLED
#define ZC_SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metric mutators compiled out (-DZC_OBS_METRICS=OFF)"
#else
#define ZC_SKIP_WITHOUT_METRICS() (void)0
#endif

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignResult;
using engine::CampaignRunner;
using engine::CellResult;
using engine::Estimator;
using engine::ExperimentSpec;
using engine::SpecBuilder;

core::ScenarioParams scenario() {
  return core::scenarios::figure2().to_params();
}

/// Every deterministic byte a campaign produces, for cross-thread-count
/// comparison: results, optima, calibrations, and the merged metrics.
std::string campaign_bytes(const CampaignResult& campaign) {
  return campaign.to_json().dump() +
         obs::metrics_to_json(campaign.metrics).dump();
}

TEST(Campaign, AnalyticCellsMatchTheClosedForms) {
  const core::ScenarioParams s = scenario();
  const std::vector<unsigned> ns{1, 2, 4};
  const std::vector<double> rs{0.5, 2.0};
  CampaignRunner runner;
  const engine::ExperimentResult result = runner.run_one(
      SpecBuilder("grid", s).protocol_grid(ns, rs).build());

  ASSERT_EQ(result.cells.size(), ns.size() * rs.size());
  std::size_t i = 0;
  for (const unsigned n : ns) {
    for (const double r : rs) {
      const CellResult& cell = result.cells[i++];
      EXPECT_EQ(cell.protocol.n, n);
      // The cached-ladder path must be bitwise-equal to the direct
      // closed-form evaluation.
      EXPECT_EQ(cell.mean_cost, core::mean_cost(s, {n, r}));
      EXPECT_EQ(cell.error_probability, core::error_probability(s, {n, r}));
    }
  }
}

TEST(Campaign, DetailedCellsCarryTheDetailBlock) {
  const core::ScenarioParams s = scenario();
  const core::ProtocolParams point{3, 1.5};
  CampaignRunner runner;
  const engine::ExperimentResult result = runner.run_one(
      SpecBuilder("detail", s).protocol(point).detailed().build());

  ASSERT_EQ(result.cells.size(), 1u);
  const CellResult& cell = result.cells[0];
  ASSERT_TRUE(cell.has_detail);
  EXPECT_EQ(cell.cost_stddev, std::sqrt(core::cost_variance(s, point)));
  EXPECT_GT(cell.cost_stddev, 0.0);
  EXPECT_EQ(cell.mean_waiting_time, core::mean_waiting_time(s, point));
  EXPECT_EQ(cell.mean_attempts, core::mean_address_attempts(s, point));
}

TEST(Campaign, DrmTracksTheClosedForms) {
  const core::ScenarioParams s = scenario();
  const core::ProtocolParams point{3, 0.8};
  CampaignRunner runner;
  const engine::ExperimentResult result = runner.run_one(
      SpecBuilder("drm", s).protocol(point).estimator(Estimator::drm).build());

  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_NEAR(result.cells[0].mean_cost, core::mean_cost(s, point),
              1e-6 * core::mean_cost(s, point));
  EXPECT_NEAR(result.cells[0].error_probability,
              core::error_probability(s, point),
              1e-6 * core::error_probability(s, point));
}

TEST(Campaign, MonteCarloCellsMatchTheDirectSimulation) {
  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  const core::ProtocolParams point{3, 0.5};
  CampaignRunner runner;
  const engine::ExperimentResult via_engine = runner.run_one(
      SpecBuilder("mc", s)
          .protocol(point)
          .estimator(Estimator::monte_carlo)
          .network(100, 30)
          .trials(400)
          .seed(7)
          .build());

  sim::NetworkConfig network;
  network.address_space = 100;
  network.hosts = 30;
  network.responder_delay = s.reply_delay_ptr();
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(point.n, point.r);
  sim::MonteCarloOptions mc;
  mc.trials = 400;
  mc.seed = 7;
  mc.probe_cost = s.probe_cost();
  mc.error_cost = s.error_cost();
  const sim::MonteCarloResults direct = sim::monte_carlo(network, protocol, mc);

  ASSERT_EQ(via_engine.cells.size(), 1u);
  const CellResult& cell = via_engine.cells[0];
  EXPECT_TRUE(cell.from_simulation);
  EXPECT_EQ(cell.mean_cost, direct.model_cost.mean);
  EXPECT_EQ(cell.error_probability, direct.collision_rate);
  EXPECT_EQ(cell.cost_stddev, direct.model_cost.stddev);
  EXPECT_EQ(cell.trials, direct.trials);
  EXPECT_EQ(cell.completed, direct.completed);
  EXPECT_EQ(cell.collisions, direct.collisions);
  EXPECT_EQ(cell.mean_probes, direct.probes.mean);
  EXPECT_EQ(cell.mean_elapsed_cost, direct.elapsed_cost.mean);
  // The spec's semantic metrics are the simulation's, merged verbatim.
  EXPECT_EQ(obs::metrics_to_json(via_engine.metrics).dump(),
            obs::metrics_to_json(direct.metrics).dump());
}

TEST(Campaign, OptimizeMatchesJointOptimum) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const engine::ExperimentResult result =
      runner.run_one(SpecBuilder("opt", s).optimize(8).build());

  const core::JointOptimum direct = core::joint_optimum(s, 8);
  ASSERT_TRUE(result.optimum.has_value());
  EXPECT_EQ(result.optimum->n, direct.n);
  EXPECT_EQ(result.optimum->r, direct.r);
  EXPECT_EQ(result.optimum->cost, direct.cost);
  EXPECT_EQ(result.optimum->error_prob, direct.error_prob);
}

TEST(Campaign, CalibrateMatchesTheDirectInverseProblem) {
  const core::ScenarioParams s = scenario();
  const core::ProtocolParams target{4, 2.0};
  CampaignRunner runner;
  const engine::ExperimentResult result =
      runner.run_one(SpecBuilder("cal", s).calibrate(target).build());

  const auto direct = core::calibrate(s, target);
  ASSERT_EQ(result.calibration.has_value(), direct.has_value());
  ASSERT_TRUE(result.calibration.has_value());
  EXPECT_EQ(result.calibration->error_cost, direct->error_cost);
  EXPECT_EQ(result.calibration->probe_cost, direct->probe_cost);
  EXPECT_EQ(result.calibration->competitor, direct->competitor);
  EXPECT_EQ(result.calibration->target_is_optimal, direct->target_is_optimal);
}

TEST(Campaign, SurvivalLaddersAreSharedAcrossSpecs) {
  ZC_SKIP_WITHOUT_METRICS();
  // Three specs sharing one F_X and ladder length, differing only in the
  // cost weights (E, c): the first spec computes each distinct-r ladder
  // once; the others hit the cache on every column.
  const core::ScenarioParams base = scenario();
  const std::vector<unsigned> ns{1, 2};
  const std::vector<double> rs{0.5, 1.0, 2.0};
  const std::vector<ExperimentSpec> specs{
      SpecBuilder("base", base).protocol_grid(ns, rs).build(),
      SpecBuilder("cheap-probes", base.with_probe_cost(0.5))
          .protocol_grid(ns, rs)
          .build(),
      SpecBuilder("costly-errors", base.with_error_cost(1e6))
          .protocol_grid(ns, rs)
          .build(),
  };

  CampaignRunner runner;
  const CampaignResult campaign = runner.run(specs);

  // Exactly-once computation: misses == distinct (F_X, n_max, r) keys,
  // hits == the remaining requests — a pure function of the spec list.
  EXPECT_EQ(campaign.metrics.counter_value("engine.cache.misses"),
            std::optional<std::uint64_t>(rs.size()));
  EXPECT_EQ(campaign.metrics.counter_value("engine.cache.hits"),
            std::optional<std::uint64_t>(2 * rs.size()));
  EXPECT_EQ(campaign.metrics.gauge_value("engine.cache.entries"),
            std::optional<double>(static_cast<double>(rs.size())));
  EXPECT_EQ(campaign.metrics.counter_value("engine.specs.total"),
            std::optional<std::uint64_t>(specs.size()));
  EXPECT_EQ(campaign.metrics.counter_value("engine.cells.total"),
            std::optional<std::uint64_t>(specs.size() * ns.size() * rs.size()));

  // Sharing does not change the numbers: every spec's grid evaluates
  // bitwise-equal to the direct closed forms under its own weights.
  for (std::size_t k = 0; k < specs.size(); ++k) {
    const core::ScenarioParams& s = specs[k].scenario;
    for (std::size_t i = 0; i < specs[k].grid.size(); ++i) {
      EXPECT_EQ(campaign.experiments[k].cells[i].mean_cost,
                core::mean_cost(s, specs[k].grid[i]));
    }
  }
}

TEST(Campaign, HundredSpecFaultCampaignIsByteIdenticalAcrossThreadCounts) {
  // The acceptance-criteria campaign: >= 100 specs with the full fault
  // schedule, byte-identical RunReport at 1 thread and at 8.
  faults::FaultSchedule chaos;
  chaos.gilbert_elliott.p_enter_burst = 0.05;
  chaos.gilbert_elliott.p_exit_burst = 0.25;
  chaos.gilbert_elliott.loss_bad = 0.9;
  chaos.blackout.windows = {2.0, 0.5, 8.0};
  chaos.delay_spike.windows = {1.0, 1.0, 6.0};
  chaos.delay_spike.extra = 0.2;
  chaos.duplication.probability = 0.05;
  chaos.reordering.probability = 0.1;
  chaos.reordering.max_jitter = 0.05;
  chaos.host_churn.deaf_fraction = 0.3;
  chaos.host_churn.period = 4.0;
  chaos.host_churn.deaf_duration = 1.0;
  chaos.validate();

  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  std::vector<ExperimentSpec> specs;
  for (unsigned i = 0; i < 100; ++i) {
    specs.push_back(SpecBuilder("spec-" + std::to_string(i), s)
                        .protocol({1 + i % 4, 0.25 + 0.25 * (i % 3)})
                        .estimator(Estimator::monte_carlo)
                        .network(100, 30)
                        .faults(chaos)
                        .max_virtual_time(1e4)
                        .safety_caps(64)
                        .trials(40)
                        .seed(1000 + i)
                        .build());
  }

  const auto run_at = [&](unsigned threads) {
    CampaignRunner runner(CampaignOptions{threads});
    return runner.run(specs).report("golden", "acceptance campaign")
        .to_json()
        .dump();
  };
  const std::string serial = run_at(1);
  const std::string parallel = run_at(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"specs\": 100"), std::string::npos);
}

TEST(Campaign, MixedBatchKeepsSpecOrder) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const CampaignResult campaign = runner.run({
      SpecBuilder("first", s).protocol({4, 2.0}).build(),
      SpecBuilder("second", s).optimize(4).build(),
      SpecBuilder("third", s).calibrate({2, 1.0}).build(),
  });
  ASSERT_EQ(campaign.experiments.size(), 3u);
  EXPECT_EQ(campaign.experiments[0].name, "first");
  EXPECT_EQ(campaign.experiments[1].name, "second");
  EXPECT_TRUE(campaign.experiments[1].optimum.has_value());
  EXPECT_EQ(campaign.experiments[2].name, "third");
}

TEST(Campaign, AnalyticBatchesAreByteIdenticalAcrossThreadCounts) {
  const core::ScenarioParams s = scenario();
  std::vector<ExperimentSpec> specs;
  for (unsigned i = 0; i < 20; ++i) {
    specs.push_back(SpecBuilder("grid-" + std::to_string(i), s)
                        .protocol_grid({1, 2, 4, 8}, {0.5, 1.0, 2.0, 4.0})
                        .detailed()
                        .build());
  }
  specs.push_back(SpecBuilder("optimum", s).optimize(16).build());

  const auto run_at = [&](unsigned threads) {
    CampaignRunner runner(CampaignOptions{threads});
    return campaign_bytes(runner.run(specs));
  };
  EXPECT_EQ(run_at(1), run_at(8));
}

TEST(Campaign, CsvSinkWritesOneRowPerResult) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const CampaignResult campaign = runner.run({
      SpecBuilder("grid", s).protocol_grid({1, 2}, {0.5, 2.0}).build(),
      SpecBuilder("opt", s).optimize(4).build(),
      SpecBuilder("cal", s).calibrate({4, 2.0}).build(),
  });
  ASSERT_TRUE(campaign.experiments[2].calibration.has_value());

  const std::string path = ::testing::TempDir() + "zc_campaign_test.csv";
  ASSERT_TRUE(engine::write_campaign_csv(campaign, path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::remove(path.c_str());

  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines[0],
            "spec,mode,estimator,n,r,mean_cost,error_probability,trials,"
            "completed,aborted");
  // 4 grid cells + 1 optimum + 1 calibration.
  EXPECT_EQ(lines.size(), 1u + 4u + 1u + 1u);
  EXPECT_EQ(lines[1].substr(0, 5), "grid,");
  EXPECT_NE(lines[5].find("opt,optimize,"), std::string::npos);
  EXPECT_NE(lines[6].find("cal,calibrate,"), std::string::npos);
}

}  // namespace
