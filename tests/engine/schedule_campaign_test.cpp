/// Schedule cells in the engine: evaluate/Monte-Carlo campaigns with
/// per-probe schedules, report-JSON round-trips through the journal,
/// resume-digest sensitivity to every schedule knob, and kill-and-resume
/// byte identity at 1 and 8 worker threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/spec.hpp"
#include "obs/json.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignResult;
using engine::CampaignRunner;
using engine::CellResult;
using engine::Estimator;
using engine::ExperimentResult;
using engine::ExperimentSpec;
using engine::SpecBuilder;

core::ScenarioParams scenario() {
  return core::scenarios::figure2().to_params();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(ScheduleCells, EvaluateAppendsScheduleCellsAfterTheGrid) {
  const core::ScenarioParams s = scenario();
  const core::ProbeSchedule geo = core::ProbeSchedule::geometric(4, 1.0, 0.5);
  CampaignRunner runner;
  const ExperimentResult result =
      runner.run_one(SpecBuilder("mixed", s)
                         .protocol_grid({2, 4}, {0.5, 2.0})
                         .schedule(geo)
                         .build());
  ASSERT_EQ(result.cells.size(), 5u);  // 4 grid cells + 1 schedule cell
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FALSE(result.cells[i].has_schedule) << i;
  const CellResult& cell = result.cells[4];
  ASSERT_TRUE(cell.has_schedule);
  EXPECT_EQ(cell.schedule, geo);
  EXPECT_EQ(cell.protocol.n, 4u);
  EXPECT_DOUBLE_EQ(cell.protocol.r, 1.0);  // r_1
  EXPECT_EQ(cell.mean_cost, core::mean_cost(s, geo));
  EXPECT_EQ(cell.error_probability, core::error_probability(s, geo));
}

TEST(ScheduleCells, UniformScheduleCellEqualsGridPointBitwise) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  const ExperimentResult result =
      runner.run_one(SpecBuilder("uniform-pair", s)
                         .protocol({3, 0.8})
                         .schedule(core::ProbeSchedule::uniform(3, 0.8))
                         .detailed()
                         .build());
  ASSERT_EQ(result.cells.size(), 2u);
  const CellResult& grid = result.cells[0];
  const CellResult& sched = result.cells[1];
  EXPECT_EQ(sched.mean_cost, grid.mean_cost);
  EXPECT_EQ(sched.error_probability, grid.error_probability);
  EXPECT_EQ(sched.cost_stddev, grid.cost_stddev);
  EXPECT_EQ(sched.mean_waiting_time, grid.mean_waiting_time);
  EXPECT_EQ(sched.mean_attempts, grid.mean_attempts);
}

TEST(ScheduleCells, MonteCarloScheduleCellsRunAfterTheGrid) {
  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  CampaignRunner runner;
  const ExperimentResult result = runner.run_one(
      SpecBuilder("mc-sched", s)
          .protocol({3, 0.5})
          .schedule(core::ProbeSchedule::from_timeouts({0.5, 0.25, 0.125}))
          .estimator(Estimator::monte_carlo)
          .network(100, 30)
          .trials(200)
          .seed(17)
          .build());
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_FALSE(result.cells[0].has_schedule);
  ASSERT_TRUE(result.cells[1].has_schedule);
  EXPECT_TRUE(result.cells[1].from_simulation);
  EXPECT_EQ(result.cells[1].trials, 200u);
  EXPECT_GT(result.cells[1].mean_cost, 0.0);
}

TEST(ScheduleCells, ReportJsonRoundTripsThroughTheJournalByteExactly) {
  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  CampaignRunner runner;
  for (const ExperimentSpec& spec :
       {SpecBuilder("eval-sched", scenario())
            .schedule(core::ProbeSchedule::geometric(4, 1.0, 0.5))
            .schedule(core::ProbeSchedule::linear(3, 0.2, 0.1))
            .schedule(core::ProbeSchedule::from_timeouts({0.7, 0.3}))
            .schedule(core::ProbeSchedule::uniform(4, 2.0))
            .detailed()
            .build(),
        SpecBuilder("mc-sched", s)
            .schedule(core::ProbeSchedule::geometric(3, 0.4, 0.5))
            .estimator(Estimator::monte_carlo)
            .network(100, 30)
            .trials(100)
            .seed(5)
            .build()}) {
    const ExperimentResult original = runner.run_one(spec);
    const auto reparsed =
        obs::parse_json(engine::journal_record(0, original).dump_compact());
    ASSERT_TRUE(reparsed.has_value()) << spec.name;
    const ExperimentResult restored = engine::result_from_journal(*reparsed);
    EXPECT_EQ(restored.to_json().dump(), original.to_json().dump())
        << spec.name;
    // The restored schedule regenerates the identical timeout doubles.
    for (std::size_t i = 0; i < original.cells.size(); ++i) {
      ASSERT_TRUE(restored.cells[i].has_schedule);
      EXPECT_EQ(restored.cells[i].schedule, original.cells[i].schedule);
    }
  }
}

TEST(ScheduleDigest, SensitiveToEveryScheduleKnob) {
  const core::ScenarioParams s = scenario();
  const auto build = [&s](core::ProbeSchedule sched) {
    return std::vector<ExperimentSpec>{
        SpecBuilder("sched", s).schedule(std::move(sched)).build()};
  };
  const auto base = build(core::ProbeSchedule::geometric(4, 1.0, 0.5));
  const std::string digest = engine::spec_list_digest(base);

  // Generator parameters.
  EXPECT_NE(engine::spec_list_digest(
                build(core::ProbeSchedule::geometric(4, 1.0, 0.5000000001))),
            digest);
  EXPECT_NE(engine::spec_list_digest(
                build(core::ProbeSchedule::geometric(4, 1.0000000001, 0.5))),
            digest);
  EXPECT_NE(engine::spec_list_digest(
                build(core::ProbeSchedule::geometric(5, 1.0, 0.5))),
            digest);
  // A custom vector with the same timeouts is a different recipe.
  EXPECT_NE(engine::spec_list_digest(build(core::ProbeSchedule::from_timeouts(
                core::ProbeSchedule::geometric(4, 1.0, 0.5).to_vector()))),
            digest);
  // One timeout of a custom schedule, by one ulp.
  const auto custom = build(core::ProbeSchedule::from_timeouts({0.5, 2.0}));
  const std::string custom_digest = engine::spec_list_digest(custom);
  EXPECT_NE(engine::spec_list_digest(build(core::ProbeSchedule::from_timeouts(
                {0.5, 2.0000000000000004}))),
            custom_digest);
  // Appending a schedule to an existing spec changes the digest.
  auto extended = base;
  extended[0].schedules.push_back(core::ProbeSchedule::uniform(4, 2.0));
  EXPECT_NE(engine::spec_list_digest(extended), digest);
  // Schedule-free spec lists are unaffected by the schedule section.
  const std::vector<ExperimentSpec> plain{
      SpecBuilder("plain", s).protocol({2, 1.0}).build()};
  EXPECT_EQ(engine::spec_list_digest(plain), engine::spec_list_digest(plain));
}

/// A schedule-heavy Monte-Carlo campaign, rebuilt fresh per call the way
/// a resuming process would.
std::vector<ExperimentSpec> schedule_campaign() {
  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  std::vector<ExperimentSpec> specs;
  for (unsigned i = 0; i < 12; ++i) {
    SpecBuilder builder("sched-" + std::to_string(i), s);
    builder.protocol({2 + i % 3, 0.25 + 0.25 * (i % 2)});
    switch (i % 3) {
      case 0:
        builder.schedule(
            core::ProbeSchedule::geometric(3, 0.5 + 0.1 * i, 0.5));
        break;
      case 1:
        builder.schedule(core::ProbeSchedule::linear(3, 0.2, 0.05 * i));
        break;
      default:
        builder.schedule(core::ProbeSchedule::from_timeouts(
            {0.5, 0.25 + 0.01 * i, 0.75}));
        break;
    }
    specs.push_back(builder.estimator(Estimator::monte_carlo)
                        .network(100, 30)
                        .trials(50)
                        .seed(2000 + i)
                        .build());
  }
  return specs;
}

struct Artifacts {
  std::string report;
  std::string csv;
};

Artifacts artifacts_of(const CampaignResult& campaign) {
  Artifacts out;
  out.report =
      campaign.report("sched-golden", "schedule resume").to_json().dump();
  const std::string csv_path = temp_path("zc_sched_resume.csv");
  EXPECT_TRUE(engine::write_campaign_csv(campaign, csv_path));
  out.csv = slurp(csv_path);
  std::remove(csv_path.c_str());
  return out;
}

TEST(ScheduleResume, KilledScheduleCampaignResumesByteIdentically) {
  const std::string journal = temp_path("zc_sched_resume.jsonl");

  CampaignOptions golden_opts;
  golden_opts.threads = 1;
  golden_opts.journal_path = journal;
  CampaignRunner golden_runner(golden_opts);
  const Artifacts golden =
      artifacts_of(golden_runner.run(schedule_campaign()));
  const std::string full_journal = slurp(journal);

  // Keep the header plus the first 5 records — a crash lost the rest.
  std::size_t offset = full_journal.find('\n') + 1;
  for (int i = 0; i < 5; ++i) offset = full_journal.find('\n', offset) + 1;

  for (const unsigned threads : {1u, 8u}) {
    spit(journal, full_journal.substr(0, offset));
    CampaignOptions opts;
    opts.threads = threads;
    CampaignRunner runner(opts);
    const CampaignResult resumed =
        runner.resume(schedule_campaign(), journal);
    EXPECT_TRUE(resumed.complete) << threads;
    const Artifacts replayed = artifacts_of(resumed);
    EXPECT_EQ(replayed.report, golden.report) << threads;
    EXPECT_EQ(replayed.csv, golden.csv) << threads;
  }

  // A stale journal — one schedule timeout nudged by an ulp — is refused.
  spit(journal, full_journal.substr(0, offset));
  std::vector<ExperimentSpec> nudged = schedule_campaign();
  std::vector<double> timeouts = nudged[2].schedules[0].to_vector();
  timeouts[0] = std::nextafter(timeouts[0], 2.0);
  nudged[2].schedules[0] = core::ProbeSchedule::from_timeouts(timeouts);
  CampaignRunner resumer;
  EXPECT_THROW((void)resumer.resume(nudged, journal), zc::ContractViolation);
  std::remove(journal.c_str());
}

TEST(ScheduleSpec, ValidateRejectsMalformedScheduleCells) {
  const core::ScenarioParams s = scenario();
  ExperimentSpec spec =
      SpecBuilder("bad", s).schedule(core::ProbeSchedule::uniform(4, 2.0))
          .build();
  spec.schedules[0] = core::ProbeSchedule::uniform(4, 0.0);  // strict: r > 0
  EXPECT_THROW(spec.validate(), zc::ContractViolation);
  spec.schedules[0] = core::ProbeSchedule::from_timeouts({1.0, -1.0});
  EXPECT_THROW(spec.validate(), zc::ContractViolation);
}

}  // namespace
