/// Campaign journal: spec-list digest semantics, record round-trip byte
/// identity, JSONL read/write, torn-tail tolerance, and corruption
/// rejection.

#include "engine/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "engine/spec.hpp"
#include "faults/schedule.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;
using engine::CampaignRunner;
using engine::Estimator;
using engine::ExperimentResult;
using engine::ExperimentSpec;
using engine::JournalContents;
using engine::JournalWriter;
using engine::SpecBuilder;

core::ScenarioParams scenario() {
  return core::scenarios::figure2().to_params();
}

std::vector<ExperimentSpec> small_specs(const core::ScenarioParams& s) {
  return {
      SpecBuilder("grid", s).protocol_grid({1, 2}, {0.5, 2.0}).build(),
      SpecBuilder("opt", s).optimize(4).build(),
  };
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SpecDigest, StableAndSixteenHexDigits) {
  const core::ScenarioParams s = scenario();
  const auto specs = small_specs(s);
  const std::string digest = engine::spec_list_digest(specs);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(digest, engine::spec_list_digest(specs));
}

TEST(SpecDigest, SensitiveToEveryBehaviouralField) {
  const core::ScenarioParams s = scenario();
  const auto base = small_specs(s);
  const std::string digest = engine::spec_list_digest(base);

  {  // Name change.
    auto specs = base;
    specs[0].name = "renamed";
    EXPECT_NE(engine::spec_list_digest(specs), digest);
  }
  {  // Grid change (one r bit pattern).
    auto specs = base;
    specs[0].grid[1].r = 2.0000000000000004;  // next representable double
    EXPECT_NE(engine::spec_list_digest(specs), digest);
  }
  {  // Optimizer bound change.
    auto specs = base;
    specs[1].n_max = 5;
    EXPECT_NE(engine::spec_list_digest(specs), digest);
  }
  {  // Simulation seed change (affects MC bytes).
    auto specs = base;
    specs[0].sim.seed ^= 1;
    EXPECT_NE(engine::spec_list_digest(specs), digest);
  }
  {  // Fault schedule change.
    auto specs = base;
    specs[0].sim.faults.duplication.probability = 0.25;
    EXPECT_NE(engine::spec_list_digest(specs), digest);
  }
  {  // Spec order matters.
    auto specs = base;
    std::swap(specs[0], specs[1]);
    EXPECT_NE(engine::spec_list_digest(specs), digest);
  }
}

TEST(SpecDigest, SeesDistributionSharingStructure) {
  // Cache hit/miss totals depend on which specs share one distribution
  // object, so the digest must distinguish "two specs, one F_X" from
  // "two specs, two equal F_X objects".
  const core::ScenarioParams shared = scenario();
  const std::vector<ExperimentSpec> one_dist{
      SpecBuilder("a", shared).protocol({2, 1.0}).build(),
      SpecBuilder("b", shared).protocol({2, 2.0}).build(),
  };
  const std::vector<ExperimentSpec> two_dists{
      SpecBuilder("a", scenario()).protocol({2, 1.0}).build(),
      SpecBuilder("b", scenario()).protocol({2, 2.0}).build(),
  };
  EXPECT_NE(engine::spec_list_digest(one_dist),
            engine::spec_list_digest(two_dists));
}

TEST(SpecDigest, EqualStructureFromFreshObjectsMatches) {
  // A resuming process rebuilds its spec list from scratch: distribution
  // *pointer values* differ, but fingerprint + sharing structure agree,
  // so the digest must too.
  const auto build = [] {
    const core::ScenarioParams s(0.3, 2.0, 1000.0,
                                 prob::paper_reply_delay(0.1, 10.0, 0.05));
    return std::vector<ExperimentSpec>{
        SpecBuilder("a", s).protocol({2, 1.0}).build(),
        SpecBuilder("b", s).protocol({2, 2.0}).build(),
    };
  };
  EXPECT_EQ(engine::spec_list_digest(build()),
            engine::spec_list_digest(build()));
}

TEST(JournalRecord, RoundTripsResultBytesExactly) {
  // Rich result: Monte-Carlo with faults (simulation block + semantic
  // metrics with histograms) — the round-trip contract is byte equality
  // of the re-serialized result and metrics.
  faults::FaultSchedule faults;
  faults.duplication.probability = 0.1;
  faults.reordering.probability = 0.2;
  faults.reordering.max_jitter = 0.05;
  faults.validate();
  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  CampaignRunner runner;
  const ExperimentResult original =
      runner.run_one(SpecBuilder("mc", s)
                         .protocol({3, 0.5})
                         .estimator(Estimator::monte_carlo)
                         .network(100, 30)
                         .faults(faults)
                         .trials(200)
                         .seed(11)
                         .build());

  const obs::JsonValue record = engine::journal_record(7, original);
  // The record survives its own serialization (JSONL line discipline).
  const auto reparsed = obs::parse_json(record.dump_compact());
  ASSERT_TRUE(reparsed.has_value());
  const ExperimentResult restored = engine::result_from_journal(*reparsed);

  EXPECT_EQ(restored.to_json().dump(), original.to_json().dump());
  EXPECT_EQ(obs::metrics_to_json(restored.metrics).dump(),
            obs::metrics_to_json(original.metrics).dump());
}

TEST(JournalRecord, RoundTripsOptimizeAndCalibrate) {
  const core::ScenarioParams s = scenario();
  CampaignRunner runner;
  for (const ExperimentSpec& spec :
       {SpecBuilder("opt", s).optimize(6).build(),
        SpecBuilder("cal", s).calibrate({4, 2.0}).build(),
        SpecBuilder("grid", s).protocol_grid({1, 3}, {0.5, 1.0}).detailed()
            .build()}) {
    const ExperimentResult original = runner.run_one(spec);
    const auto reparsed =
        obs::parse_json(engine::journal_record(0, original).dump_compact());
    ASSERT_TRUE(reparsed.has_value()) << spec.name;
    const ExperimentResult restored = engine::result_from_journal(*reparsed);
    EXPECT_EQ(restored.to_json().dump(), original.to_json().dump())
        << spec.name;
  }
}

TEST(JournalRecord, RejectsSchemaViolations) {
  auto record = obs::JsonValue::object();
  record["chunk"] = obs::JsonValue(0);
  // Missing name/result/metrics.
  EXPECT_THROW((void)engine::result_from_journal(record),
               zc::ContractViolation);
}

TEST(JournalFile, WriterThenReaderRoundTrips) {
  const core::ScenarioParams s = scenario();
  const auto specs = small_specs(s);
  CampaignRunner runner;
  const ExperimentResult r0 = runner.run_one(specs[0]);
  const ExperimentResult r1 = runner.run_one(specs[1]);

  const std::string path = temp_path("zc_journal_roundtrip.jsonl");
  {
    JournalWriter writer = JournalWriter::create(path, specs);
    ASSERT_TRUE(writer.ok());
    writer.append(0, r0);
    writer.append(1, r1);
    ASSERT_TRUE(writer.ok());
  }

  const JournalContents contents = engine::read_journal(path);
  EXPECT_EQ(contents.digest, engine::spec_list_digest(specs));
  EXPECT_EQ(contents.specs, specs.size());
  EXPECT_EQ(contents.dropped_bytes, 0u);
  ASSERT_EQ(contents.completed.size(), 2u);
  EXPECT_EQ(contents.completed.at(0).to_json().dump(), r0.to_json().dump());
  EXPECT_EQ(contents.completed.at(1).to_json().dump(), r1.to_json().dump());
  std::remove(path.c_str());
}

TEST(JournalFile, TornFinalLineIsDroppedNotFatal) {
  const core::ScenarioParams s = scenario();
  const auto specs = small_specs(s);
  CampaignRunner runner;
  const ExperimentResult r0 = runner.run_one(specs[0]);
  const ExperimentResult r1 = runner.run_one(specs[1]);

  const std::string path = temp_path("zc_journal_torn.jsonl");
  {
    JournalWriter writer = JournalWriter::create(path, specs);
    writer.append(0, r0);
    writer.append(1, r1);
  }
  const std::string full = slurp(path);

  // Chop the last record mid-line: the torn tail must be dropped and the
  // prefix reported intact.
  const std::size_t second_line_end = full.find('\n', full.find('\n') + 1);
  ASSERT_NE(second_line_end, std::string::npos);
  const std::string truncated = full.substr(0, second_line_end + 1 + 25);
  spit(path, truncated);

  const JournalContents contents = engine::read_journal(path);
  EXPECT_EQ(contents.valid_bytes, second_line_end + 1);
  EXPECT_EQ(contents.dropped_bytes, truncated.size() - (second_line_end + 1));
  ASSERT_EQ(contents.completed.size(), 1u);
  EXPECT_EQ(contents.completed.at(0).to_json().dump(), r0.to_json().dump());
  std::remove(path.c_str());
}

TEST(JournalFile, ReopenTruncatesTornTailAndKeepsAppending) {
  const core::ScenarioParams s = scenario();
  const auto specs = small_specs(s);
  CampaignRunner runner;
  const ExperimentResult r0 = runner.run_one(specs[0]);
  const ExperimentResult r1 = runner.run_one(specs[1]);

  const std::string path = temp_path("zc_journal_reopen.jsonl");
  {
    JournalWriter writer = JournalWriter::create(path, specs);
    writer.append(0, r0);
  }
  // Simulate a crash mid-append of the next record.
  spit(path, slurp(path) + "{\"chunk\":1,\"nam");

  const JournalContents before = engine::read_journal(path);
  ASSERT_GT(before.dropped_bytes, 0u);
  {
    JournalWriter writer = JournalWriter::reopen(path, before.valid_bytes);
    ASSERT_TRUE(writer.ok());
    writer.append(1, r1);
  }
  const JournalContents after = engine::read_journal(path);
  EXPECT_EQ(after.dropped_bytes, 0u);
  ASSERT_EQ(after.completed.size(), 2u);
  EXPECT_EQ(after.completed.at(1).to_json().dump(), r1.to_json().dump());
  std::remove(path.c_str());
}

TEST(JournalFile, RejectsMissingFileAndMalformedHeaders) {
  EXPECT_THROW((void)engine::read_journal(temp_path("zc_journal_nope.jsonl")),
               zc::ContractViolation);

  const std::string path = temp_path("zc_journal_badheader.jsonl");
  // Wrong schema string.
  spit(path,
       "{\"schema\":\"not-a-journal\",\"version\":1,"
       "\"digest\":\"0123456789abcdef\",\"specs\":2}\n");
  EXPECT_THROW((void)engine::read_journal(path), zc::ContractViolation);
  // Unsupported version.
  spit(path,
       "{\"schema\":\"zcopt-campaign-journal\",\"version\":2,"
       "\"digest\":\"0123456789abcdef\",\"specs\":2}\n");
  EXPECT_THROW((void)engine::read_journal(path), zc::ContractViolation);
  // Header is not even JSON — and is *terminated*, so this is corruption,
  // not a torn tail.
  spit(path, "garbage\n");
  EXPECT_THROW((void)engine::read_journal(path), zc::ContractViolation);
  std::remove(path.c_str());
}

TEST(JournalFile, RejectsCorruptionBeforeTheFinalLine) {
  const core::ScenarioParams s = scenario();
  const auto specs = small_specs(s);
  CampaignRunner runner;
  const ExperimentResult r0 = runner.run_one(specs[0]);
  const ExperimentResult r1 = runner.run_one(specs[1]);

  const std::string path = temp_path("zc_journal_corrupt.jsonl");
  {
    JournalWriter writer = JournalWriter::create(path, specs);
    writer.append(0, r0);
    writer.append(1, r1);
  }
  std::string bytes = slurp(path);
  // Flip a byte inside the *first* record (a non-final line): that is
  // corruption, not an interrupted append.
  const std::size_t first_record = bytes.find('\n') + 1;
  bytes[first_record + 2] = '#';
  spit(path, bytes);
  EXPECT_THROW((void)engine::read_journal(path), zc::ContractViolation);
  std::remove(path.c_str());
}

TEST(JournalFile, RejectsDuplicateAndOutOfRangeChunks) {
  const core::ScenarioParams s = scenario();
  const auto specs = small_specs(s);
  CampaignRunner runner;
  const ExperimentResult r0 = runner.run_one(specs[0]);

  const std::string path = temp_path("zc_journal_dupes.jsonl");
  {
    JournalWriter writer = JournalWriter::create(path, specs);
    writer.append(0, r0);
    writer.append(0, r0);  // duplicate chunk
  }
  EXPECT_THROW((void)engine::read_journal(path), zc::ContractViolation);
  {
    JournalWriter writer = JournalWriter::create(path, specs);
    writer.append(5, r0);  // chunk >= header spec count
  }
  EXPECT_THROW((void)engine::read_journal(path), zc::ContractViolation);
  std::remove(path.c_str());
}

}  // namespace
