#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "prob/families.hpp"
#include "sim/medium.hpp"
#include "sim/trace.hpp"

namespace {

using namespace zc::faults;
using namespace zc::sim;

/// Medium + trace + one subscribed receiver, ready for fault injection.
struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{7};
  Medium medium{sim, {}, rng};
  TraceLog trace;
  HostId sender = 0;
  HostId receiver = 0;
  int received = 0;

  Fixture() {
    trace.attach(medium);
    sender = medium.attach([](const Packet&) {});
    receiver = medium.attach([this](const Packet&) { ++received; });
    medium.subscribe(receiver, 5);
  }

  void broadcast_at(double t) {
    sim.schedule_at(t, [this] { medium.broadcast(ArpProbe{5, sender}); });
  }
};

TEST(FaultInjection, BlackoutWindowDropsAllDeliveriesWithCause) {
  FaultSchedule schedule;
  schedule.blackout.windows.start = 1.0;
  schedule.blackout.windows.duration = 2.0;
  FaultInjector injector(schedule, 42);

  Fixture f;
  f.medium.set_fault_model(&injector);
  f.broadcast_at(0.5);  // before the window: delivered
  f.broadcast_at(1.5);  // inside: dropped
  f.broadcast_at(2.9);  // inside: dropped
  f.broadcast_at(3.5);  // after: delivered
  f.sim.run();

  EXPECT_EQ(f.received, 2);
  EXPECT_EQ(f.trace.count(DeliveryCause::blackout), 2u);
  EXPECT_EQ(f.trace.losses(), 2u);
  EXPECT_EQ(f.medium.packets_faulted(), 2u);
}

TEST(FaultInjection, LinkFlapRepeatsEveryPeriod) {
  FaultSchedule schedule;
  schedule.blackout.windows.duration = 1.0;
  schedule.blackout.windows.period = 4.0;  // down 25% of the time
  FaultInjector injector(schedule, 42);

  Fixture f;
  f.medium.set_fault_model(&injector);
  // Down windows: [0,1), [4,5), [8,9) ...
  f.broadcast_at(0.5);
  f.broadcast_at(2.0);
  f.broadcast_at(4.5);
  f.broadcast_at(6.0);
  f.broadcast_at(8.5);
  f.sim.run();

  EXPECT_EQ(f.received, 2);
  EXPECT_EQ(f.trace.count(DeliveryCause::blackout), 3u);
}

TEST(FaultInjection, DuplicationDeliversExtraCopies) {
  FaultSchedule schedule;
  schedule.duplication.probability = 1.0;
  schedule.duplication.copies = 3;
  FaultInjector injector(schedule, 42);

  Fixture f;
  f.medium.set_fault_model(&injector);
  f.broadcast_at(0.0);
  f.sim.run();

  EXPECT_EQ(f.received, 3);
  EXPECT_EQ(f.trace.count(DeliveryCause::duplicate), 2u);
  EXPECT_EQ(f.medium.packets_sent(), 1u);        // one logical delivery
  EXPECT_EQ(f.medium.packets_duplicated(), 2u);  // two injected copies
}

TEST(FaultInjection, ReorderingJitterIsBounded) {
  FaultSchedule schedule;
  schedule.reordering.probability = 1.0;
  schedule.reordering.max_jitter = 0.4;
  FaultInjector injector(schedule, 42);

  Fixture f;
  f.medium.set_fault_model(&injector);
  for (int i = 0; i < 20; ++i) f.broadcast_at(static_cast<double>(i));
  f.sim.run();

  EXPECT_EQ(f.received, 20);
  EXPECT_EQ(f.trace.count(DeliveryCause::reordered), 20u);
  for (const auto& record : f.trace.records()) {
    const double jitter = record.delivered_at - record.sent_at;
    EXPECT_GE(jitter, 0.0);
    EXPECT_LT(jitter, 0.4);
  }
}

TEST(FaultInjection, DelaySpikeAddsExtraTransitDelayInsideWindow) {
  FaultSchedule schedule;
  schedule.delay_spike.windows.start = 10.0;
  schedule.delay_spike.windows.duration = 5.0;
  schedule.delay_spike.extra = 1.5;
  FaultInjector injector(schedule, 42);

  Fixture f;
  f.medium.set_fault_model(&injector);
  f.broadcast_at(1.0);   // outside: instantaneous
  f.broadcast_at(12.0);  // inside: +1.5 s
  f.sim.run();

  ASSERT_EQ(f.trace.size(), 2u);
  EXPECT_DOUBLE_EQ(f.trace.records()[0].delivered_at, 1.0);
  EXPECT_DOUBLE_EQ(f.trace.records()[1].delivered_at, 13.5);
  EXPECT_EQ(f.received, 2);
}

TEST(FaultInjection, PermanentChurnSilencesAffectedHosts) {
  FaultSchedule schedule;
  schedule.host_churn.deaf_fraction = 1.0;  // everyone
  FaultInjector injector(schedule, 42);

  Fixture f;
  f.medium.set_fault_model(&injector);
  f.broadcast_at(0.0);
  f.broadcast_at(7.0);
  f.sim.run();

  EXPECT_EQ(f.received, 0);
  EXPECT_EQ(f.trace.count(DeliveryCause::target_deaf), 2u);
}

TEST(FaultInjection, ChurnSelectsDeterministicHostSubset) {
  FaultSchedule schedule;
  schedule.host_churn.deaf_fraction = 0.5;
  FaultInjector a(schedule, 1234);
  FaultInjector b(schedule, 1234);

  int deaf = 0;
  for (HostId h = 0; h < 1000; ++h) {
    EXPECT_EQ(a.host_deaf_at(h, 3.0), b.host_deaf_at(h, 3.0));
    if (a.host_deaf_at(h, 3.0)) ++deaf;
  }
  // Seeded hash selection: close to the requested fraction.
  EXPECT_NEAR(deaf, 500, 60);
}

TEST(FaultInjection, PeriodicChurnFlapsHostsInAndOut) {
  FaultSchedule schedule;
  schedule.host_churn.deaf_fraction = 1.0;
  schedule.host_churn.period = 4.0;
  schedule.host_churn.deaf_duration = 2.0;
  FaultInjector injector(schedule, 99);

  // Every host is deaf exactly half of each cycle (phase per host).
  for (HostId h = 0; h < 8; ++h) {
    int deaf_samples = 0;
    const int samples = 400;
    for (int i = 0; i < samples; ++i) {
      const double t = i * 0.04;  // 4 full period-4 cycles at 0.04 s steps
      if (injector.host_deaf_at(h, t)) ++deaf_samples;
    }
    EXPECT_NEAR(static_cast<double>(deaf_samples) / samples, 0.5, 0.1)
        << "host " << h;
  }
}

TEST(FaultInjection, GilbertElliottLongRunLossMatchesStationaryProbability) {
  // Statistical check: the empirical per-delivery drop rate of the
  // two-state chain converges to loss_good*pi_good + loss_bad*pi_bad.
  FaultSchedule schedule;
  schedule.gilbert_elliott.p_enter_burst = 0.02;
  schedule.gilbert_elliott.p_exit_burst = 0.08;
  schedule.gilbert_elliott.loss_good = 0.0;
  schedule.gilbert_elliott.loss_bad = 1.0;
  FaultInjector injector(schedule, 2026);

  const int n = 200000;
  int drops = 0;
  for (int i = 0; i < n; ++i) {
    const FaultDecision d = injector.on_delivery({0.0, 0, 1});
    if (d.drop) {
      EXPECT_EQ(d.cause, DeliveryCause::burst_loss);
      ++drops;
    }
  }
  const double expected = schedule.gilbert_elliott.long_run_loss();
  EXPECT_NEAR(expected, 0.2, 1e-12);
  // Autocorrelated chain: mixing time ~ 1/(p_enter+p_exit) = 10, so the
  // variance of the mean is ~20x the i.i.d. value; +-0.015 is ~4 sigma.
  EXPECT_NEAR(static_cast<double>(drops) / n, expected, 0.015);
}

TEST(FaultInjection, GilbertElliottBurstsAreBursty) {
  // Consecutive-drop runs must be far longer than under i.i.d. loss of
  // the same rate: that is the whole point of the correlated channel.
  FaultSchedule schedule;
  schedule.gilbert_elliott.p_enter_burst = 0.02;
  schedule.gilbert_elliott.p_exit_burst = 0.08;
  schedule.gilbert_elliott.loss_bad = 1.0;
  FaultInjector injector(schedule, 7);

  const int n = 100000;
  int drops = 0, runs = 0;
  bool in_run = false;
  for (int i = 0; i < n; ++i) {
    const bool drop = injector.on_delivery({0.0, 0, 1}).drop;
    drops += drop ? 1 : 0;
    if (drop && !in_run) ++runs;
    in_run = drop;
  }
  ASSERT_GT(runs, 0);
  const double mean_burst = static_cast<double>(drops) / runs;
  // Geometric(p_exit) burst length: mean 1/0.08 = 12.5. An i.i.d. channel
  // at the same loss rate would give mean run length ~1/(1-0.2) = 1.25.
  EXPECT_GT(mean_burst, 6.0);
  EXPECT_LT(mean_burst, 25.0);
}

TEST(FaultInjection, SameSeedSameDecisionStream) {
  FaultSchedule schedule;
  schedule.gilbert_elliott.p_enter_burst = 0.05;
  schedule.gilbert_elliott.p_exit_burst = 0.2;
  schedule.duplication.probability = 0.3;
  schedule.reordering.probability = 0.4;
  schedule.reordering.max_jitter = 0.5;
  FaultInjector a(schedule, 555);
  FaultInjector b(schedule, 555);

  for (int i = 0; i < 5000; ++i) {
    const FaultContext ctx{static_cast<double>(i) * 0.01, 0,
                           static_cast<HostId>(i % 7)};
    const FaultDecision da = a.on_delivery(ctx);
    const FaultDecision db = b.on_delivery(ctx);
    ASSERT_EQ(da.drop, db.drop);
    ASSERT_EQ(da.cause, db.cause);
    ASSERT_EQ(da.copies, db.copies);
    ASSERT_EQ(da.reordered, db.reordered);
    for (unsigned c = 0; c < da.copies; ++c)
      ASSERT_EQ(da.extra_delay[c], db.extra_delay[c]);
  }
}

TEST(FaultInjection, InvalidScheduleRejectedAtConstruction) {
  FaultSchedule schedule;
  schedule.gilbert_elliott.p_enter_burst = -0.1;
  EXPECT_THROW(FaultInjector(schedule, 1), zc::ContractViolation);
}

TEST(FaultInjection, FaultFreeMainStreamUnchangedByFaultDrops) {
  // A faulted delivery must not consume draws from the medium's own RNG:
  // the delivered packets of a blackout run line up with the same run
  // minus the blacked-out sends.
  FaultSchedule schedule;
  schedule.blackout.windows.start = 1.0;
  schedule.blackout.windows.duration = 1.0;
  FaultInjector injector(schedule, 3);

  const auto delivery_times = [&](bool with_faults, bool skip_window) {
    Simulator sim;
    zc::prob::Rng rng(11);
    MediumConfig config;
    config.transit_delay =
        std::make_shared<const zc::prob::Exponential>(10.0);
    Medium medium(sim, config, rng);
    TraceLog trace;
    trace.attach(medium);
    const HostId sender = medium.attach([](const Packet&) {});
    const HostId receiver = medium.attach([](const Packet&) {});
    medium.subscribe(receiver, 5);
    if (with_faults) medium.set_fault_model(&injector);
    for (int i = 0; i < 6; ++i) {
      const double t = i * 0.5;
      if (skip_window && t >= 1.0 && t < 2.0) continue;
      sim.schedule_at(t, [&medium, sender] {
        medium.broadcast(ArpProbe{5, sender});
      });
    }
    sim.run();
    std::vector<double> delivered;
    for (const auto& r : trace.records())
      if (!r.lost) delivered.push_back(r.delivered_at);
    return delivered;
  };

  const auto faulted = delivery_times(true, false);
  const auto clean = delivery_times(false, true);
  ASSERT_EQ(faulted.size(), clean.size());
  for (std::size_t i = 0; i < faulted.size(); ++i)
    EXPECT_DOUBLE_EQ(faulted[i], clean[i]);
}

}  // namespace
