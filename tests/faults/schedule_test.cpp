#include "faults/schedule.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/contract.hpp"

namespace {

using namespace zc::faults;

// --- TimeWindows ----------------------------------------------------------

TEST(TimeWindows, DisabledWindowContainsNothing) {
  TimeWindows w;
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.contains(0.0));
  EXPECT_FALSE(w.contains(100.0));
}

TEST(TimeWindows, OneShotWindowIsHalfOpen) {
  TimeWindows w;
  w.start = 2.0;
  w.duration = 1.0;
  EXPECT_FALSE(w.contains(1.999));
  EXPECT_TRUE(w.contains(2.0));
  EXPECT_TRUE(w.contains(2.999));
  EXPECT_FALSE(w.contains(3.0));
  EXPECT_FALSE(w.contains(50.0));
}

TEST(TimeWindows, PeriodicWindowRepeats) {
  TimeWindows w;
  w.start = 1.0;
  w.duration = 0.5;
  w.period = 2.0;
  for (int k = 0; k < 5; ++k) {
    const double base = 1.0 + 2.0 * k;
    EXPECT_TRUE(w.contains(base + 0.25)) << "cycle " << k;
    EXPECT_FALSE(w.contains(base + 0.75)) << "cycle " << k;
  }
  EXPECT_FALSE(w.contains(0.5));  // before the first window
}

TEST(TimeWindows, DutyCycleOfPeriodicWindow) {
  TimeWindows w;
  w.duration = 1.0;
  w.period = 5.0;
  EXPECT_DOUBLE_EQ(w.duty_cycle(), 0.2);
}

// --- Gilbert-Elliott derived quantities -----------------------------------

TEST(GilbertElliott, StationaryBadProbability) {
  GilbertElliott ge;
  ge.p_enter_burst = 0.02;
  ge.p_exit_burst = 0.08;
  EXPECT_NEAR(ge.stationary_bad(), 0.2, 1e-12);
}

TEST(GilbertElliott, LongRunLossMixesStateLosses) {
  GilbertElliott ge;
  ge.p_enter_burst = 0.02;
  ge.p_exit_burst = 0.08;
  ge.loss_good = 0.1;
  ge.loss_bad = 0.9;
  // 0.8 * 0.1 + 0.2 * 0.9
  EXPECT_NEAR(ge.long_run_loss(), 0.26, 1e-12);
}

// --- Validation (ZC_REQUIRE, naming the bad field) ------------------------

TEST(FaultScheduleValidate, EmptyScheduleIsValid) {
  FaultSchedule schedule;
  EXPECT_FALSE(schedule.any());
  EXPECT_NO_THROW(schedule.validate());
}

TEST(FaultScheduleValidate, RejectsOutOfRangeGilbertElliott) {
  FaultSchedule schedule;
  schedule.gilbert_elliott.p_enter_burst = 1.5;
  try {
    schedule.validate();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("GilbertElliott.p_enter_burst"),
              std::string::npos);
  }
}

TEST(FaultScheduleValidate, RejectsWindowPeriodShorterThanDuration) {
  FaultSchedule schedule;
  schedule.blackout.windows.duration = 2.0;
  schedule.blackout.windows.period = 1.0;
  try {
    schedule.validate();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Blackout.windows.period"),
              std::string::npos);
  }
}

TEST(FaultScheduleValidate, RejectsSubUnitDelayMultiplier) {
  FaultSchedule schedule;
  schedule.delay_spike.windows.duration = 1.0;
  schedule.delay_spike.multiplier = 0.5;
  EXPECT_THROW(schedule.validate(), zc::ContractViolation);
}

TEST(FaultScheduleValidate, RejectsTooManyDuplicationCopies) {
  FaultSchedule schedule;
  schedule.duplication.probability = 0.5;
  schedule.duplication.copies = FaultDecision::kMaxCopies + 1;
  try {
    schedule.validate();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("Duplication.copies"),
              std::string::npos);
  }
}

TEST(FaultScheduleValidate, RejectsReorderingWithoutJitterBound) {
  FaultSchedule schedule;
  schedule.reordering.probability = 0.3;
  schedule.reordering.max_jitter = 0.0;
  EXPECT_THROW(schedule.validate(), zc::ContractViolation);
}

TEST(FaultScheduleValidate, RejectsChurnDeafLongerThanPeriod) {
  FaultSchedule schedule;
  schedule.host_churn.deaf_fraction = 0.5;
  schedule.host_churn.period = 1.0;
  schedule.host_churn.deaf_duration = 2.0;
  try {
    schedule.validate();
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("HostChurn.deaf_duration"),
              std::string::npos);
  }
}

TEST(FaultScheduleValidate, RejectsNonFiniteParameters) {
  FaultSchedule schedule;
  schedule.delay_spike.windows.duration = 1.0;
  schedule.delay_spike.extra = std::numeric_limits<double>::infinity();
  EXPECT_THROW(schedule.validate(), zc::ContractViolation);
}

// --- Summary / cause labels -----------------------------------------------

TEST(FaultSchedule, SummaryListsEnabledFaults) {
  FaultSchedule schedule;
  EXPECT_EQ(schedule.summary(), "none");
  schedule.gilbert_elliott.p_enter_burst = 0.1;
  schedule.blackout.windows.duration = 1.0;
  EXPECT_EQ(schedule.summary(), "gilbert-elliott+blackout");
}

TEST(DeliveryCause, DropPredicateAndLabels) {
  EXPECT_FALSE(is_drop(DeliveryCause::delivered));
  EXPECT_FALSE(is_drop(DeliveryCause::reordered));
  EXPECT_FALSE(is_drop(DeliveryCause::duplicate));
  EXPECT_TRUE(is_drop(DeliveryCause::random_loss));
  EXPECT_TRUE(is_drop(DeliveryCause::burst_loss));
  EXPECT_TRUE(is_drop(DeliveryCause::blackout));
  EXPECT_TRUE(is_drop(DeliveryCause::target_deaf));
  EXPECT_STREQ(to_string(DeliveryCause::burst_loss), "burst-loss");
  EXPECT_STREQ(to_string(DeliveryCause::blackout), "blackout");
}

}  // namespace
