/// Deterministic spec fuzzer: counter-stream replayability, bit-exact
/// JSON round-trips of CaseRecipe, the Monte-Carlo block's q = hosts /
/// space pin, and full validate() coverage of the invalid-case stream.

#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/contract.hpp"
#include "core/schedule.hpp"
#include "obs/json.hpp"

namespace {

using namespace zc;
using check::CaseRecipe;
using check::FaultKind;
using check::fuzz_case;
using check::fuzz_invalid_case;
using check::FuzzRng;

TEST(FuzzRng, CounterStreamIsPureFunctionOfSeedAndIndex) {
  FuzzRng a(42, 7);
  FuzzRng b(42, 7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(FuzzRng, DistinctIndicesDecorrelate) {
  FuzzRng a(42, 7);
  FuzzRng b(42, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(FuzzRng, UnitDrawsStayInHalfOpenInterval) {
  FuzzRng rng(1, 0);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Fuzz, CaseIsReplayableFromSeedAndIndex) {
  for (std::uint64_t index : {0ull, 1ull, 7ull, 63ull, 200ull}) {
    const CaseRecipe a = fuzz_case(5, index);
    const CaseRecipe b = fuzz_case(5, index);
    EXPECT_EQ(a.to_json().dump_compact(), b.to_json().dump_compact())
        << "index " << index;
  }
}

TEST(Fuzz, RecipesVaryAcrossIndices) {
  std::set<std::string> distinct;
  for (std::uint64_t index = 0; index < 64; ++index)
    distinct.insert(fuzz_case(1, index).to_json().dump_compact());
  // Menus repeat boundary values, so collisions happen — but the stream
  // must not degenerate into a handful of cases.
  EXPECT_GT(distinct.size(), 48u);
}

TEST(Fuzz, JsonRoundTripIsBitExact) {
  for (std::uint64_t index = 0; index < 64; ++index) {
    const CaseRecipe original = fuzz_case(9, index);
    const obs::JsonValue encoded = original.to_json();
    const auto reparsed = obs::parse_json(encoded.dump_compact());
    ASSERT_TRUE(reparsed.has_value()) << "index " << index;
    CaseRecipe decoded;
    std::string error;
    ASSERT_TRUE(CaseRecipe::from_json(*reparsed, decoded, &error))
        << "index " << index << ": " << error;
    EXPECT_EQ(decoded.to_json().dump_compact(), encoded.dump_compact())
        << "index " << index;
  }
}

TEST(Fuzz, FromJsonNamesTheOffendingField) {
  obs::JsonValue bad = fuzz_case(1, 0).to_json();
  bad["n"] = obs::JsonValue(-3.0);
  CaseRecipe out;
  std::string error;
  EXPECT_FALSE(CaseRecipe::from_json(bad, out, &error));
  EXPECT_NE(error.find("CaseRecipe.n"), std::string::npos) << error;
}

TEST(Fuzz, EveryEighthCaseCarriesTheMonteCarloBlock) {
  for (std::uint64_t index = 0; index < 64; ++index) {
    const CaseRecipe recipe = fuzz_case(3, index);
    EXPECT_EQ(recipe.run_mc, index % 8 == 7) << "index " << index;
    if (recipe.run_mc) {
      ASSERT_GT(recipe.mc_space, 0u);
      EXPECT_GT(recipe.mc_trials, 0u);
      EXPECT_LE(recipe.mc_hosts, recipe.mc_space);
      // The analytic model must describe the simulated segment exactly.
      EXPECT_EQ(recipe.scenario.q, static_cast<double>(recipe.mc_hosts) /
                                       static_cast<double>(recipe.mc_space));
    }
  }
}

TEST(Fuzz, SchedulesMaterializeAndValidate) {
  for (std::uint64_t index = 0; index < 128; ++index) {
    const CaseRecipe recipe = fuzz_case(11, index);
    const core::ProbeSchedule schedule = recipe.schedule();
    EXPECT_EQ(schedule.n(), recipe.n) << "index " << index;
    EXPECT_NO_THROW(schedule.validate(/*allow_zero_r=*/true))
        << "index " << index;
  }
}

TEST(Fuzz, FaultKindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::none, FaultKind::gilbert_elliott, FaultKind::blackout,
        FaultKind::delay_spike, FaultKind::duplication, FaultKind::reordering,
        FaultKind::host_churn}) {
    FaultKind parsed = FaultKind::none;
    ASSERT_TRUE(check::fault_kind_from_string(check::to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  FaultKind untouched = FaultKind::blackout;
  EXPECT_FALSE(check::fault_kind_from_string("gremlins", untouched));
  EXPECT_EQ(untouched, FaultKind::blackout);
}

TEST(Fuzz, DescribeMentionsTheScheduleAndFault) {
  for (std::uint64_t index = 0; index < 16; ++index) {
    const CaseRecipe recipe = fuzz_case(2, index);
    const std::string text = recipe.describe();
    EXPECT_FALSE(text.empty());
    EXPECT_NE(text.find(check::to_string(recipe.fault)), std::string::npos)
        << text;
  }
}

TEST(Fuzz, InvalidStreamIsDeterministic) {
  for (std::uint64_t index = 0; index < check::kInvalidCaseShapes; ++index) {
    const check::InvalidCase a = fuzz_invalid_case(4, index);
    const check::InvalidCase b = fuzz_invalid_case(4, index);
    EXPECT_EQ(a.target, b.target);
    EXPECT_EQ(a.field, b.field);
  }
}

TEST(Fuzz, InvalidStreamCoversEveryPublicValidate) {
  std::set<std::string> targets;
  for (std::uint64_t index = 0; index < check::kInvalidCaseShapes; ++index)
    targets.insert(fuzz_invalid_case(1, index).target);
  for (const char* required :
       {"ProtocolParams", "ProbeSchedule", "ZeroconfConfig", "FaultSchedule",
        "MonteCarloOptions", "ExperimentSpec"})
    EXPECT_TRUE(targets.contains(required)) << "no invalid case exercises "
                                            << required << "::validate";
}

}  // namespace
