/// End-to-end `zcopt_cli check`: exit codes, the report file's schema
/// and thread-count byte identity, and the ArgParser hardening shared by
/// every subcommand (duplicate options rejected, typos get a nearest-
/// flag suggestion).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json.hpp"

#ifndef ZCOPT_CLI_PATH
#error "ZCOPT_CLI_PATH must point at the zcopt_cli binary"
#endif

namespace {

struct CliRun {
  int status = 0;  ///< raw std::system status; 0 iff clean exit 0
  std::string out;
  std::string err;
};

std::string slurp_and_remove(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

/// Spawn the CLI with `arguments`; nullopt (caller skips) without a shell.
std::optional<CliRun> run_cli(const std::string& arguments,
                              const std::string& tag) {
  if (std::system(nullptr) == 0) return std::nullopt;
  const std::string out_path = ::testing::TempDir() + "zc_check_cli_" + tag + ".out";
  const std::string err_path = ::testing::TempDir() + "zc_check_cli_" + tag + ".err";
  const std::string command = std::string(ZCOPT_CLI_PATH) + " " + arguments +
                              " > " + out_path + " 2> " + err_path;
  CliRun result;
  result.status = std::system(command.c_str());
  result.out = slurp_and_remove(out_path);
  result.err = slurp_and_remove(err_path);
  return result;
}

TEST(CliCheck, CleanCampaignExitsZero) {
  const auto run = run_cli("check --seed 1 --cases 64", "clean");
  if (!run.has_value()) GTEST_SKIP() << "could not spawn zcopt_cli";
  EXPECT_EQ(run->status, 0) << run->err;
  EXPECT_NE(run->out.find("check: 64 case(s), seed 1: 0 violation(s)"),
            std::string::npos)
      << run->out;
}

TEST(CliCheck, ReportMatchesSchemaAndIsByteIdenticalAcrossThreads) {
  const std::string serial_path = ::testing::TempDir() + "zc_check_t1.json";
  const std::string wide_path = ::testing::TempDir() + "zc_check_t8.json";
  const auto serial = run_cli(
      "check --seed 3 --cases 48 --threads 1 --report " + serial_path, "t1");
  const auto wide = run_cli(
      "check --seed 3 --cases 48 --threads 8 --report " + wide_path, "t8");
  if (!serial.has_value() || !wide.has_value())
    GTEST_SKIP() << "could not spawn zcopt_cli";
  ASSERT_EQ(serial->status, 0) << serial->err;
  ASSERT_EQ(wide->status, 0) << wide->err;

  const std::string serial_bytes = slurp_and_remove(serial_path);
  const std::string wide_bytes = slurp_and_remove(wide_path);
  ASSERT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, wide_bytes)
      << "check report depends on the thread count";

  std::string error;
  const auto report = zc::obs::parse_json(serial_bytes, &error);
  ASSERT_TRUE(report.has_value()) << error;
  EXPECT_EQ(report->find("schema")->as_string(), "zcopt-check-report");
  EXPECT_DOUBLE_EQ(report->find("schema_version")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(report->find("config")->find("cases")->as_number(), 48.0);
  EXPECT_TRUE(report->find("data")->find("ok")->as_bool());
}

TEST(CliCheck, UsageErrorsExitNonZero) {
  const auto bad_shrink =
      run_cli("check --cases 4 --shrink sometimes", "bad_shrink");
  if (!bad_shrink.has_value()) GTEST_SKIP() << "could not spawn zcopt_cli";
  EXPECT_NE(bad_shrink->status, 0);
  EXPECT_NE(bad_shrink->err.find("--shrink"), std::string::npos)
      << bad_shrink->err;
}

// The ArgParser hardening is shared by every subcommand surface: the
// default evaluate/optimize modes, `campaign`, and `check`. A repeated
// option is rejected (not silently last-wins) ...
TEST(CliCheck, DuplicateOptionsRejectedOnEverySubcommand) {
  const struct {
    const char* tag;
    const char* arguments;
    const char* option;
  } cases[] = {
      {"modes", "--n 4 --n 5", "--n"},
      {"campaign", "campaign --hosts 100 --hosts 200", "--hosts"},
      {"check", "check --cases 4 --cases 8", "--cases"},
  };
  for (const auto& c : cases) {
    const auto run = run_cli(c.arguments, std::string("dup_") + c.tag);
    if (!run.has_value()) GTEST_SKIP() << "could not spawn zcopt_cli";
    EXPECT_NE(run->status, 0) << c.tag;
    EXPECT_NE(run->err.find(std::string("duplicate option '") + c.option +
                            "'"),
              std::string::npos)
        << c.tag << ": " << run->err;
  }
}

// ... and a near-miss flag name comes back with a suggestion.
TEST(CliCheck, TyposGetANearestFlagSuggestionOnEverySubcommand) {
  const struct {
    const char* tag;
    const char* arguments;
    const char* suggestion;
  } cases[] = {
      {"modes", "--hostz 100", "--hosts"},
      {"campaign", "campaign --hostz 100", "--hosts"},
      {"check", "check --casez 4", "--cases"},
  };
  for (const auto& c : cases) {
    const auto run = run_cli(c.arguments, std::string("typo_") + c.tag);
    if (!run.has_value()) GTEST_SKIP() << "could not spawn zcopt_cli";
    EXPECT_NE(run->status, 0) << c.tag;
    EXPECT_NE(run->err.find("unknown option"), std::string::npos)
        << c.tag << ": " << run->err;
    EXPECT_NE(run->err.find(std::string("(did you mean '") + c.suggestion +
                            "'?)"),
              std::string::npos)
        << c.tag << ": " << run->err;
  }
}

}  // namespace
