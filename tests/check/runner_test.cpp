/// Check-campaign runner: clean campaigns, planted-bug harvesting in
/// ascending case order, campaign counters, and the byte-identical
/// report contract across thread counts.

#include "check/runner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "core/cost.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace zc;
using check::CheckOptions;
using check::CheckResult;
using check::run_check;

CheckOptions planted(std::uint64_t cases) {
  CheckOptions opts;
  opts.seed = 1;
  opts.cases = cases;
  opts.oracle.mean_cost_hook = [](const core::ScenarioParams& scenario,
                                  const core::ProbeSchedule& schedule) {
    return core::mean_cost(scenario, schedule) * (1.0 + 1e-3);
  };
  return opts;
}

TEST(CheckRunner, CleanCampaignReportsNoFailures) {
  CheckOptions opts;
  opts.seed = 1;
  opts.cases = 64;
  const CheckResult result = run_check(opts);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.violations, 0u);
  EXPECT_EQ(result.cases, 64u);
  EXPECT_TRUE(result.failures.empty());
}

TEST(CheckRunner, PlantedBugIsHarvestedInAscendingOrder) {
  const CheckResult result = run_check(planted(32));
  EXPECT_FALSE(result.ok());
  EXPECT_GT(result.violations, 0u);
  ASSERT_FALSE(result.failures.empty());
  for (std::size_t i = 1; i < result.failures.size(); ++i)
    EXPECT_LT(result.failures[i - 1].index, result.failures[i].index);
  for (const check::CheckFailure& failure : result.failures) {
    ASSERT_FALSE(failure.violations.empty());
    // Shrinking preserved the leading invariant and produced a recipe.
    EXPECT_EQ(failure.shrunk_invariant, failure.violations.front().invariant);
    EXPECT_FALSE(failure.minimal.describe().empty());
  }
}

#ifndef ZC_OBS_DISABLED
TEST(CheckRunner, CountersMatchTheResult) {
  const CheckResult result = run_check(planted(16));
  const obs::MetricSet& metrics = result.metrics;
  EXPECT_EQ(metrics.counter_value("check.cases").value_or(0), 16u);
  EXPECT_EQ(metrics.counter_value("check.violations").value_or(0),
            result.violations);
  EXPECT_EQ(metrics.counter_value("check.shrink.steps").value_or(0),
            result.shrink_steps);
}
#endif

TEST(CheckRunner, ReportIsByteIdenticalAcrossThreadCounts) {
  for (const bool plant_bug : {false, true}) {
    CheckOptions serial = plant_bug ? planted(24) : CheckOptions{};
    serial.cases = 24;
    CheckOptions wide = serial;
    serial.threads = 1;
    wide.threads = 8;
    const std::string a =
        check::check_report(run_check(serial), serial).to_json().dump();
    const std::string b =
        check::check_report(run_check(wide), wide).to_json().dump();
    EXPECT_EQ(a, b) << (plant_bug ? "planted-bug" : "clean") << " campaign";
  }
}

TEST(CheckRunner, ReportCarriesTheCheckSchemaAndReplayableRecipes) {
  const CheckOptions opts = planted(16);
  const CheckResult result = run_check(opts);
  const obs::JsonValue report = check::check_report(result, opts).to_json();

  EXPECT_EQ(report.find("schema")->as_string(), "zcopt-check-report");
  EXPECT_DOUBLE_EQ(report.find("schema_version")->as_number(), 1.0);
  const obs::JsonValue* config = report.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->find("seed")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(config->find("cases")->as_number(), 16.0);
  // Deliberately absent: the thread count must not shape the report.
  EXPECT_EQ(config->find("threads"), nullptr);

  const obs::JsonValue* data = report.find("data");
  ASSERT_NE(data, nullptr);
  EXPECT_FALSE(data->find("ok")->as_bool());
  const obs::JsonValue* failures = data->find("failures");
  ASSERT_NE(failures, nullptr);
  ASSERT_GT(failures->size(), 0u);

  // Every embedded minimal recipe must replay: parse it back and re-run
  // the oracle with the same planted bug.
  const obs::JsonValue* minimal = failures->element(0)->find("minimal");
  ASSERT_NE(minimal, nullptr);
  check::CaseRecipe recipe;
  std::string error;
  ASSERT_TRUE(check::CaseRecipe::from_json(*minimal, recipe, &error)) << error;
  EXPECT_FALSE(check::check_case(recipe, opts.oracle).empty());
}

}  // namespace
