/// Auto-shrinker: greedy minimization preserves the failing invariant,
/// strips everything irrelevant to it (faults, Monte-Carlo block,
/// schedule shape, scenario knobs), and the minimal recipe replays the
/// failure on its own.

#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "core/cost.hpp"
#include "core/schedule.hpp"

namespace {

using namespace zc;
using check::CaseRecipe;
using check::check_case;
using check::fuzz_case;
using check::reproduces;
using check::shrink_case;

/// A globally biased mean-cost evaluator: every non-degenerate case
/// fails "analytic.vs_drm.mean_cost", so the shrinker should strip the
/// recipe all the way down to the default cell.
check::OracleOptions planted_bug() {
  check::OracleOptions opts;
  opts.mean_cost_hook = [](const core::ScenarioParams& scenario,
                           const core::ProbeSchedule& schedule) {
    return core::mean_cost(scenario, schedule) * (1.0 + 1e-3);
  };
  return opts;
}

constexpr const char* kInvariant = "analytic.vs_drm.mean_cost";

/// First fuzz case (under seed 1) that the planted bug flags with a
/// non-trivial shape: a fault or a non-uniform schedule to shrink away.
CaseRecipe interesting_failing_case(const check::OracleOptions& opts) {
  for (std::uint64_t index = 0; index < 256; ++index) {
    const CaseRecipe recipe = fuzz_case(1, index);
    const bool shaped = recipe.fault != check::FaultKind::none ||
                        recipe.family != core::ScheduleFamily::uniform ||
                        recipe.run_mc;
    if (shaped && reproduces(recipe, kInvariant, opts)) return recipe;
  }
  ADD_FAILURE() << "no shaped failing case in the first 256 fuzz cases";
  return fuzz_case(1, 0);
}

TEST(Shrink, ReproducesMatchesTheOracle) {
  const check::OracleOptions opts = planted_bug();
  const CaseRecipe failing = interesting_failing_case(opts);
  EXPECT_TRUE(reproduces(failing, kInvariant, opts));
  EXPECT_FALSE(reproduces(failing, "no.such.invariant", opts));
  // Without the planted bug the case is clean.
  EXPECT_FALSE(reproduces(failing, kInvariant, check::OracleOptions{}));
}

TEST(Shrink, MinimalReproducerStillFails) {
  const check::OracleOptions opts = planted_bug();
  const CaseRecipe failing = interesting_failing_case(opts);
  const check::ShrinkResult result = shrink_case(failing, kInvariant, opts);
  EXPECT_TRUE(reproduces(result.recipe, kInvariant, opts))
      << result.recipe.describe();
  EXPECT_GT(result.steps, 0u);
  EXPECT_GE(result.attempts, result.steps);
}

TEST(Shrink, GlobalBugShrinksToTheDefaultCell) {
  const check::OracleOptions opts = planted_bug();
  const CaseRecipe failing = interesting_failing_case(opts);
  const CaseRecipe minimal = shrink_case(failing, kInvariant, opts).recipe;

  // Everything irrelevant to a global analytic-vs-DRM bias is gone.
  EXPECT_EQ(minimal.fault, check::FaultKind::none);
  EXPECT_FALSE(minimal.run_mc);
  EXPECT_EQ(minimal.family, core::ScheduleFamily::uniform);
  EXPECT_EQ(minimal.n, 1u);
  EXPECT_EQ(minimal.r0, 2.0);
  const core::ExponentialScenario defaults{};
  EXPECT_EQ(minimal.scenario.q, defaults.q);
  EXPECT_EQ(minimal.scenario.probe_cost, defaults.probe_cost);
  EXPECT_EQ(minimal.scenario.error_cost, defaults.error_cost);
  EXPECT_EQ(minimal.scenario.loss, defaults.loss);
  EXPECT_EQ(minimal.scenario.lambda, defaults.lambda);
  EXPECT_EQ(minimal.scenario.round_trip, defaults.round_trip);
}

TEST(Shrink, ShrinkingIsDeterministic) {
  const check::OracleOptions opts = planted_bug();
  const CaseRecipe failing = interesting_failing_case(opts);
  const check::ShrinkResult a = shrink_case(failing, kInvariant, opts);
  const check::ShrinkResult b = shrink_case(failing, kInvariant, opts);
  EXPECT_EQ(a.recipe.to_json().dump_compact(),
            b.recipe.to_json().dump_compact());
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.attempts, b.attempts);
}

TEST(Shrink, NonReproducingInputIsReturnedUntouched) {
  const CaseRecipe clean = fuzz_case(1, 0);
  const check::ShrinkResult result =
      shrink_case(clean, kInvariant, check::OracleOptions{});
  EXPECT_EQ(result.recipe.to_json().dump_compact(),
            clean.to_json().dump_compact());
  EXPECT_EQ(result.steps, 0u);
}

}  // namespace
