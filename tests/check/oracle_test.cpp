/// Differential oracle: clean fuzz streams pass every invariant, the
/// evaluation is a pure function of (recipe, opts), and a planted
/// evaluator bug is detected (the OracleOptions hook seam).

#include "check/oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "core/cost.hpp"
#include "core/reliability.hpp"

namespace {

using namespace zc;
using check::check_case;
using check::fuzz_case;
using check::Violation;

std::string render(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations)
    out += v.invariant + ": " + v.detail + "\n";
  return out;
}

bool mentions(const std::vector<Violation>& violations,
              const std::string& fragment) {
  for (const Violation& v : violations)
    if (v.invariant.find(fragment) != std::string::npos) return true;
  return false;
}

TEST(Oracle, CleanStreamPassesEveryInvariant) {
  for (std::uint64_t index = 0; index < 100; ++index) {
    const auto violations = check_case(fuzz_case(1, index));
    EXPECT_TRUE(violations.empty())
        << "case " << index << " of seed 1:\n" << render(violations);
  }
}

TEST(Oracle, EvaluationIsDeterministic) {
  // Index 7 carries the Monte-Carlo block — the stochastic-looking path
  // must still be a pure function of the recipe (counter-derived seed,
  // one thread).
  for (std::uint64_t index : {0ull, 7ull, 15ull, 42ull}) {
    const auto first = check_case(fuzz_case(2, index));
    const auto second = check_case(fuzz_case(2, index));
    ASSERT_EQ(first.size(), second.size()) << "index " << index;
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i].invariant, second[i].invariant);
      EXPECT_EQ(first[i].detail, second[i].detail);
    }
  }
}

// The planted-bug seam: substitute a mean-cost evaluator that is off by
// a relative 1e-3 and the cross-check against the DRM solve must flag it
// on (nearly) every case — only degenerate cells with mean cost ~ 0 or a
// conditioning floor above the perturbation are exempt.
TEST(Oracle, PlantedMeanCostBugIsDetected) {
  check::OracleOptions opts;
  opts.mean_cost_hook = [](const core::ScenarioParams& scenario,
                           const core::ProbeSchedule& schedule) {
    return core::mean_cost(scenario, schedule) * (1.0 + 1e-3);
  };
  int flagged = 0;
  for (std::uint64_t index = 0; index < 32; ++index) {
    if (mentions(check_case(fuzz_case(1, index), opts),
                 "analytic.vs_drm.mean_cost"))
      ++flagged;
  }
  EXPECT_GE(flagged, 24) << "the oracle misses a 1e-3 relative bias";
}

TEST(Oracle, PlantedErrorProbabilityBugIsDetected) {
  check::OracleOptions opts;
  opts.error_probability_hook = [](const core::ScenarioParams& scenario,
                                   const core::ProbeSchedule& schedule) {
    const double err = core::error_probability(scenario, schedule);
    return std::min(1.0, err * (1.0 + 1e-3));
  };
  int flagged = 0;
  for (std::uint64_t index = 0; index < 32; ++index) {
    if (mentions(check_case(fuzz_case(1, index), opts), "error_probability"))
      ++flagged;
  }
  EXPECT_GE(flagged, 24) << "the oracle misses a 1e-3 relative bias";
}

// Tight tolerances must not hallucinate failures either: the hook that
// returns the production value verbatim is indistinguishable from no
// hook at all.
TEST(Oracle, IdentityHookIsClean) {
  check::OracleOptions opts;
  opts.mean_cost_hook = [](const core::ScenarioParams& scenario,
                           const core::ProbeSchedule& schedule) {
    return core::mean_cost(scenario, schedule);
  };
  opts.error_probability_hook = [](const core::ScenarioParams& scenario,
                                   const core::ProbeSchedule& schedule) {
    return core::error_probability(scenario, schedule);
  };
  for (std::uint64_t index = 0; index < 32; ++index) {
    const auto violations = check_case(fuzz_case(1, index), opts);
    EXPECT_TRUE(violations.empty())
        << "case " << index << ":\n" << render(violations);
  }
}

}  // namespace
