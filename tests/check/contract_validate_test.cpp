/// Table-driven contract coverage: every invalid-case shape the fuzzer
/// emits must raise zc::ContractViolation from the targeted validate(),
/// and the message must name the violated field — the property the
/// `zcopt_cli check` quarantine path and every CLI error message rely on.

#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.hpp"
#include "common/contract.hpp"

namespace {

using namespace zc;
using check::fuzz_invalid_case;
using check::InvalidCase;
using check::kInvalidCaseShapes;

TEST(ContractValidate, EveryInvalidShapeThrowsNamingTheField) {
  // Several master seeds so the randomized offending magnitudes vary;
  // the (target, field, throws) triple must hold for all of them.
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    for (std::uint64_t index = 0; index < kInvalidCaseShapes; ++index) {
      const InvalidCase invalid = fuzz_invalid_case(seed, index);
      ASSERT_FALSE(invalid.target.empty());
      ASSERT_FALSE(invalid.field.empty());
      try {
        invalid.trigger();
        ADD_FAILURE() << invalid.target << " shape " << index << " (seed "
                      << seed << ") did not throw";
      } catch (const ContractViolation& violation) {
        EXPECT_NE(std::string(violation.what()).find(invalid.field),
                  std::string::npos)
            << invalid.target << " shape " << index
            << ": message does not name '" << invalid.field
            << "': " << violation.what();
      } catch (const std::exception& other) {
        ADD_FAILURE() << invalid.target << " shape " << index
                      << " threw the wrong type: " << other.what();
      }
    }
  }
}

TEST(ContractValidate, ShapesBeyondTheCycleRepeat) {
  // Index arithmetic is mod kInvalidCaseShapes: shape k and shape
  // k + kInvalidCaseShapes target the same validate()/field pair.
  for (std::uint64_t index = 0; index < kInvalidCaseShapes; ++index) {
    const InvalidCase base = fuzz_invalid_case(7, index);
    const InvalidCase wrapped = fuzz_invalid_case(7, index + kInvalidCaseShapes);
    EXPECT_EQ(base.target, wrapped.target) << "index " << index;
    EXPECT_EQ(base.field, wrapped.field) << "index " << index;
  }
}

}  // namespace
