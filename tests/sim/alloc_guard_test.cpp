/// Allocation guard for the simulation core: after a warm-up phase, the
/// per-trial loop (Network::reset + run_join) and the simulator's
/// schedule/fire cycle must perform ZERO heap allocations — the
/// enforceable form of the "allocation-free steady state" claim
/// (DESIGN.md §"Sim-core memory model"). Global operator new is hooked
/// to count every allocation in the process, so this test lives in its
/// own binary.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "exec/seeding.hpp"
#include "prob/delay.hpp"
#include "sim/network.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting replacements for every allocating form. Deallocation goes
// through free() to match; counts only track allocations.
void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace zc;

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

TEST(AllocGuard, SteadyStateTrialLoopIsAllocationFree) {
  sim::NetworkConfig config;
  config.address_space = 65024;
  config.hosts = 1000;
  config.responder_delay = std::shared_ptr<const prob::DelayDistribution>(
      prob::paper_reply_delay(0.1, 10.0, 0.05));
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(4, 0.25);

  constexpr std::uint64_t kSeed = 20260808;
  sim::Network net(config, exec::split_seed(kSeed, 0));
  // Warm-up with the SAME seed range the measured pass replays: pools
  // only grow when a trial sets a new high-water mark (pending events,
  // broadcast fan-out, ...), and reset(seed) is bit-reproducible, so the
  // replay cannot exceed any mark the warm-up already reached.
  unsigned probes = 0;
  for (std::size_t t = 1; t <= 64; ++t) {
    net.reset(exec::split_seed(kSeed, t));
    probes += net.run_join(protocol).probes_sent;
  }

  const std::uint64_t before = allocations();
  for (std::size_t t = 1; t <= 64; ++t) {
    net.reset(exec::split_seed(kSeed, t));
    probes += net.run_join(protocol).probes_sent;
  }
  const std::uint64_t after = allocations();

  EXPECT_GE(probes, 1u);  // the loop really simulated something
  EXPECT_EQ(after - before, 0u)
      << "steady-state trials allocated " << (after - before)
      << " times in 64 trials";
}

TEST(AllocGuard, EventPoolScheduleFireCycleIsAllocationFree) {
  sim::Simulator simulator;
  double sum = 0.0;
  // Warm-up grows the slab and heap to their working size.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 256; ++i)
      (void)simulator.schedule(0.5 * (i % 9), [&sum] { sum += 1.0; });
    simulator.run();
  }

  const std::uint64_t before = allocations();
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 256; ++i)
      (void)simulator.schedule(0.5 * (i % 9), [&sum] { sum += 1.0; });
    simulator.run();
  }
  const std::uint64_t after = allocations();

  EXPECT_GT(sum, 0.0);
  EXPECT_EQ(after - before, 0u);
}

TEST(AllocGuard, HookIsLive) {
  // Sanity: the counter actually observes allocations (otherwise the
  // zero-allocation assertions above would be vacuous).
  const std::uint64_t before = allocations();
  auto* p = new int(42);
  const std::uint64_t after = allocations();
  delete p;
  EXPECT_GE(after - before, 1u);
}

}  // namespace
