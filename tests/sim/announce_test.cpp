/// Tests of the maintenance phase (draft part 2): ARP announcements after
/// claiming, defense by the legitimate owner, and collision detection —
/// the machinery behind the paper's abstract collision cost E.

#include <gtest/gtest.h>

#include "prob/families.hpp"
#include "sim/host.hpp"
#include "sim/network.hpp"
#include "sim/zeroconf_host.hpp"

namespace {

using namespace zc::sim;

struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{55};
  Medium medium{sim, {}, rng};
};

ZeroconfConfig announcing(unsigned n = 1, double r = 0.1) {
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(n, r);
  config.announce_count = 2;
  config.announce_interval = 2.0;
  return config;
}

TEST(Announce, CleanClaimBroadcastsAnnouncements) {
  Fixture f;
  int announcements = 0;
  const HostId monitor = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpAnnounce>(p)) ++announcements;
  });
  for (Address a = 1; a <= 4; ++a) f.medium.subscribe(monitor, a);
  ZeroconfHost joiner(f.sim, f.medium, 4, announcing(), f.rng);
  joiner.start();
  f.sim.run();
  EXPECT_EQ(joiner.outcome(), Outcome::configured);
  EXPECT_EQ(announcements, 2);
  EXPECT_FALSE(joiner.collision_detected());
}

TEST(Announce, AnnouncementsSpacedByInterval) {
  Fixture f;
  std::vector<double> times;
  const HostId monitor = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpAnnounce>(p)) times.push_back(f.sim.now());
  });
  for (Address a = 1; a <= 4; ++a) f.medium.subscribe(monitor, a);
  ZeroconfHost joiner(f.sim, f.medium, 4, announcing(1, 0.5), f.rng);
  joiner.start();
  f.sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);  // right at the claim
  EXPECT_DOUBLE_EQ(times[1], 2.5);  // + announce_interval
}

TEST(Announce, SilentCollisionIsDetectedViaAnnouncement) {
  Fixture f;
  // Owner at address 1 never answers probes (all replies lost) but
  // defends announcements instantly (nullptr response on defense is not
  // configurable separately, so model the probe deafness in the response
  // distribution and rely on announce defense below).
  const auto always_lost = std::make_shared<zc::prob::DefectiveDelay>(
      std::make_unique<zc::prob::Exponential>(100.0), 0.999999999, 0.0);
  ConfiguredHost owner(f.sim, f.medium, 1, always_lost, f.rng);
  ZeroconfConfig config = announcing(2, 0.1);
  ZeroconfHost joiner(f.sim, f.medium, 1, config, f.rng);
  joiner.start();
  f.sim.run();
  ASSERT_EQ(joiner.outcome(), Outcome::configured);
  EXPECT_EQ(joiner.configured_address(), 1u);  // silent collision
  // The owner observed the foreign announcements...
  EXPECT_GE(owner.conflicts_seen(), 1u);
  // ...but its defenses are also lost (same lossy path): detection is
  // not guaranteed here. With a *reliable* owner the joiner never even
  // collides, so detection is validated separately via a joiner-claimed
  // duplicate (below).
}

TEST(Announce, DuplicateClaimsDetectEachOther) {
  Fixture f;
  // Two joiners, no conflict detection during probing (lossy world
  // abstraction), both claim the single address; announcements then
  // reveal the duplicate to both sides.
  ZeroconfConfig config = announcing(1, 0.2);
  config.detect_probe_conflicts = false;
  ZeroconfHost a(f.sim, f.medium, 1, config, f.rng);
  ZeroconfHost b(f.sim, f.medium, 1, config, f.rng);
  a.start();
  b.start();
  f.sim.run();
  ASSERT_EQ(a.outcome(), Outcome::configured);
  ASSERT_EQ(b.outcome(), Outcome::configured);
  ASSERT_EQ(a.configured_address(), b.configured_address());
  EXPECT_TRUE(a.collision_detected() || b.collision_detected());
}

TEST(Announce, DetectionLatencyReportedInRunResult) {
  NetworkConfig config;
  config.address_space = 2;
  config.hosts = 1;
  // Probe replies always lost: every occupied pick becomes a silent
  // collision; the owner's announce-defense is equally lossy, so use the
  // duplicate-joiner path instead via simultaneous join.
  config.responder_delay = std::make_shared<zc::prob::DefectiveDelay>(
      std::make_unique<zc::prob::Exponential>(50.0), 0.999999999, 0.0);
  Network net(config, 99);
  ZeroconfConfig protocol = announcing(1, 0.1);
  protocol.detect_probe_conflicts = false;
  const auto results = net.run_simultaneous_join(protocol, 4);
  bool any_detected = false;
  for (const auto& r : results) {
    if (r.collision_detected) {
      any_detected = true;
      EXPECT_GE(r.detection_latency, 0.0);
      EXPECT_LT(r.detection_latency, 5.0);
    }
  }
  // 4 joiners over 2 addresses: duplicates certain; detection near-certain
  // (announcement delivery is lossless on the perfect medium).
  EXPECT_TRUE(any_detected);
}

TEST(Announce, DisabledByDefault) {
  Fixture f;
  int announcements = 0;
  const HostId monitor = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpAnnounce>(p)) ++announcements;
  });
  for (Address a = 1; a <= 4; ++a) f.medium.subscribe(monitor, a);
  ZeroconfConfig config;  // announce_count = 0
  config.schedule = zc::core::ProbeSchedule::uniform(1, 0.1);
  ZeroconfHost joiner(f.sim, f.medium, 4, config, f.rng);
  joiner.start();
  f.sim.run();
  EXPECT_EQ(announcements, 0);
}

TEST(Announce, OwnerCountsMaintenanceConflicts) {
  Fixture f;
  ConfiguredHost owner(f.sim, f.medium, 3, nullptr, f.rng);
  const HostId stranger = f.medium.attach([](const Packet&) {});
  f.medium.broadcast(ArpAnnounce{3, stranger});
  f.medium.broadcast(ArpAnnounce{3, stranger});
  f.sim.run();
  EXPECT_EQ(owner.conflicts_seen(), 2u);
}

TEST(Announce, OwnerDefendsAgainstAnnouncement) {
  Fixture f;
  ConfiguredHost owner(f.sim, f.medium, 3, nullptr, f.rng);
  int replies = 0;
  const HostId stranger = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpReply>(p)) ++replies;
  });
  f.medium.subscribe(stranger, 3);
  f.medium.broadcast(ArpAnnounce{3, stranger});
  f.sim.run();
  EXPECT_EQ(replies, 1);
}

}  // namespace
