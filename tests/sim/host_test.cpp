#include "sim/host.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "prob/delay.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::sim;

struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{7};
  Medium medium{sim, {}, rng};
};

TEST(ConfiguredHost, RepliesToProbeForOwnAddress) {
  Fixture f;
  ConfiguredHost host(f.sim, f.medium, 42, nullptr, f.rng);
  std::vector<Packet> seen;
  const HostId prober =
      f.medium.attach([&](const Packet& p) { seen.push_back(p); });
  f.medium.subscribe(prober, 42);
  f.medium.broadcast(ArpProbe{42, prober});
  f.sim.run();
  ASSERT_EQ(seen.size(), 1u);
  const auto* reply = std::get_if<ArpReply>(&seen[0]);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->address, 42u);
  EXPECT_EQ(reply->responder, host.id());
  EXPECT_EQ(host.probes_answered(), 1u);
}

TEST(ConfiguredHost, IgnoresProbesForOtherAddresses) {
  Fixture f;
  ConfiguredHost host(f.sim, f.medium, 42, nullptr, f.rng);
  const HostId prober = f.medium.attach([](const Packet&) {});
  f.medium.broadcast(ArpProbe{43, prober});
  f.sim.run();
  EXPECT_EQ(host.probes_answered(), 0u);
  EXPECT_EQ(host.probes_ignored(), 0u);
}

TEST(ConfiguredHost, IgnoresReplies) {
  Fixture f;
  ConfiguredHost host(f.sim, f.medium, 42, nullptr, f.rng);
  const HostId other = f.medium.attach([](const Packet&) {});
  f.medium.broadcast(ArpReply{42, other});
  f.sim.run();
  EXPECT_EQ(host.probes_answered(), 0u);
}

TEST(ConfiguredHost, ResponseDelayShiftsReplyTime) {
  Fixture f;
  const auto delay = zc::prob::paper_reply_delay(0.0, 1e9, 1.5);
  ConfiguredHost host(f.sim, f.medium, 10,
                      std::shared_ptr<const zc::prob::DelayDistribution>(
                          delay->clone()),
                      f.rng);
  double reply_at = -1.0;
  const HostId prober = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpReply>(p)) reply_at = f.sim.now();
  });
  f.medium.subscribe(prober, 10);
  f.medium.broadcast(ArpProbe{10, prober});
  f.sim.run();
  EXPECT_NEAR(reply_at, 1.5, 1e-6);
}

TEST(ConfiguredHost, DefectiveResponseNeverReplies) {
  Fixture f;
  // Loss probability effectively 1 via an extreme defective mass.
  const auto delay = std::make_shared<zc::prob::DefectiveDelay>(
      std::make_unique<zc::prob::Exponential>(1.0), 0.999999999, 0.0);
  ConfiguredHost host(f.sim, f.medium, 10, delay, f.rng);
  int replies = 0;
  const HostId prober = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpReply>(p)) ++replies;
  });
  f.medium.subscribe(prober, 10);
  for (int i = 0; i < 100; ++i) f.medium.broadcast(ArpProbe{10, prober});
  f.sim.run();
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(host.probes_ignored(), 100u);
}

TEST(ConfiguredHost, LossFractionMatchesDistribution) {
  Fixture f;
  const auto delay = std::make_shared<zc::prob::DefectiveDelay>(
      std::make_unique<zc::prob::Exponential>(100.0), 0.4, 0.0);
  ConfiguredHost host(f.sim, f.medium, 10, delay, f.rng);
  const HostId prober = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(prober, 10);
  const int n = 20000;
  for (int i = 0; i < n; ++i) f.medium.broadcast(ArpProbe{10, prober});
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(host.probes_ignored()) / n, 0.4, 0.02);
  EXPECT_EQ(host.probes_answered() + host.probes_ignored(),
            static_cast<std::size_t>(n));
}

TEST(ConfiguredHost, InvalidAddressRejected) {
  Fixture f;
  EXPECT_THROW(ConfiguredHost(f.sim, f.medium, kNoAddress, nullptr, f.rng),
               zc::ContractViolation);
}

TEST(ConfiguredHost, AnswersEveryProberOnSharedMedium) {
  Fixture f;
  ConfiguredHost host(f.sim, f.medium, 5, nullptr, f.rng);
  int a_replies = 0, b_replies = 0;
  const HostId a = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpReply>(p)) ++a_replies;
  });
  const HostId b = f.medium.attach([&](const Packet& p) {
    if (std::holds_alternative<ArpReply>(p)) ++b_replies;
  });
  f.medium.subscribe(a, 5);
  f.medium.subscribe(b, 5);
  f.medium.broadcast(ArpProbe{5, a});
  f.sim.run();
  // The ARP reply is broadcast: both subscribed hosts see it.
  EXPECT_EQ(a_replies, 1);
  EXPECT_EQ(b_replies, 1);
}

}  // namespace
