#include "sim/zeroconf_host.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "sim/host.hpp"

namespace {

using namespace zc::sim;

struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{11};
  Medium medium{sim, {}, rng};
};

TEST(ZeroconfHost, ClaimsFreeAddressAfterNPeriods) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(4, 2.0);
  ZeroconfHost host(f.sim, f.medium, 100, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_EQ(host.outcome(), Outcome::configured);
  EXPECT_NE(host.configured_address(), kNoAddress);
  EXPECT_EQ(host.probes_sent(), 4u);
  EXPECT_EQ(host.attempts(), 1u);
  EXPECT_EQ(host.conflicts(), 0u);
  EXPECT_DOUBLE_EQ(host.finish_time(), 8.0);  // n * r silent periods
  EXPECT_DOUBLE_EQ(host.waiting_time(), 8.0);
}

TEST(ZeroconfHost, AddressWithinConfiguredSpace) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(1, 0.1);
  ZeroconfHost host(f.sim, f.medium, 10, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_GE(host.configured_address(), 1u);
  EXPECT_LE(host.configured_address(), 10u);
}

TEST(ZeroconfHost, RestartsOnConflictingReply) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(2, 1.0);
  // One owner (responding after 0.1 s) on an address space of size 1:
  // every attempt must conflict; the host retries forever.
  const auto response = std::shared_ptr<const zc::prob::DelayDistribution>(
      zc::prob::paper_reply_delay(0.0, 1e9, 0.1));
  ConfiguredHost owner(f.sim, f.medium, 1, response, f.rng);
  ZeroconfHost host(f.sim, f.medium, 1, config, f.rng);
  host.start();
  f.sim.run_until(10.0);
  EXPECT_EQ(host.outcome(), Outcome::pending);
  EXPECT_GE(host.conflicts(), 2u);
  EXPECT_EQ(host.attempts(), host.conflicts() + 1u);
}

TEST(ZeroconfHost, ConflictAbortsListeningImmediately) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(4, 5.0);
  const auto response = std::shared_ptr<const zc::prob::DelayDistribution>(
      zc::prob::paper_reply_delay(0.0, 1e9, 0.2));
  ConfiguredHost owner(f.sim, f.medium, 1, response, f.rng);
  ZeroconfHost host(f.sim, f.medium, 1, config, f.rng);
  host.start();
  // Each reply lands 0.2 s into a 5 s period: the period is cut short
  // and only the elapsed 0.2 s counts as waiting.
  f.sim.run_until(0.5);
  EXPECT_GE(host.conflicts(), 1u);
  EXPECT_LT(host.waiting_time(), 1.0);
  EXPECT_NEAR(host.waiting_time(), 0.2 * host.conflicts(), 1e-6);
}

TEST(ZeroconfHost, EventuallyConfiguresDespiteOccupiedAddresses) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(2, 0.5);
  // 3 of 10 addresses taken: expect a few conflicts then success.
  std::vector<std::unique_ptr<ConfiguredHost>> owners;
  for (Address a : {1u, 2u, 3u})
    owners.push_back(
        std::make_unique<ConfiguredHost>(f.sim, f.medium, a, nullptr, f.rng));
  ZeroconfHost host(f.sim, f.medium, 10, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_EQ(host.outcome(), Outcome::configured);
  EXPECT_GT(host.configured_address(), 3u);  // must be a free one
}

TEST(ZeroconfHost, AvoidFailedAddressesNeverRetriesConflicted) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(1, 0.1);
  config.avoid_failed_addresses = true;
  // 1 of 2 addresses taken: after the inevitable first conflict on the
  // occupied address, the host must pick the other one.
  ConfiguredHost owner(f.sim, f.medium, 1, nullptr, f.rng);
  ZeroconfHost host(f.sim, f.medium, 2, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_EQ(host.outcome(), Outcome::configured);
  EXPECT_EQ(host.configured_address(), 2u);
  EXPECT_LE(host.attempts(), 2u);
}

TEST(ZeroconfHost, RateLimitDelaysAttemptsAfterThreshold) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(1, 0.1);
  config.rate_limit = true;
  config.rate_limit_threshold = 2;
  config.rate_limit_delay = 60.0;
  ConfiguredHost owner(f.sim, f.medium, 1, nullptr, f.rng);
  ZeroconfHost host(f.sim, f.medium, 1, config, f.rng);
  host.start();
  // Conflicts at ~0 and then attempt 2 conflicts immediately; the third
  // attempt must wait 60 s.
  f.sim.run_until(30.0);
  EXPECT_EQ(host.attempts(), 2u);
  f.sim.run_until(100.0);
  EXPECT_GE(host.attempts(), 3u);
}

TEST(ZeroconfHost, ProbeConflictDetectionBetweenTwoJoiners) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(4, 1.0);
  config.detect_probe_conflicts = true;
  config.probe_wait_max = 0.5;  // draft PROBE_WAIT desynchronizes retries
  // Address space of 1: both joiners pick the same candidate and must
  // clash via probes (no configured owner exists).
  ZeroconfHost a(f.sim, f.medium, 1, config, f.rng);
  ZeroconfHost b(f.sim, f.medium, 1, config, f.rng);
  a.start();
  b.start();
  f.sim.run_until(3.0);
  EXPECT_GE(a.conflicts() + b.conflicts(), 1u);
}

TEST(ZeroconfHost, ConfiguredHostDefendsItsAddress) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(1, 0.5);
  ZeroconfHost first(f.sim, f.medium, 1, config, f.rng);
  first.start();
  f.sim.run();
  ASSERT_EQ(first.outcome(), Outcome::configured);
  // A second joiner probing the same (only) address must get a reply
  // from the now-configured first host.
  config.probe_wait_max = 0.5;  // keep its hopeless retries time-advancing
  ZeroconfHost second(f.sim, f.medium, 1, config, f.rng);
  second.start();
  f.sim.run_until(f.sim.now() + 5.0);
  EXPECT_GE(second.conflicts(), 1u);
  EXPECT_EQ(second.outcome(), Outcome::pending);
}

TEST(ZeroconfHost, OnDoneCallbackInvokedOnce) {
  Fixture f;
  int done = 0;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(2, 0.25);
  ZeroconfHost host(f.sim, f.medium, 50, config, f.rng, [&] { ++done; });
  host.start();
  f.sim.run();
  EXPECT_EQ(done, 1);
}

TEST(ZeroconfHost, DoubleStartRejected) {
  Fixture f;
  ZeroconfConfig config;
  ZeroconfHost host(f.sim, f.medium, 50, config, f.rng);
  host.start();
  EXPECT_THROW(host.start(), zc::ContractViolation);
}

TEST(ZeroconfHost, InvalidConfigRejected) {
  Fixture f;
  ZeroconfConfig bad_n;
  bad_n.schedule = zc::core::ProbeSchedule::uniform(0, 2.0);
  EXPECT_THROW(ZeroconfHost(f.sim, f.medium, 50, bad_n, f.rng),
               zc::ContractViolation);
  ZeroconfConfig bad_r;
  bad_r.schedule = zc::core::ProbeSchedule::uniform(4, -1.0);
  EXPECT_THROW(ZeroconfHost(f.sim, f.medium, 50, bad_r, f.rng),
               zc::ContractViolation);
}

TEST(ZeroconfHost, WaitingTimeCountsFullSilentPeriods) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(3, 1.5);
  ZeroconfHost host(f.sim, f.medium, 100, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_DOUBLE_EQ(host.waiting_time(), 4.5);
}

}  // namespace
