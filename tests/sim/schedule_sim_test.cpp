/// Per-probe schedules in the simulator: config validation regressions,
/// host windows driven by the schedule vector, non-uniform model-cost
/// accounting, and thread-count-invariant Monte-Carlo estimates.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "common/contract.hpp"
#include "sim/host.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/network.hpp"
#include "sim/zeroconf_host.hpp"

namespace {

using namespace zc::sim;

struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{11};
  Medium medium{sim, {}, rng};
};

/// Expects `config.validate()` to throw a ContractViolation whose message
/// names `field` — the config's field-naming contract.
void expect_rejected(const ZeroconfConfig& config, const std::string& field) {
  try {
    config.validate();
    FAIL() << "expected rejection naming " << field;
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
        << e.what();
  }
}

TEST(ZeroconfConfigValidate, AcceptsDefaultsAndZeroR) {
  EXPECT_NO_THROW(ZeroconfConfig{}.validate());
  // The model-faithful r = 0 limit is legal in the simulator.
  ZeroconfConfig zero;
  zero.schedule = zc::core::ProbeSchedule::uniform(4, 0.0);
  EXPECT_NO_THROW(zero.validate());
}

TEST(ZeroconfConfigValidate, RejectsMalformedSchedules) {
  ZeroconfConfig bad_n;
  bad_n.schedule = zc::core::ProbeSchedule::uniform(0, 2.0);
  EXPECT_THROW(bad_n.validate(), zc::ContractViolation);

  ZeroconfConfig bad_r;
  bad_r.schedule = zc::core::ProbeSchedule::uniform(4, -1.0);
  EXPECT_THROW(bad_r.validate(), zc::ContractViolation);

  ZeroconfConfig bad_custom;
  bad_custom.schedule =
      zc::core::ProbeSchedule::from_timeouts({0.5, -0.25, 1.0});
  EXPECT_THROW(bad_custom.validate(), zc::ContractViolation);

  // Linear step overshooting zero makes a later window negative.
  ZeroconfConfig bad_linear;
  bad_linear.schedule = zc::core::ProbeSchedule::linear(4, 1.0, -0.5);
  EXPECT_THROW(bad_linear.validate(), zc::ContractViolation);
}

TEST(ZeroconfConfigValidate, RejectionsNameTheOffendingField) {
  ZeroconfConfig bad_wait;
  bad_wait.probe_wait_max = -0.5;
  expect_rejected(bad_wait, "probe_wait_max");

  ZeroconfConfig nan_wait;
  nan_wait.probe_wait_max = std::numeric_limits<double>::quiet_NaN();
  expect_rejected(nan_wait, "probe_wait_max");

  ZeroconfConfig bad_threshold;
  bad_threshold.rate_limit_threshold = 0;
  expect_rejected(bad_threshold, "rate_limit_threshold");

  ZeroconfConfig bad_delay;
  bad_delay.rate_limit_delay = -1.0;
  expect_rejected(bad_delay, "rate_limit_delay");

  ZeroconfConfig bad_announce;
  bad_announce.announce_interval =
      std::numeric_limits<double>::infinity();
  expect_rejected(bad_announce, "announce_interval");
}

TEST(ZeroconfConfigValidate, CalledAtHostConstruction) {
  Fixture f;
  ZeroconfConfig bad;
  bad.rate_limit_threshold = 0;
  EXPECT_THROW(ZeroconfHost(f.sim, f.medium, 100, bad, f.rng),
               zc::ContractViolation);
}

TEST(ScheduleHost, EachProbeUsesItsOwnWindow) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::from_timeouts({2.0, 0.5, 0.25});
  ZeroconfHost host(f.sim, f.medium, 100, config, f.rng);
  host.start();
  f.sim.run();
  // No responders: all three windows expire silently.
  EXPECT_EQ(host.outcome(), Outcome::configured);
  EXPECT_EQ(host.probes_sent(), 3u);
  EXPECT_DOUBLE_EQ(host.finish_time(), 2.75);
  EXPECT_DOUBLE_EQ(host.waiting_time(), 2.75);
  EXPECT_DOUBLE_EQ(host.model_listening(), 2.75);
}

TEST(ScheduleHost, GeometricWindowsShrinkAcrossTheAttempt) {
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::geometric(4, 1.0, 0.5);
  ZeroconfHost host(f.sim, f.medium, 100, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_EQ(host.outcome(), Outcome::configured);
  EXPECT_DOUBLE_EQ(host.waiting_time(), 1.875);  // 1 + 0.5 + 0.25 + 0.125
  EXPECT_DOUBLE_EQ(host.model_listening(), 1.875);
}

TEST(ScheduleHost, UniformScheduleSkipsModelListeningAccumulator) {
  // Uniform runs reconstruct listening as probes_sent * r; the
  // accumulator stays zero so RunResult keeps the historical arithmetic.
  Fixture f;
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(4, 2.0);
  ZeroconfHost host(f.sim, f.medium, 100, config, f.rng);
  host.start();
  f.sim.run();
  EXPECT_EQ(host.outcome(), Outcome::configured);
  EXPECT_DOUBLE_EQ(host.model_listening(), 0.0);
}

TEST(ScheduleNetwork, RunResultCarriesScheduleAccounting) {
  NetworkConfig segment;
  segment.address_space = 1000;
  segment.hosts = 0;  // silent segment: deterministic windows
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::from_timeouts({2.0, 0.5});

  Network net(segment, 7);
  const RunResult run = net.run_join(protocol);
  EXPECT_FALSE(run.uniform_schedule);
  EXPECT_DOUBLE_EQ(run.model_listening, 2.5);
  // model cost = sum r_i + probes * c (+ 0, no collision)
  EXPECT_DOUBLE_EQ(run.model_cost(3.0, 100.0), 2.5 + 2 * 3.0);

  ZeroconfConfig uniform;
  uniform.schedule = zc::core::ProbeSchedule::uniform(2, 1.25);
  net.reset(7);
  const RunResult urun = net.run_join(uniform);
  EXPECT_TRUE(urun.uniform_schedule);
  EXPECT_DOUBLE_EQ(urun.uniform_r, 1.25);
  EXPECT_EQ(urun.model_cost(3.0, 100.0),
            static_cast<double>(urun.probes_sent) * (1.25 + 3.0));
}

TEST(ScheduleMonteCarlo, NonUniformEstimatesThreadCountInvariant) {
  NetworkConfig segment;
  segment.address_space = 1000;
  segment.hosts = 200;
  segment.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(0.3, 20.0, 0.05));

  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::geometric(3, 0.4, 0.5);

  MonteCarloOptions serial;
  serial.trials = 2000;
  serial.seed = 99;
  serial.probe_cost = 1.0;
  serial.error_cost = 1000.0;
  serial.threads = 1;
  MonteCarloOptions parallel = serial;
  parallel.threads = 8;

  const MonteCarloResults a = monte_carlo(segment, protocol, serial);
  const MonteCarloResults b = monte_carlo(segment, protocol, parallel);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.collisions, b.collisions);
  // Bitwise: chunk merges are ordered, so the estimates are identical
  // doubles at any thread count, uniform or not.
  EXPECT_EQ(a.model_cost.mean, b.model_cost.mean);
  EXPECT_EQ(a.model_cost.stddev, b.model_cost.stddev);
  EXPECT_EQ(a.elapsed_cost.mean, b.elapsed_cost.mean);
  EXPECT_EQ(a.waiting_time.mean, b.waiting_time.mean);
}

TEST(ScheduleMonteCarlo, UniformScheduleMatchesHistoricalEstimates) {
  // A uniform schedule through the schedule-aware host must produce the
  // exact historical estimates (the golden campaign tests cover the
  // engine layer; this pins the sim layer directly).
  NetworkConfig segment;
  segment.address_space = 1000;
  segment.hosts = 200;
  segment.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(0.3, 20.0, 0.05));

  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.2);

  MonteCarloOptions opts;
  opts.trials = 1000;
  opts.seed = 4242;
  opts.probe_cost = 1.0;
  opts.error_cost = 1000.0;
  opts.threads = 2;
  const MonteCarloResults res = monte_carlo(segment, protocol, opts);
  EXPECT_EQ(res.completed, res.trials);
  // Model cost of every run is probes * (r + c): the mean is strictly
  // positive and finite.
  EXPECT_GT(res.model_cost.mean, 0.0);
  EXPECT_TRUE(std::isfinite(res.model_cost.mean));
}

}  // namespace
