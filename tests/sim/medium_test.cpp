#include "sim/medium.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::sim;

struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{42};
};

TEST(Medium, DeliversToSubscriberOfAddress) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  std::vector<Packet> received;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver =
      medium.attach([&](const Packet& p) { received.push_back(p); });
  medium.subscribe(receiver, 7);
  medium.broadcast(ArpProbe{7, sender});
  f.sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(packet_address(received[0]), 7u);
}

TEST(Medium, DoesNotDeliverToOtherAddressSubscribers) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(receiver, 8);
  medium.broadcast(ArpProbe{7, sender});
  f.sim.run();
  EXPECT_EQ(count, 0);
}

TEST(Medium, SenderDoesNotReceiveOwnPacket) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  int count = 0;
  const HostId host = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(host, 5);
  medium.broadcast(ArpProbe{5, host});
  f.sim.run();
  EXPECT_EQ(count, 0);
}

TEST(Medium, MultipleSubscribersAllReceive) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  for (int i = 0; i < 5; ++i) {
    const HostId receiver = medium.attach([&](const Packet&) { ++count; });
    medium.subscribe(receiver, 3);
  }
  medium.broadcast(ArpReply{3, sender});
  f.sim.run();
  EXPECT_EQ(count, 5);
}

TEST(Medium, UnsubscribeStopsDelivery) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(receiver, 9);
  medium.unsubscribe(receiver, 9);
  medium.broadcast(ArpProbe{9, sender});
  f.sim.run();
  EXPECT_EQ(count, 0);
}

TEST(Medium, UnsubscribeOfUnknownAddressIsNoop) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  const HostId host = medium.attach([](const Packet&) {});
  EXPECT_NO_THROW(medium.unsubscribe(host, 1234));
}

TEST(Medium, DuplicateSubscribeDeliversOnce) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(receiver, 4);
  medium.subscribe(receiver, 4);
  medium.broadcast(ArpProbe{4, sender});
  f.sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Medium, InFlightPacketDroppedAfterUnsubscribe) {
  // A packet delayed in transit must not reach a host that moved on.
  Fixture f;
  MediumConfig config;
  config.transit_delay = std::make_shared<zc::prob::Deterministic>(1.0);
  Medium medium(f.sim, config, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(receiver, 6);
  medium.broadcast(ArpProbe{6, sender});
  medium.unsubscribe(receiver, 6);  // before delivery at t=1
  f.sim.run();
  EXPECT_EQ(count, 0);
}

TEST(Medium, TransitDelayDefersDelivery) {
  Fixture f;
  MediumConfig config;
  config.transit_delay = std::make_shared<zc::prob::Deterministic>(2.5);
  Medium medium(f.sim, config, f.rng);
  double delivered_at = -1.0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver =
      medium.attach([&](const Packet&) { delivered_at = f.sim.now(); });
  medium.subscribe(receiver, 2);
  medium.broadcast(ArpProbe{2, sender});
  f.sim.run();
  EXPECT_EQ(delivered_at, 2.5);
}

TEST(Medium, TotalLossDeliversNothing) {
  Fixture f;
  MediumConfig config;
  config.loss = 0.999999999;
  Medium medium(f.sim, config, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(receiver, 1);
  for (int i = 0; i < 50; ++i) medium.broadcast(ArpProbe{1, sender});
  f.sim.run();
  EXPECT_EQ(count, 0);
  EXPECT_EQ(medium.packets_lost(), 50u);
}

TEST(Medium, LossRateMatchesConfiguredProbability) {
  Fixture f;
  MediumConfig config;
  config.loss = 0.3;
  Medium medium(f.sim, config, f.rng);
  int count = 0;
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([&](const Packet&) { ++count; });
  medium.subscribe(receiver, 1);
  const int n = 20000;
  for (int i = 0; i < n; ++i) medium.broadcast(ArpProbe{1, sender});
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(count) / n, 0.7, 0.01);
  EXPECT_EQ(medium.packets_sent(), static_cast<std::size_t>(n));
}

TEST(Medium, InvalidLossRejected) {
  Fixture f;
  MediumConfig config;
  config.loss = 1.0;
  EXPECT_THROW(Medium(f.sim, config, f.rng), zc::ContractViolation);
}

TEST(Medium, SubscribeUnknownHostRejected) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  EXPECT_THROW(medium.subscribe(99, 1), zc::ContractViolation);
}

TEST(Medium, NullReceiverRejected) {
  Fixture f;
  Medium medium(f.sim, {}, f.rng);
  EXPECT_THROW((void)medium.attach(nullptr), zc::ContractViolation);
}

}  // namespace
