#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/contract.hpp"
#include "faults/schedule.hpp"
#include "prob/delay.hpp"
#include "sim/medium.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/network.hpp"

namespace {

using namespace zc::sim;

/// Same exaggerated-loss scenario as the Monte-Carlo tests: measurable
/// collision rates, fast runs.
NetworkConfig exaggerated_network() {
  NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(0.4, 20.0, 0.1));
  return config;
}

/// One of everything: the schedule used to prove determinism is
/// independent of which faults are active.
zc::faults::FaultSchedule everything_schedule() {
  zc::faults::FaultSchedule faults;
  faults.gilbert_elliott.p_enter_burst = 0.05;
  faults.gilbert_elliott.p_exit_burst = 0.25;
  faults.gilbert_elliott.loss_bad = 0.9;
  faults.blackout.windows.start = 0.5;
  faults.blackout.windows.duration = 0.2;
  faults.blackout.windows.period = 2.0;
  faults.delay_spike.windows.start = 1.0;
  faults.delay_spike.windows.duration = 0.5;
  faults.delay_spike.windows.period = 3.0;
  faults.delay_spike.multiplier = 4.0;
  faults.delay_spike.extra = 0.05;
  faults.duplication.probability = 0.15;
  faults.duplication.copies = 2;
  faults.reordering.probability = 0.3;
  faults.reordering.max_jitter = 0.2;
  faults.host_churn.deaf_fraction = 0.3;
  faults.host_churn.period = 4.0;
  faults.host_churn.deaf_duration = 1.0;
  return faults;
}

// --- Runaway-run safeguards ------------------------------------------------

TEST(Safeguards, FullyOccupiedSpaceAbortsAtAttemptCap) {
  // Every address in [1, space] is defended by an instantly-replying
  // host: without a cap the joiner would retry forever. Network forbids
  // hosts == address_space, so build the segment directly.
  Simulator sim;
  zc::prob::Rng rng(11);
  Medium medium(sim, MediumConfig{}, rng);
  constexpr Address kSpace = 8;
  std::vector<std::unique_ptr<ConfiguredHost>> defenders;
  for (Address a = 1; a <= kSpace; ++a)
    defenders.push_back(
        std::make_unique<ConfiguredHost>(sim, medium, a, nullptr, rng));

  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.5);
  protocol.max_attempts = 50;
  ZeroconfHost joiner(sim, medium, kSpace, protocol, rng);
  joiner.start();
  sim.run();  // terminates only because of the cap

  EXPECT_EQ(joiner.outcome(), Outcome::aborted);
  EXPECT_EQ(joiner.attempts(), 50u);
  EXPECT_EQ(joiner.configured_address(), kNoAddress);
}

TEST(Safeguards, ProbeCapAbortsFullyOccupiedSpace) {
  Simulator sim;
  zc::prob::Rng rng(12);
  Medium medium(sim, MediumConfig{}, rng);
  constexpr Address kSpace = 4;
  std::vector<std::unique_ptr<ConfiguredHost>> defenders;
  for (Address a = 1; a <= kSpace; ++a)
    defenders.push_back(
        std::make_unique<ConfiguredHost>(sim, medium, a, nullptr, rng));

  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.5);
  protocol.max_probes = 40;
  ZeroconfHost joiner(sim, medium, kSpace, protocol, rng);
  joiner.start();
  sim.run();

  EXPECT_EQ(joiner.outcome(), Outcome::aborted);
  EXPECT_LE(joiner.probes_sent(), 40u);
  EXPECT_EQ(joiner.configured_address(), kNoAddress);
}

TEST(Safeguards, CapsDoNotTriggerOnNormalRuns) {
  // Generous caps must be invisible: an uncontended join configures.
  NetworkConfig net = exaggerated_network();
  net.hosts = 1;
  Network network(net, 21);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.2);
  protocol.max_attempts = 1000;
  protocol.max_probes = 10000;
  const auto result = network.run_join(protocol);
  EXPECT_FALSE(result.aborted);
  EXPECT_NE(result.address, kNoAddress);
}

TEST(Safeguards, VirtualTimeBudgetAbortsPendingJoiner) {
  // n = 1, r = 2: the earliest possible claim is t = 2, past the budget.
  NetworkConfig net = exaggerated_network();
  net.max_virtual_time = 0.5;
  Network network(net, 31);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(1, 2.0);
  const auto result = network.run_join(protocol);
  EXPECT_TRUE(result.aborted);
  EXPECT_FALSE(result.collision);
  EXPECT_EQ(result.address, kNoAddress);
}

TEST(Safeguards, PermanentBlackoutWithBudgetTerminates) {
  // A permanent blackout swallows every probe; defenders never answer, so
  // the joiner happily claims after n silent periods — unless churn also
  // deafens it. The important property: with a budget, *every* such run
  // terminates with an explicit outcome instead of hanging.
  NetworkConfig net = exaggerated_network();
  net.faults.blackout.windows.duration = 1e9;  // effectively forever
  net.max_virtual_time = 50.0;
  Network network(net, 41);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(4, 2.0);
  protocol.max_attempts = 64;
  const auto result = network.run_join(protocol);
  EXPECT_TRUE(result.aborted || result.address != kNoAddress);
}

// --- Monte-Carlo aggregation under aborts ----------------------------------

TEST(MonteCarloRobustness, AllAbortedTrialsStayFinite) {
  NetworkConfig net = exaggerated_network();
  net.max_virtual_time = 0.5;
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(1, 2.0);
  MonteCarloOptions opts;
  opts.trials = 200;
  opts.seed = 51;
  const auto results = monte_carlo(net, protocol, opts);

  EXPECT_EQ(results.aborted, results.trials);
  EXPECT_EQ(results.completed, 0u);
  EXPECT_DOUBLE_EQ(results.aborted_rate, 1.0);
  EXPECT_EQ(results.collisions, 0u);
  EXPECT_DOUBLE_EQ(results.collision_rate, 0.0);
  // Degenerate CI is the vacuous [0, 1], not NaN.
  EXPECT_DOUBLE_EQ(results.collision_ci95.lower, 0.0);
  EXPECT_DOUBLE_EQ(results.collision_ci95.upper, 1.0);
  EXPECT_TRUE(std::isfinite(results.model_cost.mean));
  EXPECT_TRUE(std::isfinite(results.elapsed_cost.mean));
  EXPECT_TRUE(std::isfinite(results.waiting_time.mean));
}

TEST(MonteCarloRobustness, PartialAbortsAreTalliedAndExcluded) {
  // Nearly-full space (3 of 4 addresses taken), reliable instant replies,
  // and a tight attempt cap: some trials abort, some configure.
  NetworkConfig net;
  net.address_space = 4;
  net.hosts = 3;
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.3);
  protocol.max_attempts = 3;
  MonteCarloOptions opts;
  opts.trials = 2000;
  opts.seed = 61;
  const auto results = monte_carlo(net, protocol, opts);

  EXPECT_GT(results.aborted, 0u);
  EXPECT_GT(results.completed, 0u);
  EXPECT_EQ(results.completed + results.aborted + results.non_finite,
            results.trials);
  EXPECT_NEAR(results.aborted_rate,
              static_cast<double>(results.aborted) /
                  static_cast<double>(results.trials),
              1e-12);
  EXPECT_TRUE(std::isfinite(results.model_cost.mean));
  EXPECT_TRUE(std::isfinite(results.model_cost.stddev));
  EXPECT_TRUE(std::isfinite(results.elapsed_cost.mean));
  EXPECT_TRUE(std::isfinite(results.probes.mean));
  EXPECT_TRUE(std::isfinite(results.attempts.mean));
  // Completed runs claimed the one free address without a lost reply, so
  // none of them collided; aborted runs must not count as collisions.
  EXPECT_EQ(results.collisions, 0u);
}

TEST(MonteCarloRobustness, DeterministicAcrossThreadCountsUnderFaults) {
  // The determinism contract must survive the fault layer: the injector
  // draws from its own split-seeded stream, so thread count stays a pure
  // performance knob even with every fault class active.
  NetworkConfig net = exaggerated_network();
  net.faults = everything_schedule();
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.3);
  protocol.max_attempts = 64;

  MonteCarloOptions serial;
  serial.trials = 1500;
  serial.seed = 71;
  serial.threads = 1;
  MonteCarloOptions two = serial;
  two.threads = 2;
  MonteCarloOptions hardware = serial;
  hardware.threads = 0;

  const auto a = monte_carlo(net, protocol, serial);
  const auto b = monte_carlo(net, protocol, two);
  const auto c = monte_carlo(net, protocol, hardware);

  const auto expect_same = [](const MonteCarloResults& x,
                              const MonteCarloResults& y) {
    EXPECT_EQ(x.collisions, y.collisions);
    EXPECT_EQ(x.aborted, y.aborted);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.collision_rate, y.collision_rate);
    EXPECT_EQ(x.collision_ci95.lower, y.collision_ci95.lower);
    EXPECT_EQ(x.collision_ci95.upper, y.collision_ci95.upper);
    EXPECT_EQ(x.model_cost.mean, y.model_cost.mean);
    EXPECT_EQ(x.model_cost.stddev, y.model_cost.stddev);
    EXPECT_EQ(x.elapsed_cost.mean, y.elapsed_cost.mean);
    EXPECT_EQ(x.probes.mean, y.probes.mean);
    EXPECT_EQ(x.attempts.mean, y.attempts.mean);
    EXPECT_EQ(x.waiting_time.mean, y.waiting_time.mean);
  };
  expect_same(a, b);
  expect_same(a, c);
}

TEST(MonteCarloRobustness, FaultsShiftEstimatesButKeepThemFinite) {
  // Sanity: the adversarial schedule actually changes the measured
  // protocol behaviour (more probes / retries than the clean run).
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.3);
  protocol.max_attempts = 64;
  MonteCarloOptions opts;
  opts.trials = 1500;
  opts.seed = 81;

  const auto clean = monte_carlo(exaggerated_network(), protocol, opts);
  NetworkConfig faulty = exaggerated_network();
  faulty.faults = everything_schedule();
  const auto adversarial = monte_carlo(faulty, protocol, opts);

  EXPECT_TRUE(std::isfinite(adversarial.model_cost.mean));
  EXPECT_NE(adversarial.model_cost.mean, clean.model_cost.mean);
}

// --- Construction-time validation ------------------------------------------

TEST(Validation, MediumLossAboveRangeRejectedByName) {
  Simulator sim;
  zc::prob::Rng rng(1);
  MediumConfig config;
  config.loss = 1.0;  // certain loss would spin the protocol forever
  try {
    Medium medium(sim, config, rng);
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("MediumConfig.loss"),
              std::string::npos);
  }
}

TEST(Validation, NonFiniteCostOptionsRejectedByName) {
  MonteCarloOptions opts;
  opts.trials = 10;
  opts.probe_cost = std::nan("");
  try {
    (void)monte_carlo(exaggerated_network(), ZeroconfConfig{}, opts);
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("MonteCarloOptions.probe_cost"),
              std::string::npos);
  }
}

TEST(Validation, NegativeErrorCostRejectedByName) {
  MonteCarloOptions opts;
  opts.trials = 10;
  opts.error_cost = -1.0;
  try {
    (void)monte_carlo(exaggerated_network(), ZeroconfConfig{}, opts);
    FAIL() << "expected a ContractViolation";
  } catch (const zc::ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("MonteCarloOptions.error_cost"),
              std::string::npos);
  }
}

TEST(Validation, NetworkRejectsInvalidFaultScheduleAtConstruction) {
  NetworkConfig net = exaggerated_network();
  net.faults.gilbert_elliott.p_enter_burst = 2.0;
  EXPECT_THROW((void)Network(net, 1), zc::ContractViolation);
}

TEST(Validation, NegativeVirtualTimeBudgetRejected) {
  NetworkConfig net = exaggerated_network();
  net.max_virtual_time = -1.0;
  EXPECT_THROW((void)Network(net, 1), zc::ContractViolation);
}

}  // namespace
