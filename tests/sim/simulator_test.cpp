#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/contract.hpp"
#include "prob/rng.hpp"

namespace {

using zc::sim::EventHandle;
using zc::sim::Simulator;

TEST(Simulator, StartsAtTimeZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 2.5);
  EXPECT_EQ(sim.now(), 2.5);
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  h.cancel();
  EXPECT_NO_THROW(h.cancel());
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_NO_THROW(h.cancel());
}

TEST(Simulator, DefaultHandleIsNotPending) {
  const EventHandle h;
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0 * i, [] {});
  EXPECT_EQ(sim.run(), 5u);
}

TEST(Simulator, CancelledEventsNotCounted) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {}).cancel();
  EXPECT_EQ(sim.run(), 1u);
}

TEST(Simulator, MaxEventsBoundsExecution) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0 * i, [] {});
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.schedule(t, [&, t] { fired.push_back(t); });
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  // Events exactly at the horizon run too.
  sim.run_until(3.0);
  EXPECT_EQ(fired.back(), 3.0);
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW((void)sim.schedule(-1.0, [] {}), zc::ContractViolation);
}

TEST(Simulator, PastAbsoluteTimeRejected) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW((void)sim.schedule_at(4.0, [] {}), zc::ContractViolation);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 1.0);
}

TEST(Simulator, PendingEventsExcludesCancelledEvents) {
  // Regression: the pre-pool implementation reported queue size, so a
  // cancelled-but-not-yet-popped event still counted as pending.
  Simulator sim;
  sim.schedule(1.0, [] {});
  EventHandle cancelled = sim.schedule(2.0, [] {});
  sim.schedule(3.0, [] {});
  EXPECT_EQ(sim.pending_events(), 3u);
  cancelled.cancel();
  EXPECT_EQ(sim.pending_events(), 2u);
  cancelled.cancel();  // idempotent: no double decrement
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.run(1);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, NonFiniteDelayRejected) {
  Simulator sim;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)sim.schedule(nan, [] {}), zc::ContractViolation);
  EXPECT_THROW((void)sim.schedule(inf, [] {}), zc::ContractViolation);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, NonFiniteAbsoluteTimeRejected) {
  // Regression: +inf passed the `time >= now()` precondition and then
  // corrupted the ordering comparator / advanced the clock to infinity.
  Simulator sim;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)sim.schedule_at(nan, [] {}), zc::ContractViolation);
  EXPECT_THROW((void)sim.schedule_at(inf, [] {}), zc::ContractViolation);
  EXPECT_THROW((void)sim.schedule_at(-inf, [] {}), zc::ContractViolation);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, SlotsAreRecycledWithoutGrowingTheSlab) {
  Simulator sim;
  for (int round = 0; round < 100; ++round) sim.schedule(round * 1.0, [] {});
  sim.run();
  const std::size_t slab = sim.pool_slots();
  EXPECT_GE(slab, 1u);
  // Sequential schedule/fire cycles reuse the freed slots.
  for (int round = 0; round < 1000; ++round) {
    sim.schedule(1.0, [] {});
    sim.run();
  }
  EXPECT_EQ(sim.pool_slots(), slab);
  EXPECT_GE(sim.pool_reuse_count(), 1000u);
  EXPECT_GE(sim.pool_high_water(), 100u);
}

TEST(Simulator, StaleHandleOfRecycledSlotIsInert) {
  Simulator sim;
  EventHandle first = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_FALSE(first.pending());
  // The freed slot is recycled by the next event; the stale handle must
  // neither report it pending nor cancel it.
  bool fired = false;
  sim.schedule(1.0, [&] { fired = true; });
  EXPECT_FALSE(first.pending());
  first.cancel();
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, ResetDropsPendingEventsAndRewindsClock) {
  Simulator sim;
  bool fired = false;
  sim.schedule(1.0, [&] { fired = true; });
  sim.run();
  EventHandle pending = sim.schedule(5.0, [&] { fired = false; });
  sim.reset();
  EXPECT_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(pending.pending());
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_TRUE(fired);
  // The simulator is fully usable after reset.
  std::vector<double> times;
  sim.schedule(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool ordered = true;
  zc::prob::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(rng.uniform(0.0, 100.0), [&] {
      if (sim.now() < last) ordered = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
