#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/contract.hpp"
#include "prob/rng.hpp"

namespace {

using zc::sim::EventHandle;
using zc::sim::Simulator;

TEST(Simulator, StartsAtTimeZero) {
  const Simulator sim;
  EXPECT_EQ(sim.now(), 0.0);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 2.5);
  EXPECT_EQ(sim.now(), 2.5);
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(1.0, [&] { order.push_back(2); });
  sim.schedule(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  h.cancel();
  EXPECT_NO_THROW(h.cancel());
}

TEST(Simulator, CancelAfterFireIsHarmless) {
  Simulator sim;
  EventHandle h = sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_NO_THROW(h.cancel());
}

TEST(Simulator, DefaultHandleIsNotPending) {
  const EventHandle h;
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunReturnsExecutedCount) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0 * i, [] {});
  EXPECT_EQ(sim.run(), 5u);
}

TEST(Simulator, CancelledEventsNotCounted) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {}).cancel();
  EXPECT_EQ(sim.run(), 1u);
}

TEST(Simulator, MaxEventsBoundsExecution) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0 * i, [] {});
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0})
    sim.schedule(t, [&, t] { fired.push_back(t); });
  sim.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  // Events exactly at the horizon run too.
  sim.run_until(3.0);
  EXPECT_EQ(fired.back(), 3.0);
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW((void)sim.schedule(-1.0, [] {}), zc::ContractViolation);
}

TEST(Simulator, PastAbsoluteTimeRejected) {
  Simulator sim;
  sim.schedule(5.0, [] {});
  sim.run();
  EXPECT_THROW((void)sim.schedule_at(4.0, [] {}), zc::ContractViolation);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(1.0, [&] {
    order.push_back(1);
    sim.schedule(0.0, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 1.0);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  double last = -1.0;
  bool ordered = true;
  zc::prob::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    sim.schedule(rng.uniform(0.0, 100.0), [&] {
      if (sim.now() < last) ordered = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
}

}  // namespace
