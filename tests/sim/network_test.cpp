#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/contract.hpp"
#include "prob/families.hpp"

namespace {

using namespace zc::sim;

NetworkConfig small_network(unsigned hosts = 20, Address space = 100) {
  NetworkConfig config;
  config.address_space = space;
  config.hosts = hosts;
  config.responder_delay = std::shared_ptr<const zc::prob::DelayDistribution>(
      zc::prob::paper_reply_delay(0.0, 100.0, 0.01));
  return config;
}

TEST(Network, PopulatesDistinctAddresses) {
  Network net(small_network(50, 60), 1);
  std::set<Address> used;
  for (Address a = 1; a <= 60; ++a)
    if (net.is_in_use(a)) used.insert(a);
  EXPECT_EQ(used.size(), 50u);
}

TEST(Network, RejectsOverfullAddressSpace) {
  NetworkConfig config = small_network(100, 100);
  EXPECT_THROW(Network(config, 1), zc::ContractViolation);
}

TEST(Network, RunJoinConfiguresFreeAddress) {
  Network net(small_network(), 2);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.5);
  const RunResult result = net.run_join(protocol);
  EXPECT_NE(result.address, kNoAddress);
  // With reliable instant-ish responders, the claim is collision-free.
  EXPECT_FALSE(result.collision);
  EXPECT_FALSE(net.is_in_use(result.address));
  EXPECT_GE(result.attempts, 1u);
  // The final (successful) attempt sends all n probes; failed attempts
  // send between 1 and n each.
  EXPECT_GE(result.probes_sent, 3u);
  EXPECT_LE(result.probes_sent, 3u * result.attempts);
  EXPECT_GT(result.elapsed, 0.0);
}

TEST(Network, ConflictsReflectOccupancy) {
  // Dense occupancy (80 of 100): expect conflicts before success.
  Network net(small_network(80, 100), 3);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.2);
  const RunResult result = net.run_join(protocol);
  EXPECT_FALSE(result.collision);
  EXPECT_GE(result.attempts, 1u);
}

TEST(Network, LossyRespondersCauseCollisions) {
  // Responders whose replies are almost always lost: claiming an occupied
  // address becomes likely when q is high.
  NetworkConfig config = small_network(90, 100);
  config.responder_delay = std::make_shared<zc::prob::DefectiveDelay>(
      std::make_unique<zc::prob::Exponential>(100.0), 0.95, 0.0);
  int collisions = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Network net(config, seed);
    ZeroconfConfig protocol;
    protocol.schedule = zc::core::ProbeSchedule::uniform(1, 0.5);
    if (net.run_join(protocol).collision) ++collisions;
  }
  EXPECT_GT(collisions, 10);
}

TEST(Network, ModelCostAccounting) {
  RunResult r;
  r.probes_sent = 6;
  r.uniform_r = 2.0;
  r.collision = false;
  EXPECT_DOUBLE_EQ(r.model_cost(3.0, 100.0), 30.0);
  r.collision = true;
  EXPECT_DOUBLE_EQ(r.model_cost(3.0, 100.0), 130.0);
}

TEST(Network, ElapsedCostAccounting) {
  RunResult r;
  r.probes_sent = 4;
  r.waiting_time = 5.5;
  r.collision = false;
  EXPECT_DOUBLE_EQ(r.elapsed_cost(0.5, 50.0), 7.5);
  r.collision = true;
  EXPECT_DOUBLE_EQ(r.elapsed_cost(0.5, 50.0), 57.5);
}

TEST(Network, SimultaneousJoinAllConfigure) {
  Network net(small_network(10, 200), 4);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.3);
  protocol.probe_wait_max = 1.0;
  const auto results = net.run_simultaneous_join(protocol, 8);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    EXPECT_NE(r.address, kNoAddress);
    EXPECT_FALSE(net.is_in_use(r.address));
  }
}

TEST(Network, SimultaneousJoinDetectsMutualCollisions) {
  // Tiny address space forces joiners into each other; with probe-
  // conflict detection disabled and lossy responders, duplicate claims
  // are possible and must be flagged.
  NetworkConfig config = small_network(1, 4);
  config.responder_delay = std::make_shared<zc::prob::DefectiveDelay>(
      std::make_unique<zc::prob::Exponential>(100.0), 0.9999, 0.0);
  Network net(config, 5);
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(1, 0.1);
  protocol.detect_probe_conflicts = false;
  protocol.probe_wait_max = 0.0;  // maximal clash probability
  const auto results = net.run_simultaneous_join(protocol, 6);
  int collisions = 0;
  for (const auto& r : results)
    if (r.collision) ++collisions;
  // 6 joiners over 4 addresses: pigeonhole guarantees duplicates.
  EXPECT_GE(collisions, 2);
}

TEST(Network, DeterministicForEqualSeeds) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.4);
  Network a(small_network(40, 100), 9);
  Network b(small_network(40, 100), 9);
  const RunResult ra = a.run_join(protocol);
  const RunResult rb = b.run_join(protocol);
  EXPECT_EQ(ra.address, rb.address);
  EXPECT_EQ(ra.probes_sent, rb.probes_sent);
  EXPECT_EQ(ra.attempts, rb.attempts);
  EXPECT_DOUBLE_EQ(ra.elapsed, rb.elapsed);
}

TEST(Network, SimultaneousJoinCountValidated) {
  Network net(small_network(), 10);
  EXPECT_THROW((void)net.run_simultaneous_join(ZeroconfConfig{}, 0),
               zc::ContractViolation);
}

}  // namespace
