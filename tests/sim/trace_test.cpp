#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/host.hpp"
#include "sim/zeroconf_host.hpp"

namespace {

using namespace zc::sim;

struct Fixture {
  Simulator sim;
  zc::prob::Rng rng{33};
  Medium medium{sim, {}, rng};
  TraceLog trace;

  Fixture() { trace.attach(medium); }
};

TEST(Trace, RecordsDeliveries) {
  Fixture f;
  const HostId sender = f.medium.attach([](const Packet&) {});
  const HostId receiver = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(receiver, 7);
  f.medium.broadcast(ArpProbe{7, sender});
  f.sim.run();
  ASSERT_EQ(f.trace.size(), 1u);
  EXPECT_EQ(packet_address(f.trace.records()[0].packet), 7u);
  EXPECT_EQ(f.trace.records()[0].target, receiver);
  EXPECT_FALSE(f.trace.records()[0].lost);
}

TEST(Trace, RecordsLosses) {
  Fixture f2;
  Simulator sim;
  zc::prob::Rng rng{34};
  MediumConfig lossy;
  lossy.loss = 0.999999999;
  Medium medium(sim, lossy, rng);
  TraceLog trace;
  trace.attach(medium);
  const HostId sender = medium.attach([](const Packet&) {});
  const HostId receiver = medium.attach([](const Packet&) {});
  medium.subscribe(receiver, 3);
  for (int i = 0; i < 20; ++i) medium.broadcast(ArpReply{3, sender});
  sim.run();
  EXPECT_EQ(trace.size(), 20u);
  EXPECT_EQ(trace.losses(), 20u);
}

TEST(Trace, CapturesFullProtocolRun) {
  Fixture f;
  // The trace records *deliveries*: add a promiscuous monitor subscribed
  // to every address so each probe has at least one receiver.
  const HostId monitor = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(monitor, 1);
  f.medium.subscribe(monitor, 2);
  ConfiguredHost owner(f.sim, f.medium, 1, nullptr, f.rng);
  ZeroconfConfig config;
  config.schedule = zc::core::ProbeSchedule::uniform(2, 0.5);
  config.avoid_failed_addresses = true;
  ZeroconfHost joiner(f.sim, f.medium, 2, config, f.rng);
  joiner.start();
  f.sim.run();
  EXPECT_EQ(joiner.outcome(), Outcome::configured);
  // Every probe the joiner sent reached (at least) the monitor.
  std::size_t probes = 0;
  for (const auto& r : f.trace.records())
    if (std::holds_alternative<ArpProbe>(r.packet) && r.target == monitor)
      ++probes;
  EXPECT_EQ(probes, joiner.probes_sent());
}

TEST(Trace, FilterByAddress) {
  Fixture f;
  const HostId sender = f.medium.attach([](const Packet&) {});
  const HostId a = f.medium.attach([](const Packet&) {});
  const HostId b = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(a, 1);
  f.medium.subscribe(b, 2);
  f.medium.broadcast(ArpProbe{1, sender});
  f.medium.broadcast(ArpProbe{2, sender});
  f.medium.broadcast(ArpProbe{2, sender});
  f.sim.run();
  EXPECT_EQ(f.trace.for_address(1).size(), 1u);
  EXPECT_EQ(f.trace.for_address(2).size(), 2u);
  EXPECT_TRUE(f.trace.for_address(99).empty());
}

TEST(Trace, ClearEmptiesTheLog) {
  Fixture f;
  const HostId sender = f.medium.attach([](const Packet&) {});
  const HostId receiver = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(receiver, 4);
  f.medium.broadcast(ArpProbe{4, sender});
  f.sim.run();
  EXPECT_FALSE(f.trace.empty());
  f.trace.clear();
  EXPECT_TRUE(f.trace.empty());
}

TEST(Trace, FormatMentionsKindAddressAndFate) {
  DeliveryRecord lost;
  lost.sent_at = 1.25;
  lost.delivered_at = 1.25;
  lost.packet = ArpProbe{42, 3};
  lost.target = 9;
  lost.lost = true;
  const std::string line = format_record(lost);
  EXPECT_NE(line.find("PROBE"), std::string::npos);
  EXPECT_NE(line.find("addr=42"), std::string::npos);
  EXPECT_NE(line.find("3 -> 9"), std::string::npos);
  EXPECT_NE(line.find("LOST"), std::string::npos);

  DeliveryRecord delayed;
  delayed.sent_at = 0.0;
  delayed.delivered_at = 0.5;
  delayed.packet = ArpReply{7, 1};
  delayed.target = 2;
  const std::string line2 = format_record(delayed);
  EXPECT_NE(line2.find("REPLY"), std::string::npos);
  EXPECT_NE(line2.find("delivered"), std::string::npos);
}

TEST(Trace, PrintRespectsLineLimit) {
  Fixture f;
  const HostId sender = f.medium.attach([](const Packet&) {});
  const HostId receiver = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(receiver, 5);
  for (int i = 0; i < 10; ++i) f.medium.broadcast(ArpProbe{5, sender});
  f.sim.run();
  std::ostringstream os;
  f.trace.print(os, 3);
  EXPECT_NE(os.str().find("7 more"), std::string::npos);
}

TEST(Trace, DetachByReplacingObserver) {
  Fixture f;
  f.medium.set_observer(nullptr);
  const HostId sender = f.medium.attach([](const Packet&) {});
  const HostId receiver = f.medium.attach([](const Packet&) {});
  f.medium.subscribe(receiver, 6);
  f.medium.broadcast(ArpProbe{6, sender});
  f.sim.run();
  EXPECT_TRUE(f.trace.empty());
}

}  // namespace
