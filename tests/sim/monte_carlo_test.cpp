#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/contract.hpp"
#include "obs/report.hpp"
#include "prob/families.hpp"
#include "prob/rng.hpp"
#include "core/cost.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::sim;

/// An exaggerated-loss scenario in which collisions are frequent enough
/// for Monte-Carlo estimation: 30 of 100 addresses taken (q = 0.3),
/// replies lost 40% of the time, round-trip 0.1 s, rate 20.
struct Exaggerated {
  static constexpr double kQ = 0.3;
  static constexpr double kLoss = 0.4;
  static constexpr double kLambda = 20.0;
  static constexpr double kRoundTrip = 0.1;

  static NetworkConfig network() {
    NetworkConfig config;
    config.address_space = 100;
    config.hosts = 30;
    config.responder_delay =
        std::shared_ptr<const zc::prob::DelayDistribution>(
            zc::prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
    return config;
  }

  static zc::core::ScenarioParams model(double probe_cost,
                                        double error_cost) {
    return zc::core::ScenarioParams(
        kQ, probe_cost, error_cost,
        zc::prob::paper_reply_delay(kLoss, kLambda, kRoundTrip));
  }
};

TEST(MonteCarlo, CollisionRateMatchesAnalyticModel) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.3);
  MonteCarloOptions opts;
  opts.trials = 20000;
  opts.seed = 1;
  const auto results = monte_carlo(Exaggerated::network(), protocol, opts);

  const double analytic = zc::core::error_probability(
      Exaggerated::model(opts.probe_cost, opts.error_cost),
      zc::core::ProtocolParams{2, 0.3});
  EXPECT_GT(analytic, 0.01);  // exaggeration worked: measurable rate
  EXPECT_GE(analytic, results.collision_ci95.lower);
  EXPECT_LE(analytic, results.collision_ci95.upper);
}

TEST(MonteCarlo, ModelCostMatchesAnalyticModel) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.25);
  MonteCarloOptions opts;
  opts.trials = 20000;
  opts.seed = 2;
  opts.probe_cost = 1.5;
  opts.error_cost = 40.0;
  const auto results = monte_carlo(Exaggerated::network(), protocol, opts);

  const double analytic = zc::core::mean_cost(
      Exaggerated::model(opts.probe_cost, opts.error_cost),
      zc::core::ProtocolParams{3, 0.25});
  EXPECT_NEAR(results.model_cost.mean, analytic,
              4.0 * results.model_cost.ci95_halfwidth);
}

TEST(MonteCarlo, ProbeCountMatchesAnalyticModel) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.2);
  MonteCarloOptions opts;
  opts.trials = 20000;
  opts.seed = 3;
  const auto results = monte_carlo(Exaggerated::network(), protocol, opts);

  // Mean probes = mean cost with unit per-probe charge and no error cost.
  const auto probe_counter = Exaggerated::model(1.0, 0.0);
  const double analytic =
      zc::core::mean_cost(probe_counter, zc::core::ProtocolParams{2, 0.2}) /
      (0.2 + 1.0);
  EXPECT_NEAR(results.probes.mean, analytic,
              4.0 * results.probes.ci95_halfwidth);
}

TEST(MonteCarlo, AttemptCountMatchesAnalyticModel) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.2);
  MonteCarloOptions opts;
  opts.trials = 20000;
  opts.seed = 4;
  const auto results = monte_carlo(Exaggerated::network(), protocol, opts);

  const double analytic = zc::core::mean_address_attempts(
      Exaggerated::model(1.0, 0.0), zc::core::ProtocolParams{2, 0.2});
  EXPECT_NEAR(results.attempts.mean, analytic,
              4.0 * results.attempts.ci95_halfwidth);
}

TEST(MonteCarlo, ElapsedCostBelowModelCost) {
  // Immediate abort on conflict makes true waiting shorter than the
  // model's full-period accounting whenever conflicts occur.
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.5);
  MonteCarloOptions opts;
  opts.trials = 5000;
  opts.seed = 5;
  opts.error_cost = 0.0;  // isolate the time component
  opts.probe_cost = 0.0;
  const auto results = monte_carlo(Exaggerated::network(), protocol, opts);
  EXPECT_LT(results.elapsed_cost.mean, results.model_cost.mean);
  EXPECT_GT(results.elapsed_cost.mean, 0.0);
}

TEST(MonteCarlo, WaitingTimeAtLeastNSilentPeriods) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.4);
  MonteCarloOptions opts;
  opts.trials = 2000;
  opts.seed = 6;
  const auto results = monte_carlo(Exaggerated::network(), protocol, opts);
  // Every run ends with n full silent periods.
  EXPECT_GE(results.waiting_time.mean, 3 * 0.4 - 1e-9);
}

TEST(MonteCarlo, DeterministicForEqualSeeds) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.3);
  MonteCarloOptions opts;
  opts.trials = 500;
  opts.seed = 7;
  const auto a = monte_carlo(Exaggerated::network(), protocol, opts);
  const auto b = monte_carlo(Exaggerated::network(), protocol, opts);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_DOUBLE_EQ(a.model_cost.mean, b.model_cost.mean);
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  // The whole point of the counter-based seeding + ordered chunk merge:
  // thread count is a pure performance knob. Estimates must agree
  // *bitwise*, not just statistically.
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 0.3);
  MonteCarloOptions serial;
  serial.trials = 4000;
  serial.seed = 99;
  serial.threads = 1;
  MonteCarloOptions parallel = serial;
  parallel.threads = 8;
  const auto a = monte_carlo(Exaggerated::network(), protocol, serial);
  const auto b = monte_carlo(Exaggerated::network(), protocol, parallel);

  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.collision_rate, b.collision_rate);
  EXPECT_EQ(a.collision_ci95.lower, b.collision_ci95.lower);
  EXPECT_EQ(a.collision_ci95.upper, b.collision_ci95.upper);
  const auto expect_same = [](const Estimate& x, const Estimate& y) {
    EXPECT_EQ(x.mean, y.mean);
    EXPECT_EQ(x.stddev, y.stddev);
    EXPECT_EQ(x.ci95_halfwidth, y.ci95_halfwidth);
  };
  expect_same(a.model_cost, b.model_cost);
  expect_same(a.elapsed_cost, b.elapsed_cost);
  expect_same(a.probes, b.probes);
  expect_same(a.attempts, b.attempts);
  expect_same(a.waiting_time, b.waiting_time);
}

TEST(MonteCarlo, HardwareThreadsDefaultMatchesSerial) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.25);
  MonteCarloOptions opts;
  opts.trials = 1500;
  opts.seed = 123;
  opts.threads = 0;  // hardware concurrency
  MonteCarloOptions serial = opts;
  serial.threads = 1;
  const auto a = monte_carlo(Exaggerated::network(), protocol, opts);
  const auto b = monte_carlo(Exaggerated::network(), protocol, serial);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.model_cost.mean, b.model_cost.mean);
  EXPECT_EQ(a.probes.stddev, b.probes.stddev);
}

TEST(MonteCarlo, CiShrinksWithTrials) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.3);
  MonteCarloOptions small;
  small.trials = 500;
  small.seed = 8;
  MonteCarloOptions large;
  large.trials = 8000;
  large.seed = 8;
  const auto s = monte_carlo(Exaggerated::network(), protocol, small);
  const auto l = monte_carlo(Exaggerated::network(), protocol, large);
  EXPECT_LT(l.probes.ci95_halfwidth, s.probes.ci95_halfwidth);
}

TEST(MonteCarlo, ZeroTrialsRejected) {
  MonteCarloOptions opts;
  opts.trials = 0;
  EXPECT_THROW(
      (void)monte_carlo(Exaggerated::network(), ZeroconfConfig{}, opts),
      zc::ContractViolation);
}

TEST(RunningStats, WelfordMeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.std_error(), 0.0);
}

TEST(RunningStats, MergeOfHalvesEqualsOnePass) {
  // Chan's pairwise combination: accumulating [a | b] in one pass and
  // merging separate accumulators of a and b must agree to near-ulp.
  zc::prob::Rng rng(2024);
  std::vector<double> samples(501);
  for (double& x : samples) x = rng.normal(5.0, 3.0);

  RunningStats one_pass, left, right;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    one_pass.add(samples[i]);
    (i < samples.size() / 2 ? left : right).add(samples[i]);
  }
  RunningStats merged = left;
  merged.merge(right);

  EXPECT_EQ(merged.count(), one_pass.count());
  EXPECT_NEAR(merged.mean(), one_pass.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), one_pass.variance(), 1e-12);
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 4.0}) stats.add(x);
  RunningStats empty;
  RunningStats merged = stats;
  merged.merge(empty);
  EXPECT_EQ(merged.mean(), stats.mean());
  EXPECT_EQ(merged.variance(), stats.variance());
  RunningStats other;
  other.merge(stats);
  EXPECT_EQ(other.mean(), stats.mean());
  EXPECT_EQ(other.variance(), stats.variance());
  EXPECT_EQ(other.count(), stats.count());
}

TEST(RunningStats, Ci95UndefinedBelowTwoSamples) {
  // Zero or one sample carries no width information; the old 0 read as
  // "infinitely precise" to any precision-targeted stopping rule.
  RunningStats stats;
  EXPECT_TRUE(std::isnan(stats.ci95_halfwidth()));
  stats.add(3.0);
  EXPECT_TRUE(std::isnan(stats.ci95_halfwidth()));
  stats.add(5.0);
  EXPECT_TRUE(std::isfinite(stats.ci95_halfwidth()));
  EXPECT_GT(stats.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SmallCountCiUsesStudentT) {
  // Two samples: df = 1, t = 12.706 — the normal 1.96 would understate
  // the interval more than six-fold.
  RunningStats two;
  two.add(1.0);
  two.add(2.0);
  EXPECT_DOUBLE_EQ(two.ci95_halfwidth(),
                   12.706204736432095 * two.std_error());

  RunningStats five;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) five.add(x);
  EXPECT_DOUBLE_EQ(five.ci95_halfwidth(),
                   2.7764451051977987 * five.std_error());
}

TEST(TCritical95, TableValuesAndNormalTail) {
  EXPECT_TRUE(std::isnan(t_critical_95(0)));
  EXPECT_NEAR(t_critical_95(1), 12.7062, 1e-4);
  EXPECT_NEAR(t_critical_95(10), 2.2281, 1e-4);
  EXPECT_NEAR(t_critical_95(30), 2.0423, 1e-4);
  // Beyond the table: exactly the historical normal constant, keeping
  // large-count intervals bit-compatible with prior recordings.
  EXPECT_EQ(t_critical_95(31), 1.959963984540054);
  EXPECT_EQ(t_critical_95(1199), 1.959963984540054);
  // Critical values decay monotonically toward the normal value.
  for (std::size_t df = 1; df <= 30; ++df) {
    EXPECT_GT(t_critical_95(df), t_critical_95(df + 1)) << "df=" << df;
  }
}

TEST(WilsonCi, CoversTrueProportion) {
  const auto ci = wilson_ci95(30, 100);
  EXPECT_LT(ci.lower, 0.3);
  EXPECT_GT(ci.upper, 0.3);
  EXPECT_GT(ci.lower, 0.2);
  EXPECT_LT(ci.upper, 0.42);
}

TEST(WilsonCi, ZeroSuccessesStillInformative) {
  const auto ci = wilson_ci95(0, 1000);
  EXPECT_NEAR(ci.lower, 0.0, 1e-12);
  EXPECT_GT(ci.upper, 0.0);
  EXPECT_LT(ci.upper, 0.01);
}

TEST(WilsonCi, AllSuccesses) {
  const auto ci = wilson_ci95(1000, 1000);
  EXPECT_LT(ci.lower, 1.0);
  EXPECT_GT(ci.lower, 0.99);
  EXPECT_EQ(ci.upper, 1.0);
}

TEST(WilsonCi, InvalidArgumentsRejected) {
  // successes > trials is still a contract violation — including the
  // (1, 0) shape that used to be caught by the trials > 0 precondition.
  EXPECT_THROW((void)wilson_ci95(1, 0), zc::ContractViolation);
  EXPECT_THROW((void)wilson_ci95(5, 4), zc::ContractViolation);
}

TEST(WilsonCi, ZeroTrialsIsMaximallyUninformative) {
  // No data constrains nothing: degenerate campaigns (every trial
  // cancelled or safety-capped) get [0, 1] instead of a hard abort.
  const auto ci = wilson_ci95(0, 0);
  EXPECT_EQ(ci.lower, 0.0);
  EXPECT_EQ(ci.upper, 1.0);
}

// --- Estimator edge cases: degenerate campaigns must stay finite ----------

/// `ci_defined` is false for campaigns with fewer than two finite
/// samples: their CI half-width is deliberately NaN (undefined, not
/// zero), while everything else must stay finite.
void expect_finite(const Estimate& e, const char* what,
                   bool ci_defined = true) {
  EXPECT_TRUE(std::isfinite(e.mean)) << what << ".mean";
  EXPECT_TRUE(std::isfinite(e.stddev)) << what << ".stddev";
  if (ci_defined) {
    EXPECT_TRUE(std::isfinite(e.ci95_halfwidth)) << what << ".ci95_halfwidth";
  } else {
    EXPECT_TRUE(std::isnan(e.ci95_halfwidth)) << what << ".ci95_halfwidth";
  }
}

void expect_all_estimates_finite(const MonteCarloResults& r,
                                 bool ci_defined = true) {
  expect_finite(r.model_cost, "model_cost", ci_defined);
  expect_finite(r.elapsed_cost, "elapsed_cost", ci_defined);
  expect_finite(r.probes, "probes", ci_defined);
  expect_finite(r.attempts, "attempts", ci_defined);
  expect_finite(r.waiting_time, "waiting_time", ci_defined);
  EXPECT_TRUE(std::isfinite(r.aborted_rate));
  EXPECT_TRUE(std::isfinite(r.collision_rate));
  EXPECT_TRUE(std::isfinite(r.collision_ci95.lower));
  EXPECT_TRUE(std::isfinite(r.collision_ci95.upper));
}

/// A reliable scenario: replies never lost, arrive long before the
/// listening period expires, so every trial completes without collision.
NetworkConfig reliable_network() {
  NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(0.0, 50.0, 0.01));
  return config;
}

TEST(MonteCarloEdge, AllTrialsAbortedStaysFinite) {
  // A virtual-time budget below the first listening period aborts every
  // trial: no sample ever reaches the Welford accumulators, and the
  // collision proportion is over zero completed runs.
  NetworkConfig network = Exaggerated::network();
  network.max_virtual_time = 1e-9;
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 1.0);
  MonteCarloOptions opts;
  opts.trials = 50;
  opts.seed = 5;

  const auto results = monte_carlo(network, protocol, opts);
  EXPECT_EQ(results.aborted, opts.trials);
  EXPECT_EQ(results.completed, 0u);
  EXPECT_EQ(results.non_finite, 0u);
  EXPECT_EQ(results.aborted_rate, 1.0);
  EXPECT_EQ(results.collisions, 0u);
  EXPECT_EQ(results.collision_rate, 0.0);
  // Maximally-uninformative interval instead of a 0/0 NaN.
  EXPECT_EQ(results.collision_ci95.lower, 0.0);
  EXPECT_EQ(results.collision_ci95.upper, 1.0);
  // Zero samples: CI half-widths are undefined (NaN), not zero.
  expect_all_estimates_finite(results, /*ci_defined=*/false);

  // The campaign metrics tell the same story, and nothing non-finite
  // reaches the serialized report: the JSON writer degrades inf/NaN to
  // null, so a clean report contains none.
  if (!results.metrics.empty()) {
    EXPECT_EQ(results.metrics.counter_value("mc.trials.aborted"),
              opts.trials);
    EXPECT_EQ(results.metrics.counter_value("mc.trials.completed"), 0u);
    const auto* hist =
        results.metrics.histogram_cell("mc.attempts.per_trial");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count, 0u);
    zc::obs::RunReport report("edge_test", "all trials aborted");
    report.set_metrics(results.metrics);
    EXPECT_EQ(report.to_json().dump().find("null"), std::string::npos);
  }
}

TEST(MonteCarloEdge, ZeroCollisionCampaignHasInformativeWilsonInterval) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 1.0);
  MonteCarloOptions opts;
  opts.trials = 300;
  opts.seed = 17;

  const auto results = monte_carlo(reliable_network(), protocol, opts);
  ASSERT_EQ(results.completed, opts.trials);
  EXPECT_EQ(results.collisions, 0u);
  EXPECT_EQ(results.collision_rate, 0.0);
  // Wilson at 0 successes: lower pinned to 0 (up to rounding), upper
  // small but positive — never the degenerate [0, 0] the normal
  // approximation would give.
  EXPECT_NEAR(results.collision_ci95.lower, 0.0, 1e-12);
  EXPECT_GT(results.collision_ci95.upper, 0.0);
  EXPECT_LT(results.collision_ci95.upper, 0.05);
  expect_all_estimates_finite(results);
}

TEST(MonteCarloEdge, SingleCompletedTrialHasZeroVarianceUndefinedCi) {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(2, 0.5);
  MonteCarloOptions opts;
  opts.trials = 1;
  opts.seed = 23;

  const auto results = monte_carlo(reliable_network(), protocol, opts);
  ASSERT_EQ(results.completed, 1u);
  // One sample: variance is defined as 0 (not 0/0), but the CI
  // half-width is NaN — one observation carries no width information,
  // and 0 would read as "infinitely precise" to adaptive stopping.
  EXPECT_GT(results.model_cost.mean, 0.0);
  EXPECT_EQ(results.model_cost.stddev, 0.0);
  EXPECT_TRUE(std::isnan(results.model_cost.ci95_halfwidth));
  EXPECT_EQ(results.waiting_time.stddev, 0.0);
  expect_all_estimates_finite(results, /*ci_defined=*/false);
  if (!results.metrics.empty()) {
    EXPECT_EQ(results.metrics.counter_value("mc.trials.completed"), 1u);
    EXPECT_EQ(results.metrics.counter_value("mc.trials.total"), 1u);
  }
}

}  // namespace
