/// Adaptive-precision Monte-Carlo: stopping rules, the deterministic
/// doubling ladder (thread-count invariance of realized trial counts and
/// estimates with every fault class active), budget caps, cancellation
/// mid-ladder, and statistical validation that realized CI widths meet
/// the requested targets.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "common/contract.hpp"
#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/precision.hpp"
#include "sim/stats.hpp"

namespace {

using namespace zc::sim;

// --- Stopping rules (precision.hpp), exercised directly -------------------

TEST(PrecisionTargets, DisabledUnlessARelativeTargetIsSet) {
  PrecisionTargets targets;
  EXPECT_FALSE(targets.enabled());
  targets.abs_ci_floor = 0.5;
  targets.min_trials = 100;
  targets.max_trials = 1000;
  EXPECT_FALSE(targets.enabled());  // budget knobs alone do not opt in
  targets.rel_ci_model_cost = 0.1;
  EXPECT_TRUE(targets.enabled());
  targets = PrecisionTargets{};
  targets.rel_ci_collision = 0.1;
  EXPECT_TRUE(targets.enabled());
}

TEST(PrecisionTargets, CostRuleIsVacuousWithoutATarget) {
  PrecisionTargets targets;  // rel_ci_model_cost == 0
  EXPECT_TRUE(cost_target_met(targets, 10.0, 100.0, 2));
}

TEST(PrecisionTargets, CostRuleRejectsUndefinedWidths) {
  PrecisionTargets targets;
  targets.rel_ci_model_cost = 0.1;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Fewer than two samples / NaN width: never "met" — the exact reading
  // the old ci95_halfwidth == 0 bug would have gotten wrong.
  EXPECT_FALSE(cost_target_met(targets, 10.0, nan, 0));
  EXPECT_FALSE(cost_target_met(targets, 10.0, nan, 1));
  EXPECT_FALSE(cost_target_met(targets, 10.0, 2.0, 100));   // 2.0 > 0.1*10
  EXPECT_TRUE(cost_target_met(targets, 10.0, 0.5, 100));    // 0.5 <= 1.0
}

TEST(PrecisionTargets, CostRuleAbsoluteFloorShortCircuits) {
  PrecisionTargets targets;
  targets.rel_ci_model_cost = 1e-6;  // unreachable relatively (mean ~ 1)
  targets.abs_ci_floor = 0.25;
  EXPECT_TRUE(cost_target_met(targets, 1.0, 0.2, 50));
  EXPECT_FALSE(cost_target_met(targets, 1.0, 0.3, 50));
}

TEST(PrecisionTargets, CollisionRuleNeedsAnEventForRelativeStopping) {
  PrecisionTargets targets;
  targets.rel_ci_collision = 0.5;
  // No completions: unconstrained, keep sampling.
  EXPECT_FALSE(collision_target_met(targets, 0, 0, 0.0, 1.0));
  // Completions but no event: relative width undefined, keep sampling...
  EXPECT_FALSE(collision_target_met(targets, 0, 1000, 0.0, 0.004));
  // ...unless the absolute floor grants an exit.
  targets.abs_ci_floor = 0.01;
  EXPECT_TRUE(collision_target_met(targets, 0, 1000, 0.0, 0.004));
}

TEST(PrecisionTargets, CollisionRuleRelativeWidthAgainstPointRate) {
  PrecisionTargets targets;
  targets.rel_ci_collision = 0.5;
  // rate = 0.1, half-width = 0.03 <= 0.05: met.
  EXPECT_TRUE(collision_target_met(targets, 100, 1000, 0.07, 0.13));
  // half-width = 0.08 > 0.05: not met.
  EXPECT_FALSE(collision_target_met(targets, 100, 1000, 0.02, 0.18));
}

// --- The ladder on real simulations ---------------------------------------

/// Reliable scenario: replies always arrive quickly, every trial
/// completes, cost variance is small — easy cells stop early.
NetworkConfig easy_network() {
  NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(0.0, 50.0, 0.01));
  return config;
}

/// Every fault class active (the golden-pool schedule): the hardest
/// determinism surface the injector exposes.
NetworkConfig chaos_network() {
  NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const zc::prob::DelayDistribution>(
          zc::prob::paper_reply_delay(0.4, 20.0, 0.1));
  config.faults.gilbert_elliott.p_enter_burst = 0.05;
  config.faults.gilbert_elliott.p_exit_burst = 0.25;
  config.faults.gilbert_elliott.loss_bad = 0.9;
  config.faults.blackout.windows.start = 0.5;
  config.faults.blackout.windows.duration = 0.2;
  config.faults.blackout.windows.period = 2.0;
  config.faults.delay_spike.windows.start = 1.0;
  config.faults.delay_spike.windows.duration = 0.5;
  config.faults.delay_spike.windows.period = 3.0;
  config.faults.delay_spike.multiplier = 4.0;
  config.faults.delay_spike.extra = 0.05;
  config.faults.duplication.probability = 0.15;
  config.faults.duplication.copies = 2;
  config.faults.reordering.probability = 0.3;
  config.faults.reordering.max_jitter = 0.2;
  config.faults.host_churn.deaf_fraction = 0.3;
  config.faults.host_churn.period = 4.0;
  config.faults.host_churn.deaf_duration = 1.0;
  return config;
}

ZeroconfConfig protocol_3_1() {
  ZeroconfConfig protocol;
  protocol.schedule = zc::core::ProbeSchedule::uniform(3, 1.0);
  return protocol;
}

std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Every byte-determining observable of an adaptive run in one string.
std::string result_digest(const MonteCarloResults& r) {
  std::ostringstream os;
  os << "trials=" << r.trials << " requested=" << r.trials_requested
     << " rounds=" << r.rounds << " met=" << r.precision_met
     << " completed=" << r.completed << " aborted=" << r.aborted
     << " collisions=" << r.collisions
     << " model=" << hex(r.model_cost.mean) << ',' << hex(r.model_cost.stddev)
     << ',' << hex(r.model_cost.ci95_halfwidth)
     << " elapsed=" << hex(r.elapsed_cost.mean)
     << " probes=" << hex(r.probes.mean)
     << " attempts=" << hex(r.attempts.mean)
     << " waiting=" << hex(r.waiting_time.mean)
     << " ci=[" << hex(r.collision_ci95.lower) << ','
     << hex(r.collision_ci95.upper) << ']'
     << " metrics=" << zc::obs::metrics_to_json(r.metrics).dump();
  return os.str();
}

TEST(AdaptiveMonteCarlo, FixedModeReportsNoAdaptiveState) {
  MonteCarloOptions opts;
  opts.trials = 200;
  opts.seed = 7;
  const auto r = monte_carlo(easy_network(), protocol_3_1(), opts);
  EXPECT_FALSE(r.adaptive);
  EXPECT_EQ(r.trials, 200u);
  EXPECT_EQ(r.trials_requested, 200u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_FALSE(r.precision_met);
}

TEST(AdaptiveMonteCarlo, EasyScenarioStopsFarBelowTheCap) {
  MonteCarloOptions opts;
  opts.trials = 200000;  // cap the ladder must never need
  opts.seed = 11;
  opts.precision.rel_ci_model_cost = 0.05;
  opts.precision.min_trials = 64;
  const auto r = monte_carlo(easy_network(), protocol_3_1(), opts);
  EXPECT_TRUE(r.adaptive);
  EXPECT_TRUE(r.precision_met);
  EXPECT_GE(r.trials, 64u);
  EXPECT_LT(r.trials, 10000u);  // orders of magnitude below the cap
  EXPECT_GE(r.rounds, 1u);
  EXPECT_EQ(r.trials_requested, 200000u);
  EXPECT_EQ(r.completed, r.trials);
  // The realized width actually meets the requested target.
  EXPECT_LE(r.model_cost.ci95_halfwidth,
            0.05 * std::fabs(r.model_cost.mean));
}

TEST(AdaptiveMonteCarlo, RealizedCountsAndEstimatesThreadInvariant) {
  // The acceptance invariant: with every fault class active, the realized
  // trial count, every estimate bit, and the full semantic metric set are
  // identical at 1 and 8 worker threads.
  const auto run = [&](unsigned threads) {
    MonteCarloOptions opts;
    opts.trials = 20000;
    opts.seed = 20260808;
    opts.threads = threads;
    opts.precision.rel_ci_model_cost = 0.25;
    opts.precision.rel_ci_collision = 0.35;
    opts.precision.min_trials = 200;
    return monte_carlo(chaos_network(), protocol_3_1(), opts);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_TRUE(serial.adaptive);
  EXPECT_GT(serial.rounds, 1u) << "pick targets the first round cannot meet";
  EXPECT_EQ(result_digest(serial), result_digest(parallel));
}

TEST(AdaptiveMonteCarlo, UnreachableTargetStopsExactlyAtTheCap) {
  MonteCarloOptions opts;
  opts.seed = 3;
  opts.precision.rel_ci_model_cost = 1e-9;  // unreachable
  opts.precision.min_trials = 100;
  opts.precision.max_trials = 1000;
  const auto r = monte_carlo(easy_network(), protocol_3_1(), opts);
  EXPECT_FALSE(r.precision_met);
  EXPECT_EQ(r.trials, 1000u);  // 100 + 100 + 200 + 400 + 200 (truncated)
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_EQ(r.trials_requested, 1000u);
}

TEST(AdaptiveMonteCarlo, CapDefaultsToTrialsWhenMaxTrialsUnset) {
  MonteCarloOptions opts;
  opts.trials = 300;
  opts.seed = 3;
  opts.precision.rel_ci_model_cost = 1e-9;
  opts.precision.min_trials = 300;  // single full-cap round
  const auto r = monte_carlo(easy_network(), protocol_3_1(), opts);
  EXPECT_EQ(r.trials, 300u);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_EQ(r.trials_requested, 300u);
}

TEST(AdaptiveMonteCarlo, PreStoppedTokenRunsNoRounds) {
  zc::exec::CancelToken cancel;
  cancel.request_stop();
  MonteCarloOptions opts;
  opts.seed = 5;
  opts.precision.rel_ci_model_cost = 0.1;
  opts.cancel = &cancel;
  const auto r = monte_carlo(easy_network(), protocol_3_1(), opts);
  EXPECT_EQ(r.trials, 0u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_FALSE(r.precision_met);
  EXPECT_EQ(r.aborted_rate, 0.0);  // no 0/0
  // Zero completions: maximally-uninformative collision interval.
  EXPECT_EQ(r.collision_ci95.lower, 0.0);
  EXPECT_EQ(r.collision_ci95.upper, 1.0);
}

TEST(AdaptiveMonteCarlo, CancellationMidLadderKeepsResultsSane) {
  // A deadline that expires while the ladder is climbing toward an
  // unreachable target: wherever the stop lands (between rounds or
  // between chunks), the partial results must stay internally
  // consistent. Timing-agnostic by design — only invariants, no exact
  // counts.
  zc::exec::CancelToken cancel;
  MonteCarloOptions opts;
  opts.seed = 13;
  opts.precision.rel_ci_model_cost = 1e-12;  // unreachable: runs until cut
  opts.precision.min_trials = 64;
  opts.precision.max_trials = 2000000;
  opts.cancel = &cancel;
  cancel.arm_deadline(std::chrono::milliseconds(20));
  const auto r = monte_carlo(chaos_network(), protocol_3_1(), opts);
  EXPECT_FALSE(r.precision_met);
  EXPECT_LE(r.trials, 2000000u);
  EXPECT_LE(r.completed + r.aborted + r.non_finite, r.trials);
  EXPECT_EQ(r.trials_requested, 2000000u);
  if (r.completed >= 2) {
    EXPECT_TRUE(std::isfinite(r.model_cost.ci95_halfwidth));
  }
}

TEST(AdaptiveMonteCarlo, CollisionTargetMetOnRareEventScenario) {
  // The paper's load-bearing case: a lossy scenario with real collisions;
  // the ladder must keep sampling until the Wilson interval is tight
  // *relative to the rate*, then certify it.
  MonteCarloOptions opts;
  opts.trials = 200000;
  opts.seed = 97;
  opts.precision.rel_ci_collision = 0.4;
  opts.precision.min_trials = 256;
  const auto r = monte_carlo(chaos_network(), protocol_3_1(), opts);
  ASSERT_TRUE(r.precision_met);
  ASSERT_GT(r.collisions, 0u);
  const double half =
      0.5 * (r.collision_ci95.upper - r.collision_ci95.lower);
  EXPECT_LE(half, 0.4 * r.collision_rate);
}

TEST(AdaptiveMonteCarlo, AdaptiveMetricsRecordTheLadder) {
  MonteCarloOptions opts;
  opts.seed = 3;
  opts.precision.rel_ci_model_cost = 1e-9;
  opts.precision.min_trials = 100;
  opts.precision.max_trials = 1000;
  const auto r = monte_carlo(easy_network(), protocol_3_1(), opts);
  if (r.metrics.empty()) GTEST_SKIP() << "metrics collection disabled";
  EXPECT_EQ(r.metrics.counter_value("mc.rounds"), r.rounds);
  EXPECT_EQ(r.metrics.counter_value("mc.trials.requested"), 1000u);
  EXPECT_EQ(r.metrics.counter_value("mc.trials.realized"), r.trials);
  EXPECT_EQ(r.metrics.counter_value("mc.trials.total"), r.trials);
}

TEST(AdaptiveMonteCarlo, InvalidPrecisionTargetsRejected) {
  MonteCarloOptions opts;
  opts.precision.rel_ci_model_cost = -0.1;
  EXPECT_THROW((void)monte_carlo(easy_network(), protocol_3_1(), opts),
               zc::ContractViolation);
  opts.precision.rel_ci_model_cost = 0.1;
  opts.precision.min_trials = 500;
  opts.precision.max_trials = 100;
  EXPECT_THROW((void)monte_carlo(easy_network(), protocol_3_1(), opts),
               zc::ContractViolation);
}

}  // namespace
