#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contract.hpp"

/// Value-asserting tests are skipped when -DZC_OBS_METRICS=OFF compiles
/// the mutators to no-ops; registration, contracts, and structure tests
/// still run in that configuration.
#ifdef ZC_OBS_DISABLED
#define ZC_SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metric mutators compiled out (-DZC_OBS_METRICS=OFF)"
#else
#define ZC_SKIP_WITHOUT_METRICS() \
  do {                            \
  } while (false)
#endif

namespace {

using zc::obs::MetricId;
using zc::obs::MetricSet;
using zc::obs::Registry;

TEST(MetricSet, StartsEmpty) {
  const MetricSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.counter_value("anything").has_value());
  EXPECT_FALSE(set.gauge_value("anything").has_value());
  EXPECT_EQ(set.histogram_cell("anything"), nullptr);
}

TEST(MetricSet, CounterRegisterAndIncrement) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet set;
  const MetricId id = set.counter("events");
  set.inc(id);
  set.inc(id, 4);
  EXPECT_EQ(set.counter_value("events"), 5u);
  // Find-or-create: re-registration returns the same id.
  EXPECT_EQ(set.counter("events"), id);
  set.inc(set.counter("events"));
  EXPECT_EQ(set.counter_value("events"), 6u);
}

TEST(MetricSet, GaugeSetAndMaxSemantics) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet set;
  const MetricId id = set.gauge("depth");
  EXPECT_FALSE(set.gauge_value("depth").has_value());  // never written
  set.set_gauge(id, 3.0);
  EXPECT_EQ(set.gauge_value("depth"), 3.0);
  set.set_gauge(id, 1.0);  // plain set overwrites, even downward
  EXPECT_EQ(set.gauge_value("depth"), 1.0);
  set.max_gauge(id, 0.5);  // high-water mark keeps the max
  EXPECT_EQ(set.gauge_value("depth"), 1.0);
  set.max_gauge(id, 7.5);
  EXPECT_EQ(set.gauge_value("depth"), 7.5);
}

TEST(MetricSet, HistogramBucketsObservationsByUpperBound) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet set;
  const MetricId id = set.histogram("lat", {1.0, 2.0, 4.0});
  // value <= bounds[i] lands in bucket i; > last bound overflows.
  set.observe(id, 0.5);   // bucket 0
  set.observe(id, 1.0);   // bucket 0 (inclusive upper bound)
  set.observe(id, 1.5);   // bucket 1
  set.observe(id, 4.0);   // bucket 2
  set.observe(id, 99.0);  // overflow bucket
  const auto* cell = set.histogram_cell("lat");
  ASSERT_NE(cell, nullptr);
  ASSERT_EQ(cell->buckets.size(), 4u);
  EXPECT_EQ(cell->buckets[0], 2u);
  EXPECT_EQ(cell->buckets[1], 1u);
  EXPECT_EQ(cell->buckets[2], 1u);
  EXPECT_EQ(cell->buckets[3], 1u);
  EXPECT_EQ(cell->count, 5u);
  EXPECT_DOUBLE_EQ(cell->sum, 0.5 + 1.0 + 1.5 + 4.0 + 99.0);
}

TEST(MetricSet, RegistrationContracts) {
  MetricSet set;
  EXPECT_THROW(set.counter(""), zc::ContractViolation);
  static_cast<void>(set.counter("name"));
  // Same name, different kind: contract violation, not silent aliasing.
  EXPECT_THROW(set.gauge("name"), zc::ContractViolation);
  EXPECT_THROW(set.histogram("name", {1.0}), zc::ContractViolation);

  EXPECT_THROW(set.histogram("h", {}), zc::ContractViolation);
  EXPECT_THROW(set.histogram("h", {1.0, 1.0}), zc::ContractViolation);
  EXPECT_THROW(set.histogram("h", {2.0, 1.0}), zc::ContractViolation);
  static_cast<void>(set.histogram("h", {1.0, 2.0}));
  // Re-registration must repeat the same bounds.
  EXPECT_THROW(set.histogram("h", {1.0, 3.0}), zc::ContractViolation);
  EXPECT_EQ(set.histogram("h", {1.0, 2.0}), set.histogram("h", {1.0, 2.0}));
}

TEST(MetricSet, MergeAddsCountersMaxesGaugesAddsHistograms) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet a;
  a.inc(a.counter("n"), 2);
  a.set_gauge(a.gauge("g"), 5.0);
  a.observe(a.histogram("h", {1.0, 2.0}), 0.5);

  MetricSet b;
  b.inc(b.counter("n"), 3);
  b.inc(b.counter("only-in-b"), 1);
  b.set_gauge(b.gauge("g"), 3.0);
  b.observe(b.histogram("h", {1.0, 2.0}), 1.5);
  b.observe(b.histogram("h", {1.0, 2.0}), 9.0);

  a.merge(b);
  EXPECT_EQ(a.counter_value("n"), 5u);
  EXPECT_EQ(a.counter_value("only-in-b"), 1u);  // find-or-created
  EXPECT_EQ(a.gauge_value("g"), 5.0);           // max(5, 3)
  const auto* h = a.histogram_cell("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[1], 1u);
  EXPECT_EQ(h->buckets[2], 1u);
  EXPECT_DOUBLE_EQ(h->sum, 0.5 + 1.5 + 9.0);
}

TEST(MetricSet, MergeSkipsUnwrittenGauges) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet a;
  a.set_gauge(a.gauge("g"), -2.0);
  MetricSet b;
  static_cast<void>(b.gauge("g"));  // registered, never written
  a.merge(b);
  EXPECT_EQ(a.gauge_value("g"), -2.0);  // -2 survives; no spurious 0
}

TEST(MetricSet, MergeAlignsByNameNotIndex) {
  ZC_SKIP_WITHOUT_METRICS();
  // The two sets register the same names in opposite order; merge must
  // still pair them up correctly.
  MetricSet a;
  a.inc(a.counter("first"), 1);
  a.inc(a.counter("second"), 10);
  MetricSet b;
  b.inc(b.counter("second"), 100);
  b.inc(b.counter("first"), 1000);
  a.merge(b);
  EXPECT_EQ(a.counter_value("first"), 1001u);
  EXPECT_EQ(a.counter_value("second"), 110u);
}

TEST(MetricSet, CopySemanticsMatchChunkAccumulatorUse) {
  ZC_SKIP_WITHOUT_METRICS();
  // monte_carlo copy-constructs every chunk's set from one init set; the
  // registered ids must stay valid in the copies and the copies must be
  // independent.
  MetricSet init;
  const MetricId id = init.counter("c");
  MetricSet chunk0 = init;
  MetricSet chunk1 = init;
  chunk0.inc(id, 1);
  chunk1.inc(id, 2);
  EXPECT_EQ(init.counter_value("c"), 0u);
  EXPECT_EQ(chunk0.counter_value("c"), 1u);
  EXPECT_EQ(chunk1.counter_value("c"), 2u);
  init.merge(chunk0);
  init.merge(chunk1);
  EXPECT_EQ(init.counter_value("c"), 3u);
}

TEST(MetricSet, ClearEmptiesEverything) {
  MetricSet set;
  set.inc(set.counter("c"));
  set.set_gauge(set.gauge("g"), 1.0);
  set.observe(set.histogram("h", {1.0}), 0.5);
  set.clear();
  EXPECT_TRUE(set.empty());
  // Names are reusable after clear, including with a different kind.
  static_cast<void>(set.gauge("c"));
}

// --- Registry (process-global; each test restores the state it touched) ---

TEST(Registry, PublishMergesIntoSnapshot) {
  ZC_SKIP_WITHOUT_METRICS();
  Registry& reg = Registry::global();
  reg.reset();
  MetricSet batch;
  batch.inc(batch.counter("reg.events"), 7);
  reg.publish(batch);
  reg.publish(batch);
  const MetricSet snap = reg.metrics_snapshot();
  EXPECT_EQ(snap.counter_value("reg.events"), 14u);
  reg.reset();
  EXPECT_TRUE(reg.metrics_snapshot().empty());
}

TEST(Registry, DisabledRegistryDropsPublishesAndTimers) {
  ZC_SKIP_WITHOUT_METRICS();
  Registry& reg = Registry::global();
  reg.reset();
  reg.set_enabled(false);
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(zc::obs::collection_enabled());
  MetricSet batch;
  batch.inc(batch.counter("dropped"), 1);
  reg.publish(batch);
  reg.record_timer({"dropped"}, 1.0);
  reg.set_enabled(true);
  EXPECT_TRUE(zc::obs::collection_enabled());
  EXPECT_TRUE(reg.metrics_snapshot().empty());
  EXPECT_TRUE(reg.timers_snapshot().children.empty());
  reg.reset();
}

TEST(Registry, RecordTimerBuildsPaths) {
  Registry& reg = Registry::global();
  reg.reset();
  reg.record_timer({"outer", "inner"}, 0.25);
  reg.record_timer({"outer", "inner"}, 0.75);
  reg.record_timer({"outer"}, 2.0);
  const zc::obs::TimerNode root = reg.timers_snapshot();
  const auto* outer = root.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_DOUBLE_EQ(outer->seconds, 2.0);
  EXPECT_EQ(outer->count, 1u);
  const auto* inner = outer->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_DOUBLE_EQ(inner->seconds, 1.0);
  EXPECT_EQ(inner->count, 2u);
  reg.reset();
}

}  // namespace
