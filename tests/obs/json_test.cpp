#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace {

using zc::obs::JsonValue;

TEST(Json, DefaultIsNull) {
  const JsonValue v;
  EXPECT_EQ(v.kind(), JsonValue::Kind::null);
  EXPECT_EQ(v.dump(), "null");
}

TEST(Json, Scalars) {
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue("text").dump(), "\"text\"");
  EXPECT_EQ(JsonValue(std::string("text")).dump(), "\"text\"");
}

TEST(Json, IntegralNumbersPrintWithoutDecimalPoint) {
  EXPECT_EQ(JsonValue(0).dump(), "0");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(-7).dump(), "-7");
  EXPECT_EQ(JsonValue(3.0).dump(), "3");
  EXPECT_EQ(JsonValue(1000000u).dump(), "1000000");
  // 2^53, the largest exactly-representable contiguous integer.
  EXPECT_EQ(JsonValue(9007199254740992.0).dump(), "9007199254740992");
}

TEST(Json, FractionalNumbersRoundTrip) {
  const double values[] = {0.1, -2.25, 1e-12, 6.02214076e23, 1.0 / 3.0};
  for (const double v : values) {
    std::istringstream in(JsonValue(v).dump());
    double parsed = 0.0;
    in >> parsed;
    EXPECT_EQ(parsed, v) << "value " << v << " did not round-trip";
  }
}

TEST(Json, NonFiniteNumbersDegradeToNull) {
  // JSON has no inf/nan; the writer must never emit an unparsable token.
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(-std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(JsonValue("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue("back\\slash").dump(), "\"back\\\\slash\"");
  EXPECT_EQ(JsonValue("line\nbreak\ttab").dump(), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonValue(std::string("ctrl\x01")).dump(), "\"ctrl\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["mango"] = 3;
  EXPECT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj.dump(),
            "{\n  \"zebra\": 1,\n  \"apple\": 2,\n  \"mango\": 3\n}");
}

TEST(Json, ObjectSubscriptInsertsOnceAndOverwrites) {
  JsonValue obj = JsonValue::object();
  obj["k"] = 1;
  obj["k"] = 2;  // same key: overwrite, not duplicate
  EXPECT_EQ(obj.size(), 1u);
  ASSERT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("k")->dump(), "2");
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, SubscriptPromotesNullToObject) {
  JsonValue v;  // null
  v["key"] = "value";
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.size(), 1u);
}

TEST(Json, ArrayAppendAndNesting) {
  JsonValue arr = JsonValue::array();
  arr.push_back(1);
  arr.push_back("two");
  JsonValue inner = JsonValue::object();
  inner["three"] = 3.5;
  arr.push_back(std::move(inner));
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr.dump(), "[\n  1,\n  \"two\",\n  {\n    \"three\": 3.5\n  }\n]");
}

TEST(Json, EmptyContainersPrintCompact) {
  EXPECT_EQ(JsonValue::object().dump(), "{}");
  EXPECT_EQ(JsonValue::array().dump(), "[]");
}

TEST(Json, WriteMatchesDump) {
  JsonValue obj = JsonValue::object();
  obj["a"] = JsonValue::array();
  obj["a"].push_back(true);
  std::ostringstream os;
  obj.write(os);
  EXPECT_EQ(os.str(), obj.dump());
}

TEST(Json, SerializationIsPureFunctionOfValues) {
  // The byte-for-byte determinism contract the obs layer relies on:
  // building the same tree twice yields identical output.
  const auto build = [] {
    JsonValue obj = JsonValue::object();
    obj["x"] = 0.30000000000000004;  // 0.1 + 0.2, needs 17 digits
    obj["n"] = 12345;
    obj["list"] = JsonValue::array();
    obj["list"].push_back(std::nan(""));
    return obj.dump();
  };
  EXPECT_EQ(build(), build());
}

// ---- strict parser -----------------------------------------------------

TEST(JsonParse, ScalarsRoundTrip) {
  using zc::obs::parse_json;
  EXPECT_EQ(parse_json("null")->kind(), JsonValue::Kind::null);
  EXPECT_TRUE(parse_json("true")->as_bool());
  EXPECT_FALSE(parse_json("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse_json("-2.25")->as_number(), -2.25);
  EXPECT_DOUBLE_EQ(parse_json("1e-12")->as_number(), 1e-12);
  EXPECT_EQ(parse_json("\"text\"")->as_string(), "text");
}

TEST(JsonParse, DumpParsesBackToIdenticalDump) {
  JsonValue obj = JsonValue::object();
  obj["x"] = 0.30000000000000004;
  obj["n"] = 12345;
  obj["flag"] = true;
  obj["name"] = "zc\n\"quoted\"";
  obj["list"] = JsonValue::array();
  obj["list"].push_back(1);
  obj["list"].push_back(JsonValue());
  obj["nested"] = JsonValue::object();
  obj["nested"]["q"] = 0.015378937007874016;
  const std::string bytes = obj.dump();
  const auto parsed = zc::obs::parse_json(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dump(), bytes);
}

TEST(JsonParse, StringEscapes) {
  const auto v = zc::obs::parse_json(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\b\f\n\r\t");
  const auto unicode = zc::obs::parse_json(R"("Aé€")");
  ASSERT_TRUE(unicode.has_value());
  EXPECT_EQ(unicode->as_string(), "A\xC3\xA9\xE2\x82\xAC");
  // Surrogate pair: U+1F600 as 😀 -> 4-byte UTF-8.
  const auto pair = zc::obs::parse_json(R"("😀")");
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, AccessorsNavigateTrees) {
  const auto v = zc::obs::parse_json(
      R"({"config": {"n": 4}, "cells": [{"r": 2.0}, {"r": 2.5}]})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* config = v->find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->find("n")->as_number(), 4.0);
  const JsonValue* cells = v->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 2u);
  EXPECT_DOUBLE_EQ(cells->element(1)->find("r")->as_number(), 2.5);
  EXPECT_EQ(cells->element(2), nullptr);
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string error;
  for (const char* bad :
       {"", "{", "[1,", "tru", "01", "1.", "+1", "\"unterminated",
        "\"bad \x01 control\"", R"("\ud83d")",  // unpaired surrogate
        "{\"a\" 1}", "[1 2]", "{\"a\":1} trailing", "nan", "inf"}) {
    EXPECT_FALSE(zc::obs::parse_json(bad, &error).has_value())
        << "accepted: " << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonParse, ErrorNamesTheBytePosition) {
  std::string error;
  EXPECT_FALSE(zc::obs::parse_json("[1, oops]", &error).has_value());
  EXPECT_NE(error.find("at byte"), std::string::npos);
}

TEST(JsonParse, DuplicateKeysLastWins) {
  const auto v = zc::obs::parse_json(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->find("k")->as_number(), 2.0);
}

}  // namespace
