/// Guard on the cost of instrumentation: the Monte-Carlo hot path with
/// metric collection enabled must stay within a small factor of the same
/// campaign with collection disabled. The per-delivery work is one
/// indexed add behind a null check, so in practice the gap is a few
/// percent; the bound here is deliberately loose (3x + absolute slack)
/// to stay robust on loaded CI machines while still catching an
/// accidental lock, allocation, or hash lookup on the hot path.
/// BM_MonteCarloMetrics in bench/perf_microbench.cpp records the actual
/// numbers.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>

#include "obs/metrics.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/network.hpp"

namespace {

using namespace zc;
using Clock = std::chrono::steady_clock;

sim::NetworkConfig small_network() {
  sim::NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.4, 20.0, 0.1));
  return config;
}

double campaign_seconds() {
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(3, 1.0);
  sim::MonteCarloOptions opts;
  opts.trials = 600;
  opts.seed = 99;
  opts.threads = 1;
  const auto network = small_network();
  const auto start = Clock::now();
  const auto result = sim::monte_carlo(network, protocol, opts);
  const auto end = Clock::now();
  EXPECT_EQ(result.trials, opts.trials);
  return std::chrono::duration<double>(end - start).count();
}

/// Median of three runs, so one scheduler hiccup can't decide the test.
double median_campaign_seconds() {
  double t0 = campaign_seconds();
  double t1 = campaign_seconds();
  double t2 = campaign_seconds();
  if (t0 > t1) std::swap(t0, t1);
  if (t1 > t2) std::swap(t1, t2);
  return std::max(t0, t1);
}

TEST(ObsOverhead, EnabledCollectionStaysWithinBudgetOfDisabled) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset();

  reg.set_enabled(false);
  const double disabled = median_campaign_seconds();
  reg.set_enabled(true);
  const double enabled = median_campaign_seconds();
  reg.reset();

  EXPECT_LE(enabled, 3.0 * disabled + 0.05)
      << "metrics-on campaign took " << enabled
      << " s vs metrics-off " << disabled
      << " s: per-delivery instrumentation is no longer cheap";
}

}  // namespace
