/// The acceptance criterion of the observability layer: the semantic
/// metric set of a Monte-Carlo campaign — delivery-cause counters, fault
/// injection tallies, trial outcomes, histograms — serializes to the
/// same bytes at any thread count, with the full fault schedule active.

#include <gtest/gtest.h>

#include <memory>

#include "faults/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/network.hpp"

#ifdef ZC_OBS_DISABLED
#define ZC_SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metric mutators compiled out (-DZC_OBS_METRICS=OFF)"
#else
#define ZC_SKIP_WITHOUT_METRICS() \
  do {                            \
  } while (false)
#endif

namespace {

using namespace zc;

sim::NetworkConfig faulty_network() {
  sim::NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay =
      std::shared_ptr<const prob::DelayDistribution>(
          prob::paper_reply_delay(0.4, 20.0, 0.1));
  // One of everything, so the determinism claim covers every injector
  // counter, not just the happy path.
  config.faults.gilbert_elliott.p_enter_burst = 0.05;
  config.faults.gilbert_elliott.p_exit_burst = 0.25;
  config.faults.gilbert_elliott.loss_bad = 0.9;
  config.faults.blackout.windows.start = 0.5;
  config.faults.blackout.windows.duration = 0.2;
  config.faults.blackout.windows.period = 2.0;
  config.faults.delay_spike.windows.start = 1.0;
  config.faults.delay_spike.windows.duration = 0.5;
  config.faults.delay_spike.windows.period = 3.0;
  config.faults.delay_spike.multiplier = 4.0;
  config.faults.delay_spike.extra = 0.05;
  config.faults.duplication.probability = 0.15;
  config.faults.duplication.copies = 2;
  config.faults.reordering.probability = 0.3;
  config.faults.reordering.max_jitter = 0.2;
  config.faults.host_churn.deaf_fraction = 0.3;
  config.faults.host_churn.period = 4.0;
  config.faults.host_churn.deaf_duration = 1.0;
  return config;
}

sim::MonteCarloResults run_campaign(unsigned threads) {
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(3, 1.0);
  sim::MonteCarloOptions opts;
  opts.trials = 1200;
  opts.seed = 20260806;
  opts.threads = threads;
  return sim::monte_carlo(faulty_network(), protocol, opts);
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Registry::global().reset(); }
  void TearDown() override {
    obs::Registry::global().set_enabled(true);
    obs::Registry::global().reset();
  }
};

TEST_F(ObsDeterminismTest, MetricsSerializeIdenticallyAcrossThreadCounts) {
  ZC_SKIP_WITHOUT_METRICS();
  const auto serial = run_campaign(1);
  const auto parallel = run_campaign(8);
  ASSERT_FALSE(serial.metrics.empty());
  // Byte-for-byte, not approximately: counters, gauges, histogram sums.
  EXPECT_EQ(obs::metrics_to_json(serial.metrics).dump(),
            obs::metrics_to_json(parallel.metrics).dump());
  // The estimates agree bitwise too (pre-existing contract, re-checked
  // here because the metric plumbing shares the reduction).
  EXPECT_EQ(serial.model_cost.mean, parallel.model_cost.mean);
  EXPECT_EQ(serial.collisions, parallel.collisions);
}

TEST_F(ObsDeterminismTest, CampaignMetricsAreInternallyConsistent) {
  ZC_SKIP_WITHOUT_METRICS();
  const auto result = run_campaign(4);
  const obs::MetricSet& m = result.metrics;

  // Trial outcome tallies mirror the result struct exactly.
  EXPECT_EQ(m.counter_value("mc.trials.total"), result.trials);
  EXPECT_EQ(m.counter_value("mc.trials.completed"), result.completed);
  EXPECT_EQ(m.counter_value("mc.trials.aborted"), result.aborted);
  EXPECT_EQ(m.counter_value("mc.trials.non_finite"), result.non_finite);
  EXPECT_EQ(m.counter_value("mc.trials.collisions"), result.collisions);
  EXPECT_GT(m.counter_value("mc.chunks").value_or(0), 0u);
  EXPECT_GT(m.gauge_value("mc.chunk.size").value_or(0.0), 0.0);

  // Per-trial histograms saw exactly the completed trials.
  const auto* attempts = m.histogram_cell("mc.attempts.per_trial");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->count, result.completed);

  // The fault schedule actually fired: deliveries and injector decisions
  // were counted.
  EXPECT_GT(m.counter_value("sim.delivery.delivered").value_or(0), 0u);
  std::uint64_t dropped = 0;
  for (const char* name :
       {"sim.delivery.loss", "sim.delivery.burst-loss",
        "sim.delivery.blackout", "sim.delivery.target-deaf"})
    dropped += m.counter_value(name).value_or(0);
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(m.counter_value("faults.injected.duplicates").value_or(0), 0u);
  EXPECT_GT(m.counter_value("faults.injected.jitter").value_or(0), 0u);

  // Medium-side and injector-side views of the same drops agree.
  EXPECT_EQ(m.counter_value("sim.delivery.blackout"),
            m.counter_value("faults.drop.blackout"));
  EXPECT_EQ(m.counter_value("sim.delivery.target-deaf"),
            m.counter_value("faults.drop.target-deaf"));
  EXPECT_EQ(m.counter_value("sim.delivery.burst-loss"),
            m.counter_value("faults.drop.burst-loss"));
}

TEST_F(ObsDeterminismTest, DisabledCollectionYieldsEmptyMetrics) {
  obs::Registry::global().set_enabled(false);
  const auto result = run_campaign(2);
  obs::Registry::global().set_enabled(true);
  EXPECT_TRUE(result.metrics.empty());
  EXPECT_TRUE(obs::Registry::global().metrics_snapshot().empty());
  // The estimates themselves are untouched by the collection switch.
  const auto with_metrics = run_campaign(2);
  EXPECT_EQ(result.model_cost.mean, with_metrics.model_cost.mean);
  EXPECT_EQ(result.completed, with_metrics.completed);
}

TEST_F(ObsDeterminismTest, CampaignPublishesIntoGlobalRegistry) {
  ZC_SKIP_WITHOUT_METRICS();
  const auto result = run_campaign(1);
  const obs::MetricSet snap = obs::Registry::global().metrics_snapshot();
  EXPECT_EQ(snap.counter_value("mc.trials.total"),
            result.metrics.counter_value("mc.trials.total"));
}

}  // namespace
