/// Adversarial-input regression corpus for obs::parse_json: hostile
/// documents (pathological nesting, unpaired surrogates, torn buffers,
/// binary garbage) must come back as a clean nullopt with a byte-offset
/// diagnostic — never a crash, hang, or mangled value — and byte-level
/// mutations of a valid document must never break the parser either.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "check/fuzz.hpp"
#include "obs/json.hpp"

namespace {

using zc::obs::JsonValue;
using zc::obs::parse_json;

void expect_rejected(const std::string& text, const char* label) {
  std::string error;
  const std::optional<JsonValue> parsed = parse_json(text, &error);
  EXPECT_FALSE(parsed.has_value()) << label;
  EXPECT_NE(error.find("at byte"), std::string::npos)
      << label << ": diagnostic lacks a byte offset: " << error;
}

TEST(JsonFuzz, PathologicalNestingFailsCleanly) {
  // Far beyond the 256-level cap: must fail by depth check, not by
  // exhausting the call stack.
  expect_rejected(std::string(100000, '['), "100k open brackets");
  expect_rejected(std::string(100000, '{'), "100k open braces");
  std::string alternating;
  for (int i = 0; i < 50000; ++i) alternating += "[{\"k\":";
  expect_rejected(alternating, "alternating object/array nesting");
}

TEST(JsonFuzz, NestingJustBelowTheCapStillParses) {
  const int depth = 250;
  std::string text(static_cast<std::size_t>(depth), '[');
  text += "1";
  text += std::string(static_cast<std::size_t>(depth), ']');
  EXPECT_TRUE(parse_json(text).has_value());
}

TEST(JsonFuzz, MalformedUnicodeEscapesRejected) {
  expect_rejected("\"\\ud800\"", "lone high surrogate");
  expect_rejected("\"\\udc00\"", "lone low surrogate");
  expect_rejected("\"\\ud800\\ud800\"", "high surrogate pair");
  expect_rejected("\"\\ud800x\"", "high surrogate then text");
  expect_rejected("\"\\ud800\\u0041\"", "high surrogate then BMP");
  expect_rejected("\"\\uZZZZ\"", "non-hex escape digits");
  expect_rejected("\"\\u12\"", "truncated hex escape");
}

TEST(JsonFuzz, TornAndTruncatedDocumentsRejected) {
  const std::string whole =
      "{\"schema\":\"zcopt-run-report\",\"values\":[1,2.5,-3e-2,null,true],"
      "\"text\":\"tail \\u00e9\"}";
  ASSERT_TRUE(parse_json(whole).has_value());
  // Every proper prefix is torn mid-structure; none may parse or crash.
  for (std::size_t cut = 1; cut < whole.size(); ++cut) {
    std::string error;
    EXPECT_FALSE(parse_json(whole.substr(0, cut), &error).has_value())
        << "prefix of length " << cut << " parsed";
  }
}

TEST(JsonFuzz, GarbageAndControlBytesRejected) {
  expect_rejected(std::string("\x00\x01\x02", 3), "NUL-led binary");
  expect_rejected("\xff\xfe{}", "BOM-ish garbage prefix");
  expect_rejected("{\"a\"\n\t: 1,}", "trailing comma");
  expect_rejected("[1, 2,, 3]", "double comma");
  expect_rejected("{\"a\": 1} trailing", "trailing garbage");
  expect_rejected("\"raw\ncontrol\"", "unescaped control char in string");
  expect_rejected("nul", "truncated keyword");
  expect_rejected("+1", "leading plus");
  expect_rejected("01", "leading zero");
  expect_rejected("1e", "dangling exponent");
  expect_rejected("-", "bare minus");
  expect_rejected("", "empty input");
  expect_rejected("   ", "whitespace only");
}

// Deterministic byte-flip fuzzing of a valid document: whatever the
// mutation, the parser must return (nullopt + diagnostic) or a value —
// and accepted mutants must survive a dump/re-parse round trip.
TEST(JsonFuzz, ByteFlipCorpusNeverBreaksTheParser) {
  const std::string whole =
      "{\"n\":4,\"r\":2.0,\"pi\":[1,0.5,0.25],\"name\":\"seed \\\"x\\\"\","
      "\"ok\":true,\"none\":null}";
  zc::check::FuzzRng rng(2026, 0x4a50);
  int accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    std::string mutant = whole;
    const std::size_t position = rng.pick(mutant.size());
    mutant[position] = static_cast<char>(rng.next_u64() & 0xff);
    std::string error;
    const std::optional<JsonValue> parsed = parse_json(mutant, &error);
    if (!parsed.has_value()) {
      EXPECT_FALSE(error.empty()) << "mutant round " << round;
      continue;
    }
    ++accepted;
    const auto reparsed = parse_json(parsed->dump_compact());
    ASSERT_TRUE(reparsed.has_value()) << "round-trip broke, round " << round;
    EXPECT_EQ(reparsed->dump_compact(), parsed->dump_compact());
  }
  // Most single-byte flips corrupt the document; a few (digit swaps,
  // value-char swaps inside strings) stay legal. Both sides must occur
  // for the corpus to mean anything.
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 2000);
}

}  // namespace
