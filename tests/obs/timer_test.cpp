#include "obs/timer.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace {

using zc::obs::Registry;
using zc::obs::ScopedTimer;
using zc::obs::TimerNode;

/// Every test runs against the process-global registry: start clean,
/// leave clean, and always restore the enabled flag.
class TimerTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
  void TearDown() override {
    Registry::global().set_enabled(true);
    Registry::global().reset();
  }
};

TEST_F(TimerTest, ScopeExitRecordsOneSpan) {
  {
    const ScopedTimer t("span");
  }
  const TimerNode root = Registry::global().timers_snapshot();
  ASSERT_EQ(root.children.size(), 1u);
  const TimerNode* span = root.find("span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
  EXPECT_GE(span->seconds, 0.0);
  EXPECT_TRUE(span->children.empty());
}

TEST_F(TimerTest, NestingBuildsHierarchy) {
  {
    ScopedTimer outer("outer");
    {
      const ScopedTimer inner("inner");
    }
    {
      const ScopedTimer inner("inner");  // same label aggregates
    }
  }
  const TimerNode root = Registry::global().timers_snapshot();
  const TimerNode* outer = root.find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const TimerNode* inner = outer->find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  // "inner" lives under "outer" only, never at the top level.
  EXPECT_EQ(root.find("inner"), nullptr);
}

TEST_F(TimerTest, StopIsIdempotentAndEndsTheScopeEarly) {
  {
    ScopedTimer outer("outer");
    outer.stop();
    outer.stop();  // second stop is a no-op
    // After stop() the label is off the stack: a new timer is a sibling,
    // not a child.
    const ScopedTimer next("next");
  }
  const TimerNode root = Registry::global().timers_snapshot();
  ASSERT_NE(root.find("outer"), nullptr);
  EXPECT_EQ(root.find("outer")->count, 1u);
  ASSERT_NE(root.find("next"), nullptr);
  EXPECT_EQ(root.find("outer")->find("next"), nullptr);
}

TEST_F(TimerTest, SequentialSiblingsShareTheParentPath) {
  {
    ScopedTimer sweep("sweep");
    for (int i = 0; i < 3; ++i) {
      const ScopedTimer cell("cell");
    }
    sweep.stop();
  }
  const TimerNode root = Registry::global().timers_snapshot();
  const TimerNode* sweep = root.find("sweep");
  ASSERT_NE(sweep, nullptr);
  const TimerNode* cell = sweep->find("cell");
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->count, 3u);
}

TEST_F(TimerTest, DisabledRegistrySkipsTimers) {
  Registry::global().set_enabled(false);
  {
    const ScopedTimer t("invisible");
  }
  Registry::global().set_enabled(true);
  EXPECT_TRUE(Registry::global().timers_snapshot().children.empty());
}

TEST_F(TimerTest, ChildrenKeepFirstRecordedOrder) {
  {
    ScopedTimer root_span("root");
    {
      const ScopedTimer a("alpha");
    }
    {
      const ScopedTimer b("beta");
    }
    {
      const ScopedTimer a_again("alpha");
    }
    root_span.stop();
  }
  const TimerNode root = Registry::global().timers_snapshot();
  const TimerNode* parent = root.find("root");
  ASSERT_NE(parent, nullptr);
  ASSERT_EQ(parent->children.size(), 2u);
  EXPECT_EQ(parent->children[0].label, "alpha");
  EXPECT_EQ(parent->children[1].label, "beta");
  EXPECT_EQ(parent->children[0].count, 2u);
}

}  // namespace
