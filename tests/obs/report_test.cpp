#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

#ifdef ZC_OBS_DISABLED
#define ZC_SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metric mutators compiled out (-DZC_OBS_METRICS=OFF)"
#else
#define ZC_SKIP_WITHOUT_METRICS() \
  do {                            \
  } while (false)
#endif

namespace {

using zc::obs::JsonValue;
using zc::obs::MetricSet;
using zc::obs::Registry;
using zc::obs::RunReport;

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }
  void TearDown() override {
    Registry::global().set_enabled(true);
    Registry::global().reset();
  }
};

TEST_F(ReportTest, SchemaEnvelopeIsComplete) {
  RunReport report("unit_test", "schema check");
  const JsonValue json = report.to_json();
  ASSERT_TRUE(json.is_object());
  // Every v1 top-level key except the optional seed.
  for (const char* key : {"schema", "schema_version", "program",
                          "description", "git", "config", "data", "metrics",
                          "runtime", "timers"})
    EXPECT_NE(json.find(key), nullptr) << "missing top-level key " << key;
  EXPECT_EQ(json.find("schema")->dump(),
            std::string("\"") + RunReport::kSchemaName + "\"");
  EXPECT_EQ(json.find("schema_version")->dump(),
            std::to_string(RunReport::kSchemaVersion));
  EXPECT_EQ(json.find("program")->dump(), "\"unit_test\"");
  EXPECT_EQ(json.find("description")->dump(), "\"schema check\"");
  EXPECT_NE(json.find("git")->dump(), "\"\"");  // at minimum "unknown"
  EXPECT_TRUE(json.find("timers")->is_array());
}

TEST_F(ReportTest, SeedIsOptional) {
  RunReport without("p", "d");
  EXPECT_EQ(without.to_json().find("seed"), nullptr);
  RunReport with("p", "d");
  with.set_seed(123456789);
  const JsonValue json = with.to_json();
  ASSERT_NE(json.find("seed"), nullptr);
  EXPECT_EQ(json.find("seed")->dump(), "123456789");
}

TEST_F(ReportTest, ConfigAndDataSectionsRoundTrip) {
  RunReport report("p", "d");
  report.config()["trials"] = 5000;
  report.config()["q"] = 0.25;
  report.data()["bitwise_deterministic"] = true;
  const JsonValue json = report.to_json();
  const JsonValue* config = json.find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->find("trials")->dump(), "5000");
  EXPECT_EQ(config->find("q")->dump(), "0.25");
  EXPECT_EQ(json.find("data")->find("bitwise_deterministic")->dump(),
            "true");
}

TEST_F(ReportTest, MetricsSectionHasTheThreeFamilies) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet set;
  set.inc(set.counter("c.events"), 3);
  set.set_gauge(set.gauge("g.depth"), 2.5);
  set.observe(set.histogram("h.lat", {1.0, 2.0}), 1.5);
  RunReport report("p", "d");
  report.set_metrics(set);
  const JsonValue json = report.to_json();
  const JsonValue* metrics = json.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("c.events")->dump(), "3");
  EXPECT_EQ(metrics->find("gauges")->find("g.depth")->dump(), "2.5");
  const JsonValue* hist = metrics->find("histograms")->find("h.lat");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("bounds")->size(), 2u);
  EXPECT_EQ(hist->find("buckets")->size(), 3u);
  EXPECT_EQ(hist->find("count")->dump(), "1");
  EXPECT_EQ(hist->find("sum")->dump(), "1.5");
}

TEST_F(ReportTest, UnwrittenGaugesAreOmittedFromJson) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet set;
  static_cast<void>(set.gauge("never.set"));
  const JsonValue json = zc::obs::metrics_to_json(set);
  EXPECT_EQ(json.find("gauges")->find("never.set"), nullptr);
}

TEST_F(ReportTest, CaptureRegistryPullsMetricsAndTimers) {
  ZC_SKIP_WITHOUT_METRICS();
  MetricSet batch;
  batch.inc(batch.counter("captured.count"), 9);
  Registry::global().publish(batch);
  {
    const zc::obs::ScopedTimer t("captured_span");
  }
  RunReport report("p", "d");
  report.capture_registry();
  const JsonValue json = report.to_json();
  EXPECT_EQ(
      json.find("metrics")->find("counters")->find("captured.count")->dump(),
      "9");
  const JsonValue* timers = json.find("timers");
  ASSERT_EQ(timers->size(), 1u);
  // timers are [{label, seconds, count, children}] with the synthetic
  // root skipped.
  std::ostringstream label;
  timers->write(label);
  EXPECT_NE(label.str().find("\"captured_span\""), std::string::npos);
}

TEST_F(ReportTest, WriteFileProducesTheSameBytesAsWrite) {
  RunReport report("p", "d");
  report.set_seed(7);
  report.config()["k"] = 1;
  const std::string path = ::testing::TempDir() + "zc_obs_report_test.json";
  ASSERT_TRUE(report.write_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream from_file;
  from_file << in.rdbuf();
  std::ostringstream direct;
  report.write(direct);
  EXPECT_EQ(from_file.str(), direct.str());
  EXPECT_EQ(from_file.str().back(), '\n');
  std::remove(path.c_str());
}

TEST_F(ReportTest, WriteFileFailsCleanlyOnBadPath) {
  const RunReport report("p", "d");
  EXPECT_FALSE(report.write_file("/nonexistent-dir-zcopt/report.json"));
}

}  // namespace
