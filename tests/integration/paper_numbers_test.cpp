/// End-to-end reproduction of the paper's headline numbers, as an
/// always-on regression net under the bench harness.

#include <gtest/gtest.h>

#include <cmath>

#include "core/calibrate.hpp"
#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "core/scenarios.hpp"

namespace {

using namespace zc::core;

TEST(PaperNumbers, Figure2ShapeAndOrdering) {
  const auto scenario = scenarios::figure2().to_params();
  // nu = 3: n = 1, 2 invisible in the figure.
  EXPECT_EQ(min_useful_n(1e35, 1e-15), 3u);
  EXPECT_GT(optimal_r(scenario, 1).cost, 1e15);
  EXPECT_GT(optimal_r(scenario, 2).cost, 1e3);
  // C_3(r_opt3) < C_4(r_opt4) < ... < C_8(r_opt8).
  double prev = 0.0;
  for (unsigned n = 3; n <= 8; ++n) {
    const double c = optimal_r(scenario, n).cost;
    EXPECT_GT(c, prev);
    EXPECT_LT(c, 25.0);
    prev = c;
  }
}

TEST(PaperNumbers, Figure4GlobalMinimum) {
  const auto scenario = scenarios::figure2().to_params();
  const JointOptimum opt = joint_optimum(scenario, 12);
  EXPECT_EQ(opt.n, 3u);
  EXPECT_NEAR(opt.r, 2.14, 0.05);
  EXPECT_NEAR(opt.cost, 12.6, 0.1);
}

TEST(PaperNumbers, Figure6ErrorBandUnderOptimalCost) {
  // Sec. 5: under cost-optimal N(r) the collision probability stays
  // roughly within [1e-54, 1e-35] over the plotted r range.
  const auto scenario = scenarios::figure2().to_params();
  for (double r = 0.6; r <= 3.4; r += 0.2) {
    const unsigned n = optimal_n(scenario, r);
    const double lg =
        log10_error_probability(scenario, ProtocolParams{n, r});
    EXPECT_LT(lg, -33.0) << "r=" << r;
    EXPECT_GT(lg, -56.0) << "r=" << r;
  }
}

TEST(PaperNumbers, Section45ForwardCheck) {
  // With the paper's derived (E, c), the draft parameters are optimal.
  const JointOptimum wireless =
      joint_optimum(scenarios::sec45_r2().to_params(), 10);
  EXPECT_EQ(wireless.n, 4u);
  EXPECT_NEAR(wireless.r, 2.0, 0.1);

  const JointOptimum wired =
      joint_optimum(scenarios::sec45_r02().to_params(), 10);
  EXPECT_EQ(wired.n, 4u);
  EXPECT_NEAR(wired.r, 0.2, 0.02);
}

TEST(PaperNumbers, Section45InverseCheck) {
  // Full calibration recovers E within half an order of magnitude and c
  // within the paper's single-digit precision.
  const auto r2 = calibrate(scenarios::sec45_r2().to_params(),
                            ProtocolParams{4, 2.0});
  ASSERT_TRUE(r2.has_value());
  EXPECT_NEAR(std::log10(r2->error_cost), std::log10(5e20), 0.5);
  EXPECT_NEAR(r2->probe_cost, 3.5, 1.0);
}

TEST(PaperNumbers, Section6Assessment) {
  const auto scenario = scenarios::sec6().to_params();
  const JointOptimum opt = joint_optimum(scenario, 10);
  EXPECT_EQ(opt.n, 2u);
  EXPECT_NEAR(opt.r, 1.75, 0.05);
  EXPECT_NEAR(opt.error_prob / 4e-22, 1.0, 0.25);
  // "The waiting time will be generally only about 3.5 seconds, rather
  // than 8": n * r ~ 3.5.
  EXPECT_NEAR(opt.n * opt.r, 3.5, 0.15);
}

TEST(PaperNumbers, Section6DraftComparison) {
  // The draft's (4, 2) in the same realistic scenario costs more than
  // the optimized (2, 1.75).
  const auto scenario = scenarios::sec6().to_params();
  const double draft = mean_cost(scenario, scenarios::draft_unreliable());
  const JointOptimum opt = joint_optimum(scenario, 10);
  EXPECT_GT(draft, opt.cost);
  // Configuration time halves (8 s -> ~3.5 s).
  EXPECT_GT(4 * 2.0, 2.0 * opt.n * opt.r);
}

TEST(PaperNumbers, TradeoffCostVsReliability) {
  // Abstract: minimal cost and maximal reliability cannot be achieved
  // simultaneously. At the cost-optimal r the error is strictly worse
  // than at a longer (more expensive) r with the same n.
  const auto scenario = scenarios::figure2().to_params();
  const JointOptimum opt = joint_optimum(scenario, 10);
  const ProtocolParams at_opt{opt.n, opt.r};
  const ProtocolParams longer{opt.n, opt.r * 1.5};
  EXPECT_LT(mean_cost(scenario, at_opt), mean_cost(scenario, longer));
  EXPECT_GT(error_probability(scenario, at_opt),
            error_probability(scenario, longer));
}

TEST(PaperNumbers, LowerRLowerCostLowerReliability) {
  // Conclusion (Sec. 7): "the lower r is set, the lower the cost
  // becomes, but also the reliability decreases" — on the falling branch
  // left of the optimum the error grows as r shrinks.
  const auto scenario = scenarios::sec6().to_params();
  const double r_hi = 1.75, r_lo = 1.2;
  EXPECT_LT(error_probability(scenario, ProtocolParams{2, r_hi}),
            error_probability(scenario, ProtocolParams{2, r_lo}));
}

}  // namespace
