/// Kill-and-resume golden test: a 100-spec Monte-Carlo campaign under the
/// full fault schedule is journaled, truncated as a crash would leave it
/// (whole records lost, and a torn half-written line), and resumed — the
/// resumed report and CSV must be byte-identical to the uninterrupted
/// run's, at 1 worker thread and at 8. Stale and corrupt journals must be
/// rejected rather than silently blended into the wrong campaign.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "core/params.hpp"
#include "engine/campaign.hpp"
#include "engine/journal.hpp"
#include "engine/spec.hpp"
#include "faults/schedule.hpp"
#include "prob/delay.hpp"

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignResult;
using engine::CampaignRunner;
using engine::Estimator;
using engine::ExperimentSpec;
using engine::SpecBuilder;

/// The acceptance-campaign spec list: 100 Monte-Carlo specs exercising
/// every fault class at once (loss bursts, blackouts, delay spikes,
/// duplication, reordering, host churn). Built fresh on every call, the
/// way a resuming process would rebuild it.
std::vector<ExperimentSpec> acceptance_specs() {
  faults::FaultSchedule chaos;
  chaos.gilbert_elliott.p_enter_burst = 0.05;
  chaos.gilbert_elliott.p_exit_burst = 0.25;
  chaos.gilbert_elliott.loss_bad = 0.9;
  chaos.blackout.windows = {2.0, 0.5, 8.0};
  chaos.delay_spike.windows = {1.0, 1.0, 6.0};
  chaos.delay_spike.extra = 0.2;
  chaos.duplication.probability = 0.05;
  chaos.reordering.probability = 0.1;
  chaos.reordering.max_jitter = 0.05;
  chaos.host_churn.deaf_fraction = 0.3;
  chaos.host_churn.period = 4.0;
  chaos.host_churn.deaf_duration = 1.0;
  chaos.validate();

  const core::ScenarioParams s(0.3, 2.0, 1000.0,
                               prob::paper_reply_delay(0.1, 10.0, 0.05));
  std::vector<ExperimentSpec> specs;
  for (unsigned i = 0; i < 100; ++i) {
    specs.push_back(SpecBuilder("spec-" + std::to_string(i), s)
                        .protocol({1 + i % 4, 0.25 + 0.25 * (i % 3)})
                        .estimator(Estimator::monte_carlo)
                        .network(100, 30)
                        .faults(chaos)
                        .max_virtual_time(1e4)
                        .safety_caps(64)
                        .trials(40)
                        .seed(1000 + i)
                        .build());
  }
  return specs;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Deterministic byte artifacts of a finished campaign.
struct Artifacts {
  std::string report;
  std::string csv;
};

Artifacts artifacts_of(const CampaignResult& campaign) {
  Artifacts out;
  out.report =
      campaign.report("golden", "resume acceptance").to_json().dump();
  const std::string csv_path = temp_path("zc_resume_golden.csv");
  EXPECT_TRUE(engine::write_campaign_csv(campaign, csv_path));
  out.csv = slurp(csv_path);
  std::remove(csv_path.c_str());
  return out;
}

/// The journal's first `records` record lines (header always kept).
std::string journal_prefix(const std::string& bytes, std::size_t records) {
  std::size_t offset = bytes.find('\n') + 1;  // past the header
  for (std::size_t i = 0; i < records; ++i)
    offset = bytes.find('\n', offset) + 1;
  return bytes.substr(0, offset);
}

TEST(ResumeGolden, KilledCampaignResumesByteIdenticallyAtAnyThreadCount) {
  const std::string journal = temp_path("zc_resume_golden.jsonl");

  // Uninterrupted journaled run: the golden bytes.
  CampaignOptions golden_opts;
  golden_opts.threads = 1;
  golden_opts.journal_path = journal;
  CampaignRunner golden_runner(golden_opts);
  const Artifacts golden = artifacts_of(golden_runner.run(acceptance_specs()));
  const std::string full_journal = slurp(journal);

  // Crash scenarios: a prefix of whole records, and a prefix plus a torn
  // half-written record — each resumed at 1 thread and at 8.
  struct Scenario {
    const char* label;
    std::size_t keep_records;
    bool tear_final_line;
  };
  const Scenario scenarios[] = {
      {"lost tail, serial resume", 37, false},
      {"lost tail, parallel resume", 73, false},
      {"torn final record", 50, true},
  };
  const unsigned thread_counts[] = {1, 8, 1};

  for (std::size_t k = 0; k < 3; ++k) {
    const Scenario& scenario = scenarios[k];
    std::string crashed = journal_prefix(full_journal, scenario.keep_records);
    if (scenario.tear_final_line) {
      // Append half of the next record, newline-less: a crash mid-append.
      const std::string next =
          journal_prefix(full_journal, scenario.keep_records + 1);
      crashed += next.substr(crashed.size(), (next.size() - crashed.size()) / 2);
    }
    spit(journal, crashed);

    CampaignOptions opts;
    opts.threads = thread_counts[k];
    CampaignRunner runner(opts);
    const CampaignResult resumed = runner.resume(acceptance_specs(), journal);
    EXPECT_TRUE(resumed.complete) << scenario.label;
    const Artifacts replayed = artifacts_of(resumed);
    EXPECT_EQ(replayed.report, golden.report) << scenario.label;
    EXPECT_EQ(replayed.csv, golden.csv) << scenario.label;

    // The journal healed: every chunk is on disk again, no torn tail.
    const engine::JournalContents contents = engine::read_journal(journal);
    EXPECT_EQ(contents.completed.size(), 100u) << scenario.label;
    EXPECT_EQ(contents.dropped_bytes, 0u) << scenario.label;
  }

  std::remove(journal.c_str());
}

TEST(ResumeGolden, StaleJournalIsRejected) {
  // Journal a *different* campaign (one seed differs), then try to resume
  // the acceptance list from it: the digest must not match.
  std::vector<ExperimentSpec> other = acceptance_specs();
  other[0].sim.seed ^= 1;

  const std::string journal = temp_path("zc_resume_stale.jsonl");
  {
    // Header only — no spec needs to run to make the journal stale.
    exec::CancelToken stop;
    stop.request_stop();
    CampaignOptions opts;
    opts.journal_path = journal;
    opts.cancel = &stop;
    CampaignRunner runner(opts);
    const CampaignResult cancelled = runner.run(other);
    ASSERT_FALSE(cancelled.complete);
  }

  CampaignRunner resumer;
  EXPECT_THROW((void)resumer.resume(acceptance_specs(), journal),
               zc::ContractViolation);
  std::remove(journal.c_str());
}

TEST(ResumeGolden, CorruptJournalIsRejected) {
  // Flip bytes inside a non-final record: that is corruption, not a torn
  // tail, and resuming must refuse rather than replay damaged results.
  std::vector<ExperimentSpec> specs = acceptance_specs();
  specs.erase(specs.begin() + 4, specs.end());

  const std::string journal = temp_path("zc_resume_corrupt.jsonl");
  CampaignOptions opts;
  opts.threads = 1;
  opts.journal_path = journal;
  CampaignRunner runner(opts);
  (void)runner.run(specs);

  std::string bytes = slurp(journal);
  const std::size_t second_line = bytes.find('\n') + 1;
  bytes[second_line + 5] = '\x01';
  spit(journal, bytes);

  CampaignRunner resumer;
  EXPECT_THROW((void)resumer.resume(specs, journal), zc::ContractViolation);
  std::remove(journal.c_str());
}

}  // namespace
