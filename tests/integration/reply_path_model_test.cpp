/// Physical-decomposition validation: build F_X from a three-leg reply
/// path (probe transit -> responder -> reply transit), both analytically
/// (hypoexponential) and empirically (sampled), feed both into the cost
/// model, and confirm the model is insensitive to which construction is
/// used. Bridges zc::prob::ReplyPath with zc::core.

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "prob/families.hpp"
#include "prob/reply_path.hpp"

namespace {

using namespace zc;

prob::ReplyPath make_path() {
  prob::Leg probe{0.02, std::make_unique<prob::Exponential>(40.0)};
  prob::Leg processing{0.01, std::make_unique<prob::Exponential>(15.0)};
  prob::Leg reply{0.02, std::make_unique<prob::Exponential>(60.0)};
  return prob::ReplyPath(std::move(probe), std::move(processing),
                         std::move(reply), 0.05);
}

core::ScenarioParams scenario_with(
    std::shared_ptr<const prob::DelayDistribution> fx) {
  return core::ScenarioParams(0.25, 0.5, 500.0, std::move(fx));
}

TEST(ReplyPathModel, AnalyticCompositionFeedsCostModel) {
  const auto analytic = make_path().to_analytic();
  ASSERT_NE(analytic, nullptr);
  const auto scenario = scenario_with(analytic->clone());
  const double cost = core::mean_cost(scenario, core::ProtocolParams{3, 0.3});
  EXPECT_GT(cost, 0.0);
  EXPECT_NEAR(core::mean_cost_numeric(scenario,
                                      core::ProtocolParams{3, 0.3}) /
                  cost,
              1.0, 1e-10);
}

TEST(ReplyPathModel, EmpiricalAndAnalyticGiveSameCosts) {
  const auto path = make_path();
  const auto analytic = path.to_analytic();
  ASSERT_NE(analytic, nullptr);
  prob::Rng rng(2718);
  const auto empirical = std::make_shared<prob::EmpiricalDelay>(
      path.to_empirical(150000, rng));

  const auto s_analytic = scenario_with(analytic->clone());
  const auto s_empirical = scenario_with(empirical);
  for (unsigned n : {1u, 2u, 4u}) {
    for (double r : {0.1, 0.25, 0.5}) {
      const core::ProtocolParams protocol{n, r};
      EXPECT_NEAR(core::mean_cost(s_empirical, protocol) /
                      core::mean_cost(s_analytic, protocol),
                  1.0, 0.05)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(ReplyPathModel, ErrorProbabilityAgreesAcrossConstructions) {
  const auto path = make_path();
  const auto analytic = path.to_analytic();
  prob::Rng rng(1618);
  const auto empirical = std::make_shared<prob::EmpiricalDelay>(
      path.to_empirical(150000, rng));
  const auto s_analytic = scenario_with(analytic->clone());
  const auto s_empirical = scenario_with(empirical);
  const core::ProtocolParams protocol{2, 0.3};
  EXPECT_NEAR(core::error_probability(s_empirical, protocol) /
                  core::error_probability(s_analytic, protocol),
              1.0, 0.1);
}

TEST(ReplyPathModel, LossierPathsShiftOptimumTowardMoreProbes) {
  // Physical insight end to end: a lossier path needs more probes at the
  // cost optimum (or equal, when already saturated).
  prob::Leg p1{0.001, std::make_unique<prob::Exponential>(40.0)};
  prob::Leg c1{0.001, std::make_unique<prob::Exponential>(15.0)};
  prob::Leg r1{0.001, std::make_unique<prob::Exponential>(60.0)};
  const prob::ReplyPath reliable(std::move(p1), std::move(c1), std::move(r1),
                                 0.05);

  prob::Leg p2{0.15, std::make_unique<prob::Exponential>(40.0)};
  prob::Leg c2{0.1, std::make_unique<prob::Exponential>(15.0)};
  prob::Leg r2{0.15, std::make_unique<prob::Exponential>(60.0)};
  const prob::ReplyPath lossy(std::move(p2), std::move(c2), std::move(r2),
                              0.05);

  core::ROptOptions opts;
  opts.r_max = 3.0;
  const auto opt_reliable =
      core::joint_optimum(scenario_with(reliable.to_analytic()), 12, opts);
  const auto opt_lossy =
      core::joint_optimum(scenario_with(lossy.to_analytic()), 12, opts);
  EXPECT_GE(opt_lossy.n, opt_reliable.n);
  EXPECT_GT(opt_lossy.cost, opt_reliable.cost);
}

}  // namespace
