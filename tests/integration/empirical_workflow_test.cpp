/// The measure-then-model workflow the paper calls for in Sec. 7:
/// measure reply delays on a (simulated) real network, build an empirical
/// F_X, feed it into the analytic machinery, and check that decisions
/// (costs, optima) agree with the ground-truth distribution.

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/optimize.hpp"
#include "core/reliability.hpp"
#include "prob/empirical.hpp"
#include "prob/smoothed.hpp"

namespace {

using namespace zc;

class EmpiricalWorkflow : public ::testing::Test {
 protected:
  void SetUp() override {
    truth_ = prob::paper_reply_delay(0.2, 8.0, 0.25);
    prob::Rng rng(314159);
    measured_ = std::make_shared<prob::EmpiricalDelay>(
        prob::measure(*truth_, 200000, rng));
  }

  [[nodiscard]] core::ScenarioParams scenario_with(
      std::shared_ptr<const prob::DelayDistribution> fx) const {
    return core::ScenarioParams(0.3, 1.0, 200.0, std::move(fx));
  }

  std::shared_ptr<const prob::DelayDistribution> truth_;
  std::shared_ptr<const prob::EmpiricalDelay> measured_;
};

TEST_F(EmpiricalWorkflow, MeasuredLossMatchesTruth) {
  EXPECT_NEAR(measured_->loss_probability(), truth_->loss_probability(),
              0.005);
}

TEST_F(EmpiricalWorkflow, CostCurveMatchesTruthModel) {
  const auto with_truth = scenario_with(truth_->clone());
  const auto with_measured = scenario_with(measured_);
  for (unsigned n : {1u, 2u, 4u}) {
    for (double r : {0.3, 0.6, 1.0, 2.0}) {
      const core::ProtocolParams protocol{n, r};
      const double truth_cost = core::mean_cost(with_truth, protocol);
      const double measured_cost = core::mean_cost(with_measured, protocol);
      EXPECT_NEAR(measured_cost / truth_cost, 1.0, 0.03)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST_F(EmpiricalWorkflow, ErrorProbabilityMatchesTruthModel) {
  const auto with_truth = scenario_with(truth_->clone());
  const auto with_measured = scenario_with(measured_);
  for (double r : {0.3, 0.8, 1.5}) {
    const core::ProtocolParams protocol{2, r};
    const double truth_err = core::error_probability(with_truth, protocol);
    const double measured_err =
        core::error_probability(with_measured, protocol);
    EXPECT_NEAR(measured_err / truth_err, 1.0, 0.08) << "r=" << r;
  }
}

TEST_F(EmpiricalWorkflow, OptimalConfigurationAgrees) {
  const auto with_truth = scenario_with(truth_->clone());
  const auto with_measured = scenario_with(measured_);
  core::ROptOptions opts;
  opts.r_max = 5.0;
  const auto truth_opt = core::joint_optimum(with_truth, 8, opts);
  const auto measured_opt = core::joint_optimum(with_measured, 8, opts);
  EXPECT_EQ(measured_opt.n, truth_opt.n);
  EXPECT_NEAR(measured_opt.r, truth_opt.r, 0.1 * truth_opt.r + 0.05);
  EXPECT_NEAR(measured_opt.cost / truth_opt.cost, 1.0, 0.05);
}

TEST_F(EmpiricalWorkflow, SmallSampleStillGivesUsableEstimates) {
  // Even a few hundred probes give decision-grade cost estimates.
  prob::Rng rng(999);
  const auto small = std::make_shared<prob::EmpiricalDelay>(
      prob::measure(*truth_, 500, rng));
  const auto with_truth = scenario_with(truth_->clone());
  const auto with_small = scenario_with(small);
  const core::ProtocolParams protocol{3, 0.8};
  EXPECT_NEAR(core::mean_cost(with_small, protocol) /
                  core::mean_cost(with_truth, protocol),
              1.0, 0.2);
}

TEST_F(EmpiricalWorkflow, SmoothedNonparametricModelAgreesWithTruth) {
  // The PCHIP-smoothed ECDF is the nonparametric alternative to the
  // parametric fit: model outputs must track the truth closely.
  const auto smooth =
      std::make_shared<prob::SmoothedEmpiricalDelay>(*measured_);
  const auto with_truth = scenario_with(truth_->clone());
  const auto with_smooth = scenario_with(smooth);
  for (unsigned n : {1u, 2u, 4u}) {
    for (double r : {0.4, 0.8, 1.5}) {
      const core::ProtocolParams protocol{n, r};
      EXPECT_NEAR(core::mean_cost(with_smooth, protocol) /
                      core::mean_cost(with_truth, protocol),
                  1.0, 0.03)
          << "n=" << n << " r=" << r;
    }
  }
}

TEST_F(EmpiricalWorkflow, SmoothedModelSupportsOptimization) {
  // Differentiable enough for the optimizer: the found optimum matches
  // the truth-model optimum.
  const auto smooth =
      std::make_shared<prob::SmoothedEmpiricalDelay>(*measured_);
  core::ROptOptions opts;
  opts.r_max = 5.0;
  const auto truth_opt =
      core::joint_optimum(scenario_with(truth_->clone()), 8, opts);
  const auto smooth_opt =
      core::joint_optimum(scenario_with(smooth), 8, opts);
  EXPECT_EQ(smooth_opt.n, truth_opt.n);
  EXPECT_NEAR(smooth_opt.r, truth_opt.r, 0.15 * truth_opt.r + 0.05);
}

}  // namespace
