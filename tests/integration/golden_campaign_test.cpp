/// Golden campaign: the paper's headline numbers reproduced through the
/// experiment engine — the same specs the CLI, examples, and benches now
/// build, checked against the published Figure 2 / Section 6 values.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "engine/campaign.hpp"

namespace {

using namespace zc;
using engine::CampaignOptions;
using engine::CampaignRunner;
using engine::SpecBuilder;

TEST(GoldenCampaign, ReproducesThePaperOptimaInOneBatch) {
  // One batch holding both headline scenarios; the ladder cache and the
  // deterministic batch executor sit in the exercised path.
  CampaignRunner runner;
  const engine::CampaignResult campaign = runner.run({
      SpecBuilder("figure2", core::scenarios::figure2()).optimize(16).build(),
      SpecBuilder("section6", core::scenarios::sec6()).optimize(16).build(),
  });

  // Sec. 4.4: optimal n = 3, r ~ 2.14 s, expected cost ~ 12.6.
  ASSERT_TRUE(campaign.experiments[0].optimum.has_value());
  const core::JointOptimum& fig2 = *campaign.experiments[0].optimum;
  EXPECT_EQ(fig2.n, 3u);
  EXPECT_NEAR(fig2.r, 2.14, 0.05);
  EXPECT_NEAR(fig2.cost, 12.6, 0.1);

  // Sec. 6: the assessment scenario prefers n = 2, r ~ 1.75 s.
  ASSERT_TRUE(campaign.experiments[1].optimum.has_value());
  const core::JointOptimum& sec6 = *campaign.experiments[1].optimum;
  EXPECT_EQ(sec6.n, 2u);
  EXPECT_NEAR(sec6.r, 1.75, 0.05);
}

TEST(GoldenCampaign, BatchBytesAreThreadCountInvariant) {
  const auto run_at = [](unsigned threads) {
    CampaignRunner runner(CampaignOptions{threads});
    return runner
        .run({SpecBuilder("figure2", core::scenarios::figure2())
                  .optimize(16)
                  .build(),
              SpecBuilder("grid", core::scenarios::sec6())
                  .protocol_grid({1, 2, 4}, {0.5, 1.75, 4.0})
                  .detailed()
                  .build()})
        .report("golden_campaign", "paper numbers through the engine")
        .to_json()
        .dump();
  };
  EXPECT_EQ(run_at(1), run_at(8));
}

}  // namespace
