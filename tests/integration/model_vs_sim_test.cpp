/// Cross-module validation: the analytic DRM model (zc::core) against the
/// protocol-faithful discrete-event simulation (zc::sim). This is the
/// reproduction's substitute for the measurements the paper lacked
/// (Sec. 7): if the abstract model and the mechanistic simulation agree,
/// the DRM abstraction is sound.

#include <gtest/gtest.h>

#include "core/cost.hpp"
#include "core/reliability.hpp"
#include "sim/monte_carlo.hpp"

namespace {

using namespace zc;

sim::ZeroconfConfig make_protocol(unsigned n, double r) {
  sim::ZeroconfConfig config;
  config.schedule = core::ProbeSchedule::uniform(n, r);
  return config;
}

struct NetSetup {
  double q;
  unsigned hosts;
  sim::Address space;
  double loss, lambda, d;

  [[nodiscard]] sim::NetworkConfig network() const {
    sim::NetworkConfig config;
    config.address_space = space;
    config.hosts = hosts;
    config.responder_delay =
        std::shared_ptr<const prob::DelayDistribution>(
            prob::paper_reply_delay(loss, lambda, d));
    return config;
  }

  [[nodiscard]] core::ScenarioParams model(double c, double e) const {
    return core::ScenarioParams(q, c, e,
                                prob::paper_reply_delay(loss, lambda, d));
  }
};

/// Parametrized over (n, r) draft-like configurations on an exaggerated
/// network where collisions are measurable.
class ModelVsSim
    : public ::testing::TestWithParam<std::tuple<unsigned, double>> {
 protected:
  static constexpr NetSetup kSetup{0.4, 40, 100, 0.5, 10.0, 0.05};
};

TEST_P(ModelVsSim, CollisionProbabilityWithinCi) {
  const auto [n, r] = GetParam();
  sim::MonteCarloOptions opts;
  opts.trials = 15000;
  opts.seed = 1000 + n;
  const auto mc = sim::monte_carlo(kSetup.network(),
                                   make_protocol(n, r), opts);
  const double analytic = core::error_probability(
      kSetup.model(1.0, 1.0), core::ProtocolParams{n, r});
  EXPECT_GE(analytic, mc.collision_ci95.lower * 0.9)
      << "n=" << n << " r=" << r;
  EXPECT_LE(analytic, mc.collision_ci95.upper * 1.1)
      << "n=" << n << " r=" << r;
}

TEST_P(ModelVsSim, MeanModelCostWithinCi) {
  const auto [n, r] = GetParam();
  const double c = 2.0, e = 30.0;
  sim::MonteCarloOptions opts;
  opts.trials = 15000;
  opts.seed = 2000 + n;
  opts.probe_cost = c;
  opts.error_cost = e;
  const auto mc = sim::monte_carlo(kSetup.network(),
                                   make_protocol(n, r), opts);
  const double analytic =
      core::mean_cost(kSetup.model(c, e), core::ProtocolParams{n, r});
  EXPECT_NEAR(mc.model_cost.mean, analytic,
              4.0 * mc.model_cost.ci95_halfwidth + 1e-9)
      << "n=" << n << " r=" << r;
}

TEST_P(ModelVsSim, CostVarianceWithinTolerance) {
  // The DRM second-moment system (our extension) against the empirical
  // variance of simulated run costs.
  const auto [n, r] = GetParam();
  const double c = 2.0, e = 30.0;
  sim::MonteCarloOptions opts;
  opts.trials = 15000;
  opts.seed = 3000 + n;
  opts.probe_cost = c;
  opts.error_cost = e;
  const auto mc = sim::monte_carlo(kSetup.network(),
                                   make_protocol(n, r), opts);
  const double analytic =
      core::cost_variance(kSetup.model(c, e), core::ProtocolParams{n, r});
  const double empirical = mc.model_cost.stddev * mc.model_cost.stddev;
  EXPECT_NEAR(empirical / analytic, 1.0, 0.15) << "n=" << n << " r=" << r;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ModelVsSim,
    ::testing::Values(std::tuple{1u, 0.2}, std::tuple{2u, 0.15},
                      std::tuple{3u, 0.1}, std::tuple{4u, 0.2},
                      std::tuple{2u, 0.5}));

TEST(ModelVsSimExtras, ImmediateAbortSavesTimeButNotReliability) {
  // The model charges full listening periods; the draft host aborts on
  // the first conflicting reply. Reliability is identical; elapsed time
  // is strictly smaller.
  constexpr NetSetup setup{0.4, 40, 100, 0.5, 10.0, 0.05};
  sim::MonteCarloOptions opts;
  opts.trials = 15000;
  opts.seed = 4000;
  opts.probe_cost = 0.0;
  opts.error_cost = 0.0;
  const sim::ZeroconfConfig protocol = make_protocol(3, 0.3);
  const auto mc = sim::monte_carlo(setup.network(), protocol, opts);
  const double model_waiting = core::mean_waiting_time(
      setup.model(0.0, 0.0), core::ProtocolParams{3, 0.3});
  EXPECT_LT(mc.waiting_time.mean, model_waiting);
  EXPECT_NEAR(mc.model_cost.mean, model_waiting,
              4.0 * mc.model_cost.ci95_halfwidth);
}

TEST(ModelVsSimExtras, AvoidFailedAddressesBeatsUniformRepick) {
  // Draft detail (a): avoiding previously failed addresses reduces the
  // expected number of attempts below the model's geometric restarts.
  constexpr NetSetup setup{0.8, 80, 100, 0.02, 50.0, 0.01};
  sim::MonteCarloOptions opts;
  opts.trials = 4000;
  opts.seed = 5000;

  sim::ZeroconfConfig uniform = make_protocol(2, 0.1);
  sim::ZeroconfConfig avoiding = make_protocol(2, 0.1);
  avoiding.avoid_failed_addresses = true;

  const auto mc_uniform = sim::monte_carlo(setup.network(), uniform, opts);
  const auto mc_avoiding = sim::monte_carlo(setup.network(), avoiding, opts);
  EXPECT_LT(mc_avoiding.attempts.mean, mc_uniform.attempts.mean);
}

}  // namespace
