/// Golden determinism of the pooled simulation core: the allocation-free
/// event pool and reusable trial contexts must leave every observable
/// result bitwise-identical to the pre-pool implementation. The expected
/// digests below were recorded from the heap-per-event implementation
/// (priority_queue + shared_ptr + fresh Network per trial) at commit
/// "PR 4: Unified experiment engine"; any drift in RNG stream
/// consumption, event ordering, or metric accounting changes a digest.
///
/// Compiled with -DZC_GOLDEN_REGEN this file becomes a standalone
/// generator printing the current digests (used once, against the
/// pre-pool tree, to record the constants).

#ifndef ZC_GOLDEN_REGEN
#include <gtest/gtest.h>
#endif

#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenarios.hpp"
#include "engine/campaign.hpp"
#include "obs/report.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/network.hpp"

namespace {

using namespace zc;

/// Exact decimal-free rendering: doubles as C99 hexfloats, so the digest
/// string captures every bit of every estimate.
std::string hex(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// FNV-1a 64-bit over a byte string (for multi-KB report payloads).
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hash_hex(const std::string& bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a(bytes)));
  return buf;
}

/// One of everything: every fault class active, so the recorded streams
/// cover the injector's whole decision surface (mirrors the obs
/// determinism test's schedule).
sim::NetworkConfig faulty_network() {
  sim::NetworkConfig config;
  config.address_space = 100;
  config.hosts = 30;
  config.responder_delay = std::shared_ptr<const prob::DelayDistribution>(
      prob::paper_reply_delay(0.4, 20.0, 0.1));
  config.faults.gilbert_elliott.p_enter_burst = 0.05;
  config.faults.gilbert_elliott.p_exit_burst = 0.25;
  config.faults.gilbert_elliott.loss_bad = 0.9;
  config.faults.blackout.windows.start = 0.5;
  config.faults.blackout.windows.duration = 0.2;
  config.faults.blackout.windows.period = 2.0;
  config.faults.delay_spike.windows.start = 1.0;
  config.faults.delay_spike.windows.duration = 0.5;
  config.faults.delay_spike.windows.period = 3.0;
  config.faults.delay_spike.multiplier = 4.0;
  config.faults.delay_spike.extra = 0.05;
  config.faults.duplication.probability = 0.15;
  config.faults.duplication.copies = 2;
  config.faults.reordering.probability = 0.3;
  config.faults.reordering.max_jitter = 0.2;
  config.faults.host_churn.deaf_fraction = 0.3;
  config.faults.host_churn.period = 4.0;
  config.faults.host_churn.deaf_duration = 1.0;
  return config;
}

/// Digest of a full-fault Monte-Carlo campaign: every estimate bit, the
/// outcome tallies, and the serialized semantic metric set (mc.*,
/// sim.delivery.*, faults.*).
std::string join_digest(unsigned threads) {
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(3, 1.0);
  sim::MonteCarloOptions opts;
  opts.trials = 1200;
  opts.seed = 20260806;
  opts.threads = threads;
  const sim::MonteCarloResults r =
      sim::monte_carlo(faulty_network(), protocol, opts);

  std::ostringstream os;
  os << "model_cost=" << hex(r.model_cost.mean) << ','
     << hex(r.model_cost.stddev) << ',' << hex(r.model_cost.ci95_halfwidth)
     << " elapsed_cost=" << hex(r.elapsed_cost.mean)
     << " probes=" << hex(r.probes.mean)
     << " attempts=" << hex(r.attempts.mean)
     << " waiting=" << hex(r.waiting_time.mean)
     << " completed=" << r.completed << " aborted=" << r.aborted
     << " collisions=" << r.collisions
     << " collision_rate=" << hex(r.collision_rate)
     << " metrics=" << hash_hex(obs::metrics_to_json(r.metrics).dump());
  return os.str();
}

/// Digest of a multi-host contention run exercising PROBE_WAIT, address
/// avoidance, rate limiting, announcements, and the safety caps — the
/// paths the pooled core must replay draw-for-draw.
std::string simultaneous_join_digest() {
  sim::NetworkConfig config = faulty_network();
  sim::Network net(config, 987654321u);
  sim::ZeroconfConfig protocol;
  protocol.schedule = core::ProbeSchedule::uniform(3, 1.0);
  protocol.probe_wait_max = 0.5;
  protocol.avoid_failed_addresses = true;
  protocol.rate_limit = true;
  protocol.rate_limit_threshold = 2;
  protocol.rate_limit_delay = 5.0;
  protocol.announce_count = 2;
  protocol.announce_interval = 1.0;
  protocol.max_attempts = 50;
  const std::vector<sim::RunResult> runs =
      net.run_simultaneous_join(protocol, 8);

  std::ostringstream os;
  for (const sim::RunResult& run : runs) {
    os << '[' << run.address << ' ' << run.collision << run.aborted
       << run.collision_detected << ' ' << run.probes_sent << ','
       << run.attempts << ',' << run.conflicts << ' '
       << hex(run.waiting_time) << ' ' << hex(run.elapsed) << ']';
  }
  return os.str();
}

/// Digest of a Monte-Carlo campaign routed through the experiment
/// engine: the exact report payload bytes (experiments + semantic
/// metrics — the same content parallel_speedup's determinism check
/// compares), hashed.
std::string campaign_digest(unsigned threads) {
  faults::FaultSchedule schedule = faulty_network().faults;
  engine::CampaignRunner runner(engine::CampaignOptions{threads});
  const engine::CampaignResult campaign = runner.run(
      {engine::SpecBuilder("golden_mc", core::scenarios::figure2())
           .estimator(engine::Estimator::monte_carlo)
           .protocol_grid({2, 3}, {1.0, 2.0})
           .network(256, 64)
           .faults(schedule)
           .trials(400)
           .seed(77)
           .build()});
  const std::string bytes = campaign.to_json().dump() +
                            obs::metrics_to_json(campaign.metrics).dump();
  return hash_hex(bytes);
}

}  // namespace

#ifdef ZC_GOLDEN_REGEN

int main() {
  std::printf("kJoinDigest (threads 1):\n%s\n", join_digest(1).c_str());
  std::printf("kJoinDigest (threads 8):\n%s\n", join_digest(8).c_str());
  std::printf("kSimultaneousJoinDigest:\n%s\n",
              simultaneous_join_digest().c_str());
  std::printf("kCampaignDigest (threads 1): %s\n", campaign_digest(1).c_str());
  std::printf("kCampaignDigest (threads 8): %s\n", campaign_digest(8).c_str());
  return 0;
}

#else  // test mode

namespace {

#ifdef ZC_OBS_DISABLED
#define ZC_SKIP_WITHOUT_METRICS() \
  GTEST_SKIP() << "metric digests need -DZC_OBS_METRICS=ON"
#else
#define ZC_SKIP_WITHOUT_METRICS() \
  do {                            \
  } while (false)
#endif

// Recorded from the pre-pool implementation (see file comment).
constexpr const char* kJoinDigest =
    "model_cost=0x1.92a5d32fd987bp+112,0x1.51b1cf7ac11ecp+114,"
    "0x1.31b44c3bfbf2ap+110 elapsed_cost=0x1.92a5d32fd987bp+112 "
    "probes=0x1.bfae147ae147cp+1 attempts=0x1.52c5f92c5f92dp+0 "
    "waiting=0x1.9f9cc1bc67d5cp+1 completed=1200 aborted=0 collisions=98 "
    "collision_rate=0x1.4e81b4e81b4e8p-4 metrics=5875f42333601056";
constexpr const char* kSimultaneousJoinDigest =
    "[15 000 3,1,0 0x1.8p+1 0x1.89f2ebc62b802p+1]"
    "[74 000 3,1,0 0x1.8p+1 0x1.8dc8390760611p+1]"
    "[1 101 3,1,0 0x1.8p+1 0x1.b8e09503f0ec2p+1]"
    "[51 000 3,1,0 0x1.8p+1 0x1.b8685ef12cf4ap+1]"
    "[66 000 3,1,0 0x1.8p+1 0x1.af4c63a1a55bfp+1]"
    "[53 000 3,1,0 0x1.8p+1 0x1.a9045b29b0b5cp+1]"
    "[93 100 3,2,1 0x1.89f2ebc62b803p+1 0x1.a15f8136613b2p+1]"
    "[52 101 3,1,0 0x1.8p+1 0x1.b2358d43312a4p+1]";
constexpr const char* kCampaignDigest = "182137b93a728bdf";

TEST(GoldenPool, JoinCampaignMatchesPrePoolRecordingAtAnyThreadCount) {
  ZC_SKIP_WITHOUT_METRICS();
  EXPECT_EQ(join_digest(1), kJoinDigest);
  EXPECT_EQ(join_digest(8), kJoinDigest);
}

TEST(GoldenPool, SimultaneousJoinMatchesPrePoolRecording) {
  EXPECT_EQ(simultaneous_join_digest(), kSimultaneousJoinDigest);
}

TEST(GoldenPool, CampaignReportBytesMatchPrePoolRecordingAtAnyThreadCount) {
  ZC_SKIP_WITHOUT_METRICS();
  EXPECT_EQ(campaign_digest(1), kCampaignDigest);
  EXPECT_EQ(campaign_digest(8), kCampaignDigest);
}

}  // namespace

#endif  // ZC_GOLDEN_REGEN
