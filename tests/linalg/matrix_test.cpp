#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

using zc::linalg::Matrix;
using zc::linalg::Vector;

TEST(Matrix, DefaultIsEmpty) {
  const Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(Matrix, FillConstruction) {
  const Matrix m(2, 3, 7.0);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 7.0);
}

TEST(Matrix, InitializerListConstruction) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerListRejected) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), zc::ContractViolation);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, OutOfRangeAccessRejected) {
  const Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), zc::ContractViolation);
  EXPECT_THROW((void)m(0, 2), zc::ContractViolation);
}

TEST(Matrix, BlockExtraction) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.block(1, 3, 0, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  EXPECT_EQ(b(0, 0), 4.0);
  EXPECT_EQ(b(1, 1), 8.0);
}

TEST(Matrix, RowAndColExtraction) {
  const Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.col(0), (Vector{1.0, 3.0}));
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(t(j, i), m(i, j));
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(Matrix, AdditionAndSubtraction) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 6.0);
  EXPECT_EQ(sum(1, 1), 12.0);
  EXPECT_EQ(sum - b, a);
}

TEST(Matrix, MismatchedShapesRejected) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, zc::ContractViolation);
}

TEST(Matrix, ScalarMultiplication) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix twice = 2.0 * a;
  EXPECT_EQ(twice, a * 2.0);
  EXPECT_EQ(twice(1, 0), 6.0);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix ab = a * b;
  EXPECT_EQ(ab(0, 0), 19.0);
  EXPECT_EQ(ab(0, 1), 22.0);
  EXPECT_EQ(ab(1, 0), 43.0);
  EXPECT_EQ(ab(1, 1), 50.0);
}

TEST(Matrix, ProductWithIdentityIsNoop) {
  const Matrix a{{1, 2}, {3, 4}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, ProductShapeMismatchRejected) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)(a * b), zc::ContractViolation);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Vector x{1.0, 1.0};
  EXPECT_EQ(a * x, (Vector{3.0, 7.0}));
}

TEST(Matrix, LeftVectorProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Vector x{1.0, 1.0};
  EXPECT_EQ(zc::linalg::mul_left(x, a), (Vector{4.0, 6.0}));
}

TEST(Matrix, LeftAndRightProductsAgreeViaTranspose) {
  const Matrix a{{1, 2, 0}, {0, 3, 4}, {5, 0, 6}};
  const Vector x{0.25, 0.5, 0.25};
  EXPECT_EQ(zc::linalg::mul_left(x, a), a.transpose() * x);
}

TEST(VectorOps, DotProduct) {
  EXPECT_EQ(zc::linalg::dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(VectorOps, DotSizeMismatchRejected) {
  EXPECT_THROW((void)zc::linalg::dot({1.0}, {1.0, 2.0}),
               zc::ContractViolation);
}

TEST(VectorOps, AddSubScale) {
  EXPECT_EQ(zc::linalg::add({1, 2}, {3, 4}), (Vector{4.0, 6.0}));
  EXPECT_EQ(zc::linalg::sub({3, 4}, {1, 2}), (Vector{2.0, 2.0}));
  EXPECT_EQ(zc::linalg::scale({1, 2}, 3.0), (Vector{3.0, 6.0}));
}

}  // namespace
