#include "linalg/norms.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"

namespace {

using zc::linalg::Matrix;
using zc::linalg::Vector;

TEST(VectorNorms, InfNorm) {
  EXPECT_EQ(zc::linalg::norm_inf(Vector{1.0, -5.0, 3.0}), 5.0);
}

TEST(VectorNorms, OneNorm) {
  EXPECT_EQ(zc::linalg::norm_1(Vector{1.0, -5.0, 3.0}), 9.0);
}

TEST(VectorNorms, TwoNorm) {
  EXPECT_DOUBLE_EQ(zc::linalg::norm_2(Vector{3.0, 4.0}), 5.0);
}

TEST(VectorNorms, TwoNormAvoidsOverflow) {
  const double big = 1e200;
  EXPECT_DOUBLE_EQ(zc::linalg::norm_2(Vector{big, big}),
                   big * std::sqrt(2.0));
}

TEST(VectorNorms, ZeroVector) {
  const Vector z{0.0, 0.0};
  EXPECT_EQ(zc::linalg::norm_inf(z), 0.0);
  EXPECT_EQ(zc::linalg::norm_1(z), 0.0);
  EXPECT_EQ(zc::linalg::norm_2(z), 0.0);
}

TEST(MatrixNorms, InfNormIsMaxRowSum) {
  const Matrix a{{1, -2}, {3, 4}};
  EXPECT_EQ(zc::linalg::norm_inf(a), 7.0);
}

TEST(MatrixNorms, OneNormIsMaxColSum) {
  const Matrix a{{1, -2}, {3, 4}};
  EXPECT_EQ(zc::linalg::norm_1(a), 6.0);
}

TEST(MatrixNorms, FrobeniusNorm) {
  const Matrix a{{3, 0}, {0, 4}};
  EXPECT_DOUBLE_EQ(zc::linalg::norm_frobenius(a), 5.0);
}

TEST(MatrixNorms, NormOfTransposeSwapsOneAndInf) {
  const Matrix a{{1, -2, 5}, {3, 4, 0}};
  EXPECT_EQ(zc::linalg::norm_inf(a), zc::linalg::norm_1(a.transpose()));
  EXPECT_EQ(zc::linalg::norm_1(a), zc::linalg::norm_inf(a.transpose()));
}

TEST(MaxAbsDiff, Matrices) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{1, 2.5}, {3, 3}};
  EXPECT_EQ(zc::linalg::max_abs_diff(a, b), 1.0);
}

TEST(MaxAbsDiff, Vectors) {
  EXPECT_EQ(zc::linalg::max_abs_diff(Vector{1, 2}, Vector{0, 2}), 1.0);
}

TEST(MaxAbsDiff, ShapeMismatchRejected) {
  EXPECT_THROW((void)zc::linalg::max_abs_diff(Matrix(2, 2), Matrix(2, 3)),
               zc::ContractViolation);
  EXPECT_THROW((void)zc::linalg::max_abs_diff(Vector{1}, Vector{1, 2}),
               zc::ContractViolation);
}

}  // namespace
