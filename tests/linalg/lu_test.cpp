#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "linalg/norms.hpp"
#include "prob/rng.hpp"

namespace {

using zc::linalg::Lu;
using zc::linalg::Matrix;
using zc::linalg::Vector;

TEST(Lu, SolvesKnownSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const Vector x = zc::linalg::solve(a, {3, 5});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SingularMatrixReturnsNullopt) {
  const Matrix singular{{1, 2}, {2, 4}};
  EXPECT_FALSE(Lu::decompose(singular).has_value());
}

TEST(Lu, ZeroMatrixIsSingular) {
  EXPECT_FALSE(Lu::decompose(Matrix(3, 3, 0.0)).has_value());
}

TEST(Lu, NonSquareRejected) {
  EXPECT_THROW((void)Lu::decompose(Matrix(2, 3)), zc::ContractViolation);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  // Naive LU without pivoting would divide by zero here.
  const Matrix a{{0, 1}, {1, 0}};
  const Vector x = zc::linalg::solve(a, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  const auto lu = Lu::decompose(Matrix{{1, 2}, {3, 4}});
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantOfIdentity) {
  const auto lu = Lu::decompose(Matrix::identity(5));
  ASSERT_TRUE(lu.has_value());
  EXPECT_DOUBLE_EQ(lu->determinant(), 1.0);
}

TEST(Lu, DeterminantTracksPermutationSign) {
  // A permutation matrix swapping two rows has determinant -1.
  const Matrix p{{0, 1}, {1, 0}};
  const auto lu = Lu::decompose(p);
  ASSERT_TRUE(lu.has_value());
  EXPECT_DOUBLE_EQ(lu->determinant(), -1.0);
}

TEST(Lu, InverseOfKnownMatrix) {
  const Matrix a{{4, 7}, {2, 6}};
  const Matrix inv = zc::linalg::inverse(a);
  EXPECT_NEAR(inv(0, 0), 0.6, 1e-12);
  EXPECT_NEAR(inv(0, 1), -0.7, 1e-12);
  EXPECT_NEAR(inv(1, 0), -0.2, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.4, 1e-12);
}

TEST(Lu, MatrixRhsSolveMatchesColumnwise) {
  const Matrix a{{3, 1}, {1, 2}};
  const Matrix b{{1, 0}, {0, 1}};
  const auto lu = Lu::decompose(a);
  ASSERT_TRUE(lu.has_value());
  const Matrix x = lu->solve(b);
  EXPECT_LT(zc::linalg::max_abs_diff(a * x, b), 1e-13);
}

/// Property suite over random well-conditioned systems of varying size.
class LuRandomSystems : public ::testing::TestWithParam<std::size_t> {};

Matrix random_diag_dominant(std::size_t n, zc::prob::Rng& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      a(i, j) = rng.uniform(-1.0, 1.0);
      off_sum += std::abs(a(i, j));
    }
    a(i, i) = off_sum + 1.0;  // strict diagonal dominance => nonsingular
  }
  return a;
}

TEST_P(LuRandomSystems, SolveReproducesRhs) {
  zc::prob::Rng rng(GetParam() * 7919 + 1);
  const std::size_t n = GetParam();
  const Matrix a = random_diag_dominant(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.uniform(-10.0, 10.0);
  const Vector x = zc::linalg::solve(a, b);
  EXPECT_LT(zc::linalg::max_abs_diff(a * x, b), 1e-10)
      << "residual too large for n=" << n;
}

TEST_P(LuRandomSystems, InverseTimesMatrixIsIdentity) {
  zc::prob::Rng rng(GetParam() * 104729 + 2);
  const std::size_t n = GetParam();
  const Matrix a = random_diag_dominant(n, rng);
  const Matrix inv = zc::linalg::inverse(a);
  EXPECT_LT(zc::linalg::max_abs_diff(a * inv, Matrix::identity(n)), 1e-10);
  EXPECT_LT(zc::linalg::max_abs_diff(inv * a, Matrix::identity(n)), 1e-10);
}

TEST_P(LuRandomSystems, DeterminantMatchesProductViaInverse) {
  zc::prob::Rng rng(GetParam() * 1299709 + 3);
  const std::size_t n = GetParam();
  const Matrix a = random_diag_dominant(n, rng);
  const auto lu_a = Lu::decompose(a);
  ASSERT_TRUE(lu_a.has_value());
  const auto lu_inv = Lu::decompose(lu_a->inverse());
  ASSERT_TRUE(lu_inv.has_value());
  // det(A) * det(A^{-1}) = 1.
  EXPECT_NEAR(lu_a->determinant() * lu_inv->determinant(), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuRandomSystems,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 13, 21,
                                                        34, 55));

}  // namespace
