#include "numerics/minimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"

namespace {

using zc::numerics::brent_minimize;
using zc::numerics::golden_section_minimize;
using zc::numerics::scan_then_refine_minimize;

TEST(GoldenSection, QuadraticMinimum) {
  const auto r = golden_section_minimize(
      [](double x) { return (x - 1.5) * (x - 1.5); }, 0.0, 4.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, 1.5, 1e-8);
  EXPECT_NEAR(r.value, 0.0, 1e-15);
}

TEST(GoldenSection, MinimumAtBoundary) {
  const auto r = golden_section_minimize([](double x) { return x; }, 2.0,
                                         5.0);
  EXPECT_NEAR(r.x, 2.0, 1e-7);
}

TEST(GoldenSection, InvalidBracketRejected) {
  EXPECT_THROW(
      (void)golden_section_minimize([](double x) { return x; }, 1.0, 1.0),
      zc::ContractViolation);
}

TEST(BrentMinimize, QuadraticConvergesFast) {
  const auto r =
      brent_minimize([](double x) { return (x + 2.0) * (x + 2.0) + 3.0; },
                     -10.0, 10.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x, -2.0, 1e-7);
  EXPECT_NEAR(r.value, 3.0, 1e-12);
  EXPECT_LT(r.evaluations, 60);
}

TEST(BrentMinimize, NonSmoothAbsoluteValue) {
  const auto r =
      brent_minimize([](double x) { return std::fabs(x - 0.3); }, -1.0, 1.0);
  EXPECT_NEAR(r.x, 0.3, 1e-7);
}

TEST(BrentMinimize, CosineMinimum) {
  const auto r = brent_minimize([](double x) { return std::cos(x); }, 2.0,
                                5.0);
  EXPECT_NEAR(r.x, 3.14159265358979, 1e-6);
  EXPECT_NEAR(r.value, -1.0, 1e-12);
}

TEST(BrentMinimize, BeatsGoldenSectionOnSmoothFunctions) {
  const auto f = [](double x) { return std::pow(x - 0.7, 4) + x * x; };
  const auto brent = brent_minimize(f, -3.0, 3.0, 1e-10);
  const auto golden = golden_section_minimize(f, -3.0, 3.0, 1e-10);
  EXPECT_NEAR(brent.value, golden.value, 1e-10);
  EXPECT_LE(brent.evaluations, golden.evaluations);
}

TEST(ScanRefine, FindsGlobalMinimumOfMultimodal) {
  // Two valleys; the deeper one is at x ~ 4.5.
  const auto f = [](double x) {
    return std::sin(x) + 0.1 * (x - 4.0) * (x - 4.0);
  };
  const auto r = scan_then_refine_minimize(f, 0.0, 8.0, 256);
  EXPECT_NEAR(r.x, 4.71, 0.15);
}

TEST(ScanRefine, HandlesFlatThenDropShape) {
  // Flat plateau followed by a sharp dip — the shape of C_n(r) near 0.
  const auto f = [](double x) {
    return x < 1.0 ? 10.0 : 10.0 + (x - 1.5) * (x - 1.5) - 1.0;
  };
  const auto r = scan_then_refine_minimize(f, 0.01, 3.0, 256);
  EXPECT_NEAR(r.x, 1.5, 1e-6);
  EXPECT_NEAR(r.value, 9.0, 1e-12);
}

/// Parametric sweep: polynomial minima at known positions.
class KnownMinimaSweep : public ::testing::TestWithParam<double> {};

TEST_P(KnownMinimaSweep, BrentLocatesShiftedQuartic) {
  const double target = GetParam();
  const auto r = brent_minimize(
      [target](double x) { return std::pow(x - target, 4); }, target - 5.0,
      target + 3.0);
  EXPECT_NEAR(r.x, target, 1e-3);  // quartic is flat; 1e-3 is fair
  EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST_P(KnownMinimaSweep, ScanRefineLocatesShiftedQuadratic) {
  const double target = GetParam();
  const auto r = scan_then_refine_minimize(
      [target](double x) { return (x - target) * (x - target); },
      target - 7.0, target + 11.0, 64);
  EXPECT_NEAR(r.x, target, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Targets, KnownMinimaSweep,
                         ::testing::Values(-3.0, -0.5, 0.0, 0.25, 1.0, 2.5,
                                           7.75, 42.0));

}  // namespace
