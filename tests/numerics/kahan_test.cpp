#include "numerics/kahan.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using zc::numerics::KahanSum;

TEST(Kahan, EmptySumIsZero) {
  const KahanSum acc;
  EXPECT_EQ(acc.value(), 0.0);
}

TEST(Kahan, SimpleSum) {
  KahanSum acc;
  acc.add(1.0);
  acc.add(2.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.value(), 6.0);
}

TEST(Kahan, RecoversCancellationNaiveSumLoses) {
  // 1 + 1e-16 repeated: naive summation loses every tiny term.
  KahanSum acc;
  acc.add(1.0);
  double naive = 1.0;
  for (int i = 0; i < 10000; ++i) {
    acc.add(1e-16);
    naive += 1e-16;
  }
  EXPECT_DOUBLE_EQ(naive, 1.0);  // demonstrates the naive failure
  EXPECT_NEAR(acc.value(), 1.0 + 1e-12, 1e-15);
}

TEST(Kahan, NeumaierHandlesLargeLateTerm) {
  // Classic case plain Kahan gets wrong: small terms first, then huge.
  KahanSum acc;
  acc.add(1.0);
  acc.add(1e100);
  acc.add(1.0);
  acc.add(-1e100);
  EXPECT_DOUBLE_EQ(acc.value(), 2.0);
}

TEST(Kahan, NegativeTerms) {
  KahanSum acc;
  for (int i = 0; i < 100; ++i) {
    acc.add(0.1);
    acc.add(-0.1);
  }
  EXPECT_NEAR(acc.value(), 0.0, 1e-18);
}

TEST(Kahan, OperatorPlusEquals) {
  KahanSum acc;
  acc += 2.0;
  acc += 3.0;
  EXPECT_DOUBLE_EQ(acc.value(), 5.0);
}

TEST(Kahan, SpanHelper) {
  const std::vector<double> xs{0.1, 0.2, 0.3, 0.4};
  EXPECT_NEAR(zc::numerics::kahan_sum(xs), 1.0, 1e-15);
}

TEST(Kahan, SpanHelperEmpty) {
  EXPECT_EQ(zc::numerics::kahan_sum(std::vector<double>{}), 0.0);
}

}  // namespace
