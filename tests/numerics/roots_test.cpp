#include "numerics/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using zc::numerics::bisect;
using zc::numerics::brent_root;
using zc::numerics::find_bracket;

TEST(Bisect, LinearRoot) {
  const auto r = bisect([](double x) { return x - 2.0; }, 0.0, 5.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x, 2.0, 1e-10);
}

TEST(Bisect, NoSignChangeReturnsNullopt) {
  EXPECT_FALSE(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0)
                   .has_value());
}

TEST(Bisect, RootAtEndpointDetected) {
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->x, 0.0);
}

TEST(Bisect, DiscontinuousSignChange) {
  // Step function: bisection still localizes the jump.
  const auto r =
      bisect([](double x) { return x < 0.7 ? -1.0 : 1.0; }, 0.0, 1.0, 1e-9);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 0.7, 1e-8);
}

TEST(BrentRoot, CubicRoot) {
  const auto r = brent_root(
      [](double x) { return (x - 1.0) * (x + 4.0) * (x - 9.0); }, 0.0, 3.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->converged);
  EXPECT_NEAR(r->x, 1.0, 1e-10);
}

TEST(BrentRoot, TranscendentalRoot) {
  const auto r =
      brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, 0.7390851332151607, 1e-9);
}

TEST(BrentRoot, NoBracketReturnsNullopt) {
  EXPECT_FALSE(
      brent_root([](double x) { return x * x + 0.5; }, -2.0, 2.0)
          .has_value());
}

TEST(BrentRoot, SteepExponentialRoot) {
  // The kind of function calibration inverts: exp-dominated residuals.
  const auto r = brent_root(
      [](double x) { return std::exp(x) - 1e6; }, 0.0, 30.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, std::log(1e6), 1e-8);
}

TEST(BrentRoot, FewerEvaluationsThanBisection) {
  const auto f = [](double x) { return std::tanh(x - 3.0); };
  const auto brent = brent_root(f, 0.0, 10.0, 1e-12);
  const auto bis = bisect(f, 0.0, 10.0, 1e-12);
  ASSERT_TRUE(brent.has_value());
  ASSERT_TRUE(bis.has_value());
  EXPECT_LT(brent->evaluations, bis->evaluations);
}

TEST(FindBracket, LocatesSignChange) {
  const auto b =
      find_bracket([](double x) { return x - 3.3; }, 0.0, 10.0, 32);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 3.3);
  EXPECT_GE(b->second, 3.3);
}

TEST(FindBracket, NoneWhenFunctionPositive) {
  EXPECT_FALSE(find_bracket([](double) { return 1.0; }, 0.0, 1.0, 16)
                   .has_value());
}

TEST(FindBracket, FeedsBrentRoot) {
  const auto f = [](double x) { return std::log(x) - 1.0; };
  const auto b = find_bracket(f, 0.5, 10.0, 64);
  ASSERT_TRUE(b.has_value());
  const auto r = brent_root(f, b->first, b->second);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, std::exp(1.0), 1e-9);
}

/// Root-position sweep for the bracket + Brent pipeline.
class RootSweep : public ::testing::TestWithParam<double> {};

TEST_P(RootSweep, PipelineFindsArctanRoot) {
  const double root = GetParam();
  const auto f = [root](double x) { return std::atan(x - root); };
  const auto b = find_bracket(f, root - 20.0, root + 13.0, 64);
  ASSERT_TRUE(b.has_value());
  const auto r = brent_root(f, b->first, b->second);
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->x, root, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Roots, RootSweep,
                         ::testing::Values(-11.0, -2.5, 0.0, 0.1, 1.0, 6.5,
                                           17.0));

}  // namespace
