#include "numerics/derivative.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using zc::numerics::central_derivative;
using zc::numerics::richardson_derivative;
using zc::numerics::second_derivative;

TEST(CentralDerivative, Quadratic) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(central_derivative(f, 3.0), 6.0, 1e-7);
}

TEST(CentralDerivative, ExactForAffineFunctions) {
  const auto f = [](double x) { return 2.5 * x - 7.0; };
  EXPECT_NEAR(central_derivative(f, 10.0), 2.5, 1e-9);
}

TEST(CentralDerivative, Exponential) {
  EXPECT_NEAR(central_derivative([](double x) { return std::exp(x); }, 1.0),
              std::exp(1.0), 1e-6);
}

TEST(CentralDerivative, AtZero) {
  EXPECT_NEAR(central_derivative([](double x) { return std::sin(x); }, 0.0),
              1.0, 1e-8);
}

TEST(RichardsonDerivative, MoreAccurateThanCentral) {
  const auto f = [](double x) { return std::sin(std::exp(x)); };
  const double x0 = 1.1;
  const double exact = std::cos(std::exp(x0)) * std::exp(x0);
  const double central_err = std::fabs(central_derivative(f, x0) - exact);
  const double rich_err = std::fabs(richardson_derivative(f, x0) - exact);
  // Both are near the rounding floor here; Richardson must not be
  // meaningfully worse and must hit tight absolute accuracy.
  EXPECT_LT(rich_err, 2.0 * central_err + 1e-10);
  EXPECT_NEAR(richardson_derivative(f, x0), exact, 1e-7);
}

TEST(RichardsonDerivative, SteepExponentialDecay) {
  // The shape of the zeroconf error term q E pi_n(r).
  const auto f = [](double x) { return 1e20 * std::exp(-10.0 * x); };
  const double x0 = 2.0;
  const double exact = -10.0 * 1e20 * std::exp(-20.0);
  EXPECT_NEAR(richardson_derivative(f, x0) / exact, 1.0, 1e-6);
}

TEST(SecondDerivative, Quadratic) {
  EXPECT_NEAR(second_derivative([](double x) { return 3.0 * x * x; }, 5.0),
              6.0, 1e-4);
}

TEST(SecondDerivative, Cosine) {
  EXPECT_NEAR(second_derivative([](double x) { return std::cos(x); }, 0.0),
              -1.0, 1e-5);
}

TEST(SecondDerivative, PositiveAtMinimum) {
  const auto f = [](double x) { return (x - 2.0) * (x - 2.0) + 1.0; };
  EXPECT_GT(second_derivative(f, 2.0), 0.0);
}

/// Derivatives of monomials across evaluation points.
class MonomialSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MonomialSweep, RichardsonMatchesPowerRule) {
  const auto [power, x0] = GetParam();
  const auto f = [power](double x) {
    return std::pow(x, static_cast<double>(power));
  };
  const double exact =
      static_cast<double>(power) * std::pow(x0, static_cast<double>(power - 1));
  EXPECT_NEAR(richardson_derivative(f, x0) / exact, 1.0, 1e-6)
      << "d/dx x^" << power << " at " << x0;
}

INSTANTIATE_TEST_SUITE_P(
    Powers, MonomialSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(0.5, 1.0, 2.0, 10.0)));

}  // namespace
