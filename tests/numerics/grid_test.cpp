#include "numerics/grid.hpp"

#include <gtest/gtest.h>

#include "common/contract.hpp"

namespace {

TEST(Linspace, EndpointsExact) {
  const auto g = zc::numerics::linspace(0.1, 0.9, 7);
  EXPECT_EQ(g.size(), 7u);
  EXPECT_EQ(g.front(), 0.1);
  EXPECT_EQ(g.back(), 0.9);
}

TEST(Linspace, UniformSpacing) {
  const auto g = zc::numerics::linspace(0.0, 1.0, 5);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(g[i], 0.25 * static_cast<double>(i), 1e-15);
}

TEST(Linspace, TwoPoints) {
  const auto g = zc::numerics::linspace(-1.0, 1.0, 2);
  EXPECT_EQ(g, (std::vector<double>{-1.0, 1.0}));
}

TEST(Linspace, DegenerateIntervalAllowed) {
  const auto g = zc::numerics::linspace(2.0, 2.0, 3);
  for (double v : g) EXPECT_EQ(v, 2.0);
}

TEST(Linspace, TooFewPointsRejected) {
  EXPECT_THROW((void)zc::numerics::linspace(0.0, 1.0, 1),
               zc::ContractViolation);
}

TEST(Linspace, ReversedIntervalRejected) {
  EXPECT_THROW((void)zc::numerics::linspace(1.0, 0.0, 4),
               zc::ContractViolation);
}

TEST(Logspace, EndpointsExact) {
  const auto g = zc::numerics::logspace(1e-3, 1e3, 7);
  EXPECT_EQ(g.front(), 1e-3);
  EXPECT_EQ(g.back(), 1e3);
}

TEST(Logspace, GeometricRatios) {
  const auto g = zc::numerics::logspace(1.0, 16.0, 5);
  for (std::size_t i = 1; i < g.size(); ++i)
    EXPECT_NEAR(g[i] / g[i - 1], 2.0, 1e-12);
}

TEST(Logspace, NonPositiveLowerBoundRejected) {
  EXPECT_THROW((void)zc::numerics::logspace(0.0, 1.0, 4),
               zc::ContractViolation);
  EXPECT_THROW((void)zc::numerics::logspace(-1.0, 1.0, 4),
               zc::ContractViolation);
}

TEST(Midpoints, BetweenConsecutiveEntries) {
  const auto mids =
      zc::numerics::midpoints(std::vector<double>{0.0, 1.0, 3.0});
  EXPECT_EQ(mids, (std::vector<double>{0.5, 2.0}));
}

TEST(Midpoints, SinglePairGrid) {
  const auto mids = zc::numerics::midpoints(std::vector<double>{2.0, 4.0});
  EXPECT_EQ(mids, (std::vector<double>{3.0}));
}

TEST(Midpoints, TooShortRejected) {
  EXPECT_THROW((void)zc::numerics::midpoints(std::vector<double>{1.0}),
               zc::ContractViolation);
}

}  // namespace
