#include "numerics/quadrature.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"

namespace {

using zc::numerics::integrate;

TEST(Quadrature, ConstantFunction) {
  const auto r = integrate([](double) { return 2.0; }, 0.0, 3.0);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, 6.0, 1e-12);
}

TEST(Quadrature, CubicIsExactForSimpson) {
  const auto r = integrate([](double x) { return x * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(r.value, 4.0, 1e-12);
  EXPECT_LE(r.evaluations, 10);  // Simpson is exact; no refinement needed
}

TEST(Quadrature, Exponential) {
  const auto r = integrate([](double x) { return std::exp(x); }, 0.0, 1.0);
  EXPECT_NEAR(r.value, std::exp(1.0) - 1.0, 1e-10);
}

TEST(Quadrature, OscillatoryIntegrand) {
  const auto r =
      integrate([](double x) { return std::sin(10.0 * x); }, 0.0, 3.14159);
  EXPECT_NEAR(r.value, (1.0 - std::cos(31.4159)) / 10.0, 1e-8);
}

TEST(Quadrature, EmptyInterval) {
  const auto r = integrate([](double x) { return x; }, 1.0, 1.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.value, 0.0);
}

TEST(Quadrature, ReversedIntervalRejected) {
  EXPECT_THROW((void)integrate([](double x) { return x; }, 1.0, 0.0),
               zc::ContractViolation);
}

TEST(Quadrature, SharpPeakRefinesLocally) {
  // Narrow Gaussian at 0.5: adaptive subdivision must find it.
  const auto f = [](double x) {
    return std::exp(-1000.0 * (x - 0.5) * (x - 0.5));
  };
  const auto r = integrate(f, 0.0, 1.0, 1e-10);
  EXPECT_NEAR(r.value, std::sqrt(3.141592653589793 / 1000.0), 1e-8);
}

TEST(Quadrature, SurvivalFunctionMeanRecovery) {
  // E[X] = int_0^inf S(t) dt for X ~ Exp(rate): truncate far in the tail.
  const double rate = 4.0;
  const auto r = integrate(
      [rate](double t) { return std::exp(-rate * t); }, 0.0, 20.0);
  EXPECT_NEAR(r.value, 1.0 / rate, 1e-9);
}

TEST(Quadrature, DepthLimitReportedAsNotConverged) {
  // Discontinuity forces deep recursion at a tight tolerance.
  const auto f = [](double x) { return x < 0.3333333 ? 0.0 : 1.0; };
  const auto r = integrate(f, 0.0, 1.0, 1e-15, 8);
  EXPECT_FALSE(r.converged);
}

/// Power sweep: integral of x^k on [0, 1] is 1/(k+1).
class PowerIntegrals : public ::testing::TestWithParam<int> {};

TEST_P(PowerIntegrals, MatchesClosedForm) {
  const int k = GetParam();
  const auto r = integrate(
      [k](double x) { return std::pow(x, static_cast<double>(k)); }, 0.0,
      1.0, 1e-11);
  EXPECT_NEAR(r.value, 1.0 / static_cast<double>(k + 1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Powers, PowerIntegrals,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 9, 12));

}  // namespace
