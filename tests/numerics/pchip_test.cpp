#include "numerics/pchip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contract.hpp"
#include "numerics/grid.hpp"

namespace {

using zc::numerics::MonotoneCubic;

TEST(Pchip, InterpolatesKnotsExactly) {
  const MonotoneCubic f({0.0, 1.0, 2.5, 4.0}, {1.0, 3.0, 3.5, 7.0});
  EXPECT_DOUBLE_EQ(f(0.0), 1.0);
  EXPECT_DOUBLE_EQ(f(1.0), 3.0);
  EXPECT_DOUBLE_EQ(f(2.5), 3.5);
  EXPECT_DOUBLE_EQ(f(4.0), 7.0);
}

TEST(Pchip, TwoPointsIsLinear) {
  const MonotoneCubic f({0.0, 2.0}, {1.0, 5.0});
  for (double x = 0.0; x <= 2.0; x += 0.25)
    EXPECT_NEAR(f(x), 1.0 + 2.0 * x, 1e-12);
}

TEST(Pchip, PreservesMonotonicityOfIncreasingData) {
  // Data with an abrupt step — classic case where a natural cubic spline
  // overshoots but PCHIP must not.
  const MonotoneCubic f({0.0, 1.0, 2.0, 3.0, 4.0},
                        {0.0, 0.01, 0.02, 0.98, 1.0});
  double prev = -1.0;
  for (double x = 0.0; x <= 4.0; x += 0.01) {
    const double y = f(x);
    EXPECT_GE(y, prev - 1e-12) << "x=" << x;
    EXPECT_GE(y, 0.0 - 1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
    prev = y;
  }
}

TEST(Pchip, NoOvershootBeyondDataRange) {
  const MonotoneCubic f({0.0, 1.0, 1.1, 2.0}, {0.0, 0.0, 1.0, 1.0});
  for (double x = 0.0; x <= 2.0; x += 0.005) {
    EXPECT_GE(f(x), -1e-12);
    EXPECT_LE(f(x), 1.0 + 1e-12);
  }
}

TEST(Pchip, ClampsOutsideRange) {
  const MonotoneCubic f({1.0, 2.0}, {10.0, 20.0});
  EXPECT_EQ(f(0.0), 10.0);
  EXPECT_EQ(f(3.0), 20.0);
}

TEST(Pchip, DerivativeNonNegativeForMonotoneData) {
  const MonotoneCubic f({0.0, 0.5, 1.5, 3.0}, {0.0, 0.4, 0.5, 1.0});
  for (double x = 0.0; x <= 3.0; x += 0.01)
    EXPECT_GE(f.derivative(x), -1e-12) << "x=" << x;
}

TEST(Pchip, DerivativeMatchesFiniteDifference) {
  const MonotoneCubic f({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 1.5, 3.0});
  for (double x : {0.25, 0.75, 1.5, 2.4}) {
    const double h = 1e-6;
    const double fd = (f(x + h) - f(x - h)) / (2.0 * h);
    EXPECT_NEAR(f.derivative(x), fd, 1e-6) << "x=" << x;
  }
}

TEST(Pchip, DerivativeZeroOutsideRange) {
  const MonotoneCubic f({0.0, 1.0}, {0.0, 1.0});
  EXPECT_EQ(f.derivative(-0.5), 0.0);
  EXPECT_EQ(f.derivative(1.5), 0.0);
}

TEST(Pchip, FlatSegmentsStayFlat) {
  const MonotoneCubic f({0.0, 1.0, 2.0}, {0.5, 0.5, 1.0});
  for (double x = 0.0; x <= 1.0; x += 0.1)
    EXPECT_NEAR(f(x), 0.5, 1e-12) << "x=" << x;
}

TEST(Pchip, LocalExtremumInDataGetsZeroTangent) {
  // Non-monotone data: no overshoot past the peak value.
  const MonotoneCubic f({0.0, 1.0, 2.0}, {0.0, 1.0, 0.0});
  for (double x = 0.0; x <= 2.0; x += 0.01) EXPECT_LE(f(x), 1.0 + 1e-12);
  EXPECT_DOUBLE_EQ(f(1.0), 1.0);
}

TEST(Pchip, ApproximatesSmoothFunctionsWell) {
  const auto knots_x = zc::numerics::linspace(0.0, 3.14159, 24);
  std::vector<double> knots_y;
  for (const double x : knots_x) knots_y.push_back(std::sin(x / 2.0));
  const MonotoneCubic f(knots_x, knots_y);
  for (double x = 0.0; x <= 3.14; x += 0.05)
    EXPECT_NEAR(f(x), std::sin(x / 2.0), 5e-4) << "x=" << x;
}

TEST(Pchip, ValidationRejectsBadKnots) {
  EXPECT_THROW(MonotoneCubic({1.0}, {1.0}), zc::ContractViolation);
  EXPECT_THROW(MonotoneCubic({0.0, 0.0}, {1.0, 2.0}),
               zc::ContractViolation);  // not strictly increasing
  EXPECT_THROW(MonotoneCubic({0.0, 1.0}, {1.0}), zc::ContractViolation);
}

}  // namespace
