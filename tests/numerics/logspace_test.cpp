#include "numerics/logspace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using zc::numerics::kLogZero;

TEST(LogAddExp, MatchesDirectComputation) {
  const double a = std::log(0.3), b = std::log(0.4);
  EXPECT_NEAR(zc::numerics::log_add_exp(a, b), std::log(0.7), 1e-14);
}

TEST(LogAddExp, HandlesLogZeroIdentity) {
  EXPECT_EQ(zc::numerics::log_add_exp(kLogZero, 1.5), 1.5);
  EXPECT_EQ(zc::numerics::log_add_exp(1.5, kLogZero), 1.5);
  EXPECT_EQ(zc::numerics::log_add_exp(kLogZero, kLogZero), kLogZero);
}

TEST(LogAddExp, NoOverflowForHugeInputs) {
  const double v = zc::numerics::log_add_exp(1000.0, 1000.0);
  EXPECT_NEAR(v, 1000.0 + std::log(2.0), 1e-12);
}

TEST(LogAddExp, NoUnderflowForTinyInputs) {
  const double v = zc::numerics::log_add_exp(-1000.0, -1000.0);
  EXPECT_NEAR(v, -1000.0 + std::log(2.0), 1e-12);
}

TEST(LogAddExp, AsymmetricMagnitudes) {
  // exp(-1000) is negligible against exp(0).
  EXPECT_NEAR(zc::numerics::log_add_exp(0.0, -1000.0), 0.0, 1e-15);
}

TEST(LogSumExp, MatchesDirectSum) {
  const std::vector<double> xs{std::log(0.1), std::log(0.2), std::log(0.3)};
  EXPECT_NEAR(zc::numerics::log_sum_exp(xs), std::log(0.6), 1e-14);
}

TEST(LogSumExp, EmptyIsLogZero) {
  EXPECT_EQ(zc::numerics::log_sum_exp(std::vector<double>{}), kLogZero);
}

TEST(LogSumExp, AllLogZero) {
  const std::vector<double> xs{kLogZero, kLogZero};
  EXPECT_EQ(zc::numerics::log_sum_exp(xs), kLogZero);
}

TEST(LogSumExp, ExtremeScaleSpread) {
  // exp(800) + exp(-800): the large term dominates without overflow.
  const std::vector<double> xs{800.0, -800.0};
  EXPECT_NEAR(zc::numerics::log_sum_exp(xs), 800.0, 1e-12);
}

TEST(Log1mExp, AccurateNearZeroArgument) {
  // x = -1e-10: 1 - e^x ~ 1e-10; naive log(1-exp(x)) would lose digits.
  const double v = zc::numerics::log1m_exp(-1e-10);
  EXPECT_NEAR(v, std::log(1e-10), 1e-6);
}

TEST(Log1mExp, AccurateForLargeNegatives) {
  // 1 - e^{-50} ~ 1, log ~ -e^{-50}.
  EXPECT_NEAR(zc::numerics::log1m_exp(-50.0), -std::exp(-50.0), 1e-30);
}

TEST(Log1mExp, SwitchoverPointContinuity) {
  constexpr double kLn2 = 0.6931471805599453;
  const double below = zc::numerics::log1m_exp(-kLn2 - 1e-9);
  const double above = zc::numerics::log1m_exp(-kLn2 + 1e-9);
  EXPECT_NEAR(below, above, 1e-8);
}

TEST(Log1mExp, NonNegativeArgumentGivesLogZero) {
  EXPECT_EQ(zc::numerics::log1m_exp(0.0), kLogZero);
}

TEST(Log1pExp, MatchesDirectForModerate) {
  EXPECT_NEAR(zc::numerics::log1p_exp(1.0), std::log1p(std::exp(1.0)),
              1e-14);
}

TEST(Log1pExp, LargePositiveIsNearlyIdentity) {
  EXPECT_NEAR(zc::numerics::log1p_exp(800.0), 800.0, 1e-12);
}

TEST(Log1pExp, LargeNegativeIsNearlyExp) {
  EXPECT_NEAR(zc::numerics::log1p_exp(-40.0), std::exp(-40.0), 1e-25);
}

}  // namespace
