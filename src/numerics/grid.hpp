#pragma once

/// \file grid.hpp
/// 1-D sampling grids used by the plotting benches and the coarse phase of
/// the optimizers.

#include <vector>

namespace zc::numerics {

/// `count` points evenly spaced over [lo, hi] inclusive; count >= 2.
[[nodiscard]] std::vector<double> linspace(double lo, double hi,
                                           std::size_t count);

/// `count` points geometrically spaced over [lo, hi] inclusive;
/// requires 0 < lo < hi, count >= 2.
[[nodiscard]] std::vector<double> logspace(double lo, double hi,
                                           std::size_t count);

/// Midpoints of consecutive grid entries (size = grid.size() - 1).
[[nodiscard]] std::vector<double> midpoints(const std::vector<double>& grid);

}  // namespace zc::numerics
