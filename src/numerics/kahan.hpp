#pragma once

/// \file kahan.hpp
/// Compensated (Kahan-Neumaier) summation for accurately accumulating
/// long series of floating-point terms of mixed magnitude.

#include <cmath>
#include <cstddef>
#include <span>

namespace zc::numerics {

/// Running compensated sum (Neumaier's variant, robust when the next term
/// is larger than the running sum).
class KahanSum {
 public:
  void add(double value) noexcept {
    const double t = sum_ + value;
    if (std::abs(sum_) >= std::abs(value)) {
      compensation_ += (sum_ - t) + value;
    } else {
      compensation_ += (value - t) + sum_;
    }
    sum_ = t;
  }

  KahanSum& operator+=(double value) noexcept {
    add(value);
    return *this;
  }

  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Compensated sum of a range.
[[nodiscard]] inline double kahan_sum(std::span<const double> values) noexcept {
  KahanSum acc;
  for (double v : values) acc.add(v);
  return acc.value();
}

}  // namespace zc::numerics
