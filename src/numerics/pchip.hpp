#pragma once

/// \file pchip.hpp
/// Monotone piecewise-cubic Hermite interpolation (Fritsch-Carlson /
/// PCHIP). Used to turn step-function ECDFs into smooth, monotone,
/// differentiable distribution functions without committing to a
/// parametric family.

#include <vector>

namespace zc::numerics {

/// Shape-preserving cubic interpolant through (x_i, y_i).
class MonotoneCubic {
 public:
  /// \param xs strictly increasing knots (>= 2)
  /// \param ys values; where the data is locally monotone the interpolant
  ///           is monotone too (Fritsch-Carlson tangent limiting).
  MonotoneCubic(std::vector<double> xs, std::vector<double> ys);

  /// Evaluate; clamps to the boundary values outside [xs.front(),
  /// xs.back()].
  [[nodiscard]] double operator()(double x) const;

  /// First derivative; 0 outside the knot range.
  [[nodiscard]] double derivative(double x) const;

  [[nodiscard]] double x_min() const { return xs_.front(); }
  [[nodiscard]] double x_max() const { return xs_.back(); }
  /// Number of knots.
  [[nodiscard]] std::size_t size() const { return xs_.size(); }

 private:
  /// Index of the interval [xs_[i], xs_[i+1]] containing x (x inside
  /// range).
  [[nodiscard]] std::size_t interval(double x) const;

  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<double> tangents_;
};

}  // namespace zc::numerics
