#pragma once

/// \file roots.hpp
/// 1-D root finding: bisection, Brent's method, and Newton with a
/// numerical-derivative fallback. Used by the calibration module to invert
/// the optimality conditions of Section 4.5.

#include <functional>
#include <optional>

namespace zc::numerics {

/// Result of a root search.
struct RootResult {
  double x = 0.0;
  double residual = 0.0;  ///< f(x) at the returned point
  int evaluations = 0;
  bool converged = false;
};

using RootFn = std::function<double(double)>;

/// Bisection on [lo, hi]; requires f(lo) and f(hi) of opposite sign
/// (returns nullopt otherwise).
[[nodiscard]] std::optional<RootResult> bisect(const RootFn& f, double lo,
                                               double hi, double x_tol = 1e-12,
                                               int max_iter = 200);

/// Brent's root-finding method (inverse quadratic + secant + bisection)
/// on a sign-changing bracket [lo, hi]; returns nullopt without a bracket.
[[nodiscard]] std::optional<RootResult> brent_root(const RootFn& f, double lo,
                                                   double hi,
                                                   double x_tol = 1e-13,
                                                   int max_iter = 200);

/// Expand/search for a sign-changing bracket for f starting from [lo, hi]
/// by scanning `scan_points` samples; returns the first bracketing pair.
[[nodiscard]] std::optional<std::pair<double, double>> find_bracket(
    const RootFn& f, double lo, double hi, std::size_t scan_points = 128);

}  // namespace zc::numerics
