#include "numerics/minimize.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "numerics/grid.hpp"

namespace zc::numerics {

namespace {
constexpr double kGolden = 0.6180339887498949;  // (sqrt(5)-1)/2
}

MinResult golden_section_minimize(const Fn1D& f, double lo, double hi,
                                  double x_tol, int max_iter) {
  ZC_EXPECTS(lo < hi);
  ZC_EXPECTS(x_tol > 0.0);

  double a = lo, b = hi;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = f(x1), f2 = f(x2);
  int evals = 2;
  int iter = 0;
  while (b - a > x_tol && iter < max_iter) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = f(x2);
    }
    ++evals;
    ++iter;
  }
  MinResult out;
  out.converged = (b - a) <= x_tol;
  out.evaluations = evals;
  if (f1 <= f2) {
    out.x = x1;
    out.value = f1;
  } else {
    out.x = x2;
    out.value = f2;
  }
  return out;
}

MinResult brent_minimize(const Fn1D& f, double lo, double hi, double x_tol,
                         int max_iter) {
  ZC_EXPECTS(lo < hi);
  ZC_EXPECTS(x_tol > 0.0);

  // Standard Brent minimization (Numerical Recipes structure).
  const double eps_rel = 1e-12;
  double a = lo, b = hi;
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x);
  double fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  int evals = 1;

  for (int iter = 0; iter < max_iter; ++iter) {
    const double xm = 0.5 * (a + b);
    const double tol1 = eps_rel * std::fabs(x) + 0.25 * x_tol;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) {
      return {x, fx, evals, true};
    }
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic fit through (v,fv), (w,fw), (x,fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2)
          d = (xm - x >= 0.0) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = (1.0 - kGolden) * e;
    }
    const double u =
        (std::fabs(d) >= tol1) ? x + d : x + ((d >= 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    ++evals;
    if (fu <= fx) {
      if (u >= x)
        a = x;
      else
        b = x;
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x)
        a = u;
      else
        b = u;
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  return {x, fx, evals, false};
}

MinResult refine_scanned_minimize(const Fn1D& f,
                                  const std::vector<double>& xs,
                                  const std::vector<double>& values,
                                  double x_tol) {
  ZC_EXPECTS(xs.size() >= 3);
  ZC_EXPECTS(xs.size() == values.size());

  std::size_t best = 0;
  double best_val = values[0];
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] < best_val) {
      best_val = values[i];
      best = i;
    }
  }
  const int evals = static_cast<int>(xs.size());
  const double bl = (best == 0) ? xs[0] : xs[best - 1];
  const double bh = (best + 1 == xs.size()) ? xs.back() : xs[best + 1];
  if (bl == bh) return {xs[best], best_val, evals, true};
  MinResult refined = brent_minimize(f, bl, bh, x_tol);
  refined.evaluations += evals;
  // Keep the grid winner if refinement somehow did worse (flat regions).
  if (best_val < refined.value) {
    refined.x = xs[best];
    refined.value = best_val;
  }
  return refined;
}

MinResult scan_then_refine_minimize(const Fn1D& f, double lo, double hi,
                                    std::size_t grid_points, double x_tol) {
  ZC_EXPECTS(lo < hi);
  ZC_EXPECTS(grid_points >= 3);

  const auto xs = linspace(lo, hi, grid_points);
  std::vector<double> values(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) values[i] = f(xs[i]);
  return refine_scanned_minimize(f, xs, values, x_tol);
}

}  // namespace zc::numerics
