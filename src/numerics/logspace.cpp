#include "numerics/logspace.hpp"

#include <algorithm>

#include "numerics/kahan.hpp"

namespace zc::numerics {

double log_add_exp(double a, double b) noexcept {
  if (a == kLogZero) return b;
  if (b == kLogZero) return a;
  const double hi = std::max(a, b);
  const double lo = std::min(a, b);
  return hi + std::log1p(std::exp(lo - hi));
}

double log_sum_exp(std::span<const double> xs) noexcept {
  double hi = kLogZero;
  for (double x : xs) hi = std::max(hi, x);
  if (hi == kLogZero) return kLogZero;
  KahanSum acc;
  for (double x : xs) acc.add(std::exp(x - hi));
  return hi + std::log(acc.value());
}

double log1m_exp(double x) noexcept {
  // For x in (-ln 2, 0]: log(-expm1(x)) is accurate; below: log1p(-exp(x)).
  if (x >= 0.0) return kLogZero;  // 1 - exp(x) <= 0: treat as log(0)
  constexpr double kLn2 = 0.6931471805599453;
  if (x > -kLn2) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double log1p_exp(double x) noexcept {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

}  // namespace zc::numerics
