#pragma once

/// \file derivative.hpp
/// Finite-difference derivatives with Richardson extrapolation; used for
/// stationarity conditions (C_n'(r) = 0) and local sensitivity analysis.

#include <functional>

namespace zc::numerics {

/// Central-difference first derivative with a step proportional to |x|.
[[nodiscard]] double central_derivative(const std::function<double(double)>& f,
                                        double x, double rel_step = 1e-6);

/// Richardson-extrapolated central difference (two step sizes); roughly two
/// extra digits over a single central difference.
[[nodiscard]] double richardson_derivative(
    const std::function<double(double)>& f, double x, double rel_step = 1e-5);

/// Central second derivative.
[[nodiscard]] double second_derivative(const std::function<double(double)>& f,
                                       double x, double rel_step = 1e-4);

}  // namespace zc::numerics
