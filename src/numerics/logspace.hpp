#pragma once

/// \file logspace.hpp
/// Log-domain arithmetic helpers. The zeroconf model multiplies survival
/// probabilities down to ~1e-120 and weighs them against error costs up to
/// 1e35; the log-domain path keeps intermediate quantities well-scaled and
/// serves as an independent cross-check of the direct computation.

#include <cmath>
#include <limits>
#include <span>

namespace zc::numerics {

/// Representation of -inf used for log(0).
inline constexpr double kLogZero = -std::numeric_limits<double>::infinity();

/// log(exp(a) + exp(b)) without overflow/underflow.
[[nodiscard]] double log_add_exp(double a, double b) noexcept;

/// log(sum_i exp(x_i)) without overflow/underflow.
[[nodiscard]] double log_sum_exp(std::span<const double> xs) noexcept;

/// log(1 - exp(x)) for x <= 0, accurate near both ends
/// (Maechler's `log1mexp`).
[[nodiscard]] double log1m_exp(double x) noexcept;

/// log(1 + exp(x)) accurate for all x (`log1pexp`).
[[nodiscard]] double log1p_exp(double x) noexcept;

}  // namespace zc::numerics
