#include "numerics/roots.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "numerics/grid.hpp"

namespace zc::numerics {

std::optional<RootResult> bisect(const RootFn& f, double lo, double hi,
                                 double x_tol, int max_iter) {
  ZC_EXPECTS(lo < hi);
  double flo = f(lo), fhi = f(hi);
  int evals = 2;
  if (flo == 0.0) return RootResult{lo, 0.0, evals, true};
  if (fhi == 0.0) return RootResult{hi, 0.0, evals, true};
  if (std::signbit(flo) == std::signbit(fhi)) return std::nullopt;

  for (int i = 0; i < max_iter && hi - lo > x_tol; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    ++evals;
    if (fm == 0.0) return RootResult{mid, 0.0, evals, true};
    if (std::signbit(fm) == std::signbit(flo)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
      fhi = fm;
    }
  }
  const double x = 0.5 * (lo + hi);
  return RootResult{x, f(x), evals + 1, hi - lo <= x_tol};
}

std::optional<RootResult> brent_root(const RootFn& f, double lo, double hi,
                                     double x_tol, int max_iter) {
  ZC_EXPECTS(lo < hi);
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  int evals = 2;
  if (fa == 0.0) return RootResult{a, 0.0, evals, true};
  if (fb == 0.0) return RootResult{b, 0.0, evals, true};
  if (std::signbit(fa) == std::signbit(fb)) return std::nullopt;

  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool mflag = true;
  double d = 0.0;

  for (int i = 0; i < max_iter; ++i) {
    if (fb == 0.0 || std::fabs(b - a) < x_tol)
      return RootResult{b, fb, evals, true};

    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double lo_bound = (3.0 * a + b) / 4.0;
    const bool out_of_range =
        (s < std::min(lo_bound, b)) || (s > std::max(lo_bound, b));
    const bool slow =
        (mflag && std::fabs(s - b) >= std::fabs(b - c) / 2.0) ||
        (!mflag && std::fabs(s - b) >= std::fabs(c - d) / 2.0) ||
        (mflag && std::fabs(b - c) < x_tol) ||
        (!mflag && std::fabs(c - d) < x_tol);
    if (out_of_range || slow) {
      s = 0.5 * (a + b);
      mflag = true;
    } else {
      mflag = false;
    }

    const double fs = f(s);
    ++evals;
    d = c;
    c = b;
    fc = fb;
    if (std::signbit(fa) != std::signbit(fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return RootResult{b, fb, evals, false};
}

std::optional<std::pair<double, double>> find_bracket(const RootFn& f,
                                                      double lo, double hi,
                                                      std::size_t scan_points) {
  ZC_EXPECTS(lo < hi);
  ZC_EXPECTS(scan_points >= 2);
  const auto xs = linspace(lo, hi, scan_points);
  double prev_x = xs[0];
  double prev_f = f(prev_x);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double fx = f(xs[i]);
    if (prev_f == 0.0) return std::pair{prev_x, prev_x};
    if (std::signbit(prev_f) != std::signbit(fx))
      return std::pair{prev_x, xs[i]};
    prev_x = xs[i];
    prev_f = fx;
  }
  return std::nullopt;
}

}  // namespace zc::numerics
