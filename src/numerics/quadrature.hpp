#pragma once

/// \file quadrature.hpp
/// Adaptive Simpson quadrature. Used to compute means of general delay
/// distributions and to validate the two-leg composite reply-path model by
/// numeric convolution.

#include <functional>

namespace zc::numerics {

/// Result of an adaptive quadrature.
struct QuadResult {
  double value = 0.0;
  double error_estimate = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance
/// `tol`. Depth-limited; `converged` is false if the limit was hit.
[[nodiscard]] QuadResult integrate(const std::function<double(double)>& f,
                                   double a, double b, double tol = 1e-10,
                                   int max_depth = 48);

}  // namespace zc::numerics
