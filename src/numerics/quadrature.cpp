#include "numerics/quadrature.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace zc::numerics {

namespace {

struct SimpsonState {
  const std::function<double(double)>& f;
  int evaluations = 0;
  bool depth_exceeded = false;
};

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(SimpsonState& st, double a, double b, double fa, double fm,
                double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = st.f(lm);
  const double frm = st.f(rm);
  st.evaluations += 2;
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth <= 0) {
    st.depth_exceeded = true;
    return left + right + delta / 15.0;
  }
  if (std::fabs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptive(st, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1) +
         adaptive(st, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1);
}

}  // namespace

QuadResult integrate(const std::function<double(double)>& f, double a,
                     double b, double tol, int max_depth) {
  ZC_EXPECTS(a <= b);
  ZC_EXPECTS(tol > 0.0);
  if (a == b) return {0.0, 0.0, 0, true};

  SimpsonState st{f};
  const double m = 0.5 * (a + b);
  const double fa = f(a), fm = f(m), fb = f(b);
  st.evaluations = 3;
  const double whole = simpson(fa, fm, fb, a, b);
  const double value = adaptive(st, a, b, fa, fm, fb, whole, tol, max_depth);
  QuadResult out;
  out.value = value;
  out.error_estimate = tol;
  out.evaluations = st.evaluations;
  out.converged = !st.depth_exceeded;
  return out;
}

}  // namespace zc::numerics
