#include "numerics/grid.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace zc::numerics {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  ZC_EXPECTS(count >= 2);
  ZC_EXPECTS(lo <= hi);
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = lo + static_cast<double>(i) * step;
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  ZC_EXPECTS(count >= 2);
  ZC_EXPECTS(0.0 < lo && lo < hi);
  std::vector<double> out(count);
  const double log_lo = std::log(lo);
  const double step = (std::log(hi) - log_lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = std::exp(log_lo + static_cast<double>(i) * step);
  out.front() = lo;  // exp(log(lo)) need not round-trip exactly
  out.back() = hi;
  return out;
}

std::vector<double> midpoints(const std::vector<double>& grid) {
  ZC_EXPECTS(grid.size() >= 2);
  std::vector<double> out(grid.size() - 1);
  for (std::size_t i = 0; i + 1 < grid.size(); ++i)
    out[i] = 0.5 * (grid[i] + grid[i + 1]);
  return out;
}

}  // namespace zc::numerics
