#pragma once

/// \file minimize.hpp
/// 1-D minimization: golden-section search, Brent's parabolic-interpolation
/// method, and a robust grid-scan + refine driver for functions (like the
/// zeroconf cost C_n(r)) that are unimodal only on part of their domain.

#include <functional>
#include <vector>

namespace zc::numerics {

/// Result of a 1-D minimization.
struct MinResult {
  double x = 0.0;        ///< argmin
  double value = 0.0;    ///< f(argmin)
  int evaluations = 0;   ///< number of function evaluations spent
  bool converged = false;
};

using Fn1D = std::function<double(double)>;

/// Golden-section search on [lo, hi]; assumes f is unimodal there.
/// Stops when the bracket is below `x_tol` (absolute).
[[nodiscard]] MinResult golden_section_minimize(const Fn1D& f, double lo,
                                                double hi,
                                                double x_tol = 1e-10,
                                                int max_iter = 200);

/// Brent's method on [lo, hi]; assumes f is unimodal there. Combines
/// golden-section with successive parabolic interpolation.
[[nodiscard]] MinResult brent_minimize(const Fn1D& f, double lo, double hi,
                                       double x_tol = 1e-10,
                                       int max_iter = 200);

/// Robust driver for possibly multi-modal f: scan `grid_points` samples of
/// [lo, hi], bracket the best sample, then refine with Brent. Returns the
/// best local minimum found.
[[nodiscard]] MinResult scan_then_refine_minimize(const Fn1D& f, double lo,
                                                  double hi,
                                                  std::size_t grid_points = 256,
                                                  double x_tol = 1e-10);

/// The refine half of scan_then_refine_minimize for callers that already
/// hold the scan: `values[i]` must equal f(xs[i]). Picks the best sample
/// (first on ties), brackets it with its neighbours, refines with Brent.
/// scan_then_refine_minimize(f, ...) == refine_scanned_minimize(f, xs,
/// serially-computed values, x_tol) — which is what makes a *parallel*
/// scan drop-in safe: the values are the same doubles either way.
[[nodiscard]] MinResult refine_scanned_minimize(
    const Fn1D& f, const std::vector<double>& xs,
    const std::vector<double>& values, double x_tol = 1e-10);

}  // namespace zc::numerics
