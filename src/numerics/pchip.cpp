#include "numerics/pchip.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace zc::numerics {

MonotoneCubic::MonotoneCubic(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  ZC_EXPECTS(xs_.size() >= 2);
  ZC_EXPECTS(xs_.size() == ys_.size());
  for (std::size_t i = 1; i < xs_.size(); ++i)
    ZC_EXPECTS(xs_[i] > xs_[i - 1]);

  const std::size_t n = xs_.size();
  // Secant slopes.
  std::vector<double> delta(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    delta[i] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);

  // Initial tangents: three-point weighted averages; one-sided at ends.
  tangents_.assign(n, 0.0);
  tangents_[0] = delta[0];
  tangents_[n - 1] = delta[n - 2];
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (delta[i - 1] * delta[i] <= 0.0) {
      tangents_[i] = 0.0;  // local extremum in the data
    } else {
      // Weighted harmonic mean (Fritsch-Butland variant): guarantees the
      // monotonicity region without a separate limiting pass.
      const double h0 = xs_[i] - xs_[i - 1];
      const double h1 = xs_[i + 1] - xs_[i];
      const double w0 = 2.0 * h1 + h0;
      const double w1 = h1 + 2.0 * h0;
      tangents_[i] =
          (w0 + w1) / (w0 / delta[i - 1] + w1 / delta[i]);
    }
  }
  // Fritsch-Carlson limiting at the boundary tangents (interior ones are
  // safe by construction of the harmonic mean).
  for (const std::size_t i : {std::size_t{0}, n - 1}) {
    const double d = (i == 0) ? delta[0] : delta[n - 2];
    if (d == 0.0) {
      tangents_[i] = 0.0;
    } else {
      const double ratio = tangents_[i] / d;
      if (ratio < 0.0)
        tangents_[i] = 0.0;
      else if (ratio > 3.0)
        tangents_[i] = 3.0 * d;
    }
  }
}

std::size_t MonotoneCubic::interval(double x) const {
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const auto idx = static_cast<std::size_t>(it - xs_.begin());
  if (idx == 0) return 0;
  return std::min(idx - 1, xs_.size() - 2);
}

double MonotoneCubic::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = interval(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t, t3 = t2 * t;
  const double h00 = 2 * t3 - 3 * t2 + 1;
  const double h10 = t3 - 2 * t2 + t;
  const double h01 = -2 * t3 + 3 * t2;
  const double h11 = t3 - t2;
  return h00 * ys_[i] + h10 * h * tangents_[i] + h01 * ys_[i + 1] +
         h11 * h * tangents_[i + 1];
}

double MonotoneCubic::derivative(double x) const {
  if (x < xs_.front() || x > xs_.back()) return 0.0;
  const std::size_t i = interval(x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double dh00 = (6 * t2 - 6 * t) / h;
  const double dh10 = 3 * t2 - 4 * t + 1;
  const double dh01 = (-6 * t2 + 6 * t) / h;
  const double dh11 = 3 * t2 - 2 * t;
  return dh00 * ys_[i] + dh10 * tangents_[i] + dh01 * ys_[i + 1] +
         dh11 * tangents_[i + 1];
}

}  // namespace zc::numerics
