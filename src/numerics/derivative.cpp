#include "numerics/derivative.hpp"

#include <cmath>

namespace zc::numerics {

namespace {
double step_for(double x, double rel_step) {
  const double scale = std::max(std::fabs(x), 1.0);
  // Snap the step so that x+h and x-h are exactly representable around x,
  // removing one source of cancellation error.
  volatile double h = rel_step * scale;
  const volatile double xph = x + h;
  return xph - x;
}
}  // namespace

double central_derivative(const std::function<double(double)>& f, double x,
                          double rel_step) {
  const double h = step_for(x, rel_step);
  return (f(x + h) - f(x - h)) / (2.0 * h);
}

double richardson_derivative(const std::function<double(double)>& f, double x,
                             double rel_step) {
  const double h = step_for(x, rel_step);
  const double d_h = (f(x + h) - f(x - h)) / (2.0 * h);
  const double d_h2 = (f(x + h / 2.0) - f(x - h / 2.0)) / h;
  return (4.0 * d_h2 - d_h) / 3.0;
}

double second_derivative(const std::function<double(double)>& f, double x,
                         double rel_step) {
  const double h = step_for(x, rel_step);
  return (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
}

}  // namespace zc::numerics
