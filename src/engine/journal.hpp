#pragma once

/// \file journal.hpp
/// Write-ahead campaign journal: crash-safe checkpointing of
/// `CampaignRunner` batches. The journal is a JSONL file — one header
/// line binding the file to a spec-list digest, then one compact record
/// per *completed* campaign chunk (one chunk == one spec), appended and
/// fsync'd as the chunk finishes. A killed campaign therefore loses at
/// most the chunks that were still in flight; `CampaignRunner::resume`
/// replays the journaled results and re-executes only the missing specs,
/// reproducing the uninterrupted campaign byte-for-byte (see DESIGN.md
/// §"Crash-safe campaign execution").
///
/// File format (schema `zcopt-campaign-journal` v1):
///
///   {"schema":"zcopt-campaign-journal","version":1,"digest":H,"specs":N}
///   {"chunk":i,"name":S,"result":{...},"metrics":{...}}
///   ...
///
/// Every line is one `obs::JsonValue` in compact form. `result` is
/// `ExperimentResult::to_json()` verbatim; `metrics` is
/// `obs::metrics_to_json` of the spec's metric set. A torn *final* line
/// (the crash interrupted an append) is dropped on read; any other
/// malformed content is corruption and rejected.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/spec.hpp"
#include "obs/json.hpp"

namespace zc::engine {

/// FNV-1a 64 digest (16 hex digits) of everything about a spec list that
/// determines campaign bytes: names, modes, estimators, scenario numbers
/// (hexfloat, bit-exact), the reply-delay distribution's fingerprint
/// *and* its sharing structure (which specs reuse the same distribution
/// object — cache hit/miss totals depend on it), grids, optimizer /
/// calibration options, simulation knobs, and fault schedules. A journal
/// whose digest does not match the spec list being resumed is stale and
/// rejected.
[[nodiscard]] std::string spec_list_digest(
    const std::vector<ExperimentSpec>& specs);

/// One completed chunk as a journal line (without the trailing newline).
[[nodiscard]] obs::JsonValue journal_record(std::size_t chunk,
                                            const ExperimentResult& result);

/// Rebuild an ExperimentResult from a journal record. Throws
/// zc::ContractViolation on schema violations. Round-trip contract:
/// re-serializing the returned result reproduces the record's `result`
/// and `metrics` payloads byte-for-byte.
[[nodiscard]] ExperimentResult result_from_journal(const obs::JsonValue& record);

/// Everything a journal file held.
struct JournalContents {
  std::string digest;      ///< spec-list digest from the header
  std::size_t specs = 0;   ///< spec count from the header
  /// Completed chunks in ascending chunk order.
  std::map<std::size_t, ExperimentResult> completed;
  std::uint64_t valid_bytes = 0;    ///< length of the well-formed prefix
  std::uint64_t dropped_bytes = 0;  ///< torn tail discarded (0 = clean)
};

/// Parse a journal file. Throws zc::ContractViolation when the file is
/// missing, has a malformed header, or contains a corrupt non-final
/// record; a torn final line is tolerated (that is the expected state
/// after a crash mid-append) and reported via `dropped_bytes`.
[[nodiscard]] JournalContents read_journal(const std::string& path);

/// Append-only journal emitter over a POSIX fd; every append is one
/// write + fsync, serialized by an internal mutex so estimator worker
/// threads can checkpoint concurrently. I/O errors latch `ok() == false`
/// and turn later appends into no-ops — a failing disk degrades
/// crash-safety, never the campaign itself.
class JournalWriter {
 public:
  /// Create/truncate `path` and write + fsync the header.
  [[nodiscard]] static JournalWriter create(
      const std::string& path, const std::vector<ExperimentSpec>& specs);

  /// Reopen an existing journal for resumption: truncate to
  /// `valid_bytes` (dropping a torn tail) and position at the end.
  [[nodiscard]] static JournalWriter reopen(const std::string& path,
                                            std::uint64_t valid_bytes);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Durably record one completed chunk (thread-safe; no-op after an
  /// I/O error).
  void append(std::size_t chunk, const ExperimentResult& result);

  /// False once any write/fsync failed; the campaign keeps running but
  /// the journal is no longer trustworthy past the last good record.
  [[nodiscard]] bool ok() const noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  JournalWriter() = default;

  void write_line(const std::string& line);
  void close() noexcept;

  std::string path_;
  int fd_ = -1;
  bool ok_ = false;
  mutable std::mutex mutex_;
};

}  // namespace zc::engine
