#pragma once

/// \file spec.hpp
/// Declarative experiment descriptions. An `ExperimentSpec` names one
/// run of the paper's evaluation machinery — a scenario, what to do with
/// it (evaluate a protocol grid / find the joint optimum / calibrate
/// (E, c)), which estimator produces the numbers (closed forms, the
/// discrete reward model, or protocol-faithful Monte-Carlo simulation),
/// and the network/fault configuration when simulation is involved.
///
/// The spec is the single seam between "what experiment" and "how it is
/// executed": the CLI, the examples, and the benches all build specs (via
/// `SpecBuilder`) and hand them to `engine::CampaignRunner` (campaign.hpp)
/// instead of hand-wiring ScenarioParams + NetworkConfig + ZeroconfConfig
/// + MonteCarloOptions + RunReport themselves.
///
/// Validation is centralized: `ExperimentSpec::validate()` (invoked by
/// `SpecBuilder::build` and by the runner) rejects malformed grids,
/// protocol parameters (through `ProtocolParams::validate`, strict
/// r > 0), simulation knobs, and fault schedules with a
/// zc::ContractViolation naming the spec and the offending field.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/calibrate.hpp"
#include "core/optimize.hpp"
#include "core/params.hpp"
#include "faults/schedule.hpp"
#include "sim/precision.hpp"

namespace zc::engine {

/// How a spec's numbers are produced.
enum class Estimator {
  analytic,     ///< closed forms Eq. (3)/(4) via shared survival ladders
  drm,          ///< discrete Markov reward model (numeric cross-check)
  monte_carlo,  ///< protocol-faithful simulation (sim::monte_carlo)
};
[[nodiscard]] const char* to_string(Estimator estimator) noexcept;

/// What to do with the scenario.
enum class Mode {
  evaluate,   ///< evaluate every grid point
  optimize,   ///< joint (n, r) optimum over n in [1, n_max]
  calibrate,  ///< inverse problem: (E, c) making the target optimal
};
[[nodiscard]] const char* to_string(Mode mode) noexcept;

/// Simulation knobs, consumed only when `estimator == monte_carlo`.
/// The scenario supplies what it already knows: F_X becomes the
/// responder-delay distribution and (c, E) the cost accounting; `hosts`
/// defaults to the occupancy implied by the scenario's q.
struct SimulationOptions {
  unsigned address_space = core::kAddressSpaceSize;
  unsigned hosts = 0;  ///< configured hosts; 0 = round(q * address_space)
  faults::FaultSchedule faults;  ///< adversarial conditions; default none
  double max_virtual_time = 0.0;  ///< per-run clock budget; 0 = unbounded

  std::size_t trials = 10000;
  std::uint64_t seed = 42;
  std::size_t chunk_size = 0;  ///< trials per chunk; 0 = auto (~64 chunks)

  /// Runaway-run safeguards (sim::ZeroconfConfig); 0 = unbounded.
  unsigned max_attempts = 0;
  unsigned max_probes = 0;
  /// Draft PROBE_WAIT desynchronization delay bound; 0 = model-faithful.
  double probe_wait_max = 0.0;

  /// Adaptive-precision targets (sim/precision.hpp). Disabled (default)
  /// runs exactly `trials` trials; enabled, `trials` becomes the budget
  /// cap unless `precision.max_trials` overrides it and the estimator
  /// stops once the requested CI targets are met. The realized trial
  /// count is deterministic per spec, so journaled campaigns resume
  /// byte-identically.
  sim::PrecisionTargets precision;
};

/// One declarative experiment. Construct through `SpecBuilder`; the
/// fields stay public so the runner and tests can inspect them.
struct ExperimentSpec {
  ExperimentSpec(std::string name, core::ScenarioParams scenario);

  std::string name;               ///< identifies the spec in reports
  core::ScenarioParams scenario;  ///< q, c, E, F_X
  Mode mode = Mode::evaluate;
  Estimator estimator = Estimator::analytic;

  /// Mode::evaluate — the protocol grid (>= 1 point, strict r > 0).
  std::vector<core::ProtocolParams> grid;

  /// Mode::evaluate — additional per-probe schedule cells, evaluated
  /// after the grid cells in declaration order. A uniform schedule here
  /// produces exactly the numbers the equivalent grid point would (the
  /// schedule overloads delegate to the historical arithmetic), so specs
  /// without schedules keep their report bytes unchanged. Strict domain
  /// (every timeout finite and > 0), like the grid.
  std::vector<core::ProbeSchedule> schedules;

  /// Mode::optimize — probe-count bound and r-search options.
  unsigned n_max = 16;
  core::ROptOptions r_opts{};

  /// Mode::calibrate — the target configuration (scenario's E, c ignored).
  core::ProtocolParams calibrate_target{};
  core::CalibrateOptions calibrate_opts{};

  SimulationOptions sim;

  /// Evaluate mode: also compute cost stddev, mean waiting time, and
  /// mean address attempts per cell (analytic/drm estimators; the
  /// Monte-Carlo estimator always reports them).
  bool detailed = false;

  /// Reject a malformed spec with a ContractViolation naming this spec
  /// and the offending field.
  void validate() const;

  /// Largest n over the evaluate grid (1 when the grid is empty); the
  /// ladder length shared through the runner's SurfaceCache.
  [[nodiscard]] unsigned grid_n_max() const noexcept;

  /// Configured hosts the simulation estimator uses: `sim.hosts`, or the
  /// occupancy implied by the scenario (round(q * address_space)).
  [[nodiscard]] unsigned effective_hosts() const noexcept;
};

/// Fluent, validating constructor for ExperimentSpec. `build()` runs
/// `ExperimentSpec::validate()` so an invalid spec never escapes.
class SpecBuilder {
 public:
  SpecBuilder(std::string name, core::ScenarioParams scenario);
  SpecBuilder(std::string name, const core::ExponentialScenario& scenario);

  /// Append one grid point (Mode::evaluate).
  SpecBuilder& protocol(core::ProtocolParams point);
  /// Append the cross product ns x rs in row-major (n-outer) order.
  SpecBuilder& protocol_grid(const std::vector<unsigned>& ns,
                             const std::vector<double>& rs);
  /// Append one per-probe schedule cell (Mode::evaluate); evaluated
  /// after every grid point, in the order added.
  SpecBuilder& schedule(core::ProbeSchedule schedule);

  SpecBuilder& estimator(Estimator estimator);
  /// Switch to Mode::optimize with the given probe-count bound.
  SpecBuilder& optimize(unsigned n_max = 16);
  /// Switch to Mode::calibrate against `target`.
  SpecBuilder& calibrate(core::ProtocolParams target);
  SpecBuilder& detailed(bool on = true);

  SpecBuilder& trials(std::size_t trials);
  /// Install the full adaptive-precision target set.
  SpecBuilder& precision(const sim::PrecisionTargets& targets);
  /// Shorthand: one relative CI target applied to both the model-cost
  /// mean and the collision rate (the common CLI spelling).
  SpecBuilder& target_rel_ci(double rel_ci);
  /// Adaptive budget bounds (0 = keep the current/default value).
  SpecBuilder& trial_budget(std::size_t min_trials, std::size_t max_trials);
  SpecBuilder& seed(std::uint64_t seed);
  SpecBuilder& chunk_size(std::size_t trials_per_chunk);
  SpecBuilder& network(unsigned address_space, unsigned hosts);
  SpecBuilder& faults(const faults::FaultSchedule& schedule);
  SpecBuilder& max_virtual_time(double budget);
  SpecBuilder& safety_caps(unsigned max_attempts, unsigned max_probes = 0);
  SpecBuilder& probe_wait(double probe_wait_max);

  SpecBuilder& r_options(const core::ROptOptions& opts);
  SpecBuilder& calibrate_options(const core::CalibrateOptions& opts);

  /// Validate and return the finished spec.
  [[nodiscard]] ExperimentSpec build() const;

 private:
  ExperimentSpec spec_;
};

}  // namespace zc::engine
