#include "engine/cache.hpp"

#include <bit>

#include "common/contract.hpp"

namespace zc::engine {

SurfaceCache::LadderPtr SurfaceCache::ladder(
    const std::shared_ptr<const prob::DelayDistribution>& fx, unsigned n_max,
    double r) {
  ZC_EXPECTS(fx != nullptr);
  const Key key{fx.get(), n_max, std::bit_cast<std::uint64_t>(r)};
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second.ladder;
  }
  ++misses_;
  // Computing under the lock serializes ladder construction, which keeps
  // the exactly-once guarantee (and the hit/miss determinism) trivially;
  // a ladder is O(n_max) survival evaluations, far too cheap to justify
  // per-key futures.
  Entry entry{fx, std::make_shared<core::CostSurface::SurvivalLadder>(
                      core::CostSurface::make_ladder(*fx, n_max, r))};
  return entries_.emplace(key, std::move(entry)).first->second.ladder;
}

std::uint64_t SurfaceCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SurfaceCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t SurfaceCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SurfaceCache::export_metrics(obs::MetricSet& set) const {
  std::lock_guard<std::mutex> lock(mutex_);
  set.inc(set.counter("engine.cache.hits"), hits_);
  set.inc(set.counter("engine.cache.misses"), misses_);
  set.set_gauge(set.gauge("engine.cache.entries"),
                static_cast<double>(entries_.size()));
}

void SurfaceCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace zc::engine
