#pragma once

/// \file campaign.hpp
/// Batch execution of ExperimentSpecs. `CampaignRunner::run` validates
/// every spec, executes the batch through the shared exec::ThreadPool
/// (one chunk per spec; estimators may nest their own parallel sections —
/// waiting callers drain the pool, so nesting cannot deadlock), shares
/// survival ladders across analytic specs through a `SurfaceCache`, and
/// aggregates everything into one `CampaignResult` that renders as a
/// `zcopt-run-report` v1 manifest or a CSV table.
///
/// Determinism contract — the same one monte_carlo gives per campaign,
/// lifted to batches: a `CampaignResult` (and the byte content of
/// `report(...)` / the CSV sink) is a pure function of the spec list.
/// Results land in a pre-sized slot per spec, per-spec metric sets merge
/// in ascending spec order on the calling thread, and the cache's
/// hit/miss counters count exactly-once computations — so the output is
/// byte-identical at any `CampaignOptions::threads`, fault schedules and
/// all.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/spec.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace zc::engine {

/// One evaluated grid point. `mean_cost` / `error_probability` are the
/// two headline measures whatever the estimator; the detail and
/// simulation blocks are populated as flagged.
struct CellResult {
  core::ProtocolParams protocol{};
  double mean_cost = 0.0;          ///< C(n, r) (MC: model-accounting mean)
  double error_probability = 0.0;  ///< Err(n, r) (MC: collision rate)

  /// Detail block (spec.detailed, or always for Monte-Carlo).
  bool has_detail = false;
  double cost_stddev = 0.0;
  double mean_waiting_time = 0.0;
  double mean_attempts = 0.0;

  /// Simulation block (estimator == monte_carlo).
  bool from_simulation = false;
  std::size_t trials = 0;
  std::size_t completed = 0;
  std::size_t aborted = 0;
  std::size_t non_finite = 0;
  std::size_t collisions = 0;
  double aborted_rate = 0.0;
  double cost_ci95 = 0.0;  ///< model-cost 95% CI half-width
  double collision_ci_lower = 0.0;
  double collision_ci_upper = 0.0;
  double mean_probes = 0.0;
  double mean_elapsed_cost = 0.0;  ///< elapsed-time accounting mean

  [[nodiscard]] obs::JsonValue to_json() const;
};

/// Everything one spec produced.
struct ExperimentResult {
  std::string name;
  Mode mode = Mode::evaluate;
  Estimator estimator = Estimator::analytic;

  std::vector<CellResult> cells;  ///< evaluate mode, grid order
  std::optional<core::JointOptimum> optimum;       ///< optimize mode
  std::optional<core::Calibration> calibration;    ///< calibrate mode;
                                                   ///< nullopt = infeasible

  /// Semantic metrics this spec produced (Monte-Carlo delivery/fault/
  /// trial counters, merged over the grid in order); empty for analytic
  /// and drm estimators. Byte-identical at any thread count.
  obs::MetricSet metrics;

  [[nodiscard]] obs::JsonValue to_json() const;
};

struct CampaignOptions {
  /// Worker threads for the batch *and* inside each estimator:
  /// 0 = hardware concurrency, 1 = serial. Results are byte-identical at
  /// every setting.
  unsigned threads = 0;
};

/// Results of a batch, in spec order.
struct CampaignResult {
  std::vector<ExperimentResult> experiments;

  /// Per-spec metrics merged in spec order, plus the runner's
  /// `engine.specs.total` / `engine.cells.total` / `engine.cache.*`
  /// bookkeeping.
  obs::MetricSet metrics;

  [[nodiscard]] obs::JsonValue to_json() const;

  /// Assemble the deterministic `zcopt-run-report` v1 manifest:
  /// config.specs, data.experiments (spec order), and the merged
  /// semantic metrics. Timers/runtime are left empty — they measure the
  /// hardware, and this report is byte-comparable across runs and thread
  /// counts. Callers wanting wall-clock context add
  /// `set_timers(obs::Registry::global().timers_snapshot())` themselves.
  [[nodiscard]] obs::RunReport report(std::string program,
                                      std::string description) const;
};

/// Executes batches of specs; owns the survival-ladder cache shared
/// across every spec it runs (also across successive `run` calls).
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions opts = {});

  /// Validate and execute every spec; results in spec order.
  [[nodiscard]] CampaignResult run(const std::vector<ExperimentSpec>& specs);

  /// Convenience for single-spec surfaces (examples, CLI modes).
  [[nodiscard]] ExperimentResult run_one(const ExperimentSpec& spec);

  [[nodiscard]] SurfaceCache& cache() noexcept { return cache_; }

 private:
  [[nodiscard]] ExperimentResult execute(const ExperimentSpec& spec);
  void run_evaluate(const ExperimentSpec& spec, ExperimentResult& out);
  void run_monte_carlo(const ExperimentSpec& spec, ExperimentResult& out);

  CampaignOptions opts_;
  SurfaceCache cache_;
};

/// Write the campaign as CSV (one row per cell, optimum, or calibration;
/// numbers in round-trip precision). False on I/O error.
[[nodiscard]] bool write_campaign_csv(const CampaignResult& campaign,
                                      const std::string& path);

}  // namespace zc::engine
