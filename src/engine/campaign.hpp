#pragma once

/// \file campaign.hpp
/// Batch execution of ExperimentSpecs. `CampaignRunner::run` validates
/// every spec, executes the batch through the shared exec::ThreadPool
/// (one chunk per spec; estimators may nest their own parallel sections —
/// waiting callers drain the pool, so nesting cannot deadlock), shares
/// survival ladders across analytic specs through a `SurfaceCache`, and
/// aggregates everything into one `CampaignResult` that renders as a
/// `zcopt-run-report` v1 manifest or a CSV table.
///
/// Determinism contract — the same one monte_carlo gives per campaign,
/// lifted to batches: a `CampaignResult` (and the byte content of
/// `report(...)` / the CSV sink) is a pure function of the spec list.
/// Results land in a pre-sized slot per spec, per-spec metric sets merge
/// in ascending spec order on the calling thread, and the cache's
/// hit/miss counters count exactly-once computations — so the output is
/// byte-identical at any `CampaignOptions::threads`, fault schedules and
/// all.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "engine/cache.hpp"
#include "engine/spec.hpp"
#include "exec/cancel.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace zc::engine {

/// One evaluated grid point. `mean_cost` / `error_probability` are the
/// two headline measures whatever the estimator; the detail and
/// simulation blocks are populated as flagged.
struct CellResult {
  core::ProtocolParams protocol{};
  double mean_cost = 0.0;          ///< C(n, r) (MC: model-accounting mean)
  double error_probability = 0.0;  ///< Err(n, r) (MC: collision rate)

  /// Schedule block (spec.schedules cells). `protocol` still carries
  /// (n, r_1) so the legacy "n"/"r" keys and CSV columns stay populated;
  /// the serialized schedule recipe restores the full timeout vector
  /// bitwise (see journal round-trip contract). Grid cells leave it
  /// unset, so schedule-free reports keep their historical bytes.
  bool has_schedule = false;
  core::ProbeSchedule schedule{};

  /// Detail block (spec.detailed, or always for Monte-Carlo).
  bool has_detail = false;
  double cost_stddev = 0.0;
  double mean_waiting_time = 0.0;
  double mean_attempts = 0.0;

  /// Simulation block (estimator == monte_carlo).
  bool from_simulation = false;
  std::size_t trials = 0;
  std::size_t completed = 0;
  std::size_t aborted = 0;
  std::size_t non_finite = 0;
  std::size_t collisions = 0;
  double aborted_rate = 0.0;
  double cost_ci95 = 0.0;  ///< model-cost 95% CI half-width
  double collision_ci_lower = 0.0;
  double collision_ci_upper = 0.0;
  double mean_probes = 0.0;
  double mean_elapsed_cost = 0.0;  ///< elapsed-time accounting mean

  /// Adaptive-precision block (simulation cells with precision targets
  /// enabled; serialized only then, so fixed-mode report bytes stay
  /// comparable with prior recordings). `trials` above holds the
  /// *realized* ladder total — the quantity journal resume replays.
  bool adaptive = false;
  std::size_t trials_requested = 0;  ///< adaptive budget cap
  std::size_t rounds = 0;            ///< executed ladder rounds
  bool precision_met = false;        ///< all CI targets satisfied

  [[nodiscard]] obs::JsonValue to_json() const;
};

/// Everything one spec produced.
struct ExperimentResult {
  std::string name;
  Mode mode = Mode::evaluate;
  Estimator estimator = Estimator::analytic;

  std::vector<CellResult> cells;  ///< evaluate mode, grid order
  std::optional<core::JointOptimum> optimum;       ///< optimize mode
  std::optional<core::Calibration> calibration;    ///< calibrate mode;
                                                   ///< nullopt = infeasible

  /// Semantic metrics this spec produced (Monte-Carlo delivery/fault/
  /// trial counters, merged over the grid in order); empty for analytic
  /// and drm estimators. Byte-identical at any thread count.
  obs::MetricSet metrics;

  [[nodiscard]] obs::JsonValue to_json() const;
};

/// One quarantined spec: its chunk threw (ContractViolation, bad_alloc,
/// anything), the campaign recorded the facts and carried on with the
/// remaining specs. Deterministic for deterministic failures — the same
/// spec list fails with the same records at any thread count.
struct SpecFailure {
  std::size_t spec_index = 0;  ///< position in the spec list
  std::string spec_name;
  std::size_t chunk = 0;   ///< campaign chunk (== spec index; 1 spec/chunk)
  std::string error;       ///< exception text (e.what())
  std::uint64_t seed = 0;  ///< sim seed for monte_carlo specs, 0 otherwise

  [[nodiscard]] obs::JsonValue to_json() const;
};

struct CampaignOptions {
  CampaignOptions() = default;
  /// Thread-count-only construction (`CampaignOptions{8}`): the common
  /// spelling across tests and examples, kept valid as fields grow.
  explicit CampaignOptions(unsigned threads_in) : threads(threads_in) {}

  /// Worker threads for the batch *and* inside each estimator:
  /// 0 = hardware concurrency, 1 = serial. Results are byte-identical at
  /// every setting.
  unsigned threads = 0;

  /// Write-ahead journal path (see journal.hpp); empty = no journaling.
  /// `run` creates/truncates it, appends every completed chunk fsync'd,
  /// and `resume` picks it back up after a crash.
  std::string journal_path;

  /// Cooperative stop, consulted at chunk (== spec) boundaries and
  /// threaded into every estimator's inner parallel sections. Not owned;
  /// must outlive the runner calls. A spec in flight when the stop
  /// arrives is discarded (its estimates may aggregate a partial trial
  /// set), never recorded — so everything a stopped campaign *does*
  /// report is exactly what an uninterrupted run would have reported.
  const exec::CancelToken* cancel = nullptr;
};

/// Results of a batch, in spec order.
struct CampaignResult {
  /// One slot per spec. Failed or cancelled specs hold a stub carrying
  /// only name/mode/estimator (see `failures` / `cancelled`).
  std::vector<ExperimentResult> experiments;

  /// Per-spec metrics merged in spec order, plus the runner's
  /// `engine.specs.total` / `engine.cells.total` / `engine.cache.*`
  /// bookkeeping (and `engine.failures.total` / `engine.cancelled.total`
  /// when non-zero).
  obs::MetricSet metrics;

  /// Quarantined specs in ascending spec order; empty on a clean run.
  std::vector<SpecFailure> failures;

  /// Specs never executed because a cooperative stop arrived first
  /// (ascending). Non-empty iff `complete == false`.
  std::vector<std::size_t> cancelled;

  /// False iff the campaign was cut short by cancellation. Failures do
  /// *not* clear it: a quarantined spec is a (recorded) outcome, not
  /// missing work.
  bool complete = true;

  [[nodiscard]] obs::JsonValue to_json() const;

  /// Assemble the deterministic `zcopt-run-report` v1 manifest:
  /// config.specs, data.experiments (spec order), the aborted-trial
  /// aggregate (data.aborted_rate), completion status (data.complete,
  /// data.failures, data.cancelled when incomplete), and the merged
  /// semantic metrics. Timers/runtime are left empty — they measure the
  /// hardware, and this report is byte-comparable across runs and thread
  /// counts. Callers wanting wall-clock context add
  /// `set_timers(obs::Registry::global().timers_snapshot())` themselves.
  [[nodiscard]] obs::RunReport report(std::string program,
                                      std::string description) const;
};

/// Executes batches of specs; owns the survival-ladder cache shared
/// across every spec it runs (also across successive `run` calls).
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions opts = {});

  /// Validate and execute every spec; results in spec order. With
  /// `opts.journal_path` set, every completed chunk is checkpointed
  /// before the campaign moves on.
  [[nodiscard]] CampaignResult run(const std::vector<ExperimentSpec>& specs);

  /// Resume an interrupted journaled campaign: validate that the journal
  /// at `journal_path` matches `specs` (spec-list digest + count; throws
  /// zc::ContractViolation on a stale or corrupt journal), replay its
  /// completed chunks, execute only the missing ones, and keep appending
  /// to the same journal. The returned result — and its report/CSV
  /// bytes — is byte-identical to an uninterrupted `run(specs)` at any
  /// thread count.
  [[nodiscard]] CampaignResult resume(const std::vector<ExperimentSpec>& specs,
                                      const std::string& journal_path);

  /// Convenience for single-spec surfaces (examples, CLI modes).
  [[nodiscard]] ExperimentResult run_one(const ExperimentSpec& spec);

  [[nodiscard]] SurfaceCache& cache() noexcept { return cache_; }

 private:
  [[nodiscard]] CampaignResult run_impl(
      const std::vector<ExperimentSpec>& specs, class JournalWriter* journal,
      std::map<std::size_t, ExperimentResult>* replayed);
  [[nodiscard]] ExperimentResult execute(const ExperimentSpec& spec);
  void run_evaluate(const ExperimentSpec& spec, ExperimentResult& out);
  void run_monte_carlo(const ExperimentSpec& spec, ExperimentResult& out);
  /// Re-issue a replayed spec's ladder requests so the shared cache's
  /// hit/miss/entry totals match an uninterrupted run's.
  void warm_cache(const ExperimentSpec& spec);

  CampaignOptions opts_;
  SurfaceCache cache_;
};

/// Write the campaign as CSV (one row per cell, optimum, or calibration;
/// numbers in round-trip precision). False on I/O error.
[[nodiscard]] bool write_campaign_csv(const CampaignResult& campaign,
                                      const std::string& path);

}  // namespace zc::engine
