#include "engine/spec.hpp"

#include <cmath>
#include <utility>

#include "common/contract.hpp"

namespace zc::engine {

const char* to_string(Estimator estimator) noexcept {
  switch (estimator) {
    case Estimator::analytic: return "analytic";
    case Estimator::drm: return "drm";
    case Estimator::monte_carlo: return "monte_carlo";
  }
  return "unknown";
}

const char* to_string(Mode mode) noexcept {
  switch (mode) {
    case Mode::evaluate: return "evaluate";
    case Mode::optimize: return "optimize";
    case Mode::calibrate: return "calibrate";
  }
  return "unknown";
}

ExperimentSpec::ExperimentSpec(std::string spec_name,
                               core::ScenarioParams spec_scenario)
    : name(std::move(spec_name)), scenario(std::move(spec_scenario)) {}

namespace {

/// "ExperimentSpec 'name': what" — every rejection names the spec.
std::string spec_error(const std::string& name, const std::string& what) {
  return "ExperimentSpec '" + name + "': " + what;
}

}  // namespace

void ExperimentSpec::validate() const {
  ZC_REQUIRE(!name.empty(), "ExperimentSpec.name must be non-empty");
  switch (mode) {
    case Mode::evaluate:
      ZC_REQUIRE(!grid.empty() || !schedules.empty(),
                 spec_error(name, "evaluate mode needs >= 1 grid point "
                                  "or schedule"));
      // Strict protocol domain (r > 0): the r = 0 closed-form limit is a
      // core-layer concern, not a runnable experiment. Schedule cells get
      // the same strictness (every timeout finite and > 0).
      for (const core::ProtocolParams& point : grid) point.validate();
      for (const core::ProbeSchedule& sched : schedules) sched.validate();
      break;
    case Mode::optimize:
      ZC_REQUIRE(n_max >= 1, spec_error(name, "optimize needs n_max >= 1"));
      ZC_REQUIRE(estimator != Estimator::monte_carlo,
                 spec_error(name, "optimize mode requires an analytic "
                                  "estimator (analytic or drm)"));
      break;
    case Mode::calibrate:
      calibrate_target.validate();
      ZC_REQUIRE(estimator != Estimator::monte_carlo,
                 spec_error(name, "calibrate mode requires an analytic "
                                  "estimator (analytic or drm)"));
      break;
  }
  if (estimator == Estimator::monte_carlo) {
    ZC_REQUIRE(sim.trials >= 1,
               spec_error(name, "SimulationOptions.trials must be >= 1"));
    ZC_REQUIRE(sim.address_space >= 2,
               spec_error(name, "SimulationOptions.address_space must be >= 2"));
    ZC_REQUIRE(effective_hosts() < sim.address_space,
               spec_error(name, "SimulationOptions.hosts must be smaller "
                                "than the address space"));
    ZC_REQUIRE(sim.max_virtual_time >= 0.0 &&
                   std::isfinite(sim.max_virtual_time),
               spec_error(name, "SimulationOptions.max_virtual_time must be "
                                "finite and >= 0"));
    ZC_REQUIRE(sim.probe_wait_max >= 0.0 && std::isfinite(sim.probe_wait_max),
               spec_error(name, "SimulationOptions.probe_wait_max must be "
                                "finite and >= 0"));
    ZC_REQUIRE(std::isfinite(sim.precision.rel_ci_model_cost) &&
                   sim.precision.rel_ci_model_cost >= 0.0,
               spec_error(name, "SimulationOptions.precision.rel_ci_model_cost "
                                "must be finite and >= 0"));
    ZC_REQUIRE(std::isfinite(sim.precision.rel_ci_collision) &&
                   sim.precision.rel_ci_collision >= 0.0,
               spec_error(name, "SimulationOptions.precision.rel_ci_collision "
                                "must be finite and >= 0"));
    ZC_REQUIRE(std::isfinite(sim.precision.abs_ci_floor) &&
                   sim.precision.abs_ci_floor >= 0.0,
               spec_error(name, "SimulationOptions.precision.abs_ci_floor "
                                "must be finite and >= 0"));
    ZC_REQUIRE(sim.precision.min_trials == 0 || sim.precision.max_trials == 0 ||
                   sim.precision.min_trials <= sim.precision.max_trials,
               spec_error(name, "SimulationOptions.precision.min_trials must "
                                "be <= max_trials"));
    sim.faults.validate();
  }
}

unsigned ExperimentSpec::grid_n_max() const noexcept {
  unsigned n_largest = 1;
  for (const core::ProtocolParams& point : grid)
    if (point.n > n_largest) n_largest = point.n;
  return n_largest;
}

unsigned ExperimentSpec::effective_hosts() const noexcept {
  if (sim.hosts != 0) return sim.hosts;
  return static_cast<unsigned>(
      std::lround(scenario.q() * static_cast<double>(sim.address_space)));
}

SpecBuilder::SpecBuilder(std::string name, core::ScenarioParams scenario)
    : spec_(std::move(name), std::move(scenario)) {}

SpecBuilder::SpecBuilder(std::string name,
                         const core::ExponentialScenario& scenario)
    : spec_(std::move(name), scenario.to_params()) {}

SpecBuilder& SpecBuilder::protocol(core::ProtocolParams point) {
  spec_.mode = Mode::evaluate;
  spec_.grid.push_back(point);
  return *this;
}

SpecBuilder& SpecBuilder::protocol_grid(const std::vector<unsigned>& ns,
                                        const std::vector<double>& rs) {
  spec_.mode = Mode::evaluate;
  for (const unsigned n : ns)
    for (const double r : rs) spec_.grid.push_back({n, r});
  return *this;
}

SpecBuilder& SpecBuilder::schedule(core::ProbeSchedule schedule) {
  spec_.mode = Mode::evaluate;
  spec_.schedules.push_back(std::move(schedule));
  return *this;
}

SpecBuilder& SpecBuilder::estimator(Estimator estimator) {
  spec_.estimator = estimator;
  return *this;
}

SpecBuilder& SpecBuilder::optimize(unsigned n_max) {
  spec_.mode = Mode::optimize;
  spec_.n_max = n_max;
  return *this;
}

SpecBuilder& SpecBuilder::calibrate(core::ProtocolParams target) {
  spec_.mode = Mode::calibrate;
  spec_.calibrate_target = target;
  return *this;
}

SpecBuilder& SpecBuilder::detailed(bool on) {
  spec_.detailed = on;
  return *this;
}

SpecBuilder& SpecBuilder::trials(std::size_t trials) {
  spec_.sim.trials = trials;
  return *this;
}

SpecBuilder& SpecBuilder::precision(const sim::PrecisionTargets& targets) {
  spec_.sim.precision = targets;
  return *this;
}

SpecBuilder& SpecBuilder::target_rel_ci(double rel_ci) {
  spec_.sim.precision.rel_ci_model_cost = rel_ci;
  spec_.sim.precision.rel_ci_collision = rel_ci;
  return *this;
}

SpecBuilder& SpecBuilder::trial_budget(std::size_t min_trials,
                                       std::size_t max_trials) {
  if (min_trials > 0) spec_.sim.precision.min_trials = min_trials;
  if (max_trials > 0) spec_.sim.precision.max_trials = max_trials;
  return *this;
}

SpecBuilder& SpecBuilder::seed(std::uint64_t seed) {
  spec_.sim.seed = seed;
  return *this;
}

SpecBuilder& SpecBuilder::chunk_size(std::size_t trials_per_chunk) {
  spec_.sim.chunk_size = trials_per_chunk;
  return *this;
}

SpecBuilder& SpecBuilder::network(unsigned address_space, unsigned hosts) {
  spec_.sim.address_space = address_space;
  spec_.sim.hosts = hosts;
  return *this;
}

SpecBuilder& SpecBuilder::faults(const faults::FaultSchedule& schedule) {
  spec_.sim.faults = schedule;
  return *this;
}

SpecBuilder& SpecBuilder::max_virtual_time(double budget) {
  spec_.sim.max_virtual_time = budget;
  return *this;
}

SpecBuilder& SpecBuilder::safety_caps(unsigned max_attempts,
                                      unsigned max_probes) {
  spec_.sim.max_attempts = max_attempts;
  spec_.sim.max_probes = max_probes;
  return *this;
}

SpecBuilder& SpecBuilder::probe_wait(double probe_wait_max) {
  spec_.sim.probe_wait_max = probe_wait_max;
  return *this;
}

SpecBuilder& SpecBuilder::r_options(const core::ROptOptions& opts) {
  spec_.r_opts = opts;
  return *this;
}

SpecBuilder& SpecBuilder::calibrate_options(const core::CalibrateOptions& opts) {
  spec_.calibrate_opts = opts;
  return *this;
}

ExperimentSpec SpecBuilder::build() const {
  spec_.validate();
  return spec_;
}

}  // namespace zc::engine
