#include "engine/campaign.hpp"

#include <bit>
#include <cmath>
#include <exception>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "common/contract.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/reliability.hpp"
#include "engine/journal.hpp"
#include "exec/parallel.hpp"
#include "sim/monte_carlo.hpp"

namespace zc::engine {

obs::JsonValue CellResult::to_json() const {
  obs::JsonValue cell = obs::JsonValue::object();
  cell["n"] = protocol.n;
  cell["r"] = protocol.r;
  if (has_schedule) {
    // The generator recipe, not just the materialized vector: restoring
    // from (family, n, r0, factor, step) regenerates the timeouts
    // bitwise, and custom schedules carry the vector explicitly.
    obs::JsonValue sched = obs::JsonValue::object();
    sched["family"] = core::to_string(schedule.family());
    sched["r0"] = schedule.r0();
    sched["factor"] = schedule.factor();
    sched["step"] = schedule.step();
    if (schedule.family() == core::ScheduleFamily::custom) {
      obs::JsonValue timeouts = obs::JsonValue::array();
      for (const double t : schedule.to_vector()) timeouts.push_back(t);
      sched["timeouts"] = std::move(timeouts);
    }
    cell["schedule"] = std::move(sched);
  }
  cell["mean_cost"] = mean_cost;
  cell["error_probability"] = error_probability;
  if (has_detail) {
    cell["cost_stddev"] = cost_stddev;
    cell["mean_waiting_time"] = mean_waiting_time;
    cell["mean_attempts"] = mean_attempts;
  }
  if (from_simulation) {
    cell["trials"] = static_cast<std::uint64_t>(trials);
    cell["completed"] = static_cast<std::uint64_t>(completed);
    cell["aborted"] = static_cast<std::uint64_t>(aborted);
    cell["non_finite"] = static_cast<std::uint64_t>(non_finite);
    cell["collisions"] = static_cast<std::uint64_t>(collisions);
    cell["aborted_rate"] = aborted_rate;
    cell["cost_ci95"] = cost_ci95;
    cell["collision_ci_lower"] = collision_ci_lower;
    cell["collision_ci_upper"] = collision_ci_upper;
    cell["mean_probes"] = mean_probes;
    cell["mean_elapsed_cost"] = mean_elapsed_cost;
    if (adaptive) {
      cell["trials_requested"] = static_cast<std::uint64_t>(trials_requested);
      cell["rounds"] = static_cast<std::uint64_t>(rounds);
      cell["precision_met"] = precision_met;
    }
  }
  return cell;
}

obs::JsonValue ExperimentResult::to_json() const {
  obs::JsonValue experiment = obs::JsonValue::object();
  experiment["name"] = name;
  experiment["mode"] = to_string(mode);
  experiment["estimator"] = to_string(estimator);
  if (!cells.empty()) {
    obs::JsonValue list = obs::JsonValue::array();
    for (const CellResult& cell : cells) list.push_back(cell.to_json());
    experiment["cells"] = std::move(list);
  }
  if (optimum.has_value()) {
    obs::JsonValue opt = obs::JsonValue::object();
    opt["n"] = optimum->n;
    opt["r"] = optimum->r;
    opt["cost"] = optimum->cost;
    opt["error_probability"] = optimum->error_prob;
    experiment["optimum"] = std::move(opt);
  }
  if (mode == Mode::calibrate) {
    experiment["calibrated"] = calibration.has_value();
    if (calibration.has_value()) {
      obs::JsonValue cal = obs::JsonValue::object();
      cal["error_cost"] = calibration->error_cost;
      cal["probe_cost"] = calibration->probe_cost;
      cal["competitor"] = calibration->competitor;
      cal["target_cost"] = calibration->target_cost;
      cal["target_is_optimal"] = calibration->target_is_optimal;
      experiment["calibration"] = std::move(cal);
    }
  }
  return experiment;
}

obs::JsonValue SpecFailure::to_json() const {
  obs::JsonValue failure = obs::JsonValue::object();
  failure["spec_index"] = static_cast<std::uint64_t>(spec_index);
  failure["spec_name"] = spec_name;
  failure["chunk"] = static_cast<std::uint64_t>(chunk);
  failure["error"] = error;
  failure["seed"] = seed;
  return failure;
}

obs::JsonValue CampaignResult::to_json() const {
  obs::JsonValue out = obs::JsonValue::array();
  for (const ExperimentResult& experiment : experiments)
    out.push_back(experiment.to_json());
  return out;
}

obs::RunReport CampaignResult::report(std::string program,
                                      std::string description) const {
  obs::RunReport out(std::move(program), std::move(description));
  out.config()["specs"] = static_cast<std::uint64_t>(experiments.size());
  out.data()["experiments"] = to_json();
  // Degraded-run visibility: aggregate the safety-capped (aborted)
  // trials over every simulation cell so downstream consumers see the
  // campaign-level aborted rate without walking the cells.
  std::uint64_t simulated = 0;
  std::uint64_t aborted = 0;
  for (const ExperimentResult& experiment : experiments) {
    for (const CellResult& cell : experiment.cells) {
      if (!cell.from_simulation) continue;
      simulated += cell.trials;
      aborted += cell.aborted;
    }
  }
  out.data()["simulated_trials"] = simulated;
  out.data()["aborted_trials"] = aborted;
  out.data()["aborted_rate"] =
      simulated > 0 ? static_cast<double>(aborted) /
                          static_cast<double>(simulated)
                    : 0.0;
  out.data()["complete"] = complete;
  obs::JsonValue failure_list = obs::JsonValue::array();
  for (const SpecFailure& failure : failures)
    failure_list.push_back(failure.to_json());
  out.data()["failures"] = std::move(failure_list);
  if (!cancelled.empty()) {
    obs::JsonValue cancelled_list = obs::JsonValue::array();
    for (const std::size_t index : cancelled)
      cancelled_list.push_back(static_cast<std::uint64_t>(index));
    out.data()["cancelled"] = std::move(cancelled_list);
  }
  out.set_metrics(metrics);
  return out;
}

CampaignRunner::CampaignRunner(CampaignOptions opts) : opts_(opts) {}

CampaignResult CampaignRunner::run(const std::vector<ExperimentSpec>& specs) {
  if (opts_.journal_path.empty()) return run_impl(specs, nullptr, nullptr);
  for (const ExperimentSpec& spec : specs) spec.validate();
  JournalWriter journal = JournalWriter::create(opts_.journal_path, specs);
  return run_impl(specs, &journal, nullptr);
}

CampaignResult CampaignRunner::resume(const std::vector<ExperimentSpec>& specs,
                                      const std::string& journal_path) {
  for (const ExperimentSpec& spec : specs) spec.validate();
  JournalContents contents = read_journal(journal_path);
  const std::string digest = spec_list_digest(specs);
  ZC_REQUIRE(contents.digest == digest,
             "campaign journal is stale: digest " + contents.digest +
                 " does not match the spec list (" + digest + ")");
  ZC_REQUIRE(contents.specs == specs.size(),
             "campaign journal is stale: records " +
                 std::to_string(contents.specs) + " specs, spec list has " +
                 std::to_string(specs.size()));
  JournalWriter journal =
      JournalWriter::reopen(journal_path, contents.valid_bytes);
  return run_impl(specs, &journal, &contents.completed);
}

CampaignResult CampaignRunner::run_impl(
    const std::vector<ExperimentSpec>& specs, JournalWriter* journal,
    std::map<std::size_t, ExperimentResult>* replayed) {
  for (const ExperimentSpec& spec : specs) spec.validate();

  const std::size_t count = specs.size();
  enum class Slot : std::uint8_t { pending, done, failed };
  std::vector<ExperimentResult> results(count);
  std::vector<Slot> state(count, Slot::pending);
  std::vector<std::optional<SpecFailure>> failures(count);

  if (replayed != nullptr) {
    for (auto& [chunk, result] : *replayed) {
      ZC_ASSERT(chunk < count);
      // Re-issue the spec's ladder requests: the cache counters must end
      // up exactly where an uninterrupted run would put them.
      warm_cache(specs[chunk]);
      results[chunk] = std::move(result);
      state[chunk] = Slot::done;
    }
  }

  exec::ExecOptions exec_opts;
  exec_opts.threads = opts_.threads;
  // One chunk per spec: the estimators below open their own parallel
  // sections, and chunk granularity is what keeps slot i <- spec i a
  // scheduling-free mapping. It is also the journal/cancellation
  // granularity: whole specs are checkpointed, whole specs are skipped.
  exec_opts.chunk_size = 1;
  exec_opts.cancel = opts_.cancel;
  exec::parallel_for(
      count,
      [&](std::size_t i) {
        if (state[i] == Slot::done) return;  // replayed from the journal
        const exec::CancelToken* cancel = opts_.cancel;
        if (cancel != nullptr && cancel->stop_requested()) return;
        try {
          ExperimentResult result = execute(specs[i]);
          if (cancel != nullptr && cancel->stop_requested()) {
            // The stop may have cut the estimator's inner chunk loop
            // short, leaving estimates over a partial trial set. Discard:
            // a cancelled slot re-runs on resume; a torn one never would.
            return;
          }
          results[i] = std::move(result);
          state[i] = Slot::done;
          if (journal != nullptr) journal->append(i, results[i]);
        } catch (const std::exception& e) {
          if (cancel != nullptr && cancel->stop_requested()) return;
          SpecFailure failure;
          failure.spec_index = i;
          failure.spec_name = specs[i].name;
          failure.chunk = i;
          failure.error = e.what();
          failure.seed = specs[i].estimator == Estimator::monte_carlo
                             ? specs[i].sim.seed
                             : 0;
          failures[i] = std::move(failure);
          state[i] = Slot::failed;
        } catch (...) {
          if (cancel != nullptr && cancel->stop_requested()) return;
          SpecFailure failure;
          failure.spec_index = i;
          failure.spec_name = specs[i].name;
          failure.chunk = i;
          failure.error = "unknown exception";
          failure.seed = specs[i].estimator == Estimator::monte_carlo
                             ? specs[i].sim.seed
                             : 0;
          failures[i] = std::move(failure);
          state[i] = Slot::failed;
        }
      },
      exec_opts);

  CampaignResult out;
  out.experiments = std::move(results);
  std::size_t cells = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ExperimentResult& result = out.experiments[i];
    if (state[i] != Slot::done) {
      // Failed or never-started slots keep a stub so slot i <-> spec i
      // stays intact for reports and CSV rows.
      result.name = specs[i].name;
      result.mode = specs[i].mode;
      result.estimator = specs[i].estimator;
      if (state[i] == Slot::pending) out.cancelled.push_back(i);
    }
    if (failures[i].has_value())
      out.failures.push_back(std::move(*failures[i]));
    out.metrics.merge(result.metrics);  // ascending spec order
    cells += result.cells.size();
  }
  out.complete = out.cancelled.empty();

  obs::MetricSet bookkeeping;
  bookkeeping.inc(bookkeeping.counter("engine.specs.total"), count);
  bookkeeping.inc(bookkeeping.counter("engine.cells.total"), cells);
  // Registered only when non-zero, so failure-free campaign metric bytes
  // stay comparable with historical recordings.
  if (!out.failures.empty())
    bookkeeping.inc(bookkeeping.counter("engine.failures.total"),
                    out.failures.size());
  if (!out.cancelled.empty())
    bookkeeping.inc(bookkeeping.counter("engine.cancelled.total"),
                    out.cancelled.size());
  cache_.export_metrics(bookkeeping);
  out.metrics.merge(bookkeeping);
  // Monte-Carlo specs already published their own sets; contribute only
  // the runner's bookkeeping to the process-wide registry.
  obs::Registry::global().publish(bookkeeping);
  return out;
}

void CampaignRunner::warm_cache(const ExperimentSpec& spec) {
  // Only the analytic evaluate path touches the shared ladder cache (see
  // run_evaluate): one request per distinct r, first-appearance order.
  if (spec.mode != Mode::evaluate || spec.estimator != Estimator::analytic)
    return;
  const unsigned n_max = spec.grid_n_max();
  std::set<std::uint64_t> seen;
  for (const core::ProtocolParams& point : spec.grid) {
    if (!seen.insert(std::bit_cast<std::uint64_t>(point.r)).second) continue;
    (void)cache_.ladder(spec.scenario.reply_delay_ptr(), n_max, point.r);
  }
}

ExperimentResult CampaignRunner::run_one(const ExperimentSpec& spec) {
  CampaignResult campaign = run({spec});
  return std::move(campaign.experiments.front());
}

ExperimentResult CampaignRunner::execute(const ExperimentSpec& spec) {
  ExperimentResult out;
  out.name = spec.name;
  out.mode = spec.mode;
  out.estimator = spec.estimator;
  switch (spec.mode) {
    case Mode::evaluate:
      run_evaluate(spec, out);
      break;
    case Mode::optimize: {
      core::ROptOptions opts = spec.r_opts;
      opts.exec.threads = opts_.threads;
      opts.exec.cancel = opts_.cancel;
      out.optimum = core::joint_optimum(spec.scenario, spec.n_max, opts);
      break;
    }
    case Mode::calibrate: {
      core::CalibrateOptions opts = spec.calibrate_opts;
      opts.r_opts.exec.threads = opts_.threads;
      opts.r_opts.exec.cancel = opts_.cancel;
      out.calibration =
          core::calibrate(spec.scenario, spec.calibrate_target, opts);
      break;
    }
  }
  return out;
}

void CampaignRunner::run_evaluate(const ExperimentSpec& spec,
                                  ExperimentResult& out) {
  if (spec.estimator == Estimator::monte_carlo) {
    run_monte_carlo(spec, out);
    return;
  }

  const unsigned n_max = spec.grid_n_max();
  const core::CostSurface surface(spec.scenario, n_max);
  // Cost/error columns per distinct r, resolved through the shared
  // ladder cache exactly once per distinct r (first-appearance order),
  // so cache hit/miss totals are a pure function of the spec list.
  struct Columns {
    std::vector<double> costs;
    std::vector<double> errors;
  };
  std::map<std::uint64_t, Columns> columns;
  const auto columns_for = [&](double r) -> const Columns& {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(r);
    const auto it = columns.find(bits);
    if (it != columns.end()) return it->second;
    const SurfaceCache::LadderPtr ladder =
        cache_.ladder(spec.scenario.reply_delay_ptr(), n_max, r);
    Columns built{surface.cost_column(*ladder), surface.error_column(*ladder)};
    return columns.emplace(bits, std::move(built)).first->second;
  };

  out.cells.reserve(spec.grid.size());
  for (const core::ProtocolParams& point : spec.grid) {
    CellResult cell;
    cell.protocol = point;
    if (spec.estimator == Estimator::analytic) {
      const Columns& column = columns_for(point.r);
      cell.mean_cost = column.costs[point.n - 1];
      cell.error_probability = column.errors[point.n - 1];
    } else {  // Estimator::drm
      cell.mean_cost = core::mean_cost_numeric(spec.scenario, point);
      cell.error_probability =
          core::error_probability_numeric(spec.scenario, point);
    }
    if (spec.detailed) {
      cell.has_detail = true;
      cell.cost_stddev = std::sqrt(core::cost_variance(spec.scenario, point));
      cell.mean_waiting_time = core::mean_waiting_time(spec.scenario, point);
      cell.mean_attempts = core::mean_address_attempts(spec.scenario, point);
    }
    out.cells.push_back(cell);
  }

  // Schedule cells, after the grid: evaluated through the schedule
  // overloads (which delegate to the historical arithmetic when uniform).
  // They bypass the ladder cache — the cache is keyed on uniform (n, r)
  // columns — so grid-only specs keep their cache counters untouched.
  for (const core::ProbeSchedule& sched : spec.schedules) {
    CellResult cell;
    cell.protocol.n = sched.n();
    cell.protocol.r = sched.timeout(1);
    cell.has_schedule = true;
    cell.schedule = sched;
    if (spec.estimator == Estimator::analytic) {
      cell.mean_cost = core::mean_cost(spec.scenario, sched);
      cell.error_probability = core::error_probability(spec.scenario, sched);
    } else {  // Estimator::drm
      cell.mean_cost = core::mean_cost_numeric(spec.scenario, sched);
      cell.error_probability =
          core::error_probability_numeric(spec.scenario, sched);
    }
    if (spec.detailed) {
      cell.has_detail = true;
      cell.cost_stddev = std::sqrt(core::cost_variance(spec.scenario, sched));
      cell.mean_waiting_time = core::mean_waiting_time(spec.scenario, sched);
      cell.mean_attempts = core::mean_address_attempts(spec.scenario, sched);
    }
    out.cells.push_back(cell);
  }
}

void CampaignRunner::run_monte_carlo(const ExperimentSpec& spec,
                                     ExperimentResult& out) {
  sim::NetworkConfig network;
  network.address_space = spec.sim.address_space;
  network.hosts = spec.effective_hosts();
  network.responder_delay = spec.scenario.reply_delay_ptr();
  network.faults = spec.sim.faults;
  network.max_virtual_time = spec.sim.max_virtual_time;

  sim::ZeroconfConfig protocol;
  protocol.probe_wait_max = spec.sim.probe_wait_max;
  protocol.max_attempts = spec.sim.max_attempts;
  protocol.max_probes = spec.sim.max_probes;

  sim::MonteCarloOptions mc;
  mc.trials = spec.sim.trials;
  mc.seed = spec.sim.seed;
  mc.probe_cost = spec.scenario.probe_cost();
  mc.error_cost = spec.scenario.error_cost();
  mc.threads = opts_.threads;
  mc.chunk_size = spec.sim.chunk_size;
  mc.cancel = opts_.cancel;
  mc.precision = spec.sim.precision;

  out.cells.reserve(spec.grid.size() + spec.schedules.size());
  const auto run_cell = [&](CellResult cell) {
    const sim::MonteCarloResults results =
        sim::monte_carlo(network, protocol, mc);
    cell.mean_cost = results.model_cost.mean;
    cell.error_probability = results.collision_rate;
    cell.has_detail = true;
    cell.cost_stddev = results.model_cost.stddev;
    cell.mean_waiting_time = results.waiting_time.mean;
    cell.mean_attempts = results.attempts.mean;
    cell.from_simulation = true;
    cell.trials = results.trials;
    cell.completed = results.completed;
    cell.aborted = results.aborted;
    cell.non_finite = results.non_finite;
    cell.collisions = results.collisions;
    cell.aborted_rate = results.aborted_rate;
    cell.cost_ci95 = results.model_cost.ci95_halfwidth;
    cell.collision_ci_lower = results.collision_ci95.lower;
    cell.collision_ci_upper = results.collision_ci95.upper;
    cell.mean_probes = results.probes.mean;
    cell.mean_elapsed_cost = results.elapsed_cost.mean;
    cell.adaptive = results.adaptive;
    cell.trials_requested = results.trials_requested;
    cell.rounds = results.rounds;
    cell.precision_met = results.precision_met;
    out.cells.push_back(cell);

    out.metrics.merge(results.metrics);  // cell (grid-then-schedule) order
  };

  for (const core::ProtocolParams& point : spec.grid) {
    protocol.schedule = core::ProbeSchedule::uniform(point.n, point.r);
    CellResult cell;
    cell.protocol = point;
    run_cell(std::move(cell));
  }
  for (const core::ProbeSchedule& sched : spec.schedules) {
    protocol.schedule = sched;
    CellResult cell;
    cell.protocol.n = sched.n();
    cell.protocol.r = sched.timeout(1);
    cell.has_schedule = true;
    cell.schedule = sched;
    run_cell(std::move(cell));
  }
}

namespace {

void write_csv_number(std::ostream& os, double value) {
  obs::write_json_number(os, value);  // round-trip precision, inf/nan -> null
}

}  // namespace

bool write_campaign_csv(const CampaignResult& campaign,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << "spec,mode,estimator,n,r,mean_cost,error_probability,trials,"
        "completed,aborted\n";
  std::set<std::size_t> failed;
  for (const SpecFailure& failure : campaign.failures)
    failed.insert(failure.spec_index);
  for (std::size_t index = 0; index < campaign.experiments.size(); ++index) {
    const ExperimentResult& experiment = campaign.experiments[index];
    if (failed.count(index) > 0) {
      // A quarantined spec gets one marker row in its slot (mode column
      // says "failed") so the table stays aligned with the spec list.
      os << experiment.name << ",failed," << to_string(experiment.estimator)
         << ",,,,,,,\n";
      continue;
    }
    const auto row_head = [&](unsigned n, double r) {
      os << experiment.name << ',' << to_string(experiment.mode) << ','
         << to_string(experiment.estimator) << ',' << n << ',';
      write_csv_number(os, r);
      os << ',';
    };
    for (const CellResult& cell : experiment.cells) {
      row_head(cell.protocol.n, cell.protocol.r);
      write_csv_number(os, cell.mean_cost);
      os << ',';
      write_csv_number(os, cell.error_probability);
      if (cell.from_simulation) {
        os << ',' << cell.trials << ',' << cell.completed << ','
           << cell.aborted;
      } else {
        os << ",,,";
      }
      os << '\n';
    }
    if (experiment.optimum.has_value()) {
      row_head(experiment.optimum->n, experiment.optimum->r);
      write_csv_number(os, experiment.optimum->cost);
      os << ',';
      write_csv_number(os, experiment.optimum->error_prob);
      os << ",,,\n";
    }
    if (experiment.calibration.has_value()) {
      const core::Calibration& cal = *experiment.calibration;
      os << experiment.name << ",calibrate,"
         << to_string(experiment.estimator) << ",,,";
      write_csv_number(os, cal.target_cost);
      os << ",,,,\n";
    }
  }
  return os.good();
}

}  // namespace zc::engine
