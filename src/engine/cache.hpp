#pragma once

/// \file cache.hpp
/// Shared survival-ladder cache. The expensive, reusable piece of an
/// analytic evaluation is the survival ladder S(r)..S(n_max r)
/// (core::CostSurface::SurvivalLadder): it depends only on the
/// reply-delay distribution F_X, the ladder length, and r — *not* on
/// (q, c, E) — so specs that differ only in cost weights, occupancy, or
/// the rest of the protocol grid share ladders. Cached evaluation is
/// bitwise-identical to direct evaluation because the ladder stores the
/// exact survival doubles the direct path would compute.
///
/// Determinism of the observability counters: each unique key is
/// computed exactly once (the compute happens under the lock), so
/// `misses() == number of unique keys requested` and
/// `hits() == total requests - misses()` — pure functions of the request
/// multiset, independent of which thread got there first. That is what
/// lets campaign reports embed `engine.cache.*` counters and stay
/// byte-identical at any thread count.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/cost_surface.hpp"
#include "obs/metrics.hpp"
#include "prob/delay.hpp"

namespace zc::engine {

/// Thread-safe, exactly-once cache of survival ladders keyed by
/// (F_X identity, n_max, r bit pattern). Distribution identity is the
/// shared_ptr object: scenario copies made with `with_q` /
/// `with_error_cost` / `with_probe_cost` keep the same distribution and
/// therefore hit; structurally-equal but separately-constructed
/// distributions miss (correct, just not maximally shared).
class SurfaceCache {
 public:
  using LadderPtr = std::shared_ptr<const core::CostSurface::SurvivalLadder>;

  /// The ladder for (fx, n_max, r): computed on first request (exactly
  /// once per key), shared afterwards.
  [[nodiscard]] LadderPtr ladder(
      const std::shared_ptr<const prob::DelayDistribution>& fx,
      unsigned n_max, double r);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::size_t size() const;

  /// Export `engine.cache.hits` / `engine.cache.misses` counters and the
  /// `engine.cache.entries` gauge into `set`.
  void export_metrics(obs::MetricSet& set) const;

  /// Drop every entry and reset the counters.
  void clear();

 private:
  struct Key {
    const prob::DelayDistribution* fx = nullptr;
    unsigned n_max = 0;
    std::uint64_t r_bits = 0;

    bool operator<(const Key& other) const noexcept {
      if (fx != other.fx) return fx < other.fx;
      if (n_max != other.n_max) return n_max < other.n_max;
      return r_bits < other.r_bits;
    }
  };
  struct Entry {
    /// Pins the distribution so a freed-and-reallocated F_X can never
    /// alias a stale key.
    std::shared_ptr<const prob::DelayDistribution> fx;
    LadderPtr ladder;
  };

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace zc::engine
