#include "engine/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/contract.hpp"
#include "obs/report.hpp"
#include "prob/delay.hpp"

namespace zc::engine {

namespace {

constexpr const char* kJournalSchema = "zcopt-campaign-journal";
constexpr int kJournalVersion = 1;

// ---------------------------------------------------------------------------
// Spec-list digest

/// Append `value` in hexfloat — bit-exact, locale-free, and cheap to
/// compare (two doubles digest equal iff they are the same number).
void hex_double(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", value);
  out += buf;
  out += ' ';
}

void dec_unsigned(std::string& out, std::uint64_t value) {
  out += std::to_string(value);
  out += ' ';
}

void digest_windows(std::string& out, const faults::TimeWindows& w) {
  hex_double(out, w.start);
  hex_double(out, w.duration);
  hex_double(out, w.period);
}

void digest_faults(std::string& out, const faults::FaultSchedule& f) {
  out += "faults ";
  hex_double(out, f.gilbert_elliott.p_enter_burst);
  hex_double(out, f.gilbert_elliott.p_exit_burst);
  hex_double(out, f.gilbert_elliott.loss_good);
  hex_double(out, f.gilbert_elliott.loss_bad);
  digest_windows(out, f.blackout.windows);
  digest_windows(out, f.delay_spike.windows);
  hex_double(out, f.delay_spike.multiplier);
  hex_double(out, f.delay_spike.extra);
  hex_double(out, f.duplication.probability);
  dec_unsigned(out, f.duplication.copies);
  hex_double(out, f.reordering.probability);
  hex_double(out, f.reordering.max_jitter);
  hex_double(out, f.host_churn.deaf_fraction);
  hex_double(out, f.host_churn.period);
  hex_double(out, f.host_churn.deaf_duration);
}

void digest_r_opts(std::string& out, const core::ROptOptions& opts) {
  hex_double(out, opts.r_min);
  hex_double(out, opts.r_max);
  dec_unsigned(out, opts.grid_points);
  hex_double(out, opts.x_tol);
}

/// Behavioral fingerprint of a reply-delay distribution: its name plus
/// bit-exact samples of the quantities the evaluators consume. Two
/// distributions with equal fingerprints produce equal ladders.
void digest_distribution(std::string& out,
                         const prob::DelayDistribution& dist) {
  out += "dist ";
  out += dist.name();
  out += ' ';
  hex_double(out, dist.loss_probability());
  hex_double(out, dist.mean_given_arrival());
  static constexpr double kSamples[] = {0.0, 0.125, 0.25, 0.5, 1.0,
                                        2.0, 4.0,   8.0,  16.0, 32.0};
  for (const double t : kSamples) hex_double(out, dist.survival(t));
}

/// FNV-1a 64.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

// ---------------------------------------------------------------------------
// Record parsing helpers

[[noreturn]] void record_fail(const std::string& what) {
  throw ContractViolation("campaign journal record: " + what);
}

const obs::JsonValue& member(const obs::JsonValue& object,
                             const std::string& key) {
  const obs::JsonValue* value = object.find(key);
  if (value == nullptr) record_fail("missing key '" + key + "'");
  return *value;
}

/// JSON number → double, with `null` (the writer's encoding of inf/nan)
/// restored as quiet NaN so a re-emission degrades to `null` again.
double read_double(const obs::JsonValue& value) {
  if (value.kind() == obs::JsonValue::Kind::null)
    return std::numeric_limits<double>::quiet_NaN();
  if (value.kind() != obs::JsonValue::Kind::number)
    record_fail("expected a number");
  return value.as_number();
}

std::uint64_t read_count(const obs::JsonValue& value) {
  const double v = read_double(value);
  if (!(v >= 0.0) || v != std::floor(v))
    record_fail("expected a non-negative whole number");
  return static_cast<std::uint64_t>(v);
}

Mode mode_from_string(const std::string& text) {
  if (text == "evaluate") return Mode::evaluate;
  if (text == "optimize") return Mode::optimize;
  if (text == "calibrate") return Mode::calibrate;
  record_fail("unknown mode '" + text + "'");
}

Estimator estimator_from_string(const std::string& text) {
  if (text == "analytic") return Estimator::analytic;
  if (text == "drm") return Estimator::drm;
  if (text == "monte_carlo") return Estimator::monte_carlo;
  record_fail("unknown estimator '" + text + "'");
}

CellResult cell_from_json(const obs::JsonValue& cell) {
  CellResult out;
  out.protocol.n = static_cast<unsigned>(read_count(member(cell, "n")));
  out.protocol.r = read_double(member(cell, "r"));
  if (const obs::JsonValue* sched = cell.find("schedule")) {
    if (!sched->is_object()) record_fail("'schedule' must be an object");
    core::ScheduleFamily family{};
    const std::string family_name = member(*sched, "family").as_string();
    if (!core::schedule_family_from_string(family_name, family))
      record_fail("unknown schedule family '" + family_name + "'");
    std::vector<double> timeouts;
    if (const obs::JsonValue* list = sched->find("timeouts")) {
      if (!list->is_array()) record_fail("'timeouts' must be an array");
      timeouts.reserve(list->size());
      for (std::size_t i = 0; i < list->size(); ++i)
        timeouts.push_back(read_double(*list->element(i)));
    }
    out.has_schedule = true;
    // Regeneration from the recipe is bitwise-deterministic, so the
    // restored cell re-serializes byte-identically (round-trip contract).
    out.schedule = core::ProbeSchedule::restore(
        family, out.protocol.n, read_double(member(*sched, "r0")),
        read_double(member(*sched, "factor")),
        read_double(member(*sched, "step")), std::move(timeouts));
  }
  out.mean_cost = read_double(member(cell, "mean_cost"));
  out.error_probability = read_double(member(cell, "error_probability"));
  // The emitter writes the detail/simulation blocks iff the flags were
  // set, so key presence restores the flags exactly.
  if (cell.find("cost_stddev") != nullptr) {
    out.has_detail = true;
    out.cost_stddev = read_double(member(cell, "cost_stddev"));
    out.mean_waiting_time = read_double(member(cell, "mean_waiting_time"));
    out.mean_attempts = read_double(member(cell, "mean_attempts"));
  }
  if (cell.find("trials") != nullptr) {
    out.from_simulation = true;
    out.trials = read_count(member(cell, "trials"));
    out.completed = read_count(member(cell, "completed"));
    out.aborted = read_count(member(cell, "aborted"));
    out.non_finite = read_count(member(cell, "non_finite"));
    out.collisions = read_count(member(cell, "collisions"));
    out.aborted_rate = read_double(member(cell, "aborted_rate"));
    out.cost_ci95 = read_double(member(cell, "cost_ci95"));
    out.collision_ci_lower = read_double(member(cell, "collision_ci_lower"));
    out.collision_ci_upper = read_double(member(cell, "collision_ci_upper"));
    out.mean_probes = read_double(member(cell, "mean_probes"));
    out.mean_elapsed_cost = read_double(member(cell, "mean_elapsed_cost"));
    // Adaptive block present iff the cell ran with precision targets;
    // `trials` above already carries the realized ladder total, so a
    // replayed cell re-emits byte-identically without re-running it.
    if (cell.find("rounds") != nullptr) {
      out.adaptive = true;
      out.trials_requested = read_count(member(cell, "trials_requested"));
      out.rounds = read_count(member(cell, "rounds"));
      out.precision_met = member(cell, "precision_met").as_bool();
    }
  }
  return out;
}

}  // namespace

std::string spec_list_digest(const std::vector<ExperimentSpec>& specs) {
  std::string canon;
  canon.reserve(512 * specs.size());
  // Sharing structure: the runner's SurfaceCache keys ladders by
  // distribution *object*, so which specs reuse one object changes the
  // cache counters — make it part of the digest.
  std::map<const prob::DelayDistribution*, std::size_t> first_seen;
  for (const ExperimentSpec& spec : specs) {
    canon += "spec ";
    canon += spec.name;
    canon += '\n';
    canon += to_string(spec.mode);
    canon += ' ';
    canon += to_string(spec.estimator);
    canon += '\n';
    hex_double(canon, spec.scenario.q());
    hex_double(canon, spec.scenario.probe_cost());
    hex_double(canon, spec.scenario.error_cost());
    const prob::DelayDistribution* dist = spec.scenario.reply_delay_ptr().get();
    const std::size_t index =
        first_seen.emplace(dist, first_seen.size()).first->second;
    dec_unsigned(canon, index);
    digest_distribution(canon, *dist);
    canon += "\ngrid ";
    for (const core::ProtocolParams& point : spec.grid) {
      dec_unsigned(canon, point.n);
      hex_double(canon, point.r);
    }
    // Schedule cells digest their recipe *and* every materialized
    // timeout, so changing any r_i (directly or through a generator
    // parameter) invalidates resumption. Emitted only when present:
    // schedule-free spec lists keep their historical digests.
    if (!spec.schedules.empty()) {
      canon += "\nsched ";
      for (const core::ProbeSchedule& sched : spec.schedules) {
        canon += core::to_string(sched.family());
        canon += ' ';
        dec_unsigned(canon, sched.n());
        hex_double(canon, sched.r0());
        hex_double(canon, sched.factor());
        hex_double(canon, sched.step());
        for (const double t : sched.to_vector()) hex_double(canon, t);
      }
    }
    canon += "\nopt ";
    dec_unsigned(canon, spec.n_max);
    digest_r_opts(canon, spec.r_opts);
    canon += "\ncal ";
    dec_unsigned(canon, spec.calibrate_target.n);
    hex_double(canon, spec.calibrate_target.r);
    hex_double(canon, spec.calibrate_opts.log10_e_min);
    hex_double(canon, spec.calibrate_opts.log10_e_max);
    hex_double(canon, spec.calibrate_opts.c_min);
    hex_double(canon, spec.calibrate_opts.c_max);
    dec_unsigned(canon, spec.calibrate_opts.n_max);
    digest_r_opts(canon, spec.calibrate_opts.r_opts);
    canon += "\nsim ";
    dec_unsigned(canon, spec.sim.address_space);
    dec_unsigned(canon, spec.sim.hosts);
    hex_double(canon, spec.sim.max_virtual_time);
    dec_unsigned(canon, spec.sim.trials);
    dec_unsigned(canon, spec.sim.seed);
    dec_unsigned(canon, spec.sim.chunk_size);
    dec_unsigned(canon, spec.sim.max_attempts);
    dec_unsigned(canon, spec.sim.max_probes);
    hex_double(canon, spec.sim.probe_wait_max);
    // Precision targets decide the realized trial count, so they are
    // byte-determining like trials/seed. Disabled targets digest as the
    // same constants every pre-adaptive journal implicitly had... except
    // the section marker makes old digests differ — acceptable: the
    // digest only guards journal/spec-list agreement within one version.
    canon += "\nprec ";
    hex_double(canon, spec.sim.precision.rel_ci_model_cost);
    hex_double(canon, spec.sim.precision.rel_ci_collision);
    hex_double(canon, spec.sim.precision.abs_ci_floor);
    dec_unsigned(canon, spec.sim.precision.min_trials);
    dec_unsigned(canon, spec.sim.precision.max_trials);
    canon += '\n';
    digest_faults(canon, spec.sim.faults);
    canon += "\ndetailed ";
    canon += spec.detailed ? '1' : '0';
    canon += '\n';
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(canon)));
  return buf;
}

obs::JsonValue journal_record(std::size_t chunk,
                              const ExperimentResult& result) {
  obs::JsonValue record = obs::JsonValue::object();
  record["chunk"] = static_cast<std::uint64_t>(chunk);
  record["name"] = result.name;
  record["result"] = result.to_json();
  record["metrics"] = obs::metrics_to_json(result.metrics);
  return record;
}

ExperimentResult result_from_journal(const obs::JsonValue& record) {
  const obs::JsonValue& payload = member(record, "result");
  if (!payload.is_object()) record_fail("'result' must be an object");

  ExperimentResult out;
  out.name = member(payload, "name").as_string();
  out.mode = mode_from_string(member(payload, "mode").as_string());
  out.estimator =
      estimator_from_string(member(payload, "estimator").as_string());

  if (const obs::JsonValue* cells = payload.find("cells")) {
    if (!cells->is_array()) record_fail("'cells' must be an array");
    out.cells.reserve(cells->size());
    for (std::size_t i = 0; i < cells->size(); ++i)
      out.cells.push_back(cell_from_json(*cells->element(i)));
  }
  if (const obs::JsonValue* opt = payload.find("optimum")) {
    core::JointOptimum optimum;
    optimum.n = static_cast<unsigned>(read_count(member(*opt, "n")));
    optimum.r = read_double(member(*opt, "r"));
    optimum.cost = read_double(member(*opt, "cost"));
    optimum.error_prob = read_double(member(*opt, "error_probability"));
    out.optimum = optimum;
  }
  if (out.mode == Mode::calibrate &&
      member(payload, "calibrated").as_bool()) {
    const obs::JsonValue& cal = member(payload, "calibration");
    core::Calibration calibration;
    calibration.error_cost = read_double(member(cal, "error_cost"));
    calibration.probe_cost = read_double(member(cal, "probe_cost"));
    calibration.competitor =
        static_cast<unsigned>(read_count(member(cal, "competitor")));
    calibration.target_cost = read_double(member(cal, "target_cost"));
    calibration.target_is_optimal =
        member(cal, "target_is_optimal").as_bool();
    out.calibration = calibration;
  }

  std::string error;
  std::optional<obs::MetricSet> metrics =
      obs::metrics_from_json(member(record, "metrics"), &error);
  if (!metrics.has_value()) record_fail(error);
  out.metrics = std::move(*metrics);
  return out;
}

JournalContents read_journal(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  ZC_REQUIRE(static_cast<bool>(file),
             "campaign journal not readable: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();

  JournalContents out;
  std::size_t offset = 0;
  bool saw_header = false;
  while (offset < text.size()) {
    const std::size_t newline = text.find('\n', offset);
    if (newline == std::string::npos) {
      // Unterminated final line: the crash hit mid-append. Only newline-
      // terminated records count — drop the tail.
      ZC_REQUIRE(saw_header, "campaign journal header truncated: " + path);
      out.dropped_bytes = text.size() - offset;
      break;
    }
    const std::string_view line(text.data() + offset, newline - offset);
    std::string error;
    const std::optional<obs::JsonValue> parsed = obs::parse_json(line, &error);
    if (!parsed.has_value() || !parsed->is_object()) {
      // A torn *final* line is the expected aftermath of a crash during
      // an append: drop it. Anything earlier is corruption.
      if (newline + 1 >= text.size() && saw_header) {
        out.dropped_bytes = text.size() - offset;
        break;
      }
      throw ContractViolation("campaign journal corrupt at byte " +
                              std::to_string(offset) + ": " +
                              (parsed.has_value() ? "record is not an object"
                                                  : error));
    }
    if (!saw_header) {
      const obs::JsonValue& header = *parsed;
      const obs::JsonValue* schema = header.find("schema");
      ZC_REQUIRE(schema != nullptr && schema->as_string() == kJournalSchema,
                 "campaign journal header missing schema '" +
                     std::string(kJournalSchema) + "': " + path);
      const obs::JsonValue* version = header.find("version");
      ZC_REQUIRE(version != nullptr &&
                     version->as_number() == kJournalVersion,
                 "campaign journal has an unsupported version: " + path);
      out.digest = member(header, "digest").as_string();
      ZC_REQUIRE(out.digest.size() == 16,
                 "campaign journal header digest malformed: " + path);
      out.specs = read_count(member(header, "specs"));
      saw_header = true;
    } else {
      const std::size_t chunk = read_count(member(*parsed, "chunk"));
      ZC_REQUIRE(chunk < out.specs,
                 "campaign journal chunk " + std::to_string(chunk) +
                     " out of range (header declares " +
                     std::to_string(out.specs) + " specs)");
      ZC_REQUIRE(out.completed.find(chunk) == out.completed.end(),
                 "campaign journal records chunk " + std::to_string(chunk) +
                     " twice");
      out.completed.emplace(chunk, result_from_journal(*parsed));
    }
    offset = newline + 1;
    out.valid_bytes = offset;
  }
  ZC_REQUIRE(saw_header, "campaign journal is empty: " + path);
  return out;
}

// ---------------------------------------------------------------------------
// JournalWriter

JournalWriter JournalWriter::create(const std::string& path,
                                    const std::vector<ExperimentSpec>& specs) {
  JournalWriter writer;
  writer.path_ = path;
  writer.fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                      0644);
  ZC_REQUIRE(writer.fd_ >= 0, "cannot create campaign journal: " + path);
  writer.ok_ = true;
  obs::JsonValue header = obs::JsonValue::object();
  header["schema"] = kJournalSchema;
  header["version"] = kJournalVersion;
  header["digest"] = spec_list_digest(specs);
  header["specs"] = static_cast<std::uint64_t>(specs.size());
  writer.write_line(header.dump_compact());
  ZC_REQUIRE(writer.ok_, "cannot write campaign journal header: " + path);
  return writer;
}

JournalWriter JournalWriter::reopen(const std::string& path,
                                    std::uint64_t valid_bytes) {
  JournalWriter writer;
  writer.path_ = path;
  writer.fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  ZC_REQUIRE(writer.fd_ >= 0, "cannot reopen campaign journal: " + path);
  // Drop any torn tail so the file is exactly its well-formed prefix
  // before new records land after it.
  ZC_REQUIRE(::ftruncate(writer.fd_, static_cast<off_t>(valid_bytes)) == 0,
             "cannot truncate campaign journal tail: " + path);
  ZC_REQUIRE(::lseek(writer.fd_, 0, SEEK_END) >= 0,
             "cannot seek campaign journal: " + path);
  writer.ok_ = true;
  return writer;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      ok_(std::exchange(other.ok_, false)) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    ok_ = std::exchange(other.ok_, false);
  }
  return *this;
}

JournalWriter::~JournalWriter() { close(); }

void JournalWriter::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ok_ = false;
}

void JournalWriter::write_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!ok_) return;
  const char* data = framed.data();
  std::size_t remaining = framed.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd_, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      ok_ = false;
      return;
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  // Chunk-granular durability: the record is on disk before the chunk
  // counts as checkpointed.
  if (::fsync(fd_) != 0) ok_ = false;
}

void JournalWriter::append(std::size_t chunk, const ExperimentResult& result) {
  write_line(journal_record(chunk, result).dump_compact());
}

bool JournalWriter::ok() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ok_;
}

}  // namespace zc::engine
