#pragma once

/// \file expectation.hpp
/// Paper-vs-measured bookkeeping for the benches: each bench registers
/// shape checks ("minima increase with n", "optimum lands at n=2,
/// r~1.75") and a summary block is printed that EXPERIMENTS.md mirrors.

#include <iosfwd>
#include <string>
#include <vector>

namespace zc::analysis {

/// One paper-vs-measured comparison.
struct Check {
  std::string name;      ///< short identifier
  std::string expected;  ///< what the paper reports / implies
  std::string measured;  ///< what this reproduction computed
  bool passed = false;
};

/// Collects checks and renders the PAPER-CHECK block.
class PaperCheck {
 public:
  explicit PaperCheck(std::string experiment_id);

  void expect(const std::string& name, const std::string& expected,
              const std::string& measured, bool passed);

  /// expected/measured numeric, pass iff |measured-expected| <= rel_tol *
  /// |expected|.
  void expect_close(const std::string& name, double expected, double measured,
                    double rel_tol);

  /// pass iff measured is within [lo, hi].
  void expect_between(const std::string& name, double lo, double hi,
                      double measured);

  void expect_true(const std::string& name, const std::string& description,
                   bool passed);

  [[nodiscard]] bool all_passed() const noexcept;
  [[nodiscard]] const std::vector<Check>& checks() const noexcept {
    return checks_;
  }

  /// Print the PAPER-CHECK block; returns all_passed().
  bool report(std::ostream& os) const;

 private:
  std::string experiment_id_;
  std::vector<Check> checks_;
};

}  // namespace zc::analysis
