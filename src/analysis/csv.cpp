#include "analysis/csv.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::analysis {

bool grids_equivalent(const std::vector<double>& a,
                      const std::vector<double>& b) noexcept {
  if (a.size() != b.size()) return false;
  // A few ULPs of slack: enough for one logspace exp/log round trip,
  // far below any real grid spacing.
  constexpr double kRelTol = 16.0 * std::numeric_limits<double>::epsilon();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) continue;  // covers +-0 and exact matches
    const double scale = std::fmax(std::fabs(a[i]), std::fabs(b[i]));
    if (!(std::fabs(a[i] - b[i]) <= kRelTol * scale)) return false;
  }
  return true;
}

bool write_csv(std::ostream& os, const std::vector<Series>& series,
               const std::string& x_name) {
  ZC_EXPECTS(!series.empty());
  for (const Series& s : series) {
    if (!grids_equivalent(s.x, series.front().x)) return false;
    if (s.y.size() != s.x.size()) return false;
  }
  os << x_name;
  for (const Series& s : series) os << ',' << s.name;
  os << '\n';
  for (std::size_t i = 0; i < series.front().x.size(); ++i) {
    os << zc::format_sig(series.front().x[i], 12);
    for (const Series& s : series) os << ',' << zc::format_sig(s.y[i], 12);
    os << '\n';
  }
  return true;
}

bool write_csv(std::ostream& os, const Series& series,
               const std::string& x_name) {
  return write_csv(os, std::vector<Series>{series}, x_name);
}

bool write_csv_file(const std::string& path,
                    const std::vector<Series>& series,
                    const std::string& x_name) {
  std::ofstream file(path);
  if (!file) return false;
  if (!write_csv(file, series, x_name)) return false;
  return static_cast<bool>(file);
}

}  // namespace zc::analysis
