#include "analysis/csv.hpp"

#include <fstream>
#include <ostream>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::analysis {

void write_csv(std::ostream& os, const std::vector<Series>& series,
               const std::string& x_name) {
  ZC_EXPECTS(!series.empty());
  for (const Series& s : series) {
    ZC_EXPECTS(s.x == series.front().x);
    ZC_EXPECTS(s.y.size() == s.x.size());
  }
  os << x_name;
  for (const Series& s : series) os << ',' << s.name;
  os << '\n';
  for (std::size_t i = 0; i < series.front().x.size(); ++i) {
    os << zc::format_sig(series.front().x[i], 12);
    for (const Series& s : series) os << ',' << zc::format_sig(s.y[i], 12);
    os << '\n';
  }
}

void write_csv(std::ostream& os, const Series& series,
               const std::string& x_name) {
  write_csv(os, std::vector<Series>{series}, x_name);
}

bool write_csv_file(const std::string& path,
                    const std::vector<Series>& series,
                    const std::string& x_name) {
  std::ofstream file(path);
  if (!file) return false;
  write_csv(file, series, x_name);
  return static_cast<bool>(file);
}

}  // namespace zc::analysis
