#pragma once

/// \file ascii_plot.hpp
/// Terminal rendering of series — the reproduction's stand-in for the
/// paper's Maple plots. Supports linear and log10 axes; each series is
/// drawn with its own marker character and clipped to the viewport.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "analysis/series.hpp"

namespace zc::analysis {

/// Rendering options.
struct PlotOptions {
  std::size_t width = 96;    ///< plot area columns
  std::size_t height = 28;   ///< plot area rows
  bool log_x = false;
  bool log_y = false;
  std::optional<double> y_min;  ///< viewport override (data units)
  std::optional<double> y_max;
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
};

/// Render the series into `os`. Non-finite and (on log axes) non-positive
/// points are skipped. Markers cycle through "123456789abc..." per series.
void ascii_plot(std::ostream& os, const std::vector<Series>& series,
                const PlotOptions& options = {});

}  // namespace zc::analysis
