#pragma once

/// \file gnuplot.hpp
/// Emission of gnuplot scripts alongside CSV data, so every figure of the
/// paper can be re-rendered graphically from the bench output.

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/series.hpp"

namespace zc::analysis {

/// Figure-level options for the emitted script.
struct GnuplotOptions {
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
  bool log_y = false;
  std::string terminal = "pngcairo size 1000,700";
  std::string output;  ///< e.g. "fig2.png"; empty = interactive
};

/// Write a gnuplot script that plots the columns of `data_csv` (as
/// produced by write_csv with the same series). Column 1 is x; series i
/// is column i+1.
void write_gnuplot_script(std::ostream& os, const std::string& data_csv,
                          const std::vector<Series>& series,
                          const GnuplotOptions& options);

/// Write both the CSV and the script next to each other under
/// `basename`.csv / `basename`.gp. Returns false on I/O error.
[[nodiscard]] bool write_figure_files(const std::string& basename,
                                      const std::vector<Series>& series,
                                      const GnuplotOptions& options);

}  // namespace zc::analysis
