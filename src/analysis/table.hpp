#pragma once

/// \file table.hpp
/// Simple aligned text tables for bench/example output.

#include <iosfwd>
#include <string>
#include <vector>

namespace zc::analysis {

/// Column-aligned table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a row of doubles with `digits` significant
  /// digits.
  void add_numeric_row(const std::vector<double>& cells, int digits = 6);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& cell(std::size_t row,
                                        std::size_t col) const;

  /// Render with padded columns and a separator under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (no padding, comma-separated, quoted when needed).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zc::analysis
