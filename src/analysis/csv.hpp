#pragma once

/// \file csv.hpp
/// CSV export of series bundles, so figure data can be re-plotted with
/// external tools (gnuplot, matplotlib, ...).

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/series.hpp"

namespace zc::analysis {

/// Write series sharing one x grid as columns: x, <name1>, <name2>, ...
/// All series must have identical x vectors.
void write_csv(std::ostream& os, const std::vector<Series>& series,
               const std::string& x_name = "x");

/// Write one series as two columns.
void write_csv(std::ostream& os, const Series& series,
               const std::string& x_name = "x");

/// Write to a file; creates/truncates `path`. Returns false on I/O error.
[[nodiscard]] bool write_csv_file(const std::string& path,
                                  const std::vector<Series>& series,
                                  const std::string& x_name = "x");

}  // namespace zc::analysis
