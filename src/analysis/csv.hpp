#pragma once

/// \file csv.hpp
/// CSV export of series bundles, so figure data can be re-plotted with
/// external tools (gnuplot, matplotlib, ...).

#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/series.hpp"

namespace zc::analysis {

/// True when `a` and `b` are the same x grid up to floating-point noise:
/// equal sizes and every element pair either identical or within a few
/// ULPs relative (series built from a fresh `logspace` vs. a cached
/// surface column may differ in the last bit). This is the equivalence
/// `write_csv` uses to accept a shared grid.
[[nodiscard]] bool grids_equivalent(const std::vector<double>& a,
                                    const std::vector<double>& b) noexcept;

/// Write series sharing one x grid as columns: x, <name1>, <name2>, ...
/// The series' x vectors must be equivalent grids (`grids_equivalent`,
/// the first series' x is the one written) and each y must match its x
/// in length. Returns false — writing nothing — on a mismatched bundle:
/// a recoverable error for callers that assembled series from different
/// computations, not a contract abort. An empty bundle is still a
/// caller bug (ZC_EXPECTS).
[[nodiscard]] bool write_csv(std::ostream& os,
                             const std::vector<Series>& series,
                             const std::string& x_name = "x");

/// Write one series as two columns; false when y and x lengths differ.
[[nodiscard]] bool write_csv(std::ostream& os, const Series& series,
                             const std::string& x_name = "x");

/// Write to a file; creates/truncates `path`. Returns false on I/O error
/// or a mismatched bundle (in which case the file is left empty).
[[nodiscard]] bool write_csv_file(const std::string& path,
                                  const std::vector<Series>& series,
                                  const std::string& x_name = "x");

}  // namespace zc::analysis
