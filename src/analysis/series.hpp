#pragma once

/// \file series.hpp
/// Named (x, y) series — the unit of data the figure benches produce.

#include <functional>
#include <string>
#include <vector>

namespace zc::analysis {

/// One plottable curve.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }

  /// Index of the minimal y (first one on ties). Requires non-empty.
  [[nodiscard]] std::size_t argmin() const;
  /// Index of the maximal y (first one on ties). Requires non-empty.
  [[nodiscard]] std::size_t argmax() const;
  [[nodiscard]] double min_y() const;
  [[nodiscard]] double max_y() const;
};

/// Sample `f` at the given x grid.
[[nodiscard]] Series sample_series(const std::string& name,
                                   const std::vector<double>& xs,
                                   const std::function<double(double)>& f);

/// Indices of strict local maxima of `s.y` (interior points only).
[[nodiscard]] std::vector<std::size_t> local_maxima(const Series& s);

/// Indices of strict local minima of `s.y` (interior points only).
[[nodiscard]] std::vector<std::size_t> local_minima(const Series& s);

}  // namespace zc::analysis
