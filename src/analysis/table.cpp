#include "analysis/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::analysis {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ZC_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ZC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int digits) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(zc::format_sig(v, digits));
  add_row(std::move(formatted));
}

const std::string& Table::cell(std::size_t row, std::size_t col) const {
  ZC_EXPECTS(row < rows_.size());
  ZC_EXPECTS(col < headers_.size());
  return rows_[row][col];
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t j = 0; j < headers_.size(); ++j) {
    widths[j] = headers_[j].size();
    for (const auto& row : rows_) widths[j] = std::max(widths[j], row[j].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) os << "  ";
      os << zc::pad_left(row[j], widths[j]);
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w;
  os << std::string(total + 2 * (headers_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (const char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) os << ',';
      os << quote(row[j]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace zc::analysis
