#include "analysis/series.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace zc::analysis {

std::size_t Series::argmin() const {
  ZC_EXPECTS(!y.empty());
  return static_cast<std::size_t>(
      std::min_element(y.begin(), y.end()) - y.begin());
}

std::size_t Series::argmax() const {
  ZC_EXPECTS(!y.empty());
  return static_cast<std::size_t>(
      std::max_element(y.begin(), y.end()) - y.begin());
}

double Series::min_y() const { return y[argmin()]; }
double Series::max_y() const { return y[argmax()]; }

Series sample_series(const std::string& name, const std::vector<double>& xs,
                     const std::function<double(double)>& f) {
  Series s;
  s.name = name;
  s.x = xs;
  s.y.reserve(xs.size());
  for (const double x : xs) s.y.push_back(f(x));
  return s;
}

std::vector<std::size_t> local_maxima(const Series& s) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i + 1 < s.y.size(); ++i)
    if (s.y[i] > s.y[i - 1] && s.y[i] > s.y[i + 1]) out.push_back(i);
  return out;
}

std::vector<std::size_t> local_minima(const Series& s) {
  std::vector<std::size_t> out;
  for (std::size_t i = 1; i + 1 < s.y.size(); ++i)
    if (s.y[i] < s.y[i - 1] && s.y[i] < s.y[i + 1]) out.push_back(i);
  return out;
}

}  // namespace zc::analysis
