#include "analysis/expectation.hpp"

#include <cmath>
#include <ostream>

#include "common/strings.hpp"

namespace zc::analysis {

PaperCheck::PaperCheck(std::string experiment_id)
    : experiment_id_(std::move(experiment_id)) {}

void PaperCheck::expect(const std::string& name, const std::string& expected,
                        const std::string& measured, bool passed) {
  checks_.push_back({name, expected, measured, passed});
}

void PaperCheck::expect_close(const std::string& name, double expected,
                              double measured, double rel_tol) {
  const bool passed =
      std::fabs(measured - expected) <= rel_tol * std::fabs(expected);
  expect(name, zc::format_sig(expected, 4) + " (rel tol " +
                   zc::format_sig(rel_tol, 2) + ")",
         zc::format_sig(measured, 6), passed);
}

void PaperCheck::expect_between(const std::string& name, double lo, double hi,
                                double measured) {
  expect(name, "in [" + zc::format_sig(lo, 4) + ", " + zc::format_sig(hi, 4) +
                   "]",
         zc::format_sig(measured, 6), lo <= measured && measured <= hi);
}

void PaperCheck::expect_true(const std::string& name,
                             const std::string& description, bool passed) {
  expect(name, description, passed ? "holds" : "violated", passed);
}

bool PaperCheck::all_passed() const noexcept {
  for (const Check& c : checks_)
    if (!c.passed) return false;
  return true;
}

bool PaperCheck::report(std::ostream& os) const {
  os << "\nPAPER-CHECK [" << experiment_id_ << "]\n";
  for (const Check& c : checks_) {
    os << "  [" << (c.passed ? "PASS" : "FAIL") << "] " << c.name
       << ": expected " << c.expected << ", measured " << c.measured << '\n';
  }
  os << "  => " << (all_passed() ? "ALL CHECKS PASSED" : "CHECK FAILURES")
     << " (" << checks_.size() << " checks)\n";
  return all_passed();
}

}  // namespace zc::analysis
