#include "analysis/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "common/contract.hpp"
#include "common/strings.hpp"

namespace zc::analysis {

namespace {

constexpr const char* kMarkers = "123456789abcdefghijk";

bool usable(double v, bool log_axis) {
  if (!std::isfinite(v)) return false;
  return !log_axis || v > 0.0;
}

double to_axis(double v, bool log_axis) {
  return log_axis ? std::log10(v) : v;
}

}  // namespace

void ascii_plot(std::ostream& os, const std::vector<Series>& series,
                const PlotOptions& options) {
  ZC_EXPECTS(options.width >= 16 && options.height >= 4);

  // Determine the viewport in (possibly log-transformed) axis units.
  double x_lo = std::numeric_limits<double>::infinity();
  double x_hi = -x_lo;
  double y_lo = std::numeric_limits<double>::infinity();
  double y_hi = -y_lo;
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y))
        continue;
      const double y_val = s.y[i];
      if (options.y_min && y_val < *options.y_min) continue;
      if (options.y_max && y_val > *options.y_max) continue;
      x_lo = std::min(x_lo, to_axis(s.x[i], options.log_x));
      x_hi = std::max(x_hi, to_axis(s.x[i], options.log_x));
      y_lo = std::min(y_lo, to_axis(y_val, options.log_y));
      y_hi = std::max(y_hi, to_axis(y_val, options.log_y));
    }
  }
  if (options.y_min && usable(*options.y_min, options.log_y))
    y_lo = to_axis(*options.y_min, options.log_y);
  if (options.y_max && usable(*options.y_max, options.log_y))
    y_hi = to_axis(*options.y_max, options.log_y);
  if (!(x_lo < x_hi)) x_hi = x_lo + 1.0;
  if (!(y_lo < y_hi)) y_hi = y_lo + 1.0;

  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char marker = kMarkers[si % std::string_view(kMarkers).size()];
    const Series& s = series[si];
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y))
        continue;
      const double ax = to_axis(s.x[i], options.log_x);
      const double ay = to_axis(s.y[i], options.log_y);
      if (ax < x_lo || ax > x_hi || ay < y_lo || ay > y_hi) continue;
      const auto col = static_cast<std::size_t>(std::lround(
          (ax - x_lo) / (x_hi - x_lo) *
          static_cast<double>(options.width - 1)));
      const auto row_from_bottom = static_cast<std::size_t>(std::lround(
          (ay - y_lo) / (y_hi - y_lo) *
          static_cast<double>(options.height - 1)));
      const std::size_t row = options.height - 1 - row_from_bottom;
      grid[row][col] = marker;
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  const auto axis_value = [&](double v, bool log_axis) {
    return zc::format_sig(log_axis ? std::pow(10.0, v) : v, 4);
  };
  os << zc::pad_left(axis_value(y_hi, options.log_y), 12) << " +"
     << std::string(options.width, '-') << "+\n";
  for (std::size_t row = 0; row < options.height; ++row)
    os << std::string(12, ' ') << " |" << grid[row] << "|\n";
  os << zc::pad_left(axis_value(y_lo, options.log_y), 12) << " +"
     << std::string(options.width, '-') << "+\n";
  os << std::string(14, ' ') << zc::pad_right(axis_value(x_lo, options.log_x), options.width / 2)
     << zc::pad_left(axis_value(x_hi, options.log_x), options.width / 2)
     << "\n";
  os << std::string(14, ' ') << options.x_label
     << (options.log_y ? "   [log-y]" : "") << '\n';
  for (std::size_t si = 0; si < series.size(); ++si)
    os << std::string(14, ' ') << kMarkers[si % std::string_view(kMarkers).size()]
       << " = " << series[si].name << '\n';
}

}  // namespace zc::analysis
