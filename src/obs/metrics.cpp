#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace zc::obs {

MetricId MetricSet::register_metric(const std::string& name, Kind kind) {
  ZC_REQUIRE(!name.empty(), "metric name must be non-empty");
  const auto it = index_.find(name);
  if (it != index_.end()) {
    ZC_REQUIRE(it->second.first == kind,
               "metric re-registered with a different kind: " + name);
    return it->second.second;
  }
  MetricId id = 0;
  switch (kind) {
    case Kind::counter:
      id = counters_.size();
      counters_.push_back({name, 0});
      break;
    case Kind::gauge:
      id = gauges_.size();
      gauges_.push_back({name, 0.0, false});
      break;
    case Kind::histogram:
      id = histograms_.size();
      histograms_.push_back({name, {}, {}, 0.0, 0});
      break;
  }
  index_.emplace(name, std::pair{kind, id});
  return id;
}

MetricId MetricSet::counter(const std::string& name) {
  return register_metric(name, Kind::counter);
}

MetricId MetricSet::gauge(const std::string& name) {
  return register_metric(name, Kind::gauge);
}

MetricId MetricSet::histogram(const std::string& name,
                              std::vector<double> bounds) {
  ZC_REQUIRE(!bounds.empty(), "histogram bounds must be non-empty: " + name);
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    ZC_REQUIRE(std::isfinite(bounds[i]),
               "histogram bounds must be finite: " + name);
    ZC_REQUIRE(i == 0 || bounds[i - 1] < bounds[i],
               "histogram bounds must be strictly ascending: " + name);
  }
  const MetricId id = register_metric(name, Kind::histogram);
  HistogramCell& cell = histograms_[id];
  if (cell.bounds.empty()) {
    cell.bounds = std::move(bounds);
    cell.buckets.assign(cell.bounds.size() + 1, 0);
  } else {
    ZC_REQUIRE(cell.bounds == bounds,
               "histogram re-registered with different bounds: " + name);
  }
  return id;
}

#ifndef ZC_OBS_DISABLED
void MetricSet::observe(MetricId id, double value) noexcept {
  HistogramCell& cell = histograms_[id];
  const auto it =
      std::lower_bound(cell.bounds.begin(), cell.bounds.end(), value);
  ++cell.buckets[static_cast<std::size_t>(it - cell.bounds.begin())];
  cell.sum += value;
  ++cell.count;
}
#endif

void MetricSet::restore_counter(const std::string& name, std::uint64_t value) {
  const MetricId id = register_metric(name, Kind::counter);
  counters_[id].value += value;
}

void MetricSet::restore_gauge(const std::string& name, double value) {
  const MetricId id = register_metric(name, Kind::gauge);
  GaugeCell& cell = gauges_[id];
  if (!cell.written || value > cell.value) cell.value = value;
  cell.written = true;
}

void MetricSet::restore_histogram(const std::string& name,
                                  std::vector<double> bounds,
                                  std::vector<std::uint64_t> buckets,
                                  double sum, std::uint64_t count) {
  ZC_REQUIRE(buckets.size() == bounds.size() + 1,
             "restored histogram must have bounds.size() + 1 buckets: " +
                 name);
  const MetricId id = histogram(name, std::move(bounds));
  HistogramCell& cell = histograms_[id];
  ZC_ASSERT(cell.buckets.size() == buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i)
    cell.buckets[i] += buckets[i];
  cell.sum += sum;
  cell.count += count;
}

void MetricSet::merge(const MetricSet& other) {
  for (const CounterCell& c : other.counters_) {
    const MetricId id = counter(c.name);
#ifndef ZC_OBS_DISABLED
    counters_[id].value += c.value;
#else
    (void)id;
#endif
  }
  for (const GaugeCell& g : other.gauges_) {
    const MetricId id = gauge(g.name);
#ifndef ZC_OBS_DISABLED
    if (g.written) max_gauge(id, g.value);
#else
    (void)id;
#endif
  }
  for (const HistogramCell& h : other.histograms_) {
    if (h.bounds.empty()) continue;  // registered but never configured
    const MetricId id = histogram(h.name, h.bounds);
    HistogramCell& cell = histograms_[id];
    ZC_ASSERT(cell.buckets.size() == h.buckets.size());
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      cell.buckets[i] += h.buckets[i];
    cell.sum += h.sum;
    cell.count += h.count;
  }
}

std::optional<std::uint64_t> MetricSet::counter_value(
    const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end() || it->second.first != Kind::counter)
    return std::nullopt;
  return counters_[it->second.second].value;
}

std::optional<double> MetricSet::gauge_value(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end() || it->second.first != Kind::gauge)
    return std::nullopt;
  if (!gauges_[it->second.second].written) return std::nullopt;
  return gauges_[it->second.second].value;
}

const HistogramCell* MetricSet::histogram_cell(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end() || it->second.first != Kind::histogram)
    return nullptr;
  return &histograms_[it->second.second];
}

void MetricSet::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  index_.clear();
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::publish(const MetricSet& set) {
  if (!enabled_) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_.merge(set);
}

void Registry::record_timer(const std::vector<std::string>& path,
                            double seconds) {
  if (!enabled_ || path.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  TimerNode* node = &timers_;
  for (const std::string& label : path) node = &node->child(label);
  node->seconds += seconds;
  ++node->count;
}

MetricSet Registry::metrics_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

TimerNode Registry::timers_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return timers_;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
  timers_ = TimerNode{};
}

bool collection_enabled() noexcept {
#ifdef ZC_OBS_DISABLED
  return false;  // compiled out: producers skip binding entirely
#else
  return Registry::global().enabled();
#endif
}

}  // namespace zc::obs
