#pragma once

/// \file json.hpp
/// Minimal ordered JSON document tree for the observability layer: the
/// run-report emitter and the BENCH_*.json manifests are assembled as
/// `JsonValue`s and serialized with one writer, so every artifact shares
/// escaping rules and number formatting. Serialization is a pure function
/// of the stored values (doubles print with round-trip precision,
/// non-finite values degrade to `null`), which is what lets tests compare
/// report sections byte-for-byte across thread counts. `parse_json` is
/// the matching strict reader, used by the golden report tests to close
/// the emit -> parse loop.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zc::obs {

/// One JSON value: null, bool, number, string, array, or (ordered) object.
class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    null,
    boolean,
    number,
    string,
    array,
    object
  };

  JsonValue() noexcept : kind_(Kind::null) {}
  JsonValue(bool value) noexcept : kind_(Kind::boolean), bool_(value) {}
  JsonValue(double value) noexcept : kind_(Kind::number), number_(value) {}
  JsonValue(int value) noexcept
      : kind_(Kind::number), number_(static_cast<double>(value)) {}
  JsonValue(unsigned value) noexcept
      : kind_(Kind::number), number_(static_cast<double>(value)) {}
  JsonValue(long value) noexcept
      : kind_(Kind::number), number_(static_cast<double>(value)) {}
  JsonValue(unsigned long value) noexcept
      : kind_(Kind::number), number_(static_cast<double>(value)) {}
  JsonValue(unsigned long long value) noexcept
      : kind_(Kind::number), number_(static_cast<double>(value)) {}
  JsonValue(std::string value) : kind_(Kind::string), string_(std::move(value)) {}
  JsonValue(const char* value) : kind_(Kind::string), string_(value) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::array;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::object;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::object;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::array; }

  /// Object access: inserts a null member on first use (declaration
  /// order is preserved in the output). The value must be an object (or
  /// null, which is promoted).
  JsonValue& operator[](const std::string& key);

  /// Object lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Array append. The value must be an array (or null, which is promoted).
  void push_back(JsonValue element);

  [[nodiscard]] std::size_t size() const noexcept;

  /// Scalar accessors; each returns the stored value only for the
  /// matching kind (false / 0.0 / "" otherwise).
  [[nodiscard]] bool as_bool() const noexcept {
    return kind_ == Kind::boolean && bool_;
  }
  [[nodiscard]] double as_number() const noexcept {
    return kind_ == Kind::number ? number_ : 0.0;
  }
  [[nodiscard]] const std::string& as_string() const noexcept {
    static const std::string kEmpty;
    return kind_ == Kind::string ? string_ : kEmpty;
  }

  /// Array element access; nullptr when out of range or not an array.
  [[nodiscard]] const JsonValue* element(std::size_t index) const;

  /// Ordered object members (empty for non-objects). Iteration order is
  /// declaration/parse order — the same order `write` emits.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const noexcept {
    static const std::vector<std::pair<std::string, JsonValue>> kEmpty;
    return kind_ == Kind::object ? members_ : kEmpty;
  }

  /// Serialize with 2-space indentation at the given starting depth.
  void write(std::ostream& os, int indent = 0) const;

  /// Serialize without any whitespace (one line) — same escaping and
  /// number formatting as `write`, so parse(dump_compact(v)) == v. Used
  /// for JSONL records (the campaign journal), where one record must be
  /// exactly one newline-terminated line.
  void write_compact(std::ostream& os) const;

  [[nodiscard]] std::string dump() const;
  [[nodiscard]] std::string dump_compact() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;                          // array
  std::vector<std::pair<std::string, JsonValue>> members_;   // object

  void write_indent(std::ostream& os, int indent) const;
};

/// Write `value` as a JSON number: integral doubles inside the exact
/// range print without a decimal point, everything else prints with
/// round-trip (17 significant digit) precision; non-finite values print
/// as `null` (JSON has no inf/nan).
void write_json_number(std::ostream& os, double value);

/// Write `text` as a JSON string literal with standard escaping.
void write_json_string(std::ostream& os, const std::string& text);

/// Strict recursive-descent parse of one JSON document (trailing
/// whitespace allowed, trailing garbage rejected). Numbers parse to
/// double; \uXXXX escapes decode to UTF-8, including surrogate pairs.
/// Returns nullopt on malformed input and, when `error` is non-null,
/// stores a one-line diagnostic with the byte offset.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace zc::obs
