#pragma once

/// \file timer.hpp
/// Scoped wall-clock timers with hierarchical labels. A `ScopedTimer`
/// measures from construction to destruction (or `stop()`) and records
/// the span into the process-wide `Registry` timer tree; nesting scopes
/// nests tree nodes, so a run report shows where the wall time went:
///
///   {
///     obs::ScopedTimer sweep("sweep");
///     for (...) { obs::ScopedTimer cell("cell"); ... }  // sweep/cell
///   }
///
/// Timer values are the *one* report section allowed to vary between
/// otherwise-identical runs (they measure the hardware, not the model);
/// everything semantic lives in metrics.hpp.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace zc::obs {

/// One node of the aggregated timer tree: total seconds and span count
/// per label, children in first-recorded order.
struct TimerNode {
  std::string label;
  double seconds = 0.0;
  std::uint64_t count = 0;
  std::vector<TimerNode> children;

  /// Child with the given label, created (zeroed) on first use.
  [[nodiscard]] TimerNode& child(const std::string& name);
  /// Child lookup without insertion; nullptr when absent.
  [[nodiscard]] const TimerNode* find(const std::string& name) const;
};

/// RAII wall-clock span recorded into Registry::global() (timers are
/// skipped entirely while the registry is disabled).
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit (idempotent).
  void stop();

 private:
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;
};

}  // namespace zc::obs
