#pragma once

/// \file metrics.hpp
/// Process-wide metrics: named counters, gauges, and fixed-bucket
/// histograms.
///
/// Two layers keep the hot path cheap *and* the results deterministic:
///
/// 1. `MetricSet` — a local, non-thread-safe collection. Producers
///    register names once (`counter()` / `gauge()` / `histogram()`) and
///    keep the returned `MetricId`; per-event updates are then an indexed
///    add with no locking or hashing, cheap enough for per-delivery
///    increments. Parallel code gives each chunk its own set and merges
///    them **in chunk order** (`merge`), exactly like
///    `sim::RunningStats::merge` — so counter totals *and* histogram sums
///    are bitwise-identical at any thread count.
/// 2. `Registry` — the process-wide singleton. Finished campaigns
///    `publish()` their merged set under a mutex; report emitters take
///    `metrics_snapshot()`. The registry also owns the timer tree fed by
///    `obs::ScopedTimer` (timer.hpp).
///
/// Compile-time kill switch: building with -DZC_OBS_DISABLED (CMake
/// option `-DZC_OBS_METRICS=OFF`) turns every mutator into an empty
/// inline function, so instrumented hot paths compile to the
/// uninstrumented code. The runtime switch `Registry::set_enabled(false)`
/// keeps producers from binding metric sets at all.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/timer.hpp"

/// Wrap a hot-path instrumentation statement so -DZC_OBS_DISABLED
/// removes it (the statement stays type-checked but sits behind a
/// constant-false branch, which with the no-op mutators below folds to
/// nothing — no branch, no load):
///   ZC_OBS_ONLY(if (metrics_) metrics_->inc(id_));
#ifdef ZC_OBS_DISABLED
#define ZC_OBS_ONLY(stmt) \
  do {                    \
    if (false) {          \
      stmt;               \
    }                     \
  } while (false)
#else
#define ZC_OBS_ONLY(stmt) \
  do {                    \
    stmt;                 \
  } while (false)
#endif

namespace zc::obs {

/// Index of a registered metric inside its MetricSet (stable for the
/// lifetime of the set; merge aligns by name, not index).
using MetricId = std::size_t;

/// Monotonic event count.
struct CounterCell {
  std::string name;
  std::uint64_t value = 0;
};

/// Last-written (or max-combined) instantaneous value.
struct GaugeCell {
  std::string name;
  double value = 0.0;
  bool written = false;  ///< distinguishes "0" from "never set"
};

/// Fixed-bucket histogram: `buckets[i]` counts observations with
/// `value <= bounds[i]`; the final bucket is the overflow (> last bound).
struct HistogramCell {
  std::string name;
  std::vector<double> bounds;          ///< ascending upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 cells
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Local named-metric collection (see file comment for the contract).
class MetricSet {
 public:
  /// Find-or-create; the id is valid for this set and its copies.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  /// `bounds` must be non-empty, finite, and strictly ascending; a
  /// re-registration of an existing histogram must repeat the same bounds.
  MetricId histogram(const std::string& name, std::vector<double> bounds);

#ifdef ZC_OBS_DISABLED
  void inc(MetricId, std::uint64_t = 1) noexcept {}
  void set_gauge(MetricId, double) noexcept {}
  void max_gauge(MetricId, double) noexcept {}
  void observe(MetricId, double) noexcept {}
#else
  void inc(MetricId id, std::uint64_t delta = 1) noexcept {
    counters_[id].value += delta;
  }
  void set_gauge(MetricId id, double value) noexcept {
    gauges_[id].value = value;
    gauges_[id].written = true;
  }
  /// Keep the maximum of all writes (high-water marks, queue depths).
  void max_gauge(MetricId id, double value) noexcept {
    GaugeCell& cell = gauges_[id];
    if (!cell.written || value > cell.value) cell.value = value;
    cell.written = true;
  }
  void observe(MetricId id, double value) noexcept;
#endif

  /// Fold `other` into this set, find-or-creating any names this set has
  /// not seen: counters and histogram buckets/sums add, gauges combine by
  /// max. Call in a fixed (chunk) order for bitwise-reproducible sums.
  void merge(const MetricSet& other);

  /// Deserialization path (journal resume): register the metric and load
  /// its saved state verbatim. Registration order reproduces the saved
  /// emission order, so re-merging restored sets stays byte-identical.
  /// Always functional — a cold path deliberately *not* compiled out by
  /// ZC_OBS_DISABLED, so restored campaign state survives either way.
  void restore_counter(const std::string& name, std::uint64_t value);
  void restore_gauge(const std::string& name, double value);
  /// `buckets` must have bounds.size() + 1 cells.
  void restore_histogram(const std::string& name, std::vector<double> bounds,
                         std::vector<std::uint64_t> buckets, double sum,
                         std::uint64_t count);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  [[nodiscard]] const std::vector<CounterCell>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::vector<GaugeCell>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::vector<HistogramCell>& histograms()
      const noexcept {
    return histograms_;
  }

  /// Snapshot accessors by name (for tests and report assembly).
  [[nodiscard]] std::optional<std::uint64_t> counter_value(
      const std::string& name) const;
  [[nodiscard]] std::optional<double> gauge_value(
      const std::string& name) const;
  [[nodiscard]] const HistogramCell* histogram_cell(
      const std::string& name) const;

  void clear();

 private:
  enum class Kind : std::uint8_t { counter, gauge, histogram };

  std::vector<CounterCell> counters_;
  std::vector<GaugeCell> gauges_;
  std::vector<HistogramCell> histograms_;
  std::map<std::string, std::pair<Kind, MetricId>> index_;

  [[nodiscard]] MetricId register_metric(const std::string& name, Kind kind);
};

/// Process-wide metric + timer sink (thread-safe).
class Registry {
 public:
  /// The singleton every producer publishes into by default.
  static Registry& global();

  /// Runtime switch: when off, `publish`/`record_timer` are no-ops and
  /// `enabled()` tells producers to skip metric collection entirely.
  void set_enabled(bool on) noexcept { enabled_ = on; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Merge a finished campaign's set into the process totals.
  void publish(const MetricSet& set);

  /// Add one finished timer span at `path` (outermost label first).
  void record_timer(const std::vector<std::string>& path, double seconds);

  [[nodiscard]] MetricSet metrics_snapshot() const;
  [[nodiscard]] TimerNode timers_snapshot() const;

  /// Drop all accumulated metrics and timers (tests, between-run resets).
  void reset();

 private:
  mutable std::mutex mutex_;
  MetricSet metrics_;
  TimerNode timers_;  // synthetic root; label ""
  std::atomic<bool> enabled_{true};
};

/// Shorthand for Registry::global().enabled().
[[nodiscard]] bool collection_enabled() noexcept;

}  // namespace zc::obs
