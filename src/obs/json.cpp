#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"

namespace zc::obs {

void write_json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Exactly-representable integers print without a decimal point so
  // counters and seeds stay greppable; 2^53 bounds the exact range.
  constexpr double kExact = 9007199254740992.0;
  if (value == std::floor(value) && std::fabs(value) < kExact) {
    os << static_cast<long long>(value);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  os << buf;
}

void write_json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::null) kind_ = Kind::object;
  ZC_EXPECTS(kind_ == Kind::object);
  for (auto& [name, value] : members_)
    if (name == key) return value;
  members_.emplace_back(key, JsonValue{});
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

void JsonValue::push_back(JsonValue element) {
  if (kind_ == Kind::null) kind_ = Kind::array;
  ZC_EXPECTS(kind_ == Kind::array);
  elements_.push_back(std::move(element));
}

std::size_t JsonValue::size() const noexcept {
  switch (kind_) {
    case Kind::array: return elements_.size();
    case Kind::object: return members_.size();
    default: return 0;
  }
}

void JsonValue::write_indent(std::ostream& os, int indent) const {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void JsonValue::write(std::ostream& os, int indent) const {
  switch (kind_) {
    case Kind::null:
      os << "null";
      return;
    case Kind::boolean:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::number:
      write_json_number(os, number_);
      return;
    case Kind::string:
      write_json_string(os, string_);
      return;
    case Kind::array: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        write_indent(os, indent + 1);
        elements_[i].write(os, indent + 1);
        if (i + 1 < elements_.size()) os << ',';
        os << '\n';
      }
      write_indent(os, indent);
      os << ']';
      return;
    }
    case Kind::object: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        write_indent(os, indent + 1);
        write_json_string(os, members_[i].first);
        os << ": ";
        members_[i].second.write(os, indent + 1);
        if (i + 1 < members_.size()) os << ',';
        os << '\n';
      }
      write_indent(os, indent);
      os << '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace zc::obs
