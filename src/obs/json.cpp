#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/contract.hpp"

namespace zc::obs {

void write_json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Exactly-representable integers print without a decimal point so
  // counters and seeds stay greppable; 2^53 bounds the exact range.
  constexpr double kExact = 9007199254740992.0;
  if (value == std::floor(value) && std::fabs(value) < kExact) {
    os << static_cast<long long>(value);
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  os << buf;
}

void write_json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::null) kind_ = Kind::object;
  ZC_EXPECTS(kind_ == Kind::object);
  for (auto& [name, value] : members_)
    if (name == key) return value;
  members_.emplace_back(key, JsonValue{});
  return members_.back().second;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::object) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

void JsonValue::push_back(JsonValue element) {
  if (kind_ == Kind::null) kind_ = Kind::array;
  ZC_EXPECTS(kind_ == Kind::array);
  elements_.push_back(std::move(element));
}

std::size_t JsonValue::size() const noexcept {
  switch (kind_) {
    case Kind::array: return elements_.size();
    case Kind::object: return members_.size();
    default: return 0;
  }
}

void JsonValue::write_indent(std::ostream& os, int indent) const {
  for (int i = 0; i < indent; ++i) os << "  ";
}

void JsonValue::write(std::ostream& os, int indent) const {
  switch (kind_) {
    case Kind::null:
      os << "null";
      return;
    case Kind::boolean:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::number:
      write_json_number(os, number_);
      return;
    case Kind::string:
      write_json_string(os, string_);
      return;
    case Kind::array: {
      if (elements_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        write_indent(os, indent + 1);
        elements_[i].write(os, indent + 1);
        if (i + 1 < elements_.size()) os << ',';
        os << '\n';
      }
      write_indent(os, indent);
      os << ']';
      return;
    }
    case Kind::object: {
      if (members_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        write_indent(os, indent + 1);
        write_json_string(os, members_[i].first);
        os << ": ";
        members_[i].second.write(os, indent + 1);
        if (i + 1 < members_.size()) os << ',';
        os << '\n';
      }
      write_indent(os, indent);
      os << '}';
      return;
    }
  }
}

void JsonValue::write_compact(std::ostream& os) const {
  switch (kind_) {
    case Kind::null:
      os << "null";
      return;
    case Kind::boolean:
      os << (bool_ ? "true" : "false");
      return;
    case Kind::number:
      write_json_number(os, number_);
      return;
    case Kind::string:
      write_json_string(os, string_);
      return;
    case Kind::array: {
      os << '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) os << ',';
        elements_[i].write_compact(os);
      }
      os << ']';
      return;
    }
    case Kind::object: {
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        write_json_string(os, members_[i].first);
        os << ':';
        members_[i].second.write_compact(os);
      }
      os << '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

std::string JsonValue::dump_compact() const {
  std::ostringstream os;
  write_compact(os);
  return os.str();
}

const JsonValue* JsonValue::element(std::size_t index) const {
  if (kind_ != Kind::array || index >= elements_.size()) return nullptr;
  return &elements_[index];
}

namespace {

/// Recursive-descent cursor over the input. Nesting is depth-capped so a
/// pathological "[[[[..." input fails cleanly instead of overflowing the
/// stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue value;
    if (!parse_value(value, 0) || !expect_end()) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;

  bool fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool expect_end() {
    if (!at_end()) return fail("trailing characters after JSON value");
    return true;
  }

  bool consume(char expected, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != expected)
      return fail(std::string("expected ") + what);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't': return parse_literal("true", JsonValue(true), out);
      case 'f': return parse_literal("false", JsonValue(false), out);
      case 'n': return parse_literal("null", JsonValue(), out);
      default: return parse_number(out);
    }
  }

  bool parse_literal(std::string_view word, JsonValue value, JsonValue& out) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("malformed literal");
    pos_ += word.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(JsonValue& out) {
    // Strict JSON grammar: -? (0 | [1-9][0-9]*) frac? exp? — stricter
    // than strtod, which would admit "01", "1.", "+1", or hex floats.
    const std::size_t start = pos_;
    const auto digit = [&](std::size_t i) {
      return i < text_.size() && text_[i] >= '0' && text_[i] <= '9';
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!digit(pos_)) {
      pos_ = start;
      return fail("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // a leading zero stands alone
    } else {
      while (digit(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit(pos_)) {
        pos_ = start;
        return fail("malformed number");
      }
      while (digit(pos_)) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digit(pos_)) {
        pos_ = start;
        return fail("malformed number");
      }
      while (digit(pos_)) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue(std::strtod(token.c_str(), nullptr));
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("malformed \\u escape");
    }
    pos_ += 4;
    out = value;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"', "'\"'")) return false;
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              return fail("unpaired surrogate");
            pos_ += 2;
            unsigned low = 0;
            if (!parse_hex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF)
              return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out = JsonValue::array();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!parse_value(element, depth + 1)) return false;
      out.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out = JsonValue::object();
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "':'")) return false;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out[key] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return JsonParser(text).run(error);
}

}  // namespace zc::obs
