#pragma once

/// \file report.hpp
/// Structured run reports: every instrumented binary (benches, the CLI)
/// serializes one schema-versioned JSON manifest describing *what ran*
/// (program, config, seed, git revision) and *what happened* (semantic
/// metric snapshot, bench-specific data, timer tree, runtime gauges).
///
/// Schema `zcopt-run-report` v1 — documented in DESIGN.md §"Observability
/// layer"; top-level keys:
///
///   schema, schema_version, program, description, git, seed?,
///   config{}, data{}, metrics{counters{}, gauges{}, histograms{}},
///   runtime{...}, timers[]
///
/// Determinism contract: `metrics` and `data` are pure functions of
/// (config, seed) — identical at any thread count; `timers` and
/// `runtime` measure the hardware and may vary run to run.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace zc::obs {

/// Revision baked in at configure time (`git describe --always --dirty`),
/// "unknown" when the build tree had no git metadata.
[[nodiscard]] const char* git_describe() noexcept;

/// A MetricSet as the report's {"counters": {...}, "gauges": {...},
/// "histograms": {name: {bounds, buckets, sum, count}}} object.
[[nodiscard]] JsonValue metrics_to_json(const MetricSet& set);

/// Inverse of `metrics_to_json` (journal resume): rebuild a MetricSet
/// from its serialized form, preserving member order so that re-emitting
/// the restored set is byte-identical to the original JSON. Returns
/// nullopt (and a diagnostic in `error` when non-null) if `value` does
/// not match the schema above. Lossless caveat: unwritten gauges are
/// not serialized in the first place, so they do not round-trip.
[[nodiscard]] std::optional<MetricSet> metrics_from_json(
    const JsonValue& value, std::string* error = nullptr);

/// A timer tree as the report's [{label, seconds, count, children}] list
/// (the synthetic root is skipped; its children are the top level).
[[nodiscard]] JsonValue timers_to_json(const TimerNode& root);

/// Assembler for one run's manifest.
class RunReport {
 public:
  static constexpr int kSchemaVersion = 1;
  static constexpr const char* kSchemaName = "zcopt-run-report";

  RunReport(std::string program, std::string description);

  /// Override the manifest's schema identity (default: zcopt-run-report
  /// v1). Derived report kinds — e.g. the check harness's
  /// `zcopt-check-report` v1 — keep the same top-level layout but
  /// declare their own schema so consumers can dispatch on it.
  void set_schema(std::string name, int version) {
    schema_name_ = std::move(name);
    schema_version_ = version;
  }

  void set_seed(std::uint64_t seed) { seed_ = seed; }

  /// Mutable config / bench-data sections (insertion-ordered objects).
  [[nodiscard]] JsonValue& config() { return config_; }
  [[nodiscard]] JsonValue& data() { return data_; }

  /// Semantic metrics (deterministic across thread counts).
  void set_metrics(const MetricSet& set) { metrics_ = set; }
  /// Runtime metrics (pool gauges etc.; excluded from determinism).
  void set_runtime(const MetricSet& set) { runtime_ = set; }
  void set_timers(const TimerNode& root) { timers_ = root; }

  /// Convenience: snapshot the global registry's metrics and timers.
  void capture_registry();

  [[nodiscard]] JsonValue to_json() const;
  void write(std::ostream& os) const;
  /// Creates/truncates `path`; false on I/O error.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::string program_;
  std::string description_;
  std::string schema_name_ = kSchemaName;
  int schema_version_ = kSchemaVersion;
  std::optional<std::uint64_t> seed_;
  JsonValue config_ = JsonValue::object();
  JsonValue data_ = JsonValue::object();
  MetricSet metrics_;
  MetricSet runtime_;
  TimerNode timers_;
};

}  // namespace zc::obs
