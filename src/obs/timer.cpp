#include "obs/timer.hpp"

#include "common/contract.hpp"
#include "obs/metrics.hpp"

namespace zc::obs {

namespace {

/// Enclosing timer labels on this thread, outermost first. Nesting of
/// ScopedTimer scopes is what builds the hierarchy; the stack is
/// thread-local so concurrent sections never interleave paths.
thread_local std::vector<std::string> t_timer_stack;

}  // namespace

TimerNode& TimerNode::child(const std::string& name) {
  for (TimerNode& c : children)
    if (c.label == name) return c;
  children.push_back(TimerNode{name, 0.0, 0, {}});
  return children.back();
}

const TimerNode* TimerNode::find(const std::string& name) const {
  for (const TimerNode& c : children)
    if (c.label == name) return &c;
  return nullptr;
}

ScopedTimer::ScopedTimer(std::string label) {
  if (!Registry::global().enabled()) return;
  ZC_EXPECTS(!label.empty());
  t_timer_stack.push_back(std::move(label));
  start_ = std::chrono::steady_clock::now();
  active_ = true;
}

void ScopedTimer::stop() {
  if (!active_) return;
  active_ = false;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Registry::global().record_timer(t_timer_stack, seconds);
  t_timer_stack.pop_back();
}

ScopedTimer::~ScopedTimer() { stop(); }

}  // namespace zc::obs
