#include "obs/report.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <utility>

namespace zc::obs {

#ifndef ZC_GIT_DESCRIBE
#define ZC_GIT_DESCRIBE "unknown"
#endif

const char* git_describe() noexcept { return ZC_GIT_DESCRIBE; }

JsonValue metrics_to_json(const MetricSet& set) {
  JsonValue out = JsonValue::object();
  JsonValue& counters = out["counters"];
  counters = JsonValue::object();
  for (const CounterCell& c : set.counters()) counters[c.name] = c.value;
  JsonValue& gauges = out["gauges"];
  gauges = JsonValue::object();
  for (const GaugeCell& g : set.gauges())
    if (g.written) gauges[g.name] = g.value;
  JsonValue& histograms = out["histograms"];
  histograms = JsonValue::object();
  for (const HistogramCell& h : set.histograms()) {
    JsonValue cell = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (const double b : h.bounds) bounds.push_back(b);
    JsonValue buckets = JsonValue::array();
    for (const std::uint64_t b : h.buckets) buckets.push_back(b);
    cell["bounds"] = std::move(bounds);
    cell["buckets"] = std::move(buckets);
    cell["sum"] = h.sum;
    cell["count"] = h.count;
    histograms[h.name] = std::move(cell);
  }
  return out;
}

namespace {

/// Shared failure path of metrics_from_json.
std::optional<MetricSet> from_json_fail(std::string* error,
                                        const std::string& message) {
  if (error != nullptr) *error = message;
  return std::nullopt;
}

}  // namespace

std::optional<MetricSet> metrics_from_json(const JsonValue& value,
                                           std::string* error) {
  if (!value.is_object())
    return from_json_fail(error, "metrics: expected an object");
  const JsonValue* counters = value.find("counters");
  const JsonValue* gauges = value.find("gauges");
  const JsonValue* histograms = value.find("histograms");
  if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
      !gauges->is_object() || histograms == nullptr ||
      !histograms->is_object()) {
    return from_json_fail(
        error, "metrics: missing counters/gauges/histograms objects");
  }

  MetricSet set;
  for (const auto& [name, cell] : counters->members()) {
    if (cell.kind() != JsonValue::Kind::number)
      return from_json_fail(error, "metrics: counter not a number: " + name);
    const double v = cell.as_number();
    if (v < 0.0 || v != std::floor(v))
      return from_json_fail(error,
                            "metrics: counter not a whole number: " + name);
    set.restore_counter(name, static_cast<std::uint64_t>(v));
  }
  for (const auto& [name, cell] : gauges->members()) {
    // Non-finite gauges serialize as null; restore them as NaN so a
    // re-emission degrades to null again.
    if (cell.kind() == JsonValue::Kind::null) {
      set.restore_gauge(name, std::numeric_limits<double>::quiet_NaN());
      continue;
    }
    if (cell.kind() != JsonValue::Kind::number)
      return from_json_fail(error, "metrics: gauge not a number: " + name);
    set.restore_gauge(name, cell.as_number());
  }
  for (const auto& [name, cell] : histograms->members()) {
    const JsonValue* bounds = cell.find("bounds");
    const JsonValue* buckets = cell.find("buckets");
    const JsonValue* sum = cell.find("sum");
    const JsonValue* count = cell.find("count");
    if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
        !buckets->is_array() || sum == nullptr || count == nullptr) {
      return from_json_fail(error, "metrics: malformed histogram: " + name);
    }
    if (buckets->size() != bounds->size() + 1)
      return from_json_fail(
          error, "metrics: histogram bucket/bound mismatch: " + name);
    std::vector<double> b(bounds->size());
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = bounds->element(i)->as_number();
    std::vector<std::uint64_t> k(buckets->size());
    for (std::size_t i = 0; i < k.size(); ++i) {
      const double v = buckets->element(i)->as_number();
      if (v < 0.0 || v != std::floor(v))
        return from_json_fail(
            error, "metrics: histogram bucket not a whole number: " + name);
      k[i] = static_cast<std::uint64_t>(v);
    }
    const double s =
        sum->kind() == JsonValue::Kind::null
            ? std::numeric_limits<double>::quiet_NaN()
            : sum->as_number();
    const double n = count->as_number();
    if (n < 0.0 || n != std::floor(n))
      return from_json_fail(
          error, "metrics: histogram count not a whole number: " + name);
    set.restore_histogram(name, std::move(b), std::move(k), s,
                          static_cast<std::uint64_t>(n));
  }
  return set;
}

namespace {

JsonValue timer_node_to_json(const TimerNode& node) {
  JsonValue out = JsonValue::object();
  out["label"] = node.label;
  out["seconds"] = node.seconds;
  out["count"] = node.count;
  JsonValue children = JsonValue::array();
  for (const TimerNode& c : node.children)
    children.push_back(timer_node_to_json(c));
  out["children"] = std::move(children);
  return out;
}

}  // namespace

JsonValue timers_to_json(const TimerNode& root) {
  JsonValue out = JsonValue::array();
  for (const TimerNode& c : root.children)
    out.push_back(timer_node_to_json(c));
  return out;
}

RunReport::RunReport(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void RunReport::capture_registry() {
  metrics_ = Registry::global().metrics_snapshot();
  timers_ = Registry::global().timers_snapshot();
}

JsonValue RunReport::to_json() const {
  JsonValue out = JsonValue::object();
  out["schema"] = schema_name_;
  out["schema_version"] = schema_version_;
  out["program"] = program_;
  out["description"] = description_;
  out["git"] = git_describe();
  if (seed_.has_value()) out["seed"] = *seed_;
  out["config"] = config_;
  out["data"] = data_;
  out["metrics"] = metrics_to_json(metrics_);
  out["runtime"] = metrics_to_json(runtime_);
  out["timers"] = timers_to_json(timers_);
  return out;
}

void RunReport::write(std::ostream& os) const {
  to_json().write(os);
  os << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  write(file);
  return static_cast<bool>(file);
}

}  // namespace zc::obs
