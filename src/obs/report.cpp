#include "obs/report.hpp"

#include <fstream>
#include <ostream>
#include <utility>

namespace zc::obs {

#ifndef ZC_GIT_DESCRIBE
#define ZC_GIT_DESCRIBE "unknown"
#endif

const char* git_describe() noexcept { return ZC_GIT_DESCRIBE; }

JsonValue metrics_to_json(const MetricSet& set) {
  JsonValue out = JsonValue::object();
  JsonValue& counters = out["counters"];
  counters = JsonValue::object();
  for (const CounterCell& c : set.counters()) counters[c.name] = c.value;
  JsonValue& gauges = out["gauges"];
  gauges = JsonValue::object();
  for (const GaugeCell& g : set.gauges())
    if (g.written) gauges[g.name] = g.value;
  JsonValue& histograms = out["histograms"];
  histograms = JsonValue::object();
  for (const HistogramCell& h : set.histograms()) {
    JsonValue cell = JsonValue::object();
    JsonValue bounds = JsonValue::array();
    for (const double b : h.bounds) bounds.push_back(b);
    JsonValue buckets = JsonValue::array();
    for (const std::uint64_t b : h.buckets) buckets.push_back(b);
    cell["bounds"] = std::move(bounds);
    cell["buckets"] = std::move(buckets);
    cell["sum"] = h.sum;
    cell["count"] = h.count;
    histograms[h.name] = std::move(cell);
  }
  return out;
}

namespace {

JsonValue timer_node_to_json(const TimerNode& node) {
  JsonValue out = JsonValue::object();
  out["label"] = node.label;
  out["seconds"] = node.seconds;
  out["count"] = node.count;
  JsonValue children = JsonValue::array();
  for (const TimerNode& c : node.children)
    children.push_back(timer_node_to_json(c));
  out["children"] = std::move(children);
  return out;
}

}  // namespace

JsonValue timers_to_json(const TimerNode& root) {
  JsonValue out = JsonValue::array();
  for (const TimerNode& c : root.children)
    out.push_back(timer_node_to_json(c));
  return out;
}

RunReport::RunReport(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void RunReport::capture_registry() {
  metrics_ = Registry::global().metrics_snapshot();
  timers_ = Registry::global().timers_snapshot();
}

JsonValue RunReport::to_json() const {
  JsonValue out = JsonValue::object();
  out["schema"] = kSchemaName;
  out["schema_version"] = kSchemaVersion;
  out["program"] = program_;
  out["description"] = description_;
  out["git"] = git_describe();
  if (seed_.has_value()) out["seed"] = *seed_;
  out["config"] = config_;
  out["data"] = data_;
  out["metrics"] = metrics_to_json(metrics_);
  out["runtime"] = metrics_to_json(runtime_);
  out["timers"] = timers_to_json(timers_);
  return out;
}

void RunReport::write(std::ostream& os) const {
  to_json().write(os);
  os << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  write(file);
  return static_cast<bool>(file);
}

}  // namespace zc::obs
