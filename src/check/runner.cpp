#include "check/runner.hpp"

#include <utility>

#include "check/shrink.hpp"
#include "exec/parallel.hpp"

namespace zc::check {

CheckResult run_check(const CheckOptions& opts) {
  CheckResult result;
  result.seed = opts.seed;
  result.cases = opts.cases;

  // One slot per case: workers never contend, and the serial harvest
  // below reads them in ascending index order regardless of which thread
  // produced them (chunk_size = 1 keeps one case per work unit).
  std::vector<std::vector<Violation>> slots(
      static_cast<std::size_t>(opts.cases));
  exec::ExecOptions exec_opts;
  exec_opts.threads = opts.threads;
  exec_opts.chunk_size = 1;
  exec::parallel_for(
      slots.size(),
      [&](std::size_t i) {
        slots[i] = check_case(
            fuzz_case(opts.seed, static_cast<std::uint64_t>(i)),
            opts.oracle);
      },
      exec_opts);

  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].empty()) continue;
    CheckFailure failure;
    failure.index = static_cast<std::uint64_t>(i);
    failure.recipe = fuzz_case(opts.seed, failure.index);
    failure.violations = std::move(slots[i]);
    result.violations += failure.violations.size();
    failure.minimal = failure.recipe;
    if (opts.shrink) {
      // Preserve the first (deterministically ordered) invariant.
      ShrinkResult shrunk = shrink_case(
          failure.recipe, failure.violations.front().invariant, opts.oracle);
      failure.minimal = std::move(shrunk.recipe);
      failure.shrunk_invariant = std::move(shrunk.invariant);
      failure.shrink_steps = shrunk.steps;
      failure.shrink_attempts = shrunk.attempts;
      result.shrink_steps += shrunk.steps;
    }
    result.failures.push_back(std::move(failure));
  }

  result.metrics.inc(result.metrics.counter("check.cases"), result.cases);
  result.metrics.inc(result.metrics.counter("check.violations"),
                     result.violations);
  result.metrics.inc(result.metrics.counter("check.shrink.steps"),
                     result.shrink_steps);
  return result;
}

obs::RunReport check_report(const CheckResult& result,
                            const CheckOptions& opts) {
  obs::RunReport report("zcopt_check",
                        "differential oracle & spec-fuzzing campaign");
  report.set_schema("zcopt-check-report", 1);
  report.set_seed(result.seed);
  report.config()["seed"] = result.seed;
  report.config()["cases"] = result.cases;
  report.config()["shrink"] = opts.shrink;
  report.config()["rel_tol"] = opts.oracle.rel_tol;
  report.config()["abs_tol"] = opts.oracle.abs_tol;
  report.config()["dist_tol"] = opts.oracle.dist_tol;
  report.config()["mc_ci_factor"] = opts.oracle.mc_ci_factor;

  report.data()["ok"] = result.ok();
  report.data()["violations"] = result.violations;
  obs::JsonValue failures = obs::JsonValue::array();
  for (const CheckFailure& failure : result.failures) {
    obs::JsonValue entry = obs::JsonValue::object();
    entry["index"] = failure.index;
    entry["case"] = failure.recipe.describe();
    obs::JsonValue violations = obs::JsonValue::array();
    for (const Violation& v : failure.violations) {
      obs::JsonValue cell = obs::JsonValue::object();
      cell["invariant"] = v.invariant;
      cell["detail"] = v.detail;
      violations.push_back(std::move(cell));
    }
    entry["violations"] = std::move(violations);
    entry["recipe"] = failure.recipe.to_json();
    entry["minimal"] = failure.minimal.to_json();
    if (!failure.shrunk_invariant.empty()) {
      entry["shrunk_invariant"] = failure.shrunk_invariant;
      entry["shrink_steps"] = failure.shrink_steps;
      entry["shrink_attempts"] = failure.shrink_attempts;
    }
    failures.push_back(std::move(entry));
  }
  report.data()["failures"] = std::move(failures);
  report.set_metrics(result.metrics);
  return report;
}

}  // namespace zc::check
