#pragma once

/// \file runner.hpp
/// Campaign driver for the check harness: enumerate fuzz cases, run the
/// differential oracle on each (in parallel), collect violations in
/// ascending case order, and shrink every failing case to a minimal
/// replayable reproducer.
///
/// Determinism contract: CheckResult — and the report derived from it —
/// is a pure function of (CheckOptions minus threads). Cases are
/// evaluated into per-index slots via exec::parallel_for (one case per
/// chunk) and harvested serially in index order; shrinking is serial;
/// the report carries no timers, runtime gauges, or thread counts. Same
/// seed and case count ⇒ byte-identical report at any thread setting.

#include <cstdint>
#include <vector>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace zc::check {

/// Knobs of one `zcopt_cli check` campaign.
struct CheckOptions {
  std::uint64_t seed = 1;    ///< master seed of the case stream
  std::uint64_t cases = 200; ///< fuzz cases to evaluate
  bool shrink = true;        ///< minimize failing cases
  unsigned threads = 0;      ///< 0 = hardware concurrency (results agnostic)
  OracleOptions oracle;      ///< tolerances + planted-bug hooks
};

/// One failing case with its minimal reproducer.
struct CheckFailure {
  std::uint64_t index = 0;            ///< case index under the master seed
  CaseRecipe recipe;                  ///< the case as fuzzed
  std::vector<Violation> violations;  ///< everything the oracle reported
  CaseRecipe minimal;                 ///< shrunken reproducer (== recipe
                                      ///< when shrinking is off)
  std::string shrunk_invariant;       ///< invariant the shrink preserved
  unsigned shrink_steps = 0;
  unsigned shrink_attempts = 0;
};

/// Outcome of a check campaign.
struct CheckResult {
  std::uint64_t seed = 0;
  std::uint64_t cases = 0;
  std::uint64_t violations = 0;    ///< total violations over all cases
  std::uint64_t shrink_steps = 0;  ///< accepted shrink moves, summed
  std::vector<CheckFailure> failures;
  /// Campaign counters: check.cases, check.violations, check.shrink.steps.
  obs::MetricSet metrics;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Run the campaign described by `opts`.
[[nodiscard]] CheckResult run_check(const CheckOptions& opts = {});

/// The campaign as a schema `zcopt-check-report` v1 manifest (RunReport
/// layout; config records seed/cases/shrink/tolerances — deliberately
/// not the thread count — and data lists each failure with the original
/// and minimal recipes as replayable JSON).
[[nodiscard]] obs::RunReport check_report(const CheckResult& result,
                                          const CheckOptions& opts);

}  // namespace zc::check
