#include "check/fuzz.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/contract.hpp"
#include "common/strings.hpp"
#include "exec/seeding.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/zeroconf_host.hpp"

namespace zc::check {

FuzzRng::FuzzRng(std::uint64_t seed, std::uint64_t index)
    : base_(exec::split_seed(seed, index)) {}

std::uint64_t FuzzRng::next_u64() {
  return exec::splitmix64(base_ + counter_++);
}

double FuzzRng::next_unit() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::size_t FuzzRng::pick(std::size_t bound) {
  ZC_EXPECTS(bound >= 1);
  return static_cast<std::size_t>(next_u64() % bound);
}

double FuzzRng::among(const std::vector<double>& menu) {
  ZC_EXPECTS(!menu.empty());
  return menu[pick(menu.size())];
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::none:
      return "none";
    case FaultKind::gilbert_elliott:
      return "gilbert-elliott";
    case FaultKind::blackout:
      return "blackout";
    case FaultKind::delay_spike:
      return "delay-spike";
    case FaultKind::duplication:
      return "duplication";
    case FaultKind::reordering:
      return "reordering";
    case FaultKind::host_churn:
      return "host-churn";
  }
  ZC_ASSERT(false);
  return "none";
}

bool fault_kind_from_string(const std::string& name, FaultKind& out) {
  for (int k = 0; k <= static_cast<int>(FaultKind::host_churn); ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (name == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

core::ProbeSchedule CaseRecipe::schedule() const {
  return core::ProbeSchedule::restore(family, n, r0, factor, step, timeouts);
}

faults::FaultSchedule CaseRecipe::fault_schedule() const {
  faults::FaultSchedule s;
  // Canonical per-class parameters: aggressive enough to perturb a run,
  // mild enough that fuzz cases stay fast (no permanent outage).
  switch (fault) {
    case FaultKind::none:
      break;
    case FaultKind::gilbert_elliott:
      s.gilbert_elliott = {0.2, 0.5, 0.05, 0.9};
      break;
    case FaultKind::blackout:
      s.blackout.windows = {0.5, 0.5, 4.0};
      break;
    case FaultKind::delay_spike:
      s.delay_spike.windows = {0.25, 1.0, 8.0};
      s.delay_spike.multiplier = 3.0;
      s.delay_spike.extra = 0.5;
      break;
    case FaultKind::duplication:
      s.duplication = {0.2, 2};
      break;
    case FaultKind::reordering:
      s.reordering = {0.3, 0.2};
      break;
    case FaultKind::host_churn:
      s.host_churn = {0.25, 8.0, 2.0};
      break;
  }
  return s;
}

engine::ExperimentSpec CaseRecipe::to_spec() const {
  engine::SpecBuilder builder(
      "check-" + std::to_string(seed) + "-" + std::to_string(index),
      scenario);
  builder.schedule(schedule());
  if (run_mc) {
    builder.estimator(engine::Estimator::monte_carlo)
        .trials(mc_trials)
        .seed(exec::split_seed(seed, index))
        .network(mc_space, mc_hosts)
        .faults(fault_schedule());
  }
  return builder.build();
}

obs::JsonValue CaseRecipe::to_json() const {
  obs::JsonValue out = obs::JsonValue::object();
  out["seed"] = seed;
  out["index"] = index;
  out["q"] = scenario.q;
  out["c"] = scenario.probe_cost;
  out["E"] = scenario.error_cost;
  out["loss"] = scenario.loss;
  out["lambda"] = scenario.lambda;
  out["d"] = scenario.round_trip;
  out["family"] = core::to_string(family);
  out["n"] = n;
  out["r0"] = r0;
  out["factor"] = factor;
  out["step"] = step;
  obs::JsonValue t = obs::JsonValue::array();
  for (const double v : timeouts) t.push_back(v);
  out["timeouts"] = std::move(t);
  out["fault"] = to_string(fault);
  out["run_mc"] = run_mc;
  out["mc_trials"] = mc_trials;
  out["mc_space"] = mc_space;
  out["mc_hosts"] = mc_hosts;
  return out;
}

namespace {

bool recipe_fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = "CaseRecipe." + message;
  return false;
}

const obs::JsonValue* need_number(const obs::JsonValue& value,
                                  const std::string& key) {
  const obs::JsonValue* cell = value.find(key);
  if (cell == nullptr || cell->kind() != obs::JsonValue::Kind::number)
    return nullptr;
  return cell;
}

}  // namespace

bool CaseRecipe::from_json(const obs::JsonValue& value, CaseRecipe& out,
                           std::string* error) {
  if (!value.is_object()) {
    if (error != nullptr) *error = "CaseRecipe: expected an object";
    return false;
  }
  CaseRecipe rec;
  const struct {
    const char* key;
    double* target;
  } numbers[] = {
      {"q", &rec.scenario.q},          {"c", &rec.scenario.probe_cost},
      {"E", &rec.scenario.error_cost}, {"loss", &rec.scenario.loss},
      {"lambda", &rec.scenario.lambda}, {"d", &rec.scenario.round_trip},
      {"r0", &rec.r0},                 {"factor", &rec.factor},
      {"step", &rec.step},
  };
  for (const auto& field : numbers) {
    const obs::JsonValue* cell = need_number(value, field.key);
    if (cell == nullptr)
      return recipe_fail(error, std::string(field.key) + " must be a number");
    *field.target = cell->as_number();
  }
  const struct {
    const char* key;
    std::uint64_t* target;
  } counters[] = {{"seed", &rec.seed}, {"index", &rec.index}};
  for (const auto& field : counters) {
    const obs::JsonValue* cell = need_number(value, field.key);
    if (cell == nullptr || cell->as_number() < 0.0)
      return recipe_fail(error, std::string(field.key) +
                                    " must be a non-negative number");
    *field.target = static_cast<std::uint64_t>(cell->as_number());
  }
  const obs::JsonValue* n_cell = need_number(value, "n");
  if (n_cell == nullptr || n_cell->as_number() < 0.0)
    return recipe_fail(error, "n must be a non-negative number");
  rec.n = static_cast<unsigned>(n_cell->as_number());

  const obs::JsonValue* family = value.find("family");
  if (family == nullptr ||
      family->kind() != obs::JsonValue::Kind::string ||
      !core::schedule_family_from_string(family->as_string(), rec.family))
    return recipe_fail(error, "family must name a schedule family");
  const obs::JsonValue* fault = value.find("fault");
  if (fault == nullptr || fault->kind() != obs::JsonValue::Kind::string ||
      !fault_kind_from_string(fault->as_string(), rec.fault))
    return recipe_fail(error, "fault must name a fault kind");

  const obs::JsonValue* t = value.find("timeouts");
  if (t == nullptr || !t->is_array())
    return recipe_fail(error, "timeouts must be an array");
  rec.timeouts.reserve(t->size());
  for (std::size_t i = 0; i < t->size(); ++i) {
    const obs::JsonValue* cell = t->element(i);
    if (cell == nullptr || cell->kind() != obs::JsonValue::Kind::number)
      return recipe_fail(error, "timeouts[" + std::to_string(i + 1) +
                                    "] must be a number");
    rec.timeouts.push_back(cell->as_number());
  }

  const obs::JsonValue* run_mc = value.find("run_mc");
  if (run_mc == nullptr ||
      (run_mc->kind() != obs::JsonValue::Kind::boolean))
    return recipe_fail(error, "run_mc must be a boolean");
  rec.run_mc = run_mc->as_bool();
  const struct {
    const char* key;
    unsigned* target;
  } mc[] = {{"mc_space", &rec.mc_space}, {"mc_hosts", &rec.mc_hosts}};
  for (const auto& field : mc) {
    const obs::JsonValue* cell = need_number(value, field.key);
    if (cell == nullptr || cell->as_number() < 0.0)
      return recipe_fail(error, std::string(field.key) +
                                    " must be a non-negative number");
    *field.target = static_cast<unsigned>(cell->as_number());
  }
  const obs::JsonValue* trials = need_number(value, "mc_trials");
  if (trials == nullptr || trials->as_number() < 0.0)
    return recipe_fail(error, "mc_trials must be a non-negative number");
  rec.mc_trials = static_cast<std::uint32_t>(trials->as_number());

  out = std::move(rec);
  return true;
}

std::string CaseRecipe::describe() const {
  std::ostringstream os;
  os << "case(seed=" << seed << ", index=" << index << "): q=" << format_sig(scenario.q, 4)
     << ", c=" << format_sig(scenario.probe_cost, 4)
     << ", E=" << format_sig(scenario.error_cost, 4)
     << ", loss=" << format_sig(scenario.loss, 4)
     << ", lambda=" << format_sig(scenario.lambda, 4)
     << ", d=" << format_sig(scenario.round_trip, 4) << ", "
     << schedule().describe() << ", fault=" << to_string(fault);
  if (run_mc)
    os << ", mc(trials=" << mc_trials << ", space=" << mc_space
       << ", hosts=" << mc_hosts << ")";
  return os.str();
}

CaseRecipe fuzz_case(std::uint64_t seed, std::uint64_t index) {
  FuzzRng rng(seed, index);
  CaseRecipe rec;
  rec.seed = seed;
  rec.index = index;

  // Boundary-biased scenario knobs: the menus repeat the paper's values
  // next to the domain edges (q -> 0, E = 0, heavy loss, slow replies).
  core::ExponentialScenario& sc = rec.scenario;
  sc.q = rng.among({1e-12, 1e-6, 1000.0 / 65024.0, 0.1, 0.25, 0.5, 0.9});
  sc.probe_cost = rng.among({0.0, 1.0, 2.0, 10.0});
  sc.error_cost = rng.among({0.0, 1.0, 30.0, 1e6, 1e35});
  sc.loss = rng.among({0.0, 1e-15, 1e-3, 0.1, 0.5});
  sc.lambda = rng.among({0.1, 1.0, 10.0, 100.0});
  sc.round_trip = rng.among({0.0, 0.05, 1.0});

  // Schedule: n biased toward the n = 1 boundary, r0 toward the
  // allow_zero_r limit; geometric repeats the neutral factor = 1 and
  // linear the neutral step = 0 so the bit-equality invariant is hit
  // constantly, custom mixes magnitudes across nine decades.
  const std::size_t n_menu[] = {1, 1, 1, 2, 3, 4, 5, 8, 16, 32};
  rec.n = static_cast<unsigned>(n_menu[rng.pick(std::size(n_menu))]);
  rec.r0 = rng.among({1e-9, 1e-3, 0.2, 2.0, 10.0});
  rec.family = static_cast<core::ScheduleFamily>(rng.pick(4));
  switch (rec.family) {
    case core::ScheduleFamily::uniform:
      break;
    case core::ScheduleFamily::geometric:
      rec.factor = rng.among({0.5, 1.0, 1.0, 1.25, 2.0});
      break;
    case core::ScheduleFamily::linear:
      rec.step = rng.among(
          {0.0, 0.0, rec.r0 / 4.0,
           rec.n > 1 ? -rec.r0 / (2.0 * rec.n) : 0.0});
      break;
    case core::ScheduleFamily::custom: {
      const bool constant = rng.pick(4) == 0;
      for (unsigned i = 0; i < rec.n; ++i)
        rec.timeouts.push_back(
            constant ? rec.r0 : rng.among({1e-9, 1e-3, 0.2, 2.0, 10.0}));
      break;
    }
  }

  rec.fault = static_cast<FaultKind>(
      rng.pick(static_cast<std::size_t>(FaultKind::host_churn) + 1));

  // Every 8th case cross-validates against simulation. The knobs are
  // re-pinned to a regime where collisions are measurable in ~2k trials
  // (exaggerated occupancy + loss, like the model-vs-sim tests), and
  // q is hosts/space *exactly* so the analytic model describes the
  // simulated segment with no modelling gap.
  if (index % 8 == 7) {
    rec.run_mc = true;
    rec.mc_space = 128;
    rec.mc_hosts = static_cast<unsigned>(16 + 16 * rng.pick(4));
    sc.q = static_cast<double>(rec.mc_hosts) /
           static_cast<double>(rec.mc_space);
    sc.probe_cost = 2.0;
    sc.error_cost = rng.among({0.0, 1.0, 30.0});
    sc.loss = rng.among({0.3, 0.5});
    sc.lambda = 10.0;
    sc.round_trip = 0.05;
    rec.n = static_cast<unsigned>(1 + rng.pick(4));
    rec.r0 = rng.among({0.05, 0.1, 0.2, 0.3});
    rec.mc_trials = static_cast<std::uint32_t>(1024 + 512 * rng.pick(3));
    switch (rec.family) {
      case core::ScheduleFamily::uniform:
        break;
      case core::ScheduleFamily::geometric:
        rec.factor = rng.among({0.8, 1.0, 1.25});
        break;
      case core::ScheduleFamily::linear:
        rec.step = rng.among({0.0, rec.r0 / 4.0});
        break;
      case core::ScheduleFamily::custom: {
        rec.timeouts.clear();
        for (unsigned i = 0; i < rec.n; ++i)
          rec.timeouts.push_back(rng.among({0.05, 0.1, 0.2, 0.3}));
        break;
      }
    }
  }
  return rec;
}

InvalidCase fuzz_invalid_case(std::uint64_t seed, std::uint64_t index) {
  FuzzRng rng(seed, ~index);  // distinct stream from the valid cases
  // Deterministically-random offending magnitudes: a strictly negative
  // value, a NaN every fourth draw, and an out-of-unit probability.
  const double negative = -(1e-6 + rng.next_unit() * 100.0);
  const double bad_value =
      rng.pick(4) == 0 ? std::numeric_limits<double>::quiet_NaN() : negative;
  const double above_one = 1.0 + 1e-6 + rng.next_unit() * 10.0;
  const unsigned n = static_cast<unsigned>(1 + rng.pick(8));
  const double r = 0.1 + rng.next_unit() * 4.0;
  const auto scenario = [] { return core::ExponentialScenario{}.to_params(); };

  switch (index % kInvalidCaseShapes) {
    case 0:
      return {"ProtocolParams", "ProtocolParams.n",
              [r] { core::ProtocolParams{0, r}.validate(); }};
    case 1:
      return {"ProtocolParams", "ProtocolParams.r",
              [n, negative] { core::ProtocolParams{n, negative}.validate(); }};
    case 2:
      return {"ProtocolParams", "ProtocolParams.r", [n] {
                core::ProtocolParams{
                    n, std::numeric_limits<double>::quiet_NaN()}
                    .validate();
              }};
    case 3:
      return {"ProbeSchedule", "ProbeSchedule.r", [n, bad_value] {
                core::ProbeSchedule::uniform(n, bad_value).validate();
              }};
    case 4:
      return {"ProbeSchedule", "ProbeSchedule.n",
              [r] { core::ProbeSchedule::uniform(0, r).validate(); }};
    case 5:
      return {"ProbeSchedule", "ProbeSchedule.factor", [n, r, bad_value] {
                core::ProbeSchedule::geometric(n, r, bad_value).validate();
              }};
    case 6:
      return {"ProbeSchedule", "ProbeSchedule.step", [n, r] {
                core::ProbeSchedule::linear(
                    n, r, std::numeric_limits<double>::quiet_NaN())
                    .validate();
              }};
    case 7:
      return {"ProbeSchedule", "ProbeSchedule.timeouts[", [r, negative] {
                core::ProbeSchedule::from_timeouts({r, negative, r})
                    .validate();
              }};
    case 8:
      return {"ZeroconfConfig", "ZeroconfConfig.probe_wait_max",
              [negative] {
                sim::ZeroconfConfig config;
                config.probe_wait_max = negative;
                config.validate();
              }};
    case 9:
      return {"ZeroconfConfig", "ZeroconfConfig.rate_limit_threshold", [] {
                sim::ZeroconfConfig config;
                config.rate_limit_threshold = 0;
                config.validate();
              }};
    case 10:
      return {"FaultSchedule", "GilbertElliott.p_enter_burst", [above_one] {
                faults::FaultSchedule s;
                s.gilbert_elliott.p_enter_burst = above_one;
                s.validate();
              }};
    case 11:
      return {"FaultSchedule", "DelaySpike.multiplier", [] {
                faults::FaultSchedule s;
                s.delay_spike.windows = {0.0, 1.0, 0.0};
                s.delay_spike.multiplier = 0.5;
                s.validate();
              }};
    case 12:
      return {"FaultSchedule", "Duplication.copies", [] {
                faults::FaultSchedule s;
                s.duplication.probability = 0.5;
                s.duplication.copies = 1;
                s.validate();
              }};
    case 13:
      return {"FaultSchedule", "Reordering.max_jitter", [] {
                faults::FaultSchedule s;
                s.reordering.probability = 0.5;
                s.reordering.max_jitter = 0.0;
                s.validate();
              }};
    case 14:
      return {"FaultSchedule", "HostChurn.deaf_fraction", [above_one] {
                faults::FaultSchedule s;
                s.host_churn.deaf_fraction = above_one;
                s.validate();
              }};
    case 15:
      return {"MonteCarloOptions", "MonteCarloOptions.trials", [] {
                sim::MonteCarloOptions opts;
                opts.trials = 0;
                opts.validate();
              }};
    case 16:
      return {"MonteCarloOptions", "MonteCarloOptions.precision.min_trials",
              [] {
                sim::MonteCarloOptions opts;
                opts.precision.min_trials = 2000;
                opts.precision.max_trials = 100;
                opts.validate();
              }};
    case 17:
    default:
      return {"ExperimentSpec", "ExperimentSpec.name", [scenario] {
                engine::ExperimentSpec spec("", scenario());
                spec.grid.push_back({4, 2.0});
                spec.validate();
              }};
  }
}

}  // namespace zc::check
