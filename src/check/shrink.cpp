#include "check/shrink.hpp"

#include <algorithm>
#include <functional>
#include <vector>

namespace zc::check {

bool reproduces(const CaseRecipe& recipe, const std::string& invariant,
                const OracleOptions& opts) {
  for (const Violation& v : check_case(recipe, opts))
    if (v.invariant == invariant) return true;
  return false;
}

namespace {

struct Transformation {
  const char* name;
  std::function<bool(const CaseRecipe&)> applicable;
  std::function<void(CaseRecipe&)> apply;
};

/// The shrink moves, most-semantic first: each strictly simplifies the
/// recipe, so a greedy pass over the list terminates (every acceptance
/// reduces a well-founded measure, and inapplicable moves are skipped).
std::vector<Transformation> moves(const std::string& invariant) {
  const bool keep_mc = invariant.rfind("mc.", 0) == 0;
  std::vector<Transformation> out;
  out.push_back({"drop-fault",
                 [](const CaseRecipe& r) { return r.fault != FaultKind::none; },
                 [](CaseRecipe& r) { r.fault = FaultKind::none; }});
  if (!keep_mc)
    out.push_back({"drop-monte-carlo",
                   [](const CaseRecipe& r) { return r.run_mc; },
                   [](CaseRecipe& r) {
                     r.run_mc = false;
                     r.mc_trials = 0;
                     r.mc_space = 0;
                     r.mc_hosts = 0;
                   }});
  out.push_back(
      {"collapse-to-uniform",
       [](const CaseRecipe& r) {
         return r.family != core::ScheduleFamily::uniform;
       },
       [](CaseRecipe& r) {
         if (r.family == core::ScheduleFamily::custom && !r.timeouts.empty())
           r.r0 = r.timeouts.front();
         r.family = core::ScheduleFamily::uniform;
         r.factor = 1.0;
         r.step = 0.0;
         r.timeouts.clear();
       }});
  out.push_back({"halve-n",
                 [](const CaseRecipe& r) { return r.n > 1; },
                 [](CaseRecipe& r) {
                   r.n = std::max(1u, r.n / 2);
                   if (r.family == core::ScheduleFamily::custom)
                     r.timeouts.resize(r.n);
                 }});
  out.push_back({"halve-trials",
                 [](const CaseRecipe& r) {
                   return r.run_mc && r.mc_trials > 256;
                 },
                 [](CaseRecipe& r) {
                   r.mc_trials = std::max<std::uint32_t>(256, r.mc_trials / 2);
                 }});
  // Scenario knobs back to ExponentialScenario defaults, one at a time
  // (resetting q under an MC block usually breaks the hosts/space pin and
  // is rejected by the reproduction check — that is the intended guard).
  const core::ExponentialScenario defaults{};
  const struct {
    const char* name;
    double core::ExponentialScenario::* field;
  } knobs[] = {
      {"reset-q", &core::ExponentialScenario::q},
      {"reset-probe-cost", &core::ExponentialScenario::probe_cost},
      {"reset-error-cost", &core::ExponentialScenario::error_cost},
      {"reset-loss", &core::ExponentialScenario::loss},
      {"reset-lambda", &core::ExponentialScenario::lambda},
      {"reset-round-trip", &core::ExponentialScenario::round_trip},
  };
  for (const auto& knob : knobs) {
    const double target = defaults.*(knob.field);
    auto field = knob.field;
    const bool is_q = field == &core::ExponentialScenario::q;
    out.push_back({knob.name,
                   [field, target, is_q](const CaseRecipe& r) {
                     // q is pinned to hosts/space while the MC block is
                     // live: resetting it would leave the analytic model
                     // describing a different segment than the one being
                     // simulated, turning the reproducer into a trivial
                     // q-mismatch instead of the original failure.
                     if (is_q && r.run_mc) return false;
                     return r.scenario.*field != target;
                   },
                   [field, target](CaseRecipe& r) {
                     r.scenario.*field = target;
                   }});
  }
  out.push_back({"reset-r0",
                 [](const CaseRecipe& r) {
                   return r.family != core::ScheduleFamily::custom &&
                          r.r0 != 2.0;
                 },
                 [](CaseRecipe& r) { r.r0 = 2.0; }});
  out.push_back({"reset-factor",
                 [](const CaseRecipe& r) {
                   return r.family == core::ScheduleFamily::geometric &&
                          r.factor != 1.0;
                 },
                 [](CaseRecipe& r) { r.factor = 1.0; }});
  out.push_back({"reset-step",
                 [](const CaseRecipe& r) {
                   return r.family == core::ScheduleFamily::linear &&
                          r.step != 0.0;
                 },
                 [](CaseRecipe& r) { r.step = 0.0; }});
  return out;
}

}  // namespace

ShrinkResult shrink_case(const CaseRecipe& failing,
                         const std::string& invariant,
                         const OracleOptions& opts) {
  ShrinkResult result{failing, invariant, 0, 1};
  if (!reproduces(failing, invariant, opts)) return result;

  const std::vector<Transformation> ordered = moves(invariant);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const Transformation& move : ordered) {
      // Re-apply a move for as long as it keeps reproducing (halving
      // steps want repetition; idempotent moves pass `applicable` once).
      while (move.applicable(result.recipe)) {
        CaseRecipe candidate = result.recipe;
        move.apply(candidate);
        ++result.attempts;
        if (!reproduces(candidate, invariant, opts)) break;
        result.recipe = std::move(candidate);
        ++result.steps;
        progressed = true;
      }
    }
  }
  return result;
}

}  // namespace zc::check
