#pragma once

/// \file fuzz.hpp
/// Deterministic spec fuzzer for the differential oracle (oracle.hpp).
///
/// Case `index` of master seed `s` is a pure function of (s, index): the
/// generator draws from a splitmix64 counter stream seeded with
/// exec::split_seed(s, index) — the same construction the Monte-Carlo
/// campaigns use for per-trial seeds — so a fuzz campaign enumerates the
/// identical cases at any thread count and any chunking, and any single
/// case replays from its (seed, index) pair alone.
///
/// Two streams:
///  - `fuzz_case`: boundary-biased *valid* cases (n = 1, timeouts near
///    the allow_zero_r limit, extreme q / E / loss, neutral-shape and
///    custom schedules, every fault class) for the oracle's metamorphic
///    and cross-estimator invariants;
///  - `fuzz_invalid_case`: deliberately *invalid* objects cycling every
///    public validate() (ProtocolParams, ProbeSchedule, ZeroconfConfig,
///    FaultSchedule, MonteCarloOptions, ExperimentSpec), each of which
///    must throw zc::ContractViolation naming the offending field.
///
/// `CaseRecipe` — not engine::ExperimentSpec — is the replayable unit:
/// a spec holds a non-serializable shared_ptr<DelayDistribution>, while
/// the recipe is plain data that round-trips through JSON bit-exactly
/// (%.17g doubles), which is what the auto-shrinker emits as a
/// reproducer.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/schedule.hpp"
#include "engine/spec.hpp"
#include "faults/schedule.hpp"
#include "obs/json.hpp"

namespace zc::check {

/// Counter-based deterministic RNG: draw k of case (seed, index) is
/// splitmix64(case_seed + k) — stateless apart from the counter, so the
/// stream never depends on evaluation order elsewhere.
class FuzzRng {
 public:
  FuzzRng(std::uint64_t seed, std::uint64_t index);

  [[nodiscard]] std::uint64_t next_u64();
  /// Uniform in [0, 1), 53-bit resolution.
  [[nodiscard]] double next_unit();
  /// Uniform in [0, bound); bound >= 1.
  [[nodiscard]] std::size_t pick(std::size_t bound);
  /// One element of a non-empty menu (boundary-biased choices are
  /// spelled as menus with the boundary values repeated).
  [[nodiscard]] double among(const std::vector<double>& menu);

 private:
  std::uint64_t base_;
  std::uint64_t counter_ = 0;
};

/// The single fault class a fuzz case injects (one per case keeps the
/// shrinker's "drop faults" step a single transformation).
enum class FaultKind : std::uint8_t {
  none,
  gilbert_elliott,
  blackout,
  delay_spike,
  duplication,
  reordering,
  host_churn,
};

/// Stable lowercase name ("none", "gilbert-elliott", ...), matching
/// faults::FaultSchedule::summary vocabulary.
[[nodiscard]] const char* to_string(FaultKind kind);
/// Parse a name as emitted by `to_string`; false on unknown (out
/// untouched).
[[nodiscard]] bool fault_kind_from_string(const std::string& name,
                                          FaultKind& out);

/// Replayable description of one oracle case: scenario knobs, one
/// schedule cell, at most one fault class, and the optional Monte-Carlo
/// cross-validation block.
struct CaseRecipe {
  std::uint64_t seed = 0;   ///< master seed the case was drawn from
  std::uint64_t index = 0;  ///< case counter under that seed

  core::ExponentialScenario scenario{};

  /// Schedule recipe (core::ProbeSchedule::restore arguments).
  core::ScheduleFamily family = core::ScheduleFamily::uniform;
  unsigned n = 4;
  double r0 = 2.0;
  double factor = 1.0;  ///< geometric ratio
  double step = 0.0;    ///< linear increment
  std::vector<double> timeouts;  ///< custom family only

  FaultKind fault = FaultKind::none;

  /// Monte-Carlo block: when `run_mc`, the oracle simulates
  /// `mc_trials` trials on an `mc_space`-address segment with
  /// `mc_hosts` occupants (the fuzzer pins scenario.q = hosts/space so
  /// the analytic model describes the simulated segment exactly).
  bool run_mc = false;
  std::uint32_t mc_trials = 0;
  unsigned mc_space = 0;
  unsigned mc_hosts = 0;

  /// Materialize the schedule from its recipe (bitwise-deterministic).
  [[nodiscard]] core::ProbeSchedule schedule() const;
  /// Canonical fault-schedule parameters for `fault`.
  [[nodiscard]] faults::FaultSchedule fault_schedule() const;
  /// The case viewed as an engine spec (one schedule cell; Monte-Carlo
  /// estimator when `run_mc`): what `zcopt_cli check` quarantine-tests
  /// and the engine-level oracle checks run against.
  [[nodiscard]] engine::ExperimentSpec to_spec() const;

  /// Flat JSON object; doubles in round-trip precision, so
  /// `from_json(to_json())` reproduces the recipe bit-exactly.
  [[nodiscard]] obs::JsonValue to_json() const;
  /// False (with a field-naming diagnostic in `error` when non-null) on
  /// malformed input; `out` untouched then.
  [[nodiscard]] static bool from_json(const obs::JsonValue& value,
                                      CaseRecipe& out,
                                      std::string* error = nullptr);

  /// One-line human rendering for logs and violation reports.
  [[nodiscard]] std::string describe() const;
};

/// Case `index` of master seed `seed`: a valid, boundary-biased recipe.
/// Every 8th case carries the Monte-Carlo block (with knobs constrained
/// to a regime where collisions are measurable in ~2k trials).
[[nodiscard]] CaseRecipe fuzz_case(std::uint64_t seed, std::uint64_t index);

/// One deliberately invalid object: `trigger()` must throw
/// zc::ContractViolation whose message contains `field`.
struct InvalidCase {
  std::string target;  ///< which validate() ("ProtocolParams", ...)
  std::string field;   ///< field name the message must contain
  std::function<void()> trigger;
};

/// Number of distinct invalid-case shapes `fuzz_invalid_case` cycles
/// through; indices [0, kInvalidCaseShapes) cover every public
/// validate() at least once.
inline constexpr std::uint64_t kInvalidCaseShapes = 18;

/// Invalid case `index` of master seed `seed`: shape index % 18 with
/// randomized (but deterministic) offending magnitudes.
[[nodiscard]] InvalidCase fuzz_invalid_case(std::uint64_t seed,
                                            std::uint64_t index);

}  // namespace zc::check
