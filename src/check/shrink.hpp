#pragma once

/// \file shrink.hpp
/// Deterministic greedy auto-shrinker: given a CaseRecipe on which the
/// oracle reports a violation, produce a (locally) minimal recipe that
/// still violates the *same* invariant. Minimization is a fixed, ordered
/// list of semantic transformations — drop the fault, drop the
/// Monte-Carlo block, collapse the schedule to uniform, halve n, halve
/// the trial count, reset scenario knobs to their defaults — applied
/// greedily to a fixpoint; a transformation is kept only when the
/// shrunken case reproduces the original invariant. Everything is a pure
/// function of (recipe, invariant, opts), so the emitted reproducer is
/// byte-stable across runs and thread counts.

#include <string>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"

namespace zc::check {

/// Outcome of minimizing one failing case.
struct ShrinkResult {
  CaseRecipe recipe;      ///< the minimal reproducer
  std::string invariant;  ///< the preserved invariant name
  unsigned steps = 0;     ///< accepted transformations
  unsigned attempts = 0;  ///< oracle evaluations spent
};

/// True when `check_case(recipe, opts)` still reports a violation of
/// `invariant` (the shrinker's acceptance predicate).
[[nodiscard]] bool reproduces(const CaseRecipe& recipe,
                              const std::string& invariant,
                              const OracleOptions& opts = {});

/// Greedily minimize `failing` while preserving a violation of
/// `invariant`. If the input does not reproduce at all (e.g. a stale
/// report), it is returned unchanged with steps = 0.
[[nodiscard]] ShrinkResult shrink_case(const CaseRecipe& failing,
                                       const std::string& invariant,
                                       const OracleOptions& opts = {});

}  // namespace zc::check
