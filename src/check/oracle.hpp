#pragma once

/// \file oracle.hpp
/// Differential oracle: evaluates one fuzz case through every estimation
/// path the repo has — closed-form analytic (Eq. 3/4), the DRM linear
/// systems, the exact CostDistribution lattice, the amortized CostSurface
/// columns, and (when the case carries a Monte-Carlo block) protocol-
/// faithful simulation — and checks that they agree where they must:
///
///  - cross-estimator: analytic vs DRM mean cost / collision probability
///    / variance within (abs_tol, rel_tol); CostDistribution moments vs
///    the closed forms when the truncated tail is negligible; Monte-Carlo
///    CIs contain the analytic values for fault-free cases;
///  - metamorphic: pi-ladder starts at 1, stays in [0, 1], is
///    non-increasing; collision probability is monotone non-increasing
///    in n; variance is non-negative; quantiles are monotone in p;
///  - bitwise: CostSurface columns reproduce the pointwise evaluators
///    exactly, and neutral-shape schedules (geometric factor = 1, linear
///    step = 0, constant custom) are bit-equal to uniform;
///  - domain: probabilities in [0, 1], means finite and non-negative,
///    distribution mass accounts for 1, log-domain collision probability
///    matches the linear-domain one where both are representable.
///
/// The hooks in OracleOptions are the planted-bug seam: tests substitute
/// a deliberately wrong evaluator and assert the oracle flags it (and
/// that the shrinker then minimizes the offending case).

#include <functional>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "core/params.hpp"
#include "core/schedule.hpp"

namespace zc::check {

/// One invariant breach: `invariant` is a stable dotted name (e.g.
/// "analytic.vs_drm.mean_cost"), `detail` the human-readable numbers.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Oracle knobs. Defaults match the repo's cross-validation conventions
/// (model_vs_sim tolerances for the Monte-Carlo containment checks).
struct OracleOptions {
  /// Cross-estimator agreement: |a - b| <= abs_tol + rel_tol*max(|a|,|b|).
  double rel_tol = 1e-6;
  double abs_tol = 1e-12;
  /// CostDistribution collision probability vs Eq. (4), on top of the
  /// truncated tail.
  double dist_tol = 1e-6;
  /// Truncated-tail ceiling below which distribution *moments* are
  /// compared against the closed forms (tail mass times an unbounded
  /// per-cell cost can distort moments arbitrarily).
  double dist_tail_ceiling = 1e-9;
  /// Monte-Carlo mean-cost containment: |analytic - mc| <=
  /// mc_ci_factor * ci95_halfwidth + 1e-9 (the model_vs_sim convention).
  double mc_ci_factor = 4.0;

  /// Candidate evaluators under test; null = the production closed forms
  /// (core::mean_cost / core::error_probability). Substituted by the
  /// planted-bug tests.
  std::function<double(const core::ScenarioParams&,
                       const core::ProbeSchedule&)>
      mean_cost_hook;
  std::function<double(const core::ScenarioParams&,
                       const core::ProbeSchedule&)>
      error_probability_hook;
};

/// Run every applicable invariant on one case; empty result = case
/// passes. Violations are emitted in a fixed deterministic order, and the
/// whole evaluation is a pure function of (recipe, opts) — Monte-Carlo
/// runs use the recipe's counter-derived seed on one thread.
[[nodiscard]] std::vector<Violation> check_case(const CaseRecipe& recipe,
                                                const OracleOptions& opts = {});

}  // namespace zc::check
