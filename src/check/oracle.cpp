#include "check/oracle.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/contract.hpp"
#include "common/strings.hpp"
#include "core/cost.hpp"
#include "core/cost_surface.hpp"
#include "core/distribution.hpp"
#include "core/drm.hpp"
#include "core/no_answer.hpp"
#include "core/reliability.hpp"
#include "exec/seeding.hpp"
#include "prob/delay.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/zeroconf_host.hpp"

namespace zc::check {

namespace {

/// The fixed evaluation order makes reports byte-stable: every violation
/// a case produces appears in the order the invariants are listed here.
class Recorder {
 public:
  explicit Recorder(std::vector<Violation>& out) : out_(out) {}

  void fail(std::string invariant, std::string detail) {
    out_.push_back({std::move(invariant), std::move(detail)});
  }

  /// |a - b| <= abs + rel * max(|a|, |b|); NaN on either side fails.
  void expect_close(const std::string& invariant, const char* name_a,
                    double a, const char* name_b, double b, double rel,
                    double abs) {
    const double scale = std::max(std::fabs(a), std::fabs(b));
    const double tol = abs + rel * scale;
    if (std::fabs(a - b) <= tol) return;  // NaN falls through
    std::ostringstream os;
    os << name_a << "=" << format_sig(a, 17) << " " << name_b << "="
       << format_sig(b, 17) << " |diff|=" << format_sig(std::fabs(a - b), 6)
       << " tol=" << format_sig(tol, 6);
    fail(invariant, os.str());
  }

  void expect_bitwise(const std::string& invariant, const char* name_a,
                      double a, const char* name_b, double b) {
    if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b))
      return;
    std::ostringstream os;
    os << name_a << "=" << format_sig(a, 17) << " " << name_b << "="
       << format_sig(b, 17) << " (bitwise mismatch)";
    fail(invariant, os.str());
  }

  void expect(const std::string& invariant, bool ok, std::string detail) {
    if (!ok) fail(invariant, std::move(detail));
  }

 private:
  std::vector<Violation>& out_;
};

double kahan_sum(const std::vector<double>& values) {
  double sum = 0.0, comp = 0.0;
  for (const double v : values) {
    const double y = v - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

std::string num(double v) { return format_sig(v, 17); }

/// Same-family schedule with one more probe; appending any positive
/// timeout can only lower pi_n, hence the collision probability.
core::ProbeSchedule extend_by_one(const CaseRecipe& rec) {
  switch (rec.family) {
    case core::ScheduleFamily::uniform:
      return core::ProbeSchedule::uniform(rec.n + 1, rec.r0);
    case core::ScheduleFamily::geometric:
      return core::ProbeSchedule::geometric(rec.n + 1, rec.r0, rec.factor);
    case core::ScheduleFamily::linear:
      return core::ProbeSchedule::linear(rec.n + 1, rec.r0, rec.step);
    case core::ScheduleFamily::custom: {
      std::vector<double> t = rec.timeouts;
      t.push_back(t.back());
      return core::ProbeSchedule::from_timeouts(std::move(t));
    }
  }
  ZC_ASSERT(false);
  return core::ProbeSchedule::uniform(rec.n + 1, rec.r0);
}

}  // namespace

std::vector<Violation> check_case(const CaseRecipe& recipe,
                                  const OracleOptions& opts) {
  std::vector<Violation> violations;
  Recorder rec(violations);

  const core::ScenarioParams params = recipe.scenario.to_params();
  const core::ProbeSchedule schedule = recipe.schedule();
  const auto mean_of = [&](const core::ScenarioParams& p,
                           const core::ProbeSchedule& s) {
    return opts.mean_cost_hook ? opts.mean_cost_hook(p, s)
                               : core::mean_cost(p, s);
  };
  const auto err_of = [&](const core::ScenarioParams& p,
                          const core::ProbeSchedule& s) {
    return opts.error_probability_hook ? opts.error_probability_hook(p, s)
                                       : core::error_probability(p, s);
  };

  // --- spec.validate: a valid recipe must build a valid engine spec.
  try {
    recipe.to_spec().validate();
  } catch (const ContractViolation& e) {
    rec.fail("spec.validate",
             std::string("valid recipe rejected by spec validation: ") +
                 e.what());
  }

  // --- pi.ladder: pi_0 = 1, every value in [0, 1], non-increasing.
  const std::vector<double> pi =
      core::pi_values(params.reply_delay(), schedule);
  rec.expect("pi.ladder.start", !pi.empty() && pi[0] == 1.0,
             "pi[0]=" + (pi.empty() ? std::string("<empty>") : num(pi[0])));
  for (std::size_t i = 0; i < pi.size(); ++i) {
    rec.expect("pi.ladder.range", pi[i] >= 0.0 && pi[i] <= 1.0,
               "pi[" + std::to_string(i) + "]=" + num(pi[i]));
    if (i > 0)
      rec.expect("pi.ladder.monotone", pi[i] <= pi[i - 1],
                 "pi[" + std::to_string(i) + "]=" + num(pi[i]) +
                     " > pi[" + std::to_string(i - 1) +
                     "]=" + num(pi[i - 1]));
  }

  // --- analytic domain checks on the candidate evaluators.
  const double mean = mean_of(params, schedule);
  const double err = err_of(params, schedule);
  rec.expect("analytic.error_probability.range",
             err >= 0.0 && err <= 1.0, "err=" + num(err));
  rec.expect("analytic.mean_cost.domain",
             std::isfinite(mean) && mean >= 0.0, "mean=" + num(mean));

  // --- analytic vs DRM: Eq. (3)/(4) against the linear systems.
  const markov::MarkovRewardModel drm = core::build_drm(params, schedule);
  const core::DrmLayout layout{schedule.n()};
  const double drm_mean =
      drm.expected_total_reward(core::DrmLayout::start());
  const double drm_err = drm.analysis().absorption_probability(
      core::DrmLayout::start(), layout.error());
  // Conditioning floor of the reward solves: the one-step reward of the
  // nth state is error_cost * p(nth -> error); with huge E and a tiny
  // exit probability the elimination cancels terms of that magnitude
  // down to an O(mean) result, so the solve's *absolute* error is
  // ~eps * that scale no matter how exact the formulas are (1e-12 =
  // ~1e4 ulp of slack for the n-fold elimination). The closed form
  // computes the same quantity without the cancellation.
  const double exit_prob =
      pi[schedule.n() - 1] > 0.0 ? pi[schedule.n()] / pi[schedule.n() - 1]
                                 : 0.0;
  const double reward_scale = params.error_cost() * exit_prob;
  const double solve_noise = 1e-12 * reward_scale;
  const double solve_noise_sq = 1e-12 * reward_scale * reward_scale;
  rec.expect_close("analytic.vs_drm.mean_cost", "analytic", mean, "drm",
                   drm_mean, opts.rel_tol, opts.abs_tol + solve_noise);
  rec.expect_close("analytic.vs_drm.error_probability", "analytic", err,
                   "drm", drm_err, opts.rel_tol, opts.abs_tol);

  // --- variance: non-negative (up to cancellation noise of the
  // second-moment subtraction) and agreeing across the two systems.
  const double var_closed = core::cost_variance(params, schedule);
  const double var_drm =
      drm.variance_total_reward(core::DrmLayout::start());
  const double var_noise = opts.abs_tol +
                           opts.rel_tol * drm_mean * drm_mean +
                           solve_noise_sq;
  rec.expect("variance.non_negative.closed_form",
             var_closed >= -var_noise, "variance=" + num(var_closed));
  rec.expect("variance.non_negative.drm", var_drm >= -var_noise,
             "variance=" + num(var_drm));
  rec.expect_close("analytic.vs_drm.variance", "closed_form", var_closed,
                   "drm", var_drm, opts.rel_tol, var_noise);

  // --- exact distribution: mass accounting, collision probability, and
  // (tail permitting) the first two moments.
  const core::CostDistribution dist(params, schedule);
  const double mass = kahan_sum(dist.ok_pmf()) +
                      kahan_sum(dist.error_pmf()) + dist.truncated_tail();
  rec.expect("dist.mass", std::fabs(mass - 1.0) <= 1e-9,
             "ok+error+tail=" + num(mass));
  rec.expect("dist.tail.range",
             dist.truncated_tail() >= 0.0 && dist.truncated_tail() <= 1.0,
             "tail=" + num(dist.truncated_tail()));
  rec.expect_close("dist.vs_analytic.error_probability", "dist",
                   dist.error_probability(), "analytic", err, opts.rel_tol,
                   opts.dist_tol + dist.truncated_tail());
  if (dist.truncated_tail() <= opts.dist_tail_ceiling) {
    rec.expect_close("dist.vs_analytic.mean", "dist", dist.mean(),
                     "analytic", mean, opts.rel_tol, opts.abs_tol);
    rec.expect_close("dist.vs_drm.variance", "dist", dist.variance(), "drm",
                     var_drm, opts.rel_tol, var_noise);
  }

  // --- quantile monotonicity (uniform cost lattice only; ps capped
  // below the representable mass 1 - tail).
  if (dist.has_cost_lattice()) {
    const double ps[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999};
    double prev_q = -1.0;
    std::size_t prev_t = 0;
    for (const double p : ps) {
      if (p >= 1.0 - dist.truncated_tail()) break;
      const double qv = dist.quantile(p);
      const std::size_t tv = dist.probes_quantile(p);
      rec.expect("dist.quantile.monotone", qv >= prev_q,
                 "quantile(" + num(p) + ")=" + num(qv) +
                     " < previous=" + num(prev_q));
      rec.expect("dist.probes_quantile.monotone", tv >= prev_t,
                 "probes_quantile(" + num(p) +
                     ")=" + std::to_string(tv) +
                     " < previous=" + std::to_string(prev_t));
      prev_q = qv;
      prev_t = tv;
    }
  }

  // --- surface.bitwise: the amortized columns must reproduce the
  // pointwise (unhooked) evaluators exactly, entry for entry.
  {
    const core::CostSurface surface(params, schedule.n());
    const double direct_mean = core::mean_cost(params, schedule);
    const double direct_err = core::error_probability(params, schedule);
    rec.expect_bitwise("surface.bitwise.cost_at", "surface",
                       surface.cost_at(schedule), "direct", direct_mean);
    rec.expect_bitwise("surface.bitwise.error_at", "surface",
                       surface.error_at(schedule), "direct", direct_err);
    const std::vector<double> costs = surface.cost_column(schedule);
    const std::vector<double> errs = surface.error_column(schedule);
    rec.expect("surface.column.size",
               costs.size() == schedule.n() && errs.size() == schedule.n(),
               "cost column size " + std::to_string(costs.size()) +
                   ", error column size " + std::to_string(errs.size()) +
                   ", n " + std::to_string(schedule.n()));
    if (costs.size() == schedule.n() && errs.size() == schedule.n()) {
      rec.expect_bitwise("surface.bitwise.cost_column", "column",
                         costs.back(), "direct", direct_mean);
      rec.expect_bitwise("surface.bitwise.error_column", "column",
                         errs.back(), "direct", direct_err);
    }
  }

  // --- neutral.bitwise: shape parameters that express "no shape"
  // (geometric factor 1, linear step 0) must be bit-equal to uniform.
  {
    const core::ProbeSchedule uniform =
        core::ProbeSchedule::uniform(recipe.n, recipe.r0);
    const core::ProbeSchedule geometric =
        core::ProbeSchedule::geometric(recipe.n, recipe.r0, 1.0);
    const core::ProbeSchedule linear =
        core::ProbeSchedule::linear(recipe.n, recipe.r0, 0.0);
    const double mean_u = mean_of(params, uniform);
    const double err_u = err_of(params, uniform);
    rec.expect_bitwise("neutral.bitwise.geometric.mean_cost", "geometric",
                       mean_of(params, geometric), "uniform", mean_u);
    rec.expect_bitwise("neutral.bitwise.linear.mean_cost", "linear",
                       mean_of(params, linear), "uniform", mean_u);
    rec.expect_bitwise("neutral.bitwise.geometric.error_probability",
                       "geometric", err_of(params, geometric), "uniform",
                       err_u);
    rec.expect_bitwise("neutral.bitwise.linear.error_probability", "linear",
                       err_of(params, linear), "uniform", err_u);
  }

  // --- log-domain collision probability vs the linear-domain value,
  // where the latter is comfortably representable.
  if (err > 1e-300) {
    const double log_linear = std::log10(err);
    const double log_domain =
        core::log10_error_probability(params, schedule);
    rec.expect_close("log_domain.error_probability", "log10(analytic)",
                     log_linear, "log_domain", log_domain, 1e-9, 1e-9);
  }

  // --- monotone in n: one extra probe can only reduce the collision
  // probability (pi_{n+1} <= pi_n and Err is increasing in pi_n).
  {
    const double err_more = err_of(params, extend_by_one(recipe));
    rec.expect("monotone.error_probability_in_n",
               err_more <= err * (1.0 + 1e-12) + opts.abs_tol,
               "err(n+1)=" + num(err_more) + " > err(n)=" + num(err));
  }

  // --- Monte-Carlo cross-validation (the recipe's MC block).
  if (recipe.run_mc) {
    sim::NetworkConfig network;
    network.address_space = recipe.mc_space;
    network.hosts = recipe.mc_hosts;
    network.responder_delay =
        std::shared_ptr<const prob::DelayDistribution>(
            prob::paper_reply_delay(recipe.scenario.loss,
                                    recipe.scenario.lambda,
                                    recipe.scenario.round_trip));
    network.faults = recipe.fault_schedule();
    sim::ZeroconfConfig protocol;
    protocol.schedule = schedule;
    sim::MonteCarloOptions mc_opts;
    mc_opts.trials = recipe.mc_trials;
    mc_opts.seed = exec::split_seed(recipe.seed, recipe.index);
    mc_opts.probe_cost = recipe.scenario.probe_cost;
    mc_opts.error_cost = recipe.scenario.error_cost;
    mc_opts.threads = 1;  // cases parallelize outside the oracle
    const sim::MonteCarloResults mc =
        sim::monte_carlo(network, protocol, mc_opts);

    rec.expect("mc.sanity.trials",
               mc.completed + mc.aborted + mc.non_finite == mc.trials,
               "completed=" + std::to_string(mc.completed) +
                   " aborted=" + std::to_string(mc.aborted) +
                   " non_finite=" + std::to_string(mc.non_finite) +
                   " trials=" + std::to_string(mc.trials));
    rec.expect("mc.sanity.collision_rate",
               mc.collision_rate >= 0.0 && mc.collision_rate <= 1.0,
               "collision_rate=" + num(mc.collision_rate));
    rec.expect("mc.sanity.estimates_finite",
               std::isfinite(mc.model_cost.mean) &&
                   std::isfinite(mc.model_cost.ci95_halfwidth) &&
                   std::isfinite(mc.probes.mean),
               "model_cost.mean=" + num(mc.model_cost.mean) +
                   " halfwidth=" + num(mc.model_cost.ci95_halfwidth) +
                   " probes.mean=" + num(mc.probes.mean));

    // CI containment is only a model prediction when the simulated
    // network matches the model's assumptions: no injected faults, and an
    // effectively-uniform schedule. For non-uniform schedules the
    // analytic generalization pi_i = prod_j S(t_j) is a *model*, not the
    // protocol: the simulated host honours conflicting replies until the
    // end of all listening (factor S(t_n - t_{j-1})), which coincides
    // with the model only when the timeouts are constant. The harness
    // still runs the sanity block above on those cases.
    if (recipe.fault == FaultKind::none && mc.completed == mc.trials &&
        schedule.is_effectively_uniform()) {
      rec.expect(
          "mc.ci.mean_cost",
          std::fabs(mean - mc.model_cost.mean) <=
              opts.mc_ci_factor * mc.model_cost.ci95_halfwidth + 1e-9,
          "analytic=" + num(mean) + " mc=" + num(mc.model_cost.mean) +
              " halfwidth=" + num(mc.model_cost.ci95_halfwidth));
      rec.expect(
          "mc.ci.error_probability",
          err >= mc.collision_ci95.lower * 0.9 - 1e-9 &&
              err <= mc.collision_ci95.upper * 1.1 + 1e-9,
          "analytic=" + num(err) + " ci=[" + num(mc.collision_ci95.lower) +
              ", " + num(mc.collision_ci95.upper) + "]");
    }
  }

  return violations;
}

}  // namespace zc::check
