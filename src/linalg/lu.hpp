#pragma once

/// \file lu.hpp
/// LU decomposition with partial pivoting, plus the derived operations
/// (linear solve, inverse, determinant) used by the Markov substrate to
/// evaluate fundamental matrices and expected-reward systems.

#include <optional>

#include "linalg/matrix.hpp"

namespace zc::linalg {

/// LU decomposition of a square matrix with partial (row) pivoting:
/// `P A = L U`, with `L` unit-lower-triangular and `U` upper-triangular,
/// stored compactly in a single matrix.
class Lu {
 public:
  /// Decompose `a`. Fails (returns nullopt) when `a` is singular to
  /// working precision.
  [[nodiscard]] static std::optional<Lu> decompose(const Matrix& a);

  /// Solve `A x = b` for one right-hand side.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solve `A X = B` column-wise.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// The inverse `A^{-1}` (prefer `solve` when only products are needed).
  [[nodiscard]] Matrix inverse() const;

  /// Determinant of `A` (sign from the pivoting permutation).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  Lu(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(sign) {}

  Matrix lu_;                       ///< packed L (below diag) and U (on/above)
  std::vector<std::size_t> perm_;   ///< row permutation
  int perm_sign_ = 1;               ///< parity of the permutation
};

/// Convenience: solve `A x = b`; contract-fails when `a` is singular.
[[nodiscard]] Vector solve(const Matrix& a, const Vector& b);

/// Convenience: invert `a`; contract-fails when `a` is singular.
[[nodiscard]] Matrix inverse(const Matrix& a);

}  // namespace zc::linalg
