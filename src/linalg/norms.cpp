#include "linalg/norms.hpp"

#include <algorithm>
#include <cmath>

namespace zc::linalg {

double norm_inf(const Vector& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

double norm_1(const Vector& x) {
  double s = 0.0;
  for (double v : x) s += std::fabs(v);
  return s;
}

double norm_2(const Vector& x) {
  // Scaled to avoid overflow for large entries.
  const double scale = norm_inf(x);
  if (scale == 0.0) return 0.0;
  double s = 0.0;
  for (double v : x) {
    const double t = v / scale;
    s += t * t;
  }
  return scale * std::sqrt(s);
}

double norm_inf(const Matrix& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) row_sum += std::fabs(a(i, j));
    m = std::max(m, row_sum);
  }
  return m;
}

double norm_1(const Matrix& a) {
  double m = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double col_sum = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) col_sum += std::fabs(a(i, j));
    m = std::max(m, col_sum);
  }
  return m;
}

double norm_frobenius(const Matrix& a) {
  Vector flat(a.data().begin(), a.data().end());
  return norm_2(flat);
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  ZC_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  ZC_EXPECTS(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace zc::linalg
