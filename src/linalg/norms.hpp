#pragma once

/// \file norms.hpp
/// Vector and matrix norms used for convergence checks and test tolerances.

#include "linalg/matrix.hpp"

namespace zc::linalg {

/// max_i |x_i|
[[nodiscard]] double norm_inf(const Vector& x);

/// sum_i |x_i|
[[nodiscard]] double norm_1(const Vector& x);

/// sqrt(sum_i x_i^2), overflow-guarded via scaling.
[[nodiscard]] double norm_2(const Vector& x);

/// Maximum absolute row sum.
[[nodiscard]] double norm_inf(const Matrix& a);

/// Maximum absolute column sum.
[[nodiscard]] double norm_1(const Matrix& a);

/// Frobenius norm.
[[nodiscard]] double norm_frobenius(const Matrix& a);

/// max_{ij} |a_ij - b_ij|; matrices must have equal shape.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

/// max_i |a_i - b_i|; vectors must have equal length.
[[nodiscard]] double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace zc::linalg
