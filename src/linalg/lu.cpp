#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

namespace zc::linalg {

std::optional<Lu> Lu::decompose(const Matrix& a) {
  ZC_EXPECTS(a.square());
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below k.
    std::size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best == 0.0) return std::nullopt;  // singular

    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      std::swap(perm[k], perm[pivot]);
      sign = -sign;
    }

    const double diag = lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) / diag;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
    }
  }
  return Lu(std::move(lu), std::move(perm), sign);
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = size();
  ZC_EXPECTS(b.size() == n);

  // Apply permutation, then forward-substitute L y = P b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * y[j];
    y[i] = s;
  }
  // Back-substitute U x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  ZC_EXPECTS(b.rows() == size());
  Matrix x(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const Vector xj = solve(b.col(j));
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xj[i];
  }
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(size())); }

double Lu::determinant() const {
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) {
  const auto lu = Lu::decompose(a);
  ZC_EXPECTS(lu.has_value());
  return lu->solve(b);
}

Matrix inverse(const Matrix& a) {
  const auto lu = Lu::decompose(a);
  ZC_EXPECTS(lu.has_value());
  return lu->inverse();
}

}  // namespace zc::linalg
