#include "linalg/matrix.hpp"

namespace zc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    ZC_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::block(std::size_t r0, std::size_t r1, std::size_t c0,
                     std::size_t c1) const {
  ZC_EXPECTS(r0 <= r1 && r1 <= rows_);
  ZC_EXPECTS(c0 <= c1 && c1 <= cols_);
  Matrix out(r1 - r0, c1 - c0);
  for (std::size_t i = r0; i < r1; ++i)
    for (std::size_t j = c0; j < c1; ++j) out(i - r0, j - c0) = (*this)(i, j);
  return out;
}

Vector Matrix::row(std::size_t i) const {
  ZC_EXPECTS(i < rows_);
  Vector out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(i, j);
  return out;
}

Vector Matrix::col(std::size_t j) const {
  ZC_EXPECTS(j < cols_);
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  ZC_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  ZC_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= rhs.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  ZC_EXPECTS(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  ZC_EXPECTS(a.cols() == x.size());
  Vector out(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) out[i] += a(i, j) * x[j];
  return out;
}

Vector mul_left(const Vector& x, const Matrix& a) {
  ZC_EXPECTS(x.size() == a.rows());
  Vector out(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < a.cols(); ++j) out[j] += xi * a(i, j);
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  ZC_EXPECTS(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector add(const Vector& a, const Vector& b) {
  ZC_EXPECTS(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  ZC_EXPECTS(a.size() == b.size());
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector scale(const Vector& a, double s) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

}  // namespace zc::linalg
