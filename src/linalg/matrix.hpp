#pragma once

/// \file matrix.hpp
/// Dense row-major matrix of doubles, sized for the small systems that
/// arise in absorbing-Markov-chain analysis (tens to a few thousands of
/// states). Value semantics throughout.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/contract.hpp"

namespace zc::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
 public:
  /// An empty 0x0 matrix.
  Matrix() = default;

  /// A `rows` x `cols` matrix with every entry equal to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// The `n` x `n` identity matrix.
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    ZC_EXPECTS(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    ZC_EXPECTS(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  /// Raw storage access (row-major), e.g. for norms.
  [[nodiscard]] const std::vector<double>& data() const noexcept {
    return data_;
  }

  /// Extract the sub-matrix with rows [r0, r1) and columns [c0, c1).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t r1, std::size_t c0,
                             std::size_t c1) const;

  /// Extract row `i` as a vector.
  [[nodiscard]] Vector row(std::size_t i) const;

  /// Extract column `j` as a vector.
  [[nodiscard]] Vector col(std::size_t j) const;

  [[nodiscard]] Matrix transpose() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix lhs, double s);
[[nodiscard]] Matrix operator*(double s, Matrix rhs);

/// Matrix-matrix product.
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product `A x`.
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);

/// Row-vector-matrix product `x^T A`.
[[nodiscard]] Vector mul_left(const Vector& x, const Matrix& a);

/// Dot product.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// `a + b` elementwise.
[[nodiscard]] Vector add(const Vector& a, const Vector& b);

/// `a - b` elementwise.
[[nodiscard]] Vector sub(const Vector& a, const Vector& b);

/// `s * a` elementwise.
[[nodiscard]] Vector scale(const Vector& a, double s);

}  // namespace zc::linalg
