#pragma once

/// \file network.hpp
/// Scenario harness: one link-local segment populated with `hosts`
/// already-configured hosts at distinct random addresses, to which
/// joining hosts are added. Mirrors the paper's modeling assumptions
/// (Sec. 3.1): the network is static during a configuration run and
/// q = hosts / address_space.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "faults/injector.hpp"
#include "prob/delay.hpp"
#include "sim/host.hpp"
#include "sim/zeroconf_host.hpp"

namespace zc::sim {

/// Static description of the simulated network.
struct NetworkConfig {
  Address address_space = 65024;  ///< size of the candidate address pool
  unsigned hosts = 1000;          ///< configured hosts already on the link

  /// End-to-end reply behaviour of configured hosts: the model's F_X.
  /// Its defective mass covers probe loss + busy host + reply loss.
  std::shared_ptr<const prob::DelayDistribution> responder_delay;

  /// Heterogeneous population: when non-empty, host k uses
  /// responder_mix[k % size] instead of responder_delay (cyclic
  /// assignment gives equal class proportions).
  std::vector<std::shared_ptr<const prob::DelayDistribution>> responder_mix;

  /// Optional physical medium behaviour (per-delivery loss/delay) applied
  /// *in addition* to responder_delay; defaults to a perfect medium so
  /// that responder_delay alone equals the model's F_X.
  MediumConfig medium;

  /// Adversarial conditions injected into the medium (bursty loss, link
  /// flaps, delay spikes, duplication, reordering, host churn). Default:
  /// none. Each Network seeds its injector from the construction seed via
  /// exec::split_seed, preserving bitwise reproducibility per trial.
  faults::FaultSchedule faults;

  /// Virtual-time budget per run_join / run_simultaneous_join call: when
  /// > 0, events later than start + max_virtual_time do not run and any
  /// still-pending joiner is aborted (RunResult::aborted). 0 = unbounded.
  double max_virtual_time = 0.0;
};

/// Result of one configuration run.
struct RunResult {
  bool collision = false;      ///< claimed an address already in use
  /// Run terminated by a safety cap (ZeroconfConfig::max_attempts /
  /// max_probes) or the network's virtual-time budget instead of
  /// configuring; no address was claimed, so `collision` is false.
  bool aborted = false;
  Address address = kNoAddress;
  unsigned probes_sent = 0;
  unsigned attempts = 0;
  unsigned conflicts = 0;
  double waiting_time = 0.0;   ///< actual elapsed listening time
  double elapsed = 0.0;        ///< wall-clock from start to claim

  /// Maintenance phase (when announcements are enabled): was a collision
  /// detected post-claim, and how long after the claim?
  bool collision_detected = false;
  double detection_latency = 0.0;

  /// Model-accounted listening time, taken from the host's configured
  /// schedule (one source of truth — callers no longer pass r): for
  /// uniform schedules RunResult reconstructs probes_sent * (r + c) with
  /// the historical arithmetic, for non-uniform ones the host accumulates
  /// each sent probe's full window.
  bool uniform_schedule = true;
  double uniform_r = 0.0;        ///< the schedule's r when uniform
  double model_listening = 0.0;  ///< summed windows when non-uniform

  /// The paper's cost of this run under model accounting: every probe is
  /// charged its full listening window plus postage c, a collision costs
  /// E. The listening periods come from the schedule the run was
  /// configured with.
  [[nodiscard]] double model_cost(double probe_cost,
                                  double error_cost) const {
    if (uniform_schedule)
      return static_cast<double>(probes_sent) * (uniform_r + probe_cost) +
             (collision ? error_cost : 0.0);
    return model_listening +
           static_cast<double>(probes_sent) * probe_cost +
           (collision ? error_cost : 0.0);
  }

  /// Cost with elapsed-time accounting: only time actually spent waiting
  /// is charged (quantifies the model's full-period abstraction).
  [[nodiscard]] double elapsed_cost(double probe_cost,
                                    double error_cost) const {
    return waiting_time +
           static_cast<double>(probes_sent) * probe_cost +
           (collision ? error_cost : 0.0);
  }
};

/// One populated link-local segment.
///
/// A Network is a reusable trial context: `reset(seed)` re-randomizes it
/// into exactly the state `Network(config, seed)` would construct —
/// bitwise-identical run results — without freeing the hosts, the event
/// pool, or the medium's tables. Monte-Carlo drivers keep one Network per
/// worker chunk and reset it per trial, making the steady-state trial
/// loop allocation-free (DESIGN.md §"Sim-core memory model").
class Network {
 public:
  /// Populates the segment with `config.hosts` ARP responders at distinct
  /// uniformly-drawn addresses.
  Network(NetworkConfig config, std::uint64_t seed);

  /// Re-seed and re-draw: rewinds the clock, drops pending events and
  /// subscriptions, reseeds the RNG and the fault injector, and assigns
  /// fresh distinct addresses to the existing hosts. Equivalent to
  /// constructing Network(config, seed) as long as join runs were
  /// completed (joiners destroyed) before the call. Metric bindings
  /// survive.
  void reset(std::uint64_t seed);

  [[nodiscard]] bool is_in_use(Address address) const noexcept {
    const std::size_t word = address >> 6;
    return word < used_bits_.size() &&
           ((used_bits_[word] >> (address & 63)) & 1u) != 0;
  }
  [[nodiscard]] Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] Medium& medium() noexcept { return medium_; }
  [[nodiscard]] prob::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept {
    return config_;
  }

  /// Bind delivery/fault counters for this network: forwards to the
  /// medium and (when a fault schedule is active) the injector. Call
  /// before running joins; pass nullptr to stop counting. Non-owning.
  void bind_metrics(obs::MetricSet* set) {
    medium_.bind_metrics(set);
    if (injector_) injector_->bind_metrics(set);
  }

  /// Run one joining host to completion and report the outcome.
  [[nodiscard]] RunResult run_join(const ZeroconfConfig& protocol);

  /// Run `count` joining hosts *simultaneously* (all start at time 0) —
  /// the multi-host contention scenario of the Uppaal companion study.
  /// Returns one result per host; `collision` additionally accounts for
  /// two joining hosts claiming the same address.
  [[nodiscard]] std::vector<RunResult> run_simultaneous_join(
      const ZeroconfConfig& protocol, unsigned count);

 private:
  /// Drain the event queue, bounded by the virtual-time budget when one
  /// is configured.
  void run_events(double start);

  [[nodiscard]] RunResult result_of(ZeroconfHost& joiner, double start) const;

  /// Draw a distinct uniform address for each host, in host order, and
  /// (re)subscribe it. Shared by the constructor and reset().
  void assign_addresses();

  NetworkConfig config_;
  prob::Rng rng_;
  Simulator sim_;
  Medium medium_;
  std::optional<faults::FaultInjector> injector_;
  std::vector<std::uint64_t> used_bits_;  ///< address-in-use bitmap
  std::vector<ConfiguredHost> hosts_;
};

}  // namespace zc::sim
