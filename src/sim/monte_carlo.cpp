#include "sim/monte_carlo.hpp"

#include "common/contract.hpp"
#include "exec/parallel.hpp"
#include "exec/seeding.hpp"

namespace zc::sim {

namespace {

Estimate to_estimate(const RunningStats& stats) {
  return {stats.mean(), stats.stddev(), stats.ci95_halfwidth()};
}

/// Per-chunk partial aggregation of a slice of trials.
struct TrialAccumulator {
  RunningStats model_cost, elapsed_cost, probes, attempts, waiting;
  std::size_t collisions = 0;

  void merge(const TrialAccumulator& other) {
    model_cost.merge(other.model_cost);
    elapsed_cost.merge(other.elapsed_cost);
    probes.merge(other.probes);
    attempts.merge(other.attempts);
    waiting.merge(other.waiting);
    collisions += other.collisions;
  }
};

}  // namespace

MonteCarloResults monte_carlo(const NetworkConfig& network,
                              const ZeroconfConfig& protocol,
                              const MonteCarloOptions& opts) {
  ZC_EXPECTS(opts.trials > 0);

  exec::ExecOptions exec_opts;
  exec_opts.threads = opts.threads;
  exec_opts.chunk_size = opts.chunk_size;

  const TrialAccumulator total = exec::parallel_reduce(
      opts.trials, TrialAccumulator{},
      [&](TrialAccumulator& acc, std::size_t t) {
        // Counter-based seed: trial t's stream depends only on
        // (opts.seed, t), never on thread assignment or run order.
        Network net(network, exec::split_seed(opts.seed, t));
        const RunResult run = net.run_join(protocol);
        acc.model_cost.add(
            run.model_cost(protocol.r, opts.probe_cost, opts.error_cost));
        acc.elapsed_cost.add(
            run.elapsed_cost(opts.probe_cost, opts.error_cost));
        acc.probes.add(static_cast<double>(run.probes_sent));
        acc.attempts.add(static_cast<double>(run.attempts));
        acc.waiting.add(run.waiting_time);
        if (run.collision) ++acc.collisions;
      },
      [](TrialAccumulator& into, const TrialAccumulator& from) {
        into.merge(from);
      },
      exec_opts);

  MonteCarloResults out;
  out.trials = opts.trials;
  out.model_cost = to_estimate(total.model_cost);
  out.elapsed_cost = to_estimate(total.elapsed_cost);
  out.probes = to_estimate(total.probes);
  out.attempts = to_estimate(total.attempts);
  out.waiting_time = to_estimate(total.waiting);
  out.collisions = total.collisions;
  out.collision_rate = static_cast<double>(total.collisions) /
                       static_cast<double>(opts.trials);
  out.collision_ci95 = wilson_ci95(total.collisions, opts.trials);
  return out;
}

}  // namespace zc::sim
