#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/contract.hpp"
#include "exec/parallel.hpp"
#include "exec/seeding.hpp"
#include "obs/timer.hpp"

namespace zc::sim {

namespace {

Estimate to_estimate(const RunningStats& stats) {
  return {stats.mean(), stats.stddev(), stats.ci95_halfwidth()};
}

/// Per-chunk partial aggregation of a slice of trials.
struct TrialAccumulator {
  RunningStats model_cost, elapsed_cost, probes, attempts, waiting;
  std::size_t collisions = 0;
  std::size_t aborted = 0;
  std::size_t non_finite = 0;

  /// Reusable trial context: built lazily on the chunk's first trial,
  /// then reset(seed) per trial — the steady-state loop touches no
  /// allocator. shared_ptr only for the copyability `parallel_reduce`
  /// requires of the init accumulator (which holds nullptr); each chunk's
  /// copy creates and exclusively owns its own network.
  std::shared_ptr<Network> net;

  /// Event-pool telemetry of this chunk's context (sampled after each
  /// trial; reuse counts are cumulative per context, so the last sample
  /// is the chunk total).
  std::size_t pool_slots = 0;
  std::size_t pool_high_water = 0;
  std::uint64_t pool_reuse = 0;

  /// Chunk-local metric set; every chunk starts from a copy of the init
  /// accumulator, so names/ids registered once below are valid in all of
  /// them, and merge() folds chunk sets in ascending chunk order.
  obs::MetricSet metrics;
  obs::MetricId completed_id = 0;
  obs::MetricId aborted_id = 0;
  obs::MetricId non_finite_id = 0;
  obs::MetricId collision_id = 0;
  obs::MetricId chunks_id = 0;
  obs::MetricId attempts_hist_id = 0;
  obs::MetricId probes_hist_id = 0;
  obs::MetricId waiting_hist_id = 0;
  bool collect = false;  ///< snapshot of obs::collection_enabled()

  void register_metrics() {
    collect = true;
    completed_id = metrics.counter("mc.trials.completed");
    aborted_id = metrics.counter("mc.trials.aborted");
    non_finite_id = metrics.counter("mc.trials.non_finite");
    collision_id = metrics.counter("mc.trials.collisions");
    chunks_id = metrics.counter("mc.chunks");
    attempts_hist_id = metrics.histogram(
        "mc.attempts.per_trial", {1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0});
    probes_hist_id = metrics.histogram(
        "mc.probes.per_trial", {4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0});
    waiting_hist_id = metrics.histogram(
        "mc.waiting.seconds", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  }

  void merge(const TrialAccumulator& other) {
    model_cost.merge(other.model_cost);
    elapsed_cost.merge(other.elapsed_cost);
    probes.merge(other.probes);
    attempts.merge(other.attempts);
    waiting.merge(other.waiting);
    collisions += other.collisions;
    aborted += other.aborted;
    non_finite += other.non_finite;
    pool_slots = std::max(pool_slots, other.pool_slots);
    pool_high_water = std::max(pool_high_water, other.pool_high_water);
    pool_reuse += other.pool_reuse;
    metrics.merge(other.metrics);
  }
};

}  // namespace

void MonteCarloOptions::validate() const {
  ZC_REQUIRE(trials > 0, "MonteCarloOptions.trials must be > 0");
  ZC_REQUIRE(std::isfinite(probe_cost) && probe_cost >= 0.0,
             "MonteCarloOptions.probe_cost must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(error_cost) && error_cost >= 0.0,
             "MonteCarloOptions.error_cost must be finite and >= 0");
  const PrecisionTargets& prec = precision;
  ZC_REQUIRE(
      std::isfinite(prec.rel_ci_model_cost) && prec.rel_ci_model_cost >= 0.0,
      "MonteCarloOptions.precision.rel_ci_model_cost must be finite and >= 0");
  ZC_REQUIRE(
      std::isfinite(prec.rel_ci_collision) && prec.rel_ci_collision >= 0.0,
      "MonteCarloOptions.precision.rel_ci_collision must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(prec.abs_ci_floor) && prec.abs_ci_floor >= 0.0,
             "MonteCarloOptions.precision.abs_ci_floor must be finite and >= 0");
  ZC_REQUIRE(prec.min_trials == 0 || prec.max_trials == 0 ||
                 prec.min_trials <= prec.max_trials,
             "MonteCarloOptions.precision.min_trials must be <= max_trials");
}

MonteCarloResults monte_carlo(const NetworkConfig& network,
                              const ZeroconfConfig& protocol,
                              const MonteCarloOptions& opts) {
  opts.validate();

  exec::ExecOptions exec_opts;
  exec_opts.threads = opts.threads;
  exec_opts.chunk_size = opts.chunk_size;
  exec_opts.cancel = opts.cancel;

  // Register every campaign metric once, in the init accumulator: chunk
  // accumulators are copy-constructed from it, so the resolved ids are
  // valid in all chunks and merge() aligns identical name tables.
  TrialAccumulator init;
  if (obs::collection_enabled()) init.register_metrics();

  // Counter-based seed: trial t's stream depends only on (opts.seed, t),
  // never on thread assignment, run order, or — in adaptive mode — on
  // how the ladder happened to slice [0, realized) into rounds.
  const auto run_trial = [&](TrialAccumulator& acc, std::size_t t) {
    const std::uint64_t trial_seed = exec::split_seed(opts.seed, t);
    if (acc.net == nullptr) {
      // First trial of this chunk: build the context and bind it
      // once (the chunk accumulator's address is stable for the
      // chunk's lifetime). Later trials reset in place.
      acc.net = std::make_shared<Network>(network, trial_seed);
      if (acc.collect) {
        acc.metrics.inc(acc.chunks_id);
        acc.net->bind_metrics(&acc.metrics);
      }
    } else {
      acc.net->reset(trial_seed);
    }
    Network& net = *acc.net;
    const RunResult run = net.run_join(protocol);
    const Simulator& sim = net.simulator();
    acc.pool_slots = std::max(acc.pool_slots, sim.pool_slots());
    acc.pool_high_water = std::max(acc.pool_high_water, sim.pool_high_water());
    acc.pool_reuse = sim.pool_reuse_count();
    if (run.aborted) {
      // A safety-capped run claimed no address; folding its truncated
      // cost into the estimates would bias them. Tally it instead.
      ++acc.aborted;
      if (acc.collect) acc.metrics.inc(acc.aborted_id);
      return;
    }
    const double model = run.model_cost(opts.probe_cost, opts.error_cost);
    const double elapsed = run.elapsed_cost(opts.probe_cost, opts.error_cost);
    if (!std::isfinite(model) || !std::isfinite(elapsed) ||
        !std::isfinite(run.waiting_time)) {
      // Overflow guard: never let an inf/NaN sample poison the
      // Welford accumulators.
      ++acc.non_finite;
      if (acc.collect) acc.metrics.inc(acc.non_finite_id);
      return;
    }
    acc.model_cost.add(model);
    acc.elapsed_cost.add(elapsed);
    acc.probes.add(static_cast<double>(run.probes_sent));
    acc.attempts.add(static_cast<double>(run.attempts));
    acc.waiting.add(run.waiting_time);
    if (acc.collect) {
      acc.metrics.inc(acc.completed_id);
      acc.metrics.observe(acc.attempts_hist_id,
                          static_cast<double>(run.attempts));
      acc.metrics.observe(acc.probes_hist_id,
                          static_cast<double>(run.probes_sent));
      acc.metrics.observe(acc.waiting_hist_id, run.waiting_time);
    }
    if (run.collision) {
      ++acc.collisions;
      if (acc.collect) acc.metrics.inc(acc.collision_id);
    }
  };
  const auto merge_accs = [](TrialAccumulator& into,
                             const TrialAccumulator& from) {
    into.merge(from);
  };

  const PrecisionTargets& prec = opts.precision;
  const bool adaptive = prec.enabled();
  TrialAccumulator total = init;
  std::size_t realized = opts.trials;  ///< trials scheduled for execution
  std::size_t requested = opts.trials;
  std::size_t rounds = 0;
  std::size_t last_chunk_size =
      exec::resolve_chunk_size(opts.trials, opts.chunk_size);
  bool precision_met = false;
  if (!adaptive) {
    // Fixed mode: the historical single reduction, byte-identical to
    // every prior release.
    total = exec::parallel_reduce(opts.trials, init, run_trial, merge_accs,
                                  exec_opts);
  } else {
    // Adaptive mode: deterministic doubling ladder. Round k covers the
    // global trial range [realized, target); after each round the
    // stopping rules are evaluated on the *cumulative* accumulators.
    // Everything that decides the next step — realized counts, CI
    // widths, the chunk layout of each round — is a pure function of
    // (inputs, seed, targets), so the realized total and every estimate
    // are bitwise-identical at any thread count.
    const std::size_t cap = prec.max_trials > 0 ? prec.max_trials : opts.trials;
    std::size_t first = prec.min_trials > 0 ? prec.min_trials
                                            : kDefaultFirstRound;
    first = std::min(first, cap);
    const auto targets_met = [&](const TrialAccumulator& acc) {
      const std::size_t completed = acc.model_cost.count();
      const ProportionCi ci = wilson_ci95(acc.collisions, completed);
      return cost_target_met(prec, acc.model_cost.mean(),
                             acc.model_cost.ci95_halfwidth(), completed) &&
             collision_target_met(prec, acc.collisions, completed, ci.lower,
                                  ci.upper);
    };
    obs::ScopedTimer ladder_timer("mc.ladder");
    realized = 0;
    requested = cap;
    std::size_t target = first;
    while (realized < cap) {
      if (opts.cancel != nullptr && opts.cancel->stop_requested()) break;
      const std::size_t round_len = target - realized;
      last_chunk_size = exec::resolve_chunk_size(round_len, opts.chunk_size);
      TrialAccumulator round = init;
      {
        obs::ScopedTimer round_timer("mc.round");
        round = exec::parallel_reduce_offset(realized, round_len, init,
                                             run_trial, merge_accs, exec_opts);
      }
      total.merge(round);
      realized += round_len;
      ++rounds;
      if (targets_met(total)) {
        precision_met = true;
        break;
      }
      // Double the cumulative total, truncated at the cap (overflow-safe:
      // target <= cap always holds).
      target = target > cap / 2 ? cap : target * 2;
    }
  }

  MonteCarloResults out;
  out.trials = realized;
  out.adaptive = adaptive;
  out.trials_requested = requested;
  out.rounds = rounds;
  out.precision_met = precision_met;
  out.aborted = total.aborted;
  out.non_finite = total.non_finite;
  // Count what the accumulators actually saw rather than assuming every
  // trial ran: under cooperative cancellation whole chunks are skipped,
  // and completed must stay truthful (= finite samples in the estimates).
  out.completed = total.model_cost.count();
  out.aborted_rate = out.trials == 0
                         ? 0.0
                         : static_cast<double>(total.aborted) /
                               static_cast<double>(out.trials);
  out.model_cost = to_estimate(total.model_cost);
  out.elapsed_cost = to_estimate(total.elapsed_cost);
  out.probes = to_estimate(total.probes);
  out.attempts = to_estimate(total.attempts);
  out.waiting_time = to_estimate(total.waiting);
  out.collisions = total.collisions;
  if (out.completed > 0) {
    out.collision_rate = static_cast<double>(total.collisions) /
                         static_cast<double>(out.completed);
    out.collision_ci95 = wilson_ci95(total.collisions, out.completed);
  } else {
    // Every trial aborted: no claim was made, so the collision rate is
    // undefined; report 0 with a maximally-uninformative interval rather
    // than dividing by zero.
    out.collision_rate = 0.0;
    out.collision_ci95 = {0.0, 1.0};
  }
  out.pool_slots = total.pool_slots;
  out.pool_high_water = total.pool_high_water;
  out.pool_reuse = total.pool_reuse;
  if (total.collect) {
    // Campaign-level facts added after the chunk-ordered merge keep the
    // set a pure function of (inputs, seed, trials, targets) — thread-
    // agnostic. The adaptive counters exist only in adaptive mode so
    // fixed-mode metric bytes stay comparable with prior recordings.
    total.metrics.inc(total.metrics.counter("mc.trials.total"), out.trials);
    if (adaptive) {
      total.metrics.inc(total.metrics.counter("mc.rounds"), rounds);
      total.metrics.inc(total.metrics.counter("mc.trials.requested"),
                        requested);
      total.metrics.inc(total.metrics.counter("mc.trials.realized"), realized);
    }
    total.metrics.set_gauge(total.metrics.gauge("mc.chunk.size"),
                            static_cast<double>(last_chunk_size));
    out.metrics = std::move(total.metrics);
    obs::Registry::global().publish(out.metrics);
    // Pool telemetry goes to the registry in its own set, NOT into the
    // campaign's semantic metrics: those are compared byte-for-byte
    // against recordings that predate the event pool.
    obs::MetricSet pool;
    pool.set_gauge(pool.gauge("sim.pool.slots"),
                   static_cast<double>(total.pool_slots));
    pool.set_gauge(pool.gauge("sim.pool.high_water"),
                   static_cast<double>(total.pool_high_water));
    pool.set_gauge(pool.gauge("sim.pool.reuse"),
                   static_cast<double>(total.pool_reuse));
    obs::Registry::global().publish(pool);
  }
  return out;
}

}  // namespace zc::sim
