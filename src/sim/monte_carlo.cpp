#include "sim/monte_carlo.hpp"

#include "common/contract.hpp"

namespace zc::sim {

namespace {

Estimate to_estimate(const RunningStats& stats) {
  return {stats.mean(), stats.stddev(), stats.ci95_halfwidth()};
}

}  // namespace

MonteCarloResults monte_carlo(const NetworkConfig& network,
                              const ZeroconfConfig& protocol,
                              const MonteCarloOptions& opts) {
  ZC_EXPECTS(opts.trials > 0);

  prob::Rng seeder(opts.seed);
  RunningStats model_cost, elapsed_cost, probes, attempts, waiting;
  std::size_t collisions = 0;

  for (std::size_t t = 0; t < opts.trials; ++t) {
    Network net(network, seeder.next_u64());
    const RunResult run = net.run_join(protocol);
    model_cost.add(run.model_cost(protocol.r, opts.probe_cost,
                                  opts.error_cost));
    elapsed_cost.add(run.elapsed_cost(opts.probe_cost, opts.error_cost));
    probes.add(static_cast<double>(run.probes_sent));
    attempts.add(static_cast<double>(run.attempts));
    waiting.add(run.waiting_time);
    if (run.collision) ++collisions;
  }

  MonteCarloResults out;
  out.trials = opts.trials;
  out.model_cost = to_estimate(model_cost);
  out.elapsed_cost = to_estimate(elapsed_cost);
  out.probes = to_estimate(probes);
  out.attempts = to_estimate(attempts);
  out.waiting_time = to_estimate(waiting);
  out.collisions = collisions;
  out.collision_rate =
      static_cast<double>(collisions) / static_cast<double>(opts.trials);
  out.collision_ci95 = wilson_ci95(collisions, opts.trials);
  return out;
}

}  // namespace zc::sim
