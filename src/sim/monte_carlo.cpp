#include "sim/monte_carlo.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "exec/parallel.hpp"
#include "exec/seeding.hpp"

namespace zc::sim {

namespace {

Estimate to_estimate(const RunningStats& stats) {
  return {stats.mean(), stats.stddev(), stats.ci95_halfwidth()};
}

/// Per-chunk partial aggregation of a slice of trials.
struct TrialAccumulator {
  RunningStats model_cost, elapsed_cost, probes, attempts, waiting;
  std::size_t collisions = 0;
  std::size_t aborted = 0;
  std::size_t non_finite = 0;

  void merge(const TrialAccumulator& other) {
    model_cost.merge(other.model_cost);
    elapsed_cost.merge(other.elapsed_cost);
    probes.merge(other.probes);
    attempts.merge(other.attempts);
    waiting.merge(other.waiting);
    collisions += other.collisions;
    aborted += other.aborted;
    non_finite += other.non_finite;
  }
};

}  // namespace

MonteCarloResults monte_carlo(const NetworkConfig& network,
                              const ZeroconfConfig& protocol,
                              const MonteCarloOptions& opts) {
  ZC_REQUIRE(opts.trials > 0, "MonteCarloOptions.trials must be > 0");
  ZC_REQUIRE(std::isfinite(opts.probe_cost) && opts.probe_cost >= 0.0,
             "MonteCarloOptions.probe_cost must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(opts.error_cost) && opts.error_cost >= 0.0,
             "MonteCarloOptions.error_cost must be finite and >= 0");

  exec::ExecOptions exec_opts;
  exec_opts.threads = opts.threads;
  exec_opts.chunk_size = opts.chunk_size;

  const TrialAccumulator total = exec::parallel_reduce(
      opts.trials, TrialAccumulator{},
      [&](TrialAccumulator& acc, std::size_t t) {
        // Counter-based seed: trial t's stream depends only on
        // (opts.seed, t), never on thread assignment or run order.
        Network net(network, exec::split_seed(opts.seed, t));
        const RunResult run = net.run_join(protocol);
        if (run.aborted) {
          // A safety-capped run claimed no address; folding its truncated
          // cost into the estimates would bias them. Tally it instead.
          ++acc.aborted;
          return;
        }
        const double model =
            run.model_cost(protocol.r, opts.probe_cost, opts.error_cost);
        const double elapsed =
            run.elapsed_cost(opts.probe_cost, opts.error_cost);
        if (!std::isfinite(model) || !std::isfinite(elapsed) ||
            !std::isfinite(run.waiting_time)) {
          // Overflow guard: never let an inf/NaN sample poison the
          // Welford accumulators.
          ++acc.non_finite;
          return;
        }
        acc.model_cost.add(model);
        acc.elapsed_cost.add(elapsed);
        acc.probes.add(static_cast<double>(run.probes_sent));
        acc.attempts.add(static_cast<double>(run.attempts));
        acc.waiting.add(run.waiting_time);
        if (run.collision) ++acc.collisions;
      },
      [](TrialAccumulator& into, const TrialAccumulator& from) {
        into.merge(from);
      },
      exec_opts);

  MonteCarloResults out;
  out.trials = opts.trials;
  out.aborted = total.aborted;
  out.non_finite = total.non_finite;
  out.completed = opts.trials - total.aborted - total.non_finite;
  out.aborted_rate = static_cast<double>(total.aborted) /
                     static_cast<double>(opts.trials);
  out.model_cost = to_estimate(total.model_cost);
  out.elapsed_cost = to_estimate(total.elapsed_cost);
  out.probes = to_estimate(total.probes);
  out.attempts = to_estimate(total.attempts);
  out.waiting_time = to_estimate(total.waiting);
  out.collisions = total.collisions;
  if (out.completed > 0) {
    out.collision_rate = static_cast<double>(total.collisions) /
                         static_cast<double>(out.completed);
    out.collision_ci95 = wilson_ci95(total.collisions, out.completed);
  } else {
    // Every trial aborted: no claim was made, so the collision rate is
    // undefined; report 0 with a maximally-uninformative interval rather
    // than dividing by zero.
    out.collision_rate = 0.0;
    out.collision_ci95 = {0.0, 1.0};
  }
  return out;
}

}  // namespace zc::sim
