#include "sim/host.hpp"

#include "common/contract.hpp"

namespace zc::sim {

ConfiguredHost::ConfiguredHost(
    Simulator& sim, Medium& medium,
    std::shared_ptr<const prob::DelayDistribution> response, prob::Rng& rng)
    : sim_(sim),
      medium_(medium),
      address_(kNoAddress),
      response_(std::move(response)),
      rng_(rng) {
  id_ = medium_.attach([this](const Packet& p) { on_packet(p); });
}

ConfiguredHost::ConfiguredHost(
    Simulator& sim, Medium& medium, Address address,
    std::shared_ptr<const prob::DelayDistribution> response, prob::Rng& rng)
    : ConfiguredHost(sim, medium, std::move(response), rng) {
  ZC_EXPECTS(address != kNoAddress);
  reset(address);
}

ConfiguredHost::ConfiguredHost(ConfiguredHost&& other) noexcept
    : sim_(other.sim_),
      medium_(other.medium_),
      address_(other.address_),
      response_(std::move(other.response_)),
      rng_(other.rng_),
      id_(other.id_),
      probes_answered_(other.probes_answered_),
      probes_ignored_(other.probes_ignored_),
      conflicts_seen_(other.conflicts_seen_) {
  // The interface slot keeps the id; only the callback target relocates.
  medium_.rebind(id_, [this](const Packet& p) { on_packet(p); });
}

void ConfiguredHost::reset(Address address) {
  ZC_EXPECTS(address != kNoAddress);
  if (address_ != kNoAddress) medium_.unsubscribe(id_, address_);
  address_ = address;
  medium_.subscribe(id_, address_);
  probes_answered_ = 0;
  probes_ignored_ = 0;
  conflicts_seen_ = 0;
}

void ConfiguredHost::on_packet(const Packet& packet) {
  if (packet_address(packet) != address_) return;
  // A foreign announcement claims our address: conflict in the
  // maintenance phase. Defend through the same lossy reply path.
  if (const auto* announce = std::get_if<ArpAnnounce>(&packet)) {
    if (announce->sender != id_) ++conflicts_seen_;
    // fall through to defend below
  } else if (!std::holds_alternative<ArpProbe>(packet)) {
    return;  // replies are not answered
  }

  double latency = 0.0;
  if (response_ != nullptr) {
    const auto sampled = response_->sample(rng_);
    if (!sampled.has_value()) {
      // Busy host / lost reply: the probe goes unanswered (Sec. 3.1).
      ++probes_ignored_;
      return;
    }
    latency = *sampled;
  }
  ++probes_answered_;
  sim_.schedule(latency, [this] {
    medium_.broadcast(ArpReply{address_, id_});
  });
}

}  // namespace zc::sim
