#include "sim/host.hpp"

#include "common/contract.hpp"

namespace zc::sim {

ConfiguredHost::ConfiguredHost(
    Simulator& sim, Medium& medium, Address address,
    std::shared_ptr<const prob::DelayDistribution> response, prob::Rng& rng)
    : sim_(sim),
      medium_(medium),
      address_(address),
      response_(std::move(response)),
      rng_(rng) {
  ZC_EXPECTS(address_ != kNoAddress);
  id_ = medium_.attach([this](const Packet& p) { on_packet(p); });
  medium_.subscribe(id_, address_);
}

void ConfiguredHost::on_packet(const Packet& packet) {
  if (packet_address(packet) != address_) return;
  // A foreign announcement claims our address: conflict in the
  // maintenance phase. Defend through the same lossy reply path.
  if (const auto* announce = std::get_if<ArpAnnounce>(&packet)) {
    if (announce->sender != id_) ++conflicts_seen_;
    // fall through to defend below
  } else if (!std::holds_alternative<ArpProbe>(packet)) {
    return;  // replies are not answered
  }

  double latency = 0.0;
  if (response_ != nullptr) {
    const auto sampled = response_->sample(rng_);
    if (!sampled.has_value()) {
      // Busy host / lost reply: the probe goes unanswered (Sec. 3.1).
      ++probes_ignored_;
      return;
    }
    latency = *sampled;
  }
  ++probes_answered_;
  sim_.schedule(latency, [this] {
    medium_.broadcast(ArpReply{address_, id_});
  });
}

}  // namespace zc::sim
