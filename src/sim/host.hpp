#pragma once

/// \file host.hpp
/// A host already configured with a link-local address: the ARP responder
/// side of the protocol (Sec. 2). On receiving a probe for its address it
/// broadcasts a reply after a stochastic response time; the *end-to-end*
/// reply-delay distribution F_X of the model aggregates this response
/// time with the medium's transit behaviour.

#include <memory>

#include "prob/delay.hpp"
#include "sim/medium.hpp"

namespace zc::sim {

/// ARP responder configured with a fixed address.
///
/// Designed for storage by value in a reserved std::vector (the Network
/// keeps one per configured host across trial resets): the move
/// constructor re-binds the medium receiver to the new `this`. Moving a
/// host with a reply event in flight is not supported — relocation only
/// happens while the population is being built, before any run.
class ConfiguredHost {
 public:
  /// Attach to the medium without an address yet; `reset()` configures.
  /// \param response  distribution of the host's response latency for one
  ///                  probe; defective mass models a busy host that never
  ///                  answers. May be nullptr for instant, reliable reply.
  ConfiguredHost(Simulator& sim, Medium& medium,
                 std::shared_ptr<const prob::DelayDistribution> response,
                 prob::Rng& rng);

  /// Attach and configure `address` immediately.
  ConfiguredHost(Simulator& sim, Medium& medium, Address address,
                 std::shared_ptr<const prob::DelayDistribution> response,
                 prob::Rng& rng);

  ConfiguredHost(ConfiguredHost&& other) noexcept;
  ConfiguredHost(const ConfiguredHost&) = delete;
  ConfiguredHost& operator=(ConfiguredHost&&) = delete;
  ConfiguredHost& operator=(const ConfiguredHost&) = delete;

  /// Re-configure for a new trial: subscribe to `address` (dropping any
  /// previous subscription) and zero the per-run counters. The attachment
  /// and response distribution persist.
  void reset(Address address);

  [[nodiscard]] Address address() const noexcept { return address_; }
  [[nodiscard]] HostId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t probes_answered() const noexcept {
    return probes_answered_;
  }
  [[nodiscard]] std::size_t probes_ignored() const noexcept {
    return probes_ignored_;
  }
  /// Foreign announcements observed for this host's own address
  /// (maintenance-phase conflicts).
  [[nodiscard]] std::size_t conflicts_seen() const noexcept {
    return conflicts_seen_;
  }

 private:
  void on_packet(const Packet& packet);

  Simulator& sim_;
  Medium& medium_;
  Address address_;
  std::shared_ptr<const prob::DelayDistribution> response_;
  prob::Rng& rng_;
  HostId id_ = 0;
  std::size_t probes_answered_ = 0;
  std::size_t probes_ignored_ = 0;
  std::size_t conflicts_seen_ = 0;
};

}  // namespace zc::sim
