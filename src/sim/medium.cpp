#include "sim/medium.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace zc::sim {

Medium::Medium(Simulator& sim, MediumConfig config, prob::Rng& rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  ZC_REQUIRE(std::isfinite(config_.loss) && 0.0 <= config_.loss &&
                 config_.loss < 1.0,
             "MediumConfig.loss must be in [0, 1)");
}

HostId Medium::attach(Receiver receiver) {
  ZC_EXPECTS(receiver != nullptr);
  receivers_.push_back(std::move(receiver));
  return static_cast<HostId>(receivers_.size() - 1);
}

void Medium::subscribe(HostId host, Address address) {
  ZC_EXPECTS(host < receivers_.size());
  auto& subs = subscribers_[address];
  if (std::find(subs.begin(), subs.end(), host) == subs.end())
    subs.push_back(host);
}

void Medium::unsubscribe(HostId host, Address address) {
  const auto it = subscribers_.find(address);
  if (it == subscribers_.end()) return;
  auto& subs = it->second;
  subs.erase(std::remove(subs.begin(), subs.end(), host), subs.end());
  if (subs.empty()) subscribers_.erase(it);
}

void Medium::bind_metrics(obs::MetricSet* set) {
  metrics_ = set;
  if (metrics_ == nullptr) return;
  for (std::size_t i = 0; i < faults::kDeliveryCauseCount; ++i) {
    const auto cause = static_cast<faults::DeliveryCause>(i);
    cause_ids_[i] = metrics_->counter(std::string("sim.delivery.") +
                                      faults::to_string(cause));
  }
}

void Medium::broadcast(const Packet& packet) {
  const HostId sender = packet_sender(packet);
  const auto count_cause = [this](faults::DeliveryCause cause) {
    ZC_OBS_ONLY(if (metrics_ != nullptr) metrics_->inc(
        cause_ids_[static_cast<std::size_t>(cause)]));
  };
  const auto it = subscribers_.find(packet_address(packet));
  if (it == subscribers_.end()) return;
  // Copy: receivers may (un)subscribe while handling a delivery.
  const std::vector<HostId> targets = it->second;
  for (const HostId target : targets) {
    if (target == sender) continue;
    ++packets_sent_;

    // Injected faults first: a faulted delivery never consumes draws from
    // the medium's own stream, so the fault-free portion of a run is
    // unchanged by enabling a schedule.
    faults::FaultDecision fate;
    if (fault_model_ != nullptr)
      fate = fault_model_->on_delivery({sim_.now(), sender, target});
    if (fate.drop) {
      ++packets_lost_;
      ++packets_faulted_;
      count_cause(fate.cause);
      if (observer_)
        observer_({sim_.now(), sim_.now(), packet, target, true, fate.cause});
      continue;
    }

    if (config_.loss > 0.0 && rng_.bernoulli(config_.loss)) {
      ++packets_lost_;
      count_cause(faults::DeliveryCause::random_loss);
      if (observer_)
        observer_({sim_.now(), sim_.now(), packet, target, true,
                   faults::DeliveryCause::random_loss});
      continue;
    }

    for (unsigned copy = 0; copy < fate.copies; ++copy) {
      const double base =
          config_.transit_delay ? config_.transit_delay->sample(rng_) : 0.0;
      const double delay =
          base * fate.delay_multiplier + fate.extra_delay[copy];
      const faults::DeliveryCause cause =
          copy > 0 ? faults::DeliveryCause::duplicate
                   : (fate.reordered ? faults::DeliveryCause::reordered
                                     : faults::DeliveryCause::delivered);
      if (copy > 0) ++packets_duplicated_;
      count_cause(cause);
      if (observer_)
        observer_(
            {sim_.now(), sim_.now() + delay, packet, target, false, cause});
      sim_.schedule(delay, [this, target, packet] {
        // Deliver only if the target is still subscribed to this address
        // at delivery time (it may have moved on to a new candidate).
        const auto subs_it = subscribers_.find(packet_address(packet));
        if (subs_it == subscribers_.end()) return;
        const auto& subs = subs_it->second;
        if (std::find(subs.begin(), subs.end(), target) == subs.end()) return;
        receivers_[target](packet);
      });
    }
  }
}

}  // namespace zc::sim
