#include "sim/medium.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace zc::sim {

Medium::Medium(Simulator& sim, MediumConfig config, prob::Rng& rng)
    : sim_(sim), config_(std::move(config)), rng_(rng) {
  ZC_REQUIRE(std::isfinite(config_.loss) && 0.0 <= config_.loss &&
                 config_.loss < 1.0,
             "MediumConfig.loss must be in [0, 1)");
}

HostId Medium::attach(Receiver receiver) {
  ZC_EXPECTS(receiver != nullptr);
  if (!free_ids_.empty()) {
    const HostId id = free_ids_.back();
    free_ids_.pop_back();
    receivers_[id] = std::move(receiver);
    return id;
  }
  receivers_.push_back(std::move(receiver));
  return static_cast<HostId>(receivers_.size() - 1);
}

void Medium::detach(HostId host) {
  ZC_EXPECTS(host < receivers_.size());
  ZC_EXPECTS(receivers_[host] != nullptr);
  receivers_[host] = nullptr;
  free_ids_.push_back(host);
}

void Medium::rebind(HostId host, Receiver receiver) {
  ZC_EXPECTS(host < receivers_.size());
  ZC_EXPECTS(receiver != nullptr);
  receivers_[host] = std::move(receiver);
}

void Medium::reserve_addresses(Address max_address) {
  if (heads_.size() <= max_address) heads_.resize(max_address + 1, kNil);
}

void Medium::subscribe(HostId host, Address address) {
  ZC_EXPECTS(host < receivers_.size());
  ZC_EXPECTS(receivers_[host] != nullptr);
  if (address >= heads_.size()) heads_.resize(address + 1, kNil);
  // Append at the tail: broadcast iterates in subscription order, which
  // the delivery sequence (and hence every downstream RNG draw) depends
  // on. Lists are short — one walk doubles as the duplicate check.
  std::uint32_t tail = kNil;
  for (std::uint32_t i = heads_[address]; i != kNil; i = nodes_[i].next) {
    if (nodes_[i].host == host) return;  // already subscribed
    tail = i;
  }
  std::uint32_t node;
  if (free_nodes_ != kNil) {
    node = free_nodes_;
    free_nodes_ = nodes_[node].next;
  } else {
    nodes_.push_back(SubNode{});
    node = static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  nodes_[node] = SubNode{host, kNil};
  if (tail == kNil) {
    dirty_.push_back(address);
    heads_[address] = node;
  } else {
    nodes_[tail].next = node;
  }
}

void Medium::unsubscribe(HostId host, Address address) {
  if (address >= heads_.size()) return;
  std::uint32_t prev = kNil;
  for (std::uint32_t i = heads_[address]; i != kNil;
       prev = i, i = nodes_[i].next) {
    if (nodes_[i].host != host) continue;
    if (prev == kNil) {
      heads_[address] = nodes_[i].next;
    } else {
      nodes_[prev].next = nodes_[i].next;
    }
    nodes_[i].next = free_nodes_;
    free_nodes_ = i;
    return;
  }
}

bool Medium::subscribed(HostId host, Address address) const noexcept {
  if (address >= heads_.size()) return false;
  for (std::uint32_t i = heads_[address]; i != kNil; i = nodes_[i].next) {
    if (nodes_[i].host == host) return true;
  }
  return false;
}

void Medium::reset() {
  // Return every chain of a touched address to the free list. dirty_ may
  // hold duplicates (an address emptied by unsubscribe and re-subscribed
  // re-enters); freeing an already-empty chain is a no-op.
  for (const Address address : dirty_) {
    std::uint32_t node = heads_[address];
    while (node != kNil) {
      const std::uint32_t next = nodes_[node].next;
      nodes_[node].next = free_nodes_;
      free_nodes_ = node;
      node = next;
    }
    heads_[address] = kNil;
  }
  dirty_.clear();
  // Trim trailing detached slots so the next attach sequence yields the
  // ids a freshly-built medium would (interior holes, if any, stay on the
  // free list).
  while (!receivers_.empty() && receivers_.back() == nullptr)
    receivers_.pop_back();
  std::erase_if(free_ids_,
                [this](HostId id) { return id >= receivers_.size(); });
  packets_sent_ = 0;
  packets_lost_ = 0;
  packets_faulted_ = 0;
  packets_duplicated_ = 0;
}

void Medium::bind_metrics(obs::MetricSet* set) {
  metrics_ = set;
  if (metrics_ == nullptr) return;
  for (std::size_t i = 0; i < faults::kDeliveryCauseCount; ++i) {
    const auto cause = static_cast<faults::DeliveryCause>(i);
    cause_ids_[i] = metrics_->counter(std::string("sim.delivery.") +
                                      faults::to_string(cause));
  }
}

void Medium::broadcast(const Packet& packet) {
  const HostId sender = packet_sender(packet);
  const Address address = packet_address(packet);
  const auto count_cause = [this](faults::DeliveryCause cause) {
    ZC_OBS_ONLY(if (metrics_ != nullptr) metrics_->inc(
        cause_ids_[static_cast<std::size_t>(cause)]));
  };
  if (address >= heads_.size()) return;
  // Snapshot the targets: receivers may (un)subscribe while deliveries
  // are decided. The snapshot lives in a persistent scratch region
  // (index range, not a copy) so a nested broadcast from an observer
  // appends after `last` and truncates back without clobbering ours.
  const std::size_t first = scratch_.size();
  for (std::uint32_t i = heads_[address]; i != kNil; i = nodes_[i].next)
    scratch_.push_back(nodes_[i].host);
  const std::size_t last = scratch_.size();
  for (std::size_t k = first; k < last; ++k) {
    const HostId target = scratch_[k];
    if (target == sender) continue;
    ++packets_sent_;

    // Injected faults first: a faulted delivery never consumes draws from
    // the medium's own stream, so the fault-free portion of a run is
    // unchanged by enabling a schedule.
    faults::FaultDecision fate;
    if (fault_model_ != nullptr)
      fate = fault_model_->on_delivery({sim_.now(), sender, target});
    if (fate.drop) {
      ++packets_lost_;
      ++packets_faulted_;
      count_cause(fate.cause);
      if (observer_)
        observer_({sim_.now(), sim_.now(), packet, target, true, fate.cause});
      continue;
    }

    if (config_.loss > 0.0 && rng_.bernoulli(config_.loss)) {
      ++packets_lost_;
      count_cause(faults::DeliveryCause::random_loss);
      if (observer_)
        observer_({sim_.now(), sim_.now(), packet, target, true,
                   faults::DeliveryCause::random_loss});
      continue;
    }

    for (unsigned copy = 0; copy < fate.copies; ++copy) {
      const double base =
          config_.transit_delay ? config_.transit_delay->sample(rng_) : 0.0;
      const double delay =
          base * fate.delay_multiplier + fate.extra_delay[copy];
      const faults::DeliveryCause cause =
          copy > 0 ? faults::DeliveryCause::duplicate
                   : (fate.reordered ? faults::DeliveryCause::reordered
                                     : faults::DeliveryCause::delivered);
      if (copy > 0) ++packets_duplicated_;
      count_cause(cause);
      if (observer_)
        observer_(
            {sim_.now(), sim_.now() + delay, packet, target, false, cause});
      sim_.schedule(delay, [this, target, packet] {
        // Deliver only if the target is still subscribed to this address
        // at delivery time (it may have moved on to a new candidate) and
        // still attached (stale subscriptions of a detached id are inert).
        if (!subscribed(target, packet_address(packet))) return;
        if (target >= receivers_.size() || receivers_[target] == nullptr)
          return;
        receivers_[target](packet);
      });
    }
  }
  scratch_.resize(first);
}

}  // namespace zc::sim
