#pragma once

/// \file packet.hpp
/// ARP packets exchanged on the simulated link-local network (Sec. 2).
/// Only the zeroconf-relevant fields are modeled.

#include <cstdint>
#include <variant>

namespace zc::sim {

/// Identifier of an attached network interface.
using HostId = std::uint32_t;

/// An IPv4 link-local address, encoded 1..65024 (0 = unassigned).
using Address = std::uint32_t;

/// No address configured yet.
inline constexpr Address kNoAddress = 0;

/// ARP probe: "what is the hardware address belonging to IP number U?"
/// Sent by a configuring host with the *candidate* address in `address`
/// and an unspecified sender protocol address.
struct ArpProbe {
  Address address = kNoAddress;  ///< the probed (candidate) address
  HostId sender = 0;
};

/// ARP reply: broadcast by the host already configured with the probed
/// address; its mere existence signals "address in use".
struct ArpReply {
  Address address = kNoAddress;  ///< the address being defended
  HostId responder = 0;
};

/// ARP announcement (gratuitous ARP): sent by a host right after claiming
/// an address — "I am now using U". The collision-detection vehicle of
/// the protocol's maintenance phase.
struct ArpAnnounce {
  Address address = kNoAddress;  ///< the freshly claimed address
  HostId sender = 0;
};

/// Any packet on the medium.
using Packet = std::variant<ArpProbe, ArpReply, ArpAnnounce>;

/// The address a packet pertains to (probe target / defended / claimed).
[[nodiscard]] inline Address packet_address(const Packet& p) {
  return std::visit([](const auto& v) { return v.address; }, p);
}

/// The sending interface.
[[nodiscard]] inline HostId packet_sender(const Packet& p) {
  if (const auto* probe = std::get_if<ArpProbe>(&p)) return probe->sender;
  if (const auto* reply = std::get_if<ArpReply>(&p)) return reply->responder;
  return std::get<ArpAnnounce>(p).sender;
}

}  // namespace zc::sim
