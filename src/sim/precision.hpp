#pragma once

/// \file precision.hpp
/// Adaptive-precision targets for sequential Monte-Carlo sampling.
///
/// A fixed `trials` budget over-samples easy cells and under-resolves the
/// rare-event cells (collision probability at the cost-optimal (n, r))
/// that decide the paper's optimization. `PrecisionTargets` instead
/// states the *accuracy* wanted: trials run in a deterministic doubling
/// ladder of rounds and stop once every requested 95% confidence
/// interval is narrow enough (or the budget cap is hit).
///
/// This header is deliberately lightweight — no sim dependencies — so the
/// experiment engine's spec layer can include it without pulling in the
/// simulator. The stopping predicates live here as free functions so
/// tests can exercise the rules directly against hand-built intervals.

#include <cmath>
#include <cstddef>

namespace zc::sim {

/// Accuracy contract of an adaptive Monte-Carlo run. Disabled (all-zero
/// relative targets) reproduces the historical fixed-`trials` behavior
/// byte-for-byte. A target is met when the 95% CI half-width falls to
/// `rel * |estimate|` — or below `abs_ci_floor`, which both caps useless
/// tightening around near-zero estimates and gives zero-event collision
/// cells (relative width undefined) a way to terminate early.
struct PrecisionTargets {
  /// Relative 95% CI half-width target for the model-cost mean; 0 = no
  /// cost-precision requirement.
  double rel_ci_model_cost = 0.0;

  /// Relative 95% CI half-width target for the collision rate, measured
  /// on the Wilson interval (half its width vs. the point rate); 0 = no
  /// collision-precision requirement.
  double rel_ci_collision = 0.0;

  /// Absolute half-width under which a target counts as met regardless
  /// of the relative test. 0 = pure relative stopping.
  double abs_ci_floor = 0.0;

  /// First-round size (and realized-count lower bound); 0 = default
  /// (kDefaultFirstRound). Too-small first rounds make the early CI
  /// estimates noisy, not wrong — stopping only ever *consults* them.
  std::size_t min_trials = 0;

  /// Hard budget cap; 0 = fall back to MonteCarloOptions::trials. The
  /// ladder never exceeds it even with every target unmet.
  std::size_t max_trials = 0;

  /// Adaptive sampling is in effect iff some relative target is set.
  [[nodiscard]] bool enabled() const noexcept {
    return rel_ci_model_cost > 0.0 || rel_ci_collision > 0.0;
  }
};

/// First-round size when `min_trials` is 0: large enough for a stable
/// variance estimate, small enough that easy cells stop almost
/// immediately.
inline constexpr std::size_t kDefaultFirstRound = 512;

/// Cost stopping rule: the Student-t 95% half-width on the mean is at or
/// below the relative target (or the absolute floor). Vacuously true
/// when no cost target is set. NaN half-widths (fewer than two samples —
/// see RunningStats::ci95_halfwidth) never satisfy it: one observation
/// carries no width information.
[[nodiscard]] inline bool cost_target_met(const PrecisionTargets& targets,
                                          double mean,
                                          double ci95_halfwidth,
                                          std::size_t samples) noexcept {
  if (targets.rel_ci_model_cost <= 0.0) return true;
  if (samples < 2 || !std::isfinite(ci95_halfwidth)) return false;
  if (ci95_halfwidth <= targets.abs_ci_floor) return true;
  return ci95_halfwidth <= targets.rel_ci_model_cost * std::fabs(mean);
}

/// Collision stopping rule over the Wilson 95% interval [lower, upper]
/// of `collisions / completed`. Relative width is undefined until the
/// first event is observed, so zero-collision states satisfy the target
/// only through the absolute floor (the Wilson upper bound shrinks like
/// z^2/n, so a floor *does* terminate truly-zero-rate cells). Vacuously
/// true when no collision target is set.
[[nodiscard]] inline bool collision_target_met(const PrecisionTargets& targets,
                                               std::size_t collisions,
                                               std::size_t completed,
                                               double wilson_lower,
                                               double wilson_upper) noexcept {
  if (targets.rel_ci_collision <= 0.0) return true;
  if (completed == 0) return false;
  const double half = 0.5 * (wilson_upper - wilson_lower);
  if (half <= targets.abs_ci_floor) return true;
  if (collisions == 0) return false;
  const double rate =
      static_cast<double>(collisions) / static_cast<double>(completed);
  return half <= targets.rel_ci_collision * rate;
}

}  // namespace zc::sim
