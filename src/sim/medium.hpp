#pragma once

/// \file medium.hpp
/// The shared broadcast medium (one link-local segment). Delivery is
/// per-receiver: each (packet, receiver) pair independently suffers the
/// configured loss probability and transit delay — the "physical" layer
/// under the model's abstract reply-delay distribution.
///
/// Receivers subscribe per address (ARP filtering): a packet for address
/// U is delivered to subscribers of U only. This is semantically
/// equivalent to full broadcast for the zeroconf protocol (only parties
/// interested in U act on packets about U) and keeps large simulated
/// networks cheap.
///
/// Subscriptions live in a pooled intrusive-list table (address-indexed
/// heads into a node slab with a free list) instead of an
/// unordered_map<Address, vector>: steady-state subscribe/unsubscribe
/// churn — every address attempt of every trial — touches no allocator.
/// `reset()` clears only the addresses that were actually used (dirty
/// list) so a reused Medium costs O(subscriptions), not O(address
/// space), per trial.

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "faults/fault.hpp"
#include "obs/metrics.hpp"
#include "prob/proper.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace zc::sim {

/// Transit characteristics of the medium.
struct MediumConfig {
  /// Per-delivery packet loss probability, in [0, 1).
  double loss = 0.0;
  /// Per-delivery transit delay; nullptr = instantaneous delivery.
  std::shared_ptr<const prob::ProperDistribution> transit_delay;
};

/// One delivery event on the medium, as seen by a trace observer.
struct DeliveryRecord {
  double sent_at = 0.0;      ///< broadcast time
  double delivered_at = 0.0; ///< delivery time (== sent_at when lost)
  Packet packet;
  HostId target = 0;
  bool lost = false;         ///< convenience: is_drop(cause)
  /// Why the delivery ended this way — distinguishes injected-fault drops
  /// (blackout, burst loss, deaf target) from the medium's own random
  /// loss, and flags duplicated/reordered deliveries, so traces stay
  /// auditable under fault injection.
  faults::DeliveryCause cause = faults::DeliveryCause::delivered;
};

/// One broadcast segment.
class Medium {
 public:
  using Receiver = std::function<void(const Packet&)>;
  using Observer = std::function<void(const DeliveryRecord&)>;

  Medium(Simulator& sim, MediumConfig config, prob::Rng& rng);

  /// Attach an interface; the returned id is used as the packet sender id
  /// and for (un)subscription. Ids freed by `detach` are recycled LIFO.
  HostId attach(Receiver receiver);

  /// Release `host`'s interface for reuse. The host must have no pending
  /// deliveries it cares about (they are silently dropped) and should
  /// unsubscribe its addresses first; stale subscriptions of a detached
  /// id are inert.
  void detach(HostId host);

  /// Replace the receiver callback of an attached interface in place
  /// (used when a host object relocates and its captured `this` moves).
  void rebind(HostId host, Receiver receiver);

  /// Pre-size the per-address head table for addresses in [0, max_address]
  /// so no subscribe() ever grows it — required for the allocation-free
  /// steady state when addresses are drawn from a known space.
  void reserve_addresses(Address max_address);

  /// Subscribe `host` to packets concerning `address`.
  void subscribe(HostId host, Address address);

  /// Remove `host`'s subscription to `address` (no-op if absent).
  void unsubscribe(HostId host, Address address);

  /// Broadcast `packet` from its sender: schedule delivery to every other
  /// subscriber of the packet's address, independently applying loss and
  /// transit delay.
  void broadcast(const Packet& packet);

  /// Drop all subscriptions and zero the delivery counters, keeping
  /// attachments, pool capacity, the observer, the fault model, and the
  /// metric binding. Trailing detached interface slots are trimmed so a
  /// reset Medium assigns the same ids a freshly-built one would — part
  /// of the Network::reset determinism contract (DESIGN.md §"Sim-core
  /// memory model").
  void reset();

  [[nodiscard]] std::size_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] std::size_t packets_lost() const noexcept {
    return packets_lost_;
  }

  /// Install a trace observer invoked for every (packet, receiver)
  /// delivery decision — losses included, at their send time. Pass
  /// nullptr to disable tracing.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Install a fault model consulted once per (packet, receiver) delivery
  /// decision (adversarial conditions layered over the base loss/delay).
  /// Non-owning; the model must outlive the medium's use. Pass nullptr to
  /// restore the fault-free medium.
  void set_fault_model(faults::FaultModel* model) { fault_model_ = model; }

  /// Deliveries dropped by the fault model (subset of packets_lost()).
  [[nodiscard]] std::size_t packets_faulted() const noexcept {
    return packets_faulted_;
  }
  /// Extra copies injected by duplication (not counted in packets_sent()).
  [[nodiscard]] std::size_t packets_duplicated() const noexcept {
    return packets_duplicated_;
  }

  /// Export per-DeliveryCause outcome counters ("sim.delivery.<cause>")
  /// into `set`: ids are resolved once here, so the per-delivery cost in
  /// broadcast() is a single indexed add. Non-owning — `set` must outlive
  /// the medium's use; pass nullptr to stop counting.
  void bind_metrics(obs::MetricSet* set);

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  /// One subscription: intrusive singly-linked node in the slab.
  struct SubNode {
    HostId host = 0;
    std::uint32_t next = kNil;
  };

  [[nodiscard]] bool subscribed(HostId host, Address address) const noexcept;

  Observer observer_;
  Simulator& sim_;
  MediumConfig config_;
  prob::Rng& rng_;
  faults::FaultModel* fault_model_ = nullptr;

  std::vector<Receiver> receivers_;
  std::vector<HostId> free_ids_;  ///< detached interface slots, LIFO

  std::vector<std::uint32_t> heads_;  ///< address -> first SubNode (lazy)
  std::vector<SubNode> nodes_;        ///< subscription slab
  std::uint32_t free_nodes_ = kNil;   ///< intrusive free list through next
  std::vector<Address> dirty_;        ///< addresses with (past) subscribers
  std::vector<HostId> scratch_;       ///< broadcast target snapshot

  std::size_t packets_sent_ = 0;
  std::size_t packets_lost_ = 0;
  std::size_t packets_faulted_ = 0;
  std::size_t packets_duplicated_ = 0;

  obs::MetricSet* metrics_ = nullptr;
  std::array<obs::MetricId, faults::kDeliveryCauseCount> cause_ids_{};
};

}  // namespace zc::sim
