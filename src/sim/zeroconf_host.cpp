#include "sim/zeroconf_host.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/contract.hpp"

namespace zc::sim {

void ZeroconfConfig::validate() const {
  // The model-faithful r = 0 limit is legal in the simulator (a zero
  // window expires immediately), so mirror the analytic evaluators'
  // allow_zero_r relaxation.
  schedule.validate(/*allow_zero_r=*/true);
  ZC_REQUIRE(std::isfinite(probe_wait_max) && probe_wait_max >= 0.0,
             "ZeroconfConfig.probe_wait_max must be finite and >= 0");
  ZC_REQUIRE(rate_limit_threshold >= 1,
             "ZeroconfConfig.rate_limit_threshold must be >= 1");
  ZC_REQUIRE(std::isfinite(rate_limit_delay) && rate_limit_delay >= 0.0,
             "ZeroconfConfig.rate_limit_delay must be finite and >= 0");
  ZC_REQUIRE(std::isfinite(announce_interval) && announce_interval >= 0.0,
             "ZeroconfConfig.announce_interval must be finite and >= 0");
  // max_attempts / max_probes: the full unsigned range is valid (0 =
  // unbounded; small caps deliberately force aborts), so there is
  // nothing to reject.
}

ZeroconfHost::ZeroconfHost(Simulator& sim, Medium& medium,
                           Address address_space, ZeroconfConfig config,
                           prob::Rng& rng, std::function<void()> on_done)
    : sim_(sim),
      medium_(medium),
      address_space_(address_space),
      config_(std::move(config)),
      rng_(rng),
      on_done_(std::move(on_done)) {
  ZC_EXPECTS(address_space_ >= 1);
  config_.validate();
  id_ = medium_.attach([this](const Packet& p) { on_packet(p); });
}

ZeroconfHost::~ZeroconfHost() {
  if (candidate_ != kNoAddress) medium_.unsubscribe(id_, candidate_);
  if (configured_address_ != kNoAddress)
    medium_.unsubscribe(id_, configured_address_);
  medium_.detach(id_);
}

void ZeroconfHost::start() {
  ZC_EXPECTS(!started_);
  started_ = true;
  begin_attempt();
}

void ZeroconfHost::abort() {
  if (outcome_ != Outcome::pending) return;
  outcome_ = Outcome::aborted;
  if (candidate_ != kNoAddress) {
    // Count the partial listening period only if one was in flight.
    if (period_timer_.pending()) waiting_time_ += sim_.now() - period_start_;
    medium_.unsubscribe(id_, candidate_);
    candidate_ = kNoAddress;
  }
  period_timer_.cancel();
  finish_time_ = sim_.now();
  if (on_done_) on_done_();
}

bool ZeroconfHost::hit_safety_cap() const {
  return (config_.max_attempts > 0 && attempts_ >= config_.max_attempts) ||
         (config_.max_probes > 0 && probes_sent_ >= config_.max_probes);
}

Address ZeroconfHost::pick_candidate() {
  // Uniform over [1, address_space]; with avoidance on, re-draw until a
  // fresh address appears (the failed set is tiny relative to the space).
  ZC_EXPECTS(!config_.avoid_failed_addresses ||
             failed_.size() < address_space_);
  while (true) {
    const auto addr =
        static_cast<Address>(1 + rng_.uniform_below(address_space_));
    if (!config_.avoid_failed_addresses ||
        std::find(failed_.begin(), failed_.end(), addr) == failed_.end())
      return addr;
  }
}

void ZeroconfHost::begin_attempt() {
  // Safety cap: in a hostile regime (every address taken, permanently
  // jammed medium) the draft's loop would never terminate; give up with
  // an explicit aborted outcome instead.
  if (hit_safety_cap()) {
    abort();
    return;
  }
  ++attempts_;
  probes_this_attempt_ = 0;
  candidate_ = pick_candidate();
  medium_.subscribe(id_, candidate_);
  if (config_.probe_wait_max > 0.0) {
    // Draft PROBE_WAIT: listen (conflicts abort) but delay the first probe.
    period_start_ = sim_.now();
    period_timer_ = sim_.schedule(rng_.uniform(0.0, config_.probe_wait_max),
                                  [this] { send_probe(); });
  } else {
    send_probe();
  }
}

void ZeroconfHost::send_probe() {
  if (config_.max_probes > 0 && probes_sent_ >= config_.max_probes) {
    abort();
    return;
  }
  ++probes_this_attempt_;
  ++probes_sent_;
  medium_.broadcast(ArpProbe{candidate_, id_});
  period_start_ = sim_.now();
  const double window = config_.schedule.timeout(probes_this_attempt_);
  // Model accounting charges the full window per sent probe. The uniform
  // case is reconstructed as probes_sent * r at result time (bit-exact
  // historical arithmetic), so only non-uniform schedules accumulate.
  if (!config_.schedule.is_effectively_uniform()) model_listening_ += window;
  period_timer_ = sim_.schedule(window, [this] { on_period_end(); });
}

void ZeroconfHost::on_period_end() {
  waiting_time_ += sim_.now() - period_start_;
  if (probes_this_attempt_ < config_.schedule.n()) {
    send_probe();
  } else {
    claim();
  }
}

void ZeroconfHost::on_packet(const Packet& packet) {
  // Once configured, defend the claimed address like any ConfiguredHost.
  if (outcome_ == Outcome::configured) {
    if (packet_address(packet) != configured_address_) return;
    // A defense reply, or another host claiming/announcing our address:
    // the collision is now known on both sides.
    if (std::holds_alternative<ArpReply>(packet) ||
        std::holds_alternative<ArpAnnounce>(packet)) {
      mark_collision_detected();
      return;
    }
    const auto* probe = std::get_if<ArpProbe>(&packet);
    if (probe == nullptr) return;
    double latency = 0.0;
    if (config_.defend_response != nullptr) {
      const auto sampled = config_.defend_response->sample(rng_);
      if (!sampled.has_value()) return;  // busy / reply lost
      latency = *sampled;
    }
    sim_.schedule(latency, [this] {
      medium_.broadcast(ArpReply{configured_address_, id_});
    });
    return;
  }

  if (candidate_ == kNoAddress) return;
  if (packet_address(packet) != candidate_) return;

  if (std::holds_alternative<ArpReply>(packet) ||
      std::holds_alternative<ArpAnnounce>(packet)) {
    handle_conflict();
    return;
  }
  // A probe from another configuring host for our candidate: both must
  // back off per the draft's simultaneous-probe rule.
  if (config_.detect_probe_conflicts &&
      std::holds_alternative<ArpProbe>(packet)) {
    handle_conflict();
  }
}

void ZeroconfHost::handle_conflict() {
  ++conflicts_;
  // Only the avoidance path reads the set; with it off, skip the
  // bookkeeping entirely (keeps the default join allocation-free).
  if (config_.avoid_failed_addresses) failed_.push_back(candidate_);
  waiting_time_ += sim_.now() - period_start_;  // partial listening period
  period_timer_.cancel();
  medium_.unsubscribe(id_, candidate_);
  candidate_ = kNoAddress;

  const bool limited = config_.rate_limit &&
                       conflicts_ >= config_.rate_limit_threshold;
  const double delay = limited ? config_.rate_limit_delay : 0.0;
  sim_.schedule(delay, [this] { begin_attempt(); });
}

void ZeroconfHost::claim() {
  configured_address_ = candidate_;
  outcome_ = Outcome::configured;
  finish_time_ = sim_.now();
  // Stay subscribed: a configured host keeps defending its address.
  if (config_.announce_count > 0) send_announcement();
  if (on_done_) on_done_();
}

void ZeroconfHost::send_announcement() {
  ++announcements_sent_;
  medium_.broadcast(ArpAnnounce{configured_address_, id_});
  if (announcements_sent_ < config_.announce_count) {
    sim_.schedule(config_.announce_interval,
                  [this] { send_announcement(); });
  }
}

void ZeroconfHost::mark_collision_detected() {
  if (collision_detected_) return;
  collision_detected_ = true;
  collision_detected_at_ = sim_.now();
}

}  // namespace zc::sim
