#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

namespace zc::sim {

EventHandle Simulator::schedule(double delay, Action action) {
  ZC_REQUIRE(std::isfinite(delay),
             "Simulator::schedule delay must be finite");
  ZC_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(double time, Action action) {
  ZC_REQUIRE(std::isfinite(time),
             "Simulator::schedule_at time must be finite");
  ZC_EXPECTS(time >= now_);
  ZC_EXPECTS(static_cast<bool>(action));
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].seq = seq;
  slots_[slot].action = std::move(action);
  heap_.push_back(HeapEntry{time, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  high_water_ = std::max(high_water_, live_);
  return EventHandle(this, slot, seq);
}

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    ++reuse_count_;
    return slot;
  }
  slots_.emplace_back();
  // Guarantee release_slot's push_back never reallocates (it is noexcept
  // and may run inside cancel paths): the recycle stack can hold at most
  // one entry per slot.
  free_slots_.reserve(slots_.capacity());
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) noexcept {
  Slot& cell = slots_[slot];
  cell.action.reset();
  cell.seq = kFreeSeq;
  free_slots_.push_back(slot);
}

void Simulator::skim_cancelled() noexcept {
  while (!heap_.empty() &&
         slots_[heap_.front().slot].seq != heap_.front().seq) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const HeapEntry entry = heap_.back();
    heap_.pop_back();
    Slot& cell = slots_[entry.slot];
    if (cell.seq != entry.seq) continue;  // cancelled; slot already recycled
    Action action = std::move(cell.action);
    release_slot(entry.slot);
    --live_;
    now_ = entry.time;
    ++executed_;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(double t_end) {
  std::size_t executed = 0;
  while (true) {
    // Drop cancelled events at the head so the horizon check below sees
    // the next event that would actually execute.
    skim_cancelled();
    if (heap_.empty() || heap_.front().time > t_end) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

void Simulator::reset() noexcept {
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].seq == entry.seq) release_slot(entry.slot);
  }
  heap_.clear();
  live_ = 0;
  now_ = 0.0;
  // next_seq_ is NOT rewound: stale pre-reset handles must never match a
  // post-reset occupant. Ordering only compares seq values relatively,
  // so the offset never affects results.
}

}  // namespace zc::sim
