#include "sim/simulator.hpp"

namespace zc::sim {

EventHandle Simulator::schedule(double delay, Action action) {
  ZC_EXPECTS(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

EventHandle Simulator::schedule_at(double time, Action action) {
  ZC_EXPECTS(time >= now_);
  ZC_EXPECTS(action != nullptr);
  auto alive = std::make_shared<bool>(true);
  queue_.push(Scheduled{time, next_seq_++, alive, std::move(action)});
  return EventHandle(std::move(alive));
}

bool Simulator::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the action is moved out via const_cast
    // immediately before pop, which is safe because the element is
    // discarded in the same statement group.
    Scheduled& top = const_cast<Scheduled&>(queue_.top());
    const bool live = *top.alive;
    const double time = top.time;
    Action action = std::move(top.action);
    queue_.pop();
    if (!live) continue;
    now_ = time;
    action();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

std::size_t Simulator::run_until(double t_end) {
  std::size_t executed = 0;
  while (true) {
    // Drop cancelled events at the head so the horizon check below sees
    // the next event that would actually execute.
    while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
    if (queue_.empty() || queue_.top().time > t_end) break;
    if (!step()) break;
    ++executed;
  }
  return executed;
}

}  // namespace zc::sim
