#pragma once

/// \file trace.hpp
/// Packet-level tracing of simulation runs: a recording observer for the
/// Medium plus human-readable formatting — the debugging view onto the
/// protocol that the abstract model does not have.

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/medium.hpp"

namespace zc::sim {

/// Records every delivery decision made by a Medium.
class TraceLog {
 public:
  /// Install this log as `medium`'s observer. The log must outlive the
  /// medium's use (or be detached by setting another observer).
  void attach(Medium& medium);

  [[nodiscard]] const std::vector<DeliveryRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Number of recorded losses (every drop cause).
  [[nodiscard]] std::size_t losses() const;

  /// Number of records with the given delivery cause — e.g. how many
  /// deliveries a blackout swallowed, or how many duplicates were
  /// injected.
  [[nodiscard]] std::size_t count(faults::DeliveryCause cause) const;

  /// Records concerning one address (probe target / defended address).
  [[nodiscard]] std::vector<DeliveryRecord> for_address(
      Address address) const;

  /// Print one line per record: time, packet kind, address, route, fate.
  void print(std::ostream& os, std::size_t max_lines = SIZE_MAX) const;

 private:
  std::vector<DeliveryRecord> records_;
};

/// One-line rendering of a delivery record.
[[nodiscard]] std::string format_record(const DeliveryRecord& record);

}  // namespace zc::sim
