#pragma once

/// \file simulator.hpp
/// Discrete-event simulation engine: a virtual clock and a stable
/// time-ordered event queue with cancellation. Substrate for the
/// protocol-faithful zeroconf simulation that validates the DRM model.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/contract.hpp"

namespace zc::sim {

/// Handle to a scheduled event; allows cancellation (e.g. a host cancels
/// its probe timer when a conflicting reply arrives).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent.
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }

  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// The event-driven simulation core.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Current virtual time (seconds).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `action` to run `delay >= 0` seconds from now. Ties are
  /// broken FIFO by scheduling order (stable determinism).
  EventHandle schedule(double delay, Action action);

  /// Schedule at an absolute time >= now().
  EventHandle schedule_at(double time, Action action);

  /// Run events in time order until the queue is empty or `max_events`
  /// have been executed. Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Run until the virtual clock would pass `t_end` (events at exactly
  /// t_end still run). Returns the number of events executed.
  std::size_t run_until(double t_end);

  [[nodiscard]] std::size_t pending_events() const noexcept {
    return queue_.size();
  }

 private:
  struct Scheduled {
    double time;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    Action action;

    bool operator>(const Scheduled& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Pop the next live event, or false if none.
  bool step();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>,
                      std::greater<Scheduled>>
      queue_;
};

}  // namespace zc::sim
